// Package minic is the public API of the MiniC optimizing compiler and
// the paper's source-level debugger for optimized code (Adl-Tabatabai &
// Gross, PLDI 1996). It wraps the internal pipeline behind a small,
// stable surface:
//
//	art, err := minic.Compile("prog.mc", src)          // full -O2 pipeline
//	sess, err := minic.NewSession(art)                 // a debug session
//	bp, err := sess.BreakAtLine(12)
//	sess.Continue()
//	r, err := sess.Print("x")                          // value + classification
//	fmt.Println(r.Display())                           // warning-annotated
//
// Compilation is configured with functional options (OptLevel, RegAlloc,
// Sched, Markers, Passes) instead of a bare config struct, and repeated
// compiles can share a concurrency-safe artifact Cache. An Artifact and
// its analyses are immutable, so any number of Sessions — including
// concurrent ones — may share one Artifact.
//
// # Per-function pipeline
//
// Compilation is per-function behind this API: after the whole-program
// front end, each function runs optimization → code selection → register
// allocation → scheduling independently, fanned out across a bounded
// worker pool (WithCompileWorkers) and reassembled deterministically —
// the machine code is byte-identical to a serial compile. Each compiled
// function is also cached by a content hash of its checked IR plus the
// configuration, so Artifact.Recompile recompiles only the functions an
// edit actually changed and stitches the rest from cache.
// CompileStats reports what happened.
//
// # Configuration deprecation path
//
// Functional options are the supported way to configure compilation;
// constructing internal/compile.Config values directly is a legacy surface
// kept for compatibility and slated for removal from driver code. In-repo
// harnesses that genuinely need the internal config (benchmarks, the
// ablation driver) should derive it from options via ResolveConfig rather
// than building the struct by hand. The legacy Cache (NewCache/WithCache)
// predates the unified Store and keeps whole-artifact granularity only;
// prefer NewStore/WithStore, which adds memory accounting, disk spill and
// incremental per-function reuse.
package minic

import (
	"fmt"
	"time"

	"repro/internal/artstore"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/debugger"
	"repro/internal/mach"
	"repro/internal/opt"
	"repro/internal/vm"
)

// Option configures Compile.
type Option func(*settings)

type settings struct {
	cfg        compile.Config
	cache      *Cache
	store      *Store
	precompute int // -1: off, 0: GOMAXPROCS, >0: bounded pool
	workers    int // per-function compile workers; 0 = GOMAXPROCS
}

// WithOptLevel selects the optimization level: 0 (none — this also turns
// off register allocation and scheduling, like the command-line -O0), 1
// (local optimizations) or 2 (the paper's full global pipeline, the
// default).
func WithOptLevel(n int) Option {
	return func(s *settings) {
		switch {
		case n <= 0:
			s.cfg.Opt = opt.O0()
			s.cfg.RegAlloc = false
			s.cfg.Sched = false
		case n == 1:
			s.cfg.Opt = opt.O1()
		default:
			s.cfg.Opt = opt.O2()
		}
	}
}

// WithRegAlloc turns graph-coloring register allocation on or off
// (Figure 5(b) vs 5(a) of the paper).
func WithRegAlloc(on bool) Option { return func(s *settings) { s.cfg.RegAlloc = on } }

// WithSched turns instruction scheduling on or off.
func WithSched(on bool) Option { return func(s *settings) { s.cfg.Sched = on } }

// WithMarkers controls the §3 marker bookkeeping the classifier consumes;
// passing false reproduces the paper's "no compiler support" ablation.
func WithMarkers(on bool) Option { return func(s *settings) { s.cfg.Opt.NoMarkers = !on } }

// WithPasses runs exactly the given optimization passes and switches
// register allocation and scheduling off, which is the shape the paper's
// figure walkthroughs use (e.g. PRE alone); re-enable them with
// WithRegAlloc/WithSched after this option.
func WithPasses(o opt.Options) Option {
	return func(s *settings) {
		s.cfg.Opt = o
		s.cfg.RegAlloc = false
		s.cfg.Sched = false
	}
}

// WithCache compiles through c: identical (name, source, options)
// requests are served from cache, and concurrent requests coalesce into
// one pipeline run.
func WithCache(c *Cache) Option { return func(s *settings) { s.cache = c } }

// WithPrecomputedAnalyses builds the debugger's per-function data-flow
// analyses eagerly with a bounded worker pool (workers <= 0 selects
// GOMAXPROCS) instead of lazily at the first breakpoint.
func WithPrecomputedAnalyses(workers int) Option {
	return func(s *settings) {
		if workers <= 0 {
			workers = 0
		}
		s.precompute = workers
	}
}

// WithCompileWorkers bounds the per-function back-end worker pool: the
// functions of a program are optimized, lowered, allocated and scheduled
// concurrently, at most n at a time, and reassembled in declaration order
// (byte-identical to a serial compile). n <= 0 selects GOMAXPROCS. When
// compiling through a Store the store's own pipeline applies instead —
// set its bound with WithStoreCompileWorkers.
func WithCompileWorkers(n int) Option {
	return func(s *settings) {
		if n < 0 {
			n = 0
		}
		s.workers = n
	}
}

// ResolveConfig resolves compilation options to the internal pipeline
// configuration. It exists for in-repo harnesses (benchmarks, ablation
// drivers) that must hand a raw config to internal packages; application
// code should pass the options to Compile directly.
func ResolveConfig(opts ...Option) compile.Config {
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	return s.cfg
}

// Cache is a concurrency-safe compiled-artifact cache with LRU eviction;
// see NewCache.
type Cache = compile.Cache

// CacheStats reports cache effectiveness counters.
type CacheStats = compile.CacheStats

// NewCache returns an artifact cache bounded to max entries (max <= 0
// means unbounded) for use with WithCache.
func NewCache(max int) *Cache { return compile.NewCache(max) }

// Store is the unified artifact store: a sharded, memory-accounted cache
// that retains compiled artifacts together with their lazily built
// analyses under one byte budget, over an optional disk tier that
// survives restarts. Use NewStore + WithStore to compile through one.
type Store = artstore.Store

// StoreOption configures NewStore.
type StoreOption func(*artstore.Config)

// WithShards sets the store's shard count (rounded up to a power of two);
// more shards reduce lock contention under concurrent compile traffic.
func WithShards(n int) StoreOption {
	return func(c *artstore.Config) { c.Shards = n }
}

// WithMaxArtifacts bounds the number of resident artifacts (<= 0 means
// unbounded).
func WithMaxArtifacts(n int) StoreOption {
	return func(c *artstore.Config) { c.MaxArtifacts = n }
}

// WithMemoryBudget bounds the accounted bytes of resident artifacts plus
// their built analyses; least-recently-used artifacts are evicted (and
// spilled, if a spill dir is set) to stay within it. <= 0 means
// unbounded.
func WithMemoryBudget(bytes int64) StoreOption {
	return func(c *artstore.Config) { c.MemoryBudget = bytes }
}

// WithSpillDir enables the disk tier: evicted artifacts are serialized to
// dir and reloaded on miss, so a new process with the same dir keeps the
// warm set.
func WithSpillDir(dir string) StoreOption {
	return func(c *artstore.Config) { c.SpillDir = dir }
}

// WithStoreCompileWorkers bounds the store's per-function compile worker
// pool. The bound is shared across concurrent compiles through the store,
// so a burst of requests still runs at most n function back ends at once;
// n <= 0 selects GOMAXPROCS.
func WithStoreCompileWorkers(n int) StoreOption {
	return func(c *artstore.Config) { c.CompileWorkers = n }
}

// WithFuncCacheBudget bounds the accounted bytes of the store's
// per-function incremental tier (encoded machine code keyed by content
// hash of each function's checked IR + configuration). 0 keeps the
// default (a quarter of the store's memory budget, or unbounded);
// negative disables incremental reuse.
func WithFuncCacheBudget(bytes int64) StoreOption {
	return func(c *artstore.Config) { c.FuncCacheBudget = bytes }
}

// NewStore creates an artifact store for use with WithStore.
func NewStore(opts ...StoreOption) *Store {
	var cfg artstore.Config
	for _, o := range opts {
		o(&cfg)
	}
	return artstore.New(cfg)
}

// WithStore compiles through st: identical requests are served from the
// store (memory or disk tier), concurrent requests coalesce into one
// pipeline run, and the resulting Artifact shares the store's analysis
// set, so analyses are charged against — and evicted with — the artifact.
// Takes precedence over WithCache.
func WithStore(st *Store) Option { return func(s *settings) { s.store = st } }

// Artifact is one compiled program: every representation level produced
// by the pipeline plus the (lazily built, concurrency-safe) per-function
// debugger analyses. Artifacts are immutable and may back any number of
// concurrent Sessions.
type Artifact struct {
	res      *compile.Result
	analyses *core.AnalysisSet

	name    string
	metrics compile.Metrics
	// recompile compiles new source under this artifact's name and
	// options, reusing this artifact's per-function cache (default and
	// store paths) so unchanged functions are stitched, not recompiled.
	recompile func(src string) (*Artifact, error)
}

// CompileStats describes the compile that produced an Artifact: how many
// functions the program has, how many per-function back ends actually ran,
// how many functions were stitched unchanged from the incremental cache,
// and the pipeline wall time. For an artifact served whole from a Store or
// Cache the stats are those of the compile that originally produced it
// (zero if it was rehydrated from a disk tier).
type CompileStats struct {
	Funcs         int
	FuncsCompiled int
	FuncsReused   int
	Duration      time.Duration
}

// CompileStats reports what the compile producing this artifact did.
func (a *Artifact) CompileStats() CompileStats {
	return CompileStats{
		Funcs:         a.metrics.Funcs,
		FuncsCompiled: a.metrics.FuncsCompiled,
		FuncsReused:   a.metrics.FuncsReused,
		Duration:      a.metrics.Duration,
	}
}

// Recompile compiles new source for the same program name under the same
// options, reusing every function the edit did not change: each function
// is keyed by a content hash of its checked IR plus the configuration, so
// a one-function edit runs exactly one back end and stitches the rest
// from cache. The receiver is unchanged; the new Artifact shares the same
// incremental cache, so a chain of Recompiles keeps reusing. With the
// legacy WithCache path there is no per-function tier and Recompile is a
// full (whole-artifact cached) compile.
func (a *Artifact) Recompile(src string) (*Artifact, error) { return a.recompile(src) }

func defaultSettings() settings {
	return settings{cfg: compile.Config{Opt: opt.O2(), RegAlloc: true, Sched: true}, precompute: -1}
}

// Compile runs the pipeline over MiniC source text. With no options it
// compiles like the production compiler: -O2 with register allocation
// and scheduling, functions fanned out across GOMAXPROCS workers.
func Compile(name, src string, opts ...Option) (*Artifact, error) {
	s := defaultSettings()
	for _, o := range opts {
		o(&s)
	}
	a, err := s.compile(name, src)
	if err != nil {
		return nil, err
	}
	if s.precompute >= 0 {
		a.analyses.Precompute(a.res.Mach, s.precompute)
	}
	return a, nil
}

// compile runs one compilation under the resolved settings and arms the
// artifact's Recompile path.
func (s *settings) compile(name, src string) (*Artifact, error) {
	return s.compileVia(nil, name, src)
}

// compileVia compiles through the settings' store, cache, or — by default
// — a per-lineage pipeline with an attached per-function cache. pipe is
// the lineage pipeline to reuse (nil on the first compile).
func (s *settings) compileVia(pipe *compile.Pipeline, name, src string) (*Artifact, error) {
	var a *Artifact
	switch {
	case s.store != nil:
		sa, _, err := s.store.Get(name, src, s.cfg)
		if err != nil {
			return nil, err
		}
		// Share the store's analysis set so the artifact and its
		// analyses are accounted and evicted as one unit.
		a = &Artifact{res: sa.Res, analyses: sa.Analyses, metrics: sa.Metrics}
	case s.cache != nil:
		res, _, err := s.cache.Compile(name, src, s.cfg)
		if err != nil {
			return nil, err
		}
		a = &Artifact{res: res, analyses: core.NewAnalysisSet()}
	default:
		if pipe == nil {
			pipe = compile.NewPipeline(compile.PipelineConfig{
				Workers: s.workers,
				Funcs:   compile.NewFuncCache(compile.FuncCacheConfig{}),
			})
		}
		res, m, err := pipe.Compile(name, src, s.cfg)
		if err != nil {
			return nil, err
		}
		a = &Artifact{res: res, analyses: core.NewAnalysisSet(), metrics: m}
	}
	a.name = name
	a.recompile = func(src string) (*Artifact, error) {
		na, err := s.compileVia(pipe, name, src)
		if err != nil {
			return nil, err
		}
		if s.precompute >= 0 {
			na.analyses.Precompute(na.res.Mach, s.precompute)
		}
		return na, nil
	}
	return a, nil
}

// Result exposes the program at every level (source file, checked
// program, optimized IR, machine code).
func (a *Artifact) Result() *compile.Result { return a.res }

// Funcs lists the compiled machine functions.
func (a *Artifact) Funcs() []*mach.Func { return a.res.Mach.Funcs }

// Func looks up one machine function by source name, or nil.
func (a *Artifact) Func(name string) *mach.Func { return a.res.Mach.LookupFunc(name) }

// Analysis returns the debugger's classification analysis for f, building
// it on first use. The result is immutable and shared.
func (a *Artifact) Analysis(f *mach.Func) *core.Analysis { return a.analyses.Of(f) }

// StmtClassifications is the classification of every in-scope variable
// at one breakpoint (statement).
type StmtClassifications struct {
	Stmt    int
	Classes []Classification
}

// ClassifyFunc classifies every in-scope variable at every breakpoint of
// the named function in one sweep — the workload of coverage-metric
// harnesses that interrogate a whole binary. The analysis is solved once
// and each statement's classifications come from its precomputed
// per-breakpoint tables, so repeated sweeps cost only the reported
// classifications.
func (a *Artifact) ClassifyFunc(name string) ([]StmtClassifications, error) {
	f := a.res.Mach.LookupFunc(name)
	if f == nil {
		return nil, fmt.Errorf("minic: %w: %q", ErrNoSuchFunc, name)
	}
	an := a.analyses.Of(f)
	out := make([]StmtClassifications, 0, f.Decl.NumStmts)
	for s := 0; s < f.Decl.NumStmts; s++ {
		cs, ok := an.ClassifyAllAt(s)
		if !ok {
			continue
		}
		out = append(out, StmtClassifications{Stmt: s, Classes: cs})
	}
	return out, nil
}

// Coverage computes the artifact's debug-info coverage report: every
// statement×variable(×field) pair bucketed as current / recovered /
// noncurrent by the classifier (see internal/coverage). The server's
// coverage protocol command routes through the same sweep, so a live
// daemon and this in-process call agree byte for byte on the same
// artifact.
func (a *Artifact) Coverage() *coverage.Report {
	return coverage.Sweep(a.res, a.analyses)
}

// Run executes the program on a fresh simulator to completion and
// returns the machine for inspection (output, exit value, cycle count).
func (a *Artifact) Run() (*vm.VM, error) {
	m, err := vm.New(a.res.Mach)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	return m, nil
}

// Session is one source-level debug session on an Artifact: a private
// simulator plus the shared classification analyses. A Session is not
// itself safe for concurrent use, but distinct Sessions over one
// Artifact are.
type Session struct {
	art *Artifact
	dbg *debugger.Debugger
}

// NewSession starts a debug session at the entry of the program.
func NewSession(a *Artifact) (*Session, error) {
	dbg, err := debugger.NewShared(a.res, a.analyses)
	if err != nil {
		return nil, err
	}
	return &Session{art: a, dbg: dbg}, nil
}

// Artifact returns the compiled program this session runs.
func (s *Session) Artifact() *Artifact { return s.art }

// Debugger exposes the underlying session driver for advanced use.
func (s *Session) Debugger() *debugger.Debugger { return s.dbg }

// BreakAtLine sets a breakpoint at the first statement on a source line.
func (s *Session) BreakAtLine(line int) (*Breakpoint, error) { return s.dbg.BreakAtLine(line) }

// BreakAtStmt sets a breakpoint at statement stmt of the named function.
func (s *Session) BreakAtStmt(fn string, stmt int) (*Breakpoint, error) {
	return s.dbg.BreakAtStmt(fn, stmt)
}

// Continue resumes until a breakpoint (returned) or exit (nil).
func (s *Session) Continue() (*Breakpoint, error) { return s.dbg.Continue() }

// Step advances to the next source statement.
func (s *Session) Step() (*Breakpoint, error) { return s.dbg.Step() }

// Print reports one variable at the current stop with its classification.
func (s *Session) Print(name string) (*VarReport, error) { return s.dbg.Print(name) }

// Info reports every variable in scope at the current stop.
func (s *Session) Info() ([]*VarReport, error) { return s.dbg.Info() }

// Stopped returns the current stop, or nil.
func (s *Session) Stopped() *Breakpoint { return s.dbg.Stopped() }

// Halted reports whether the program has exited.
func (s *Session) Halted() bool { return s.dbg.Halted() }

// Output returns everything the program printed so far.
func (s *Session) Output() string { return s.dbg.Output() }

// Re-exported stable types: the classification model of the paper and
// the debugger's report/breakpoint shapes.
type (
	// Classification is the debugger's verdict on one variable at one
	// breakpoint: its State, the responsible optimization, the
	// human-readable reason, and an optional Recovery.
	Classification = core.Classification
	// State is one of Current, Uninitialized, Nonresident, Noncurrent,
	// Suspect (Figure 1 of the paper).
	State = core.State
	// Cause names the optimization responsible for an endangerment.
	Cause = core.Cause
	// Recovery describes how an eliminated value can be reconstructed.
	Recovery = core.Recovery
	// VarReport is a classified variable with its runtime (and possibly
	// recovered) value; Display renders it with the paper's warnings.
	VarReport = debugger.VarReport
	// Breakpoint is an armed or hit source breakpoint.
	Breakpoint = debugger.Breakpoint
)

// Classification states (Figure 1 of the paper).
const (
	Current       = core.Current
	Uninitialized = core.Uninitialized
	Nonresident   = core.Nonresident
	Noncurrent    = core.Noncurrent
	Suspect       = core.Suspect
)

// Endangerment causes.
const (
	NoCause        = core.NoCause
	ByHoisting     = core.ByHoisting
	ByDeadCodeElim = core.ByDeadCodeElim
	ByScheduling   = core.ByScheduling
)

// Typed session errors, for errors.Is.
var (
	ErrNoSuchLine = debugger.ErrNoSuchLine
	ErrNoSuchFunc = debugger.ErrNoSuchFunc
	ErrNoStmtLoc  = debugger.ErrNoStmtLoc
	ErrNotStopped = debugger.ErrNotStopped
	ErrNoSuchVar  = debugger.ErrNoSuchVar
)
