// Package minic is the public API of the MiniC optimizing compiler and
// the paper's source-level debugger for optimized code (Adl-Tabatabai &
// Gross, PLDI 1996). It wraps the internal pipeline behind a small,
// stable surface:
//
//	art, err := minic.Compile("prog.mc", src)          // full -O2 pipeline
//	sess, err := minic.NewSession(art)                 // a debug session
//	bp, err := sess.BreakAtLine(12)
//	sess.Continue()
//	r, err := sess.Print("x")                          // value + classification
//	fmt.Println(r.Display())                           // warning-annotated
//
// Compilation is configured with functional options (OptLevel, RegAlloc,
// Sched, Markers, Passes) instead of a bare config struct, and repeated
// compiles can share a concurrency-safe artifact Cache. An Artifact and
// its analyses are immutable, so any number of Sessions — including
// concurrent ones — may share one Artifact.
package minic

import (
	"fmt"

	"repro/internal/artstore"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/debugger"
	"repro/internal/mach"
	"repro/internal/opt"
	"repro/internal/vm"
)

// Option configures Compile.
type Option func(*settings)

type settings struct {
	cfg        compile.Config
	cache      *Cache
	store      *Store
	precompute int // -1: off, 0: GOMAXPROCS, >0: bounded pool
}

// WithOptLevel selects the optimization level: 0 (none — this also turns
// off register allocation and scheduling, like the command-line -O0), 1
// (local optimizations) or 2 (the paper's full global pipeline, the
// default).
func WithOptLevel(n int) Option {
	return func(s *settings) {
		switch {
		case n <= 0:
			s.cfg.Opt = opt.O0()
			s.cfg.RegAlloc = false
			s.cfg.Sched = false
		case n == 1:
			s.cfg.Opt = opt.O1()
		default:
			s.cfg.Opt = opt.O2()
		}
	}
}

// WithRegAlloc turns graph-coloring register allocation on or off
// (Figure 5(b) vs 5(a) of the paper).
func WithRegAlloc(on bool) Option { return func(s *settings) { s.cfg.RegAlloc = on } }

// WithSched turns instruction scheduling on or off.
func WithSched(on bool) Option { return func(s *settings) { s.cfg.Sched = on } }

// WithMarkers controls the §3 marker bookkeeping the classifier consumes;
// passing false reproduces the paper's "no compiler support" ablation.
func WithMarkers(on bool) Option { return func(s *settings) { s.cfg.Opt.NoMarkers = !on } }

// WithPasses runs exactly the given optimization passes and switches
// register allocation and scheduling off, which is the shape the paper's
// figure walkthroughs use (e.g. PRE alone); re-enable them with
// WithRegAlloc/WithSched after this option.
func WithPasses(o opt.Options) Option {
	return func(s *settings) {
		s.cfg.Opt = o
		s.cfg.RegAlloc = false
		s.cfg.Sched = false
	}
}

// WithCache compiles through c: identical (name, source, options)
// requests are served from cache, and concurrent requests coalesce into
// one pipeline run.
func WithCache(c *Cache) Option { return func(s *settings) { s.cache = c } }

// WithPrecomputedAnalyses builds the debugger's per-function data-flow
// analyses eagerly with a bounded worker pool (workers <= 0 selects
// GOMAXPROCS) instead of lazily at the first breakpoint.
func WithPrecomputedAnalyses(workers int) Option {
	return func(s *settings) {
		if workers <= 0 {
			workers = 0
		}
		s.precompute = workers
	}
}

// Cache is a concurrency-safe compiled-artifact cache with LRU eviction;
// see NewCache.
type Cache = compile.Cache

// CacheStats reports cache effectiveness counters.
type CacheStats = compile.CacheStats

// NewCache returns an artifact cache bounded to max entries (max <= 0
// means unbounded) for use with WithCache.
func NewCache(max int) *Cache { return compile.NewCache(max) }

// Store is the unified artifact store: a sharded, memory-accounted cache
// that retains compiled artifacts together with their lazily built
// analyses under one byte budget, over an optional disk tier that
// survives restarts. Use NewStore + WithStore to compile through one.
type Store = artstore.Store

// StoreOption configures NewStore.
type StoreOption func(*artstore.Config)

// WithShards sets the store's shard count (rounded up to a power of two);
// more shards reduce lock contention under concurrent compile traffic.
func WithShards(n int) StoreOption {
	return func(c *artstore.Config) { c.Shards = n }
}

// WithMaxArtifacts bounds the number of resident artifacts (<= 0 means
// unbounded).
func WithMaxArtifacts(n int) StoreOption {
	return func(c *artstore.Config) { c.MaxArtifacts = n }
}

// WithMemoryBudget bounds the accounted bytes of resident artifacts plus
// their built analyses; least-recently-used artifacts are evicted (and
// spilled, if a spill dir is set) to stay within it. <= 0 means
// unbounded.
func WithMemoryBudget(bytes int64) StoreOption {
	return func(c *artstore.Config) { c.MemoryBudget = bytes }
}

// WithSpillDir enables the disk tier: evicted artifacts are serialized to
// dir and reloaded on miss, so a new process with the same dir keeps the
// warm set.
func WithSpillDir(dir string) StoreOption {
	return func(c *artstore.Config) { c.SpillDir = dir }
}

// NewStore creates an artifact store for use with WithStore.
func NewStore(opts ...StoreOption) *Store {
	var cfg artstore.Config
	for _, o := range opts {
		o(&cfg)
	}
	return artstore.New(cfg)
}

// WithStore compiles through st: identical requests are served from the
// store (memory or disk tier), concurrent requests coalesce into one
// pipeline run, and the resulting Artifact shares the store's analysis
// set, so analyses are charged against — and evicted with — the artifact.
// Takes precedence over WithCache.
func WithStore(st *Store) Option { return func(s *settings) { s.store = st } }

// Artifact is one compiled program: every representation level produced
// by the pipeline plus the (lazily built, concurrency-safe) per-function
// debugger analyses. Artifacts are immutable and may back any number of
// concurrent Sessions.
type Artifact struct {
	res      *compile.Result
	analyses *core.AnalysisSet
}

// Compile runs the pipeline over MiniC source text. With no options it
// compiles like the production compiler: -O2 with register allocation
// and scheduling.
func Compile(name, src string, opts ...Option) (*Artifact, error) {
	s := settings{cfg: compile.Config{Opt: opt.O2(), RegAlloc: true, Sched: true}, precompute: -1}
	for _, o := range opts {
		o(&s)
	}
	var a *Artifact
	switch {
	case s.store != nil:
		sa, _, err := s.store.Get(name, src, s.cfg)
		if err != nil {
			return nil, err
		}
		// Share the store's analysis set so the artifact and its
		// analyses are accounted and evicted as one unit.
		a = &Artifact{res: sa.Res, analyses: sa.Analyses}
	case s.cache != nil:
		res, _, err := s.cache.Compile(name, src, s.cfg)
		if err != nil {
			return nil, err
		}
		a = &Artifact{res: res, analyses: core.NewAnalysisSet()}
	default:
		res, err := compile.Compile(name, src, s.cfg)
		if err != nil {
			return nil, err
		}
		a = &Artifact{res: res, analyses: core.NewAnalysisSet()}
	}
	if s.precompute >= 0 {
		a.analyses.Precompute(a.res.Mach, s.precompute)
	}
	return a, nil
}

// Result exposes the program at every level (source file, checked
// program, optimized IR, machine code).
func (a *Artifact) Result() *compile.Result { return a.res }

// Funcs lists the compiled machine functions.
func (a *Artifact) Funcs() []*mach.Func { return a.res.Mach.Funcs }

// Func looks up one machine function by source name, or nil.
func (a *Artifact) Func(name string) *mach.Func { return a.res.Mach.LookupFunc(name) }

// Analysis returns the debugger's classification analysis for f, building
// it on first use. The result is immutable and shared.
func (a *Artifact) Analysis(f *mach.Func) *core.Analysis { return a.analyses.Of(f) }

// StmtClassifications is the classification of every in-scope variable
// at one breakpoint (statement).
type StmtClassifications struct {
	Stmt    int
	Classes []Classification
}

// ClassifyFunc classifies every in-scope variable at every breakpoint of
// the named function in one sweep — the workload of coverage-metric
// harnesses that interrogate a whole binary. The analysis is solved once
// and each statement's classifications come from its precomputed
// per-breakpoint tables, so repeated sweeps cost only the reported
// classifications.
func (a *Artifact) ClassifyFunc(name string) ([]StmtClassifications, error) {
	f := a.res.Mach.LookupFunc(name)
	if f == nil {
		return nil, fmt.Errorf("minic: %w: %q", ErrNoSuchFunc, name)
	}
	an := a.analyses.Of(f)
	out := make([]StmtClassifications, 0, f.Decl.NumStmts)
	for s := 0; s < f.Decl.NumStmts; s++ {
		cs, ok := an.ClassifyAllAt(s)
		if !ok {
			continue
		}
		out = append(out, StmtClassifications{Stmt: s, Classes: cs})
	}
	return out, nil
}

// Run executes the program on a fresh simulator to completion and
// returns the machine for inspection (output, exit value, cycle count).
func (a *Artifact) Run() (*vm.VM, error) {
	m, err := vm.New(a.res.Mach)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	return m, nil
}

// Session is one source-level debug session on an Artifact: a private
// simulator plus the shared classification analyses. A Session is not
// itself safe for concurrent use, but distinct Sessions over one
// Artifact are.
type Session struct {
	art *Artifact
	dbg *debugger.Debugger
}

// NewSession starts a debug session at the entry of the program.
func NewSession(a *Artifact) (*Session, error) {
	dbg, err := debugger.NewShared(a.res, a.analyses)
	if err != nil {
		return nil, err
	}
	return &Session{art: a, dbg: dbg}, nil
}

// Artifact returns the compiled program this session runs.
func (s *Session) Artifact() *Artifact { return s.art }

// Debugger exposes the underlying session driver for advanced use.
func (s *Session) Debugger() *debugger.Debugger { return s.dbg }

// BreakAtLine sets a breakpoint at the first statement on a source line.
func (s *Session) BreakAtLine(line int) (*Breakpoint, error) { return s.dbg.BreakAtLine(line) }

// BreakAtStmt sets a breakpoint at statement stmt of the named function.
func (s *Session) BreakAtStmt(fn string, stmt int) (*Breakpoint, error) {
	return s.dbg.BreakAtStmt(fn, stmt)
}

// Continue resumes until a breakpoint (returned) or exit (nil).
func (s *Session) Continue() (*Breakpoint, error) { return s.dbg.Continue() }

// Step advances to the next source statement.
func (s *Session) Step() (*Breakpoint, error) { return s.dbg.Step() }

// Print reports one variable at the current stop with its classification.
func (s *Session) Print(name string) (*VarReport, error) { return s.dbg.Print(name) }

// Info reports every variable in scope at the current stop.
func (s *Session) Info() ([]*VarReport, error) { return s.dbg.Info() }

// Stopped returns the current stop, or nil.
func (s *Session) Stopped() *Breakpoint { return s.dbg.Stopped() }

// Halted reports whether the program has exited.
func (s *Session) Halted() bool { return s.dbg.Halted() }

// Output returns everything the program printed so far.
func (s *Session) Output() string { return s.dbg.Output() }

// Re-exported stable types: the classification model of the paper and
// the debugger's report/breakpoint shapes.
type (
	// Classification is the debugger's verdict on one variable at one
	// breakpoint: its State, the responsible optimization, the
	// human-readable reason, and an optional Recovery.
	Classification = core.Classification
	// State is one of Current, Uninitialized, Nonresident, Noncurrent,
	// Suspect (Figure 1 of the paper).
	State = core.State
	// Cause names the optimization responsible for an endangerment.
	Cause = core.Cause
	// Recovery describes how an eliminated value can be reconstructed.
	Recovery = core.Recovery
	// VarReport is a classified variable with its runtime (and possibly
	// recovered) value; Display renders it with the paper's warnings.
	VarReport = debugger.VarReport
	// Breakpoint is an armed or hit source breakpoint.
	Breakpoint = debugger.Breakpoint
)

// Classification states (Figure 1 of the paper).
const (
	Current       = core.Current
	Uninitialized = core.Uninitialized
	Nonresident   = core.Nonresident
	Noncurrent    = core.Noncurrent
	Suspect       = core.Suspect
)

// Endangerment causes.
const (
	NoCause        = core.NoCause
	ByHoisting     = core.ByHoisting
	ByDeadCodeElim = core.ByDeadCodeElim
	ByScheduling   = core.ByScheduling
)

// Typed session errors, for errors.Is.
var (
	ErrNoSuchLine = debugger.ErrNoSuchLine
	ErrNoSuchFunc = debugger.ErrNoSuchFunc
	ErrNoStmtLoc  = debugger.ErrNoStmtLoc
	ErrNotStopped = debugger.ErrNotStopped
	ErrNoSuchVar  = debugger.ErrNoSuchVar
)
