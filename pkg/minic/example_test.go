package minic_test

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/opt"
	"repro/pkg/minic"
)

// Compile a program with the full production pipeline and execute it on
// the simulator.
func ExampleCompile() {
	art, err := minic.Compile("square.mc", `
int main() {
	int n = 12;
	print("n squared = ", n * n, "\n");
	return 0;
}
`)
	if err != nil {
		log.Fatal(err)
	}
	m, err := art.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(m.Output())
	// Output: n squared = 144
}

// Debug optimized code: the paper's Figure 3 — partial dead-code
// elimination sinks `x = a*b` into the branch that needs it, so on the
// other path the debugger must warn that the displayed value is stale.
func ExampleNewSession() {
	art, err := minic.Compile("fig3.mc", `
int g(int c, int a, int b) {
	int x = a * b;
	int r = 0;
	if (c) {
		r = x;
	}
	return r + a;
}
int main() { return g(0, 5, 4); }
`, minic.WithPasses(opt.Options{PDCE: true, DCE: true}))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := minic.NewSession(art)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.BreakAtStmt("g", 1); err != nil { // r = 0
		log.Fatal(err)
	}
	if _, err := sess.Continue(); err != nil {
		log.Fatal(err)
	}
	r, err := sess.Print("x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Display())
	// Output: x = 0 (WARNING: noncurrent due to dead code elimination — the assignment to x (statement 0) was eliminated as dead; the value shown is stale; see line 3)
}

// Share a cache so identical compilations run the pipeline once.
func ExampleWithCache() {
	cache := minic.NewCache(16)
	src := `int main() { return 7; }`
	for i := 0; i < 3; i++ {
		if _, err := minic.Compile("seven.mc", src, minic.WithCache(cache)); err != nil {
			log.Fatal(err)
		}
	}
	st := cache.Stats()
	fmt.Printf("misses=%d hits=%d\n", st.Misses, st.Hits)
	// Output: misses=1 hits=2
}

// Session errors are typed, so callers can branch on the failure kind.
func ExampleNewSession_errors() {
	art, err := minic.Compile("t.mc", `int main() { return 1; }`)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := minic.NewSession(art)
	if err != nil {
		log.Fatal(err)
	}
	_, err = sess.Print("x")
	fmt.Println(errors.Is(err, minic.ErrNotStopped))
	_, err = sess.BreakAtLine(999)
	fmt.Println(errors.Is(err, minic.ErrNoSuchLine))
	// Output:
	// true
	// true
}
