package minic_test

import (
	"testing"

	"repro/pkg/minic"
)

const twoFuncProg = `
int helper(int x) {
	int y = x * 2;
	return y + 1;
}
int main() {
	int s = helper(20);
	print(s);
	return s;
}
`

// TestRecompileReusesUnchangedFunctions is the public-API incremental
// contract: an edit touching one function recompiles exactly one function.
func TestRecompileReusesUnchangedFunctions(t *testing.T) {
	art, err := minic.Compile("prog.mc", twoFuncProg, minic.WithCompileWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	st := art.CompileStats()
	if st.Funcs != 2 || st.FuncsCompiled != 2 || st.FuncsReused != 0 {
		t.Fatalf("cold stats = %+v, want 2 compiled", st)
	}

	// Identical source: everything stitched from the per-function cache.
	same, err := art.Recompile(twoFuncProg)
	if err != nil {
		t.Fatal(err)
	}
	if st := same.CompileStats(); st.FuncsReused != 2 || st.FuncsCompiled != 0 {
		t.Fatalf("unchanged-source stats = %+v, want 2 reused", st)
	}

	// Edit only main: helper must be reused.
	edited := `
int helper(int x) {
	int y = x * 2;
	return y + 1;
}
int main() {
	int s = helper(21);
	print(s);
	return s;
}
`
	na, err := art.Recompile(edited)
	if err != nil {
		t.Fatal(err)
	}
	if st := na.CompileStats(); st.FuncsCompiled != 1 || st.FuncsReused != 1 {
		t.Fatalf("one-function edit stats = %+v, want 1 compiled / 1 reused", st)
	}

	// The stitched artifact is fully usable: run it and classify through it.
	m, err := na.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Output(); got != "43" {
		t.Fatalf("edited program printed %q, want %q", got, "43")
	}
	if _, err := na.ClassifyFunc("helper"); err != nil {
		t.Fatal(err)
	}

	// Recompiles chain: editing back reuses the original main from cache.
	back, err := na.Recompile(twoFuncProg)
	if err != nil {
		t.Fatal(err)
	}
	if st := back.CompileStats(); st.FuncsCompiled != 0 || st.FuncsReused != 2 {
		t.Fatalf("revert stats = %+v, want 2 reused", st)
	}
}

// TestRecompileThroughStore exercises the store path: the store's
// per-function tier serves unchanged functions across Recompile.
func TestRecompileThroughStore(t *testing.T) {
	st := minic.NewStore(minic.WithStoreCompileWorkers(2))
	art, err := minic.Compile("prog.mc", twoFuncProg, minic.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if cs := art.CompileStats(); cs.FuncsCompiled != 2 {
		t.Fatalf("cold store stats = %+v", cs)
	}
	edited := twoFuncProg + "\nint extra(int a) { return a + 7; }\n"
	na, err := art.Recompile(edited)
	if err != nil {
		t.Fatal(err)
	}
	if cs := na.CompileStats(); cs.FuncsCompiled != 1 || cs.FuncsReused != 2 {
		t.Fatalf("store edit stats = %+v, want 1 compiled / 2 reused", cs)
	}
}

// TestResolveConfig checks the harness bridge agrees with the options.
func TestResolveConfig(t *testing.T) {
	cfg := minic.ResolveConfig()
	if !cfg.RegAlloc || !cfg.Sched {
		t.Fatalf("default config = %+v, want full O2", cfg)
	}
	cfg = minic.ResolveConfig(minic.WithRegAlloc(false), minic.WithSched(false), minic.WithMarkers(false))
	if cfg.RegAlloc || cfg.Sched || !cfg.Opt.NoMarkers {
		t.Fatalf("ablation config = %+v", cfg)
	}
	cfg = minic.ResolveConfig(minic.WithOptLevel(0))
	if cfg.Opt.PRE || cfg.RegAlloc {
		t.Fatalf("O0 config = %+v", cfg)
	}
}
