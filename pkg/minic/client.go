package minic

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/server"
)

// This file is the remote half of the public API: a client for the mcd
// debug-session daemon. It speaks the line-delimited JSON protocol of
// internal/server over TCP or unix sockets, authenticates with the
// daemon's shared secret, and models the capability-style session
// ownership the server enforces: opening a session yields an id plus a
// secret handle, and a client that reconnects (same process or a new
// one) resumes its session by presenting the handle to Attach.

// RemoteError is a typed protocol error from a remote daemon. Code is
// one of the stable server codes ("not-owner", "auth-required", ...).
type RemoteError struct {
	Code    string
	Message string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("minic: remote %s: %s", e.Code, e.Message) }

// Wire-shape re-exports, so client code needs no internal imports.
type (
	// RemoteStop is a stop location reported by a remote session.
	RemoteStop = server.StopInfo
	// RemoteVar is one classified variable from a remote print/info.
	RemoteVar = server.VarInfo
	// RemoteStats is the daemon's metrics snapshot.
	RemoteStats = server.Stats
)

// DialOption configures Dial.
type DialOption func(*dialSettings)

type dialSettings struct {
	token   string
	timeout time.Duration
}

// WithAuthToken presents the daemon's shared secret (its -auth-token)
// during Dial. Without it, a token-protected daemon answers everything
// but stats with auth-required.
func WithAuthToken(token string) DialOption {
	return func(ds *dialSettings) { ds.token = token }
}

// WithDialTimeout bounds the connection attempt (default 10s).
func WithDialTimeout(d time.Duration) DialOption {
	return func(ds *dialSettings) { ds.timeout = d }
}

// Client is one connection to a remote mcd daemon. It is safe for
// concurrent use; requests are serialized on the wire, matching the
// protocol's one-response-per-line ordering.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
	next int64
}

// Dial connects to an mcd daemon on network ("tcp" or "unix") and
// address, and authenticates if a token option is given (sending auth is
// harmless on an open daemon).
func Dial(network, addr string, opts ...DialOption) (*Client, error) {
	ds := dialSettings{timeout: 10 * time.Second}
	for _, o := range opts {
		o(&ds)
	}
	conn, err := net.DialTimeout(network, addr, ds.timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, enc: json.NewEncoder(conn), sc: bufio.NewScanner(conn)}
	c.sc.Buffer(make([]byte, 0, 64*1024), server.MaxLine)
	if ds.token != "" {
		if _, err := c.do(&server.Request{Cmd: "auth", Token: ds.token}); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return c, nil
}

// do sends one request (assigning it the next id) and decodes its
// response, mapping protocol errors to *RemoteError.
func (c *Client) do(req *server.Request) (*server.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req.ID = c.next
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	var resp server.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("minic: bad response line: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("minic: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		if resp.Error == nil {
			return nil, fmt.Errorf("minic: remote error with no detail")
		}
		return nil, &RemoteError{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	return &resp, nil
}

// Close drops the connection. Sessions opened on it stay alive on the
// daemon (detached) until reattached or reaped.
func (c *Client) Close() error { return c.conn.Close() }

// Stats fetches the daemon's metrics snapshot (allowed even before
// authentication).
func (c *Client) Stats() (*RemoteStats, error) {
	resp, err := c.do(&server.Request{Cmd: "stats"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// RemoteArtifact names a program compiled by the daemon.
type RemoteArtifact struct {
	ID     string
	Cached bool
	Funcs  int
}

// Compile compiles source text on the daemon (its artifact store
// coalesces and caches) and returns the artifact id sessions open on.
func (c *Client) Compile(name, src string) (*RemoteArtifact, error) {
	resp, err := c.do(&server.Request{Cmd: "compile", Name: name, Src: src})
	if err != nil {
		return nil, err
	}
	return &RemoteArtifact{ID: resp.Artifact, Cached: resp.Cached, Funcs: resp.Funcs}, nil
}

// CompileWorkload compiles one of the daemon's built-in bench workloads.
func (c *Client) CompileWorkload(workload string) (*RemoteArtifact, error) {
	resp, err := c.do(&server.Request{Cmd: "compile", Workload: workload})
	if err != nil {
		return nil, err
	}
	return &RemoteArtifact{ID: resp.Artifact, Cached: resp.Cached, Funcs: resp.Funcs}, nil
}

// RemoteSession is a debug session living on the daemon. ID addresses
// it; Handle is the secret capability that proves the right to it —
// persist both to resume the session from another connection or process
// via Attach, and guard the handle like a password.
type RemoteSession struct {
	c      *Client
	ID     string
	Handle string
}

// Open starts a session on a compiled artifact. The session is owned by
// this client's connection: other connections' commands on it are
// refused (not-owner) unless they present the handle.
func (c *Client) Open(artifactID string) (*RemoteSession, error) {
	resp, err := c.do(&server.Request{Cmd: "open-session", Artifact: artifactID})
	if err != nil {
		return nil, err
	}
	return &RemoteSession{c: c, ID: resp.Session, Handle: resp.Handle}, nil
}

// Attach resumes an existing session — typically one opened by a
// previous, dropped connection — by presenting its handle, and returns
// the stop it is still parked at (nil if it has exited or never ran).
func (c *Client) Attach(sessionID, handle string) (*RemoteSession, *RemoteStop, error) {
	resp, err := c.do(&server.Request{Cmd: "attach", Session: sessionID, Handle: handle})
	if err != nil {
		return nil, nil, err
	}
	return &RemoteSession{c: c, ID: resp.Session, Handle: handle}, resp.Stop, nil
}

// Session binds an id/handle pair to this client without a round trip,
// for callers that persisted the pair themselves. The first command
// attaches it (the server accepts the handle on any session command).
func (c *Client) Session(sessionID, handle string) *RemoteSession {
	return &RemoteSession{c: c, ID: sessionID, Handle: handle}
}

// send issues one session command, always carrying the handle so the
// command reattaches the session if this connection does not own it yet.
func (s *RemoteSession) send(req *server.Request) (*server.Response, error) {
	req.Session = s.ID
	req.Handle = s.Handle
	return s.c.do(req)
}

// BreakAtLine sets a breakpoint at the first statement on a source line.
func (s *RemoteSession) BreakAtLine(line int) (*RemoteStop, error) {
	resp, err := s.send(&server.Request{Cmd: "break", Line: line})
	if err != nil {
		return nil, err
	}
	return resp.Stop, nil
}

// BreakAtStmt sets a breakpoint at statement stmt of the named function.
func (s *RemoteSession) BreakAtStmt(fn string, stmt int) (*RemoteStop, error) {
	resp, err := s.send(&server.Request{Cmd: "break", Func: fn, Stmt: &stmt})
	if err != nil {
		return nil, err
	}
	return resp.Stop, nil
}

// Continue resumes until a breakpoint (returned) or exit (nil, with the
// program's output).
func (s *RemoteSession) Continue() (stop *RemoteStop, output string, err error) {
	resp, err := s.send(&server.Request{Cmd: "continue"})
	if err != nil {
		return nil, "", err
	}
	return resp.Stop, resp.Output, nil
}

// Step advances to the next source statement (nil stop means exit).
func (s *RemoteSession) Step() (stop *RemoteStop, output string, err error) {
	resp, err := s.send(&server.Request{Cmd: "step"})
	if err != nil {
		return nil, "", err
	}
	return resp.Stop, resp.Output, nil
}

// Where reports the current stop, or nil if not stopped (exited reports
// whether the program has finished).
func (s *RemoteSession) Where() (stop *RemoteStop, exited bool, err error) {
	resp, err := s.send(&server.Request{Cmd: "where"})
	if err != nil {
		return nil, false, err
	}
	return resp.Stop, resp.Exited, nil
}

// Print reports one variable at the current stop, classification and
// warning-annotated display included.
func (s *RemoteSession) Print(name string) (RemoteVar, error) {
	resp, err := s.send(&server.Request{Cmd: "print", Var: name})
	if err != nil {
		return RemoteVar{}, err
	}
	if len(resp.Vars) != 1 {
		return RemoteVar{}, fmt.Errorf("minic: print returned %d vars", len(resp.Vars))
	}
	return resp.Vars[0], nil
}

// Info reports every variable in scope at the current stop.
func (s *RemoteSession) Info() ([]RemoteVar, error) {
	resp, err := s.send(&server.Request{Cmd: "info"})
	if err != nil {
		return nil, err
	}
	return resp.Vars, nil
}

// Detach releases this connection's ownership but keeps the session
// alive on the daemon for a later Attach.
func (s *RemoteSession) Detach() error {
	_, err := s.send(&server.Request{Cmd: "detach"})
	return err
}

// Close ends the session on the daemon and returns the program's output
// so far.
func (s *RemoteSession) Close() (output string, err error) {
	resp, err := s.send(&server.Request{Cmd: "close"})
	if err != nil {
		return "", err
	}
	return resp.Output, nil
}
