package minic

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/server"
)

// This file is the remote half of the public API: a client for the mcd
// debug-session daemon. It speaks the line-delimited JSON protocol of
// internal/server over TCP or unix sockets, authenticates with the
// daemon's shared secret, and models the capability-style session
// ownership the server enforces: opening a session yields an id plus a
// secret handle, and a client that reconnects (same process or a new
// one) resumes its session by presenting the handle to Attach.

// RemoteError is a typed protocol error from a remote daemon. Code is
// one of the stable server codes ("not-owner", "auth-required", ...).
type RemoteError struct {
	Code    string
	Message string
}

func (e *RemoteError) Error() string { return fmt.Sprintf("minic: remote %s: %s", e.Code, e.Message) }

// Is matches RemoteErrors by code, so errors.Is(err, ErrShuttingDown)
// works on any error returned by this package.
func (e *RemoteError) Is(target error) bool {
	t, ok := target.(*RemoteError)
	return ok && e.Code == t.Code
}

// Retryable reports whether the error is transient by protocol contract:
// the daemon is draining (shutting-down — a restarted or sibling daemon
// will answer) or the one command ran past the daemon's request timeout
// (timeout — the session survived at the cutoff point, so the caller may
// resume it). Everything else means retrying the same request will fail
// the same way.
func (e *RemoteError) Retryable() bool {
	return e.Code == server.CodeShuttingDown || e.Code == server.CodeTimeout
}

// Typed sentinels for errors.Is. The daemon answers shutting-down while
// draining: a drain, not a hard failure — sessions survive to the spill
// tier or a handle re-attach. timeout cuts off one continue/step; the
// session survives at the instruction boundary where the cutoff landed.
var (
	ErrShuttingDown = &RemoteError{Code: server.CodeShuttingDown}
	ErrTimeout      = &RemoteError{Code: server.CodeTimeout}
)

// Wire-shape re-exports, so client code needs no internal imports.
type (
	// RemoteStop is a stop location reported by a remote session.
	RemoteStop = server.StopInfo
	// RemoteVar is one classified variable from a remote print/info.
	RemoteVar = server.VarInfo
	// RemoteStats is the daemon's metrics snapshot.
	RemoteStats = server.Stats
	// RemoteCoverage is the coverage command's payload: whole-artifact
	// totals plus per-function rows, with server-rendered percentage
	// strings.
	RemoteCoverage = server.CoverageInfo
	// RemoteCoverageCounts is one row of a RemoteCoverage report.
	RemoteCoverageCounts = server.CoverageCounts
)

// DialOption configures Dial.
type DialOption func(*dialSettings)

type dialSettings struct {
	token   string
	timeout time.Duration
	retry   RetryPolicy
	retryOn bool
}

// RetryPolicy tunes WithRetry. The zero value of each field selects its
// default.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per command, first attempt
	// included; <= 0 means 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt (with jitter) up to MaxDelay. <= 0 means 25ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 means 1s.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// WithAuthToken presents the daemon's shared secret (its -auth-token)
// during Dial. Without it, a token-protected daemon answers everything
// but stats with auth-required.
func WithAuthToken(token string) DialOption {
	return func(ds *dialSettings) { ds.token = token }
}

// WithDialTimeout bounds the connection attempt (default 10s).
func WithDialTimeout(d time.Duration) DialOption {
	return func(ds *dialSettings) { ds.timeout = d }
}

// WithRetry makes the client retry failed commands with exponential
// backoff plus jitter — but only commands that are idempotent on the
// daemon (auth, stats, compile, attach, detach, break, where, print,
// info). Execution commands (continue, step), open-session, and close
// are never resent: the client cannot know whether the daemon acted on
// a request whose response was lost, and re-running execution would
// corrupt the session's position.
//
// Two failure shapes are retried: a broken connection (the client
// redials and — since every session command carries the session handle —
// the retried command reattaches its session on the new connection), and
// the daemon's typed shutting-down answer (a drain; a restarted daemon
// with the same spill dir serves the warm set). After a broken
// connection, even non-idempotent commands get the redial on their next
// call; they just don't get the resend.
func WithRetry(p RetryPolicy) DialOption {
	return func(ds *dialSettings) { ds.retry = p.withDefaults(); ds.retryOn = true }
}

// idempotentCmds are safe to resend when the previous attempt's outcome
// is unknown: re-running them leaves the daemon in the same state and
// yields the same answer. compile is idempotent because artifacts are
// content-addressed (a duplicate compile coalesces or hits the cache);
// attach/detach/break converge to the same session state.
var idempotentCmds = map[string]bool{
	"auth": true, "stats": true, "compile": true, "attach": true,
	"detach": true, "break": true, "where": true, "print": true, "info": true,
	"coverage": true,
}

// Client is one connection to a remote mcd daemon. It is safe for
// concurrent use; requests are serialized on the wire, matching the
// protocol's one-response-per-line ordering.
type Client struct {
	network string
	addr    string
	ds      dialSettings

	mu     sync.Mutex
	conn   net.Conn
	enc    *json.Encoder
	sc     *bufio.Scanner
	next   int64
	broken bool // the connection died mid-command; redial before reuse
}

// Dial connects to an mcd daemon on network ("tcp" or "unix") and
// address, and authenticates if a token option is given (sending auth is
// harmless on an open daemon).
func Dial(network, addr string, opts ...DialOption) (*Client, error) {
	ds := dialSettings{timeout: 10 * time.Second}
	for _, o := range opts {
		o(&ds)
	}
	conn, err := net.DialTimeout(network, addr, ds.timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{network: network, addr: addr, ds: ds}
	c.reset(conn)
	if ds.token != "" {
		if _, err := c.do(&server.Request{Cmd: "auth", Token: ds.token}); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return c, nil
}

// reset points the client at a (new) connection. Caller holds c.mu or
// has exclusive access.
func (c *Client) reset(conn net.Conn) {
	c.conn = conn
	c.enc = json.NewEncoder(conn)
	c.sc = bufio.NewScanner(conn)
	c.sc.Buffer(make([]byte, 0, 64*1024), server.MaxLine)
	c.broken = false
}

// redialLocked replaces a broken connection and re-authenticates.
// Called with c.mu held.
func (c *Client) redialLocked() error {
	conn, err := net.DialTimeout(c.network, c.addr, c.ds.timeout)
	if err != nil {
		return err
	}
	c.conn.Close()
	c.reset(conn)
	if c.ds.token != "" {
		if _, err := c.doLocked(&server.Request{Cmd: "auth", Token: c.ds.token}); err != nil {
			return err
		}
	}
	return nil
}

// do sends one request and decodes its response, retrying per the
// WithRetry policy when armed.
func (c *Client) do(req *server.Request) (*server.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempts := 1
	if c.ds.retryOn && idempotentCmds[req.Cmd] {
		attempts = c.ds.retry.MaxAttempts
	}
	var lastErr error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			time.Sleep(backoff(c.ds.retry, try))
		}
		if c.broken {
			if !c.ds.retryOn {
				return nil, lastErrOr(lastErr)
			}
			if err := c.redialLocked(); err != nil {
				lastErr = err
				c.broken = true
				continue
			}
		}
		resp, err := c.doLocked(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var re *RemoteError
		if errors.As(err, &re) {
			// The daemon answered: the connection is healthy, the error is
			// semantic. Only the typed transient codes are worth retrying.
			if !re.Retryable() {
				return nil, err
			}
			continue
		}
		// Transport error: the connection is unusable whether or not the
		// daemon acted on the request. Redial on the next attempt (or the
		// next call, for commands that must not be resent).
		c.broken = true
	}
	return nil, lastErr
}

func lastErrOr(err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("minic: connection is broken (dial a new client)")
}

// backoff is the delay before retry number try (1-based): exponential in
// BaseDelay, capped at MaxDelay, with the upper half jittered so a fleet
// of clients retrying a restarted daemon does not stampede in phase.
func backoff(p RetryPolicy, try int) time.Duration {
	d := p.BaseDelay << (try - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	half := int64(d / 2)
	return time.Duration(half + rand.Int63n(half+1))
}

// doLocked sends one request (assigning it the next id) and decodes its
// response, mapping protocol errors to *RemoteError. Called with c.mu
// held.
func (c *Client) doLocked(req *server.Request) (*server.Response, error) {
	c.next++
	req.ID = c.next
	if err := c.enc.Encode(req); err != nil {
		return nil, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	var resp server.Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, fmt.Errorf("minic: bad response line: %w", err)
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("minic: response id %d for request %d", resp.ID, req.ID)
	}
	if !resp.OK {
		if resp.Error == nil {
			return nil, fmt.Errorf("minic: remote error with no detail")
		}
		return nil, &RemoteError{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	return &resp, nil
}

// Close drops the connection. Sessions opened on it stay alive on the
// daemon (detached) until reattached or reaped.
func (c *Client) Close() error { return c.conn.Close() }

// Stats fetches the daemon's metrics snapshot (allowed even before
// authentication).
func (c *Client) Stats() (*RemoteStats, error) {
	resp, err := c.do(&server.Request{Cmd: "stats"})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// RemoteArtifact names a program compiled by the daemon.
type RemoteArtifact struct {
	ID     string
	Cached bool
	Funcs  int
}

// Compile compiles source text on the daemon (its artifact store
// coalesces and caches) and returns the artifact id sessions open on.
func (c *Client) Compile(name, src string) (*RemoteArtifact, error) {
	resp, err := c.do(&server.Request{Cmd: "compile", Name: name, Src: src})
	if err != nil {
		return nil, err
	}
	return &RemoteArtifact{ID: resp.Artifact, Cached: resp.Cached, Funcs: resp.Funcs}, nil
}

// RemoteConfig selects the daemon-side pipeline configuration for
// CompileWith. The zero value (or nil) means full optimization.
type RemoteConfig = server.ConfigSpec

// CompileWith compiles source text on the daemon under an explicit
// pipeline configuration (opt level, register allocation, scheduling).
// Artifacts are content-addressed per configuration, so the same source
// under different configs yields distinct artifacts.
func (c *Client) CompileWith(name, src string, cfg *RemoteConfig) (*RemoteArtifact, error) {
	resp, err := c.do(&server.Request{Cmd: "compile", Name: name, Src: src, Config: cfg})
	if err != nil {
		return nil, err
	}
	return &RemoteArtifact{ID: resp.Artifact, Cached: resp.Cached, Funcs: resp.Funcs}, nil
}

// CompileWorkload compiles one of the daemon's built-in bench workloads.
func (c *Client) CompileWorkload(workload string) (*RemoteArtifact, error) {
	resp, err := c.do(&server.Request{Cmd: "compile", Workload: workload})
	if err != nil {
		return nil, err
	}
	return &RemoteArtifact{ID: resp.Artifact, Cached: resp.Cached, Funcs: resp.Funcs}, nil
}

// Coverage runs the daemon's deterministic coverage sweep over a
// compiled artifact: every statement×variable(×field) pair bucketed by
// what the classifier lets the debugger show there. The percentage
// strings are rendered by the daemon through the same formatting path
// the in-process sweep uses, so the two agree byte for byte on the same
// artifact — the oracle's remote-equality check depends on that.
func (c *Client) Coverage(artifactID string) (*RemoteCoverage, error) {
	resp, err := c.do(&server.Request{Cmd: "coverage", Artifact: artifactID})
	if err != nil {
		return nil, err
	}
	return resp.Coverage, nil
}

// RemoteSession is a debug session living on the daemon. ID addresses
// it; Handle is the secret capability that proves the right to it —
// persist both to resume the session from another connection or process
// via Attach, and guard the handle like a password.
type RemoteSession struct {
	c      *Client
	ID     string
	Handle string
}

// Open starts a session on a compiled artifact. The session is owned by
// this client's connection: other connections' commands on it are
// refused (not-owner) unless they present the handle.
func (c *Client) Open(artifactID string) (*RemoteSession, error) {
	resp, err := c.do(&server.Request{Cmd: "open-session", Artifact: artifactID})
	if err != nil {
		return nil, err
	}
	return &RemoteSession{c: c, ID: resp.Session, Handle: resp.Handle}, nil
}

// Attach resumes an existing session — typically one opened by a
// previous, dropped connection — by presenting its handle, and returns
// the stop it is still parked at (nil if it has exited or never ran).
func (c *Client) Attach(sessionID, handle string) (*RemoteSession, *RemoteStop, error) {
	resp, err := c.do(&server.Request{Cmd: "attach", Session: sessionID, Handle: handle})
	if err != nil {
		return nil, nil, err
	}
	return &RemoteSession{c: c, ID: resp.Session, Handle: handle}, resp.Stop, nil
}

// Session binds an id/handle pair to this client without a round trip,
// for callers that persisted the pair themselves. The first command
// attaches it (the server accepts the handle on any session command).
func (c *Client) Session(sessionID, handle string) *RemoteSession {
	return &RemoteSession{c: c, ID: sessionID, Handle: handle}
}

// send issues one session command, always carrying the handle so the
// command reattaches the session if this connection does not own it yet.
func (s *RemoteSession) send(req *server.Request) (*server.Response, error) {
	req.Session = s.ID
	req.Handle = s.Handle
	return s.c.do(req)
}

// BreakAtLine sets a breakpoint at the first statement on a source line.
func (s *RemoteSession) BreakAtLine(line int) (*RemoteStop, error) {
	resp, err := s.send(&server.Request{Cmd: "break", Line: line})
	if err != nil {
		return nil, err
	}
	return resp.Stop, nil
}

// BreakAtStmt sets a breakpoint at statement stmt of the named function.
func (s *RemoteSession) BreakAtStmt(fn string, stmt int) (*RemoteStop, error) {
	resp, err := s.send(&server.Request{Cmd: "break", Func: fn, Stmt: &stmt})
	if err != nil {
		return nil, err
	}
	return resp.Stop, nil
}

// Continue resumes until a breakpoint (returned) or exit (nil, with the
// program's output).
func (s *RemoteSession) Continue() (stop *RemoteStop, output string, err error) {
	resp, err := s.send(&server.Request{Cmd: "continue"})
	if err != nil {
		return nil, "", err
	}
	return resp.Stop, resp.Output, nil
}

// Step advances to the next source statement (nil stop means exit).
func (s *RemoteSession) Step() (stop *RemoteStop, output string, err error) {
	resp, err := s.send(&server.Request{Cmd: "step"})
	if err != nil {
		return nil, "", err
	}
	return resp.Stop, resp.Output, nil
}

// Where reports the current stop, or nil if not stopped (exited reports
// whether the program has finished).
func (s *RemoteSession) Where() (stop *RemoteStop, exited bool, err error) {
	resp, err := s.send(&server.Request{Cmd: "where"})
	if err != nil {
		return nil, false, err
	}
	return resp.Stop, resp.Exited, nil
}

// Print reports one variable at the current stop, classification and
// warning-annotated display included.
func (s *RemoteSession) Print(name string) (RemoteVar, error) {
	resp, err := s.send(&server.Request{Cmd: "print", Var: name})
	if err != nil {
		return RemoteVar{}, err
	}
	if len(resp.Vars) != 1 {
		return RemoteVar{}, fmt.Errorf("minic: print returned %d vars", len(resp.Vars))
	}
	return resp.Vars[0], nil
}

// Info reports every variable in scope at the current stop.
func (s *RemoteSession) Info() ([]RemoteVar, error) {
	resp, err := s.send(&server.Request{Cmd: "info"})
	if err != nil {
		return nil, err
	}
	return resp.Vars, nil
}

// Detach releases this connection's ownership but keeps the session
// alive on the daemon for a later Attach.
func (s *RemoteSession) Detach() error {
	_, err := s.send(&server.Request{Cmd: "detach"})
	return err
}

// Close ends the session on the daemon and returns the program's output
// so far.
func (s *RemoteSession) Close() (output string, err error) {
	resp, err := s.send(&server.Request{Cmd: "close"})
	if err != nil {
		return "", err
	}
	return resp.Output, nil
}
