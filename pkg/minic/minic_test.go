package minic_test

import (
	"sync"
	"testing"

	"repro/pkg/minic"
)

const loopProg = `
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 10; i++) { s += i; }
	print(s);
	return s;
}
`

func TestOptionsShapePipeline(t *testing.T) {
	o0, err := minic.Compile("t.mc", loopProg, minic.WithOptLevel(0))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := minic.Compile("t.mc", loopProg)
	if err != nil {
		t.Fatal(err)
	}
	if f := o0.Func("main"); f.Allocated || f.Scheduled {
		t.Fatal("O0 artifact went through regalloc/sched")
	}
	if f := o2.Func("main"); !f.Allocated || !f.Scheduled {
		t.Fatal("default compile skipped regalloc/sched")
	}
	m0, err := o0.Run()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := o2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m0.Output() != m2.Output() {
		t.Fatalf("optimization changed program output: %q vs %q", m0.Output(), m2.Output())
	}
	if m2.Cycles >= m0.Cycles {
		t.Errorf("O2 (%d cycles) not faster than O0 (%d cycles)", m2.Cycles, m0.Cycles)
	}
	if f := o2.Func("main"); o2.Analysis(f) != o2.Analysis(f) {
		t.Fatal("Analysis not shared within an artifact")
	}
}

func TestClassifyFunc(t *testing.T) {
	art, err := minic.Compile("t.mc", loopProg)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := art.ClassifyFunc("main")
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) == 0 {
		t.Fatal("ClassifyFunc returned no statements")
	}
	f := art.Func("main")
	an := art.Analysis(f)
	for _, sc := range sweep {
		if len(sc.Classes) == 0 {
			t.Errorf("stmt %d: no classifications", sc.Stmt)
		}
		want, ok := an.ClassifyAllAt(sc.Stmt)
		if !ok {
			t.Fatalf("stmt %d in sweep but not classifiable directly", sc.Stmt)
		}
		if len(want) != len(sc.Classes) {
			t.Fatalf("stmt %d: sweep has %d classes, direct query %d", sc.Stmt, len(sc.Classes), len(want))
		}
		for i := range want {
			if sc.Classes[i].State != want[i].State || sc.Classes[i].Why != want[i].Why {
				t.Errorf("stmt %d class %d: sweep %v/%q vs direct %v/%q", sc.Stmt, i,
					sc.Classes[i].State, sc.Classes[i].Why, want[i].State, want[i].Why)
			}
		}
	}
	if _, err := art.ClassifyFunc("nope"); err == nil {
		t.Fatal("ClassifyFunc on a missing function should fail")
	}
}

func TestConcurrentSessionsOnOneArtifact(t *testing.T) {
	art, err := minic.Compile("t.mc", loopProg, minic.WithPrecomputedAnalyses(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := minic.NewSession(art)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := sess.BreakAtStmt("main", 2); err != nil {
				t.Error(err)
				return
			}
			for hits := 0; hits < 3; hits++ {
				bp, err := sess.Continue()
				if err != nil {
					t.Error(err)
					return
				}
				if bp == nil {
					return
				}
				if _, err := sess.Info(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
