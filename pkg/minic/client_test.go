package minic_test

import (
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/pkg/minic"
)

const clientProg = `
int main() {
	int x = 10;
	int y = x * 3;
	print(y);
	return y;
}
`

// startDaemon runs an in-process server on a loopback TCP listener, the
// way mcd -listen does, and returns its address.
func startDaemon(t *testing.T, opts server.Options) string {
	t.Helper()
	s := server.New(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go s.ListenAndServe(l)
	t.Cleanup(s.Close)
	return l.Addr().String()
}

func TestClientEndToEnd(t *testing.T) {
	addr := startDaemon(t, server.Options{AuthToken: "sesame"})

	// Stats is open; everything else needs the token.
	bare, err := minic.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if _, err := bare.Stats(); err != nil {
		t.Fatalf("unauthenticated stats: %v", err)
	}
	_, err = bare.Compile("t.mc", clientProg)
	var re *minic.RemoteError
	if !errors.As(err, &re) || re.Code != server.CodeAuthRequired {
		t.Fatalf("unauthenticated compile = %v, want %s", err, server.CodeAuthRequired)
	}

	// Wrong token fails at Dial.
	if _, err := minic.Dial("tcp", addr, minic.WithAuthToken("wrong")); err == nil {
		t.Fatal("dial with wrong token succeeded")
	}

	c, err := minic.Dial("tcp", addr, minic.WithAuthToken("sesame"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	art, err := c.Compile("t.mc", clientProg)
	if err != nil {
		t.Fatal(err)
	}
	if art.ID == "" || art.Funcs != 1 {
		t.Fatalf("compile = %+v", art)
	}
	sess, err := c.Open(art.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sess.ID == "" || sess.Handle == "" {
		t.Fatalf("open = %+v", sess)
	}
	if _, err := sess.BreakAtStmt("main", 1); err != nil {
		t.Fatal(err)
	}
	stop, _, err := sess.Continue()
	if err != nil || stop == nil || stop.Func != "main" {
		t.Fatalf("continue = %+v, %v", stop, err)
	}
	v, err := sess.Print("x")
	if err != nil || !strings.HasPrefix(v.Display, "x = 10") {
		t.Fatalf("print = %+v, %v", v, err)
	}
	vars, err := sess.Info()
	if err != nil || len(vars) < 2 {
		t.Fatalf("info = %d vars, %v", len(vars), err)
	}
	stop, output, err := sess.Continue()
	if err != nil || stop != nil || !strings.Contains(output, "30") {
		t.Fatalf("final continue = %+v %q %v", stop, output, err)
	}
	if out, err := sess.Close(); err != nil || !strings.Contains(out, "30") {
		t.Fatalf("close = %q, %v", out, err)
	}
}

// TestClientReconnect drops a client mid-session and resumes from a new
// connection with the persisted id/handle pair: the session must be
// parked at the identical stop.
func TestClientReconnect(t *testing.T) {
	addr := startDaemon(t, server.Options{})

	c1, err := minic.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	art, err := c1.Compile("t.mc", clientProg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c1.Open(art.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.BreakAtStmt("main", 1); err != nil {
		t.Fatal(err)
	}
	stop1, _, err := sess.Continue()
	if err != nil || stop1 == nil {
		t.Fatalf("continue = %+v, %v", stop1, err)
	}
	id, handle := sess.ID, sess.Handle
	c1.Close() // connection drops; the daemon detaches the session

	c2, err := minic.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	resumed, stop2, err := c2.Attach(id, handle)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if stop2 == nil || *stop2 != *stop1 {
		t.Fatalf("attach stop = %+v, want %+v", stop2, stop1)
	}
	where, exited, err := resumed.Where()
	if err != nil || exited || where == nil || *where != *stop1 {
		t.Fatalf("where after reconnect = %+v exited=%v %v, want %+v", where, exited, err, stop1)
	}
	// The resumed session still executes.
	if v, err := resumed.Print("x"); err != nil || v.Name != "x" {
		t.Fatalf("print after reconnect = %+v, %v", v, err)
	}

	// Attach with a bogus handle is refused.
	if _, _, err := c2.Attach(id, "deadbeef"); err == nil {
		t.Fatal("attach with wrong handle succeeded")
	}
}

// TestClientOwnershipDenied checks the server refuses another client's
// commands on a session when the handle is withheld.
func TestClientOwnershipDenied(t *testing.T) {
	addr := startDaemon(t, server.Options{})

	owner, err := minic.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	art, err := owner.Compile("t.mc", clientProg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := owner.Open(art.ID)
	if err != nil {
		t.Fatal(err)
	}

	intruder, err := minic.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer intruder.Close()
	stolen := intruder.Session(sess.ID, "") // id leaked, handle withheld
	_, _, err = stolen.Step()
	var re *minic.RemoteError
	if !errors.As(err, &re) || re.Code != server.CodeNotOwner {
		t.Fatalf("intruder step = %v, want %s", err, server.CodeNotOwner)
	}
	if _, err := stolen.Close(); err == nil {
		t.Fatal("intruder closed another connection's session")
	}
	// The owner is unaffected.
	if _, err := sess.BreakAtStmt("main", 1); err != nil {
		t.Fatalf("owner break after intrusion: %v", err)
	}
	// With the persisted handle, a second connection of the same client
	// may take the session over.
	taken := intruder.Session(sess.ID, sess.Handle)
	if _, _, err := taken.Where(); err != nil {
		t.Fatalf("takeover with handle: %v", err)
	}
}
