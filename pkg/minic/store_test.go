package minic_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/pkg/minic"
)

// distinct MiniC sources whose combined artifact + analysis cost far
// exceeds the stress test's budget. Each differs in constants and loop
// bounds, so artifacts, displays and classifications all differ.
func stressSource(i int) (string, string) {
	return fmt.Sprintf("stress%d.mc", i), fmt.Sprintf(`
int g(int c, int a, int b) {
	int x = a * b + %d;
	int r = 0;
	if (c) {
		r = x;
	}
	return r + a;
}
int main() {
	int s = 0;
	int i;
	for (i = 0; i < %d; i++) { s += g(i, i + 1, %d); }
	print(s);
	return s;
}
`, i, 4+i%5, 2+i)
}

// renderClassifications flattens a full-function classification sweep to
// one comparable string.
func renderClassifications(a *minic.Artifact, fn string) (string, error) {
	scs, err := a.ClassifyFunc(fn)
	if err != nil {
		return "", err
	}
	out := ""
	for _, sc := range scs {
		for _, c := range sc.Classes {
			out += fmt.Sprintf("%d %s %s %s %s\n", sc.Stmt, c.Var.Name, c.State, c.Cause, c.Why)
		}
	}
	return out, nil
}

// TestStoreEvictionStress is the tentpole's concurrency-correctness test:
// N goroutines compile M-sources-worth of traffic through a store whose
// budget holds only a fraction of them (forcing constant eviction and
// spill), while classifier goroutines sweep whole functions on the
// artifacts as they come out. Run under -race. Every classification must
// match the single-threaded reference — no classification may observe a
// partially evicted artifact — and spilled artifacts must reload
// byte-identical machine code.
func TestStoreEvictionStress(t *testing.T) {
	const (
		numSources   = 24
		compilers    = 4
		classifiers  = 4
		roundsPerSrc = 3
	)

	// Single-threaded reference, compiled outside any store.
	wantMach := make([]string, numSources)
	wantClasses := make([]string, numSources)
	for i := 0; i < numSources; i++ {
		name, src := stressSource(i)
		a, err := minic.Compile(name, src)
		if err != nil {
			t.Fatal(err)
		}
		wantMach[i] = a.Result().Mach.String()
		wantClasses[i], err = renderClassifications(a, "g")
		if err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	// Budget sized well below the combined cost (each artifact + analyses
	// runs tens of KB) so eviction and spill churn throughout the test.
	st := minic.NewStore(
		minic.WithShards(8),
		minic.WithMemoryBudget(256<<10),
		minic.WithSpillDir(dir),
	)

	arts := make(chan int, compilers*numSources*roundsPerSrc)
	var wg sync.WaitGroup
	errs := make(chan error, compilers+classifiers)

	// Compilers: sweep the source set repeatedly through the store.
	for c := 0; c < compilers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < roundsPerSrc; r++ {
				for i := 0; i < numSources; i++ {
					idx := (i + c*7) % numSources
					name, src := stressSource(idx)
					a, err := minic.Compile(name, src, minic.WithStore(st))
					if err != nil {
						errs <- fmt.Errorf("compiler %d: %s: %v", c, name, err)
						return
					}
					if got := a.Result().Mach.String(); got != wantMach[idx] {
						errs <- fmt.Errorf("compiler %d: %s: machine code differs from reference", c, name)
						return
					}
					arts <- idx
				}
			}
			errs <- nil
		}(c)
	}

	// Classifiers: sweep whole functions on artifacts as compilers hand
	// them over; every sweep must match the reference even while the
	// store is evicting and spilling under them.
	for cl := 0; cl < classifiers; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			n := 0
			for idx := range arts {
				name, src := stressSource(idx)
				a, err := minic.Compile(name, src, minic.WithStore(st))
				if err != nil {
					errs <- fmt.Errorf("classifier %d: %s: %v", cl, name, err)
					return
				}
				got, err := renderClassifications(a, "g")
				if err != nil {
					errs <- fmt.Errorf("classifier %d: %s: %v", cl, name, err)
					return
				}
				if got != wantClasses[idx] {
					errs <- fmt.Errorf("classifier %d: %s: classifications differ from reference:\ngot:\n%s\nwant:\n%s",
						cl, name, got, wantClasses[idx])
					return
				}
				n++
			}
			errs <- nil
		}(cl)
	}

	// Close the work channel once the compilers are done.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < compilers; i++ {
			if err := <-errs; err != nil {
				t.Error(err)
			}
		}
		close(arts)
		for i := 0; i < classifiers; i++ {
			if err := <-errs; err != nil {
				t.Error(err)
			}
		}
	}()
	wg.Wait()
	<-done
	if t.Failed() {
		return
	}

	stats := st.Stats()
	if stats.Evictions == 0 || stats.SpillWrites == 0 {
		t.Fatalf("stress did not churn the store: %+v", stats)
	}
	if stats.MemoryBytes > stats.MemoryBudget {
		t.Fatalf("accounted bytes %d exceed budget %d", stats.MemoryBytes, stats.MemoryBudget)
	}

	// Every spilled artifact reloads byte-identical: drain the store by
	// requesting everything once more (most now come from the disk tier).
	for i := 0; i < numSources; i++ {
		name, src := stressSource(i)
		a, err := minic.Compile(name, src, minic.WithStore(st))
		if err != nil {
			t.Fatal(err)
		}
		if got := a.Result().Mach.String(); got != wantMach[i] {
			t.Fatalf("%s: reloaded machine code differs from reference", name)
		}
		got, err := renderClassifications(a, "g")
		if err != nil {
			t.Fatal(err)
		}
		if got != wantClasses[i] {
			t.Fatalf("%s: reloaded classifications differ from reference", name)
		}
	}
	if st.Stats().SpillHits == 0 {
		t.Fatalf("drain never hit the disk tier: %+v", st.Stats())
	}
}

// TestStoreSharedAnalyses checks the WithStore artifact identity: two
// compiles of one source through one store share both the result and the
// analysis set.
func TestStoreSharedAnalyses(t *testing.T) {
	st := minic.NewStore()
	name, src := stressSource(0)
	a1, err := minic.Compile(name, src, minic.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := minic.Compile(name, src, minic.WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if a1.Result() != a2.Result() {
		t.Fatal("store hit returned a different result")
	}
	f := a1.Func("g")
	if a1.Analysis(f) != a2.Analysis(f) {
		t.Fatal("analyses not shared across store hits")
	}
}
