package minic_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
	"repro/pkg/minic"
)

// drainingDaemon is a fake daemon that answers every request with the
// typed shutting-down error, counting requests — the shape of a real
// daemon mid-drain, held there forever so retry behavior is observable.
func drainingDaemon(t *testing.T) (addr string, count *atomic.Int64) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	count = new(atomic.Int64)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				enc := json.NewEncoder(conn)
				for sc.Scan() {
					var req server.Request
					if json.Unmarshal(sc.Bytes(), &req) != nil {
						return
					}
					count.Add(1)
					enc.Encode(&server.Response{ID: req.ID, Error: &server.ProtoError{
						Code: server.CodeShuttingDown, Message: "draining",
					}})
				}
			}(conn)
		}
	}()
	return l.Addr().String(), count
}

func retryFast() minic.DialOption {
	return minic.WithRetry(minic.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	})
}

func TestRetryExhaustsAgainstDrainingDaemon(t *testing.T) {
	addr, count := drainingDaemon(t)
	c, err := minic.Dial("tcp", addr, retryFast())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Stats()
	if !errors.Is(err, minic.ErrShuttingDown) {
		t.Fatalf("stats against draining daemon = %v, want ErrShuttingDown", err)
	}
	if got := count.Load(); got != 3 {
		t.Fatalf("idempotent stats sent %d times, want MaxAttempts=3", got)
	}
}

func TestNonIdempotentCommandsAreNeverResent(t *testing.T) {
	addr, count := drainingDaemon(t)
	c, err := minic.Dial("tcp", addr, retryFast())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := count.Load()
	if _, err := c.Open("deadbeef"); !errors.Is(err, minic.ErrShuttingDown) {
		t.Fatalf("open = %v, want ErrShuttingDown", err)
	}
	if got := count.Load() - before; got != 1 {
		t.Fatalf("open-session sent %d times, want exactly 1", got)
	}
}

func TestRemoteErrorTyping(t *testing.T) {
	sd := &minic.RemoteError{Code: server.CodeShuttingDown, Message: "draining"}
	to := &minic.RemoteError{Code: server.CodeTimeout, Message: "deadline"}
	bad := &minic.RemoteError{Code: server.CodeBadRequest, Message: "nope"}
	if !errors.Is(sd, minic.ErrShuttingDown) || !errors.Is(to, minic.ErrTimeout) {
		t.Fatal("typed codes do not match their sentinels")
	}
	if errors.Is(bad, minic.ErrShuttingDown) || errors.Is(sd, minic.ErrTimeout) {
		t.Fatal("sentinel matched a foreign code")
	}
	if !sd.Retryable() || !to.Retryable() {
		t.Fatal("transient codes not retryable")
	}
	if bad.Retryable() {
		t.Fatal("bad-request marked retryable")
	}
}

// TestRetryRedialsAndReattaches is the composition test: an injected
// response-write failure kills the connection mid-session, and the
// retrying client must recover transparently — redial, re-present the
// session handle, and complete the command — without the caller seeing
// any error.
func TestRetryRedialsAndReattaches(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	addr := startDaemon(t, server.Options{})
	c, err := minic.Dial("tcp", addr, retryFast())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	art, err := c.Compile("t.mc", clientProg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := c.Open(art.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The next response write fails: the daemon applies the command, then
	// drops the connection instead of answering.
	fault.Set("server.conn.write", fault.Rule{Times: 1})
	stop, err := sess.BreakAtStmt("main", 1)
	if err != nil {
		t.Fatalf("break through injected write failure = %v", err)
	}
	if stop == nil || stop.Func != "main" {
		t.Fatalf("break stop = %+v", stop)
	}
	if fault.Fired("server.conn.write") != 1 {
		t.Fatal("write-fault point never fired; the retry was not exercised")
	}

	// The session is fully usable on the redialed connection.
	stop, out, err := sess.Continue()
	if err != nil || stop == nil {
		t.Fatalf("continue after recovery = (%+v, %q, %v)", stop, out, err)
	}
	if v, err := sess.Print("x"); err != nil || v.Name != "x" {
		t.Fatalf("print after recovery = (%+v, %v)", v, err)
	}
	if _, err := sess.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
}

// TestBrokenConnectionWithoutRetryStaysBroken pins the non-retry
// default: a dead connection surfaces transport errors and the client
// does not silently redial.
func TestBrokenConnectionWithoutRetryStaysBroken(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	addr := startDaemon(t, server.Options{})
	c, err := minic.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	fault.Set("server.conn.write", fault.Rule{Times: 1})
	if _, err := c.Stats(); err == nil {
		t.Fatal("stats through a dropped connection succeeded without retry")
	}
	// Still broken on the next call: no hidden redial.
	if _, err := c.Stats(); err == nil {
		t.Fatal("client silently redialed without WithRetry")
	}
}
