// Service-layer benchmarks: what the debug-session server buys under
// repeated and concurrent load — cached vs. cold compiles, parallel vs.
// serial analysis precompute, and whole scripted sessions through the
// protocol loop.
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/server"
)

// BenchmarkCompileCold compiles the li workload through the pipeline
// every iteration — the cost every mcdbg invocation used to pay.
func BenchmarkCompileCold(b *testing.B) {
	src := bench.MustSource("li")
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile("li.mc", src, compile.O2()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileCached serves the same workload from the artifact
// cache after one cold compile.
func BenchmarkCompileCached(b *testing.B) {
	src := bench.MustSource("li")
	c := compile.NewCache(8)
	if _, _, err := c.Compile("li.mc", src, compile.O2()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := c.Compile("li.mc", src, compile.O2()); err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
	st := c.Stats()
	b.ReportMetric(float64(st.Hits), "cache-hits")
}

// BenchmarkAnalyzeProgram measures precomputing every function's core
// analyses, serial vs. bounded worker pool.
func BenchmarkAnalyzeProgram(b *testing.B) {
	res, err := bench.CompileWorkload("gcc", compile.O2())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.NewAnalysisSet().Precompute(res.Mach, workers)
			}
		})
	}
}

// BenchmarkServerSession runs a full scripted session (compile from
// cache, open, break, three stops with info, close) per iteration, with
// parallelism: the server's intended steady-state load shape.
func BenchmarkServerSession(b *testing.B) {
	s := server.New(server.Options{})
	warm := s.Handle(&server.Request{Cmd: "compile", Workload: "compress"})
	if !warm.OK {
		b.Fatalf("compile: %+v", warm.Error)
	}
	stmt := 6
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c := s.Handle(&server.Request{Cmd: "compile", Workload: "compress"})
			o := s.Handle(&server.Request{Cmd: "open-session", Artifact: c.Artifact})
			if !o.OK {
				b.Fatalf("open: %+v", o.Error)
			}
			sess := o.Session
			if r := s.Handle(&server.Request{Cmd: "break", Session: sess, Func: "compress", Stmt: &stmt}); !r.OK {
				b.Fatalf("break: %+v", r.Error)
			}
			for hit := 0; hit < 3; hit++ {
				r := s.Handle(&server.Request{Cmd: "continue", Session: sess})
				if !r.OK {
					b.Fatalf("continue: %+v", r.Error)
				}
				if r.Exited {
					break
				}
				if r := s.Handle(&server.Request{Cmd: "info", Session: sess}); !r.OK {
					b.Fatalf("info: %+v", r.Error)
				}
			}
			if r := s.Handle(&server.Request{Cmd: "close", Session: sess}); !r.OK {
				b.Fatalf("close: %+v", r.Error)
			}
		}
	})
	st := s.Snapshot()
	b.ReportMetric(float64(st.CacheHits), "cache-hits")
	b.ReportMetric(float64(st.CyclesExecuted), "vm-cycles")
}
