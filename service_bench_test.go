// Service-layer benchmarks: what the debug-session server buys under
// repeated and concurrent load — cached vs. cold compiles, parallel vs.
// serial analysis precompute, and whole scripted sessions through the
// protocol loop.
package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/vm"
)

// BenchmarkCompileCold compiles the li workload through the pipeline
// every iteration — the cost every mcdbg invocation used to pay.
func BenchmarkCompileCold(b *testing.B) {
	src := bench.MustSource("li")
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile("li.mc", src, compile.O2()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileCached serves the same workload from the artifact
// cache after one cold compile.
func BenchmarkCompileCached(b *testing.B) {
	src := bench.MustSource("li")
	c := compile.NewCache(8)
	if _, _, err := c.Compile("li.mc", src, compile.O2()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := c.Compile("li.mc", src, compile.O2()); err != nil || !hit {
			b.Fatalf("hit=%v err=%v", hit, err)
		}
	}
	st := c.Stats()
	b.ReportMetric(float64(st.Hits), "cache-hits")
}

// BenchmarkAnalyzeProgram measures precomputing every function's core
// analyses, serial vs. bounded worker pool.
func BenchmarkAnalyzeProgram(b *testing.B) {
	res, err := bench.CompileWorkload("gcc", compile.O2())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.NewAnalysisSet().Precompute(res.Mach, workers)
			}
		})
	}
}

// BenchmarkProtocolQueries measures the same 64 classification queries
// (info at a stop) issued through the full wire loop — JSON decode,
// dispatch, JSON encode — once as 64 serial request lines and once as a
// single batch request, which is the harness-style load the batch
// command exists for.
func BenchmarkProtocolQueries(b *testing.B) {
	const queries = 64
	s := server.New(server.Options{})
	c := s.Handle(&server.Request{Cmd: "compile", Workload: "compress"})
	if !c.OK {
		b.Fatalf("compile: %+v", c.Error)
	}
	o := s.Handle(&server.Request{Cmd: "open-session", Artifact: c.Artifact})
	if !o.OK {
		b.Fatalf("open: %+v", o.Error)
	}
	sess := o.Session
	stmt := 6
	if r := s.Handle(&server.Request{Cmd: "break", Session: sess, Func: "compress", Stmt: &stmt}); !r.OK {
		b.Fatalf("break: %+v", r.Error)
	}
	if r := s.Handle(&server.Request{Cmd: "continue", Session: sess}); !r.OK || r.Stop == nil {
		b.Fatalf("continue: %+v", r)
	}

	encode := func(reqs []server.Request) string {
		var sb strings.Builder
		enc := json.NewEncoder(&sb)
		for i := range reqs {
			if err := enc.Encode(&reqs[i]); err != nil {
				b.Fatal(err)
			}
		}
		return sb.String()
	}
	// Each Serve call below is its own connection, so the queries carry
	// the session handle to reattach the trusted-opened session.
	info := make([]server.Request, queries)
	for i := range info {
		info[i] = server.Request{ID: int64(i + 1), Cmd: "info", Session: sess, Handle: o.Handle}
	}
	serialInput := encode(info)
	batchedInput := encode([]server.Request{{ID: 1, Cmd: "batch", Reqs: info}})

	for _, tc := range []struct{ name, input string }{
		{"serial", serialInput},
		{"batched", batchedInput},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := s.Serve(strings.NewReader(tc.input), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(queries, "queries/op")
		})
	}
}

// BenchmarkServerSession runs a full scripted session (compile from
// cache, open, break, three stops with info, close) per iteration, with
// parallelism: the server's intended steady-state load shape.
func BenchmarkServerSession(b *testing.B) {
	s := server.New(server.Options{})
	warm := s.Handle(&server.Request{Cmd: "compile", Workload: "compress"})
	if !warm.OK {
		b.Fatalf("compile: %+v", warm.Error)
	}
	stmt := 6
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c := s.Handle(&server.Request{Cmd: "compile", Workload: "compress"})
			o := s.Handle(&server.Request{Cmd: "open-session", Artifact: c.Artifact})
			if !o.OK {
				b.Fatalf("open: %+v", o.Error)
			}
			sess := o.Session
			if r := s.Handle(&server.Request{Cmd: "break", Session: sess, Func: "compress", Stmt: &stmt}); !r.OK {
				b.Fatalf("break: %+v", r.Error)
			}
			for hit := 0; hit < 3; hit++ {
				r := s.Handle(&server.Request{Cmd: "continue", Session: sess})
				if !r.OK {
					b.Fatalf("continue: %+v", r.Error)
				}
				if r.Exited {
					break
				}
				if r := s.Handle(&server.Request{Cmd: "info", Session: sess}); !r.OK {
					b.Fatalf("info: %+v", r.Error)
				}
			}
			if r := s.Handle(&server.Request{Cmd: "close", Session: sess}); !r.OK {
				b.Fatalf("close: %+v", r.Error)
			}
		}
	})
	st := s.Snapshot()
	b.ReportMetric(float64(st.CacheHits), "cache-hits")
	b.ReportMetric(float64(st.CyclesExecuted), "vm-cycles")
}

// BenchmarkServeContinue is the hot serving path end to end: a session
// stopped at a breakpoint in a tight loop body, resumed with one
// continue request line per stop through the full wire loop (JSON
// decode, bitmap resume, response encode). The stdlib sub-benchmark
// routes responses through encoding/json (the old encoder); append uses
// the pooled append encoder. Wire bytes are identical either way — the
// encoder equivalence tests hold them so — only cost differs.
func BenchmarkServeContinue(b *testing.B) {
	src := `int main() {
	int i;
	int s = 0;
	for (i = 0; i < 100000000; i = i + 1) {
		s = s + i;
		if (s > 1000000000) {
			s = s - 1000000000;
		}
	}
	print(s);
	return s;
}
`
	const linesPerOp = 64
	for _, mode := range []struct {
		name   string
		legacy bool
	}{{"stdlib", true}, {"append", false}} {
		b.Run(mode.name, func(b *testing.B) {
			s := server.New(server.Options{})
			defer s.Close()
			c := s.Handle(&server.Request{Cmd: "compile", Name: "hot", Src: src})
			if !c.OK {
				b.Fatalf("compile: %+v", c.Error)
			}
			o := s.Handle(&server.Request{Cmd: "open-session", Artifact: c.Artifact})
			if !o.OK {
				b.Fatalf("open: %+v", o.Error)
			}
			if r := s.Handle(&server.Request{Cmd: "break", Session: o.Session, Line: 5}); !r.OK {
				b.Fatalf("break: %+v", r.Error)
			}
			var sb strings.Builder
			enc := json.NewEncoder(&sb)
			for i := 0; i < linesPerOp; i++ {
				req := server.Request{ID: int64(i + 1), Cmd: "continue", Session: o.Session, Handle: o.Handle}
				if err := enc.Encode(&req); err != nil {
					b.Fatal(err)
				}
			}
			input := sb.String()

			server.LegacyJSONEncoding.Store(mode.legacy)
			defer server.LegacyJSONEncoding.Store(false)
			_, slow0 := vm.PathStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Serve(strings.NewReader(input), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(linesPerOp, "continues/op")
			// Serving load must stay on the predecoded bitmap path; a moving
			// slow counter means continue fell back to the predicate loop.
			if _, slow1 := vm.PathStats(); slow1 != slow0 {
				b.Fatalf("serving load took the slow VM path %d times", slow1-slow0)
			}
		})
	}
}
