package oracle

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/randprog"
)

// Each test here pins a classifier soundness defect found by the
// differential oracle on the randprog corpus. The sources are ddmin-
// minimized seeds; the assertion is the oracle's own: a full O0-vs-
// optimized differential over every stop must record no mismatch.

func diffClean(t *testing.T, name, src string) {
	t.Helper()
	for cfgName, cfg := range DefaultConfigs() {
		ms, err := diffSource(0, name, src, map[string]compile.Config{cfgName: cfg}, 200, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfgName, err)
		}
		for _, m := range ms {
			t.Errorf("%s: %s", cfgName, m)
		}
	}
}

// Seed 7 (minimized): the scheduler moved the array store of s7 below
// the s8 breakpoint instruction, so at the stop buf[0] had not been
// written yet — but the classifier reported addressed variables
// unconditionally Current, displaying the stale memory image as truth.
// Fixed by applyMemSched: memory-resident variables at a breakpoint
// crossed by a reordered store are Noncurrent (by scheduling).
func TestRegressArrayStoreSched(t *testing.T) {
	diffClean(t, "regress_a.mc", `struct S0 { int f0; int f1; };
int h0(int p0, int p1, struct S0 sp) {
	int chk = 1;
	if (p1 > (p1 + p1) && (p1 - chk) != chk) {
	}
}
int main() {
	int chk = 7;
	int buf[4];
	int v8 = chk;
	for (int i9 = 0; i9 < 4; i9++) {
		for (int i10 = 0; i10 < 7; i10++) {
			buf[i10 % 4] = (v8 + chk);
		}
	}
}`)
}

// Seed 11 (minimized): chk's initializer "chk = 7" was eliminated with
// a const-7 recovery marker; the later real reassignment of chk (its
// kill) was scheduled below the s4 breakpoint instruction, so the
// stale entity still must-reached the stop and recovery fabricated 7
// where O0 shows 217. Fixed by recStaleBySched: a recovery is dropped
// when a real definition of the variable precedes the breakpoint in
// source order but sits below it in scheduled order.
func TestRegressStaleConstRecovery(t *testing.T) {
	diffClean(t, "regress_b.mc", `struct S0 { int f0; int f1; int f2; int f3; };
int G1 = 36;
int G2 = 34;
struct S0 GS;
int main() {
	int chk = 7;
	struct S0 s11;
	int v12 = ((G2 + G1) / (((GS.f1 + -57) % 9 + 9) % 9 + 1));
	chk = (chk * 31 + GS.f3) % 65521;
	int v13 = G1;
	if ((G1 + chk) < (G2 % ((GS.f1 % 7 + 7) % 7 + 1)) && (v13 % ((chk % 7 + 7) % 7 + 1)) == s11.f1) {
	}
	if (-50 >= 7 || chk > v12) {
		chk = (chk * 31 + v12) % 65521;
	}
	return chk % 256;
}`)
}

// Seed 25 (minimized): the markdead for s18.f0 aliased the register
// that had held v15, but v15's live range ended before the marker and
// the allocator reused the register for an unrelated value ("mul r1,
// r0, 31") between the two — the marker's alias was stale at its own
// generation point, and recovery read garbage. ValidateMarkers cannot
// see this (it runs on IR, before physical registers exist). Fixed by
// regalloc's pruneStaleAliases: a MarkAlias whose vreg is not live at
// the marker's position is dropped during rewrite.
func TestRegressStaleRegisterAlias(t *testing.T) {
	diffClean(t, "regress_c.mc", `struct S0 { int f0; int f1; int f2; };
int G1 = 98;
struct S0 GS;
int main() {
	int chk = 7;
	int v15 = ((GS.f1 + -11) - G1);
	for (int i16 = 0; i16 < 5; i16++) {
	}
	chk = (chk * 31 + v15) % 65521;
	chk = (chk * 31 + GS.f1) % 65521;
	struct S0 s18;
	s18.f0 = v15;
	print("chk=", chk, "\n");
	return chk % 256;
}`)
}

// Seed 99 (minimized): assignprop rebuilt the loop's chk assignment, so
// the rebuilt instruction carried a fresh emission index and OrigIdx no
// longer reflected source order — schedEndangered compared it against
// the breakpoint's OrigIdx and concluded the definition was "scheduled
// early" when it had merely been re-emitted. Fixed by stamping
// Instr.PreSched (the pre-scheduling block position) in sched and
// basing all three scheduling checks on it; OrigIdx is no longer
// consulted for ordering.
func TestRegressSchedRebuiltOrigIdx(t *testing.T) {
	diffClean(t, "regress_d.mc", `struct S1 { int f0; int f1; };
int G1 = 82;
struct S1 GS;
int h0(int p0, int p1) {
}
int main() {
	int chk = 7;
	GS.f0 = (-24 - G1);
	GS.f1 = (G1 - chk);
	int buf[4];
	struct S1 s3;
	s3.f0 = ((G1 % ((chk % 7 + 7) % 7 + 1)) + G1);
	s3.f1 = h0(GS.f0, 55);
	GS = s3;
	if ((G1 % ((GS.f1 % 7 + 7) % 7 + 1)) != (GS.f1 + G1) && (GS.f1 + chk) != (G1 % ((81 % 7 + 7) % 7 + 1))) {
		for (int i4 = 0; i4 < 6; i4++) {
			chk += ((-58 - chk) - (chk - GS.f0));
		}
		G1 += G1;
	}
	struct S1 s5;
	s5.f0 = ((-49 - G1) + s3.f1);
	s5.f1 = G1;
	chk++;
	if (s5.f1 >= (G1 + G1) || (chk + G1) <= (24 + G1)) {
		if ((G1 * G1 % 8191) >= GS.f0 && 64 < (G1 * -34 % 8191)) {
			chk++;
		}
	}
	for (int z = 0; z < 4; z++) { chk = (chk * 17 + buf[z]) % 65521; }
}`)
}

// Seed 148 (minimized): loop rotation plus constant folding deleted the
// rotated loop's entry evaluation of the condition statement, so the
// optimized build reached that statement's code fewer times than O0 and
// first-arrival matching paired different source events. This is an
// oracle alignment bug, not a classifier bug: fixed by count-based
// alignment — a key whose total arrival counts differ between the
// builds is skipped (tallied in Totals.AlignSkipped), and equal-count
// keys compare every arrival, not just the first.
func TestRegressRotatedLoopAlignment(t *testing.T) {
	diffClean(t, "regress_e.mc", `struct S0 { int f0; int f1; int f2; };
struct S1 { int f0; int f1; int f2; };
int G1 = 96;
struct S0 GS;
int h0(int p0, struct S1 sp) {
	int chk = 1;
	if ((chk - -28) > (-71 - sp.f0) && p0 <= (-81 % ((chk % 7 + 7) % 7 + 1))) {
	}
}
int h1(int p0) {
	for (int i4 = 0; i4 < 5; i4++) {
	}
}
int main() {
	int chk = 7;
	GS.f0 = G1;
	int buf[14];
	struct S1 s9;
	s9.f0 = chk;
	chk = (chk * 31 + chk) % 65521;
	int v10 = ((G1 % ((GS.f0 % 7 + 7) % 7 + 1)) / (((s9.f1 + chk) % 9 + 9) % 9 + 1));
	int v12 = G1;
	int v13 = ((-51 - GS.f0) / (((chk + GS.f1) % 9 + 9) % 9 + 1));
	v13 -= (s9.f1 + v10);
	for (int i14 = 0; i14 < 2; i14++) {
		buf[i14 % 14] = (24 / ((chk % 9 + 9) % 9 + 1));
	}
}`)
}

// Seed 91 (minimized): PDCE sank the computation completing s7.f1's
// loop-iteration value below a MarkDead that aliased its destination
// register. Marker aliases are deliberately invisible to liveness (a
// marker must never keep a dead value alive), so the sink legality
// checks could not see the dependence, and at stops between the marker
// and the sunk copy recovery read the previous iteration's value.
// Fixed by pruneSunkAliases in PDCE: sinking clears every MarkDead
// alias of the sunk destination except in the block the clone was
// prepended to (where the clone still dominates the markers). Seed 81
// is the same class.
func TestRegressSunkAliasRecovery(t *testing.T) {
	diffClean(t, "regress_f.mc", `struct S0 { int f0; int f1; };
int G1 = 72;
int G2 = 1;
struct S0 GS;
int h0(int p0) {
	if (p0 == p0) {
	}
}
int h1(int p0, int p1, int p2) {
	if (p1 >= (p0 * p0 % 8191)) {
	}
}
int main() {
	int chk = 7;
	int buf[13];
	struct S0 s7;
	s7.f0 = ((G2 + chk) - (G1 / ((G1 % 9 + 9) % 9 + 1)));
	s7.f1 = ((chk % ((G1 % 7 + 7) % 7 + 1)) + GS.f1);
	for (int q = 0; q < 6; q++) { s7.f1 = (s7.f1 * 3 + q) % 9973; }
	s7 = GS;
	if (G2 != (G2 % ((GS.f1 % 7 + 7) % 7 + 1))) {
		s7 = GS;
	}
	chk = (chk * 19 + s7.f1) % 65521;
	return chk % 256;
}`)
}

// Seed 81 (minimized): second instance of the sunk-alias class — the
// sunk definition fed s6.f1's markdead alias across a conditional
// struct copy, and recovery showed a value one iteration stale.
func TestRegressSunkAliasLoopCarried(t *testing.T) {
	diffClean(t, "regress_g.mc", `struct S0 { int f0; int f1; int f2; };
int G1 = 54;
int G2 = 30;
struct S0 GS;
int h0(int p0, struct S0 sp) {
}
int main() {
	int chk = 7;
	GS.f0 = (G2 % ((G2 % 7 + 7) % 7 + 1));
	int buf[8];
	struct S0 s6;
	s6.f0 = ((G1 + chk) % (((GS.f0 / ((-4 % 9 + 9) % 9 + 1)) % 7 + 7) % 7 + 1));
	for (int q = 0; q < 4; q++) { s6.f1 = (s6.f1 * 3 + q) % 9973; }
	s6.f1 = chk;
	if ((68 + 66) >= G1 && (chk + 16) != (69 - GS.f0)) {
		for (int i8 = 0; i8 < 3; i8++) {
			s6 = GS;
		}
	}
	chk = (chk * 19 + s6.f1) % 65521;
	return chk % 256;
}`)
}

// Seed 63 (minimized): constant folding deleted the else-branch "chk++",
// leaving a markdead with a const-8 alias in a marker-only block;
// branch chaining then bypassed that block and migrated the marker into
// a join reached by BOTH branch paths, so recovery fabricated chk=8 on
// the path where the increment never executed. Fixed in chainBranches:
// the chain stops before advancing into a block with more than one
// predecessor while markers are in flight.
func TestRegressMarkerJoinMigration(t *testing.T) {
	diffClean(t, "regress_h.mc", `struct S0 { int f0; int f1; int f2; int f3; };
int G1 = 34;
struct S0 GS;
int h0(int p0, int p1, int p2) {
	if ((16 * p1 % 8191) == p0 && (-100 % ((p1 % 7 + 7) % 7 + 1)) < (p1 - p1)) {
	}
}
int main() {
	int chk = 7;
	struct S0 s4;
	struct S0 s5;
	struct S0 s6;
	if ((G1 * s5.f3 % 8191) > (G1 + 56) && (chk + s4.f2) <= (-13 / ((s4.f0 % 9 + 9) % 9 + 1))) {
		for (int i7 = 0; i7 < 4; i7++) {
		}
	}
	for (int i11 = 0; i11 < 7; i11++) {
	}
	int v13 = ((-45 + G1) - (82 * chk % 8191));
	if ((s4.f0 + s6.f0) >= (s6.f3 / ((chk % 9 + 9) % 9 + 1))) {
		if ((GS.f3 - v13) != s5.f0) {
		} else {
			chk++;
		}
		if ((90 * v13 % 8191) > G1) {
		}
		struct S0 s17;
		s17.f3 = ((-87 + 47) - (chk + G1));
	}
}`)
}

// Seed 137 (minimized): at "return chk % 256" the reaching definition
// of chk had been replaced by assignprop and deleted by DCE, and the
// classifier's default branch returned Current with a register-alias
// recovery attached — "current through the recovery source" (§2.5).
// The structured report still read chk's stale home slot and presented
// 0 as the unwarned value. Fixed in the debugger's fillVals: a Current
// verdict carrying a recovery substitutes the recovered value as the
// value (and reports no value at all if the recovery is unreadable).
func TestRegressCurrentThroughRecovery(t *testing.T) {
	diffClean(t, "regress_i.mc", `struct S0 { int f0; int f1; int f2; int f3; };
int G1 = 46;
int G2 = 26;
int G3 = 99;
struct S0 GS;
int h0(int p0, int p1, int p2) {
}
int h1(int p0) {
}
int h2(int p0, int p1, struct S0 sp) {
	for (int i6 = 0; i6 < 4; i6++) {
	}
}
int main() {
	int chk = 7;
	int buf[13];
	struct S0 s13;
	s13.f0 = h2(chk, GS.f2, GS);
	s13.f3 = G1;
	struct S0 s14;
	struct S0 s15;
	if (G2 > (s14.f2 - G2) || (G1 + G1) >= s15.f1) {
		int v16 = (chk % (((G1 - -26) % 7 + 7) % 7 + 1));
		if (-79 != (chk + s14.f0) && (42 - G1) > (G2 + GS.f2)) {
			int v20 = (chk * (G1 - -67) % 8191);
		} else {
			G3++;
			s14.f0 = -70;
		}
	}
	chk = ((GS.f1 * G2 % 8191) + s14.f0);
	s14 = GS;
	int v21 = (G1 / (((G1 - 66) % 9 + 9) % 9 + 1));
	return chk % 256;
}`)
}

// Seeds 49, 176, 181: short-circuit && and || split one statement's
// code across sequential blocks, and resolving a breakpoint to every
// tagged block meant builds stopped a different number of times on the
// same arrival — mid-statement continuation blocks fired as if the
// statement were entered again. Fixed in debuginfo: a non-canonical
// instance is armed only if control can *enter* the statement there
// (an earlier different-statement instruction in the block, no
// predecessors, or a predecessor whose trailing statement differs).
// These seeds were not minimized; randprog generation is deterministic,
// so pinning the seeds pins the repros.
func TestRegressContinuationInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size seeds; covered by the corpus sweep in short mode")
	}
	for _, seed := range []int64{49, 176, 181} {
		src := randprog.Gen(seed)
		for cfgName, cfg := range DefaultConfigs() {
			ms, err := diffSource(seed, "regress_j.mc", src, map[string]compile.Config{cfgName: cfg}, 200, nil)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, cfgName, err)
			}
			for _, m := range ms {
				t.Errorf("seed %d %s: %s", seed, cfgName, m)
			}
		}
	}
}
