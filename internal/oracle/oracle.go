// Package oracle is the differential O0-vs-optimized validation engine:
// the standing harness that makes the classifier's central promise — a
// value shown without a warning is the value the source program computed
// — empirically testable at corpus scale, in the style of "Who's
// Debugging the Debuggers?" (Di Luna et al.).
//
// For each seed it generates a randprog program, compiles it unoptimized
// (the ground truth: no pass has run, every initialized variable is
// current) and under each optimized configuration, and drives all builds
// through the same breakpoint schedule with plain continues. Stops are
// dynamically aligned by arrival count: execution is deterministic and
// stops don't perturb it, so when a statement is reached the same total
// number of times in both builds, its i-th arrival is the same
// source-level event in each (see diffTraces for why keys with
// differing totals must be skipped, not first-matched). Breakpoints
// that resolved by falling back to a later statement are skipped — the
// builds may then be stopped at genuinely different source points, and
// comparing them would manufacture false defects.
//
// At each aligned stop, over every variable and every struct field:
//
//   - a *current* verdict whose value differs from the O0 trace is a
//     defect — the debugger displayed a wrong value with no warning;
//   - a *recovered* value that disagrees with ground truth is a defect —
//     §2.5 recovery claims to reconstruct the expected value, so it is
//     held to the same standard as currency (a wrong recovery is worse
//     than a warning: the user is told the value is trustworthy);
//   - differing program output or exit value between builds is a defect
//     in the optimizer itself (a miscompile), which the oracle reports
//     rather than masks.
//
// Warnings themselves (noncurrent, suspect, nonresident) are never
// defects: the classifier is allowed to be conservative, only never
// wrong in what it vouches for.
//
// The same sweep aggregates the coverage metrics (internal/coverage)
// across the corpus, so the cost of one corpus run buys both the
// soundness check and the Stinnett & Kell-style recoverability numbers.
package oracle

import (
	"fmt"
	"sort"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/debuginfo"
	"repro/internal/randprog"
	"repro/internal/vm"
	"repro/pkg/minic"
)

// Mismatch is one recorded defect: a stop where an optimized build's
// answer disagrees with ground truth.
type Mismatch struct {
	Seed   int64  // randprog seed (-1 when the source didn't come from Gen)
	Config string // optimized configuration name
	Stop   string // "fn:stmt" of the aligned stop
	Var    string // variable or field name ("x", "s0.f1")
	// Kind is what disagreed: "current" (unwarned value differs),
	// "recovered" (reconstructed value differs), "output" or "exit"
	// (the builds computed different results — a miscompile).
	Kind string
	Got  string
	Want string
	// Src is the full failing source; Minimized is the reduced repro
	// when minimization ran (empty otherwise).
	Src       string
	Minimized string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("seed %d %s %s %s: %s = %s, O0 shows %s",
		m.Seed, m.Config, m.Stop, m.Var, m.Kind, m.Got, m.Want)
}

// Options configures a corpus run.
type Options struct {
	// Seeds are the randprog seeds to sweep; nil means 0..199.
	Seeds []int64
	// Configs are the optimized configurations; nil means O2 and
	// O2NoRegAlloc.
	Configs map[string]compile.Config
	// MaxStops bounds each trace; 0 means 200.
	MaxStops int
	// Minimize reduces each defect's source to a minimal repro.
	Minimize bool
	// Progress, when set, is called once per completed seed.
	Progress func(seed int64, defects int)
}

// DefaultConfigs are the two optimized builds the acceptance sweep runs:
// the full pipeline and the pipeline without register allocation (the
// paper's Figure 5 pair — residence endangerment only exists with
// allocation, so the two surface different defect classes).
func DefaultConfigs() map[string]compile.Config {
	return map[string]compile.Config{
		"O2":           compile.O2(),
		"O2NoRegAlloc": compile.O2NoRegAlloc(),
	}
}

// Totals are the corpus-wide check counters: how much evidence a clean
// run actually accumulated. A corpus that checks nothing passes
// vacuously, so consumers assert floors on these.
type Totals struct {
	Seeds            int
	Stops            int // aligned, exact stops actually compared
	CheckedCurrent   int // current verdicts value-checked against O0
	CheckedRecovered int // recovered values checked against O0
	// AlignSkipped counts breakpoint keys whose total arrival counts
	// differ between the builds — the traces genuinely stop at different
	// source events there (e.g. loop rotation folding away a condition's
	// entry evaluation), so comparing them would manufacture defects.
	// Nothing is dropped silently: every skipped key lands here.
	AlignSkipped int
	// TruncatedPairs counts trace pairs where a build hit the stop budget
	// (or a VM error) before halting: arrival totals are then unknown, so
	// the pair performs no value checks at all.
	TruncatedPairs int
}

// Result is one corpus run's outcome.
type Result struct {
	Mismatches []Mismatch
	Totals     Totals
	// Coverage aggregates the per-artifact coverage sweep over the
	// corpus, per configuration name (including "O0").
	Coverage map[string]coverage.Counts
}

// Run executes the differential sweep over the corpus.
func Run(o Options) (*Result, error) {
	seeds := o.Seeds
	if seeds == nil {
		for s := int64(0); s < 200; s++ {
			seeds = append(seeds, s)
		}
	}
	configs := o.Configs
	if configs == nil {
		configs = DefaultConfigs()
	}
	maxStops := o.MaxStops
	if maxStops == 0 {
		maxStops = 200
	}

	res := &Result{Coverage: map[string]coverage.Counts{}}
	for _, seed := range seeds {
		src := randprog.Gen(seed)
		name := fmt.Sprintf("rand%d.mc", seed)
		found, err := diffSource(seed, name, src, configs, maxStops, res)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		if o.Minimize {
			for i := range found {
				found[i].Minimized = minimizeMismatch(found[i], configs, maxStops)
			}
		}
		res.Mismatches = append(res.Mismatches, found...)
		res.Totals.Seeds++
		if o.Progress != nil {
			o.Progress(seed, len(res.Mismatches))
		}
	}
	return res, nil
}

// diffSource runs the full differential on one source: O0 ground truth
// against every configured optimized build. Coverage and check counters
// accumulate into res when res is non-nil.
func diffSource(seed int64, name, src string, configs map[string]compile.Config, maxStops int, res *Result) ([]Mismatch, error) {
	o0art, err := artifactFor(name, src, compile.O0())
	if err != nil {
		return nil, fmt.Errorf("O0 compile: %w", err)
	}
	brk := schedule(o0art)
	o0, err := runTrace(o0art, brk, maxStops)
	if err != nil {
		return nil, fmt.Errorf("O0 trace: %w", err)
	}
	if res != nil {
		addCoverage(res, "O0", o0art)
	}

	o0Arr := map[string][]int{}
	for i, r := range o0.stops {
		o0Arr[r.key] = append(o0Arr[r.key], i)
	}

	var out []Mismatch
	for _, cfgName := range sortedNames(configs) {
		art, err := artifactFor(name, src, configs[cfgName])
		if err != nil {
			return nil, fmt.Errorf("%s compile: %w", cfgName, err)
		}
		tr, err := runTrace(art, brk, maxStops)
		if err != nil {
			return nil, fmt.Errorf("%s trace: %w", cfgName, err)
		}
		if res != nil {
			addCoverage(res, cfgName, art)
		}
		out = append(out, diffTraces(seed, cfgName, src, o0, o0Arr, tr, res)...)
	}
	return out, nil
}

// diffTraces compares one optimized trace against the O0 ground truth.
//
// Alignment is count-based: execution is deterministic and stops don't
// perturb it, so when a statement's code is reached the same total number
// of times in both builds, the i-th arrival is the same source-level
// event in each, and every arrival is compared. When the totals differ
// the builds genuinely stop at different source events — constant folding
// of a rotated loop's entry test deletes the condition's first
// evaluation, making the optimized build's first arrival a *later* event
// than O0's — so the key is skipped and tallied in Totals.AlignSkipped
// instead of being compared against the wrong event. Totals are only
// known when both traces ran to completion; a pair with a truncated
// trace is tallied in Totals.TruncatedPairs and performs no value checks.
func diffTraces(seed int64, cfgName, src string, o0 *trace, o0Arr map[string][]int, tr *trace, res *Result) []Mismatch {
	var out []Mismatch
	record := func(stop, v, kind, got, want string) {
		out = append(out, Mismatch{
			Seed: seed, Config: cfgName, Stop: stop, Var: v,
			Kind: kind, Got: got, Want: want, Src: src,
		})
	}

	if !o0.halted || !tr.halted {
		if res != nil {
			res.Totals.TruncatedPairs++
		}
		return out
	}

	trCnt := map[string]int{}
	for _, r := range tr.stops {
		trCnt[r.key]++
	}
	skipped := map[string]bool{}
	skip := func(key string) {
		if !skipped[key] {
			skipped[key] = true
			if res != nil {
				res.Totals.AlignSkipped++
			}
		}
	}
	arrival := map[string]int{}
	for _, rec := range tr.stops {
		i := arrival[rec.key]
		arrival[rec.key]++
		idx := o0Arr[rec.key]
		if len(idx) != trCnt[rec.key] {
			skip(rec.key)
			continue
		}
		j := idx[i]
		if !rec.exact || !o0.stops[j].exact {
			continue
		}
		if res != nil {
			res.Totals.Stops++
		}
		for vname, vr := range rec.snap {
			o0r := o0.stops[j].snap[vname]
			// Only O0-current values are ground truth: an O0 report that
			// is uninitialized (or has no readable value) says nothing
			// about what the optimized build should show.
			if o0r == nil || !o0r.HasVal || o0r.Class.State != core.Current {
				continue
			}
			if vr.Class.State == core.Current && vr.HasVal {
				if vr.Val != o0r.Val {
					record(rec.key, vname, "current", fmtVal(vr.Val), fmtVal(o0r.Val))
				}
				if res != nil {
					res.Totals.CheckedCurrent++
				}
			}
			if vr.HasRecovered {
				if vr.RecoveredVal != o0r.Val {
					record(rec.key, vname, "recovered", fmtVal(vr.RecoveredVal), fmtVal(o0r.Val))
				}
				if res != nil {
					res.Totals.CheckedRecovered++
				}
			}
		}
	}
	// Keys the optimized build never (or insufficiently) reached are
	// count-mismatched too; tally them so no key is dropped silently.
	for key, idx := range o0Arr {
		if trCnt[key] != len(idx) {
			skip(key)
		}
	}

	// Miscompile check: both builds ran to completion, so they must have
	// computed the same thing.
	if tr.output != o0.output {
		record("exit", "", "output", fmt.Sprintf("%q", tr.output), fmt.Sprintf("%q", o0.output))
	}
	if tr.exit != o0.exit {
		record("exit", "", "exit", fmt.Sprint(tr.exit), fmt.Sprint(o0.exit))
	}
	return out
}

// breakReq is one (function, statement) breakpoint request, armed
// identically in every build.
type breakReq struct {
	fn   string
	stmt int
}

// schedule derives the breakpoint schedule from the O0 artifact: every
// second statement of every function. Statement numbering comes from the
// frontend, so the same schedule resolves (or fails to resolve) in every
// build of the same source.
func schedule(a *minic.Artifact) []breakReq {
	var out []breakReq
	for _, f := range a.Funcs() {
		for s := 0; s < f.Decl.NumStmts; s += 2 {
			out = append(out, breakReq{f.Name, s})
		}
	}
	return out
}

// stopRec is one stop of a trace: the breakpoint that fired, whether it
// resolved to the statement's own code, and every variable and struct
// field in scope (fields flattened under their qualified names).
type stopRec struct {
	key   string
	exact bool
	snap  map[string]*minic.VarReport
}

type trace struct {
	stops  []stopRec
	halted bool
	output string
	exit   int64
}

// runTrace drives one session over the schedule with plain continues.
// Unresolvable breakpoints are skipped identically in every build;
// execution errors (step budget) end the trace without failing it — the
// stops gathered so far are still aligned.
func runTrace(a *minic.Artifact, brk []breakReq, maxStops int) (*trace, error) {
	s, err := minic.NewSession(a)
	if err != nil {
		return nil, err
	}
	for _, b := range brk {
		s.BreakAtStmt(b.fn, b.stmt) //nolint:errcheck // unresolvable in every build alike
	}
	tr := &trace{}
	for i := 0; i < maxStops; i++ {
		bp, err := s.Continue()
		if err != nil {
			return tr, nil
		}
		if bp == nil {
			tr.halted = true
			tr.output = s.Output()
			tr.exit = s.Debugger().VM.ExitValue()
			return tr, nil
		}
		rec := stopRec{
			key:   fmt.Sprintf("%s:%d", bp.Fn.Name, bp.Stmt),
			exact: debuginfo.StmtOfLoc(bp.Loc) == bp.Stmt,
			snap:  map[string]*minic.VarReport{},
		}
		if reports, err := s.Info(); err == nil {
			for _, r := range reports {
				rec.snap[r.Name] = r
				for _, fr := range r.Fields {
					rec.snap[fr.Name] = fr
				}
			}
		}
		tr.stops = append(tr.stops, rec)
	}
	return tr, nil
}

func artifactFor(name, src string, cfg compile.Config) (*minic.Artifact, error) {
	return minic.Compile(name, src,
		minic.WithPasses(cfg.Opt),
		minic.WithRegAlloc(cfg.RegAlloc),
		minic.WithSched(cfg.Sched))
}

func addCoverage(res *Result, cfgName string, a *minic.Artifact) {
	c := res.Coverage[cfgName]
	c.Add(a.Coverage().Total)
	res.Coverage[cfgName] = c
}

func sortedNames(m map[string]compile.Config) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func fmtVal(v vm.Val) string {
	if v.F != 0 {
		return fmt.Sprintf("%d/%g", v.I, v.F)
	}
	return fmt.Sprint(v.I)
}
