package oracle

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/coverage"
)

// TestPassCoverage pins the per-pass coverage table's shape and its
// determinism: one row per variant, the O0 floor all-current, and two
// runs byte-identical through the canonical formatter.
func TestPassCoverage(t *testing.T) {
	seeds := []int64{0, 1, 2}
	rows, err := PassCoverage(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PassVariants()) {
		t.Fatalf("%d rows for %d variants", len(rows), len(PassVariants()))
	}
	for _, r := range rows {
		if r.Pairs == 0 {
			t.Errorf("variant %s swept zero pairs", r.Label)
		}
		if r.Label == "O0" {
			if cur, _, _ := r.Pcts(); cur != "100.00" {
				t.Errorf("O0 floor is %s%% current, want 100.00", cur)
			}
		}
	}
	again, err := PassCoverage(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if coverage.FormatTable(rows) != coverage.FormatTable(again) {
		t.Error("pass coverage is not deterministic")
	}
	if !reflect.DeepEqual(rows, again) {
		t.Error("pass coverage rows differ between runs")
	}
}

// TestWorkloadCoverage pins the per-workload table: every workload
// under every config plus per-config totals, O0 rows all-current.
func TestWorkloadCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles every bench workload under three configs")
	}
	rows, err := WorkloadCoverage()
	if err != nil {
		t.Fatal(err)
	}
	var o0Rows, totalRows int
	for _, r := range rows {
		if strings.HasSuffix(r.Label, "/O0") {
			o0Rows++
			if cur, _, _ := r.Pcts(); cur != "100.00" {
				t.Errorf("%s is %s%% current, want 100.00", r.Label, cur)
			}
		}
		if strings.HasPrefix(r.Label, "total/") {
			totalRows++
			if r.Pairs == 0 {
				t.Errorf("%s swept zero pairs", r.Label)
			}
		}
	}
	if totalRows != 3 {
		t.Errorf("%d total rows, want 3", totalRows)
	}
	if o0Rows < 2 {
		t.Errorf("only %d O0 rows", o0Rows)
	}
}
