package oracle

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/coverage"
	"repro/internal/opt"
	"repro/internal/randprog"
)

// PassVariant names one coverage-ablation pipeline configuration.
type PassVariant struct {
	Name   string
	Config compile.Config
}

// PassVariants returns the per-pass coverage configurations, modeled on
// bench.PassAblation's variant list: the full O2 pipeline, one variant
// per disabled optimization, the regalloc/scheduling axes of the
// paper's Figure 5, and O0 as the all-current floor. Sweeping coverage
// under each shows which transformation each bucket's mass comes from —
// e.g. disabling DCE should collapse most of the recovered bucket back
// into current, while disabling regalloc removes residence
// endangerment.
func PassVariants() []PassVariant {
	mk := func(mod func(*opt.Options)) compile.Config {
		o := opt.O2()
		mod(&o)
		return compile.Config{Opt: o, RegAlloc: true, Sched: true}
	}
	return []PassVariant{
		{"O2", mk(func(*opt.Options) {})},
		{"-constfold/prop", mk(func(o *opt.Options) { o.ConstFold = false; o.ConstProp = false })},
		{"-copy/assignprop", mk(func(o *opt.Options) { o.CopyProp = false; o.AssignProp = false })},
		{"-pre", mk(func(o *opt.Options) { o.PRE = false })},
		{"-licm", mk(func(o *opt.Options) { o.LICM = false })},
		{"-pdce", mk(func(o *opt.Options) { o.PDCE = false })},
		{"-dce", mk(func(o *opt.Options) { o.DCE = false })},
		{"-strength", mk(func(o *opt.Options) { o.Strength = false })},
		{"-unroll", mk(func(o *opt.Options) { o.Unroll = false })},
		{"-loopinvert", mk(func(o *opt.Options) { o.LoopInvert = false })},
		{"-branchopt", mk(func(o *opt.Options) { o.BranchOpt = false })},
		{"-regalloc", compile.Config{Opt: opt.O2(), RegAlloc: false, Sched: true}},
		{"-sched", compile.Config{Opt: opt.O2(), RegAlloc: true, Sched: false}},
		{"O0", compile.O0()},
	}
}

// PassCoverage aggregates corpus coverage under every pass variant: one
// table row per variant, summed over the randprog seeds. The sweep is
// deterministic (same seeds, same rows, byte for byte through
// coverage.FormatTable).
func PassCoverage(seeds []int64) ([]coverage.Row, error) {
	var rows []coverage.Row
	for _, v := range PassVariants() {
		var total coverage.Counts
		for _, seed := range seeds {
			a, err := artifactFor(fmt.Sprintf("rand%d.mc", seed), randprog.Gen(seed), v.Config)
			if err != nil {
				return nil, fmt.Errorf("seed %d under %s: %w", seed, v.Name, err)
			}
			total.Add(a.Coverage().Total)
		}
		rows = append(rows, coverage.Row{Label: v.Name, Counts: total})
	}
	return rows, nil
}

// WorkloadCoverage sweeps the bench workloads under the oracle's
// standard configurations, one row per workload/config pair plus a
// summed total row per config.
func WorkloadCoverage() ([]coverage.Row, error) {
	cfgs := []struct {
		name string
		cfg  compile.Config
	}{
		{"O0", compile.O0()},
		{"O2", compile.O2()},
		{"O2NoRegAlloc", compile.O2NoRegAlloc()},
	}
	var rows []coverage.Row
	totals := make([]coverage.Counts, len(cfgs))
	for _, name := range bench.Names {
		src, err := bench.Source(name)
		if err != nil {
			return nil, err
		}
		for i, c := range cfgs {
			a, err := artifactFor(name+".mc", src, c.cfg)
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", name, c.name, err)
			}
			t := a.Coverage().Total
			totals[i].Add(t)
			rows = append(rows, coverage.Row{Label: name + "/" + c.name, Counts: t})
		}
	}
	for i, c := range cfgs {
		rows = append(rows, coverage.Row{Label: "total/" + c.name, Counts: totals[i]})
	}
	return rows, nil
}
