package oracle

import (
	"flag"
	"os"
	"testing"
)

// -oracle.seeds overrides the corpus size; the default keeps the test
// fast enough for every `go test ./...` run while CI's oracle smoke
// step and local full sweeps pass -oracle.seeds=200.
var corpusSeeds = flag.Int("oracle.seeds", 20, "number of randprog seeds for the oracle corpus test")

// TestCorpus runs the differential oracle over the seed corpus at every
// configuration and fails on any recorded defect. A failing seed's
// minimized repro is written next to the test so it can be attached as
// a CI artifact.
func TestCorpus(t *testing.T) {
	var seeds []int64
	for s := int64(0); s < int64(*corpusSeeds); s++ {
		seeds = append(seeds, s)
	}
	res, err := Run(Options{Seeds: seeds, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("totals: %+v", res.Totals)
	for k, c := range res.Coverage {
		cur, rec, non := c.Pcts()
		t.Logf("coverage %s: pairs=%d current=%s recovered=%s noncurrent=%s uninit=%d",
			k, c.Pairs, cur, rec, non, c.Uninit)
	}
	if res.Totals.CheckedCurrent == 0 || res.Totals.CheckedRecovered == 0 {
		t.Errorf("oracle checked nothing (totals %+v): the harness is broken", res.Totals)
	}
	for _, m := range res.Mismatches {
		t.Errorf("MISMATCH %s", m)
	}
	if len(res.Mismatches) > 0 {
		path := "oracle_failures.txt"
		var body []byte
		for _, m := range res.Mismatches {
			body = append(body, []byte(m.String()+"\n--- minimized repro:\n"+m.Minimized+"\n\n")...)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Logf("could not write %s: %v", path, err)
		} else {
			t.Logf("failing seeds and minimized repros written to %s", path)
		}
	}
}

// TestCoverageDeterminism runs the same corpus twice and requires
// byte-identical metrics: the sweep must not depend on map order, timing,
// or allocator state.
func TestCoverageDeterminism(t *testing.T) {
	seeds := []int64{0, 1, 2, 3, 4}
	a, err := Run(Options{Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Coverage) != len(b.Coverage) {
		t.Fatalf("coverage config sets differ: %d vs %d", len(a.Coverage), len(b.Coverage))
	}
	for k, ca := range a.Coverage {
		cb, ok := b.Coverage[k]
		if !ok {
			t.Fatalf("config %s missing from second run", k)
		}
		if ca != cb {
			t.Errorf("coverage for %s differs between identical runs:\n  first:  %+v\n  second: %+v", k, ca, cb)
		}
		ca1, ra1, na1 := ca.Pcts()
		cb1, rb1, nb1 := cb.Pcts()
		if ca1 != cb1 || ra1 != rb1 || na1 != nb1 {
			t.Errorf("formatted percentages for %s differ: %s/%s/%s vs %s/%s/%s", k, ca1, ra1, na1, cb1, rb1, nb1)
		}
	}
	if a.Totals != b.Totals {
		t.Errorf("totals differ between identical runs: %+v vs %+v", a.Totals, b.Totals)
	}
}
