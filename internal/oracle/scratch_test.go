package oracle

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/compile"
	"repro/internal/debuginfo"
)

// TestScratch is a triage tool, not a regression test: it runs the
// differential on ORACLE_SCRATCH (a MiniC source path) and dumps the
// optimized code of ORACLE_SCRATCH_FUNC (default main) with marker,
// def-tag, and statement metadata. Skipped unless the env var is set.
func TestScratch(t *testing.T) {
	path := os.Getenv("ORACLE_SCRATCH")
	if path == "" {
		t.Skip("set ORACLE_SCRATCH=<file.mc> to use")
	}
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfgName := os.Getenv("ORACLE_SCRATCH_CFG")
	if cfgName == "" {
		cfgName = "O2"
	}
	cfg := DefaultConfigs()[cfgName]
	ms, err := diffSource(-1, "scratch.mc", string(src), map[string]compile.Config{cfgName: cfg}, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		fmt.Printf("MISMATCH %s\n", m)
	}
	res, err := compile.Compile("scratch.mc", string(src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	fn := os.Getenv("ORACLE_SCRATCH_FUNC")
	if fn == "" {
		fn = "main"
	}
	f := res.Mach.LookupFunc(fn)
	fmt.Printf("func %s: Scheduled=%v Allocated=%v\n", fn, f.Scheduled, f.Allocated)
	tbl := debuginfo.Build(f)
	for s := 0; s < f.Decl.NumStmts; s++ {
		if loc, ok := tbl.LocOf(s); ok && tbl.HasOwnLoc(s) {
			fmt.Printf("LocOf(s%d) = %s idx=%d instances=%v\n", s, loc.Block, loc.Idx, tbl.InstancesOf(s))
		}
	}
	for _, b := range f.Blocks {
		fmt.Printf("%s: -> %v\n", b.String(), b.Succs)
		for _, in := range b.Instrs {
			meta := ""
			if in.DefObj != nil {
				meta += " def=" + in.DefObj.Name
			}
			for _, u := range in.UseObjs {
				meta += " use=" + u.Name
			}
			if in.MarkObj != nil {
				meta += fmt.Sprintf(" mark=%s alias=%s", in.MarkObj.Name, in.MarkAlias)
			}
			if in.Ann.Recover != nil && in.Ann.Recover.Var != nil {
				meta += fmt.Sprintf(" lin=%s*%d+%d", in.Ann.Recover.Var.Name, in.Ann.Recover.A, in.Ann.Recover.B)
			}
			if in.Ann.ReplacedVar != nil {
				meta += " repl=" + in.Ann.ReplacedVar.Name
			}
			fmt.Printf("  %-28s ; s%d o%d%s\n", in.String(), in.Stmt, in.OrigIdx, meta)
		}
	}
}
