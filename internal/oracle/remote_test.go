package oracle

import (
	"net"
	"testing"

	"repro/internal/server"
	"repro/pkg/minic"
)

// TestCheckRemote runs the remote half of the oracle against a live
// in-process daemon: for every seed and configuration the daemon's
// session transcript (stops, classified variables, output) and its
// coverage command must be byte-identical to the in-process ground
// truth. This is the check that sees through the daemon's artifact
// store, incremental function cache, and wire encoding.
func TestCheckRemote(t *testing.T) {
	s := server.New(server.Options{})
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.ListenAndServe(l) //nolint:errcheck // exits when the listener closes

	c, err := minic.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := CheckRemote(c, RemoteOptions{Seeds: []int64{0, 1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Mismatches {
		t.Errorf("remote mismatch: %s", m)
	}
	// A vacuously green run proves nothing: require real volume.
	if res.LinesCompared < 1000 {
		t.Errorf("only %d transcript lines compared; the remote differential is not exercising the daemon", res.LinesCompared)
	}
	if res.CoverageRows < 15 {
		t.Errorf("only %d coverage rows compared", res.CoverageRows)
	}

	// Compiling the same seeds again hits the daemon's caches; the
	// transcripts must not change. (A function-cache codec that drops a
	// classification-relevant field diverges exactly here.)
	res2, err := CheckRemote(c, RemoteOptions{Seeds: []int64{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res2.Mismatches {
		t.Errorf("warm-cache remote mismatch: %s", m)
	}
}
