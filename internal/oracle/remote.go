package oracle

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/randprog"
	"repro/pkg/minic"
)

// This file is the oracle's remote half: the same paired-session
// differential, but with one side living on a live mcd daemon. The
// in-process session is the ground truth (it runs the exact library
// code the corpus sweep validated); the daemon replays the identical
// breakpoint schedule through the wire protocol, and every stop,
// classified variable, and program output must match the in-process
// transcript byte for byte. This closes the gap the in-process sweep
// cannot see: the daemon's artifact store, incremental function cache,
// wire encoding, and session machinery all sit between the classifier
// and the user, and any of them corrupting a verdict is invisible to a
// purely in-process differential. (The function-cache codec dropping a
// scheduling field is exactly the defect class this catches.)
//
// The same run cross-checks the daemon's coverage command against the
// in-process sweep of the same artifact — counts and the formatted
// percentage strings both — which is the acceptance criterion for the
// coverage protocol surface.

// remoteSpecs are the wire configurations paired with the in-process
// compile.Config each must reproduce.
func remoteSpecs() []struct {
	name string
	cfg  compile.Config
	spec *minic.RemoteConfig
} {
	f := false
	return []struct {
		name string
		cfg  compile.Config
		spec *minic.RemoteConfig
	}{
		{"O0", compile.O0(), &minic.RemoteConfig{Opt: "O0"}},
		{"O2", compile.O2(), nil},
		{"O2NoRegAlloc", compile.O2NoRegAlloc(), &minic.RemoteConfig{Opt: "O2", RegAlloc: &f, Sched: &f}},
	}
}

// RemoteOptions configures CheckRemote.
type RemoteOptions struct {
	// Seeds are the randprog seeds to replay; nil means 0..9.
	Seeds []int64
	// MaxStops bounds each trace; 0 means 200.
	MaxStops int
}

// RemoteResult is one remote differential's outcome.
type RemoteResult struct {
	Seeds int
	// LinesCompared counts transcript lines held equal across the wire
	// (stops, per-variable classifications, outputs).
	LinesCompared int
	// CoverageRows counts coverage rows (totals + per function) held
	// equal between the daemon's coverage command and the in-process
	// sweep.
	CoverageRows int
	// Mismatches describes every divergence found; empty means the
	// daemon is transparent.
	Mismatches []string
}

// CheckRemote replays the oracle's session script against a live daemon
// and the in-process library side by side, for every seed under every
// standard configuration, and requires byte-identical transcripts and
// coverage reports.
func CheckRemote(c *minic.Client, o RemoteOptions) (*RemoteResult, error) {
	seeds := o.Seeds
	if seeds == nil {
		for s := int64(0); s < 10; s++ {
			seeds = append(seeds, s)
		}
	}
	maxStops := o.MaxStops
	if maxStops == 0 {
		maxStops = 200
	}
	res := &RemoteResult{}
	for _, seed := range seeds {
		src := randprog.Gen(seed)
		name := fmt.Sprintf("rand%d.mc", seed)
		for _, sp := range remoteSpecs() {
			a, err := artifactFor(name, src, sp.cfg)
			if err != nil {
				return nil, fmt.Errorf("seed %d %s: local compile: %w", seed, sp.name, err)
			}
			brk := schedule(a)
			local, err := canonLocalTrace(a, brk, maxStops)
			if err != nil {
				return nil, fmt.Errorf("seed %d %s: local trace: %w", seed, sp.name, err)
			}
			remote, artID, err := canonRemoteTrace(c, name, src, sp.spec, brk, maxStops)
			if err != nil {
				return nil, fmt.Errorf("seed %d %s: remote trace: %w", seed, sp.name, err)
			}
			tag := fmt.Sprintf("seed %d %s", seed, sp.name)
			res.LinesCompared += compareLines(res, tag, local, remote)

			// Coverage: the daemon's sweep of its artifact must equal the
			// in-process sweep of the same source and configuration.
			cov, err := c.Coverage(artID)
			if err != nil {
				return nil, fmt.Errorf("%s: remote coverage: %w", tag, err)
			}
			lc := canonLocalCoverage(a)
			rc := canonRemoteCoverage(cov)
			res.CoverageRows += compareLines(res, tag+" coverage", lc, rc)
		}
		res.Seeds++
	}
	return res, nil
}

// compareLines byte-compares two canonical transcripts, appending a
// mismatch entry per divergent line, and returns how many lines were
// held equal.
func compareLines(res *RemoteResult, tag string, local, remote []string) int {
	n := len(local)
	if len(remote) < n {
		n = len(remote)
	}
	for i := 0; i < n; i++ {
		if local[i] != remote[i] {
			res.Mismatches = append(res.Mismatches,
				fmt.Sprintf("%s line %d: remote %q, in-process %q", tag, i, remote[i], local[i]))
		}
	}
	if len(local) != len(remote) {
		res.Mismatches = append(res.Mismatches,
			fmt.Sprintf("%s: transcript length: remote %d lines, in-process %d", tag, len(remote), len(local)))
	}
	return n
}

// canonLocalTrace drives the in-process ground-truth session over the
// schedule and renders the canonical transcript: break resolutions,
// stops, every in-scope variable's classified display (fields nested),
// and the final output. Continue errors canonicalize to a bare "error"
// line — the two sides bound execution differently, so only the fact of
// the error is comparable.
func canonLocalTrace(a *minic.Artifact, brk []breakReq, maxStops int) ([]string, error) {
	s, err := minic.NewSession(a)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, b := range brk {
		_, err := s.BreakAtStmt(b.fn, b.stmt)
		lines = append(lines, fmt.Sprintf("break %s:%d ok=%v", b.fn, b.stmt, err == nil))
	}
	for i := 0; i < maxStops; i++ {
		bp, err := s.Continue()
		if err != nil {
			lines = append(lines, "error")
			return lines, nil
		}
		if bp == nil {
			lines = append(lines, fmt.Sprintf("exited output=%q", s.Output()))
			return lines, nil
		}
		lines = append(lines, fmt.Sprintf("stop %s:%d:%d", bp.Fn.Name, bp.Stmt, bp.Line))
		if reports, err := s.Info(); err == nil {
			for _, r := range reports {
				lines = append(lines, "  "+canonLocalVar(r))
			}
		}
	}
	lines = append(lines, "truncated")
	return lines, nil
}

// canonRemoteTrace drives the identical script against the daemon.
func canonRemoteTrace(c *minic.Client, name, src string, spec *minic.RemoteConfig, brk []breakReq, maxStops int) ([]string, string, error) {
	art, err := c.CompileWith(name, src, spec)
	if err != nil {
		return nil, "", err
	}
	sess, err := c.Open(art.ID)
	if err != nil {
		return nil, "", err
	}
	defer sess.Close() //nolint:errcheck // best-effort; the daemon reaps leaks
	var lines []string
	for _, b := range brk {
		_, err := sess.BreakAtStmt(b.fn, b.stmt)
		lines = append(lines, fmt.Sprintf("break %s:%d ok=%v", b.fn, b.stmt, err == nil))
	}
	for i := 0; i < maxStops; i++ {
		stop, out, err := sess.Continue()
		if err != nil {
			lines = append(lines, "error")
			return lines, art.ID, nil
		}
		if stop == nil {
			lines = append(lines, fmt.Sprintf("exited output=%q", out))
			return lines, art.ID, nil
		}
		lines = append(lines, fmt.Sprintf("stop %s:%d:%d", stop.Func, stop.Stmt, stop.Line))
		if vars, err := sess.Info(); err == nil {
			for _, v := range vars {
				lines = append(lines, "  "+canonRemoteVar(v))
			}
		}
	}
	lines = append(lines, "truncated")
	return lines, art.ID, nil
}

// canonLocalVar renders one in-process variable report exactly as
// canonRemoteVar renders its wire twin: the daemon builds VarInfo from
// the same VarReport via State.String() and Display(), so the two forms
// agree iff the daemon preserved the classification.
func canonLocalVar(r *minic.VarReport) string {
	s := fmt.Sprintf("%s=%s:%q", r.Name, r.Class.State.String(), r.Display())
	for _, f := range r.Fields {
		s += "|" + canonLocalVar(f)
	}
	return s
}

func canonRemoteVar(v minic.RemoteVar) string {
	s := fmt.Sprintf("%s=%s:%q", v.Name, v.State, v.Display)
	for _, f := range v.Fields {
		s += "|" + canonRemoteVar(f)
	}
	return s
}

// canonLocalCoverage renders the in-process sweep as canonical rows:
// the totals first, then one row per function in program order, counts
// and the formatted percentage strings both.
func canonLocalCoverage(a *minic.Artifact) []string {
	rep := a.Coverage()
	lines := []string{canonCovRow("total", rep.Total.Pairs, rep.Total.Current, rep.Total.Recovered,
		rep.Total.Noncurrent, rep.Total.Suspect, rep.Total.Nonresident, rep.Total.Uninit, pcts3(rep.Total))}
	for _, f := range rep.Funcs {
		lines = append(lines, canonCovRow(f.Func, f.Pairs, f.Current, f.Recovered,
			f.Noncurrent, f.Suspect, f.Nonresident, f.Uninit, pcts3(f.Counts)))
	}
	return lines
}

func canonRemoteCoverage(cov *minic.RemoteCoverage) []string {
	if cov == nil {
		return nil
	}
	row := func(label string, c minic.RemoteCoverageCounts) string {
		return canonCovRow(label, c.Pairs, c.Current, c.Recovered, c.Noncurrent,
			c.Suspect, c.Nonresident, c.Uninit,
			c.CurrentPct+"/"+c.RecoveredPct+"/"+c.NoncurrentPct)
	}
	lines := []string{row("total", cov.CoverageCounts)}
	for _, f := range cov.Funcs {
		lines = append(lines, row(f.Func, f.CoverageCounts))
	}
	return lines
}

func canonCovRow(label string, pairs, cur, rec, non, sus, nonres, uninit int, pcts string) string {
	return fmt.Sprintf("%s pairs=%d cur=%d rec=%d non=%d sus=%d nonres=%d uninit=%d pct=%s",
		label, pairs, cur, rec, non, sus, nonres, uninit, pcts)
}

func pcts3(c interface {
	Pcts() (string, string, string)
}) string {
	cur, rec, non := c.Pcts()
	return cur + "/" + rec + "/" + non
}
