// Source minimization for recorded defects: a failing randprog seed is a
// few hundred lines; the repro that lands in a regression test should be
// the handful of statements that actually provoke the bug. The reducer
// is a line-chunk ddmin: it repeatedly tries dropping contiguous line
// ranges (halving the chunk size as progress stalls) and keeps any
// candidate that still compiles and still reproduces a defect of the
// same kind on the same variable under the same configuration.
// Candidates that no longer parse or compile are simply rejected — the
// compiler is the syntax filter, so the reducer needs no grammar
// knowledge.
package oracle

import (
	"strings"

	"repro/internal/compile"
)

// maxReduceAttempts bounds the total differential re-runs one
// minimization may spend; reduction is best-effort and a partial
// reduction is still a better repro than the full source.
const maxReduceAttempts = 400

// minimizeMismatch reduces m.Src while a defect with the same config,
// kind, and variable still reproduces. It returns the reduced source
// (equal to m.Src when nothing could be removed).
func minimizeMismatch(m Mismatch, configs map[string]compile.Config, maxStops int) string {
	cfg, ok := configs[m.Config]
	if !ok {
		return m.Src
	}
	single := map[string]compile.Config{m.Config: cfg}
	attempts := 0
	keep := func(src string) bool {
		if attempts >= maxReduceAttempts {
			return false
		}
		attempts++
		found, err := diffSource(m.Seed, "min.mc", src, single, maxStops, nil)
		if err != nil {
			return false // doesn't compile or trace — not a candidate
		}
		for _, f := range found {
			if f.Kind == m.Kind && f.Var == m.Var {
				return true
			}
		}
		return false
	}
	if !keep(m.Src) {
		// The defect doesn't reproduce in isolation (shouldn't happen —
		// the differential is deterministic); keep the full source.
		return m.Src
	}
	return reduceLines(m.Src, keep)
}

// reduceLines is the ddmin loop: drop chunks of lines while keep holds.
func reduceLines(src string, keep func(string) bool) string {
	lines := strings.Split(src, "\n")
	chunk := len(lines) / 2
	for chunk >= 1 {
		removed := false
		for start := 0; start+chunk <= len(lines); {
			candidate := make([]string, 0, len(lines)-chunk)
			candidate = append(candidate, lines[:start]...)
			candidate = append(candidate, lines[start+chunk:]...)
			if keep(strings.Join(candidate, "\n")) {
				lines = candidate
				removed = true
				// Retry the same start: the next chunk slid into place.
			} else {
				start += chunk
			}
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(lines) {
			chunk = len(lines)
		}
	}
	return strings.Join(lines, "\n")
}
