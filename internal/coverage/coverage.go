// Package coverage computes corpus-wide debug-info coverage metrics in
// the style of Stinnett & Kell ("Accurate Coverage Metrics for
// Compiler-Generated Debugging Information"): over every breakpoint of a
// compiled program, every in-scope source-line×variable pair — expanded
// to source-line×variable×field pairs for SROA-split aggregates — is
// bucketed by what the paper's classifier says the debugger can show
// there.
//
// The three headline buckets partition the classified pairs:
//
//   - current:    the variable's own location holds the expected value
//     and the debugger displays it with no warning;
//   - recovered:  the location is endangered but a §2.5 recovery source
//     (alias, constant, or linear relation) reconstructs the expected
//     value, so the debugger still displays a correct value;
//   - noncurrent: everything else — the debugger can only warn
//     (noncurrent, suspect, or nonresident with no recovery).
//
// Uninitialized pairs (the variable is in scope but no source assignment
// reaches yet) are counted separately and excluded from the percentage
// base: they say nothing about the optimizer, only about where the
// breakpoint sits relative to the first assignment.
//
// The sweep is deterministic: functions in program order, statements in
// order, classifications from the precomputed per-breakpoint tables, so
// the same artifact always produces byte-identical reports. The server's
// coverage protocol command and the mcoracle CLI both route through
// Sweep, which is what makes the live-daemon and in-process numbers
// comparable down to the formatted percentage strings.
package coverage

import (
	"fmt"
	"strings"

	"repro/internal/compile"
	"repro/internal/core"
)

// Counts is one row of the coverage report: pair totals and buckets.
type Counts struct {
	// Pairs is the total number of statement×variable(×field) pairs
	// swept, including uninitialized ones.
	Pairs int
	// Current / Recovered / Noncurrent partition Pairs - Uninit.
	Current    int
	Recovered  int
	Noncurrent int
	// Detail of the noncurrent bucket by classifier state.
	Suspect     int
	Nonresident int
	// Uninit counts pairs where no source assignment reaches yet.
	Uninit int
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.Pairs += o.Pairs
	c.Current += o.Current
	c.Recovered += o.Recovered
	c.Noncurrent += o.Noncurrent
	c.Suspect += o.Suspect
	c.Nonresident += o.Nonresident
	c.Uninit += o.Uninit
}

// classified is the percentage base: pairs that say something about the
// optimizer.
func (c Counts) classified() int { return c.Pairs - c.Uninit }

// Pcts renders the three headline percentages with fixed two-decimal
// formatting. Every consumer (CLI table, protocol response, docs) must
// route through this so a live daemon and an in-process sweep of the
// same artifact agree byte for byte.
func (c Counts) Pcts() (current, recovered, noncurrent string) {
	pct := func(n int) string {
		base := c.classified()
		if base == 0 {
			return "0.00"
		}
		return fmt.Sprintf("%.2f", 100*float64(n)/float64(base))
	}
	return pct(c.Current), pct(c.Recovered), pct(c.Noncurrent)
}

// FuncCoverage is one function's slice of the sweep.
type FuncCoverage struct {
	Func string
	Counts
}

// Report is the coverage of one compiled artifact.
type Report struct {
	Total Counts
	Funcs []FuncCoverage
}

// Sweep computes the coverage report for a compiled program, drawing
// per-function analyses from set (built lazily if absent). Functions
// appear in program order; the bucketing mirrors the interactive
// debugger exactly: struct members are counted under their base
// aggregate as per-field pairs, never double-counted as free-standing
// locals.
func Sweep(res *compile.Result, set *core.AnalysisSet) *Report {
	rep := &Report{}
	for _, f := range res.Mach.Funcs {
		a := set.Of(f)
		fc := FuncCoverage{Func: f.Name}
		for s := 0; s < a.Table.NumStmts; s++ {
			cs, ok := a.ClassifyAllAt(s)
			if !ok {
				continue
			}
			for _, c := range cs {
				// Members surface as Fields of their base aggregate.
				if c.Var.Base != nil {
					continue
				}
				switch {
				case len(c.Fields) > 0:
					// Split aggregate: one pair per field, each with its
					// own verdict.
					for _, fv := range c.Fields {
						bucket(&fc.Counts, fv)
					}
				case len(c.Var.Members) > 0:
					// Unsplit aggregate: memory-resident, every field is
					// displayable, one pair per field.
					for range c.Var.Members {
						bucket(&fc.Counts, c)
					}
				default:
					bucket(&fc.Counts, c)
				}
			}
		}
		rep.Total.Add(fc.Counts)
		rep.Funcs = append(rep.Funcs, fc)
	}
	return rep
}

// bucket files one classification into the counts.
func bucket(c *Counts, cls core.Classification) {
	c.Pairs++
	switch {
	case cls.State == core.Uninitialized:
		c.Uninit++
	case cls.Recovered != nil:
		c.Recovered++
	case cls.State == core.Current:
		c.Current++
	default:
		c.Noncurrent++
		switch cls.State {
		case core.Suspect:
			c.Suspect++
		case core.Nonresident:
			c.Nonresident++
		}
	}
}

// Row is one labeled line of a coverage table; the label is typically
// "workload/config" or a pass name.
type Row struct {
	Label string
	Counts
}

// FormatTable renders rows as the fixed-width table used by the mcoracle
// CLI and the README.
func FormatTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %7s %9s %9s %11s %7s\n", "corpus", "pairs", "current%", "recov%", "noncurrent%", "uninit")
	for _, r := range rows {
		cur, rec, non := r.Pcts()
		fmt.Fprintf(&b, "%-28s %7d %9s %9s %11s %7d\n", r.Label, r.Pairs, cur, rec, non, r.Uninit)
	}
	return b.String()
}
