package regalloc

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/mach"
	"repro/internal/opt"
	"repro/internal/sched"
	"repro/internal/sem"
	"repro/internal/vm"
)

func buildMach(t *testing.T, src string, o opt.Options) *mach.Program {
	t.Helper()
	p, err := sem.CheckSource("test.mc", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	prog := ir.Build(p)
	opt.Run(prog, o)
	return lower.Lower(prog)
}

// fullPipeline compiles, allocates, schedules, and runs, comparing against
// the unoptimized IR interpretation.
func fullPipeline(t *testing.T, src string, o opt.Options, doSched bool) *vm.VM {
	t.Helper()
	p, err := sem.CheckSource("test.mc", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	ref := ir.Build(p)
	wantRet, wantOut, err := ir.NewInterp(ref).Run()
	if err != nil {
		t.Fatalf("interp: %v", err)
	}

	mp := buildMach(t, src, o)
	if err := Allocate(mp); err != nil {
		t.Fatalf("regalloc: %v", err)
	}
	if doSched {
		sched.Schedule(mp)
	}
	m, err := vm.New(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("vm after regalloc: %v\n%s", err, mp)
	}
	if m.ExitValue() != wantRet {
		t.Errorf("exit: got %d want %d\n%s", m.ExitValue(), wantRet, mp)
	}
	if m.Output() != wantOut {
		t.Errorf("output: got %q want %q", m.Output(), wantOut)
	}
	return m
}

const progBig = `
int g = 3;
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
int manyVars(int a, int b, int c, int d) {
	int e = a + b;
	int f = c + d;
	int h = a * c;
	int i = b * d;
	int j = e + f;
	int k = h + i;
	int l = j * k;
	int m = l - e;
	int n = m + f;
	int o = n - h;
	int p = o + i;
	int q = p * 2;
	int r = q - j;
	int s = r + k;
	int t = s - l;
	int u = t + m;
	int v = u - n;
	int w = v + o;
	int x = w - p;
	int y = x + q;
	int z = y - r;
	return z + s + t + u + v + w + x + y;
}
int loops(int n) {
	int total = 0;
	int i;
	int j;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			total += i * j;
		}
	}
	return total;
}
float floats(float a, float b) {
	float c = a * b;
	float d = a + b;
	float e = c - d;
	float f = c * d;
	float h = e + f;
	float i = e - f;
	float j = h * i;
	float k = h + i;
	return j + k + a + b + c + d + e + f;
}
int main() {
	int arr[20];
	int i;
	for (i = 0; i < 20; i++) { arr[i] = i * g; }
	int s = 0;
	for (i = 0; i < 20; i++) { s += arr[i]; }
	print("fib=", fib(12), "\n");
	print("mv=", manyVars(1, 2, 3, 4), "\n");
	print("loops=", loops(7), "\n");
	print("floats=", floats(1.5, 2.5), "\n");
	print("s=", s, "\n");
	return s;
}
`

func TestRegallocO0(t *testing.T)      { fullPipeline(t, progBig, opt.O0(), false) }
func TestRegallocO2(t *testing.T)      { fullPipeline(t, progBig, opt.O2(), false) }
func TestRegallocO2Sched(t *testing.T) { fullPipeline(t, progBig, opt.O2(), true) }

func TestRegallocAssignsLocations(t *testing.T) {
	// Note: at O2 most of manyVars' locals are optimized away entirely
	// (assignment propagation + DCE leave only markers) — which is the
	// paper's point. Location coverage is asserted on unoptimized code.
	mp := buildMach(t, progBig, opt.O0())
	if err := Allocate(mp); err != nil {
		t.Fatal(err)
	}
	f := mp.LookupFunc("manyVars")
	if f == nil {
		t.Fatal("missing manyVars")
	}
	if !f.Allocated {
		t.Error("function not marked allocated")
	}
	located := 0
	for _, o := range f.Decl.Locals {
		loc, ok := f.VarLoc[o]
		if !ok {
			t.Errorf("no location recorded for %s", o.Name)
			continue
		}
		if loc.Kind != mach.LocNone {
			located++
		}
		if loc.Kind == mach.LocReg {
			if loc.R < 0 || loc.R >= mach.NumIntRegs {
				t.Errorf("%s got out-of-range register %d", o.Name, loc.R)
			}
		}
	}
	if located < 10 {
		t.Errorf("only %d variables located; expected most of manyVars' 26", located)
	}
}

func TestRegallocPhysRegBounds(t *testing.T) {
	mp := buildMach(t, progBig, opt.O2())
	if err := Allocate(mp); err != nil {
		t.Fatal(err)
	}
	for _, f := range mp.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				check := func(o mach.Opd) {
					if !o.IsReg() {
						return
					}
					lim := mach.NumIntRegs
					if o.Class == mach.FloatClass {
						lim = mach.NumFloatRegs
					}
					if o.R < 0 || o.R >= lim {
						t.Fatalf("%s: register out of bounds in %s", f.Name, in)
					}
				}
				check(in.Dst)
				check(in.A)
				check(in.B)
				for _, a := range in.Args {
					check(a)
				}
			}
		}
	}
}

func TestSpilling(t *testing.T) {
	// 40 simultaneously-live ints force spills with 18 registers.
	src := `
int main() {
	int v0 = 1; int v1 = 2; int v2 = 3; int v3 = 4; int v4 = 5;
	int v5 = 6; int v6 = 7; int v7 = 8; int v8 = 9; int v9 = 10;
	int v10 = v0+1; int v11 = v1+1; int v12 = v2+1; int v13 = v3+1;
	int v14 = v4+1; int v15 = v5+1; int v16 = v6+1; int v17 = v7+1;
	int v18 = v8+1; int v19 = v9+1; int v20 = v0+2; int v21 = v1+2;
	int v22 = v2+2; int v23 = v3+2; int v24 = v4+2; int v25 = v5+2;
	int v26 = v6+2; int v27 = v7+2; int v28 = v8+2; int v29 = v9+2;
	print(v0+v1+v2+v3+v4+v5+v6+v7+v8+v9);
	print(" ");
	print(v10+v11+v12+v13+v14+v15+v16+v17+v18+v19);
	print(" ");
	print(v20+v21+v22+v23+v24+v25+v26+v27+v28+v29);
	return v0+v29;
}
`
	m := fullPipeline(t, src, opt.O0(), false)
	if m.Output() != "55 65 75" {
		t.Errorf("output = %q", m.Output())
	}
}

func TestSchedulingReducesCycles(t *testing.T) {
	src := `
int main() {
	int a[64];
	int i;
	for (i = 0; i < 64; i++) { a[i] = i; }
	int s = 0;
	int p = 1;
	for (i = 0; i < 64; i++) {
		s = s + a[i] * 3;
		p = p + i * i;
	}
	print(s, " ", p);
	return 0;
}
`
	unsched := fullPipeline(t, src, opt.O2(), false)
	scheduled := fullPipeline(t, src, opt.O2(), true)
	if scheduled.Cycles > unsched.Cycles {
		t.Errorf("scheduling increased cycles: %d -> %d", unsched.Cycles, scheduled.Cycles)
	}
}
