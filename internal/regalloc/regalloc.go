// Package regalloc implements mcc's global register allocator: a
// Chaitin-style graph-coloring allocator (Table 1 of the paper: "global
// register allocation (using graph coloring)" and "register coalescing")
// with Briggs-style optimistic coloring and conservative coalescing, plus
// spilling to frame slots.
//
// Allocation is what makes source variables *nonresident*: once variables
// share physical registers, a variable's register only holds its value
// inside the variable's live range. The allocator therefore records each
// variable's allocated location in Func.VarLoc; the per-point residence
// test itself is performed by the debugger analyses (package core) from
// the DefObj/UseObjs tags that survive on the final instructions.
//
// Moves that copy source variables are never coalesced away: deleting them
// would erase the variable's defining instruction, which the debugger's
// bookkeeping needs. Temp-to-temp moves are coalesced normally.
package regalloc

import (
	"fmt"
	"math"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/mach"
)

// Allocate colors every function in the program.
func Allocate(p *mach.Program) error {
	for _, f := range p.Funcs {
		if err := AllocateFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// AllocateFunc runs register allocation for one function.
func AllocateFunc(f *mach.Func) error {
	a := &allocator{f: f, spillTemp: map[int]bool{}}
	if err := a.run(mach.IntClass, mach.NumIntRegs); err != nil {
		return err
	}
	if err := a.run(mach.FloatClass, mach.NumFloatRegs); err != nil {
		return err
	}
	f.Allocated = true
	return nil
}

type allocator struct {
	f         *mach.Func
	spillTemp map[int]bool // vregs created by spill code: never re-spill
}

// run allocates one register class.
func (a *allocator) run(class mach.RegClass, k int) error {
	spilled := map[int]int64{} // vreg -> frame offset
	for round := 0; round < 24; round++ {
		// Coalesce to a fixed point, rebuilding the graph after each merge.
		var g *igraph
		for i := 0; ; i++ {
			g = a.buildGraph(class)
			if i > 10_000 || !a.coalesce(g, class, k) {
				break
			}
		}
		toSpill := g.color(k)
		if len(toSpill) == 0 {
			a.rewrite(g, class, spilled)
			return nil
		}
		for _, v := range toSpill {
			if a.spillTemp[v] {
				return fmt.Errorf("regalloc: %s: spill temp v%d needs spilling again (class %d)",
					a.f.Name, v, class)
			}
			off := a.f.FrameSize
			a.f.FrameSize += 4
			spilled[v] = off
			a.insertSpillCode(v, class, off)
		}
	}
	return fmt.Errorf("regalloc: %s: did not converge", a.f.Name)
}

// ---------------------------------------------------------------- liveness

func machGraph(f *mach.Func) dataflow.Graph {
	idx := map[*mach.Block]int{}
	for i, b := range f.Blocks {
		idx[b] = i
	}
	g := dataflow.Graph{N: len(f.Blocks), Succs: make([][]int, len(f.Blocks)), Preds: make([][]int, len(f.Blocks))}
	for i, b := range f.Blocks {
		for _, s := range b.Succs {
			g.Succs[i] = append(g.Succs[i], idx[s])
			g.Preds[idx[s]] = append(g.Preds[idx[s]], i)
		}
	}
	return g
}

// RegKey encodes a register operand (class + number) as a dense bit index,
// so int and float registers never collide in liveness bit vectors.
func RegKey(o mach.Opd) int { return o.R*2 + int(o.Class) }

// KeyReg decodes a RegKey back into (number, class).
func KeyReg(k int) (int, mach.RegClass) { return k / 2, mach.RegClass(k % 2) }

// Liveness computes per-block live-in/out over all registers of f, indexed
// by RegKey.
func Liveness(f *mach.Func) ([]*dataflow.BitSet, []*dataflow.BitSet) {
	g := machGraph(f)
	n := 2 * (f.NumVregs + mach.NumIntRegs + mach.NumFloatRegs + 2)
	use := make([]*dataflow.BitSet, g.N)
	def := make([]*dataflow.BitSet, g.N)
	var buf []mach.Opd
	for i, b := range f.Blocks {
		use[i] = dataflow.NewBitSet(n)
		def[i] = dataflow.NewBitSet(n)
		for _, in := range b.Instrs {
			buf = in.Uses(buf[:0])
			for _, o := range buf {
				if !def[i].Has(RegKey(o)) {
					use[i].Set(RegKey(o))
				}
			}
			if d := in.Def(); d.IsReg() {
				def[i].Set(RegKey(d))
			}
		}
	}
	p := dataflow.Problem{Graph: g, Dir: dataflow.Backward, Meet: dataflow.Union,
		Bits: n, Gen: use, Kill: def}
	res := p.Solve()
	return res.In, res.Out
}

// ---------------------------------------------------------------- graph

type igraph struct {
	f      *mach.Func
	class  mach.RegClass
	nodes  map[int]bool
	adj    map[int]map[int]bool
	cost   map[int]float64
	colors map[int]int
}

func (a *allocator) buildGraph(class mach.RegClass) *igraph {
	f := a.f
	g := &igraph{
		f: f, class: class,
		nodes: map[int]bool{}, adj: map[int]map[int]bool{},
		cost: map[int]float64{}, colors: map[int]int{},
	}
	addNode := func(r int) {
		if !g.nodes[r] {
			g.nodes[r] = true
			g.adj[r] = map[int]bool{}
		}
	}
	addEdge := func(x, y int) {
		if x == y {
			return
		}
		addNode(x)
		addNode(y)
		g.adj[x][y] = true
		g.adj[y][x] = true
	}

	// Node discovery and spill costs (weighted by loop depth).
	var buf []mach.Opd
	for _, b := range f.Blocks {
		w := math.Pow(10, float64(b.LoopDepth))
		for _, in := range b.Instrs {
			ops := in.Uses(buf[:0])
			if d := in.Def(); d.IsReg() {
				ops = append(ops, d)
			}
			for _, o := range ops {
				if o.Class == class {
					addNode(o.R)
					g.cost[o.R] += w
				}
			}
		}
	}

	_, liveOut := Liveness(f)
	for bi, b := range f.Blocks {
		live := liveOut[bi].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			d := in.Def()
			if d.IsReg() && d.Class == class {
				live.ForEach(func(key int) {
					l, cls := KeyReg(key)
					if cls != class {
						return
					}
					// A move does not interfere with its source.
					if in.Op == mach.MOV && in.A.IsReg() && in.A.Class == class && in.A.R == l {
						return
					}
					addEdge(d.R, l)
				})
			}
			if d.IsReg() {
				live.Clear(RegKey(d))
			}
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				live.Set(RegKey(u))
			}
		}
	}
	return g
}

func (g *igraph) degree(n int) int { return len(g.adj[n]) }

// ---------------------------------------------------------------- coalesce

// coalesce merges one batch of temp-to-temp moves using the Briggs
// conservative criterion; returns true if anything was merged (the caller
// rebuilds the graph).
func (a *allocator) coalesce(g *igraph, class mach.RegClass, k int) bool {
	f := a.f
	merged := false
	for _, b := range f.Blocks {
		for pos := 0; pos < len(b.Instrs); pos++ {
			in := b.Instrs[pos]
			if in.Op != mach.MOV || !in.A.IsReg() || !in.Dst.IsReg() {
				continue
			}
			if in.Dst.Class != class || in.A.Class != class {
				continue
			}
			dst, src := in.Dst.R, in.A.R
			if dst == src {
				b.RemoveAt(pos)
				pos--
				merged = true
				continue
			}
			// Preserve source-variable defining moves and recovery points.
			if dst < f.NumVars || src < f.NumVars {
				continue
			}
			if in.Ann.ReplacedVar != nil || in.Ann.Recover != nil {
				continue
			}
			if g.adj[dst][src] {
				continue
			}
			// Briggs: merged node must have < k significant neighbors.
			sig := 0
			seen := map[int]bool{}
			for n := range g.adj[dst] {
				seen[n] = true
				if g.degree(n) >= k {
					sig++
				}
			}
			for n := range g.adj[src] {
				if !seen[n] && g.degree(n) >= k {
					sig++
				}
			}
			if sig >= k {
				continue
			}
			// Merge src into dst everywhere; drop the move.
			b.RemoveAt(pos)
			pos--
			old := mach.Opd{Kind: mach.Reg, Class: class, R: src}
			new := mach.Opd{Kind: mach.Reg, Class: class, R: dst}
			for _, bb := range f.Blocks {
				for _, ii := range bb.Instrs {
					ii.ReplaceReg(old, new, true)
				}
			}
			return true // rebuild graph after each merge for safety
		}
	}
	return merged
}

// ---------------------------------------------------------------- color

// color runs simplify/select with optimistic coloring; returns the list of
// vregs that must be spilled (empty on success, in which case g.colors maps
// every node to a physical register number).
func (g *igraph) color(k int) []int {
	// Working copies.
	deg := map[int]int{}
	removed := map[int]bool{}
	for n := range g.nodes {
		deg[n] = g.degree(n)
	}
	var stack []int
	remaining := len(g.nodes)

	removeNode := func(n int) {
		removed[n] = true
		remaining--
		for m := range g.adj[n] {
			if !removed[m] {
				deg[m]--
			}
		}
		stack = append(stack, n)
	}

	for remaining > 0 {
		// Simplify: pick any node with degree < k (deterministic order:
		// lowest vreg number).
		pick := -1
		for n := 0; ; n++ {
			if pick >= 0 || n > maxNode(g.nodes) {
				break
			}
			if g.nodes[n] && !removed[n] && deg[n] < k {
				pick = n
			}
		}
		if pick < 0 {
			// Potential spill: lowest cost/degree.
			best := -1
			bestScore := math.Inf(1)
			for n := range g.nodes {
				if removed[n] {
					continue
				}
				d := deg[n]
				if d == 0 {
					d = 1
				}
				score := g.cost[n] / float64(d)
				if score < bestScore || (score == bestScore && (best == -1 || n < best)) {
					best, bestScore = n, score
				}
			}
			pick = best
		}
		removeNode(pick)
	}

	// Select.
	var spills []int
	for i := len(stack) - 1; i >= 0; i-- {
		n := stack[i]
		used := map[int]bool{}
		for m := range g.adj[n] {
			if c, ok := g.colors[m]; ok {
				used[c] = true
			}
		}
		c := -1
		for x := 0; x < k; x++ {
			if !used[x] {
				c = x
				break
			}
		}
		if c < 0 {
			spills = append(spills, n)
			continue
		}
		g.colors[n] = c
	}
	return spills
}

func maxNode(nodes map[int]bool) int {
	mx := -1
	for n := range nodes {
		if n > mx {
			mx = n
		}
	}
	return mx
}

// ---------------------------------------------------------------- spill

// insertSpillCode rewrites every occurrence of vreg v through a frame slot.
func (a *allocator) insertSpillCode(v int, class mach.RegClass, off int64) {
	f := a.f
	loadOp, storeOp := mach.LWFP, mach.SWFP
	if class == mach.FloatClass {
		loadOp, storeOp = mach.FLWFP, mach.FSWFP
	}
	old := mach.Opd{Kind: mach.Reg, Class: class, R: v}
	for _, b := range f.Blocks {
		for pos := 0; pos < len(b.Instrs); pos++ {
			in := b.Instrs[pos]
			usesV := false
			var buf []mach.Opd
			for _, u := range in.Uses(buf) {
				if u.Same(old) {
					usesV = true
					break
				}
			}
			defsV := in.Def().Same(old) && in.Def().IsReg()
			if !usesV && !defsV {
				if in.MarkAlias.Same(old) {
					// The alias value now lives in a slot the debugger
					// cannot name through a register: drop the alias.
					in.MarkAlias = mach.Opd{}
				}
				continue
			}
			if usesV {
				t := f.NewVreg(class)
				a.spillTemp[t.R] = true
				ld := &mach.Instr{Op: loadOp, Dst: t, Off: off, Stmt: in.Stmt, OrigIdx: in.OrigIdx}
				insertAt(b, pos, ld)
				pos++
				in.ReplaceReg(old, t, false)
			}
			if defsV {
				t := f.NewVreg(class)
				a.spillTemp[t.R] = true
				in.ReplaceReg(old, t, true) // only the def remains
				st := &mach.Instr{Op: storeOp, B: t, Off: off, Stmt: in.Stmt, OrigIdx: in.OrigIdx}
				insertAt(b, pos+1, st)
				pos++
			}
		}
	}
}

func insertAt(b *mach.Block, pos int, in *mach.Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[pos+1:], b.Instrs[pos:])
	b.Instrs[pos] = in
}

// ---------------------------------------------------------------- rewrite

// rewrite maps vregs of the class to their physical registers and records
// variable locations.
// pruneStaleAliases drops MarkAlias operands that name a vreg which is
// not live at the marker's position. The coloring guarantee — the
// assigned physical register holds the vreg's value — covers only the
// vreg's live range; markers deliberately do not extend live ranges
// (an alias must never keep a value alive), so a marker can sit past
// the aliased vreg's last use, where the register may already have
// been reused for an unrelated value. ValidateMarkers cannot catch
// this: it runs on IR before allocation and physical register reuse
// does not exist yet. Recovering through such an alias would fabricate
// a value, so it is degraded to no recovery instead. Must run before
// operands are rewritten to physical numbers.
func (a *allocator) pruneStaleAliases(class mach.RegClass) {
	f := a.f
	any := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mach.MARKDEAD && in.MarkAlias.Kind == mach.Reg && in.MarkAlias.Class == class {
				any = true
			}
		}
	}
	if !any {
		return
	}
	_, liveOut := Liveness(f)
	var buf []mach.Opd
	for bi, b := range f.Blocks {
		live := liveOut[bi].Copy()
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			// Markers have no defs or uses, so live-after equals
			// live-at for them; check before applying effects.
			if in.Op == mach.MARKDEAD && in.MarkAlias.Kind == mach.Reg && in.MarkAlias.Class == class &&
				!live.Has(RegKey(in.MarkAlias)) {
				in.MarkAlias = mach.Opd{}
			}
			if d := in.Def(); d.IsReg() {
				live.Clear(RegKey(d))
			}
			buf = in.Uses(buf[:0])
			for _, o := range buf {
				live.Set(RegKey(o))
			}
		}
	}
}

func (a *allocator) rewrite(g *igraph, class mach.RegClass, spilled map[int]int64) {
	f := a.f
	a.pruneStaleAliases(class)
	phys := func(o *mach.Opd) {
		if o.Kind == mach.Reg && o.Class == class {
			if c, ok := g.colors[o.R]; ok {
				o.R = c
			} else {
				// Unconstrained (never live simultaneously with anything,
				// or dead): give it register 0.
				o.R = 0
			}
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			phys(&in.Dst)
			phys(&in.A)
			phys(&in.B)
			for i := range in.Args {
				phys(&in.Args[i])
			}
			for i := range in.PrintFmt {
				if !in.PrintFmt[i].IsStr {
					phys(&in.PrintFmt[i].Val)
				}
			}
			// A marker's alias operand names the register holding an
			// eliminated value. If that vreg got no color (its defs were
			// all removed or it was spilled), the alias is unrecoverable
			// through a register: drop it rather than point at a wrong
			// physical register.
			if in.MarkAlias.Kind == mach.Reg && in.MarkAlias.Class == class {
				if c, ok := g.colors[in.MarkAlias.R]; ok {
					in.MarkAlias.R = c
				} else {
					in.MarkAlias = mach.Opd{}
				}
			}
		}
	}
	// Record variable locations.
	for vid := 0; vid < f.NumVars; vid++ {
		obj := f.Decl.Locals[vid]
		cls := mach.IntClass
		if ast.IsFloat(obj.Type) {
			cls = mach.FloatClass
		}
		if cls != class {
			continue
		}
		if off, ok := spilled[vid]; ok {
			f.VarLoc[obj] = mach.Loc{Kind: mach.LocSpill, Class: class, Off: off}
		} else if c, ok := g.colors[vid]; ok {
			f.VarLoc[obj] = mach.Loc{Kind: mach.LocReg, Class: class, R: c}
		} else {
			f.VarLoc[obj] = mach.Loc{Kind: mach.LocNone}
		}
	}
}
