package chaos

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/pkg/minic"
)

// The soak's knobs. CI runs a longer schedule (-chaos.duration) and
// pins -chaos.seed when reproducing a recorded failure; the default is
// sized for the ordinary test suite.
var (
	chaosDuration = flag.Duration("chaos.duration", 3*time.Second, "length of the chaos fault schedule")
	chaosSeed     = flag.Int64("chaos.seed", 0, "fault schedule seed (0 = derive one and log it)")
)

const soakClients = 8

// TestChaosSoak is the harness's capstone: a live daemon under
// concurrent scripted load while a randomized fault schedule breaks its
// disk, its compile workers, and its connections. The contract under
// test is "unavailable, never wrong":
//
//   - every successful response is byte-identical (canonicalized) to a
//     fault-free reference run of the same script;
//   - cycle accounting is conserved: completed iterations put a floor
//     under cycles_executed, started iterations a ceiling;
//   - the spill tier degrades under the guaranteed disk outage and
//     self-recovers once the disk heals (background probe);
//   - no handler panics escape containment;
//   - after the schedule ends, a full fault-free iteration per client
//     succeeds and matches the reference exactly.
func TestChaosSoak(t *testing.T) {
	seed := *chaosSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("chaos schedule seed %d (reproduce with -chaos.seed=%d)", seed, seed)
	if path := os.Getenv("CHAOS_SEED_FILE"); path != "" {
		if err := os.WriteFile(path, []byte(fmt.Sprintf("%d\n", seed)), 0o644); err != nil {
			t.Logf("writing CHAOS_SEED_FILE: %v", err)
		}
	}

	// A deliberately tight store (4 artifacts, 8 distinct programs)
	// forces constant eviction/spill/reload churn, so the disk-tier fault
	// points see real traffic; a fast probe lets degradation heal within
	// the schedule's fault-free tail.
	srv := server.New(server.Options{
		CacheSize:          4,
		Shards:             2,
		SpillDir:           t.TempDir(),
		MaxSessions:        4096,
		SpillDegradeAfter:  2,
		SpillProbeInterval: 25 * time.Millisecond,
		RequestTimeout:     10 * time.Second,
		DrainTimeout:       2 * time.Second,
	})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go srv.ListenAndServe(l)
	addr := l.Addr().String()

	progs := make([]Program, soakClients)
	for i := range progs {
		progs[i] = DefaultProgram(fmt.Sprintf("chaos-%d.mc", i))
	}

	// Phase 1 — fault-free reference, serial: record each program's
	// canonical transcript and its exact cycle cost.
	ref := make([][]string, soakClients)
	cycles := make([]int64, soakClients)
	for i, p := range progs {
		c, err := minic.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		before := srv.Snapshot().CyclesExecuted
		tr, err := RunIteration(c, p)
		if err != nil {
			t.Fatalf("reference iteration %d: %v", i, err)
		}
		if len(tr) != len(p.Steps()) {
			t.Fatalf("reference iteration %d: %d steps, want %d", i, len(tr), len(p.Steps()))
		}
		ref[i] = tr
		cycles[i] = srv.Snapshot().CyclesExecuted - before
		if cycles[i] <= 0 {
			t.Fatalf("reference iteration %d executed %d cycles", i, cycles[i])
		}
		c.Close()
	}

	// Phase 2 — chaos: the schedule plays while every client loops its
	// script. Successful steps must match the reference byte for byte;
	// failed steps abort the iteration (typed errors and dropped
	// connections are the service being unavailable, which is allowed).
	base := srv.Snapshot()
	sched := NewSchedule(seed, *chaosDuration)
	stop := make(chan struct{})
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		sched.Run(stop)
	}()
	defer close(stop)

	type clientStats struct {
		started, completed, failed int64
		mismatches                 []string
	}
	stats := make([]clientStats, soakClients)
	var wg sync.WaitGroup
	for i := 0; i < soakClients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := minic.Dial("tcp", addr, minic.WithRetry(minic.RetryPolicy{
				MaxAttempts: 3,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    50 * time.Millisecond,
			}))
			if err != nil {
				stats[i].mismatches = append(stats[i].mismatches, fmt.Sprintf("dial: %v", err))
				return
			}
			defer c.Close()
			st := &stats[i]
			for {
				select {
				case <-schedDone:
					return
				default:
				}
				tr, err := RunIteration(c, progs[i])
				st.started++
				if err == nil {
					st.completed++
				} else {
					st.failed++
				}
				if len(tr) > len(ref[i]) {
					st.mismatches = append(st.mismatches,
						fmt.Sprintf("iteration %d: %d steps, reference has %d", st.started, len(tr), len(ref[i])))
					continue
				}
				for k := range tr {
					if tr[k] != ref[i][k] {
						st.mismatches = append(st.mismatches,
							fmt.Sprintf("iteration %d step %d:\n  got  %s\n  want %s", st.started, k, tr[k], ref[i][k]))
					}
				}
			}
		}(i)
	}
	wg.Wait()
	<-schedDone

	var started, completed, failed int64
	for i := range stats {
		started += stats[i].started
		completed += stats[i].completed
		failed += stats[i].failed
		for _, m := range stats[i].mismatches {
			t.Errorf("client %d payload divergence: %s", i, m)
		}
	}
	t.Logf("chaos phase: %d iterations started, %d completed, %d failed (seed %d)",
		started, completed, failed, seed)
	if started == 0 {
		t.Fatal("chaos phase ran no iterations")
	}
	if completed == 0 {
		t.Errorf("chaos phase completed no iterations — the service never answered through the faults (seed %d)", seed)
	}

	// Cycle conservation. Every completed iteration executed its program
	// exactly once (floor); no iteration can execute more than its
	// program (ceiling), whatever faults cut it short — a timed-out or
	// abandoned continue still credits only the cycles it really ran.
	chaosSnap := srv.Snapshot()
	delta := chaosSnap.CyclesExecuted - base.CyclesExecuted
	var floor, ceil int64
	for i := range stats {
		floor += stats[i].completed * cycles[i]
		ceil += stats[i].started * cycles[i]
	}
	if delta < floor || delta > ceil {
		t.Errorf("cycles_executed delta %d outside conservation bounds [%d, %d] (seed %d)",
			delta, floor, ceil, seed)
	}

	// The guaranteed disk outage must have tripped the breaker at least
	// once, and no injected panic may have escaped containment.
	if chaosSnap.SpillDegradations < 1 {
		t.Errorf("spill tier never degraded under the guaranteed outage (degradations=%d, seed %d)",
			chaosSnap.SpillDegradations, seed)
	}
	if chaosSnap.Panics != 0 {
		t.Errorf("%d handler panics escaped containment (seed %d)", chaosSnap.Panics, seed)
	}

	// Phase 3 — recovery: the injector is off (Run disabled it). The
	// breaker's probe must re-enable the spill tier, and a full
	// fault-free iteration per client must match the reference exactly.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().SpillDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("spill tier still degraded %s after faults cleared (probes=%d, seed %d)",
				5*time.Second, srv.Snapshot().SpillProbes, seed)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, p := range progs {
		c, err := minic.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := RunIteration(c, p)
		if err != nil {
			t.Fatalf("recovery iteration %d: %v (seed %d)", i, err, seed)
		}
		for k := range tr {
			if tr[k] != ref[i][k] {
				t.Errorf("recovery iteration %d step %d diverged:\n  got  %s\n  want %s (seed %d)",
					i, k, tr[k], ref[i][k], seed)
			}
		}
		c.Close()
	}
}
