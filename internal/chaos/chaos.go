// Package chaos is the fault-schedule player and load generator behind
// the chaos soak: it arms randomized, seeded fault windows against the
// process-wide injector (internal/fault) while scripted clients hammer a
// live daemon, so the soak test can assert the service's core contract —
// under injected disk, compile, and connection failures the service may
// answer *unavailable* (typed errors, dropped connections) but never
// *wrong* (every successful response is byte-identical to a fault-free
// run, and the cycle accounting stays conserved).
//
// The load generator half lives in internal/loadgen — one scripted-client
// implementation shared with the differential oracle's soak — and is
// re-exported here as aliases so soak tests read naturally either way.
package chaos

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/fault"
	"repro/internal/loadgen"
	"repro/pkg/minic"
)

// Event arms one fault point with one rule for a window of the schedule.
// Windows of the same point never overlap (NewSchedule generates them
// sequentially per point), so clearing at At+For cannot clobber a later
// event's rule.
type Event struct {
	At    time.Duration // offset from schedule start
	For   time.Duration // how long the rule stays armed
	Point string
	Rule  fault.Rule
}

// Schedule is a deterministic fault timeline: the same seed and total
// always produce the same events, so a failing soak reproduces from its
// logged seed.
type Schedule struct {
	Seed   int64
	Total  time.Duration
	Events []Event
}

// NewSchedule builds a randomized schedule of total length total from
// seed. The first ~60% of the timeline carries independent random fault
// windows per point (spill read/write/rename errors, partial spill
// writes, compile errors/panics/delays, connection drops and stalls);
// from 60% to 75% every spill I/O point fails with probability 1 — a
// guaranteed full disk outage long enough to trip the circuit breaker —
// and the final quarter is fault-free so the recovery probe can re-enable
// the tier before the soak's recovery phase asserts on it.
func NewSchedule(seed int64, total time.Duration) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed, Total: total}
	chaosEnd := total * 6 / 10

	// windows lays sequential random windows of one point's rule over
	// [0, chaosEnd).
	windows := func(point string, mk func() fault.Rule) {
		t := time.Duration(rng.Int63n(int64(total/10) + 1))
		for t < chaosEnd {
			d := total/40 + time.Duration(rng.Int63n(int64(total/10)+1))
			if t+d > chaosEnd {
				d = chaosEnd - t
			}
			s.Events = append(s.Events, Event{At: t, For: d, Point: point, Rule: mk()})
			t += d + total/40 + time.Duration(rng.Int63n(int64(total/10)+1))
		}
	}

	windows("store.spill.read", func() fault.Rule {
		return fault.Rule{Prob: 0.25 + rng.Float64()*0.5}
	})
	windows("store.spill.write", func() fault.Rule {
		return fault.Rule{Prob: 0.25 + rng.Float64()*0.5}
	})
	windows("store.spill.rename", func() fault.Rule {
		return fault.Rule{Prob: 0.2 + rng.Float64()*0.4}
	})
	windows("store.spill.partial", func() fault.Rule {
		return fault.Rule{Prob: 0.3 + rng.Float64()*0.4, CutTo: 0.2 + rng.Float64()*0.6}
	})
	windows("compile.func", func() fault.Rule {
		r := fault.Rule{Prob: 0.05 + rng.Float64()*0.15}
		switch {
		case rng.Float64() < 0.3:
			// Worker panic: must surface as a compile error, never kill
			// the process.
			r.Panic = true
		case rng.Float64() < 0.5:
			// Slow back end that still succeeds (delay-only rule).
			r.Delay = time.Duration(rng.Int63n(int64(2*time.Millisecond)) + 1)
		default:
			r.Err = fault.ErrInjected
		}
		return r
	})
	windows("server.conn.write", func() fault.Rule {
		if rng.Float64() < 0.5 {
			// Slow writer: a pure-Delay rule stalls the response write and
			// then lets it succeed (fault.Check's delay-only mode).
			return fault.Rule{Prob: 0.2, Delay: 5*time.Millisecond + time.Duration(rng.Int63n(int64(20*time.Millisecond)))}
		}
		// Dropped connection: the write "fails", Serve returns, the
		// client's sessions detach.
		return fault.Rule{Prob: 0.03 + rng.Float64()*0.07, Err: fault.ErrInjected}
	})

	// Guaranteed outage: every spill I/O path fails, unconditionally.
	// NotExist reads count as breaker successes, so a partial outage could
	// in principle never accumulate the consecutive failures the breaker
	// needs; all three at Prob 1 cannot be out-raced.
	outStart, outDur := chaosEnd, total*15/100
	for _, pt := range []string{"store.spill.read", "store.spill.write", "store.spill.rename"} {
		s.Events = append(s.Events, Event{At: outStart, For: outDur, Point: pt, Rule: fault.Rule{Prob: 1}})
	}

	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s
}

// Run plays the schedule in real time against the process-wide injector:
// it enables the injector with the schedule's seed, arms and clears each
// event at its offset, and disables the injector on return. It blocks
// until the timeline (through Total) has elapsed or stop is closed.
func (s Schedule) Run(stop <-chan struct{}) {
	fault.Enable(s.Seed)
	defer fault.Disable()

	type action struct {
		at    time.Duration
		arm   bool
		event Event
	}
	var timeline []action
	for _, ev := range s.Events {
		timeline = append(timeline, action{at: ev.At, arm: true, event: ev})
		timeline = append(timeline, action{at: ev.At + ev.For, arm: false, event: ev})
	}
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].at < timeline[j].at })

	start := time.Now()
	for _, a := range timeline {
		if wait := a.at - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-stop:
				return
			}
		}
		if a.arm {
			fault.Set(a.event.Point, a.event.Rule)
		} else {
			fault.Clear(a.event.Point)
		}
	}
	if wait := s.Total - time.Since(start); wait > 0 {
		select {
		case <-time.After(wait):
		case <-stop:
		}
	}
}

// Program is one scripted debug interaction; it is loadgen.Program, the
// single shared implementation behind both soaks.
type Program = loadgen.Program

// DefaultProgram is the soak's workload; see loadgen.DefaultProgram.
func DefaultProgram(name string) Program { return loadgen.DefaultProgram(name) }

// RunIteration drives one full iteration of p against c; see
// loadgen.RunIteration.
func RunIteration(c *minic.Client, p Program) ([]string, error) {
	return loadgen.RunIteration(c, p)
}
