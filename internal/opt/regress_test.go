package opt

import (
	"testing"

	"repro/internal/ir"
)

// Regression tests for miscompilations found by the randprog fuzzer.

// TestRegressAssignPropStaleClone (fuzzer seed 1759): assignment
// propagation used to re-materialize from the candidate's *current*
// instruction, which an earlier in-place use replacement could have
// rewritten (v6 -> chk), producing an expression over a variable whose
// value had moved on. Candidates must be snapshotted at collection time.
func TestRegressAssignPropStaleClone(t *testing.T) {
	src := `
int main() {
	int chk = 7;
	int buf[4];
	int z;
	for (z = 0; z < 4; z++) { buf[z] = z * 3; }
	int i5;
	for (i5 = 0; i5 < 4; i5++) {
		int v6 = chk;
		chk = v6 + buf[i5 % 4];
	}
	print("chk=", chk, "\n");
	return 0;
}`
	differential(t, src, Options{AssignProp: true, Unroll: true})
	differential(t, src, O2())
}

// TestRegressPDCESelfReference (fuzzer seed 4216): partial dead code
// elimination used to sink self-referencing assignments (v5 = v5 - t);
// the sunk copy reads the destination, so the original never went dead and
// every PDCE round stacked another copy, multiplying the update's effect.
func TestRegressPDCESelfReference(t *testing.T) {
	src := `
int G1 = 22;
int main() {
	int chk = 7;
	int v4 = ((-14 + 16) % (((chk % ((chk % 7 + 7) % 7 + 1)) % 7 + 7) % 7 + 1));
	int v5 = (chk - v4);
	v5 -= (G1 - v5);
	chk = (chk * 31 + v4) % 65521;
	int v6 = ((52 % ((chk % 7 + 7) % 7 + 1)) / ((-9 % 9 + 9) % 9 + 1));
	if ((v6 + chk) != 52) {
		G1 = ((v5 % ((-16 % 7 + 7) % 7 + 1)) - (v6 / ((v6 % 9 + 9) % 9 + 1)));
	} else {
		chk = (chk * 31 + G1) % 65521;
	}
	chk = (chk * 31 + v4) % 65521;
	chk = (chk * 13 + G1) % 65521;
	print("chk=", chk, "\n");
	return 0;
}`
	differential(t, src, Options{AssignProp: true, PDCE: true})
	differential(t, src, O2())
}

// TestPDCENeverSinksSelfRef asserts the structural property directly.
func TestPDCENeverSinksSelfRef(t *testing.T) {
	src := `
int f(int c, int a) {
	int x = a + 1;
	x = x * 2;       // self-referencing: must never be sunk
	int r = 0;
	if (c) { r = x; }
	return r;
}
int main() { return f(1, 3); }
`
	prog := buildIR(t, src)
	Run(prog, Options{PDCE: true, DCE: true})
	f := prog.LookupFunc("f")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !in.Ann.Sunk {
				continue
			}
			var buf []ir.Operand
			for _, u := range in.Uses(buf) {
				if in.HasDst() && u.Same(in.Dst) {
					t.Errorf("self-referencing assignment was sunk: %s", in)
				}
			}
		}
	}
	differential(t, src, Options{PDCE: true, DCE: true})
}
