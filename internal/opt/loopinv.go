package opt

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// LoopInvert performs loop inversion (the classic while→do-while rotation,
// one of Table 1's branch optimizations): the loop test at the header is
// duplicated into each latch, so iterating costs one conditional branch
// instead of a jump plus a branch. The header's original test remains as
// the zero-trip guard.
//
// Per §3 of the paper this is *code duplication*: marker
// pseudo-instructions and annotations inside the duplicated header are
// duplicated along with the code (Instr.Clone preserves them), and no
// data-value problems arise because no assignment is moved or eliminated.
func LoopInvert(f *ir.Func) bool {
	changed := false
	for rounds := 0; rounds < 16; rounds++ {
		g, _ := graphOf(f)
		loops, _ := dataflow.FindLoops(g, 0)
		inverted := false
		for _, l := range loops {
			if invertLoop(f, g, l) {
				changed = true
				inverted = true
				break // CFG changed: rediscover loops
			}
		}
		if !inverted {
			break
		}
	}
	return changed
}

// invertLoop rotates one loop if its header is a pure test block.
func invertLoop(f *ir.Func, g dataflow.Graph, l *dataflow.Loop) bool {
	header := f.Blocks[l.Header]
	term := header.Term()
	if term == nil || term.Kind != ir.Br || len(header.Succs) != 2 {
		return false
	}
	// Identify the in-loop successor and the exit successor.
	hi := l.Header
	var bodySucc, exitSucc *ir.Block
	s0in := l.Blocks[blockIndex(f, header.Succs[0])]
	s1in := l.Blocks[blockIndex(f, header.Succs[1])]
	switch {
	case s0in && !s1in:
		bodySucc, exitSucc = header.Succs[0], header.Succs[1]
	case s1in && !s0in:
		bodySucc, exitSucc = header.Succs[1], header.Succs[0]
	default:
		return false // both arms inside (rotated already) or irreducible
	}
	_ = exitSucc

	// The header must contain only pure, duplicable instructions (the
	// test computation) and markers. Loads are excluded: duplicating a
	// load past the loop body's stores would reorder memory accesses.
	for _, in := range header.Body() {
		switch in.Kind {
		case ir.BinOp, ir.UnOp, ir.Copy, ir.Addr, ir.MarkDead, ir.MarkAvail:
		default:
			return false
		}
	}
	// Keep duplication small.
	if len(header.Instrs) > 8 {
		return false
	}

	// Latches: in-loop predecessors of the header that end in a plain
	// jump (conditional latches would need edge splitting; skip those).
	var latches []*ir.Block
	for _, p := range header.Preds {
		pi := blockIndex(f, p)
		if pi < 0 || !l.Blocks[pi] {
			continue
		}
		if t := p.Term(); t == nil || t.Kind != ir.Jmp {
			return false
		}
		latches = append(latches, p)
	}
	if len(latches) == 0 {
		return false
	}
	_ = hi

	// Duplicate the header's body + branch into each latch, replacing the
	// latch's jump.
	for _, latch := range latches {
		latch.Instrs = latch.Instrs[:len(latch.Instrs)-1] // drop the Jmp
		for _, in := range header.Instrs {
			c := in.Clone()
			c.OrigIdx = f.NextOrig()
			latch.Instrs = append(latch.Instrs, c)
		}
		latch.Succs = []*ir.Block{bodySucc, exitSucc}
	}
	f.RecomputePreds()
	return true
}
