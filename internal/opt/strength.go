package opt

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// StrengthReduce performs loop strength reduction, linear function test
// replacement and induction-variable elimination:
//
//   - a basic induction variable i (single in-loop update i = i ± c) with
//     derived computations t = a*i (multiplications or shifts by constants)
//     gets a strength-reduced temporary s maintained incrementally;
//   - derived computations become copies from s;
//   - if possible, the loop exit test on i is rewritten to test s (LFTR),
//     after which i's update often dies and is removed by DCE, leaving the
//     usual MarkDead marker;
//   - the instructions maintaining s carry a Recover annotation
//     (i = (s − b)/a) so the debugger can reconstruct the eliminated
//     source-level induction variable from the runtime value of s (§2.5).
//
// Reports whether anything changed.
func StrengthReduce(f *ir.Func) bool {
	g, _ := graphOf(f)
	loops, _ := dataflow.FindLoops(g, 0)
	if len(loops) == 0 {
		return false
	}
	sp := spaceOf(f)
	changed := false
	for _, l := range loops {
		if reduceLoop(f, g, sp, l) {
			changed = true
			g, _ = graphOf(f)
		}
	}
	return changed
}

// ivInfo describes a basic induction variable.
type ivInfo struct {
	v      ir.Operand // the variable (Var or Temp)
	update *ir.Instr  // i = i + step
	step   int64
	blk    *ir.Block
	pos    int
}

func reduceLoop(f *ir.Func, g dataflow.Graph, sp valueSpace, l *dataflow.Loop) bool {
	var loopBlocks []int
	for bi := 0; bi < g.N; bi++ {
		if l.Blocks[bi] {
			loopBlocks = append(loopBlocks, bi)
		}
	}

	defCount := map[int]int{}
	for _, bi := range loopBlocks {
		for _, in := range f.Blocks[bi].Instrs {
			if in.HasDst() {
				if k := sp.indexOf(in.Dst); k >= 0 {
					defCount[k]++
				}
			}
		}
	}
	invariant := func(o ir.Operand) bool {
		k := sp.indexOf(o)
		return k < 0 || defCount[k] == 0
	}

	// Find basic IVs: single update "i = i + c" / "i = i - c", integer.
	var ivs []ivInfo
	for _, bi := range loopBlocks {
		b := f.Blocks[bi]
		for pos, in := range b.Instrs {
			if in.Kind != ir.BinOp || in.Dst.Ty != ir.I || !in.HasDst() {
				continue
			}
			k := sp.indexOf(in.Dst)
			if k < 0 || defCount[k] != 1 {
				continue
			}
			var step int64
			ok := false
			switch in.Op {
			case ir.Add:
				if in.A.Same(in.Dst) && in.B.Kind == ir.ConstI {
					step, ok = in.B.Int, true
				} else if in.B.Same(in.Dst) && in.A.Kind == ir.ConstI {
					step, ok = in.A.Int, true
				}
			case ir.Sub:
				if in.A.Same(in.Dst) && in.B.Kind == ir.ConstI {
					step, ok = -in.B.Int, true
				}
			}
			if ok {
				ivs = append(ivs, ivInfo{v: in.Dst, update: in, step: step, blk: b, pos: pos})
			}
		}
	}
	if len(ivs) == 0 {
		return false
	}

	// Preheader: the unique out-of-loop predecessor of the header.
	header := l.Header
	var preheader *ir.Block
	for _, p := range g.Preds[header] {
		if !l.Blocks[p] {
			if preheader != nil {
				return false // multiple entries; skip this loop
			}
			preheader = f.Blocks[p]
		}
	}
	if preheader == nil || len(preheader.Succs) != 1 {
		return false // need a dedicated preheader (LICM creates them)
	}

	changed := false
	for _, iv := range ivs {
		// Collect derived computations t = a*i (mul or shl by constant).
		type derived struct {
			in  *ir.Instr
			a   int64
			blk *ir.Block
		}
		var ders []derived
		for _, bi := range loopBlocks {
			b := f.Blocks[bi]
			for _, in := range b.Instrs {
				if in.Kind != ir.BinOp || !in.HasDst() || in.Dst.Ty != ir.I || in == iv.update {
					continue
				}
				var a int64
				switch in.Op {
				case ir.Mul:
					if in.A.Same(iv.v) && in.B.Kind == ir.ConstI {
						a = in.B.Int
					} else if in.B.Same(iv.v) && in.A.Kind == ir.ConstI {
						a = in.A.Int
					}
				case ir.Shl:
					if in.A.Same(iv.v) && in.B.Kind == ir.ConstI && in.B.Int >= 0 && in.B.Int < 31 {
						a = 1 << uint(in.B.Int)
					}
				}
				if a != 0 {
					ders = append(ders, derived{in: in, a: a, blk: b})
				}
			}
		}
		if len(ders) == 0 {
			continue
		}

		// Group by multiplier a; one strength-reduced temp per group.
		byA := map[int64][]derived{}
		var asOrder []int64
		for _, d := range ders {
			if _, seen := byA[d.a]; !seen {
				asOrder = append(asOrder, d.a)
			}
			byA[d.a] = append(byA[d.a], d)
		}
		for _, a := range asOrder {
			group := byA[a]
			s := f.NewTemp(ir.I)
			rec := &ir.LinRecovery{A: a, B: 0}
			if iv.v.Kind == ir.Var {
				rec.Var = iv.v.Obj
			}

			// Preheader: s = i * a.
			init := &ir.Instr{
				Kind: ir.BinOp, Op: ir.Mul, Dst: s, A: iv.v, B: ir.CI(a),
				Stmt: -1, OrigIdx: f.NextOrig(),
				Ann: ir.Ann{InsertedBy: "strength"},
			}
			if rec.Var != nil {
				init.Ann.Recover = rec
			}
			preheader.AppendBeforeTerm(init)

			// After the IV update: s = s + a*step.
			bump := &ir.Instr{
				Kind: ir.BinOp, Op: ir.Add, Dst: s, A: s, B: ir.CI(a * iv.step),
				Stmt: iv.update.Stmt, OrigIdx: f.NextOrig(),
				Ann: ir.Ann{InsertedBy: "strength"},
			}
			if rec.Var != nil {
				bump.Ann.Recover = rec
			}
			// Find the update's current position (may have moved).
			for pos, in := range iv.blk.Instrs {
				if in == iv.update {
					iv.blk.InsertBefore(pos+1, bump)
					break
				}
			}

			// Replace derived computations with copies from s.
			for _, d := range group {
				d.in.Kind = ir.Copy
				d.in.Op = 0
				d.in.A = s
				d.in.B = ir.Operand{}
				d.in.Ann.InsertedBy = "strength"
			}
			changed = true

			// LFTR: if the loop's only other uses of i are a single exit
			// test "cond = i REL bound" with invariant bound, rewrite the
			// test in terms of s (a > 0 keeps the direction).
			if a > 0 {
				lftr(f, sp, loopBlocks, iv, s, a, invariant)
			}
		}
	}
	return changed
}

// lftr rewrites a loop test on the induction variable into a test on the
// strength-reduced temp s = a*i, when i's in-loop uses are only the test
// and its own update.
func lftr(f *ir.Func, sp valueSpace, loopBlocks []int, iv ivInfo, s ir.Operand,
	a int64, invariant func(ir.Operand) bool) {

	var test *ir.Instr
	var testBlk *ir.Block
	uses := 0
	var buf []ir.Operand
	for _, bi := range loopBlocks {
		b := f.Blocks[bi]
		for _, in := range b.Instrs {
			if in == iv.update {
				continue
			}
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				if !u.Same(iv.v) {
					continue
				}
				uses++
				if in.Kind == ir.BinOp && in.Op.IsCmp() {
					test = in
					testBlk = b
				}
			}
		}
	}
	if uses != 1 || test == nil {
		return
	}
	// test is "cond = i REL bound" or "cond = bound REL i".
	var bound ir.Operand
	ivLeft := false
	if test.A.Same(iv.v) && invariant(test.B) {
		bound, ivLeft = test.B, true
	} else if test.B.Same(iv.v) && invariant(test.A) {
		bound = test.A
	} else {
		return
	}
	// The scaled bound: constants fold immediately; invariant operands get
	// a multiply before the test, which LICM hoists out on a later round.
	var scaled ir.Operand
	if bound.Kind == ir.ConstI {
		scaled = ir.CI(bound.Int * a)
	} else {
		t := f.NewTemp(ir.I)
		mul := &ir.Instr{
			Kind: ir.BinOp, Op: ir.Mul, Dst: t, A: bound, B: ir.CI(a),
			Stmt: test.Stmt, OrigIdx: f.NextOrig(),
			Ann: ir.Ann{InsertedBy: "lftr"},
		}
		// Insert right before the test.
		for pos, in := range testBlk.Instrs {
			if in == test {
				testBlk.InsertBefore(pos, mul)
				break
			}
		}
		scaled = t
	}
	if ivLeft {
		test.A, test.B = s, scaled
	} else {
		test.A, test.B = scaled, s
	}
	test.Ann.InsertedBy = "lftr"
}
