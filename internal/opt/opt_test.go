package opt

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/sem"
)

// buildIR compiles source to IR without optimization.
func buildIR(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := sem.CheckSource("test.mc", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	return ir.Build(p)
}

// run interprets the program, failing the test on runtime errors.
func run(t *testing.T, prog *ir.Program) (int64, string) {
	t.Helper()
	ret, out, err := ir.NewInterp(prog).Run()
	if err != nil {
		t.Fatalf("interp: %v\n%s", err, prog)
	}
	return ret, out
}

// differential compiles src twice (O0 and the given options) and checks
// that both produce identical results and output.
func differential(t *testing.T, src string, o Options) (*ir.Program, *ir.Program) {
	t.Helper()
	ref := buildIR(t, src)
	refRet, refOut := run(t, ref)

	prog := buildIR(t, src)
	Run(prog, o)
	gotRet, gotOut := run(t, prog)

	if refRet != gotRet {
		t.Errorf("return value changed: O0=%d opt=%d\n--- optimized IR ---\n%s",
			refRet, gotRet, prog)
	}
	if refOut != gotOut {
		t.Errorf("output changed:\nO0:  %q\nopt: %q\n--- optimized IR ---\n%s",
			refOut, gotOut, prog)
	}
	return ref, prog
}

const progSum = `
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 10; i++) {
		s = s + i;
	}
	print(s);
	return s;
}
`

const progBranchy = `
int pick(int a, int b, int c) {
	int x;
	if (a < b) {
		x = b + c;
	} else {
		x = b + c;
	}
	return x;
}
int main() {
	int r = pick(1, 2, 3) + pick(5, 2, 3);
	print(r);
	return r;
}
`

const progArrays = `
int a[16];
int main() {
	int i;
	for (i = 0; i < 16; i++) {
		a[i] = i * i;
	}
	int s = 0;
	for (i = 0; i < 16; i++) {
		s += a[i];
	}
	print("sum=", s, "\n");
	return s;
}
`

const progFloat = `
float scale(float x, float k) { return x * k + 1.0; }
int main() {
	float acc = 0.0;
	int i;
	for (i = 0; i < 8; i++) {
		acc = acc + scale(float(i), 0.5);
	}
	print(acc);
	return int(acc);
}
`

const progPointers = `
void bump(int *p, int by) { *p = *p + by; }
int main() {
	int x = 10;
	bump(&x, 5);
	int buf[4];
	int i;
	for (i = 0; i < 4; i++) { buf[i] = x + i; }
	int *q = &buf[1];
	print(*q, " ", q[1], "\n");
	return x;
}
`

const progDead = `
int main() {
	int x = 1 + 2;
	int y = x * 3;
	int z = y - 4;
	x = 100;    // previous x dead
	y = x + 1;  // previous y dead through this path
	print(z, " ", y, "\n");
	return 0;
}
`

func TestDifferentialO2(t *testing.T) {
	srcs := map[string]string{
		"sum": progSum, "branchy": progBranchy, "arrays": progArrays,
		"float": progFloat, "pointers": progPointers, "dead": progDead,
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) { differential(t, src, O2()) })
	}
}

func TestDifferentialEachPass(t *testing.T) {
	passes := map[string]Options{
		"constfold":  {ConstFold: true},
		"constprop":  {ConstFold: true, ConstProp: true},
		"copyprop":   {CopyProp: true},
		"assignprop": {AssignProp: true},
		"dce":        {DCE: true},
		"pre":        {PRE: true},
		"licm":       {LICM: true},
		"pdce":       {PDCE: true, DCE: true},
		"strength":   {LICM: true, Strength: true, DCE: true},
		"unroll":     {Unroll: true},
		"peel":       {Peel: true},
		"branchopt":  {ConstFold: true, BranchOpt: true},
	}
	srcs := map[string]string{
		"sum": progSum, "branchy": progBranchy, "arrays": progArrays,
		"float": progFloat, "pointers": progPointers, "dead": progDead,
	}
	for pname, o := range passes {
		for sname, src := range srcs {
			t.Run(pname+"/"+sname, func(t *testing.T) { differential(t, src, o) })
		}
	}
}

func countKind(p *ir.Program, k ir.Kind) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Kind == k {
					n++
				}
			}
		}
	}
	return n
}

func countInstrs(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

func TestDCEInsertsMarkers(t *testing.T) {
	src := `
int main() {
	int x = 5;
	x = 6;       // makes the first assignment dead
	print(x);
	return 0;
}
`
	prog := buildIR(t, src)
	Run(prog, Options{DCE: true})
	if n := countKind(prog, ir.MarkDead); n < 1 {
		t.Errorf("expected a MarkDead marker for the dead assignment, got %d\n%s", n, prog)
	}
}

func TestDCEDoesNotMarkTemps(t *testing.T) {
	src := `
int use(int v) { return v; }
int main() {
	int x = use(1) + use(2);
	print(x);
	return 0;
}
`
	prog := buildIR(t, src)
	before := countKind(prog, ir.MarkDead)
	Run(prog, Options{DCE: true})
	if n := countKind(prog, ir.MarkDead); n != before {
		t.Errorf("no source assignment is dead here; markers went %d -> %d\n%s", before, n, prog)
	}
}

func TestPREEliminatesRedundantAssignment(t *testing.T) {
	// Figure-2-like: x = y+z fully redundant on the join path.
	src := `
int main() {
	int y = 3;
	int z = 4;
	int x = y + z;
	int w = y + z;  // redundant expression
	print(x, " ", w, "\n");
	return 0;
}
`
	prog := buildIR(t, src)
	Run(prog, Options{AssignProp: true, PRE: true, DCE: true, CopyProp: true})
	// After assignment propagation + CSE + DCE the second computation of
	// y+z must not survive as an independent BinOp chain: count adds.
	adds := 0
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Kind == ir.BinOp && in.Op == ir.Add {
					adds++
				}
			}
		}
	}
	if adds > 1 {
		t.Errorf("redundant add survived: %d adds\n%s", adds, prog)
	}
	// And the program still runs correctly.
	_, out := run(t, prog)
	if out != "7 7\n" {
		t.Errorf("output = %q, want \"7 7\\n\"", out)
	}
}

func TestPREHoistAnnotation(t *testing.T) {
	// Partial redundancy across a diamond: x = y+z on one arm, then again
	// at the join — insertion on the other arm must be annotated Hoisted
	// and the join occurrence must become a MarkAvail marker.
	src := `
int f(int c, int y, int z) {
	int x = 0;
	if (c) {
		x = y + z;
	} else {
		x = 1;
	}
	x = y + z;
	return x;
}
int main() {
	print(f(1, 2, 3), " ", f(0, 2, 3), "\n");
	return 0;
}
`
	prog := buildIR(t, src)
	Run(prog, Options{PRE: true})
	f := prog.LookupFunc("f")
	hoisted, avail := 0, 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Ann.Hoisted && in.Dst.Kind == ir.Var {
				hoisted++
			}
			if in.Kind == ir.MarkAvail {
				avail++
			}
		}
	}
	if hoisted < 1 {
		t.Errorf("expected a hoisted var assignment, got %d\n%s", hoisted, f)
	}
	if avail < 1 {
		t.Errorf("expected a MarkAvail marker for the redundant assignment, got %d\n%s", avail, f)
	}
	// Semantics preserved.
	_, out := run(t, prog)
	if out != "5 5\n" {
		t.Errorf("output = %q, want \"5 5\\n\"", out)
	}
}

func TestPDCESinksPartiallyDead(t *testing.T) {
	// x = a*b is dead on the else path: PDCE should sink it into the then
	// branch and DCE should leave a MarkDead at the original spot.
	src := `
int f(int c, int a, int b) {
	int x = a * b;
	if (c) {
		return x;
	}
	return a;
}
int main() {
	print(f(1, 3, 4), " ", f(0, 3, 4), "\n");
	return 0;
}
`
	prog := buildIR(t, src)
	Run(prog, Options{PDCE: true, DCE: true})
	f := prog.LookupFunc("f")
	sunk, dead := 0, 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Ann.Sunk {
				sunk++
			}
			if in.Kind == ir.MarkDead {
				dead++
			}
		}
	}
	if sunk < 1 || dead < 1 {
		t.Errorf("expected sunk copy (got %d) and MarkDead (got %d)\n%s", sunk, dead, f)
	}
	_, out := run(t, prog)
	if out != "12 3\n" {
		t.Errorf("output = %q", out)
	}
}

func TestLICMHoistsTemps(t *testing.T) {
	src := `
int a[8];
int main() {
	int i;
	int n = 8;
	for (i = 0; i < n; i++) {
		a[i] = i;
	}
	print(a[3]);
	return 0;
}
`
	prog := buildIR(t, src)
	Run(prog, Options{LICM: true})
	f := prog.LookupFunc("main")
	hoisted := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Ann.Hoisted && in.Ann.InsertedBy == "licm" {
				hoisted++
			}
		}
	}
	if hoisted < 1 {
		t.Errorf("expected LICM to hoist the address computation\n%s", f)
	}
	_, out := run(t, prog)
	if out != "3" {
		t.Errorf("output = %q", out)
	}
}

func TestStrengthReductionRecovery(t *testing.T) {
	src := `
int a[32];
int main() {
	int i;
	for (i = 0; i < 32; i++) {
		a[i] = i;
	}
	int s = 0;
	for (i = 0; i < 32; i++) {
		s += a[i];
	}
	print(s);
	return s;
}
`
	prog := buildIR(t, src)
	Run(prog, O2())
	f := prog.LookupFunc("main")
	recov := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Ann.Recover != nil && in.Ann.Recover.Var != nil {
				recov++
			}
		}
	}
	if recov == 0 {
		t.Logf("note: no linear recovery annotations were generated\n%s", f)
	}
	_, out := run(t, prog)
	if out != "496" {
		t.Errorf("output = %q, want 496", out)
	}
}

func TestUnrollDuplicatesMarkers(t *testing.T) {
	// A dead assignment inside a loop leaves a marker; unrolling after DCE
	// must duplicate the marker along with the block (§3 code duplication).
	src := `
int main() {
	int i;
	int x = 0;
	for (i = 0; i < 4; i++) {
		x = i;      // dead: overwritten below before any use
		x = i + 1;
	}
	print(x);
	return 0;
}
`
	prog := buildIR(t, src)
	for _, f := range prog.Funcs {
		DCE(f)
	}
	before := countKind(prog, ir.MarkDead)
	if before == 0 {
		t.Fatalf("setup: expected a dead marker before unrolling\n%s", prog)
	}
	for _, f := range prog.Funcs {
		Unroll(f)
	}
	after := countKind(prog, ir.MarkDead)
	if after <= before {
		t.Errorf("unrolling should duplicate markers: before=%d after=%d", before, after)
	}
	_, out := run(t, prog)
	if out != "4" {
		t.Errorf("output = %q", out)
	}
}

func TestBranchOptFoldsConstantBranches(t *testing.T) {
	src := `
int main() {
	int x;
	if (1 < 2) { x = 10; } else { x = 20; }
	print(x);
	return x;
}
`
	prog := buildIR(t, src)
	Run(prog, Options{ConstFold: true, ConstProp: true, BranchOpt: true})
	f := prog.LookupFunc("main")
	for _, b := range f.Blocks {
		if tm := b.Term(); tm != nil && tm.Kind == ir.Br {
			t.Errorf("constant branch not folded\n%s", f)
		}
	}
	_, out := run(t, prog)
	if out != "10" {
		t.Errorf("output = %q", out)
	}
}

func TestO2ShrinksHotLoops(t *testing.T) {
	prog := buildIR(t, progArrays)
	n0 := countInstrs(prog)
	Run(prog, O2())
	_, out := run(t, prog)
	if !strings.Contains(out, "sum=1240") {
		t.Errorf("optimized program output %q", out)
	}
	// Size may grow from unrolling; just ensure the pipeline terminated
	// and produced a sane program.
	if countInstrs(prog) == 0 || n0 == 0 {
		t.Fatal("empty program")
	}
}

func TestNoMarkersAblation(t *testing.T) {
	prog := buildIR(t, progDead)
	o := O2()
	o.NoMarkers = true
	Run(prog, o)
	if n := countKind(prog, ir.MarkDead) + countKind(prog, ir.MarkAvail); n != 0 {
		t.Errorf("NoMarkers left %d markers", n)
	}
}
