package opt

import (
	"testing"

	"repro/internal/ir"
)

func TestLoopInvertRotates(t *testing.T) {
	src := `
int main() {
	int s = 0;
	int i = 0;
	while (i < 10) {
		s = s + i;
		i = i + 1;
	}
	print(s);
	return s;
}
`
	prog := buildIR(t, src)
	f := prog.LookupFunc("main")
	if !LoopInvert(f) {
		t.Fatalf("loop not inverted\n%s", f)
	}
	// After inversion the latch ends in a conditional branch (the
	// duplicated test), not a jump back to the header.
	condLatches := 0
	g, _ := graphOf(f)
	_ = g
	for _, b := range f.Blocks {
		if tm := b.Term(); tm != nil && tm.Kind == ir.Br {
			condLatches++
		}
	}
	if condLatches < 2 { // entry guard + rotated latch
		t.Errorf("expected the test duplicated into the latch\n%s", f)
	}
	// Semantics preserved.
	_, out := run(t, prog)
	if out != "45" {
		t.Errorf("output = %q", out)
	}
}

func TestLoopInvertDuplicatesMarkers(t *testing.T) {
	// A marker in the header block must be duplicated with the test
	// (§3 code duplication rule).
	src := `
int main() {
	int dead = 1;
	int i = 0;
	int s = 0;
	while (i < 5) {
		dead = i;    // dead: never used
		s = s + 2;
		i = i + 1;
	}
	print(s);
	return 0;
}
`
	prog := buildIR(t, src)
	f := prog.LookupFunc("main")
	DCE(f)
	before := countKind(prog, ir.MarkDead)
	LoopInvert(f)
	after := countKind(prog, ir.MarkDead)
	if after < before {
		t.Errorf("inversion lost markers: %d -> %d", before, after)
	}
	_, out := run(t, prog)
	if out != "10" {
		t.Errorf("output = %q", out)
	}
}

func TestLoopInvertDifferential(t *testing.T) {
	srcs := []string{progSum, progArrays, progFloat, progBranchy}
	for _, src := range srcs {
		differential(t, src, Options{LoopInvert: true})
		differential(t, src, Options{LoopInvert: true, Unroll: true, DCE: true, BranchOpt: true, ConstFold: true, ConstProp: true})
	}
}

func TestLoopInvertReducesBranches(t *testing.T) {
	src := `
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 100; i++) { s += i; }
	print(s);
	return 0;
}
`
	base := buildIR(t, src)
	inv := buildIR(t, src)
	LoopInvert(inv.LookupFunc("main"))

	countJumps := func(p *ir.Program) int {
		n := 0
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				if tm := b.Term(); tm != nil && tm.Kind == ir.Jmp {
					n++
				}
			}
		}
		return n
	}
	// The rotated loop replaces the latch jump with a branch; total
	// static jumps should not increase.
	if countJumps(inv) > countJumps(base) {
		t.Errorf("inversion added jumps: %d -> %d", countJumps(base), countJumps(inv))
	}
	_, out := run(t, inv)
	if out != "4950" {
		t.Errorf("output = %q", out)
	}
}
