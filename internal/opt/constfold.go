package opt

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// ConstFold performs constant folding and algebraic simplification on every
// instruction, plus local strength reduction of multiplications and
// divisions by powers of two into shifts. It reports whether anything
// changed.
func ConstFold(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if foldInstr(in) {
				changed = true
			}
		}
	}
	return changed
}

func isPow2(v int64) (uint, bool) {
	if v <= 0 || v&(v-1) != 0 {
		return 0, false
	}
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n, true
}

// foldInstr simplifies one instruction in place.
func foldInstr(in *ir.Instr) bool {
	switch in.Kind {
	case ir.BinOp:
		a, b := in.A, in.B
		if a.Kind == ir.ConstI && b.Kind == ir.ConstI {
			if v, ok := evalII(in.Op, a.Int, b.Int); ok {
				toCopy(in, ir.CI(v))
				return true
			}
		}
		if a.Kind == ir.ConstF && b.Kind == ir.ConstF {
			if v, isInt, ok := evalFF(in.Op, a.Fl, b.Fl); ok {
				if isInt {
					toCopy(in, ir.CI(v))
				} else {
					toCopy(in, ir.CF(a.Fl)) // placeholder, overwritten below
					in.A = foldedF(in.Op, a.Fl, b.Fl)
				}
				return true
			}
		}
		// Algebraic identities.
		switch in.Op {
		case ir.Add:
			if isZero(a) {
				toCopy(in, b)
				return true
			}
			if isZero(b) {
				toCopy(in, a)
				return true
			}
		case ir.Sub:
			if isZero(b) {
				toCopy(in, a)
				return true
			}
			if a.Same(b) && a.Kind != ir.ConstF {
				toCopy(in, zeroLike(in))
				return true
			}
		case ir.Mul:
			if isOne(a) {
				toCopy(in, b)
				return true
			}
			if isOne(b) {
				toCopy(in, a)
				return true
			}
			if (isZero(a) || isZero(b)) && in.Dst.Ty == ir.I {
				toCopy(in, ir.CI(0))
				return true
			}
			// Strength reduction: x * 2^k -> x << k (integers only).
			if in.Dst.Ty == ir.I {
				if b.Kind == ir.ConstI {
					if k, ok := isPow2(b.Int); ok {
						in.Op, in.B = ir.Shl, ir.CI(int64(k))
						return true
					}
				} else if a.Kind == ir.ConstI {
					if k, ok := isPow2(a.Int); ok {
						in.Op, in.A, in.B = ir.Shl, b, ir.CI(int64(k))
						return true
					}
				}
			}
		case ir.Div:
			if isOne(b) {
				toCopy(in, a)
				return true
			}
		case ir.Shl, ir.Shr:
			if isZero(b) {
				toCopy(in, a)
				return true
			}
		case ir.BOr, ir.BXor:
			if isZero(a) {
				toCopy(in, b)
				return true
			}
			if isZero(b) {
				toCopy(in, a)
				return true
			}
		}

	case ir.UnOp:
		switch in.Op {
		case ir.Neg:
			if in.A.Kind == ir.ConstI {
				toCopy(in, ir.CI(-in.A.Int))
				return true
			}
			if in.A.Kind == ir.ConstF {
				toCopy(in, ir.CF(-in.A.Fl))
				return true
			}
		case ir.Not:
			if in.A.Kind == ir.ConstI {
				v := int64(0)
				if in.A.Int == 0 {
					v = 1
				}
				toCopy(in, ir.CI(v))
				return true
			}
		case ir.CvIF:
			if in.A.Kind == ir.ConstI {
				toCopy(in, ir.CF(float64(in.A.Int)))
				return true
			}
		case ir.CvFI:
			if in.A.Kind == ir.ConstF {
				toCopy(in, ir.CI(int64(in.A.Fl)))
				return true
			}
		}
	}
	return false
}

// toCopy rewrites in into "Dst = v", preserving annotations and statement.
func toCopy(in *ir.Instr, v ir.Operand) {
	in.Kind = ir.Copy
	in.A = v
	in.B = ir.Operand{}
	in.Off = 0
}

func isZero(o ir.Operand) bool {
	return (o.Kind == ir.ConstI && o.Int == 0) || (o.Kind == ir.ConstF && o.Fl == 0)
}

func isOne(o ir.Operand) bool {
	return (o.Kind == ir.ConstI && o.Int == 1) || (o.Kind == ir.ConstF && o.Fl == 1)
}

func zeroLike(in *ir.Instr) ir.Operand {
	if in.Dst.Ty == ir.F {
		return ir.CF(0)
	}
	return ir.CI(0)
}

func evalII(op ir.Op, a, b int64) (int64, bool) {
	// MiniC integers are 32-bit words; wrap like the target machine.
	w := func(v int64) int64 { return int64(int32(v)) }
	switch op {
	case ir.Add:
		return w(a + b), true
	case ir.Sub:
		return w(a - b), true
	case ir.Mul:
		return w(a * b), true
	case ir.Div:
		if b == 0 {
			return 0, false
		}
		return w(a / b), true
	case ir.Rem:
		if b == 0 {
			return 0, false
		}
		return w(a % b), true
	case ir.Shl:
		return w(a << (uint(b) & 31)), true
	case ir.Shr:
		return w(a >> (uint(b) & 31)), true
	case ir.BOr:
		return w(a | b), true
	case ir.BXor:
		return w(a ^ b), true
	case ir.Eq:
		return b2i(a == b), true
	case ir.Ne:
		return b2i(a != b), true
	case ir.Lt:
		return b2i(a < b), true
	case ir.Le:
		return b2i(a <= b), true
	case ir.Gt:
		return b2i(a > b), true
	case ir.Ge:
		return b2i(a >= b), true
	}
	return 0, false
}

// evalFF evaluates a float-float operation. Comparisons return an int
// result (isInt=true); arithmetic returns isInt=false and the caller uses
// foldedF.
func evalFF(op ir.Op, a, b float64) (int64, bool, bool) {
	switch op {
	case ir.Eq:
		return b2i(a == b), true, true
	case ir.Ne:
		return b2i(a != b), true, true
	case ir.Lt:
		return b2i(a < b), true, true
	case ir.Le:
		return b2i(a <= b), true, true
	case ir.Gt:
		return b2i(a > b), true, true
	case ir.Ge:
		return b2i(a >= b), true, true
	case ir.Add, ir.Sub, ir.Mul:
		return 0, false, true
	case ir.Div:
		if b == 0 {
			return 0, false, false
		}
		return 0, false, true
	}
	return 0, false, false
}

func foldedF(op ir.Op, a, b float64) ir.Operand {
	switch op {
	case ir.Add:
		return ir.CF(a + b)
	case ir.Sub:
		return ir.CF(a - b)
	case ir.Mul:
		return ir.CF(a * b)
	case ir.Div:
		return ir.CF(a / b)
	}
	return ir.CF(0)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------- constprop

// ConstProp performs global constant propagation: a use of value X is
// replaced by constant c when the copy "X = c" is available on all paths
// (X not redefined since). It reports whether anything changed.
//
// Constant and copy propagation do not directly endanger variables (§2 of
// the paper): they only replace *uses*; the defining assignments they
// orphan are handled by dead-code elimination, which performs the marker
// bookkeeping.
func ConstProp(f *ir.Func) bool {
	return propagateAvailableCopies(f, true)
}

// CopyProp performs global copy propagation of "X = Y" (Y a temp or
// variable): uses of X become uses of Y where the copy is available. When
// the replaced use is of a *source variable*, the using occurrence is
// re-materialized through a fresh temp annotated ReplacedVar so the
// debugger can later recover X from Y's location (§2.5).
func CopyProp(f *ir.Func) bool {
	return propagateAvailableCopies(f, false)
}

// propagateAvailableCopies implements both propagation passes over the
// available-copies lattice. For constants==true it propagates X=const;
// otherwise X=Y copies.
func propagateAvailableCopies(f *ir.Func, constants bool) bool {
	g, _ := graphOf(f)
	sp := spaceOf(f)

	// Collect candidate copy instructions.
	type cand struct {
		dst int // value index of X
		src ir.Operand
	}
	table := newExprTable()
	var cands []cand
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind != ir.Copy || !in.HasDst() {
				continue
			}
			di := sp.indexOf(in.Dst)
			if di < 0 {
				continue
			}
			if constants {
				if !in.A.IsConst() {
					continue
				}
			} else {
				if in.A.Kind != ir.Temp && in.A.Kind != ir.Var {
					continue
				}
			}
			key := in.Dst.Key() + "=" + in.A.Key()
			if _, ok := table.lookup(key); !ok {
				table.intern(key, in)
				cands = append(cands, cand{dst: di, src: in.A})
			}
		}
	}
	if len(cands) == 0 {
		return false
	}

	// Availability: gen at the copy, kill at any def of X or (for copies)
	// of Y, and at calls for values calls may change (none here: vars and
	// temps are private to the function, so calls kill nothing).
	nb := table.size()
	gen := make([]*dataflow.BitSet, g.N)
	kill := make([]*dataflow.BitSet, g.N)
	killedBy := map[int][]int{}
	for ci, c := range cands {
		killedBy[c.dst] = append(killedBy[c.dst], ci)
		if si := sp.indexOf(c.src); si >= 0 {
			killedBy[si] = append(killedBy[si], ci)
		}
	}
	for bi, b := range f.Blocks {
		gen[bi] = dataflow.NewBitSet(nb)
		kill[bi] = dataflow.NewBitSet(nb)
		for _, in := range b.Instrs {
			if in.HasDst() {
				if di := sp.indexOf(in.Dst); di >= 0 {
					for _, ci := range killedBy[di] {
						gen[bi].Clear(ci)
						kill[bi].Set(ci)
					}
				}
			}
			if ci, ok := copyCandIndex(table, sp, in, constants); ok {
				gen[bi].Set(ci)
				kill[bi].Clear(ci)
			}
		}
	}
	p := dataflow.Problem{
		Graph: g, Dir: dataflow.Forward, Meet: dataflow.Intersect, Bits: nb,
		Gen: gen, Kill: kill,
	}
	res := p.Solve()

	// Walk each block with the incoming available set, replacing uses.
	changed := false
	var buf []ir.Operand
	for bi, b := range f.Blocks {
		avail := res.In[bi].Copy()
		for _, in := range b.Instrs {
			// Replace uses whose source value has an available copy.
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				ui := sp.indexOf(u)
				if ui < 0 {
					continue
				}
				for ci, c := range cands {
					if c.dst != ui || !avail.Has(ci) {
						continue
					}
					if in.ReplaceUses(u, c.src) > 0 {
						changed = true
					}
					break
				}
			}
			// Transfer function.
			if in.HasDst() {
				if di := sp.indexOf(in.Dst); di >= 0 {
					for _, ci := range killedBy[di] {
						avail.Clear(ci)
					}
				}
			}
			if ci, ok := copyCandIndex(table, sp, in, constants); ok {
				avail.Set(ci)
			}
		}
	}
	return changed
}

func copyCandIndex(t *exprTable, sp valueSpace, in *ir.Instr, constants bool) (int, bool) {
	if in.Kind != ir.Copy || !in.HasDst() {
		return 0, false
	}
	if sp.indexOf(in.Dst) < 0 {
		return 0, false
	}
	if constants && !in.A.IsConst() {
		return 0, false
	}
	if !constants && in.A.Kind != ir.Temp && in.A.Kind != ir.Var {
		return 0, false
	}
	return t.lookup(in.Dst.Key() + "=" + in.A.Key())
}
