package opt

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

// evalViaInterp runs "print(a OP b)" through the unoptimized interpreter.
func evalViaInterp(t *testing.T, op string, a, b int32) (string, bool) {
	t.Helper()
	src := "int main() { int x = " + itoa(int64(a)) + "; int y = " + itoa(int64(b)) +
		"; print(x " + op + " y); return 0; }"
	prog := buildIR(t, src)
	_, out, err := ir.NewInterp(prog).Run()
	if err != nil {
		return "", false // division by zero etc.
	}
	return out, true
}

// evalViaFold runs the same expression as literals, forcing ConstFold to
// evaluate it at compile time, then interprets the folded program.
func evalViaFold(t *testing.T, op string, a, b int32) (string, bool) {
	t.Helper()
	src := "int main() { print(" + itoa(int64(a)) + " " + op + " " + itoa(int64(b)) +
		"); return 0; }"
	prog := buildIR(t, src)
	Run(prog, Options{ConstFold: true, ConstProp: true, CopyProp: true})
	_, out, err := ir.NewInterp(prog).Run()
	if err != nil {
		return "", false
	}
	return out, true
}

func itoa(v int64) string {
	// Negative literals are written as (0 - n) to avoid unary parsing
	// differences in the generated source.
	if v < 0 {
		return "(0 - " + itoa(-v) + ")"
	}
	s := ""
	if v == 0 {
		return "0"
	}
	for v > 0 {
		s = string(rune('0'+v%10)) + s
		v /= 10
	}
	return s
}

// TestQuickFoldMatchesInterp: compile-time folding must agree with runtime
// evaluation for every operator on random 32-bit inputs.
func TestQuickFoldMatchesInterp(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "%", "<<", ">>", "|", "^",
		"==", "!=", "<", "<=", ">", ">="}
	for _, op := range ops {
		op := op
		f := func(a, b int16) bool {
			// int16 inputs keep products inside int32 range, matching the
			// target's wrapping semantics without overflow ambiguity.
			want, ok1 := evalViaInterp(t, op, int32(a), int32(b))
			got, ok2 := evalViaFold(t, op, int32(a), int32(b))
			if ok1 != ok2 {
				return false
			}
			if !ok1 {
				return true // both reject (e.g. division by zero)
			}
			return want == got
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("op %q: %v", op, err)
		}
	}
}

// TestQuickShiftWrap32 pins the 32-bit wrapping behavior of shifts.
func TestQuickShiftWrap32(t *testing.T) {
	f := func(a int16, s uint8) bool {
		sh := int32(s % 31)
		want, ok1 := evalViaInterp(t, "<<", int32(a), sh)
		got, ok2 := evalViaFold(t, "<<", int32(a), sh)
		return ok1 && ok2 && want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFoldAlgebraicIdentities exercises the identity simplifications.
func TestFoldAlgebraicIdentities(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"int x = 7; print(x + 0);", "7"},
		{"int x = 7; print(0 + x);", "7"},
		{"int x = 7; print(x - 0);", "7"},
		{"int x = 7; print(x - x);", "0"},
		{"int x = 7; print(x * 1);", "7"},
		{"int x = 7; print(1 * x);", "7"},
		{"int x = 7; print(x * 0);", "0"},
		{"int x = 7; print(x / 1);", "7"},
		{"int x = 7; print(x * 8);", "56"}, // strength-reduced to shift
		{"int x = 7; print(x | 0);", "7"},
		{"int x = 7; print(x ^ 0);", "7"},
	}
	for _, c := range cases {
		src := "int main() { " + c.src + " return 0; }"
		prog := buildIR(t, src)
		Run(prog, Options{ConstFold: true})
		_, out, err := ir.NewInterp(prog).Run()
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if out != c.want {
			t.Errorf("%s: got %q want %q", c.src, out, c.want)
		}
	}
}
