package opt

import (
	"repro/internal/ir"
)

// DCE performs dead-assignment elimination: an instruction defining a Var
// or Temp whose value is dead immediately after it, with no side effects,
// is removed. Per §3 of the paper, an eliminated assignment to a *source
// variable* is replaced by a MarkDead marker (unless the instruction was
// itself inserted by hoisting or sinking), which the debugger's dead-reach
// analysis consumes. The pass iterates to a fixed point and reports whether
// anything changed.
func DCE(f *ir.Func) bool {
	changedAny := false
	for {
		changed := false
		lv := computeLiveness(f)
		for bi, b := range f.Blocks {
			after := lv.liveAfter(f, bi)
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if !removableKind(in) || !in.HasDst() {
					continue
				}
				k := lv.space.indexOf(in.Dst)
				if k < 0 || after[i].Has(k) {
					continue
				}
				// Dead assignment.
				if in.Dst.Kind == ir.Var && !in.Ann.Hoisted && !in.Ann.Sunk && in.Stmt >= 0 {
					m := &ir.Instr{
						Kind:    ir.MarkDead,
						MarkObj: in.Dst.Obj,
						Stmt:    in.Stmt,
						OrigIdx: in.OrigIdx,
					}
					// Record the eliminated right-hand side when it is a
					// simple operand: the debugger can then *recover* the
					// expected value (constant residence, or alias while
					// the source operand is unchanged).
					if in.Kind == ir.Copy {
						m.A = in.A
					}
					b.Instrs[i] = m
				} else {
					b.RemoveAt(i)
				}
				changed = true
				changedAny = true
			}
		}
		if !changed {
			return changedAny
		}
	}
}

// removableKind reports whether in has no side effects besides its Dst.
func removableKind(in *ir.Instr) bool {
	switch in.Kind {
	case ir.BinOp, ir.UnOp, ir.Copy, ir.Load, ir.Addr, ir.GetParam:
		return true
	}
	return false
}

// FaintDCE eliminates *faint* values: self-sustaining def cycles (most
// importantly "i = i + 1" updates of induction variables whose other uses
// were removed by linear function test replacement) that ordinary
// liveness-based DCE cannot remove because the value keeps itself alive
// around the loop. An instruction is needed if it has side effects or if
// its destination feeds a needed instruction; everything else is removed,
// with the usual MarkDead bookkeeping for source-variable assignments.
func FaintDCE(f *ir.Func) bool {
	sp := spaceOf(f)

	// strong[k]: value k is read by some needed instruction.
	strong := make([]bool, sp.size())
	needed := map[*ir.Instr]bool{}
	var buf []ir.Operand

	sideEffecting := func(in *ir.Instr) bool {
		switch in.Kind {
		case ir.Store, ir.Call, ir.Print, ir.Ret, ir.Jmp, ir.Br, ir.MarkDead, ir.MarkAvail:
			return true
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if needed[in] {
					continue
				}
				need := sideEffecting(in)
				if !need && in.HasDst() {
					if k := sp.indexOf(in.Dst); k >= 0 && strong[k] {
						need = true
					} else if k < 0 {
						need = true // unusual destination; keep
					}
				}
				if need {
					needed[in] = true
					changed = true
					buf = in.Uses(buf[:0])
					for _, u := range buf {
						if k := sp.indexOf(u); k >= 0 && !strong[k] {
							strong[k] = true
						}
					}
				}
			}
		}
	}

	removed := false
	for _, b := range f.Blocks {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if needed[in] || !removableKind(in) || !in.HasDst() {
				continue
			}
			if in.Dst.Kind == ir.Var && !in.Ann.Hoisted && !in.Ann.Sunk && in.Stmt >= 0 {
				m := &ir.Instr{
					Kind:    ir.MarkDead,
					MarkObj: in.Dst.Obj,
					Stmt:    in.Stmt,
					OrigIdx: in.OrigIdx,
				}
				if in.Kind == ir.Copy {
					m.A = in.A
				}
				b.Instrs[i] = m
			} else {
				b.RemoveAt(i)
			}
			removed = true
		}
	}
	return removed
}
