package opt

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// DCE performs dead-assignment elimination: an instruction defining a Var
// or Temp whose value is dead immediately after it, with no side effects,
// is removed. Per §3 of the paper, an eliminated assignment to a *source
// variable* is replaced by a MarkDead marker (unless the instruction was
// itself inserted by hoisting or sinking), which the debugger's dead-reach
// analysis consumes. The pass iterates to a fixed point and reports whether
// anything changed.
func DCE(f *ir.Func) bool {
	changedAny := false
	for {
		changed := false
		lv := computeLiveness(f)
		for bi, b := range f.Blocks {
			after := lv.liveAfter(f, bi)
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				in := b.Instrs[i]
				if !removableKind(in) || !in.HasDst() {
					continue
				}
				k := lv.space.indexOf(in.Dst)
				if k < 0 || after[i].Has(k) {
					continue
				}
				// Dead assignment. Synthetic entry code (Stmt < 0) is
				// markerized too: a parameter field's initialization is a
				// source-level binding, and deleting it without a marker
				// would make the debugger call the field uninitialized.
				if in.Dst.Kind == ir.Var && !in.Ann.Hoisted && !in.Ann.Sunk {
					m := &ir.Instr{
						Kind:    ir.MarkDead,
						MarkObj: in.Dst.Obj,
						Stmt:    in.Stmt,
						OrigIdx: in.OrigIdx,
					}
					// Record the eliminated right-hand side when it is a
					// simple operand: the debugger can then *recover* the
					// expected value (constant residence, or alias while
					// the source operand is unchanged).
					if in.Kind == ir.Copy {
						m.A = in.A
					}
					b.Instrs[i] = m
				} else {
					b.RemoveAt(i)
				}
				changed = true
				changedAny = true
			}
		}
		if !changed {
			return changedAny
		}
	}
}

// removableKind reports whether in has no side effects besides its Dst.
func removableKind(in *ir.Instr) bool {
	switch in.Kind {
	case ir.BinOp, ir.UnOp, ir.Copy, ir.Load, ir.Addr, ir.GetParam:
		return true
	}
	return false
}

// FaintDCE eliminates *faint* values: self-sustaining def cycles (most
// importantly "i = i + 1" updates of induction variables whose other uses
// were removed by linear function test replacement) that ordinary
// liveness-based DCE cannot remove because the value keeps itself alive
// around the loop. An instruction is needed if it has side effects or if
// its destination feeds a needed instruction; everything else is removed,
// with the usual MarkDead bookkeeping for source-variable assignments.
func FaintDCE(f *ir.Func) bool {
	sp := spaceOf(f)

	// strong[k]: value k is read by some needed instruction.
	strong := make([]bool, sp.size())
	needed := map[*ir.Instr]bool{}
	var buf []ir.Operand

	sideEffecting := func(in *ir.Instr) bool {
		switch in.Kind {
		case ir.Store, ir.Call, ir.Print, ir.Ret, ir.Jmp, ir.Br, ir.MarkDead, ir.MarkAvail:
			return true
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if needed[in] {
					continue
				}
				need := sideEffecting(in)
				if !need && in.HasDst() {
					if k := sp.indexOf(in.Dst); k >= 0 && strong[k] {
						need = true
					} else if k < 0 {
						need = true // unusual destination; keep
					}
				}
				if need {
					needed[in] = true
					changed = true
					buf = in.Uses(buf[:0])
					for _, u := range buf {
						if k := sp.indexOf(u); k >= 0 && !strong[k] {
							strong[k] = true
						}
					}
				}
			}
		}
	}

	removed := false
	for _, b := range f.Blocks {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if needed[in] || !removableKind(in) || !in.HasDst() {
				continue
			}
			if in.Dst.Kind == ir.Var && !in.Ann.Hoisted && !in.Ann.Sunk {
				m := &ir.Instr{
					Kind:    ir.MarkDead,
					MarkObj: in.Dst.Obj,
					Stmt:    in.Stmt,
					OrigIdx: in.OrigIdx,
				}
				if in.Kind == ir.Copy {
					m.A = in.A
				}
				b.Instrs[i] = m
			} else {
				b.RemoveAt(i)
			}
			removed = true
		}
	}
	return removed
}

// ValidateMarkers drops the alias operand from MarkDead markers whose
// source value is not definitely computed by the time the marker is
// reached. A marker records "V's eliminated assignment copied from A, so
// A's location still holds the expected value" — an assumption later
// passes can break in two ways:
//
//   - a later DCE/FaintDCE round deletes the computation of A itself
//     (its value was only needed by the assignment that is now the
//     marker), leaving the alias pointing at a register that is never
//     written;
//   - sinking (PDCE) moves A's computation below the marker, so the
//     register is unwritten exactly in the window between the marker
//     and the sunk code (the debugger's clobber analysis already
//     invalidates the alias *after* the re-definition).
//
// Recovering through such an alias would fabricate a value, so the
// recovery is degraded to none instead: the alias must be *definitely
// written* (on every path) at the marker. Runs once after the pipeline.
func ValidateMarkers(f *ir.Func) {
	any := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == ir.MarkDead && in.A.Valid() {
				any = true
			}
		}
	}
	if !any {
		return
	}

	sp := spaceOf(f)
	g, idx := graphOf(f)
	n := len(f.Blocks)
	gen := make([]*dataflow.BitSet, n)
	for i, b := range f.Blocks {
		gen[i] = dataflow.NewBitSet(sp.size())
		for _, in := range b.Instrs {
			if in.HasDst() {
				if k := sp.indexOf(in.Dst); k >= 0 {
					gen[i].Set(k)
				}
			}
		}
	}

	// Forward must-written: in[b] = ∩ out[preds]; out[b] = in[b] ∪ gen[b].
	// Writes are never killed — only whether a write has happened matters,
	// not which one (a re-definition is handled by the debugger's clobber
	// analysis).
	entry := idx[f.Entry]
	ins := make([]*dataflow.BitSet, n)
	outs := make([]*dataflow.BitSet, n)
	for i := 0; i < n; i++ {
		ins[i] = dataflow.NewBitSet(sp.size())
		if i != entry {
			ins[i].SetAll()
		}
		outs[i] = ins[i].Copy()
		outs[i].Union(gen[i])
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if i != entry {
				first := true
				for _, p := range g.Preds[i] {
					if first {
						ins[i].CopyFrom(outs[p])
						first = false
					} else {
						ins[i].Intersect(outs[p])
					}
				}
			}
			old := outs[i]
			nw := ins[i].Copy()
			nw.Union(gen[i])
			if !nw.Equal(old) {
				outs[i] = nw
				changed = true
			}
		}
	}

	for i, b := range f.Blocks {
		written := ins[i].Copy()
		for _, in := range b.Instrs {
			if in.Kind == ir.MarkDead && in.A.Valid() {
				if k := sp.indexOf(in.A); k >= 0 && !written.Has(k) {
					in.A = ir.Operand{}
				}
			}
			if in.HasDst() {
				if k := sp.indexOf(in.Dst); k >= 0 {
					written.Set(k)
				}
			}
		}
	}
}
