package opt

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// PRE performs partial redundancy elimination in two layers:
//
//  1. Assignment-level PRE on source-variable assignments "V = E": a fully
//     redundant assignment is deleted and replaced by a MarkAvail marker
//     (its value is already in V on every path); a partially redundant one
//     is made fully redundant by inserting copies of the assignment on the
//     predecessor edges where it is missing — the inserted copies are
//     annotated Hoisted and are exactly the paper's "hoisted expressions"
//     (Figure 2's E3), while the deleted occurrence is the "redundant copy"
//     whose marker kills hoist reach.
//
//  2. Expression-level CSE/PRE on temp computations "t = E": occurrences
//     are routed through a canonical temp per expression; redundant
//     computations collapse to copies; partially redundant ones get edge
//     insertions (hoisted temp computations — address arithmetic, mostly,
//     matching the paper's observation that cmcc hoisted mainly address
//     computations).
//
// Reports whether anything changed.
func PRE(f *ir.Func) bool {
	changed := false
	// Layer 1 must reach its fixed point first: the expression CSE below
	// rewrites "V = E" into copy form, destroying the assignment pattern
	// that layer 1's markers and hoisted insertions are generated from.
	for i := 0; i < 8; i++ {
		if !preVarAssignments(f) {
			break
		}
		changed = true
	}
	for i := 0; i < 8; i++ {
		if !cseTemps(f) {
			break
		}
		changed = true
	}
	return changed
}

// keyable reports whether in is an assignment whose value can be keyed for
// redundancy analysis (pure computation over Const/Var/Temp operands).
func keyable(in *ir.Instr) bool {
	switch in.Kind {
	case ir.BinOp, ir.UnOp, ir.Copy, ir.Addr:
		return in.HasDst()
	}
	return false
}

// selfRef reports whether in reads its own destination (e.g. x = x + 1);
// such assignments never generate availability of their key.
func selfRef(in *ir.Instr) bool {
	var buf []ir.Operand
	buf = in.Uses(buf)
	for _, u := range buf {
		if u.Same(in.Dst) {
			return true
		}
	}
	return false
}

// assignKey returns the availability key for a source-var assignment.
func assignKey(in *ir.Instr) string { return in.Dst.Key() + " := " + in.ExprKey() }

// preVarAssignments implements layer 1.
func preVarAssignments(f *ir.Func) bool {
	sp := spaceOf(f)

	// Collect assignment keys.
	table := newExprTable()
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if keyable(in) && in.Dst.Kind == ir.Var && !selfRef(in) && in.Kind != ir.Copy {
				table.intern(assignKey(in), in)
			}
		}
	}
	if table.size() == 0 {
		return false
	}
	km := buildKillMap(table, sp, true) // defs of V and of E's operands kill

	g, _ := graphOf(f)
	gen, kill := genKillFor(f, g.N, table.size(), sp, km, func(in *ir.Instr) (int, bool) {
		if keyable(in) && in.Dst.Kind == ir.Var && !selfRef(in) && in.Kind != ir.Copy {
			return table.lookup(assignKey(in))
		}
		return 0, false
	})

	must := (&dataflow.Problem{Graph: g, Dir: dataflow.Forward, Meet: dataflow.Intersect,
		Bits: table.size(), Gen: gen, Kill: kill}).Solve()
	may := (&dataflow.Problem{Graph: g, Dir: dataflow.Forward, Meet: dataflow.Union,
		Bits: table.size(), Gen: gen, Kill: kill}).Solve()

	changed := false
	type insertion struct {
		from, to *ir.Block
		instr    *ir.Instr
	}
	var inserts []insertion

	for bi, b := range f.Blocks {
		avail := must.In[bi].Copy()
		pav := may.In[bi].Copy()
		for pos := 0; pos < len(b.Instrs); pos++ {
			in := b.Instrs[pos]
			isCand := keyable(in) && in.Dst.Kind == ir.Var && !selfRef(in) && in.Kind != ir.Copy
			var key int
			if isCand {
				key, _ = table.lookup(assignKey(in))
			}
			if isCand && !in.Ann.Hoisted && !in.Ann.Sunk {
				if avail.Has(key) {
					// Fully redundant source assignment: delete, leaving an
					// availability marker (§3, "code deletion").
					b.Instrs[pos] = &ir.Instr{
						Kind:    ir.MarkAvail,
						MarkObj: in.Dst.Obj,
						Stmt:    in.Stmt,
						OrigIdx: in.OrigIdx,
					}
					changed = true
					continue // marker has no transfer effect
				}
				if pav.Has(key) && upwardExposed(b, pos, sp, km, key) && len(b.Preds) > 1 {
					// Partially redundant: insert hoisted copies on the
					// incoming edges that lack availability.
					for _, p := range b.Preds {
						pi := blockIndex(f, p)
						if must.Out[pi].Has(key) {
							continue
						}
						h := in.Clone()
						h.Ann.Hoisted = true
						h.Ann.InsertedBy = "pre"
						h.OrigIdx = f.NextOrig()
						inserts = append(inserts, insertion{from: p, to: b, instr: h})
					}
				}
			}
			// Transfer.
			stepAvail(avail, sp, km, in, table, func(x *ir.Instr) (int, bool) {
				if keyable(x) && x.Dst.Kind == ir.Var && !selfRef(x) && x.Kind != ir.Copy {
					return table.lookup(assignKey(x))
				}
				return 0, false
			})
			stepAvail(pav, sp, km, in, table, func(x *ir.Instr) (int, bool) {
				if keyable(x) && x.Dst.Kind == ir.Var && !selfRef(x) && x.Kind != ir.Copy {
					return table.lookup(assignKey(x))
				}
				return 0, false
			})
		}
	}

	for _, ins := range inserts {
		insertOnEdge(f, ins.from, ins.to, ins.instr)
		changed = true
	}
	if len(inserts) > 0 {
		f.RecomputePreds()
	}
	return changed
}

// upwardExposed reports whether the key's operands and destination are not
// redefined in b before position pos (so edge insertion is equivalent to
// executing the assignment at pos).
func upwardExposed(b *ir.Block, pos int, sp valueSpace, km *killMap, key int) bool {
	for i := 0; i < pos; i++ {
		in := b.Instrs[i]
		if !in.HasDst() {
			continue
		}
		if di := sp.indexOf(in.Dst); di >= 0 {
			for _, e := range km.killedBy[di] {
				if e == key {
					return false
				}
			}
		}
	}
	return true
}

// genKillFor builds per-block gen/kill sets for an availability problem
// over nb expression keys.
func genKillFor(f *ir.Func, nBlocks, nb int, sp valueSpace, km *killMap,
	keyOf func(*ir.Instr) (int, bool)) (gen, kill []*dataflow.BitSet) {
	gen = make([]*dataflow.BitSet, nBlocks)
	kill = make([]*dataflow.BitSet, nBlocks)
	for bi, b := range f.Blocks {
		gen[bi] = dataflow.NewBitSet(nb)
		kill[bi] = dataflow.NewBitSet(nb)
		for _, in := range b.Instrs {
			if in.HasDst() {
				if di := sp.indexOf(in.Dst); di >= 0 {
					for _, e := range km.killedBy[di] {
						gen[bi].Clear(e)
						kill[bi].Set(e)
					}
				}
			}
			if k, ok := keyOf(in); ok {
				gen[bi].Set(k)
				kill[bi].Clear(k)
			}
		}
	}
	return gen, kill
}

// stepAvail applies one instruction's transfer to an availability set.
func stepAvail(s *dataflow.BitSet, sp valueSpace, km *killMap, in *ir.Instr,
	_ *exprTable, keyOf func(*ir.Instr) (int, bool)) {
	if in.HasDst() {
		if di := sp.indexOf(in.Dst); di >= 0 {
			for _, e := range km.killedBy[di] {
				if e < s.Len() {
					s.Clear(e)
				}
			}
		}
	}
	if k, ok := keyOf(in); ok && k < s.Len() {
		s.Set(k)
	}
}

func blockIndex(f *ir.Func, b *ir.Block) int {
	for i, x := range f.Blocks {
		if x == b {
			return i
		}
	}
	return -1
}

// insertOnEdge places instr on the edge from -> to: appended at the end of
// `from` when `to` is its only successor, otherwise on a freshly split edge
// block (preserving branch-target order).
func insertOnEdge(f *ir.Func, from, to *ir.Block, instr *ir.Instr) {
	if len(from.Succs) == 1 {
		from.AppendBeforeTerm(instr)
		return
	}
	m := f.NewBlock()
	j := &ir.Instr{Kind: ir.Jmp, Stmt: -1, OrigIdx: f.NextOrig()}
	m.Instrs = []*ir.Instr{instr, j}
	m.Succs = []*ir.Block{to}
	from.ReplaceSucc(to, m)
}

// ---------------------------------------------------------------- layer 2

// cseTemps implements layer 2: expression CSE/PRE through canonical temps.
func cseTemps(f *ir.Func) bool {
	sp := spaceOf(f)

	// Count occurrences per expression key (temp or var destinations both
	// supply values; only multi-occurrence keys are worth a canonical temp).
	counts := map[string]int{}
	samples := map[string]*ir.Instr{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if keyable(in) && in.Kind != ir.Copy {
				k := in.ExprKey()
				counts[k]++
				if samples[k] == nil {
					samples[k] = in
				}
			}
		}
	}
	table := newExprTable()
	for _, b := range f.Blocks { // deterministic interning order
		for _, in := range b.Instrs {
			if keyable(in) && in.Kind != ir.Copy {
				if k := in.ExprKey(); counts[k] >= 2 {
					table.intern(k, samples[k])
				}
			}
		}
	}
	if table.size() == 0 {
		return false
	}

	// Canonical temp per key. When every occurrence of a key already
	// writes the same temp (e.g. from a previous CSE round), reuse it —
	// otherwise each round would wrap another copy layer around the value.
	sharedDst := map[string]ir.Operand{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if keyable(in) && in.Kind != ir.Copy {
				k := in.ExprKey()
				if counts[k] < 2 {
					continue
				}
				if prev, seen := sharedDst[k]; !seen {
					sharedDst[k] = in.Dst
				} else if !prev.Same(in.Dst) || in.Dst.Kind != ir.Temp {
					sharedDst[k] = ir.Operand{} // mixed destinations
				}
			}
		}
	}
	canon := make([]ir.Operand, table.size())
	for i, s := range table.sample {
		if d := sharedDst[table.keys[i]]; d.Kind == ir.Temp {
			canon[i] = d
		} else {
			canon[i] = f.NewTemp(s.Dst.Ty)
		}
	}

	// Rewrite every occurrence "d = E" (d != canon) into
	// "hE = E; d = copy hE" so availability implies the value sits in hE.
	for _, b := range f.Blocks {
		for pos := 0; pos < len(b.Instrs); pos++ {
			in := b.Instrs[pos]
			if !keyable(in) || in.Kind == ir.Copy {
				continue
			}
			key, ok := table.lookup(in.ExprKey())
			if !ok || in.Dst.Same(canon[key]) {
				continue
			}
			// Replace in place: in becomes hE = E; a copy follows.
			cp := &ir.Instr{
				Kind: ir.Copy, Dst: in.Dst, A: canon[key],
				Stmt: in.Stmt, OrigIdx: f.NextOrig(),
			}
			cp.Ann = in.Ann
			cp.Ann.InsertedBy = "cse"
			in.Dst = canon[key]
			b.InsertBefore(pos+1, cp)
			pos++
		}
	}

	// Availability of keys now means "canon[key] holds the value".
	km := buildKillMap(table, sp, false)
	g, _ := graphOf(f)
	keyOf := func(in *ir.Instr) (int, bool) {
		if keyable(in) && in.Kind != ir.Copy && !selfRef(in) {
			if k, ok := table.lookup(in.ExprKey()); ok && in.Dst.Same(canon[k]) {
				return k, true
			}
		}
		return 0, false
	}
	gen, kill := genKillFor(f, g.N, table.size(), sp, km, keyOf)
	must := (&dataflow.Problem{Graph: g, Dir: dataflow.Forward, Meet: dataflow.Intersect,
		Bits: table.size(), Gen: gen, Kill: kill}).Solve()
	may := (&dataflow.Problem{Graph: g, Dir: dataflow.Forward, Meet: dataflow.Union,
		Bits: table.size(), Gen: gen, Kill: kill}).Solve()

	changed := false
	type insertion struct {
		from, to *ir.Block
		instr    *ir.Instr
	}
	var inserts []insertion

	for bi, b := range f.Blocks {
		avail := must.In[bi].Copy()
		pav := may.In[bi].Copy()
		for pos := 0; pos < len(b.Instrs); pos++ {
			in := b.Instrs[pos]
			key, isCand := keyOf(in)
			if isCand && !in.Ann.Hoisted {
				if avail.Has(key) {
					// hE already holds the value: drop the recomputation.
					// Temps are invisible to the user, so no marker is
					// needed; but keep recovery annotations alive by
					// moving them to the following copy if present.
					b.RemoveAt(pos)
					pos--
					changed = true
					continue
				}
				if pav.Has(key) && upwardExposed(b, pos, sp, km, key) && len(b.Preds) > 1 {
					for _, p := range b.Preds {
						pi := blockIndex(f, p)
						if pi < 0 || must.Out[pi].Has(key) {
							continue
						}
						h := in.Clone()
						h.Ann.Hoisted = true
						h.Ann.InsertedBy = "pre"
						h.OrigIdx = f.NextOrig()
						inserts = append(inserts, insertion{from: p, to: b, instr: h})
					}
				}
			}
			stepAvail(avail, sp, km, in, table, keyOf)
			stepAvail(pav, sp, km, in, table, keyOf)
		}
	}
	for _, ins := range inserts {
		insertOnEdge(f, ins.from, ins.to, ins.instr)
		changed = true
	}
	if len(inserts) > 0 {
		f.RecomputePreds()
	}
	return changed
}
