package opt

import (
	"repro/internal/ir"
)

// Options selects which optimizations run; the zero value disables all.
// Level O2 matches the paper's "global optimizations" configuration.
type Options struct {
	// SROA splits non-address-taken struct aggregates into per-field
	// scalar variables before the scalar pipeline runs (see sroa.go).
	SROA       bool
	ConstFold  bool
	ConstProp  bool
	CopyProp   bool
	AssignProp bool
	PRE        bool
	LICM       bool
	PDCE       bool
	DCE        bool
	Strength   bool
	Unroll     bool
	Peel       bool
	LoopInvert bool
	BranchOpt  bool
	// NoMarkers suppresses the §3 marker bookkeeping (ablation: shows what
	// the debugger loses without compiler support). Markers are emitted by
	// DCE/PRE; with NoMarkers they are stripped after the pipeline.
	NoMarkers bool
}

// O0 returns options with every optimization disabled.
func O0() Options { return Options{} }

// O1 returns local optimizations only (folding, propagation, DCE).
func O1() Options {
	return Options{ConstFold: true, ConstProp: true, CopyProp: true, DCE: true, BranchOpt: true}
}

// O2 returns the full global pipeline of Table 1 (minus machine-level
// passes, which run after lowering).
func O2() Options {
	return Options{
		SROA:      true,
		ConstFold: true, ConstProp: true, CopyProp: true, AssignProp: true,
		PRE: true, LICM: true, PDCE: true, DCE: true, Strength: true,
		Unroll: true, LoopInvert: true, BranchOpt: true,
	}
}

// Run applies the optimization pipeline to every function.
func Run(p *ir.Program, o Options) {
	for _, f := range p.Funcs {
		RunFunc(f, o)
	}
}

// RunFunc runs the pipeline on one function. The pass order mirrors cmcc's
// pipeline as reconstructed from the paper: propagation feeds PRE, PRE's
// hoisted assignments can be sunk again by PDCE, and DCE performs the final
// cleanup (including induction variables orphaned by LFTR).
//
// RunFunc touches only f (and reads the shared, immutable global objects its
// operands reference), so distinct functions may be optimized concurrently.
func RunFunc(f *ir.Func, o Options) {
	// SROA must run first: it rewrites aggregate memory traffic into the
	// member-variable assignments every scalar pass below understands.
	if o.SROA {
		SROA(f)
	}

	cleanup := func() {
		if o.ConstFold {
			ConstFold(f)
		}
		if o.ConstProp {
			ConstProp(f)
		}
		if o.BranchOpt {
			BranchOpt(f)
		}
	}

	cleanup()
	if o.LoopInvert {
		LoopInvert(f)
		cleanup()
	}
	if o.Unroll {
		Unroll(f)
		cleanup()
	}
	if o.Peel {
		Peel(f)
		cleanup()
	}

	for round := 0; round < 3; round++ {
		if o.AssignProp {
			AssignProp(f)
		}
		if o.CopyProp {
			CopyProp(f)
		}
		if o.ConstProp {
			ConstProp(f)
		}
		if o.ConstFold {
			ConstFold(f)
		}
		if o.PRE {
			PRE(f)
		}
		if o.CopyProp {
			CopyProp(f)
		}
		if o.LICM {
			LICM(f)
		}
		if o.Strength {
			StrengthReduce(f)
			if o.CopyProp {
				CopyProp(f)
			}
		}
		if o.PDCE {
			PDCE(f)
		}
		if o.DCE {
			DCE(f)
			FaintDCE(f)
		}
		if o.BranchOpt {
			BranchOpt(f)
		}
	}
	cleanup()
	if o.DCE {
		DCE(f)
		FaintDCE(f)
	}
	// Recovery aliases recorded by earlier DCE rounds may point at values
	// whose computation a later round deleted; drop those aliases.
	ValidateMarkers(f)

	if o.NoMarkers {
		stripMarkers(f)
	}
}

// stripMarkers removes all debugger markers (ablation mode).
func stripMarkers(f *ir.Func) {
	for _, b := range f.Blocks {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			if b.Instrs[i].IsMarker() {
				b.RemoveAt(i)
			}
		}
	}
}
