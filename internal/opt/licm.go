package opt

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// LICM hoists loop-invariant temp computations into a loop preheader. The
// hoisted instructions are annotated Hoisted (they are code inserted by a
// hoisting transformation), but because their destinations are compiler
// temporaries they do not endanger source variables — matching the paper's
// measurement that cmcc "hoisted mainly address computations".
//
// Hoisting is non-speculative: an instruction is only moved if its block
// dominates every loop exit, so it would have executed on every loop
// traversal anyway.
func LICM(f *ir.Func) bool {
	g, _ := graphOf(f)
	loops, depth := dataflow.FindLoops(g, 0)
	for i, b := range f.Blocks {
		b.LoopDepth = depth[i]
	}
	if len(loops) == 0 {
		return false
	}
	dom := dataflow.Dominators(g, 0)
	lv := computeLiveness(f)
	sp := spaceOf(f)

	changed := false
	// Process inner loops first (greater depth first).
	order := make([]*dataflow.Loop, len(loops))
	copy(order, loops)
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].Depth > order[i].Depth {
				order[i], order[j] = order[j], order[i]
			}
		}
	}

	for _, l := range order {
		if hoistLoop(f, g, dom, lv, sp, l) {
			changed = true
			// CFG changed (preheader inserted); recompute for the rest.
			g, _ = graphOf(f)
			dom = dataflow.Dominators(g, 0)
			lv = computeLiveness(f)
		}
	}
	return changed
}

func hoistLoop(f *ir.Func, g dataflow.Graph, dom *dataflow.DomTree,
	lv *liveness, sp valueSpace, l *dataflow.Loop) bool {

	header := f.Blocks[l.Header]

	// Deterministic block order within the loop.
	var loopBlocks []int
	for bi := 0; bi < g.N; bi++ {
		if l.Blocks[bi] {
			loopBlocks = append(loopBlocks, bi)
		}
	}

	// Values defined anywhere in the loop.
	definedInLoop := map[int]int{} // value index -> def count
	for _, bi := range loopBlocks {
		for _, in := range f.Blocks[bi].Instrs {
			if in.HasDst() {
				if k := sp.indexOf(in.Dst); k >= 0 {
					definedInLoop[k]++
				}
			}
		}
	}

	// Loop exits: blocks inside with a successor outside.
	var exits []int
	for _, bi := range loopBlocks {
		for _, s := range g.Succs[bi] {
			if !l.Blocks[s] {
				exits = append(exits, bi)
				break
			}
		}
	}

	invariant := func(o ir.Operand) bool {
		k := sp.indexOf(o)
		return k < 0 || definedInLoop[k] == 0
	}

	// Successor blocks outside the loop (exit targets), for the
	// dead-outside test below.
	var exitTargets []int
	for _, e := range exits {
		for _, s := range g.Succs[e] {
			if !l.Blocks[s] {
				exitTargets = append(exitTargets, s)
			}
		}
	}

	var hoisted []*ir.Instr
	var buf []ir.Operand
	for _, bi := range loopBlocks {
		b := f.Blocks[bi]
		// Non-speculative hoisting requires the block to dominate all
		// exits. Blocks that don't (a while-loop body) may still hoist
		// non-trapping temp computations whose result is dead outside the
		// loop: executing them on a zero-trip traversal is unobservable.
		domAll := true
		for _, e := range exits {
			if !dom.Dominates(bi, e) {
				domAll = false
				break
			}
		}
		for pos := 0; pos < len(b.Instrs); pos++ {
			in := b.Instrs[pos]
			switch in.Kind {
			case ir.BinOp, ir.UnOp, ir.Copy, ir.Addr:
			default:
				continue
			}
			if in.Dst.Kind != ir.Temp {
				continue // only temp computations; source assignments are
				// hoisted by PRE where the bookkeeping is generated
			}
			if !domAll {
				// Speculative path: op must be non-trapping and the
				// destination dead outside the loop.
				if in.Op == ir.Div || in.Op == ir.Rem {
					continue
				}
				deadOutside := true
				for _, s := range exitTargets {
					if lv.LiveIn[s].Has(sp.indexOf(in.Dst)) {
						deadOutside = false
						break
					}
				}
				if !deadOutside {
					continue
				}
			}
			k := sp.indexOf(in.Dst)
			if definedInLoop[k] != 1 {
				continue // multiple defs: not a simple invariant
			}
			// Destination must not be live into the loop header from
			// outside (its pre-loop value must be dead).
			if lv.LiveIn[l.Header].Has(k) {
				continue
			}
			buf = in.Uses(buf[:0])
			allInv := true
			for _, u := range buf {
				if !invariant(u) {
					allInv = false
					break
				}
			}
			if !allInv {
				continue
			}
			// Hoist.
			b.RemoveAt(pos)
			pos--
			in.Ann.Hoisted = true
			in.Ann.InsertedBy = "licm"
			hoisted = append(hoisted, in)
			definedInLoop[k] = 0 // now invariant for later candidates
		}
	}
	if len(hoisted) == 0 {
		return false
	}

	// Build or reuse a preheader: a block whose single successor is the
	// header, dominating it, outside the loop.
	pre := f.NewBlock()
	pre.Instrs = append(pre.Instrs, hoisted...)
	j := &ir.Instr{Kind: ir.Jmp, Stmt: -1, OrigIdx: f.NextOrig()}
	pre.Instrs = append(pre.Instrs, j)
	pre.Succs = []*ir.Block{header}
	for pi := range g.N {
		if l.Blocks[pi] {
			continue
		}
		isPred := false
		for _, s := range g.Succs[pi] {
			if s == l.Header {
				isPred = true
			}
		}
		if isPred {
			f.Blocks[pi].ReplaceSucc(header, pre)
		}
	}
	f.RecomputePreds()
	return true
}
