package opt

import (
	"repro/internal/ir"
)

// BranchOpt performs the control-flow cleanups of Table 1's "branch
// optimizations": folding branches on constants, branch chaining through
// empty blocks, merging straight-line block pairs, and unreachable-code
// removal. Per §3 of the paper, when a basic block is deleted because it
// became empty, any debugger markers it holds are transferred to its
// successor; unreachable code (which would never have executed) is simply
// dropped.
func BranchOpt(f *ir.Func) bool {
	changed := false
	for {
		c := false
		c = foldConstBranches(f) || c
		c = chainBranches(f) || c
		c = mergeBlocks(f) || c
		if !c {
			break
		}
		changed = true
	}
	return changed
}

// foldConstBranches turns "br const" into an unconditional jump.
func foldConstBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Kind != ir.Br || t.A.Kind != ir.ConstI {
			continue
		}
		taken, dead := b.Succs[0], b.Succs[1]
		if t.A.Int == 0 {
			taken, dead = dead, taken
		}
		_ = dead
		t.Kind = ir.Jmp
		t.A = ir.Operand{}
		b.Succs = []*ir.Block{taken}
		changed = true
	}
	if changed {
		f.RecomputePreds()
		f.RemoveUnreachable()
	}
	return changed
}

// isEmptyJmp reports whether b contains only a Jmp (markers excepted —
// a block holding markers is "empty" for branching purposes, and its
// markers migrate to the successor when the block is bypassed).
func isEmptyJmp(b *ir.Block) (jmpOnly bool, markers []*ir.Instr) {
	t := b.Term()
	if t == nil || t.Kind != ir.Jmp {
		return false, nil
	}
	for _, in := range b.Body() {
		if !in.IsMarker() {
			return false, nil
		}
		markers = append(markers, in)
	}
	return true, markers
}

// chainBranches retargets edges that point at empty jump-only blocks.
func chainBranches(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for si, s := range b.Succs {
			// Follow chains of empty blocks (with a visited set to survive
			// empty infinite-loop cycles).
			seen := map[*ir.Block]bool{}
			cur := s
			var collected []*ir.Instr
			for {
				if seen[cur] {
					break
				}
				seen[cur] = true
				empty, marks := isEmptyJmp(cur)
				// Only bypass the block if it has other predecessors or
				// no markers: bypassing a marker-holding block whose only
				// predecessor is b means the markers must move into the
				// new target.
				if !empty || cur.Succs[0] == cur {
					break
				}
				if len(marks) > 0 && len(cur.Preds) > 1 {
					// The markers apply to all paths through cur; we may
					// not duplicate them silently onto only our edge —
					// stop chaining here. (Block merging handles the
					// single-pred case below.)
					break
				}
				// Markers land at the head of the block the chain ends in,
				// which is exact only while every path into that block runs
				// through the chain. Advancing into a join with other
				// predecessors would put a path-specific marker (say, the
				// markdead of a conditionally deleted assignment) on paths
				// where the assignment never executed, and recovery would
				// fabricate its value there — stop the chain instead.
				if len(collected)+len(marks) > 0 && len(cur.Succs[0].Preds) != 1 {
					break
				}
				collected = append(collected, marks...)
				cur = cur.Succs[0]
			}
			if cur != s {
				// Move collected markers into the head of the final target
				// (it post-dominates the deleted empty blocks on this
				// path; with a single predecessor the transfer is exact).
				for i := len(collected) - 1; i >= 0; i-- {
					cur.InsertBefore(0, collected[i])
				}
				b.Succs[si] = cur
				changed = true
			}
		}
	}
	if changed {
		f.RecomputePreds()
		f.RemoveUnreachable()
	}
	return changed
}

// mergeBlocks merges b into its single successor s when s has b as its
// single predecessor (straight-line pair).
func mergeBlocks(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for {
			t := b.Term()
			if t == nil || t.Kind != ir.Jmp || len(b.Succs) != 1 {
				break
			}
			s := b.Succs[0]
			if s == b || len(s.Preds) != 1 {
				break
			}
			// Splice s's instructions in place of b's terminator.
			b.Instrs = append(b.Instrs[:len(b.Instrs)-1], s.Instrs...)
			b.Succs = s.Succs
			s.Instrs = nil
			s.Succs = nil
			changed = true
			f.RecomputePreds()
			f.RemoveUnreachable()
		}
	}
	return changed
}
