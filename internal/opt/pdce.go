package opt

import (
	"repro/internal/ir"
)

// PDCE performs partial dead-code elimination by assignment sinking
// (Knoop/Rüthing/Steffen's transformation, restricted to the
// single-branch pattern): an assignment "V = E" whose value is dead along
// one successor path but live along another is removed from its block and a
// copy is inserted (annotated Sunk) on the live edge. The original
// assignment, now fully dead, is eliminated by the following DCE pass,
// which leaves the MarkDead marker — together they reproduce exactly the
// paper's Figure 3: E0 deleted because dead, E2 inserted by code sinking.
//
// Sinking is safe here because the inserted copy executes on a subset of
// the original paths, operands are unchanged between the original and the
// insertion point, and the moved computations are pure.
func PDCE(f *ir.Func) bool {
	changed := false
	for round := 0; round < 4; round++ {
		lv := computeLiveness(f)
		sp := lv.space
		roundChanged := false

		for _, b := range f.Blocks {
			term := b.Term()
			if term == nil || term.Kind != ir.Br || len(b.Succs) != 2 {
				continue
			}
			for pos := len(b.Instrs) - 2; pos >= 0; pos-- { // skip terminator
				in := b.Instrs[pos]
				if !sinkable(in) {
					continue
				}
				k := sp.indexOf(in.Dst)
				if k < 0 {
					continue
				}
				// Dst must be unused in the rest of this block.
				if usedOrKilledBelow(b, pos+1, in.Dst, sp) {
					continue
				}
				s0 := blockIndex(f, b.Succs[0])
				s1 := blockIndex(f, b.Succs[1])
				live0 := lv.LiveIn[s0].Has(k)
				live1 := lv.LiveIn[s1].Has(k)
				if live0 == live1 {
					continue // fully live (leave) or fully dead (DCE's job)
				}
				// Partially dead: V is wanted along exactly one edge.
				// Operands of E must not be redefined between pos and the
				// end of the block.
				if operandsKilledBelow(b, pos+1, in, sp) {
					continue
				}
				liveSucc := b.Succs[0]
				if live1 {
					liveSucc = b.Succs[1]
				}
				// Do not sink into a block that merges other paths unless
				// we split the edge; insertOnEdge handles both cases, but
				// sinking into a loop header would re-execute E every
				// iteration — require the edge not to target a block that
				// dominates b (cheap loop-header guard).
				if liveSucc == b {
					continue
				}
				sunk := in.Clone()
				sunk.Ann.Sunk = true
				sunk.Ann.InsertedBy = "pdce"
				sunk.OrigIdx = f.NextOrig()

				prepended := len(liveSucc.Preds) == 1
				if prepended {
					// Safe to prepend directly.
					liveSucc.InsertBefore(0, sunk)
				} else {
					insertOnEdge(f, b, liveSucc, sunk)
					f.RecomputePreds()
				}
				pruneSunkAliases(f, in.Dst, liveSucc, prepended)
				// The original assignment is now dead on every path; let
				// DCE delete it so the marker bookkeeping happens in one
				// place. To guarantee deadness we rewrite nothing here.
				roundChanged = true
				changed = true
				break // liveness and block indices are stale; restart
			}
			if roundChanged {
				break
			}
		}
		if !roundChanged {
			break
		}
		DCE(f)
	}
	return changed
}

// pruneSunkAliases drops MarkDead aliases that sinking dst's definition
// may have invalidated. Marker aliases are deliberately invisible to
// liveness (a marker must never keep a dead value alive), so the sink
// legality checks cannot see them — but a marker below the vacated
// position now names a register whose defining computation executes
// after it (or only on the other edge), and the debugger would recover
// a stale value from it. The only markers certain to stay valid are
// those the clone still dominates: when the clone was prepended to the
// single-predecessor live successor, every path into that block runs it
// first, so that block's markers keep their aliases; everywhere else
// the alias is cleared, trading a lost recovery for soundness (the
// variable degrades to a plain warning).
func pruneSunkAliases(f *ir.Func, dst ir.Operand, liveSucc *ir.Block, prepended bool) {
	for _, blk := range f.Blocks {
		if prepended && blk == liveSucc {
			continue
		}
		for _, x := range blk.Instrs {
			if x.Kind == ir.MarkDead && x.A.Valid() && x.A.Same(dst) {
				x.A = ir.Operand{}
			}
		}
	}
}

// sinkable reports whether in is a pure, re-computable assignment that can
// move past a branch. Self-referencing assignments (V = f(V)) are excluded:
// a sunk copy reads V and therefore keeps the original assignment live, so
// the motion would duplicate the update's effect instead of moving it.
func sinkable(in *ir.Instr) bool {
	switch in.Kind {
	case ir.BinOp, ir.UnOp, ir.Copy, ir.Addr:
		return in.HasDst() && !in.Ann.Hoisted && !selfRef(in)
	}
	return false
}

// usedOrKilledBelow reports whether operand o is read or written by any
// instruction in b at positions [from, len).
func usedOrKilledBelow(b *ir.Block, from int, o ir.Operand, sp valueSpace) bool {
	var buf []ir.Operand
	for i := from; i < len(b.Instrs); i++ {
		in := b.Instrs[i]
		buf = in.Uses(buf[:0])
		for _, u := range buf {
			if u.Same(o) {
				return true
			}
		}
		if in.HasDst() && in.Dst.Same(o) {
			return true
		}
	}
	return false
}

// operandsKilledBelow reports whether any operand read by `in` is redefined
// in b at positions [from, len).
func operandsKilledBelow(b *ir.Block, from int, in *ir.Instr, sp valueSpace) bool {
	var uses []ir.Operand
	uses = in.Uses(uses)
	for i := from; i < len(b.Instrs); i++ {
		x := b.Instrs[i]
		if !x.HasDst() {
			continue
		}
		for _, u := range uses {
			if x.Dst.Same(u) {
				return true
			}
		}
	}
	return false
}
