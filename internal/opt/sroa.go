package opt

import (
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/ir"
)

// SROA — scalar replacement of aggregates.
//
// The IR builder places every struct variable in memory (a frame object)
// and compiles field accesses as constant-offset loads and stores through
// the aggregate's address. For a struct that is never address-taken, that
// memory round trip is pure overhead AND an optimization barrier: the
// scalar passes (constprop, assignprop, PRE, LICM, DCE) do not look
// through loads.
//
// SROA runs first in the pipeline, on the fresh IR, and rewrites every
// analyzable aggregate access into an assignment of the field's *member
// variable* — the per-field objects the checker materialized alongside the
// base ("p.x", "p.y", ...; ordinary entries of Decl.Locals with dense IDs).
// After the split the aggregate's frame slot is gone and each field is an
// independent promoted scalar, so every later transformation — and,
// crucially, every piece of the paper's §3 debugging bookkeeping (dead/
// redundant markers, hoist annotations, alias recovery) — applies per
// field. A split struct can then be *partially* endangered: one field
// current, another dead, another hoisted, which is exactly the per-field
// residency story the debugger surfaces.
//
// An aggregate is split when every use of its address is a constant-offset
// load or store that stays inside the object (the builder only emits such
// accesses; address-taken structs are excluded by sem marking them
// Addressed). Anything else — an address temp escaping into a call, a
// store of the address itself, out-of-range offsets — keeps the aggregate
// in memory.

// sroaSplits counts aggregates split across the process lifetime (served
// as the sroa_splits stat).
var sroaSplits atomic.Int64

// SROASplitCount returns the number of aggregates split so far.
func SROASplitCount() int64 { return sroaSplits.Load() }

// SROA splits eligible aggregates in f into per-field scalar variables.
// It returns the number of aggregates split.
func SROA(f *ir.Func) int {
	// Candidate bases: non-addressed struct-typed frame objects with
	// materialized member objects.
	cand := map[*ast.Object]bool{}
	for _, o := range f.FrameObjects {
		if _, ok := o.Type.(*ast.StructType); ok && !o.Addressed && len(o.Members) > 0 {
			cand[o] = true
		}
	}
	if len(cand) == 0 {
		return 0
	}

	// Map each temp defined by Addr(candidate) to its base, and disqualify
	// bases whose address escapes any analyzable access pattern.
	addrOf := map[int]*ast.Object{} // temp ID -> candidate base
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Kind == ir.Addr && cand[in.AddrObj] && in.Dst.Kind == ir.Temp {
				addrOf[in.Dst.TID] = in.AddrObj
			}
		}
	}
	baseOfTemp := func(o ir.Operand) *ast.Object {
		if o.Kind != ir.Temp {
			return nil
		}
		return addrOf[o.TID]
	}
	inRange := func(base *ast.Object, off int64) bool {
		return off >= 0 && off%4 == 0 && off < int64(base.Type.Size())
	}

	var uses []ir.Operand
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Kind {
			case ir.Addr:
				// The defining Addr itself; redefinition of an address temp
				// by a second Addr of a different candidate is impossible
				// (builder temps are single-assignment), but be safe.
				continue
			case ir.Load:
				if base := baseOfTemp(in.A); base != nil && !inRange(base, in.Off) {
					delete(cand, base)
				}
				continue
			case ir.Store:
				if base := baseOfTemp(in.A); base != nil && !inRange(base, in.Off) {
					delete(cand, base)
				}
				// The stored *value* must not be an aggregate's address.
				if base := baseOfTemp(in.B); base != nil {
					delete(cand, base)
				}
				continue
			}
			// Any other appearance of an address temp (call argument,
			// pointer arithmetic, copy, print, return, branch) or a
			// redefinition of it disqualifies the base.
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if base := baseOfTemp(u); base != nil {
					delete(cand, base)
				}
			}
			if in.HasDst() {
				if base := baseOfTemp(in.Dst); base != nil {
					delete(cand, base)
				}
			}
		}
	}
	if len(cand) == 0 {
		return 0
	}

	// Rewrite: loads become copies from the member variable, stores become
	// copies to it, and the Addr instructions disappear. Stmt/OrigIdx/Ann
	// are preserved so the later passes' marker bookkeeping attributes the
	// rewritten assignments to the right source statements.
	for _, b := range f.Blocks {
		for idx := len(b.Instrs) - 1; idx >= 0; idx-- {
			in := b.Instrs[idx]
			switch in.Kind {
			case ir.Addr:
				if cand[in.AddrObj] {
					b.RemoveAt(idx)
				}
			case ir.Load:
				if base := baseOfTemp(in.A); base != nil && cand[base] {
					m := base.Members[in.Off/4]
					in.Kind = ir.Copy
					in.A = ir.VarOf(m)
					in.Off = 0
				}
			case ir.Store:
				if base := baseOfTemp(in.A); base != nil && cand[base] {
					m := base.Members[in.Off/4]
					v := in.B
					in.Kind = ir.Copy
					in.Dst = ir.VarOf(m)
					in.A = v
					in.B = ir.Operand{}
					in.Off = 0
				}
			}
		}
	}

	// Drop the split aggregates from the frame.
	keep := f.FrameObjects[:0]
	for _, o := range f.FrameObjects {
		if !cand[o] {
			keep = append(keep, o)
		}
	}
	f.FrameObjects = keep

	sroaSplits.Add(int64(len(cand)))
	return len(cand)
}
