package opt

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// maxUnrollInstrs bounds the size of loops considered for unrolling and
// peeling.
const maxUnrollInstrs = 30

// Unroll unrolls innermost small loops by a factor of two, keeping the exit
// test in each copy (so no trip-count knowledge is required). Per §3 of the
// paper, code duplication does not create data-value problems, but marker
// pseudo-instructions and annotations inside the duplicated blocks must be
// duplicated along with the code — Instr.Clone preserves both.
func Unroll(f *ir.Func) bool {
	return transformInnermost(f, func(f *ir.Func, g dataflow.Graph, l *dataflow.Loop) bool {
		return cloneLoopIteration(f, g, l, false)
	})
}

// Peel peels one iteration off innermost small loops: the cloned iteration
// runs before the loop proper.
func Peel(f *ir.Func) bool {
	return transformInnermost(f, func(f *ir.Func, g dataflow.Graph, l *dataflow.Loop) bool {
		return cloneLoopIteration(f, g, l, true)
	})
}

func transformInnermost(f *ir.Func, apply func(*ir.Func, dataflow.Graph, *dataflow.Loop) bool) bool {
	changed := false
	done := map[*ir.Block]bool{} // headers already transformed
	// Transform one loop at a time: every transformation invalidates block
	// indices (blocks are added and unreachable ones removed), so loop
	// discovery restarts after each change.
	for round := 0; round < 64; round++ {
		g, _ := graphOf(f)
		loops, _ := dataflow.FindLoops(g, 0)
		applied := false
		for _, l := range loops {
			if done[f.Blocks[l.Header]] {
				continue
			}
			// Innermost only: no other loop's header inside this loop.
			inner := true
			for _, o := range loops {
				if o != l && l.Blocks[o.Header] {
					inner = false
					break
				}
			}
			if !inner {
				continue
			}
			size := 0
			for bi := range l.Blocks {
				size += len(f.Blocks[bi].Instrs)
			}
			done[f.Blocks[l.Header]] = true
			if size > maxUnrollInstrs {
				continue
			}
			if apply(f, g, l) {
				changed = true
				applied = true
				break
			}
		}
		if !applied {
			break
		}
	}
	return changed
}

// cloneLoopIteration clones the whole loop subgraph once. With peel=false
// the clone is spliced into the back edges (original latches jump to the
// cloned header, cloned latches jump back to the original header):
// unrolling by two. With peel=true the clone is spliced into the entry
// edges (outside predecessors jump to the cloned header, cloned latches
// continue into the original header): peeling one iteration. Cloned exit
// edges keep their original targets in both cases.
func cloneLoopIteration(f *ir.Func, g dataflow.Graph, l *dataflow.Loop, peel bool) bool {
	header := f.Blocks[l.Header]

	// Deterministic ordering of loop blocks.
	var loopBlocks []*ir.Block
	for bi := 0; bi < g.N; bi++ {
		if l.Blocks[bi] {
			loopBlocks = append(loopBlocks, f.Blocks[bi])
		}
	}

	// Clone blocks and instructions.
	cloneOf := map[*ir.Block]*ir.Block{}
	for _, b := range loopBlocks {
		nb := f.NewBlock()
		for _, in := range b.Instrs {
			c := in.Clone()
			c.OrigIdx = f.NextOrig()
			nb.Instrs = append(nb.Instrs, c)
		}
		cloneOf[b] = nb
	}
	// Wire clone successors: intra-loop edges stay inside the clone except
	// edges back to the header, which leave the clone (to the original
	// header — advancing the "other" copy of the iteration).
	for _, b := range loopBlocks {
		nb := cloneOf[b]
		for _, s := range b.Succs {
			switch {
			case s == header:
				nb.Succs = append(nb.Succs, header)
			case cloneOf[s] != nil:
				nb.Succs = append(nb.Succs, cloneOf[s])
			default:
				nb.Succs = append(nb.Succs, s) // exit edge
			}
		}
	}

	clonedHeader := cloneOf[header]
	if peel {
		// Entry edges from outside the loop go to the cloned header.
		for _, p := range header.Preds {
			if !l.Blocks[indexOfBlock(f, p)] {
				p.ReplaceSucc(header, clonedHeader)
			}
		}
	} else {
		// Back edges from original latches go to the cloned header.
		for _, latch := range l.Latches {
			f.Blocks[latch].ReplaceSucc(header, clonedHeader)
		}
	}
	f.RecomputePreds()
	f.RemoveUnreachable()
	return true
}

func indexOfBlock(f *ir.Func, b *ir.Block) int {
	for i, x := range f.Blocks {
		if x == b {
			return i
		}
	}
	return -1
}
