package opt

import (
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// AssignProp performs assignment propagation (cmcc performs it "to improve
// partial redundancy elimination", §2.5): where the assignment "X = E" is
// available at a use of the source variable X, the use is replaced by a
// re-materialized computation of E into a fresh temp. The re-materialized
// instruction is annotated ReplacedVar=X — it is a "code replacement"
// record: its value aliases X, enabling the debugger to recover X after the
// original assignment is dead-code eliminated (Figure 4 of the paper).
//
// Re-materializations are merged back into single computations by the
// expression-level CSE of the PRE pass, reproducing exactly the paper's
// copy-propagation + common-subexpression pipeline.
func AssignProp(f *ir.Func) bool {
	sp := spaceOf(f)

	// Candidate assignments: X = E, X a promoted source var, E a pure
	// computation (BinOp/UnOp over Const/Var/Temp, or a Copy of a simple
	// operand) that does not read X.
	table := newExprTable()
	type candInfo struct{ in *ir.Instr }
	var cands []candInfo
	isCand := func(in *ir.Instr) bool {
		if !keyable(in) || in.Dst.Kind != ir.Var || selfRef(in) {
			return false
		}
		switch in.Kind {
		case ir.BinOp, ir.UnOp, ir.Copy:
			return true
		}
		return false
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if isCand(in) {
				if _, ok := table.lookup(assignKey(in)); !ok {
					table.intern(assignKey(in), in)
					// Snapshot the defining instruction NOW: later use
					// replacements may rewrite the original in place
					// (e.g. substituting an available copy into one of
					// its operands), and re-materialization must clone
					// the expression whose availability was analyzed,
					// not the rewritten one.
					cands = append(cands, candInfo{in: in.Clone()})
				}
			}
		}
	}
	if table.size() == 0 {
		return false
	}
	km := buildKillMap(table, sp, true)
	g, _ := graphOf(f)
	keyOf := func(in *ir.Instr) (int, bool) {
		if isCand(in) {
			return table.lookup(assignKey(in))
		}
		return 0, false
	}
	gen, kill := genKillFor(f, g.N, table.size(), sp, km, keyOf)
	must := (&dataflow.Problem{Graph: g, Dir: dataflow.Forward, Meet: dataflow.Intersect,
		Bits: table.size(), Gen: gen, Kill: kill}).Solve()

	// Per variable, the list of candidate keys assigning it.
	keysForVar := map[int][]int{}
	for ki, c := range cands {
		keysForVar[sp.indexOf(c.in.Dst)] = append(keysForVar[sp.indexOf(c.in.Dst)], ki)
	}

	changed := false
	var buf []ir.Operand
	for bi, b := range f.Blocks {
		avail := must.In[bi].Copy()
		for pos := 0; pos < len(b.Instrs); pos++ {
			in := b.Instrs[pos]
			if in.IsMarker() {
				continue
			}
			// Find uses of candidate variables with an available
			// defining assignment.
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				if u.Kind != ir.Var {
					continue
				}
				ui := sp.indexOf(u)
				for _, ki := range keysForVar[ui] {
					if !avail.Has(ki) {
						continue
					}
					def := cands[ki].in
					if in == def {
						break
					}
					// Propagate: re-materialize E into a temp just before
					// the use; annotate for recovery.
					rm := def.Clone()
					rm.Dst = f.NewTemp(def.Dst.Ty)
					rm.Stmt = in.Stmt
					rm.OrigIdx = f.NextOrig()
					rm.Ann = ir.Ann{ReplacedVar: def.Dst.Obj, InsertedBy: "assignprop"}
					// Copies of plain operands propagate the operand
					// directly (classic copy/constant propagation): no new
					// instruction, but the recovery link is preserved by
					// the dead-marker operand recorded at DCE time.
					if def.Kind == ir.Copy {
						in.ReplaceUses(u, def.A)
						changed = true
						break
					}
					b.InsertBefore(pos, rm)
					pos++
					in.ReplaceUses(u, rm.Dst)
					changed = true
					break
				}
			}
			stepAvail(avail, sp, km, in, table, keyOf)
		}
	}
	return changed
}
