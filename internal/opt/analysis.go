// Package opt implements mcc's global scalar optimizations — the passes of
// Table 1 of the paper — together with the §3 bookkeeping: inserted code is
// annotated Hoisted/Sunk, deleted source-level assignments leave marker
// pseudo-instructions, and expressions that replace fetches of source
// variables record the variable for recovery.
package opt

import (
	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/ir"
)

// graphOf builds the dataflow.Graph view of a function. Block index =
// position in f.Blocks.
func graphOf(f *ir.Func) (dataflow.Graph, map[*ir.Block]int) {
	idx := make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		idx[b] = i
	}
	g := dataflow.Graph{
		N:     len(f.Blocks),
		Succs: make([][]int, len(f.Blocks)),
		Preds: make([][]int, len(f.Blocks)),
	}
	for i, b := range f.Blocks {
		for _, s := range b.Succs {
			g.Succs[i] = append(g.Succs[i], idx[s])
		}
		for _, p := range b.Preds {
			g.Preds[i] = append(g.Preds[i], idx[p])
		}
	}
	return g, idx
}

// valueSpace maps Var and Temp operands to dense indices:
// vars (by Object.ID) occupy [0, numVars), temps [numVars, numVars+NumTemps).
type valueSpace struct {
	fn      *ir.Func
	numVars int
}

func spaceOf(f *ir.Func) valueSpace {
	return valueSpace{fn: f, numVars: len(f.Decl.Locals)}
}

func (s valueSpace) size() int { return s.numVars + s.fn.NumTemps }

// indexOf returns the dense index of a Var/Temp operand, or -1.
func (s valueSpace) indexOf(o ir.Operand) int {
	switch o.Kind {
	case ir.Var:
		return o.Obj.ID
	case ir.Temp:
		return s.numVars + o.TID
	}
	return -1
}

// isVarIndex reports whether a dense index denotes a source variable.
func (s valueSpace) isVarIndex(i int) bool { return i < s.numVars }

// varOf returns the object for a var index.
func (s valueSpace) varOf(i int) *ast.Object { return s.fn.Decl.Locals[i] }

// ---------------------------------------------------------------- liveness

// liveness computes per-block LiveIn/LiveOut over the value space. Source
// variables are additionally considered live at every point inside their
// syntactic scope when keepVarsLive is set (used before register allocation
// decisions that must not delete values the debugger still addresses).
type liveness struct {
	space   valueSpace
	LiveIn  []*dataflow.BitSet
	LiveOut []*dataflow.BitSet
}

// computeLiveness solves backward may-liveness.
func computeLiveness(f *ir.Func) *liveness {
	g, _ := graphOf(f)
	sp := spaceOf(f)
	n := sp.size()
	use := make([]*dataflow.BitSet, g.N)
	def := make([]*dataflow.BitSet, g.N)
	var buf []ir.Operand
	for i, b := range f.Blocks {
		use[i] = dataflow.NewBitSet(n)
		def[i] = dataflow.NewBitSet(n)
		for _, in := range b.Instrs {
			buf = in.Uses(buf[:0])
			for _, o := range buf {
				if k := sp.indexOf(o); k >= 0 && !def[i].Has(k) {
					use[i].Set(k)
				}
			}
			if in.HasDst() {
				if k := sp.indexOf(in.Dst); k >= 0 {
					def[i].Set(k)
				}
			}
		}
	}
	p := dataflow.Problem{
		Graph: g, Dir: dataflow.Backward, Meet: dataflow.Union, Bits: n,
		Gen: use, Kill: def,
	}
	res := p.Solve()
	return &liveness{space: sp, LiveIn: res.In, LiveOut: res.Out}
}

// liveAcross walks block b backwards and reports, for each instruction
// index, the set of values live immediately AFTER that instruction. The
// returned slice is indexed by instruction position.
func (lv *liveness) liveAfter(f *ir.Func, bi int) []*dataflow.BitSet {
	b := f.Blocks[bi]
	out := make([]*dataflow.BitSet, len(b.Instrs))
	cur := lv.LiveOut[bi].Copy()
	var buf []ir.Operand
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		out[i] = cur.Copy()
		in := b.Instrs[i]
		if in.HasDst() {
			if k := lv.space.indexOf(in.Dst); k >= 0 {
				cur.Clear(k)
			}
		}
		buf = in.Uses(buf[:0])
		for _, o := range buf {
			if k := lv.space.indexOf(o); k >= 0 {
				cur.Set(k)
			}
		}
	}
	return out
}

// ---------------------------------------------------------------- expr keys

// exprTable interns expression keys to dense indices for availability
// problems.
type exprTable struct {
	keys  []string
	index map[string]int
	// sample holds one representative instruction per key, used to clone
	// computations during PRE insertion.
	sample []*ir.Instr
}

func newExprTable() *exprTable { return &exprTable{index: map[string]int{}} }

func (t *exprTable) intern(key string, in *ir.Instr) int {
	if i, ok := t.index[key]; ok {
		return i
	}
	i := len(t.keys)
	t.index[key] = i
	t.keys = append(t.keys, key)
	t.sample = append(t.sample, in)
	return i
}

func (t *exprTable) lookup(key string) (int, bool) {
	i, ok := t.index[key]
	return i, ok
}

func (t *exprTable) size() int { return len(t.keys) }

// operandsKilledBy reports whether a def of value index k invalidates the
// expression with table index e (i.e. k is an operand of e's sample, or k
// is the destination when tracking assignment-availability).
type killMap struct {
	// killedBy[k] lists expression indices invalidated by defining k.
	killedBy map[int][]int
}

func buildKillMap(t *exprTable, sp valueSpace, includeDst bool) *killMap {
	km := &killMap{killedBy: map[int][]int{}}
	var buf []ir.Operand
	for ei, in := range t.sample {
		buf = in.Uses(buf[:0])
		for _, o := range buf {
			if k := sp.indexOf(o); k >= 0 {
				km.killedBy[k] = append(km.killedBy[k], ei)
			}
		}
		if includeDst && in.HasDst() {
			if k := sp.indexOf(in.Dst); k >= 0 {
				km.killedBy[k] = append(km.killedBy[k], ei)
			}
		}
	}
	return km
}
