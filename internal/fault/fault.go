// Package fault is the process-wide fault injector behind the chaos
// harness: named fault points threaded through the service's failure
// surfaces (spill-tier I/O in internal/store, per-function back ends in
// internal/compile, response writes in internal/server) that misbehave on
// demand — returning errors, stalling, panicking, or truncating payloads —
// according to rules armed by tests.
//
// The injector is a no-op by default. The disabled fast path is one atomic
// load (no map lookup, no lock), so production binaries pay nothing for
// carrying the points; the chaos soak's companion benchmark record
// (BENCH_fault.json) holds the hot paths to within noise of the
// injector-free seed numbers.
//
// Rules are deterministic given the seed passed to Enable: every firing
// decision draws from one seeded PRNG, so a failing chaos run reproduces
// from its logged seed (modulo goroutine interleaving, which reorders
// draws but not the schedule that armed them).
//
// Point names are dot-separated, lowercase, and owned by the package that
// calls them; DESIGN.md inventories every point and the invariant its
// callers preserve when it fires.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base error of injected failures: errors returned by
// Check for a rule with no Err of its own wrap it, so callers (and tests)
// can tell injected faults from real ones with errors.Is.
var ErrInjected = errors.New("injected fault")

// InjectedPanic is the value a Panic rule throws, so recovery paths can
// recognize (and tests can assert on) an injected panic.
type InjectedPanic struct{ Point string }

func (p *InjectedPanic) String() string { return "injected panic at " + p.Point }

// Rule describes how one named point misbehaves while armed.
type Rule struct {
	// Prob is the chance the rule fires per eligible hit, in (0, 1];
	// <= 0 means 1 (every hit).
	Prob float64
	// After exempts the first After hits of the point.
	After int64
	// Times caps how many times the rule fires; 0 means unlimited.
	Times int64
	// Delay stalls the caller before the outcome applies (with a zero
	// Err and no Panic, the fault is the stall alone).
	Delay time.Duration
	// Err is the error Check returns when the rule fires; nil selects a
	// point-naming wrap of ErrInjected. Ignored by Cut points.
	Err error
	// Panic makes Check panic with *InjectedPanic instead of returning.
	Panic bool
	// CutTo is the fraction of the payload Cut keeps when the rule
	// fires, in [0, 1); <= 0 means 0.5.
	CutTo float64
}

type point struct {
	rule  Rule
	hits  int64
	fired int64
}

// PointStats is one point's counters: evaluations while armed and how
// often its rule fired.
type PointStats struct {
	Hits  int64
	Fired int64
}

var (
	enabled atomic.Bool

	mu     sync.Mutex
	points map[string]*point
	rng    *rand.Rand
)

// Enable arms the injector with a fresh, empty rule set and a PRNG seeded
// by seed. Points without a rule keep behaving normally; arm them with
// Set.
func Enable(seed int64) {
	mu.Lock()
	points = map[string]*point{}
	rng = rand.New(rand.NewSource(seed))
	mu.Unlock()
	enabled.Store(true)
}

// Disable disarms the injector and drops every rule and counter. All
// points revert to the zero-overhead fast path.
func Disable() {
	enabled.Store(false)
	mu.Lock()
	points = nil
	rng = nil
	mu.Unlock()
}

// Enabled reports whether the injector is armed.
func Enabled() bool { return enabled.Load() }

// Set arms (or replaces) the rule for a point, resetting its counters.
// It is a no-op while the injector is disabled.
func Set(name string, r Rule) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		return
	}
	points[name] = &point{rule: r}
}

// Clear disarms one point, keeping the injector enabled.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
}

// Fired returns how many times the named point's rule has fired since it
// was Set.
func Fired(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// Snapshot returns the counters of every armed point.
func Snapshot() map[string]PointStats {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[string]PointStats, len(points))
	for name, p := range points {
		out[name] = PointStats{Hits: p.hits, Fired: p.fired}
	}
	return out
}

// Points lists the armed point names, sorted.
func Points() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// decide evaluates a point against its rule, updating counters. It never
// sleeps or panics itself; the caller applies the outcome outside the
// lock.
func decide(name string) (fire bool, r Rule) {
	mu.Lock()
	defer mu.Unlock()
	p := points[name]
	if p == nil {
		return false, Rule{}
	}
	p.hits++
	if p.hits <= p.rule.After {
		return false, Rule{}
	}
	if p.rule.Times > 0 && p.fired >= p.rule.Times {
		return false, Rule{}
	}
	if p.rule.Prob > 0 && p.rule.Prob < 1 && rng.Float64() >= p.rule.Prob {
		return false, Rule{}
	}
	p.fired++
	return true, p.rule
}

// Check evaluates the named point: nil when the injector is disabled, the
// point is unarmed, or its rule elects not to fire; otherwise it applies
// the rule — stalling Delay, then panicking (Panic) or returning the
// rule's error. A rule with a Delay but no Err and no Panic is a pure
// stall: Check sleeps and returns nil, modeling a slow-but-correct
// resource. The disabled path is a single atomic load.
func Check(name string) error {
	if !enabled.Load() {
		return nil
	}
	fire, r := decide(name)
	if !fire {
		return nil
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Panic {
		panic(&InjectedPanic{Point: name})
	}
	if r.Err != nil {
		return r.Err
	}
	if r.Delay > 0 {
		return nil
	}
	return fmt.Errorf("%s: %w", name, ErrInjected)
}

// Cut evaluates the named point against a payload about to be written:
// normally it returns data unchanged; when the point's rule fires it
// returns a truncated prefix (CutTo of the length), modeling a partial
// write that "succeeds" but persists garbage. The disabled path is a
// single atomic load.
func Cut(name string, data []byte) []byte {
	if !enabled.Load() {
		return data
	}
	fire, r := decide(name)
	if !fire {
		return data
	}
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	f := r.CutTo
	if f <= 0 {
		f = 0.5
	}
	if f >= 1 {
		return data
	}
	return data[:int(f*float64(len(data)))]
}
