package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	Disable()
	if err := Check("any.point"); err != nil {
		t.Fatalf("disabled Check = %v", err)
	}
	data := []byte("payload")
	if got := Cut("any.point", data); string(got) != "payload" {
		t.Fatalf("disabled Cut = %q", got)
	}
	// Set without Enable must not arm anything.
	Set("any.point", Rule{})
	if err := Check("any.point"); err != nil {
		t.Fatalf("Check after disabled Set = %v", err)
	}
}

func TestCheckFiresAndWrapsErrInjected(t *testing.T) {
	Enable(1)
	defer Disable()
	Set("p", Rule{})
	err := Check("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Check = %v, want ErrInjected wrap", err)
	}
	if Fired("p") != 1 {
		t.Fatalf("Fired = %d", Fired("p"))
	}
	// Unarmed points stay healthy even while enabled.
	if err := Check("other"); err != nil {
		t.Fatalf("unarmed Check = %v", err)
	}
}

func TestCustomError(t *testing.T) {
	Enable(1)
	defer Disable()
	sentinel := errors.New("disk on fire")
	Set("p", Rule{Err: sentinel})
	if err := Check("p"); !errors.Is(err, sentinel) {
		t.Fatalf("Check = %v, want sentinel", err)
	}
}

func TestAfterAndTimes(t *testing.T) {
	Enable(1)
	defer Disable()
	Set("p", Rule{After: 2, Times: 1})
	for i := 0; i < 2; i++ {
		if err := Check("p"); err != nil {
			t.Fatalf("hit %d inside After window failed: %v", i, err)
		}
	}
	if err := Check("p"); err == nil {
		t.Fatal("hit past After did not fire")
	}
	// Times 1 is spent.
	for i := 0; i < 3; i++ {
		if err := Check("p"); err != nil {
			t.Fatalf("hit past Times fired: %v", err)
		}
	}
	st := Snapshot()["p"]
	if st.Hits != 6 || st.Fired != 1 {
		t.Fatalf("snapshot = %+v", st)
	}
}

func TestProbIsSeededAndDeterministic(t *testing.T) {
	run := func() (fired int64) {
		Enable(42)
		defer Disable()
		Set("p", Rule{Prob: 0.5})
		for i := 0; i < 100; i++ {
			Check("p")
		}
		return Fired("p")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed fired %d then %d times", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("Prob 0.5 fired %d/100", a)
	}
}

func TestPanicRule(t *testing.T) {
	Enable(1)
	defer Disable()
	Set("p", Rule{Panic: true})
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok || ip.Point != "p" {
			t.Fatalf("recovered %v, want *InjectedPanic{p}", r)
		}
	}()
	Check("p")
	t.Fatal("Check with Panic rule returned")
}

func TestDelayOnlyStallsAndSucceeds(t *testing.T) {
	Enable(1)
	defer Disable()
	const d = 20 * time.Millisecond
	Set("p", Rule{Delay: d})
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatalf("delay-only Check = %v", err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("delay-only Check returned after %v, want >= %v", elapsed, d)
	}
}

func TestCutTruncates(t *testing.T) {
	Enable(1)
	defer Disable()
	data := []byte("0123456789")
	Set("p", Rule{CutTo: 0.3})
	if got := Cut("p", data); len(got) != 3 {
		t.Fatalf("Cut kept %d bytes, want 3", len(got))
	}
	Set("p", Rule{}) // CutTo <= 0 defaults to half
	if got := Cut("p", data); len(got) != 5 {
		t.Fatalf("default Cut kept %d bytes, want 5", len(got))
	}
	Clear("p")
	if got := Cut("p", data); len(got) != len(data) {
		t.Fatalf("cleared Cut kept %d bytes", len(got))
	}
}

func TestPointsAndClear(t *testing.T) {
	Enable(1)
	defer Disable()
	Set("b.point", Rule{})
	Set("a.point", Rule{})
	pts := Points()
	if len(pts) != 2 || pts[0] != "a.point" || pts[1] != "b.point" {
		t.Fatalf("Points = %v", pts)
	}
	Clear("a.point")
	if err := Check("a.point"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
	if err := Check("b.point"); err == nil {
		t.Fatal("remaining point did not fire")
	}
}

// The hot paths carry Check/Cut on every spill read, write, and compiled
// function; these benches are the basis of BENCH_fault.json's
// injector-disabled overhead record.
func BenchmarkCheckDisabled(b *testing.B) {
	Disable()
	for i := 0; i < b.N; i++ {
		if err := Check("store.spill.read"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCutDisabled(b *testing.B) {
	Disable()
	data := make([]byte, 4096)
	for i := 0; i < b.N; i++ {
		if got := Cut("store.spill.partial", data); len(got) != len(data) {
			b.Fatal("cut while disabled")
		}
	}
}
