package ir

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/sem"
	"repro/internal/token"
)

// Build lowers a checked program to IR. Assignments to promoted source
// variables are emitted as single quads (e.g. "x = add y, z") so that the
// optimizer transforms whole source-level assignments, which is what the
// paper's bookkeeping tracks.
func Build(p *sem.Program) *Program {
	prog := &Program{Globals: p.Globals, GlobalInit: map[*ast.Object]Operand{}}
	for _, g := range p.File.Globals {
		if g.Init != nil {
			switch init := g.Init.(type) {
			case *ast.IntLit:
				prog.GlobalInit[g.Obj] = CI(init.Value)
			case *ast.FloatLit:
				prog.GlobalInit[g.Obj] = CF(init.Value)
			case *ast.CastExpr:
				switch x := init.X.(type) {
				case *ast.IntLit:
					prog.GlobalInit[g.Obj] = CF(float64(x.Value))
				case *ast.FloatLit:
					prog.GlobalInit[g.Obj] = CI(int64(x.Value))
				}
			}
		}
	}
	for _, fd := range p.Funcs {
		prog.Funcs = append(prog.Funcs, buildFunc(fd))
	}
	return prog
}

type builder struct {
	fn   *Func
	cur  *Block
	stmt int // current source statement ID

	breaks    []*Block
	continues []*Block
}

func buildFunc(fd *ast.FuncDecl) *Func {
	f := &Func{Name: fd.Name, Decl: fd}
	b := &builder{fn: f, stmt: -1}
	f.Entry = f.NewBlock()
	b.cur = f.Entry

	// Collect frame objects (arrays, addressed scalars, and aggregates).
	// Struct bases always start in memory — SROA may later promote their
	// fields and drop the base from the frame. Member objects are never
	// frame objects themselves.
	for _, o := range fd.Locals {
		if o.Base != nil {
			continue
		}
		if o.Addressed || ast.IsStruct(o.Type) {
			f.FrameObjects = append(f.FrameObjects, o)
		}
	}

	// Materialize incoming parameters. Struct parameters are flattened in
	// the call ABI: one argument slot per field, stored into the aggregate's
	// frame slots on entry. ParamIdx counts flattened slots.
	flat := 0
	for _, p := range fd.Params {
		if st, ok := p.Typ.(*ast.StructType); ok {
			a := f.NewTemp(I)
			b.emit(&Instr{Kind: Addr, Dst: a, AddrObj: p.Obj})
			for i, fld := range st.Fields {
				t := f.NewTemp(TyOf(fld.Type))
				b.emit(&Instr{Kind: GetParam, Dst: t, ParamIdx: flat + i})
				b.emit(&Instr{Kind: Store, A: a, B: t, Off: int64(st.FieldOffset(i))})
			}
			flat += len(st.Fields)
			continue
		}
		if p.Obj.Addressed {
			t := f.NewTemp(TyOf(p.Obj.Type))
			b.emit(&Instr{Kind: GetParam, Dst: t, ParamIdx: flat})
			a := f.NewTemp(I)
			b.emit(&Instr{Kind: Addr, Dst: a, AddrObj: p.Obj})
			b.emit(&Instr{Kind: Store, A: a, B: t})
		} else {
			b.emit(&Instr{Kind: GetParam, Dst: VarOf(p.Obj), ParamIdx: flat})
		}
		flat++
	}

	b.block(fd.Body)

	// Implicit return at the end of the function.
	if b.cur != nil {
		b.emit(&Instr{Kind: Ret})
	}
	f.RecomputePreds()
	f.RemoveUnreachable()
	return f
}

// emit appends in to the current block, stamping statement and order info.
func (b *builder) emit(in *Instr) *Instr {
	if b.cur == nil { // unreachable code after break/return: drop
		return in
	}
	in.Stmt = b.stmt
	in.OrigIdx = b.fn.NextOrig()
	b.cur.Instrs = append(b.cur.Instrs, in)
	return in
}

// setTerm ends the current block with a terminator and successor links.
func (b *builder) setTerm(in *Instr, succs ...*Block) {
	if b.cur == nil {
		return
	}
	b.emit(in)
	b.cur.Succs = append([]*Block(nil), succs...)
	b.cur = nil
}

// startBlock begins emitting into blk.
func (b *builder) startBlock(blk *Block) { b.cur = blk }

// jumpTo terminates the current block with a jump to blk (if still open).
func (b *builder) jumpTo(blk *Block) {
	if b.cur != nil {
		b.setTerm(&Instr{Kind: Jmp}, blk)
	}
}

// ---------------------------------------------------------------- stmts

func (b *builder) block(blk *ast.Block) {
	for _, s := range blk.Stmts {
		b.stmtGen(s)
	}
}

func (b *builder) stmtGen(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable statements (after return/break) generate no code.
		return
	}
	prev := b.stmt
	if s.ID() >= 0 {
		b.stmt = s.ID()
	}
	defer func() { b.stmt = prev }()

	switch s := s.(type) {
	case *ast.Block:
		b.block(s)

	case *ast.DeclStmt:
		if s.Decl.Init != nil {
			b.assignTo(s.Decl.Obj, identExprOf(s.Decl), s.Decl.Init)
		}

	case *ast.AssignStmt:
		b.assign(s)

	case *ast.IncDecStmt:
		op := token.PLUSASSIGN
		if s.Op == token.DEC {
			op = token.MINUSASSIGN
		}
		b.assign(&ast.AssignStmt{Op: op, LHS: s.X, RHS: oneFor(s.X)})

	case *ast.ExprStmt:
		b.value(s.X, Operand{})

	case *ast.IfStmt:
		thenB := b.fn.NewBlock()
		var elseB *Block
		joinB := b.fn.NewBlock()
		if s.Else != nil {
			elseB = b.fn.NewBlock()
			b.cond(s.Cond, thenB, elseB)
		} else {
			b.cond(s.Cond, thenB, joinB)
		}
		b.startBlock(thenB)
		b.block(s.Then)
		b.jumpTo(joinB)
		if s.Else != nil {
			b.startBlock(elseB)
			b.stmtGen(s.Else)
			b.jumpTo(joinB)
		}
		b.startBlock(joinB)

	case *ast.WhileStmt:
		head := b.fn.NewBlock()
		body := b.fn.NewBlock()
		exit := b.fn.NewBlock()
		b.jumpTo(head)
		b.startBlock(head)
		b.cond(s.Cond, body, exit)
		b.breaks = append(b.breaks, exit)
		b.continues = append(b.continues, head)
		b.startBlock(body)
		b.block(s.Body)
		b.jumpTo(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.startBlock(exit)

	case *ast.DoWhileStmt:
		body := b.fn.NewBlock()
		head := b.fn.NewBlock() // condition test
		exit := b.fn.NewBlock()
		b.jumpTo(body)
		b.breaks = append(b.breaks, exit)
		b.continues = append(b.continues, head)
		b.startBlock(body)
		b.block(s.Body)
		b.jumpTo(head)
		b.startBlock(head)
		b.cond(s.Cond, body, exit)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.startBlock(exit)

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmtGen(s.Init)
		}
		head := b.fn.NewBlock()
		body := b.fn.NewBlock()
		post := b.fn.NewBlock()
		exit := b.fn.NewBlock()
		b.jumpTo(head)
		b.startBlock(head)
		if s.Cond != nil {
			b.cond(s.Cond, body, exit)
		} else {
			b.jumpTo(body)
		}
		b.breaks = append(b.breaks, exit)
		b.continues = append(b.continues, post)
		b.startBlock(body)
		b.block(s.Body)
		b.jumpTo(post)
		b.startBlock(post)
		if s.Post != nil {
			b.stmtGen(s.Post)
		}
		b.jumpTo(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.startBlock(exit)

	case *ast.ReturnStmt:
		var v Operand
		if s.X != nil {
			v = b.value(s.X, Operand{})
		}
		b.setTerm(&Instr{Kind: Ret, A: v})

	case *ast.BreakStmt:
		b.jumpTo(b.breaks[len(b.breaks)-1])

	case *ast.ContinueStmt:
		b.jumpTo(b.continues[len(b.continues)-1])

	case *ast.PrintStmt:
		in := &Instr{Kind: Print}
		for _, a := range s.Args {
			if a.IsStr {
				in.PrintFmt = append(in.PrintFmt, PrintArg{Str: a.Str, IsStr: true})
			} else {
				v := b.value(a.X, Operand{})
				in.PrintFmt = append(in.PrintFmt, PrintArg{Val: v})
			}
		}
		b.emit(in)

	default:
		panic(fmt.Sprintf("ir: unknown statement %T", s))
	}
}

func oneFor(x ast.Expr) ast.Expr {
	if ast.IsFloat(x.Type()) {
		return ast.NewFloatLit(1, x.Span())
	}
	return ast.NewIntLit(1, x.Span())
}

func identExprOf(d *ast.VarDecl) *ast.Ident {
	id := ast.NewIdent(d.Name, d.Spn)
	id.Obj = d.Obj
	id.SetType(d.Obj.Type)
	return id
}

// assign generates code for an assignment statement.
func (b *builder) assign(s *ast.AssignStmt) {
	rhs := s.RHS
	if s.Op != token.ASSIGN {
		// Desugar x op= e into x = x op e; the LHS read shares the node.
		var binOp token.Kind
		switch s.Op {
		case token.PLUSASSIGN:
			binOp = token.PLUS
		case token.MINUSASSIGN:
			binOp = token.MINUS
		case token.STARASSIGN:
			binOp = token.STAR
		case token.SLASHASSIGN:
			binOp = token.SLASH
		}
		bin := ast.NewBinary(binOp, s.LHS, s.RHS, s.LHS.Span().Union(s.RHS.Span()))
		bin.SetType(s.LHS.Type())
		rhs = bin
	}

	switch lhs := s.LHS.(type) {
	case *ast.Ident:
		b.assignTo(lhs.Obj, lhs, rhs)
	case *ast.FieldExpr:
		base := structBaseObj(lhs)
		v := b.value(rhs, Operand{})
		a := b.fn.NewTemp(I)
		b.emit(&Instr{Kind: Addr, Dst: a, AddrObj: base})
		b.emit(&Instr{Kind: Store, A: a, B: v, Off: fieldOff(lhs)})
	case *ast.IndexExpr:
		addr, off := b.address(lhs)
		v := b.value(rhs, Operand{})
		b.emit(&Instr{Kind: Store, A: addr, B: v, Off: off})
	case *ast.UnaryExpr: // *p = e
		ptr := b.value(lhs.X, Operand{})
		v := b.value(rhs, Operand{})
		b.emit(&Instr{Kind: Store, A: ptr, B: v})
	default:
		panic(fmt.Sprintf("ir: bad assignment target %T", s.LHS))
	}
}

// assignTo stores the value of rhs into variable obj.
func (b *builder) assignTo(obj *ast.Object, lhs *ast.Ident, rhs ast.Expr) {
	if obj == nil {
		return
	}
	if st, ok := obj.Type.(*ast.StructType); ok {
		// Whole-struct assignment s1 = s2: copy field by field through the
		// aggregates' base addresses. sem guarantees rhs is a same-typed
		// struct variable.
		src, okSrc := rhs.(*ast.Ident)
		if !okSrc || src.Obj == nil {
			return
		}
		sa := b.fn.NewTemp(I)
		b.emit(&Instr{Kind: Addr, Dst: sa, AddrObj: src.Obj})
		da := b.fn.NewTemp(I)
		b.emit(&Instr{Kind: Addr, Dst: da, AddrObj: obj})
		for i, fld := range st.Fields {
			off := int64(st.FieldOffset(i))
			t := b.fn.NewTemp(TyOf(fld.Type))
			b.emit(&Instr{Kind: Load, Dst: t, A: sa, Off: off})
			b.emit(&Instr{Kind: Store, A: da, B: t, Off: off})
		}
		return
	}
	if obj.Kind == ast.ObjGlobal || obj.Addressed {
		v := b.value(rhs, Operand{})
		a := b.fn.NewTemp(I)
		b.emit(&Instr{Kind: Addr, Dst: a, AddrObj: obj})
		b.emit(&Instr{Kind: Store, A: a, B: v})
		return
	}
	// Promoted variable: emit the defining op directly into the variable.
	b.value(rhs, VarOf(obj))
}

// ---------------------------------------------------------------- exprs

// value generates code computing e. If dst is a valid operand the result is
// forced into dst (emitting the final operation with Dst=dst); otherwise a
// temp or immediate operand is returned.
func (b *builder) value(e ast.Expr, dst Operand) Operand {
	switch e := e.(type) {
	case *ast.IntLit:
		return b.intoDst(CI(e.Value), dst)
	case *ast.FloatLit:
		return b.intoDst(CF(e.Value), dst)

	case *ast.Ident:
		obj := e.Obj
		if obj == nil {
			return b.intoDst(CI(0), dst)
		}
		if _, isArr := obj.Type.(*ast.ArrayType); isArr || ast.IsStruct(obj.Type) {
			// Array (or aggregate) used as value: decays to its address.
			t := b.pickDst(dst, I)
			b.emit(&Instr{Kind: Addr, Dst: t, AddrObj: obj})
			return t
		}
		if obj.Kind == ast.ObjGlobal || obj.Addressed {
			a := b.fn.NewTemp(I)
			b.emit(&Instr{Kind: Addr, Dst: a, AddrObj: obj})
			t := b.pickDst(dst, TyOf(obj.Type))
			b.emit(&Instr{Kind: Load, Dst: t, A: a})
			return t
		}
		return b.intoDst(VarOf(obj), dst)

	case *ast.BinaryExpr:
		switch e.Op {
		case token.ANDAND, token.OROR:
			return b.logicalValue(e, dst)
		}
		op, swap := irOp(e.Op)
		x := b.value(e.X, Operand{})
		y := b.value(e.Y, Operand{})
		if swap {
			x, y = y, x
		}
		// Pointer arithmetic scales the integer side by the element size.
		x, y = b.scalePointerArith(e, x, y)
		ty := TyOf(e.Type())
		if e.Op == token.MINUS && isPtrLike(e.X.Type()) && isPtrLike(e.Y.Type()) {
			// ptr - ptr: byte difference divided by the element size.
			diff := b.fn.NewTemp(I)
			b.emit(&Instr{Kind: BinOp, Op: Sub, Dst: diff, A: x, B: y})
			t := b.pickDst(dst, I)
			b.emit(&Instr{Kind: BinOp, Op: Div, Dst: t, A: diff, B: CI(int64(elemSize(e.X.Type())))})
			return t
		}
		t := b.pickDst(dst, ty)
		b.emit(&Instr{Kind: BinOp, Op: op, Dst: t, A: x, B: y})
		return t

	case *ast.UnaryExpr:
		switch e.Op {
		case token.MINUS:
			x := b.value(e.X, Operand{})
			t := b.pickDst(dst, TyOf(e.Type()))
			b.emit(&Instr{Kind: UnOp, Op: Neg, Dst: t, A: x})
			return t
		case token.NOT:
			x := b.value(e.X, Operand{})
			t := b.pickDst(dst, I)
			b.emit(&Instr{Kind: UnOp, Op: Not, Dst: t, A: x})
			return t
		case token.STAR:
			ptr := b.value(e.X, Operand{})
			t := b.pickDst(dst, TyOf(e.Type()))
			b.emit(&Instr{Kind: Load, Dst: t, A: ptr})
			return t
		case token.AMP:
			switch x := e.X.(type) {
			case *ast.Ident:
				t := b.pickDst(dst, I)
				b.emit(&Instr{Kind: Addr, Dst: t, AddrObj: x.Obj})
				return t
			case *ast.IndexExpr:
				addr, off := b.address(x)
				t := b.pickDst(dst, I)
				if off == 0 {
					return b.intoDstForce(addr, t)
				}
				b.emit(&Instr{Kind: BinOp, Op: Add, Dst: t, A: addr, B: CI(off)})
				return t
			}
		}
		panic("ir: bad unary")

	case *ast.IndexExpr:
		addr, off := b.address(e)
		t := b.pickDst(dst, TyOf(e.Type()))
		b.emit(&Instr{Kind: Load, Dst: t, A: addr, Off: off})
		return t

	case *ast.FieldExpr:
		base := structBaseObj(e)
		if base == nil {
			return b.intoDst(CI(0), dst)
		}
		a := b.fn.NewTemp(I)
		b.emit(&Instr{Kind: Addr, Dst: a, AddrObj: base})
		t := b.pickDst(dst, TyOf(e.Type()))
		b.emit(&Instr{Kind: Load, Dst: t, A: a, Off: fieldOff(e)})
		return t

	case *ast.CallExpr:
		in := &Instr{Kind: Call, Callee: e.Fun.Name}
		for _, a := range e.Args {
			if st, ok := a.Type().(*ast.StructType); ok {
				// Flattened struct argument: push one value per field.
				id, okID := a.(*ast.Ident)
				if !okID || id.Obj == nil {
					continue
				}
				sa := b.fn.NewTemp(I)
				b.emit(&Instr{Kind: Addr, Dst: sa, AddrObj: id.Obj})
				for i, fld := range st.Fields {
					t := b.fn.NewTemp(TyOf(fld.Type))
					b.emit(&Instr{Kind: Load, Dst: t, A: sa, Off: int64(st.FieldOffset(i))})
					in.Args = append(in.Args, t)
				}
				continue
			}
			in.Args = append(in.Args, b.value(a, Operand{}))
		}
		retTy := e.Type()
		if retTy.Size() > 0 {
			in.Dst = b.pickDst(dst, TyOf(retTy))
		}
		b.emit(in)
		return in.Dst

	case *ast.CastExpr:
		x := b.value(e.X, Operand{})
		from := TyOf(e.X.Type())
		to := TyOf(e.To)
		if from == to {
			return b.intoDst(x, dst)
		}
		op := CvIF
		if to == I {
			op = CvFI
		}
		t := b.pickDst(dst, to)
		b.emit(&Instr{Kind: UnOp, Op: op, Dst: t, A: x})
		return t
	}
	panic(fmt.Sprintf("ir: unknown expression %T", e))
}

// scalePointerArith multiplies the int operand of ptr±int by the element
// size. Returns possibly-rewritten operands.
func (b *builder) scalePointerArith(e *ast.BinaryExpr, x, y Operand) (Operand, Operand) {
	if e.Op != token.PLUS && e.Op != token.MINUS {
		return x, y
	}
	xt, yt := e.X.Type(), e.Y.Type()
	xp := isPtrLike(xt)
	yp := isPtrLike(yt)
	switch {
	case xp && !yp && ast.IsInt(yt):
		t := b.fn.NewTemp(I)
		b.emit(&Instr{Kind: BinOp, Op: Mul, Dst: t, A: y, B: CI(int64(elemSize(xt)))})
		return x, t
	case yp && !xp && ast.IsInt(xt): // int + ptr (swapped by caller if needed)
		t := b.fn.NewTemp(I)
		b.emit(&Instr{Kind: BinOp, Op: Mul, Dst: t, A: x, B: CI(int64(elemSize(yt)))})
		return t, y
	case xp && yp && e.Op == token.MINUS:
		// ptr - ptr: subtract then divide by element size; done by caller
		// as a plain sub here, then scaled below via an extra div.
		return x, y
	}
	return x, y
}

func isPtrLike(t ast.Type) bool {
	switch t.(type) {
	case *ast.PointerType, *ast.ArrayType:
		return true
	}
	return false
}

func elemSize(t ast.Type) int {
	switch t := t.(type) {
	case *ast.PointerType:
		return t.Elem.Size()
	case *ast.ArrayType:
		return t.Elem.Size()
	}
	return 4
}

// logicalValue materializes a short-circuit && / || as a 0/1 temp.
func (b *builder) logicalValue(e *ast.BinaryExpr, dst Operand) Operand {
	t := b.pickDst(dst, I)
	trueB := b.fn.NewBlock()
	falseB := b.fn.NewBlock()
	join := b.fn.NewBlock()
	b.cond(e, trueB, falseB)
	b.startBlock(trueB)
	b.emit(&Instr{Kind: Copy, Dst: t, A: CI(1)})
	b.jumpTo(join)
	b.startBlock(falseB)
	b.emit(&Instr{Kind: Copy, Dst: t, A: CI(0)})
	b.jumpTo(join)
	b.startBlock(join)
	return t
}

// cond emits control flow evaluating e, branching to thenB / elseB.
func (b *builder) cond(e ast.Expr, thenB, elseB *Block) {
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ANDAND:
			mid := b.fn.NewBlock()
			b.cond(e.X, mid, elseB)
			b.startBlock(mid)
			b.cond(e.Y, thenB, elseB)
			return
		case token.OROR:
			mid := b.fn.NewBlock()
			b.cond(e.X, thenB, mid)
			b.startBlock(mid)
			b.cond(e.Y, thenB, elseB)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, elseB, thenB)
			return
		}
	}
	v := b.value(e, Operand{})
	b.setTerm(&Instr{Kind: Br, A: v}, thenB, elseB)
}

// structBaseObj returns the object of the struct variable a field selection
// reads from (sem guarantees the operand is a direct variable reference).
func structBaseObj(e *ast.FieldExpr) *ast.Object {
	if id, ok := e.X.(*ast.Ident); ok {
		return id.Obj
	}
	return nil
}

// fieldOff returns the byte offset of the selected field.
func fieldOff(e *ast.FieldExpr) int64 { return int64(4 * e.Idx) }

// address computes the address operand (and constant offset) for a[i].
func (b *builder) address(e *ast.IndexExpr) (Operand, int64) {
	base := b.value(e.X, Operand{}) // array decays to Addr, ptr is a value
	esize := int64(elemSize(e.X.Type()))
	if lit, ok := e.Index.(*ast.IntLit); ok {
		return base, lit.Value * esize
	}
	idx := b.value(e.Index, Operand{})
	scaled := b.fn.NewTemp(I)
	b.emit(&Instr{Kind: BinOp, Op: Mul, Dst: scaled, A: idx, B: CI(esize)})
	sum := b.fn.NewTemp(I)
	b.emit(&Instr{Kind: BinOp, Op: Add, Dst: sum, A: base, B: scaled})
	return sum, 0
}

// pickDst returns dst if valid, else a fresh temp of class ty.
func (b *builder) pickDst(dst Operand, ty Ty) Operand {
	if dst.Valid() {
		return dst
	}
	return b.fn.NewTemp(ty)
}

// intoDst returns v directly, or copies it into dst when one is required.
func (b *builder) intoDst(v Operand, dst Operand) Operand {
	if !dst.Valid() {
		return v
	}
	return b.intoDstForce(v, dst)
}

func (b *builder) intoDstForce(v Operand, dst Operand) Operand {
	b.emit(&Instr{Kind: Copy, Dst: dst, A: v})
	return dst
}

// irOp maps an AST binary operator to an IR op; swap=true means operands
// must be exchanged (for > and >=, canonicalized to < and <=).
func irOp(k token.Kind) (Op, bool) {
	switch k {
	case token.PLUS:
		return Add, false
	case token.MINUS:
		return Sub, false
	case token.STAR:
		return Mul, false
	case token.SLASH:
		return Div, false
	case token.PERCENT:
		return Rem, false
	case token.SHL:
		return Shl, false
	case token.SHR:
		return Shr, false
	case token.OR:
		return BOr, false
	case token.XOR:
		return BXor, false
	case token.EQ:
		return Eq, false
	case token.NEQ:
		return Ne, false
	case token.LT:
		return Lt, false
	case token.LEQ:
		return Le, false
	case token.GT:
		return Gt, false
	case token.GEQ:
		return Ge, false
	}
	panic(fmt.Sprintf("ir: no IR op for %s", k))
}
