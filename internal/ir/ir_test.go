package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sem"
)

func build(t *testing.T, src string) *Program {
	t.Helper()
	p, err := sem.CheckSource("test.mc", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	return Build(p)
}

func TestBuildSimple(t *testing.T) {
	prog := build(t, `int main() { int x = 1 + 2; return x; }`)
	f := prog.LookupFunc("main")
	if f == nil || f.Entry == nil {
		t.Fatal("no main")
	}
	// x = 1+2 should emit a single BinOp directly into x.
	found := false
	for _, in := range f.Entry.Instrs {
		if in.Kind == BinOp && in.Dst.Kind == Var && in.Dst.Obj.Name == "x" {
			found = true
		}
	}
	if !found {
		t.Errorf("assignment should target the variable directly:\n%s", f)
	}
}

func TestBuildControlFlowShape(t *testing.T) {
	prog := build(t, `
int main() {
	int x = 0;
	if (x < 1) { x = 1; } else { x = 2; }
	while (x < 10) { x = x + 1; }
	return x;
}`)
	f := prog.LookupFunc("main")
	branches, rets := 0, 0
	for _, b := range f.Blocks {
		if tm := b.Term(); tm != nil {
			switch tm.Kind {
			case Br:
				branches++
				if len(b.Succs) != 2 {
					t.Errorf("branch block %s has %d succs", b, len(b.Succs))
				}
			case Ret:
				rets++
			}
		}
	}
	if branches != 2 { // if cond + while cond
		t.Errorf("got %d branches, want 2", branches)
	}
	if rets != 1 {
		t.Errorf("got %d returns, want 1", rets)
	}
	// preds must be consistent with succs
	f.RecomputePreds()
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("%s missing from preds of %s", b, s)
			}
		}
	}
}

func TestBuildShortCircuit(t *testing.T) {
	// f(0) must not evaluate the division (short-circuit &&).
	prog := build(t, `
int main() {
	int d = 0;
	int x = 0;
	if (d != 0 && 10 / d > 1) { x = 1; }
	return x;
}`)
	ret, _, err := NewInterp(prog).Run()
	if err != nil {
		t.Fatalf("short-circuit failed to protect the division: %v", err)
	}
	if ret != 0 {
		t.Errorf("ret = %d", ret)
	}
}

func TestBuildStatementTags(t *testing.T) {
	prog := build(t, `
int main() {
	int a = 1;
	int b = 2;
	print(a + b);
	return 0;
}`)
	f := prog.LookupFunc("main")
	seen := map[int]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Stmt >= 0 {
				seen[in.Stmt] = true
			}
		}
	}
	for s := 0; s < 4; s++ {
		if !seen[s] {
			t.Errorf("no instruction tagged with statement %d", s)
		}
	}
}

func TestBuildOrigIdxMonotonic(t *testing.T) {
	prog := build(t, `
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 3; i++) { s += i; }
	return s;
}`)
	f := prog.LookupFunc("main")
	seen := map[int]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if seen[in.OrigIdx] {
				t.Errorf("duplicate OrigIdx %d", in.OrigIdx)
			}
			seen[in.OrigIdx] = true
		}
	}
}

// ---------------------------------------------------------------- operands

func TestOperandSame(t *testing.T) {
	if !CI(5).Same(CI(5)) || CI(5).Same(CI(6)) {
		t.Error("const equality broken")
	}
	if !TempOf(3, I).Same(TempOf(3, I)) || TempOf(3, I).Same(TempOf(4, I)) {
		t.Error("temp equality broken")
	}
	if CI(1).Same(CF(1)) {
		t.Error("int and float consts must differ")
	}
}

// Property: operand keys are injective over small ints and temps.
func TestQuickOperandKeys(t *testing.T) {
	f := func(a, b int16) bool {
		oa, ob := CI(int64(a)), CI(int64(b))
		return (oa.Key() == ob.Key()) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b uint8) bool {
		ta, tb := TempOf(int(a), I), TempOf(int(b), I)
		return (ta.Key() == tb.Key()) == (a == b)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: ExprKey is stable under commutative operand swap for
// commutative ops, and differs for non-commutative ones (when operands
// differ).
func TestQuickExprKeyCommutativity(t *testing.T) {
	f := func(x, y uint8) bool {
		a, b := TempOf(int(x), I), TempOf(int(y), I)
		add1 := &Instr{Kind: BinOp, Op: Add, Dst: TempOf(100, I), A: a, B: b}
		add2 := &Instr{Kind: BinOp, Op: Add, Dst: TempOf(101, I), A: b, B: a}
		if add1.ExprKey() != add2.ExprKey() {
			return false
		}
		sub1 := &Instr{Kind: BinOp, Op: Sub, Dst: TempOf(100, I), A: a, B: b}
		sub2 := &Instr{Kind: BinOp, Op: Sub, Dst: TempOf(101, I), A: b, B: a}
		if x != y && sub1.ExprKey() == sub2.ExprKey() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrReplaceUses(t *testing.T) {
	in := &Instr{Kind: BinOp, Op: Add, Dst: TempOf(9, I), A: TempOf(1, I), B: TempOf(1, I)}
	n := in.ReplaceUses(TempOf(1, I), TempOf(2, I))
	if n != 2 || !in.A.Same(TempOf(2, I)) || !in.B.Same(TempOf(2, I)) {
		t.Errorf("replace: n=%d %v", n, in)
	}
	// destination must not be replaced
	if !in.Dst.Same(TempOf(9, I)) {
		t.Error("dst was replaced")
	}
}

func TestInstrClone(t *testing.T) {
	in := &Instr{Kind: Call, Callee: "f", Args: []Operand{CI(1), CI(2)}, Stmt: 3}
	c := in.Clone()
	c.Args[0] = CI(99)
	if in.Args[0].Int == 99 {
		t.Error("clone shares Args slice")
	}
}

// ---------------------------------------------------------------- interp

func TestInterpArithmetic(t *testing.T) {
	prog := build(t, `
int main() {
	int a = 7;
	int b = -3;
	print(a + b, " ", a - b, " ", a * b, " ", a / b, " ", a % b, "\n");
	print(a << 2, " ", a >> 1, " ", (a | 8), " ", (a ^ 5), "\n");
	print(a < b, a > b, a == b, a != b, a <= b, a >= b, "\n");
	float x = 2.5;
	float y = 0.5;
	print(x + y, " ", x * y, " ", x / y, "\n");
	return 0;
}`)
	_, out, err := NewInterp(prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := "4 10 -21 -2 1\n28 3 15 2\n010101\n3 1.25 5\n"
	if out != want {
		t.Errorf("got %q want %q", out, want)
	}
}

func TestInterpDivByZero(t *testing.T) {
	prog := build(t, `int main() { int z = 0; return 5 / z; }`)
	_, _, err := NewInterp(prog).Run()
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("expected division-by-zero error, got %v", err)
	}
}

func TestInterpOutOfBounds(t *testing.T) {
	prog := build(t, `int main() { int a[4]; int i = 9; a[i] = 1; return 0; }`)
	_, _, err := NewInterp(prog).Run()
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("expected bounds error, got %v", err)
	}
}

func TestInterpStepLimit(t *testing.T) {
	prog := build(t, `int main() { while (1) { } return 0; }`)
	ip := NewInterp(prog)
	ip.MaxSteps = 1000
	_, _, err := ip.Run()
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("expected step limit error, got %v", err)
	}
}

func TestInterpGlobalInit(t *testing.T) {
	prog := build(t, `
int g = 41;
float h = 0.5;
int main() { print(g, " ", h * 2.0); return g; }`)
	ret, out, err := NewInterp(prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ret != 41 || out != "41 1" {
		t.Errorf("ret=%d out=%q", ret, out)
	}
}

func TestInterpInt32Wrap(t *testing.T) {
	prog := build(t, `
int main() {
	int big = 2000000000;
	int sum = big + big;   // wraps like a 32-bit machine
	print(sum);
	return 0;
}`)
	_, out, err := NewInterp(prog).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out != "-294967296" {
		t.Errorf("32-bit wrap: got %q", out)
	}
}
