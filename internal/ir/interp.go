package ir

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

// Interp is a direct IR interpreter. It is used for differential testing of
// the optimizer (unoptimized and optimized IR must print the same output)
// and by examples that want program results without lowering to machine
// code. The debugger proper runs on the machine-level simulator instead.
type Interp struct {
	prog *Program
	out  *strings.Builder

	globals map[*ast.Object]*memObj
	steps   int
	// MaxSteps bounds execution to catch runaway loops in tests.
	MaxSteps int
}

// memObj is a memory-allocated object (global, array, addressed local, or
// aggregate). Arrays and scalars are homogeneous (isF selects the plane);
// structs may mix int and float fields, so they carry a per-slot flag.
type memObj struct {
	words []int64
	fls   []float64
	isF   bool
	slotF []bool // non-nil for structs: per-slot float flag
}

func newMemObj(o *ast.Object) *memObj {
	if st, ok := o.Type.(*ast.StructType); ok {
		n := len(st.Fields)
		m := &memObj{words: make([]int64, n), fls: make([]float64, n), slotF: make([]bool, n)}
		for i, f := range st.Fields {
			m.slotF[i] = ast.IsFloat(f.Type)
		}
		return m
	}
	n := 1
	elemF := ast.IsFloat(o.Type)
	if a, ok := o.Type.(*ast.ArrayType); ok {
		n = a.Len
		elemF = ast.IsFloat(a.Elem)
	}
	m := &memObj{isF: elemF}
	if elemF {
		m.fls = make([]float64, n)
	} else {
		m.words = make([]int64, n)
	}
	return m
}

// value is one runtime value: an int word or a float.
type value struct {
	i   int64
	f   float64
	isF bool
	// addr: pointer values reference a memObj plus byte offset.
	obj *memObj
	off int64
}

func iv(x int64) value   { return value{i: int64(int32(x))} }
func fv(x float64) value { return value{f: x, isF: true} }

// frame is one activation record.
type frame struct {
	vars   map[int]value // promoted variable values, by Object.ID
	temps  map[int]value // temp values
	locals map[*ast.Object]*memObj
}

// NewInterp prepares an interpreter for prog.
func NewInterp(prog *Program) *Interp {
	ip := &Interp{
		prog:     prog,
		out:      &strings.Builder{},
		globals:  map[*ast.Object]*memObj{},
		MaxSteps: 50_000_000,
	}
	for _, g := range prog.Globals {
		m := newMemObj(g)
		if init, ok := prog.GlobalInit[g]; ok {
			if m.isF {
				if init.Kind == ConstF {
					m.fls[0] = init.Fl
				} else {
					m.fls[0] = float64(init.Int)
				}
			} else {
				if init.Kind == ConstI {
					m.words[0] = init.Int
				} else {
					m.words[0] = int64(init.Fl)
				}
			}
		}
		ip.globals[g] = m
	}
	return ip
}

// Run executes main and returns its exit value and the captured output.
func (ip *Interp) Run() (int64, string, error) {
	main := ip.prog.LookupFunc("main")
	if main == nil {
		return 0, "", fmt.Errorf("interp: no main function")
	}
	ret, err := ip.call(main, nil)
	return ret.i, ip.out.String(), err
}

// Output returns everything printed so far.
func (ip *Interp) Output() string { return ip.out.String() }

func (ip *Interp) call(f *Func, args []value) (value, error) {
	fr := &frame{
		vars:   map[int]value{},
		temps:  map[int]value{},
		locals: map[*ast.Object]*memObj{},
	}
	for _, o := range f.FrameObjects {
		fr.locals[o] = newMemObj(o)
	}

	b := f.Entry
	for {
		var next *Block
		for _, in := range b.Instrs {
			ip.steps++
			if ip.steps > ip.MaxSteps {
				return value{}, fmt.Errorf("interp: step limit exceeded in %s", f.Name)
			}
			switch in.Kind {
			case MarkDead, MarkAvail:
				// debugger markers: no runtime effect

			case GetParam:
				if in.ParamIdx < len(args) {
					fr.set(in.Dst, args[in.ParamIdx])
				}

			case Copy:
				fr.set(in.Dst, fr.get(in.A))

			case BinOp:
				a, bo := fr.get(in.A), fr.get(in.B)
				v, err := evalBin(in.Op, a, bo)
				if err != nil {
					return value{}, fmt.Errorf("%s: %w", f.Name, err)
				}
				fr.set(in.Dst, v)

			case UnOp:
				v, err := evalUn(in.Op, fr.get(in.A))
				if err != nil {
					return value{}, err
				}
				fr.set(in.Dst, v)

			case Addr:
				m := fr.locals[in.AddrObj]
				if m == nil {
					m = ip.globals[in.AddrObj]
				}
				if m == nil {
					return value{}, fmt.Errorf("interp: address of unknown object %s", in.AddrObj.Name)
				}
				fr.set(in.Dst, value{obj: m})

			case Load:
				p := fr.get(in.A)
				v, err := loadMem(p, in.Off)
				if err != nil {
					return value{}, fmt.Errorf("%s (stmt %d): %w", f.Name, in.Stmt, err)
				}
				fr.set(in.Dst, v)

			case Store:
				p := fr.get(in.A)
				if err := storeMem(p, in.Off, fr.get(in.B)); err != nil {
					return value{}, fmt.Errorf("%s (stmt %d): %w", f.Name, in.Stmt, err)
				}

			case Call:
				callee := ip.prog.LookupFunc(in.Callee)
				if callee == nil {
					return value{}, fmt.Errorf("interp: call of unknown function %q", in.Callee)
				}
				var as []value
				for _, a := range in.Args {
					as = append(as, fr.get(a))
				}
				rv, err := ip.call(callee, as)
				if err != nil {
					return value{}, err
				}
				if in.Dst.Valid() {
					fr.set(in.Dst, rv)
				}

			case Print:
				for _, a := range in.PrintFmt {
					if a.IsStr {
						ip.out.WriteString(a.Str)
					} else {
						v := fr.get(a.Val)
						if v.isF {
							fmt.Fprintf(ip.out, "%g", v.f)
						} else if v.obj != nil {
							fmt.Fprintf(ip.out, "<ptr+%d>", v.off)
						} else {
							fmt.Fprintf(ip.out, "%d", v.i)
						}
					}
				}

			case Ret:
				if in.A.Valid() {
					return fr.get(in.A), nil
				}
				return value{}, nil

			case Jmp:
				next = b.Succs[0]

			case Br:
				c := fr.get(in.A)
				taken := c.i != 0 || (c.isF && c.f != 0) || c.obj != nil
				if taken {
					next = b.Succs[0]
				} else {
					next = b.Succs[1]
				}
			}
		}
		if next == nil {
			return value{}, nil // fell off the end (void return)
		}
		b = next
	}
}

func (fr *frame) get(o Operand) value {
	switch o.Kind {
	case ConstI:
		return iv(o.Int)
	case ConstF:
		return fv(o.Fl)
	case Var:
		return fr.vars[o.Obj.ID]
	case Temp:
		return fr.temps[o.TID]
	}
	return value{}
}

func (fr *frame) set(o Operand, v value) {
	switch o.Kind {
	case Var:
		fr.vars[o.Obj.ID] = v
	case Temp:
		fr.temps[o.TID] = v
	}
}

func loadMem(p value, off int64) (value, error) {
	if p.obj == nil {
		return value{}, fmt.Errorf("load through non-pointer")
	}
	idx := (p.off + off) / 4
	m := p.obj
	if m.slotF != nil {
		if idx < 0 || idx >= int64(len(m.slotF)) {
			return value{}, fmt.Errorf("load out of bounds (field %d of %d)", idx, len(m.slotF))
		}
		if m.slotF[idx] {
			return fv(m.fls[idx]), nil
		}
		return iv(m.words[idx]), nil
	}
	if m.isF {
		if idx < 0 || idx >= int64(len(m.fls)) {
			return value{}, fmt.Errorf("load out of bounds (index %d of %d)", idx, len(m.fls))
		}
		return fv(m.fls[idx]), nil
	}
	if idx < 0 || idx >= int64(len(m.words)) {
		return value{}, fmt.Errorf("load out of bounds (index %d of %d)", idx, len(m.words))
	}
	return iv(m.words[idx]), nil
}

func storeMem(p value, off int64, v value) error {
	if p.obj == nil {
		return fmt.Errorf("store through non-pointer")
	}
	idx := (p.off + off) / 4
	m := p.obj
	if m.slotF != nil {
		if idx < 0 || idx >= int64(len(m.slotF)) {
			return fmt.Errorf("store out of bounds (field %d of %d)", idx, len(m.slotF))
		}
		if m.slotF[idx] {
			x := v.f
			if !v.isF {
				x = float64(v.i)
			}
			m.fls[idx] = x
			return nil
		}
		if v.obj != nil {
			return fmt.Errorf("store of pointer into memory is not supported by the IR interpreter")
		}
		x := v.i
		if v.isF {
			x = int64(v.f)
		}
		m.words[idx] = int64(int32(x))
		return nil
	}
	if m.isF {
		if idx < 0 || idx >= int64(len(m.fls)) {
			return fmt.Errorf("store out of bounds (index %d of %d)", idx, len(m.fls))
		}
		x := v.f
		if !v.isF {
			x = float64(v.i)
		}
		m.fls[idx] = x
		return nil
	}
	if idx < 0 || idx >= int64(len(m.words)) {
		return fmt.Errorf("store out of bounds (index %d of %d)", idx, len(m.words))
	}
	if v.obj != nil {
		return fmt.Errorf("store of pointer into memory is not supported by the IR interpreter")
	}
	x := v.i
	if v.isF {
		x = int64(v.f)
	}
	m.words[idx] = int64(int32(x))
	return nil
}

func evalBin(op Op, a, b value) (value, error) {
	// Pointer arithmetic: ptr ± int adjusts the offset.
	if a.obj != nil || b.obj != nil {
		switch op {
		case Add:
			if a.obj != nil && b.obj == nil {
				return value{obj: a.obj, off: a.off + b.i}, nil
			}
			if b.obj != nil && a.obj == nil {
				return value{obj: b.obj, off: b.off + a.i}, nil
			}
		case Sub:
			if a.obj != nil && b.obj == nil {
				return value{obj: a.obj, off: a.off - b.i}, nil
			}
			if a.obj != nil && b.obj != nil && a.obj == b.obj {
				return iv(a.off - b.off), nil
			}
		case Eq:
			return iv(b2i(a.obj == b.obj && a.off == b.off)), nil
		case Ne:
			return iv(b2i(!(a.obj == b.obj && a.off == b.off))), nil
		case Lt:
			return iv(b2i(a.off < b.off)), nil
		case Le:
			return iv(b2i(a.off <= b.off)), nil
		case Gt:
			return iv(b2i(a.off > b.off)), nil
		case Ge:
			return iv(b2i(a.off >= b.off)), nil
		}
		return value{}, fmt.Errorf("interp: bad pointer arithmetic %s", op)
	}
	if a.isF || b.isF {
		x, y := a.f, b.f
		if !a.isF {
			x = float64(a.i)
		}
		if !b.isF {
			y = float64(b.i)
		}
		switch op {
		case Add:
			return fv(x + y), nil
		case Sub:
			return fv(x - y), nil
		case Mul:
			return fv(x * y), nil
		case Div:
			if y == 0 {
				return value{}, fmt.Errorf("float division by zero")
			}
			return fv(x / y), nil
		case Eq:
			return iv(b2i(x == y)), nil
		case Ne:
			return iv(b2i(x != y)), nil
		case Lt:
			return iv(b2i(x < y)), nil
		case Le:
			return iv(b2i(x <= y)), nil
		case Gt:
			return iv(b2i(x > y)), nil
		case Ge:
			return iv(b2i(x >= y)), nil
		}
		return value{}, fmt.Errorf("interp: bad float op %s", op)
	}
	x, y := a.i, b.i
	switch op {
	case Add:
		return iv(x + y), nil
	case Sub:
		return iv(x - y), nil
	case Mul:
		return iv(x * y), nil
	case Div:
		if y == 0 {
			return value{}, fmt.Errorf("integer division by zero")
		}
		return iv(x / y), nil
	case Rem:
		if y == 0 {
			return value{}, fmt.Errorf("integer remainder by zero")
		}
		return iv(x % y), nil
	case Shl:
		return iv(x << (uint(y) & 31)), nil
	case Shr:
		return iv(x >> (uint(y) & 31)), nil
	case BOr:
		return iv(x | y), nil
	case BXor:
		return iv(x ^ y), nil
	case Eq:
		return iv(b2i(x == y)), nil
	case Ne:
		return iv(b2i(x != y)), nil
	case Lt:
		return iv(b2i(x < y)), nil
	case Le:
		return iv(b2i(x <= y)), nil
	case Gt:
		return iv(b2i(x > y)), nil
	case Ge:
		return iv(b2i(x >= y)), nil
	}
	return value{}, fmt.Errorf("interp: bad int op %s", op)
}

func evalUn(op Op, a value) (value, error) {
	switch op {
	case Neg:
		if a.isF {
			return fv(-a.f), nil
		}
		return iv(-a.i), nil
	case Not:
		t := a.i == 0 && !a.isF && a.obj == nil
		if a.isF {
			t = a.f == 0
		}
		return iv(b2i(t)), nil
	case CvIF:
		return fv(float64(a.i)), nil
	case CvFI:
		return iv(int64(a.f)), nil
	}
	return value{}, fmt.Errorf("interp: bad unary op %s", op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
