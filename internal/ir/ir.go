// Package ir defines mcc's mid-level intermediate representation: a
// control-flow graph of basic blocks holding quad-style instructions over
// compiler temporaries and promoted source variables.
//
// The IR carries the debugging bookkeeping of §3 of the paper:
//
//   - every instruction records the source statement it implements (Stmt)
//     and its original emission order (OrigIdx);
//   - instructions inserted by code motion are annotated Hoisted or Sunk;
//   - expressions that replaced a fetch of a source variable record that
//     variable (ReplacedVar) for recovery;
//   - deleted assignments are replaced by marker pseudo-instructions
//     (MarkDead, MarkAvail) that optimizations ignore but the debugger
//     analyses consume.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/ast"
)

// Ty is an IR value class: integer word (also pointers) or float.
type Ty int8

// Value classes.
const (
	I Ty = iota // 32-bit integer / pointer word
	F           // floating point
)

func (t Ty) String() string {
	if t == F {
		return "f"
	}
	return "i"
}

// TyOf maps a checked AST type to its IR value class.
func TyOf(t ast.Type) Ty {
	if ast.IsFloat(t) {
		return F
	}
	return I
}

// ---------------------------------------------------------------- operands

// OpdKind discriminates Operand.
type OpdKind int8

// Operand kinds.
const (
	NoOpd  OpdKind = iota
	Temp           // compiler temporary
	Var            // promoted source variable (non-addressed local/param)
	ConstI         // integer constant
	ConstF         // float constant
)

// Operand is one instruction operand or destination.
type Operand struct {
	Kind OpdKind
	Ty   Ty
	TID  int         // temp number (Kind == Temp)
	Obj  *ast.Object // source variable (Kind == Var)
	Int  int64       // Kind == ConstI
	Fl   float64     // Kind == ConstF
}

// TempOf makes a temp operand.
func TempOf(id int, ty Ty) Operand { return Operand{Kind: Temp, Ty: ty, TID: id} }

// VarOf makes a promoted-variable operand.
func VarOf(o *ast.Object) Operand { return Operand{Kind: Var, Ty: TyOf(o.Type), Obj: o} }

// CI makes an integer constant operand.
func CI(v int64) Operand { return Operand{Kind: ConstI, Ty: I, Int: v} }

// CF makes a float constant operand.
func CF(v float64) Operand { return Operand{Kind: ConstF, Ty: F, Fl: v} }

// IsConst reports whether o is a constant.
func (o Operand) IsConst() bool { return o.Kind == ConstI || o.Kind == ConstF }

// Valid reports whether the operand is present.
func (o Operand) Valid() bool { return o.Kind != NoOpd }

// Same reports operand identity (same temp, same variable, or equal const).
func (o Operand) Same(p Operand) bool {
	if o.Kind != p.Kind {
		return false
	}
	switch o.Kind {
	case Temp:
		return o.TID == p.TID
	case Var:
		return o.Obj == p.Obj
	case ConstI:
		return o.Int == p.Int
	case ConstF:
		return o.Fl == p.Fl
	}
	return true
}

// Key returns a string key identifying the operand within a function,
// used to build expression keys for redundancy elimination.
func (o Operand) Key() string {
	switch o.Kind {
	case Temp:
		return fmt.Sprintf("t%d", o.TID)
	case Var:
		return fmt.Sprintf("v%d.%s", o.Obj.ID, o.Obj.Name)
	case ConstI:
		return fmt.Sprintf("#%d", o.Int)
	case ConstF:
		return fmt.Sprintf("#%g", o.Fl)
	}
	return "_"
}

func (o Operand) String() string {
	switch o.Kind {
	case Temp:
		return fmt.Sprintf("t%d", o.TID)
	case Var:
		return o.Obj.Name
	case ConstI:
		return fmt.Sprintf("%d", o.Int)
	case ConstF:
		return fmt.Sprintf("%g", o.Fl)
	}
	return "_"
}

// ---------------------------------------------------------------- ops

// Op is an arithmetic/comparison/conversion operator.
type Op int8

// Operators.
const (
	Add Op = iota
	Sub
	Mul
	Div
	Rem
	Shl
	Shr
	BOr
	BXor
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	Neg  // unary minus
	Not  // logical not (x == 0)
	CvIF // int -> float
	CvFI // float -> int (truncate)
)

var opNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Rem: "rem",
	Shl: "shl", Shr: "shr", BOr: "or", BXor: "xor",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	Neg: "neg", Not: "not", CvIF: "cvif", CvFI: "cvfi",
}

func (o Op) String() string { return opNames[o] }

// IsCmp reports whether the op is a comparison (always yields int 0/1).
func (o Op) IsCmp() bool { return o >= Eq && o <= Ge }

// IsCommutative reports whether a op b == b op a.
func (o Op) IsCommutative() bool {
	switch o {
	case Add, Mul, BOr, BXor, Eq, Ne:
		return true
	}
	return false
}

// ---------------------------------------------------------------- instrs

// Kind identifies the instruction form.
type Kind int8

// Instruction kinds.
const (
	BinOp    Kind = iota // Dst = A Op B
	UnOp                 // Dst = Op A
	Copy                 // Dst = A
	Load                 // Dst = mem[A + Off]
	Store                // mem[A + Off] = B
	Addr                 // Dst = address of AddrObj (global / frame object)
	Call                 // Dst? = Callee(Args...)
	Print                // print(PrintArgs...)
	Ret                  // return A?
	Jmp                  // goto Succs[0]
	Br                   // if A != 0 goto Succs[0] else Succs[1]
	GetParam             // Dst = incoming parameter #ParamIdx

	// Debugger marker pseudo-instructions (§3 of the paper). They are
	// ignored by optimizations and carry no runtime semantics.
	MarkDead  // an assignment to MarkObj at Stmt was deleted as dead
	MarkAvail // an assignment to MarkObj at Stmt was deleted as redundant
)

// Ann holds the per-instruction debugging annotations of §3.
type Ann struct {
	// Hoisted marks code inserted by a hoisting transformation (PRE
	// insertion, loop-invariant code motion). A hoisted assignment to a
	// source variable generates hoist reach.
	Hoisted bool
	// Sunk marks code inserted by a sinking transformation (partial dead
	// code elimination).
	Sunk bool
	// InsertedBy names the optimization pass that synthesized this
	// instruction ("" for code emitted from source).
	InsertedBy string
	// ReplacedVar, when non-nil, records that this instruction's value
	// replaced a fetch of the given source variable in the original
	// program (copy/assignment propagation); the variable's value can be
	// recovered from this instruction's result (§2.5).
	ReplacedVar *ast.Object
	// Recover, when non-nil, describes a linear recovery V = (value-B)/A
	// established by induction-variable elimination; the debugger can
	// reconstruct V from the strength-reduced temporary.
	Recover *LinRecovery
}

// LinRecovery records V = (X - B) / A where X is this instruction's result.
type LinRecovery struct {
	Var  *ast.Object
	A, B int64
}

// Instr is one IR instruction. A single struct (rather than an interface
// per kind) keeps rewriting passes simple: they mutate fields in place.
type Instr struct {
	Kind Kind
	Op   Op
	Dst  Operand // destination (Temp or Var); NoOpd if none
	A, B Operand // operands
	Off  int64   // constant addressing offset for Load/Store

	AddrObj  *ast.Object // Addr: the object whose address is taken
	Callee   string      // Call
	Args     []Operand   // Call
	PrintFmt []PrintArg  // Print
	ParamIdx int         // GetParam

	MarkObj *ast.Object // MarkDead / MarkAvail

	// Source bookkeeping.
	Stmt    int // source statement ID; -1 for synthesized code
	OrigIdx int // emission sequence number, for scheduling analysis

	Ann Ann
}

// PrintArg is one element of a print instruction.
type PrintArg struct {
	Str   string
	IsStr bool
	Val   Operand
}

// IsMarker reports whether the instruction is a debugger marker.
func (i *Instr) IsMarker() bool { return i.Kind == MarkDead || i.Kind == MarkAvail }

// IsTerm reports whether the instruction ends a basic block.
func (i *Instr) IsTerm() bool { return i.Kind == Jmp || i.Kind == Br || i.Kind == Ret }

// HasDst reports whether the instruction writes a destination operand.
func (i *Instr) HasDst() bool { return i.Dst.Valid() }

// Uses appends the operands read by the instruction to buf and returns it.
func (i *Instr) Uses(buf []Operand) []Operand {
	add := func(o Operand) {
		if o.Kind == Temp || o.Kind == Var {
			buf = append(buf, o)
		}
	}
	switch i.Kind {
	case BinOp, Store:
		add(i.A)
		add(i.B)
	case UnOp, Copy, Load, Br:
		add(i.A)
	case Ret:
		add(i.A)
	case Call:
		for _, a := range i.Args {
			add(a)
		}
	case Print:
		for _, a := range i.PrintFmt {
			if !a.IsStr {
				add(a.Val)
			}
		}
	}
	return buf
}

// ReplaceUses substitutes operand old with new in all use positions,
// returning the number of replacements.
func (i *Instr) ReplaceUses(old, new Operand) int {
	n := 0
	rep := func(o *Operand) {
		if o.Same(old) {
			*o = new
			n++
		}
	}
	switch i.Kind {
	case BinOp:
		rep(&i.A)
		rep(&i.B)
	case Store:
		rep(&i.A)
		rep(&i.B)
	case UnOp, Copy, Load, Br, Ret:
		rep(&i.A)
	case Call:
		for k := range i.Args {
			rep(&i.Args[k])
		}
	case Print:
		for k := range i.PrintFmt {
			if !i.PrintFmt[k].IsStr {
				rep(&i.PrintFmt[k].Val)
			}
		}
	}
	return n
}

// ExprKey returns a canonical string identifying the value computed by a
// BinOp/UnOp/Copy/Load instruction, for redundancy detection. Commutative
// operands are ordered canonically. Returns "" for instructions whose value
// cannot be keyed (calls, loads — loads are not pure across stores).
func (i *Instr) ExprKey() string {
	switch i.Kind {
	case BinOp:
		a, b := i.A.Key(), i.B.Key()
		if i.Op.IsCommutative() && b < a {
			a, b = b, a
		}
		return fmt.Sprintf("%s %s %s", i.Op, a, b)
	case UnOp:
		return fmt.Sprintf("%s %s", i.Op, i.A.Key())
	case Copy:
		return fmt.Sprintf("copy %s", i.A.Key())
	case Addr:
		return fmt.Sprintf("addr v%d.%s", i.AddrObj.ID, i.AddrObj.Name)
	}
	return ""
}

// Clone returns a deep copy of the instruction (slices copied).
func (i *Instr) Clone() *Instr {
	c := *i
	if i.Args != nil {
		c.Args = append([]Operand(nil), i.Args...)
	}
	if i.PrintFmt != nil {
		c.PrintFmt = append([]PrintArg(nil), i.PrintFmt...)
	}
	return &c
}

func (i *Instr) String() string {
	ann := ""
	if i.Ann.Hoisted {
		ann += " !hoisted"
	}
	if i.Ann.Sunk {
		ann += " !sunk"
	}
	if i.Ann.ReplacedVar != nil {
		ann += " !replaces:" + i.Ann.ReplacedVar.Name
	}
	if i.Ann.Recover != nil {
		ann += fmt.Sprintf(" !recover:%s=(x-%d)/%d", i.Ann.Recover.Var.Name, i.Ann.Recover.B, i.Ann.Recover.A)
	}
	stmt := ""
	if i.Stmt >= 0 {
		stmt = fmt.Sprintf("  ; s%d", i.Stmt)
	}
	switch i.Kind {
	case BinOp:
		return fmt.Sprintf("%s = %s %s, %s%s%s", i.Dst, i.Op, i.A, i.B, stmt, ann)
	case UnOp:
		return fmt.Sprintf("%s = %s %s%s%s", i.Dst, i.Op, i.A, stmt, ann)
	case Copy:
		return fmt.Sprintf("%s = %s%s%s", i.Dst, i.A, stmt, ann)
	case Load:
		return fmt.Sprintf("%s = load [%s+%d]%s%s", i.Dst, i.A, i.Off, stmt, ann)
	case Store:
		return fmt.Sprintf("store [%s+%d] = %s%s%s", i.A, i.Off, i.B, stmt, ann)
	case Addr:
		return fmt.Sprintf("%s = addr %s%s%s", i.Dst, i.AddrObj.Name, stmt, ann)
	case Call:
		if i.Dst.Valid() {
			return fmt.Sprintf("%s = call %s(%s)%s%s", i.Dst, i.Callee, opdList(i.Args), stmt, ann)
		}
		return fmt.Sprintf("call %s(%s)%s%s", i.Callee, opdList(i.Args), stmt, ann)
	case Print:
		var parts []string
		for _, a := range i.PrintFmt {
			if a.IsStr {
				parts = append(parts, fmt.Sprintf("%q", a.Str))
			} else {
				parts = append(parts, a.Val.String())
			}
		}
		return fmt.Sprintf("print %s%s", strings.Join(parts, ", "), stmt)
	case Ret:
		if i.A.Valid() {
			return fmt.Sprintf("ret %s%s", i.A, stmt)
		}
		return "ret" + stmt
	case Jmp:
		return "jmp" + stmt
	case Br:
		return fmt.Sprintf("br %s%s", i.A, stmt)
	case GetParam:
		return fmt.Sprintf("%s = param %d%s", i.Dst, i.ParamIdx, stmt)
	case MarkDead:
		return fmt.Sprintf("-- marker: dead assignment to %s  ; s%d", i.MarkObj.Name, i.Stmt)
	case MarkAvail:
		return fmt.Sprintf("-- marker: redundant assignment to %s  ; s%d", i.MarkObj.Name, i.Stmt)
	}
	return "?"
}

func opdList(os []Operand) string {
	parts := make([]string, len(os))
	for i, o := range os {
		parts[i] = o.String()
	}
	return strings.Join(parts, ", ")
}

// ---------------------------------------------------------------- blocks

// Block is one basic block. The last instruction is the terminator; Succs
// mirror the terminator (Br: Succs[0]=taken, Succs[1]=fallthrough).
type Block struct {
	ID     int
	Instrs []*Instr
	Succs  []*Block
	Preds  []*Block

	// LoopDepth is filled by loop analysis for spill heuristics.
	LoopDepth int
}

// Term returns the block terminator, or nil if the block is unterminated.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerm() {
		return nil
	}
	return t
}

// Body returns the instructions excluding the terminator.
func (b *Block) Body() []*Instr {
	if b.Term() != nil {
		return b.Instrs[:len(b.Instrs)-1]
	}
	return b.Instrs
}

// InsertBefore inserts instr at position idx.
func (b *Block) InsertBefore(idx int, in *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// AppendBeforeTerm appends in just before the terminator.
func (b *Block) AppendBeforeTerm(in *Instr) {
	if b.Term() == nil {
		b.Instrs = append(b.Instrs, in)
		return
	}
	b.InsertBefore(len(b.Instrs)-1, in)
}

// RemoveAt deletes the instruction at idx.
func (b *Block) RemoveAt(idx int) {
	b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
}

// ReplaceSucc rewires an edge from old to new in Succs.
func (b *Block) ReplaceSucc(old, new *Block) {
	for i, s := range b.Succs {
		if s == old {
			b.Succs[i] = new
		}
	}
}

func (b *Block) String() string { return fmt.Sprintf("B%d", b.ID) }

// ---------------------------------------------------------------- funcs

// Func is one IR function.
type Func struct {
	Name   string
	Decl   *ast.FuncDecl
	Blocks []*Block // Blocks[0] is the entry
	Entry  *Block

	NumTemps int
	nextBID  int
	nextOrig int

	// FrameObjects lists memory-allocated objects in this frame (arrays
	// and addressed scalars), in allocation order.
	FrameObjects []*ast.Object
}

// NewBlock creates and registers a fresh block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBID}
	f.nextBID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewTemp allocates a fresh temporary of class ty.
func (f *Func) NewTemp(ty Ty) Operand {
	t := TempOf(f.NumTemps, ty)
	f.NumTemps++
	return t
}

// NextOrig returns the next emission sequence number.
func (f *Func) NextOrig() int {
	f.nextOrig++
	return f.nextOrig - 1
}

// RecomputePreds rebuilds all Preds lists from Succs.
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// RemoveUnreachable deletes blocks not reachable from the entry and
// migrates debugger markers from deleted blocks to their (reachable)
// successors, per the "basic block deletion" bookkeeping rule of §3.
// Unreachable code would never have executed, so markers in a block that is
// deleted because it became empty are transferred by the branch passes, not
// here; markers in truly unreachable code are dropped along with the code.
func (f *Func) RemoveUnreachable() {
	reach := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if reach[b] {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(f.Entry)
	var keep []*Block
	for _, b := range f.Blocks {
		if reach[b] {
			keep = append(keep, b)
		}
	}
	f.Blocks = keep
	f.RecomputePreds()
}

// RPO returns the blocks in reverse postorder from the entry.
func (f *Func) RPO() []*Block {
	seen := map[*Block]bool{}
	var post []*Block
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(f.Entry)
	out := make([]*Block, len(post))
	for i, b := range post {
		out[len(post)-1-i] = b
	}
	return out
}

// String renders the function IR for dumps and golden tests.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s:\n", f.Name)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk)
		if len(blk.Preds) > 0 {
			fmt.Fprintf(&b, "  ; preds=%v", blk.Preds)
		}
		b.WriteByte('\n')
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "    %s\n", in)
		}
		if t := blk.Term(); t != nil {
			switch t.Kind {
			case Jmp:
				fmt.Fprintf(&b, "    -> %s\n", blk.Succs[0])
			case Br:
				fmt.Fprintf(&b, "    -> then %s else %s\n", blk.Succs[0], blk.Succs[1])
			}
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- program

// Program is the IR for a whole translation unit.
type Program struct {
	Funcs   []*Func
	Globals []*ast.Object
	// GlobalInit holds constant initial values for scalar globals,
	// keyed by object; arrays are zero-initialized.
	GlobalInit map[*ast.Object]Operand
}

// LookupFunc finds a function by name, or nil.
func (p *Program) LookupFunc(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// String renders the whole program.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Funcs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}
