// Package token defines the lexical tokens of MiniC, the C subset compiled
// by mcc. MiniC covers the scalar language features the paper's
// optimizations act on: int and float scalars, fixed-size arrays, pointers
// to scalars, functions, and structured control flow.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	ILLEGAL

	// Literals and identifiers.
	IDENT    // x
	INTLIT   // 123
	FLOATLIT // 1.5
	CHARLIT  // 'a'
	STRLIT   // "s" (only in print statements)

	// Operators and punctuation.
	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	AMP     // &

	ASSIGN     // =
	PLUSASSIGN // +=
	MINUSASSIGN
	STARASSIGN
	SLASHASSIGN
	INC // ++
	DEC // --

	EQ  // ==
	NEQ // !=
	LT  // <
	GT  // >
	LEQ // <=
	GEQ // >=

	ANDAND // &&
	OROR   // ||
	NOT    // !

	SHL // <<
	SHR // >>
	OR  // |
	XOR // ^

	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	DOT      // .

	// Keywords.
	KwInt
	KwFloat
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwPrint  // builtin output statement, used by workloads and the VM
	KwStruct // aggregate type declaration
)

var names = map[Kind]string{
	EOF: "EOF", ILLEGAL: "ILLEGAL",
	IDENT: "identifier", INTLIT: "int literal", FLOATLIT: "float literal",
	CHARLIT: "char literal", STRLIT: "string literal",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%", AMP: "&",
	ASSIGN: "=", PLUSASSIGN: "+=", MINUSASSIGN: "-=", STARASSIGN: "*=", SLASHASSIGN: "/=",
	INC: "++", DEC: "--",
	EQ: "==", NEQ: "!=", LT: "<", GT: ">", LEQ: "<=", GEQ: ">=",
	ANDAND: "&&", OROR: "||", NOT: "!",
	SHL: "<<", SHR: ">>", OR: "|", XOR: "^",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMI: ";", DOT: ".",
	KwInt: "int", KwFloat: "float", KwVoid: "void",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for", KwDo: "do",
	KwReturn: "return", KwBreak: "break", KwContinue: "continue", KwPrint: "print",
	KwStruct: "struct",
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"int": KwInt, "float": KwFloat, "void": KwVoid,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor, "do": KwDo,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue, "print": KwPrint,
	"struct": KwStruct,
}

func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// IsAssignOp reports whether k is one of the assignment operators.
func (k Kind) IsAssignOp() bool {
	switch k {
	case ASSIGN, PLUSASSIGN, MINUSASSIGN, STARASSIGN, SLASHASSIGN:
		return true
	}
	return false
}

// Token is one lexeme with its source extent.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT and literals
	Pos  int    // byte offset of the first character
	End  int    // byte offset just past the last character
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, CHARLIT, STRLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	}
	return t.Kind.String()
}
