// Package debuginfo builds the symbol-table side of the debugger: the map
// from source statements (the breakpoint unit) to locations in the final
// machine code, and scope queries for variables. It implements the paper's
// *syntactic* breakpoint model, which §5 argues is sufficient because
// source-level assignments are almost never hoisted.
package debuginfo

import (
	"repro/internal/ast"
	"repro/internal/mach"
)

// Loc is a code location: instruction Idx within Block (before execution).
type Loc struct {
	Block *mach.Block
	Idx   int
}

// Table holds per-function debug information.
type Table struct {
	Fn *mach.Func
	// stmtLoc[s] is the chosen breakpoint location for statement s
	// (nil Block = no location).
	stmtLoc []Loc
	// stmtInst[s] is every *instance* location of statement s: one per
	// block that contains the statement's own code (original instructions
	// or the marker left by its deletion). Loop unrolling and peeling
	// clone statement code into new blocks, and a source breakpoint must
	// fire at every copy — arming only the canonical stmtLoc would let
	// the peeled first iteration run past the breakpoint silently.
	stmtInst [][]Loc
	// NumStmts mirrors the frontend's statement count.
	NumStmts int
	// varsAt[s] caches the locals in scope at statement s; the slices are
	// shared across queries and must not be modified by callers.
	varsAt [][]*ast.Object
}

// Build computes the statement table for f.
//
// The breakpoint location of statement s is the instruction of s that
// appears in the final code and is original (not inserted by an
// optimization), with the smallest emission index — or, if every
// instruction of s was deleted, the marker left in its place. Statements
// with no code at all (e.g. plain declarations) fall back at query time to
// the next statement that has a location.
func Build(f *mach.Func) *Table {
	t := &Table{Fn: f, NumStmts: f.Decl.NumStmts}
	t.stmtLoc = make([]Loc, t.NumStmts)
	best := make([]int, t.NumStmts) // OrigIdx of current best; -1 none
	rank := make([]int, t.NumStmts) // 0 none, 1 inserted-only, 2 marker, 3 original
	for i := range best {
		best[i] = -1
	}
	t.stmtInst = make([][]Loc, t.NumStmts)
	type cand struct {
		rank, orig, idx int
		ok              bool
	}
	blockBest := map[int]cand{} // stmt -> best instance in the current block
	for _, b := range f.Blocks {
		for s := range blockBest {
			delete(blockBest, s)
		}
		for idx, in := range b.Instrs {
			s := in.Stmt
			if s < 0 || s >= t.NumStmts {
				continue
			}
			r := 1
			if in.IsMarker() {
				r = 2
			} else if !in.Ann.Hoisted && !in.Ann.Sunk && in.Ann.InsertedBy == "" {
				r = 3
			}
			if r > rank[s] || (r == rank[s] && in.OrigIdx < best[s]) {
				rank[s] = r
				best[s] = in.OrigIdx
				t.stmtLoc[s] = Loc{Block: b, Idx: idx}
			}
			// Per-block instance: only the statement's own code counts
			// (rank >= 2). Hoisted, sunk, and pass-inserted copies are not
			// instances — stopping at them would be a phantom stop at a
			// point the source program never reaches as that statement.
			if r >= 2 {
				c := blockBest[s]
				if !c.ok || r > c.rank || (r == c.rank && in.OrigIdx < c.orig) {
					blockBest[s] = cand{rank: r, orig: in.OrigIdx, idx: idx, ok: true}
				}
			}
		}
		for s, c := range blockBest {
			t.stmtInst[s] = append(t.stmtInst[s], Loc{Block: b, Idx: c.idx})
		}
	}
	// Continuation suppression: a multi-block condition (short-circuit
	// && / ||) spreads ONE statement's code across consecutive blocks.
	// Arming every block would stop twice for a single source evaluation,
	// so a non-canonical instance is kept only when it *enters* the
	// statement — some earlier tagged instruction in its block belongs to
	// a different statement, or the block is led by this statement but
	// reached from a predecessor whose trailing code is a different
	// statement (or has no predecessors). A block led by s and reached
	// only from blocks ending in s merely continues the same evaluation.
	// The canonical location is exempt and always armed: a loop-header
	// test's back edge is tagged with the condition's own statement and
	// must not suppress the loop's stop point.
	for s := 0; s < t.NumStmts; s++ {
		if len(t.stmtInst[s]) <= 1 {
			continue
		}
		kept := t.stmtInst[s][:0]
		for _, l := range t.stmtInst[s] {
			if l == t.stmtLoc[s] || entersStmt(l, s) {
				kept = append(kept, l)
			}
		}
		t.stmtInst[s] = kept
	}
	// A statement whose only code is inserted copies still resolves (the
	// canonical location points at one); its instance list is that single
	// location, preserving the pre-instance behavior.
	for s := 0; s < t.NumStmts; s++ {
		if len(t.stmtInst[s]) == 0 && t.stmtLoc[s].Block != nil {
			t.stmtInst[s] = []Loc{t.stmtLoc[s]}
		}
	}
	t.varsAt = make([][]*ast.Object, t.NumStmts)
	for s := 0; s < t.NumStmts; s++ {
		for _, v := range f.Decl.Locals {
			if InScope(v, s) {
				t.varsAt[s] = append(t.varsAt[s], v)
			}
		}
	}
	return t
}

// entersStmt reports whether the instance of statement s at l begins a new
// source-level evaluation of s, as opposed to continuing one started in a
// predecessor block (see the suppression comment in Build).
func entersStmt(l Loc, s int) bool {
	b := l.Block
	for i := l.Idx - 1; i >= 0 && i < len(b.Instrs); i-- {
		if st := b.Instrs[i].Stmt; st >= 0 && st != s {
			return true
		}
	}
	if len(b.Preds) == 0 {
		return true
	}
	for _, p := range b.Preds {
		if trailingStmt(p) != s {
			return true
		}
	}
	return false
}

// trailingStmt returns the statement tag of b's last tagged instruction,
// or -1 when the block carries no source tags.
func trailingStmt(b *mach.Block) int {
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		if st := b.Instrs[i].Stmt; st >= 0 {
			return st
		}
	}
	return -1
}

// LocOf returns the breakpoint location for statement s, falling back to
// the next statement with code. ok is false when no location exists at or
// after s.
func (t *Table) LocOf(s int) (Loc, bool) {
	for x := s; x < t.NumStmts; x++ {
		if t.stmtLoc[x].Block != nil {
			return t.stmtLoc[x], true
		}
	}
	return Loc{}, false
}

// LocsOf returns every instance location for statement s — one per block
// holding the statement's own code (clones from unrolling and peeling
// included) — with the same forward fallback as LocOf. The canonical
// LocOf location is always among them. ok is false when no location
// exists at or after s. The returned slice is shared: callers must not
// modify it.
func (t *Table) LocsOf(s int) ([]Loc, bool) {
	for x := s; x < t.NumStmts; x++ {
		if len(t.stmtInst[x]) > 0 {
			return t.stmtInst[x], true
		}
	}
	return nil, false
}

// InstancesOf returns statement s's own instance locations with no
// fallback (nil when s has no code). The slice is shared: callers must
// not modify it.
func (t *Table) InstancesOf(s int) []Loc {
	if s < 0 || s >= len(t.stmtInst) {
		return nil
	}
	return t.stmtInst[s]
}

// HasOwnLoc reports whether statement s maps to its own code (no fallback).
func (t *Table) HasOwnLoc(s int) bool {
	return s >= 0 && s < t.NumStmts && t.stmtLoc[s].Block != nil
}

// InScope reports whether variable v is in scope at statement s.
func InScope(v *ast.Object, s int) bool {
	return s >= v.ScopeStart && s < v.ScopeEnd
}

// VarsInScope returns the function's locals (and parameters) in scope at
// s. The returned slice is cached per statement and shared across calls:
// callers must not modify it.
func (t *Table) VarsInScope(s int) []*ast.Object {
	if s >= 0 && s < len(t.varsAt) {
		return t.varsAt[s]
	}
	var out []*ast.Object
	for _, v := range t.Fn.Decl.Locals {
		if InScope(v, s) {
			out = append(out, v)
		}
	}
	return out
}

// SizeBytes estimates the table's resident size (statement locations plus
// the per-statement scope cache), for memory-budget accounting.
func (t *Table) SizeBytes() int64 {
	n := int64(64) // header
	n += int64(len(t.stmtLoc)) * 24
	for _, ls := range t.stmtInst {
		n += 24 + int64(len(ls))*24
	}
	for _, vs := range t.varsAt {
		n += 24 + int64(len(vs))*8
	}
	return n
}

// StmtOfLoc returns the statement whose code region covers the given
// location, preferring the instruction's own Stmt tag: this is the map the
// debugger uses to report faults and interrupts in source terms.
func StmtOfLoc(l Loc) int {
	if l.Block == nil {
		return -1
	}
	// The instruction itself knows its statement; scan backward for the
	// nearest tagged instruction if this one is synthetic.
	for i := l.Idx; i >= 0; i-- {
		if i < len(l.Block.Instrs) && l.Block.Instrs[i].Stmt >= 0 {
			return l.Block.Instrs[i].Stmt
		}
	}
	for i := l.Idx + 1; i < len(l.Block.Instrs); i++ {
		if l.Block.Instrs[i].Stmt >= 0 {
			return l.Block.Instrs[i].Stmt
		}
	}
	return -1
}
