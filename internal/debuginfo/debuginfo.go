// Package debuginfo builds the symbol-table side of the debugger: the map
// from source statements (the breakpoint unit) to locations in the final
// machine code, and scope queries for variables. It implements the paper's
// *syntactic* breakpoint model, which §5 argues is sufficient because
// source-level assignments are almost never hoisted.
package debuginfo

import (
	"repro/internal/ast"
	"repro/internal/mach"
)

// Loc is a code location: instruction Idx within Block (before execution).
type Loc struct {
	Block *mach.Block
	Idx   int
}

// Table holds per-function debug information.
type Table struct {
	Fn *mach.Func
	// stmtLoc[s] is the chosen breakpoint location for statement s
	// (nil Block = no location).
	stmtLoc []Loc
	// NumStmts mirrors the frontend's statement count.
	NumStmts int
	// varsAt[s] caches the locals in scope at statement s; the slices are
	// shared across queries and must not be modified by callers.
	varsAt [][]*ast.Object
}

// Build computes the statement table for f.
//
// The breakpoint location of statement s is the instruction of s that
// appears in the final code and is original (not inserted by an
// optimization), with the smallest emission index — or, if every
// instruction of s was deleted, the marker left in its place. Statements
// with no code at all (e.g. plain declarations) fall back at query time to
// the next statement that has a location.
func Build(f *mach.Func) *Table {
	t := &Table{Fn: f, NumStmts: f.Decl.NumStmts}
	t.stmtLoc = make([]Loc, t.NumStmts)
	best := make([]int, t.NumStmts) // OrigIdx of current best; -1 none
	rank := make([]int, t.NumStmts) // 0 none, 1 inserted-only, 2 marker, 3 original
	for i := range best {
		best[i] = -1
	}
	for _, b := range f.Blocks {
		for idx, in := range b.Instrs {
			s := in.Stmt
			if s < 0 || s >= t.NumStmts {
				continue
			}
			r := 1
			if in.IsMarker() {
				r = 2
			} else if !in.Ann.Hoisted && !in.Ann.Sunk && in.Ann.InsertedBy == "" {
				r = 3
			}
			if r > rank[s] || (r == rank[s] && in.OrigIdx < best[s]) {
				rank[s] = r
				best[s] = in.OrigIdx
				t.stmtLoc[s] = Loc{Block: b, Idx: idx}
			}
		}
	}
	t.varsAt = make([][]*ast.Object, t.NumStmts)
	for s := 0; s < t.NumStmts; s++ {
		for _, v := range f.Decl.Locals {
			if InScope(v, s) {
				t.varsAt[s] = append(t.varsAt[s], v)
			}
		}
	}
	return t
}

// LocOf returns the breakpoint location for statement s, falling back to
// the next statement with code. ok is false when no location exists at or
// after s.
func (t *Table) LocOf(s int) (Loc, bool) {
	for x := s; x < t.NumStmts; x++ {
		if t.stmtLoc[x].Block != nil {
			return t.stmtLoc[x], true
		}
	}
	return Loc{}, false
}

// HasOwnLoc reports whether statement s maps to its own code (no fallback).
func (t *Table) HasOwnLoc(s int) bool {
	return s >= 0 && s < t.NumStmts && t.stmtLoc[s].Block != nil
}

// InScope reports whether variable v is in scope at statement s.
func InScope(v *ast.Object, s int) bool {
	return s >= v.ScopeStart && s < v.ScopeEnd
}

// VarsInScope returns the function's locals (and parameters) in scope at
// s. The returned slice is cached per statement and shared across calls:
// callers must not modify it.
func (t *Table) VarsInScope(s int) []*ast.Object {
	if s >= 0 && s < len(t.varsAt) {
		return t.varsAt[s]
	}
	var out []*ast.Object
	for _, v := range t.Fn.Decl.Locals {
		if InScope(v, s) {
			out = append(out, v)
		}
	}
	return out
}

// SizeBytes estimates the table's resident size (statement locations plus
// the per-statement scope cache), for memory-budget accounting.
func (t *Table) SizeBytes() int64 {
	n := int64(64) // header
	n += int64(len(t.stmtLoc)) * 24
	for _, vs := range t.varsAt {
		n += 24 + int64(len(vs))*8
	}
	return n
}

// StmtOfLoc returns the statement whose code region covers the given
// location, preferring the instruction's own Stmt tag: this is the map the
// debugger uses to report faults and interrupts in source terms.
func StmtOfLoc(l Loc) int {
	if l.Block == nil {
		return -1
	}
	// The instruction itself knows its statement; scan backward for the
	// nearest tagged instruction if this one is synthetic.
	for i := l.Idx; i >= 0; i-- {
		if i < len(l.Block.Instrs) && l.Block.Instrs[i].Stmt >= 0 {
			return l.Block.Instrs[i].Stmt
		}
	}
	for i := l.Idx + 1; i < len(l.Block.Instrs); i++ {
		if l.Block.Instrs[i].Stmt >= 0 {
			return l.Block.Instrs[i].Stmt
		}
	}
	return -1
}
