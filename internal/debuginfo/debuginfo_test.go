package debuginfo

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/mach"
	"repro/internal/opt"
	"repro/internal/sem"
)

func buildFunc(t *testing.T, src string, o opt.Options, fn string) *mach.Func {
	t.Helper()
	p, err := sem.CheckSource("test.mc", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	prog := ir.Build(p)
	opt.Run(prog, o)
	mp := lower.Lower(prog)
	f := mp.LookupFunc(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	return f
}

func TestEveryExecutableStmtHasLoc(t *testing.T) {
	src := `
int main() {
	int a = 1;
	int b = a + 2;
	if (a < b) { b = b * 2; }
	print(b);
	return b;
}
`
	f := buildFunc(t, src, opt.O0(), "main")
	tab := Build(f)
	for s := 0; s < f.Decl.NumStmts; s++ {
		if _, ok := tab.LocOf(s); !ok {
			t.Errorf("statement %d has no location", s)
		}
	}
}

func TestDeclWithoutInitFallsForward(t *testing.T) {
	src := `
int main() {
	int x;
	int y = 1;
	x = y;
	return x;
}
`
	f := buildFunc(t, src, opt.O0(), "main")
	tab := Build(f)
	if tab.HasOwnLoc(0) {
		t.Error("a plain declaration generates no code and must not have its own location")
	}
	loc0, ok0 := tab.LocOf(0)
	loc1, ok1 := tab.LocOf(1)
	if !ok0 || !ok1 || loc0 != loc1 {
		t.Errorf("decl should fall forward to the next statement: %v vs %v", loc0, loc1)
	}
}

func TestEliminatedStmtMapsToMarker(t *testing.T) {
	src := `
int main() {
	int x = 5;
	x = 6;
	print(x);
	return 0;
}
`
	f := buildFunc(t, src, opt.Options{DCE: true}, "main")
	tab := Build(f)
	loc, ok := tab.LocOf(0) // x = 5 was deleted
	if !ok {
		t.Fatal("eliminated statement lost its location entirely")
	}
	in := loc.Block.Instrs[loc.Idx]
	if !in.IsMarker() {
		t.Errorf("eliminated statement should map to its marker, got %s", in)
	}
}

func TestOriginalPreferredOverHoisted(t *testing.T) {
	// PRE inserts hoisted copies tagged with the same statement; the
	// breakpoint must map to the original occurrence (or its marker), not
	// the insertion.
	src := `
int f(int c, int y, int z) {
	int x = 0;
	if (c) { x = y + z; } else { x = 1; }
	x = y + z;
	return x;
}
int main() { return f(1, 2, 3); }
`
	f := buildFunc(t, src, opt.Options{PRE: true}, "f")
	tab := Build(f)
	loc, ok := tab.LocOf(4)
	if !ok {
		t.Fatal("stmt 4 lost")
	}
	in := loc.Block.Instrs[loc.Idx]
	if in.Ann.Hoisted {
		t.Errorf("breakpoint mapped to a hoisted insertion: %s", in)
	}
}

func TestVarsInScope(t *testing.T) {
	src := `
int f(int p) {
	int a = 1;
	if (p) {
		int b = 2;
		a = b;
	}
	return a;
}
int main() { return f(1); }
`
	f := buildFunc(t, src, opt.O0(), "f")
	tab := Build(f)
	// At statement 0 (int a = 1): p and a in scope, b not.
	names := func(s int) map[string]bool {
		m := map[string]bool{}
		for _, v := range tab.VarsInScope(s) {
			m[v.Name] = true
		}
		return m
	}
	at0 := names(0)
	if !at0["p"] || !at0["a"] || at0["b"] {
		t.Errorf("scope at stmt 0: %v", at0)
	}
	// Inside the if body (stmt 3: a = b), b is in scope.
	at3 := names(3)
	if !at3["b"] {
		t.Errorf("scope at stmt 3: %v", at3)
	}
	// After the if (return), b is gone.
	at4 := names(4)
	if at4["b"] {
		t.Errorf("scope at stmt 4: %v", at4)
	}
}

func TestStmtOfLoc(t *testing.T) {
	src := `int main() { int a = 1; return a; }`
	f := buildFunc(t, src, opt.O0(), "main")
	tab := Build(f)
	loc, _ := tab.LocOf(1)
	if got := StmtOfLoc(loc); got != 1 {
		t.Errorf("StmtOfLoc = %d, want 1", got)
	}
}
