// Package loadgen is the scripted-client load generator shared by the
// chaos soak and the differential oracle: deterministic debug-session
// scripts driven against a live daemon through the public client, with
// canonical byte-comparable transcripts. A transcript line carries only
// semantic, deterministic content — content-addressed artifact ids, stop
// positions, classified variables, program output — never session ids,
// cache flags, or timings, so any two runs of the same script against
// correct servers must produce identical bytes. That is the whole
// contract: the chaos soak compares faulted runs against a fault-free
// reference, and the oracle soak compares a live daemon against an
// in-process ground-truth session.
package loadgen

import (
	"fmt"
	"strings"

	"repro/pkg/minic"
)

// Program is one scripted debug interaction: compile src under name,
// open a session, set a breakpoint, run to it, inspect, run to exit,
// close. Name feeds the artifact's content address, so distinct names
// give distinct artifacts over identical source — the soak uses that to
// churn a small store without perturbing any payload.
type Program struct {
	Name      string
	Src       string
	BreakFunc string
	BreakStmt int
	Prints    []string
}

// DefaultProgram is the soak's workload: a compute loop (so continues
// execute a deterministic, nontrivial cycle count), a breakpoint in
// main with locals live to classify, and printed output to compare.
func DefaultProgram(name string) Program {
	return Program{
		Name:      name,
		Src:       defaultSrc,
		BreakFunc: "main",
		BreakStmt: 1,
		Prints:    []string{"t"},
	}
}

const defaultSrc = `
int work(int n) {
	int s = 0;
	int i = 0;
	while (i < n) {
		s = s + i * i;
		i = i + 1;
	}
	return s;
}

int main() {
	int t = work(200);
	print(t);
	return t;
}
`

// Steps returns the canonical step labels of one full iteration, in
// order; a transcript from RunIteration indexes into the same order.
func (p Program) Steps() []string {
	steps := []string{"compile", "open", "break", "continue1"}
	for _, v := range p.Prints {
		steps = append(steps, "print:"+v)
	}
	steps = append(steps, "info", "continue2", "close")
	return steps
}

// RunIteration drives one full iteration of p against c and returns the
// canonical transcript of the steps that succeeded, in step order. A
// step failure aborts the iteration (the session, if opened, is closed
// best-effort) and returns the partial transcript plus the error; the
// transcript's entries are still valid for byte-comparison against a
// reference run, because every canonical line carries only semantic,
// deterministic content.
func RunIteration(c *minic.Client, p Program) (transcript []string, err error) {
	art, err := c.Compile(p.Name, p.Src)
	if err != nil {
		return transcript, fmt.Errorf("compile: %w", err)
	}
	transcript = append(transcript, fmt.Sprintf("compile artifact=%s funcs=%d", art.ID, art.Funcs))

	sess, err := c.Open(art.ID)
	if err != nil {
		return transcript, fmt.Errorf("open: %w", err)
	}
	defer func() {
		if err != nil {
			sess.Close() // best-effort; the daemon reaps leaks eventually
		}
	}()
	transcript = append(transcript, fmt.Sprintf("open artifact=%s", art.ID))

	stop, err := sess.BreakAtStmt(p.BreakFunc, p.BreakStmt)
	if err != nil {
		return transcript, fmt.Errorf("break: %w", err)
	}
	transcript = append(transcript, "break "+CanonStop(stop, false, ""))

	stop, out, err := sess.Continue()
	if err != nil {
		return transcript, fmt.Errorf("continue1: %w", err)
	}
	transcript = append(transcript, "continue1 "+CanonStop(stop, stop == nil, out))

	for _, name := range p.Prints {
		v, err := sess.Print(name)
		if err != nil {
			return transcript, fmt.Errorf("print %s: %w", name, err)
		}
		transcript = append(transcript, "print "+CanonVar(v))
	}

	vars, err := sess.Info()
	if err != nil {
		return transcript, fmt.Errorf("info: %w", err)
	}
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = CanonVar(v)
	}
	transcript = append(transcript, "info "+strings.Join(parts, "; "))

	stop, out, err = sess.Continue()
	if err != nil {
		return transcript, fmt.Errorf("continue2: %w", err)
	}
	transcript = append(transcript, "continue2 "+CanonStop(stop, stop == nil, out))

	out, err = sess.Close()
	if err != nil {
		return transcript, fmt.Errorf("close: %w", err)
	}
	transcript = append(transcript, fmt.Sprintf("close output=%q", out))
	return transcript, nil
}

// CanonStop renders a remote stop (or exit) in canonical transcript form.
func CanonStop(stop *minic.RemoteStop, exited bool, output string) string {
	if stop == nil {
		return fmt.Sprintf("exited=%v output=%q", exited, output)
	}
	return fmt.Sprintf("stop=%s:%d:%d", stop.Func, stop.Stmt, stop.Line)
}

// CanonVar renders a remote variable report in canonical transcript form.
func CanonVar(v minic.RemoteVar) string {
	return fmt.Sprintf("%s=%s:%q", v.Name, v.State, v.Display)
}
