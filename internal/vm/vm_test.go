package vm

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/sem"
)

// compile builds mach code at the given optimization level.
func compile(t *testing.T, src string, o opt.Options) (*ir.Program, *VM) {
	t.Helper()
	p, err := sem.CheckSource("test.mc", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	prog := ir.Build(p)
	opt.Run(prog, o)
	mp := lower.Lower(prog)
	vm, err := New(mp)
	if err != nil {
		t.Fatal(err)
	}
	return prog, vm
}

// differential checks IR interpretation and VM execution agree.
func differential(t *testing.T, src string, o opt.Options) *VM {
	t.Helper()
	prog, vm := compile(t, src, o)
	wantRet, wantOut, err := ir.NewInterp(prog).Run()
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if err := vm.Run(); err != nil {
		t.Fatalf("vm: %v", err)
	}
	if vm.ExitValue() != wantRet {
		t.Errorf("exit: vm=%d interp=%d", vm.ExitValue(), wantRet)
	}
	if vm.Output() != wantOut {
		t.Errorf("output: vm=%q interp=%q", vm.Output(), wantOut)
	}
	return vm
}

const progAll = `
int g = 7;
float fg = 1.5;
int fib(int n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
int sumArr(int a[], int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) { s += a[i]; }
	return s;
}
void fill(int *p, int n, int base) {
	int i;
	for (i = 0; i < n; i++) { p[i] = base + i * i; }
}
float mean(float a[], int n) {
	float s = 0.0;
	int i;
	for (i = 0; i < n; i++) { s = s + a[i]; }
	return s / float(n);
}
int main() {
	int buf[10];
	fill(buf, 10, g);
	int s = sumArr(buf, 10);
	float fa[4];
	int i;
	for (i = 0; i < 4; i++) { fa[i] = fg * float(i); }
	float m = mean(fa, 4);
	print("fib=", fib(10), " s=", s, " m=", m, "\n");
	int x = 3;
	int *p = &x;
	*p = *p * 2;
	do { x--; } while (x > 4);
	print("x=", x, "\n");
	return s;
}
`

func TestVMDifferentialO0(t *testing.T) { differential(t, progAll, opt.O0()) }
func TestVMDifferentialO1(t *testing.T) { differential(t, progAll, opt.O1()) }
func TestVMDifferentialO2(t *testing.T) { differential(t, progAll, opt.O2()) }

func TestVMCycles(t *testing.T) {
	vm0 := differential(t, progAll, opt.O0())
	vm2 := differential(t, progAll, opt.O2())
	if vm0.Cycles == 0 || vm2.Cycles == 0 {
		t.Fatal("cycle counting inactive")
	}
	if vm2.Cycles >= vm0.Cycles {
		t.Errorf("O2 (%d cycles) should beat O0 (%d cycles)", vm2.Cycles, vm0.Cycles)
	}
}

func TestVMStepAndPosition(t *testing.T) {
	_, vm := compile(t, `int main() { int x = 1; int y = x + 2; print(y); return y; }`, opt.O0())
	steps := 0
	for !vm.Halted() {
		if vm.CurrentInstr() == nil && vm.Top() != nil {
			// fell off block end: Step handles it
		}
		if err := vm.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 1000 {
			t.Fatal("runaway")
		}
	}
	if vm.ExitValue() != 3 {
		t.Errorf("exit = %d, want 3", vm.ExitValue())
	}
	if vm.Output() != "3" {
		t.Errorf("output = %q", vm.Output())
	}
}

func TestVMRunUntil(t *testing.T) {
	_, vm := compile(t, `
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 5; i++) { s += i; }
	print(s);
	return s;
}`, opt.O0())
	// Stop at the first print instruction.
	err := vm.RunUntil(func(p Pos) bool {
		in := vm.CurrentInstr()
		return in != nil && in.Op.String() == "print"
	})
	if err != nil {
		t.Fatal(err)
	}
	if vm.Halted() {
		t.Fatal("should have stopped at print")
	}
	if vm.Output() != "" {
		t.Errorf("print already executed")
	}
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Output() != "10" {
		t.Errorf("output = %q", vm.Output())
	}
}

func TestVMGlobals(t *testing.T) {
	differential(t, `
int counter = 100;
float ratio = 0.25;
int bump() { counter = counter + 1; return counter; }
int main() {
	bump(); bump();
	print(counter, " ", ratio * 4.0, "\n");
	return counter;
}`, opt.O2())
}
