package vm

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/opt"
	"repro/internal/sem"
)

// cycles compiles src at O0 (no reordering, no elimination) and returns
// the simulator cycle count.
func cycles(t *testing.T, src string) int64 {
	t.Helper()
	p, err := sem.CheckSource("lat.mc", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	prog := ir.Build(p)
	opt.Run(prog, opt.O0())
	mp := lower.Lower(prog)
	m, err := New(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Cycles
}

// TestLatencyDependentChainSlower: a chain of dependent multiplies must
// cost more cycles than the same number of independent multiplies, because
// each result stalls its consumer for the multiplier latency.
func TestLatencyDependentChainSlower(t *testing.T) {
	dep := cycles(t, `
int main() {
	int a = 3;
	int b = a * a;
	int c = b * b;
	int d = c * c;
	int e = d * d;
	return e;
}`)
	indep := cycles(t, `
int main() {
	int a = 3;
	int b = a * a;
	int c = a * a;
	int d = a * a;
	int e = a * a;
	return b + c + d + e - b - c - d;
}`)
	if dep <= indep {
		t.Errorf("dependent chain (%d cycles) should be slower than independent ops (%d cycles)",
			dep, indep)
	}
}

// TestLatencyDivExpensive: a division chain dominates an addition chain.
func TestLatencyDivExpensive(t *testing.T) {
	div := cycles(t, `
int main() {
	int a = 1000000;
	int b = a / 3;
	int c = b / 3;
	int d = c / 3;
	return d;
}`)
	add := cycles(t, `
int main() {
	int a = 1000000;
	int b = a + 3;
	int c = b + 3;
	int d = c + 3;
	return d;
}`)
	if div < add+30 { // three divisions at latency 20 vs three adds at 1
		t.Errorf("division chain %d vs addition chain %d: latency model inactive", div, add)
	}
}

// TestMarkersAreFree: marker pseudo-instructions must not consume cycles.
func TestMarkersAreFree(t *testing.T) {
	// Same program; one compiled with DCE (which adds a marker), one with
	// the marker stripped. Cycle counts must be identical.
	src := `
int main() {
	int x = 5;
	x = 6;
	print(x);
	return 0;
}`
	run := func(noMarkers bool) int64 {
		p, err := sem.CheckSource("m.mc", src)
		if err != nil {
			t.Fatal(err)
		}
		prog := ir.Build(p)
		o := opt.Options{DCE: true, NoMarkers: noMarkers}
		opt.Run(prog, o)
		mp := lower.Lower(prog)
		m, err := New(mp)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	with := run(false)
	without := run(true)
	if with != without {
		t.Errorf("markers cost cycles: with=%d without=%d (non-invasive model violated)", with, without)
	}
}

// TestFrameIsolation: recursive calls get their own registers and frame
// memory.
func TestFrameIsolation(t *testing.T) {
	src := `
int fact(int n) {
	int local[4];
	local[0] = n;
	if (n <= 1) { return 1; }
	int rest = fact(n - 1);
	/* local[0] must still hold THIS activation's n */
	return local[0] * rest;
}
int main() {
	print(fact(6));
	return 0;
}`
	p, err := sem.CheckSource("f.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	prog := ir.Build(p)
	mp := lower.Lower(prog)
	m, err := New(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Output() != "720" {
		t.Errorf("fact(6) = %q, want 720 (frame isolation broken)", m.Output())
	}
}

// TestStackReuse: frames are popped, so deep sequential call chains don't
// grow memory without bound.
func TestStackReuse(t *testing.T) {
	src := `
int leaf(int n) {
	int pad[64];
	pad[0] = n;
	return pad[0] + 1;
}
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 1000; i++) {
		s = (s + leaf(i)) % 65521;
	}
	print(s);
	return 0;
}`
	p, err := sem.CheckSource("s.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	prog := ir.Build(p)
	mp := lower.Lower(prog)
	m, err := New(mp)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 1000 sequential leaf calls with 256-byte frames must reuse the same
	// stack region: total memory stays near globals + one frame.
	if got := int64(len(m.mem)) * 4; got > 16*1024 {
		t.Errorf("memory grew to %d bytes; stack frames not reclaimed", got)
	}
}
