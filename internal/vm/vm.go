// Package vm implements the simulator for mcc's virtual MIPS-like target.
// It executes machine code either before register allocation (virtual
// registers, one per value) or after (physical registers plus spill slots),
// counts cycles using per-opcode latencies, and exposes the debugger hooks
// the paper's model needs: run-to-breakpoint, single-step, and inspection
// of registers and memory at the stopped position.
//
// Execution has two paths. The hot path (Run, RunBreaks) walks the
// predecoded pc-indexed instruction array (see predecode.go) and tests a
// breakpoint bitmap bit per instruction, with the step-budget and
// wall-clock-deadline checks folded into one counter examined every
// checkQuantum instructions. The reference path (RunUntilFunc) evaluates
// an arbitrary stop predicate over a Pos before every instruction — the
// legacy interface, kept as the differential oracle the equivalence tests
// hold the fast path against, and for callers with stop conditions no
// bitmap can express.
package vm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/mach"
)

// ErrStepLimit is returned (wrapped) when execution exhausts MaxSteps —
// the per-session execution budget of the debug-session server.
var ErrStepLimit = errors.New("vm: step limit exceeded")

// ErrDeadline is returned (wrapped) when execution runs past the wall-clock
// deadline set by SetDeadline — the server's per-request timeout. The VM
// stays consistent at the instruction boundary where the deadline was
// noticed: cycles and position reflect exactly the instructions executed,
// so a timed-out continue still conserves the session's cycle accounting.
var ErrDeadline = errors.New("vm: deadline exceeded")

// ErrOutputLimit is returned (wrapped) when a program prints more than
// MaxOutput bytes. The VM stays consistent: everything printed before the
// limit is retained in Output, and the error is deterministic (the same
// program trips it at the same print every run).
var ErrOutputLimit = errors.New("vm: output limit exceeded")

// DefaultMaxOutput bounds Output when MaxOutput is zero. Without a bound
// a print-loop program grows the output buffer (and server memory)
// without limit.
const DefaultMaxOutput = 64 << 20

// checkQuantum is how many instructions the hot loop executes between
// slow checks (wall-clock deadline). It must be a power of two; the
// single-step path keeps the same cadence so both paths read the clock on
// the same step numbers.
const checkQuantum = 1024

// Val is one runtime value (integer word or float).
type Val struct {
	I   int64
	F   float64
	IsF bool
}

// slot is one 4-byte memory word; the simulator stores either view.
type slot struct {
	i int64
	f float64
}

// Frame is one activation record.
type Frame struct {
	Fn   *mach.Func
	IReg []int64
	FReg []float64
	Base int64 // byte address of this frame's memory area
	Args []Val

	// readyI/readyFv model result latency: the cycle at which each
	// register's value becomes available. An instruction stalls until its
	// operands are ready, so instruction scheduling measurably reduces
	// cycle counts.
	readyI  []int64
	readyFv []int64

	// code/pc drive execution: pc indexes the function's predecoded flat
	// instruction array. The debugger-visible (block, idx) position is
	// derived from pc through the predecode tables.
	code *funcCode
	pc   int32
	// where the caller wants the return value
	retDst mach.Opd
}

// Pos identifies an execution position (the debugger's program counter).
type Pos struct {
	Fn    *mach.Func
	Block *mach.Block
	Idx   int
}

// VM is the simulator.
type VM struct {
	Prog *mach.Program

	pcode *progCode
	empty *BreakSet // lazily built all-clear set backing Run

	mem   []slot // globals at [0, globalSlots), frames stacked above
	sp    int64  // next free byte address for frames
	out   strings.Builder
	stack []*Frame

	Cycles int64
	Steps  int64
	// MaxSteps bounds execution (0 = default limit).
	MaxSteps int64
	// MaxOutput bounds the program-output buffer in bytes: printing past
	// it returns an error wrapping ErrOutputLimit. 0 means
	// DefaultMaxOutput; negative means unlimited.
	MaxOutput int64
	// deadline, when nonzero, is a wall-clock bound (UnixNano) checked
	// every checkQuantum steps; past it execution returns ErrDeadline.
	deadline int64

	halted bool
	retVal Val
}

// New prepares a VM for prog with main as the entry point.
func New(prog *mach.Program) (*VM, error) {
	main := prog.LookupFunc("main")
	if main == nil {
		return nil, fmt.Errorf("vm: program has no main")
	}
	vm := &VM{Prog: prog, pcode: predecode(prog), MaxSteps: 200_000_000}
	globalBytes := prog.GlobalSize
	vm.mem = make([]slot, (globalBytes/4)+4)
	vm.sp = (globalBytes + 7) &^ 3
	for obj, init := range prog.GlobalInit {
		off := prog.GlobalOff[obj] / 4
		if init.Kind == 0 {
			continue
		}
		vm.mem[off] = slot{i: init.Int, f: init.Fl}
	}
	vm.push(vm.pcode.funcs[main], nil, mach.Opd{})
	return vm, nil
}

func (vm *VM) push(fc *funcCode, args []Val, retDst mach.Opd) {
	fn := fc.fn
	nInt, nFloat := fn.NumVregs, fn.NumVregs
	if fn.Allocated {
		nInt, nFloat = mach.NumIntRegs, mach.NumFloatRegs
	}
	fr := &Frame{
		Fn:      fn,
		IReg:    make([]int64, nInt+1),
		FReg:    make([]float64, nFloat+1),
		readyI:  make([]int64, nInt+1),
		readyFv: make([]int64, nFloat+1),
		Base:    vm.sp,
		Args:    args,
		code:    fc,
		pc:      fc.entry,
		retDst:  retDst,
	}
	need := (fn.FrameSize + 7) &^ 3
	vm.sp += need
	for int64(len(vm.mem))*4 < vm.sp {
		vm.mem = append(vm.mem, slot{})
	}
	vm.stack = append(vm.stack, fr)
}

// SetDeadline bounds subsequent execution by wall-clock time: once t has
// passed, execution returns an error wrapping ErrDeadline. The zero time
// clears the deadline. The check is amortized — the clock is read once
// every checkQuantum steps — so steady-state execution pays no per-step
// time syscall.
func (vm *VM) SetDeadline(t time.Time) {
	if t.IsZero() {
		vm.deadline = 0
		return
	}
	vm.deadline = t.UnixNano()
}

// checkDeadline reports ErrDeadline when the wall-clock deadline has
// already passed. Both run entry points (RunBreaks and RunUntilFunc)
// call it before executing anything: the in-loop checks fire only at
// checkQuantum-aligned step counts, so without the entry check a program
// shorter than checkQuantum steps — or a request admitted after its
// deadline under queueing delay — would run to completion against an
// expired deadline instead of failing fast. The clock is read only when
// a deadline is armed, so deadline-free execution still pays nothing.
func (vm *VM) checkDeadline() error {
	if vm.deadline != 0 && time.Now().UnixNano() > vm.deadline {
		name := "main"
		if fr := vm.Top(); fr != nil {
			name = fr.Fn.Name
		}
		return fmt.Errorf("%w in %s", ErrDeadline, name)
	}
	return nil
}

// Halted reports whether the program has finished.
func (vm *VM) Halted() bool { return vm.halted }

// ExitValue returns main's return value once halted.
func (vm *VM) ExitValue() int64 { return vm.retVal.I }

// Output returns everything printed so far.
func (vm *VM) Output() string { return vm.out.String() }

// Top returns the current (innermost) frame, or nil when halted.
func (vm *VM) Top() *Frame {
	if len(vm.stack) == 0 {
		return nil
	}
	return vm.stack[len(vm.stack)-1]
}

// Position returns the current execution position.
func (vm *VM) Position() Pos {
	fr := vm.Top()
	if fr == nil {
		return Pos{}
	}
	fc := fr.code
	return Pos{Fn: fr.Fn, Block: fc.blocks[fr.pc], Idx: int(fc.idxs[fr.pc])}
}

// CurrentInstr returns the instruction about to execute, or nil.
func (vm *VM) CurrentInstr() *mach.Instr {
	fr := vm.Top()
	if fr == nil {
		return nil
	}
	return fr.code.code[fr.pc].in
}

// Run executes until the program halts, on the predecoded fast path.
func (vm *VM) Run() error {
	if vm.empty == nil {
		vm.empty = vm.NewBreakSet()
	}
	return vm.RunBreaks(vm.empty, false)
}

// RunUntil executes until stop(pos) returns true (checked before each
// instruction) or the program halts.
//
// Deprecated: RunUntil is the original name of RunUntilFunc and forwards
// to it. Hot callers with fixed stop positions should compile a BreakSet
// and use RunBreaks instead.
func (vm *VM) RunUntil(stop func(Pos) bool) error { return vm.RunUntilFunc(stop) }

// RunUntilFunc executes until stop(pos) returns true (checked before each
// instruction) or the program halts. This is the reference slow path: it
// builds a Pos and calls the predicate before every instruction, so it can
// express stop conditions no bitmap can. The equivalence tests hold
// RunBreaks to byte-identical behavior against it.
func (vm *VM) RunUntilFunc(stop func(Pos) bool) error {
	slowRuns.Add(1)
	if err := vm.checkDeadline(); err != nil {
		return err
	}
	for !vm.halted {
		if stop(vm.Position()) {
			return nil
		}
		if err := vm.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunBreaks executes until the current position's bit in bs is set
// (checked before each instruction), the program halts, or the step
// budget, deadline, or an execution fault cuts it off. It is the
// predecoded fast path behind run-to-breakpoint and source-level step:
// dispatch walks the flat instruction array and the stop check is one
// bitmap bit test, with the budget and deadline checks folded into a
// single fused counter examined every checkQuantum instructions (and at
// every call/return, which re-establishes the per-function bitmap).
//
// When skipCurrent is set the first instruction executes unconditionally
// before stopping is considered: resuming from a breakpoint must not
// immediately re-trigger it.
func (vm *VM) RunBreaks(bs *BreakSet, skipCurrent bool) error {
	fastRuns.Add(1)
	if bs == nil || bs.pc != vm.pcode {
		return errors.New("vm: BreakSet was compiled for a different program")
	}
	if err := vm.checkDeadline(); err != nil {
		return err
	}
	if skipCurrent && !vm.halted {
		if err := vm.Step(); err != nil {
			return err
		}
	}
	for !vm.halted {
		fr := vm.stack[len(vm.stack)-1]
		mask := bs.maskOf(fr.Fn)
		// The fused counter: instructions until the next slow check — the
		// deadline checkpoint (aligned to checkQuantum multiples of Steps,
		// the same cadence the single-step path keeps) or the step budget,
		// whichever comes first.
		n := checkQuantum - vm.Steps&(checkQuantum-1)
		if rem := vm.MaxSteps - vm.Steps; rem < n {
			n = rem
		}
		if n <= 0 {
			// Budget exhausted: a stop at the current position still wins
			// (the stop check precedes the step attempt, as in the
			// reference path).
			pc := fr.pc
			if mask != nil && mask[pc>>6]&(1<<(uint(pc)&63)) != 0 {
				return nil
			}
			vm.Steps++
			return fmt.Errorf("%w in %s", ErrStepLimit, fr.Fn.Name)
		}
		var steps int64
		for {
			pc := fr.pc
			if mask != nil && mask[pc>>6]&(1<<(uint(pc)&63)) != 0 {
				vm.Steps += steps
				return nil
			}
			if steps == n {
				break
			}
			steps++
			changed, err := vm.exec1(fr)
			if err != nil {
				vm.Steps += steps
				return err
			}
			if changed {
				break
			}
		}
		vm.Steps += steps
		if vm.halted {
			break
		}
		if vm.deadline != 0 && vm.Steps&(checkQuantum-1) == 0 &&
			time.Now().UnixNano() > vm.deadline {
			return fmt.Errorf("%w in %s", ErrDeadline, vm.Top().Fn.Name)
		}
	}
	return nil
}

// regVal reads an operand in frame fr.
func (vm *VM) regVal(fr *Frame, o mach.Opd) Val {
	switch o.Kind {
	case mach.Imm:
		return Val{I: o.Imm}
	case mach.FImm:
		return Val{F: o.F, IsF: true}
	case mach.Reg:
		if o.Class == mach.FloatClass {
			return Val{F: fr.FReg[o.R], IsF: true}
		}
		return Val{I: fr.IReg[o.R]}
	}
	return Val{}
}

func (vm *VM) setReg(fr *Frame, o mach.Opd, v Val) {
	if o.Kind != mach.Reg {
		return
	}
	if o.Class == mach.FloatClass {
		x := v.F
		if !v.IsF {
			x = float64(v.I)
		}
		fr.FReg[o.R] = x
		return
	}
	x := v.I
	if v.IsF {
		x = int64(v.F)
	}
	fr.IReg[o.R] = int64(int32(x))
}

// ReadMemInt reads the int word at byte address addr.
func (vm *VM) ReadMemInt(addr int64) (int64, error) {
	if addr < 0 || addr/4 >= int64(len(vm.mem)) {
		return 0, fmt.Errorf("vm: read out of bounds at %d", addr)
	}
	return vm.mem[addr/4].i, nil
}

// ReadMemFloat reads the float word at byte address addr.
func (vm *VM) ReadMemFloat(addr int64) (float64, error) {
	if addr < 0 || addr/4 >= int64(len(vm.mem)) {
		return 0, fmt.Errorf("vm: read out of bounds at %d", addr)
	}
	return vm.mem[addr/4].f, nil
}

// AddrOf returns the runtime byte address of obj in frame fr (or the global
// segment).
func (vm *VM) AddrOf(fr *Frame, obj *ast.Object) (int64, bool) {
	if off, ok := fr.Fn.FrameOff[obj]; ok {
		return fr.Base + off, true
	}
	if off, ok := vm.Prog.GlobalOff[obj]; ok {
		return off, true
	}
	return 0, false
}

// Step executes one instruction.
func (vm *VM) Step() error {
	fr := vm.Top()
	if fr == nil {
		vm.halted = true
		return nil
	}
	vm.Steps++
	if vm.Steps > vm.MaxSteps {
		return fmt.Errorf("%w in %s", ErrStepLimit, fr.Fn.Name)
	}
	if vm.deadline != 0 && vm.Steps&(checkQuantum-1) == 0 && time.Now().UnixNano() > vm.deadline {
		return fmt.Errorf("%w in %s", ErrDeadline, fr.Fn.Name)
	}
	_, err := vm.exec1(fr)
	return err
}

// exec1 executes the instruction at fr.pc, advancing pc. It reports
// whether the top frame changed (call, return, or halt), in which case
// the caller must reload its frame-derived state.
func (vm *VM) exec1(fr *Frame) (frameChanged bool, err error) {
	fc := fr.code
	d := &fc.code[fr.pc]
	in := d.in
	if in == nil {
		// Fell off an unterminated block: treat as void return.
		return true, vm.doReturn(Val{})
	}

	// Cycle accounting: one issue slot per instruction plus stalls until
	// register operands are ready; the destination becomes ready after the
	// opcode's latency. The use/def register lists were precomputed at
	// predecode time.
	if d.acct {
		issue := vm.Cycles
		for _, u := range fc.uses[d.useOff : d.useOff+d.useN] {
			var r int64
			if u.fl {
				r = fr.readyFv[u.r]
			} else {
				r = fr.readyI[u.r]
			}
			if r > issue {
				issue = r
			}
		}
		vm.Cycles = issue + 1
		if d.defsReg {
			done := issue + int64(d.lat)
			if d.defFl {
				fr.readyFv[d.defR] = done
			} else {
				fr.readyI[d.defR] = done
			}
		}
	}
	fr.pc++

	switch d.op {
	case mach.NOP, mach.MARKDEAD, mach.MARKAVAIL:
		// no effect

	case mach.MOV:
		vm.setReg(fr, in.Dst, vm.regVal(fr, in.A))

	case mach.GETP:
		if in.ParamIdx < len(fr.Args) {
			vm.setReg(fr, in.Dst, fr.Args[in.ParamIdx])
		}

	case mach.LA:
		addr, ok := vm.AddrOf(fr, in.Sym)
		if !ok {
			return false, fmt.Errorf("vm: la of unknown symbol %s", in.Sym.Name)
		}
		vm.setReg(fr, in.Dst, Val{I: addr})

	case mach.LW, mach.FLW:
		base := vm.regVal(fr, in.A).I
		addr := base + in.Off
		if addr < 0 || addr/4 >= int64(len(vm.mem)) {
			return false, fmt.Errorf("vm: %s out of bounds at %d (stmt %d in %s)", in.Op, addr, in.Stmt, fr.Fn.Name)
		}
		if in.Op == mach.FLW {
			vm.setReg(fr, in.Dst, Val{F: vm.mem[addr/4].f, IsF: true})
		} else {
			vm.setReg(fr, in.Dst, Val{I: vm.mem[addr/4].i})
		}

	case mach.SW, mach.FSW:
		base := vm.regVal(fr, in.A).I
		addr := base + in.Off
		if addr < 0 || addr/4 >= int64(len(vm.mem)) {
			return false, fmt.Errorf("vm: %s out of bounds at %d (stmt %d in %s)", in.Op, addr, in.Stmt, fr.Fn.Name)
		}
		v := vm.regVal(fr, in.B)
		if in.Op == mach.FSW {
			x := v.F
			if !v.IsF {
				x = float64(v.I)
			}
			vm.mem[addr/4] = slot{f: x}
		} else {
			vm.mem[addr/4] = slot{i: int64(int32(v.I))}
		}

	case mach.LWFP:
		vm.setReg(fr, in.Dst, Val{I: vm.mem[(fr.Base+in.Off)/4].i})
	case mach.FLWFP:
		vm.setReg(fr, in.Dst, Val{F: vm.mem[(fr.Base+in.Off)/4].f, IsF: true})
	case mach.SWFP:
		vm.mem[(fr.Base+in.Off)/4] = slot{i: vm.regVal(fr, in.B).I}
	case mach.FSWFP:
		x := vm.regVal(fr, in.B)
		f := x.F
		if !x.IsF {
			f = float64(x.I)
		}
		vm.mem[(fr.Base+in.Off)/4] = slot{f: f}

	case mach.CALL:
		callee := d.callee
		if callee == nil {
			return false, fmt.Errorf("vm: call of unknown function %q", in.Callee)
		}
		args := make([]Val, len(in.Args))
		for i, a := range in.Args {
			args[i] = vm.regVal(fr, a)
		}
		vm.push(callee, args, in.Dst)
		return true, nil

	case mach.RET:
		var v Val
		if in.A.Kind != mach.None {
			v = vm.regVal(fr, in.A)
		}
		return true, vm.doReturn(v)

	case mach.J:
		fr.pc = d.t0

	case mach.BNEZ:
		c := vm.regVal(fr, in.A)
		if c.I != 0 || (c.IsF && c.F != 0) {
			fr.pc = d.t0
		} else {
			fr.pc = d.t1
		}

	case mach.PRINT:
		if err := vm.doPrint(fr, in); err != nil {
			return false, err
		}

	default:
		v, err := vm.alu(fr, in)
		if err != nil {
			return false, fmt.Errorf("vm: %w (stmt %d in %s)", err, in.Stmt, fr.Fn.Name)
		}
		vm.setReg(fr, in.Dst, v)
	}
	return false, nil
}

// doPrint renders one PRINT into the output buffer, enforcing MaxOutput.
// Numbers format exactly as fmt's %d and %g would (strconv with the 'g'
// shortest form is the same rendering, without fmt's interface and state
// allocations). The limit is checked piece by piece, so output up to the
// limit is retained and the trip point is deterministic.
func (vm *VM) doPrint(fr *Frame, in *mach.Instr) error {
	limit := vm.MaxOutput
	if limit == 0 {
		limit = DefaultMaxOutput
	}
	var scratch [32]byte
	for _, a := range in.PrintFmt {
		var s string
		if a.IsStr {
			s = a.Str
		} else {
			v := vm.regVal(fr, a.Val)
			if v.IsF {
				s = string(strconv.AppendFloat(scratch[:0], v.F, 'g', -1, 64))
			} else {
				s = string(strconv.AppendInt(scratch[:0], v.I, 10))
			}
		}
		if limit > 0 && int64(vm.out.Len())+int64(len(s)) > limit {
			return fmt.Errorf("%w (%d bytes, stmt %d in %s)", ErrOutputLimit, limit, in.Stmt, fr.Fn.Name)
		}
		vm.out.WriteString(s)
	}
	return nil
}

func (vm *VM) doReturn(v Val) error {
	fr := vm.stack[len(vm.stack)-1]
	vm.sp = fr.Base
	vm.stack = vm.stack[:len(vm.stack)-1]
	if len(vm.stack) == 0 {
		vm.halted = true
		vm.retVal = v
		return nil
	}
	caller := vm.Top()
	if fr.retDst.Kind == mach.Reg {
		vm.setReg(caller, fr.retDst, v)
	}
	return nil
}

func (vm *VM) alu(fr *Frame, in *mach.Instr) (Val, error) {
	a := vm.regVal(fr, in.A)
	b := vm.regVal(fr, in.B)
	ai, bi := a.I, b.I
	af, bf := a.F, b.F
	if !a.IsF {
		af = float64(a.I)
	}
	if !b.IsF {
		bf = float64(b.I)
	}
	w := func(x int64) Val { return Val{I: int64(int32(x))} }
	bl := func(c bool) Val {
		if c {
			return Val{I: 1}
		}
		return Val{I: 0}
	}
	switch in.Op {
	case mach.ADD:
		return w(ai + bi), nil
	case mach.SUB:
		return w(ai - bi), nil
	case mach.MUL:
		return w(ai * bi), nil
	case mach.DIV:
		if bi == 0 {
			return Val{}, fmt.Errorf("integer division by zero")
		}
		return w(ai / bi), nil
	case mach.REM:
		if bi == 0 {
			return Val{}, fmt.Errorf("integer remainder by zero")
		}
		return w(ai % bi), nil
	case mach.SHL:
		return w(ai << (uint(bi) & 31)), nil
	case mach.SHR:
		return w(ai >> (uint(bi) & 31)), nil
	case mach.OR:
		return w(ai | bi), nil
	case mach.XOR:
		return w(ai ^ bi), nil
	case mach.SEQ:
		return bl(ai == bi), nil
	case mach.SNE:
		return bl(ai != bi), nil
	case mach.SLT:
		return bl(ai < bi), nil
	case mach.SLE:
		return bl(ai <= bi), nil
	case mach.SGT:
		return bl(ai > bi), nil
	case mach.SGE:
		return bl(ai >= bi), nil
	case mach.NEG:
		return w(-ai), nil
	case mach.NOT:
		return bl(ai == 0 && !a.IsF), nil
	case mach.FADD:
		return Val{F: af + bf, IsF: true}, nil
	case mach.FSUB:
		return Val{F: af - bf, IsF: true}, nil
	case mach.FMUL:
		return Val{F: af * bf, IsF: true}, nil
	case mach.FDIV:
		if bf == 0 {
			return Val{}, fmt.Errorf("float division by zero")
		}
		return Val{F: af / bf, IsF: true}, nil
	case mach.FNEG:
		return Val{F: -af, IsF: true}, nil
	case mach.FSEQ:
		return bl(af == bf), nil
	case mach.FSNE:
		return bl(af != bf), nil
	case mach.FSLT:
		return bl(af < bf), nil
	case mach.FSLE:
		return bl(af <= bf), nil
	case mach.FSGT:
		return bl(af > bf), nil
	case mach.FSGE:
		return bl(af >= bf), nil
	case mach.CVTIF:
		return Val{F: float64(ai), IsF: true}, nil
	case mach.CVTFI:
		return w(int64(af)), nil
	}
	return Val{}, fmt.Errorf("unimplemented opcode %s", in.Op)
}
