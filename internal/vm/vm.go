// Package vm implements the simulator for mcc's virtual MIPS-like target.
// It executes machine code either before register allocation (virtual
// registers, one per value) or after (physical registers plus spill slots),
// counts cycles using per-opcode latencies, and exposes the debugger hooks
// the paper's model needs: run-to-breakpoint, single-step, and inspection
// of registers and memory at the stopped position.
package vm

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/mach"
)

// ErrStepLimit is returned (wrapped) when execution exhausts MaxSteps —
// the per-session execution budget of the debug-session server.
var ErrStepLimit = errors.New("vm: step limit exceeded")

// ErrDeadline is returned (wrapped) when execution runs past the wall-clock
// deadline set by SetDeadline — the server's per-request timeout. The VM
// stays consistent at the instruction boundary where the deadline was
// noticed: cycles and position reflect exactly the instructions executed,
// so a timed-out continue still conserves the session's cycle accounting.
var ErrDeadline = errors.New("vm: deadline exceeded")

// Val is one runtime value (integer word or float).
type Val struct {
	I   int64
	F   float64
	IsF bool
}

// slot is one 4-byte memory word; the simulator stores either view.
type slot struct {
	i int64
	f float64
}

// Frame is one activation record.
type Frame struct {
	Fn   *mach.Func
	IReg []int64
	FReg []float64
	Base int64 // byte address of this frame's memory area
	Args []Val

	// readyI/readyFv model result latency: the cycle at which each
	// register's value becomes available. An instruction stalls until its
	// operands are ready, so instruction scheduling measurably reduces
	// cycle counts.
	readyI  []int64
	readyFv []int64

	block *mach.Block
	idx   int
	// where the caller wants the return value
	retDst mach.Opd
}

// Pos identifies an execution position (the debugger's program counter).
type Pos struct {
	Fn    *mach.Func
	Block *mach.Block
	Idx   int
}

// VM is the simulator.
type VM struct {
	Prog *mach.Program

	mem   []slot // globals at [0, globalSlots), frames stacked above
	sp    int64  // next free byte address for frames
	out   strings.Builder
	stack []*Frame

	Cycles int64
	Steps  int64
	// MaxSteps bounds execution (0 = default limit).
	MaxSteps int64
	// deadline, when nonzero, is a wall-clock bound (UnixNano) checked
	// every 1024 steps; past it Step returns ErrDeadline.
	deadline int64

	halted bool
	retVal Val
}

// New prepares a VM for prog with main as the entry point.
func New(prog *mach.Program) (*VM, error) {
	main := prog.LookupFunc("main")
	if main == nil {
		return nil, fmt.Errorf("vm: program has no main")
	}
	vm := &VM{Prog: prog, MaxSteps: 200_000_000}
	globalBytes := prog.GlobalSize
	vm.mem = make([]slot, (globalBytes/4)+4)
	vm.sp = (globalBytes + 7) &^ 3
	for obj, init := range prog.GlobalInit {
		off := prog.GlobalOff[obj] / 4
		if init.Kind == 0 {
			continue
		}
		vm.mem[off] = slot{i: init.Int, f: init.Fl}
	}
	vm.push(main, nil, mach.Opd{})
	return vm, nil
}

func (vm *VM) push(fn *mach.Func, args []Val, retDst mach.Opd) {
	nInt, nFloat := fn.NumVregs, fn.NumVregs
	if fn.Allocated {
		nInt, nFloat = mach.NumIntRegs, mach.NumFloatRegs
	}
	fr := &Frame{
		Fn:      fn,
		IReg:    make([]int64, nInt+1),
		FReg:    make([]float64, nFloat+1),
		readyI:  make([]int64, nInt+1),
		readyFv: make([]int64, nFloat+1),
		Base:    vm.sp,
		Args:    args,
		block:   fn.Entry,
		retDst:  retDst,
	}
	need := (fn.FrameSize + 7) &^ 3
	vm.sp += need
	for int64(len(vm.mem))*4 < vm.sp {
		vm.mem = append(vm.mem, slot{})
	}
	vm.stack = append(vm.stack, fr)
}

// SetDeadline bounds subsequent execution by wall-clock time: once t has
// passed, Step (and hence Run/RunUntil) returns an error wrapping
// ErrDeadline. The zero time clears the deadline. The check is amortized —
// the clock is read once every 1024 steps — so steady-state stepping pays
// one integer compare.
func (vm *VM) SetDeadline(t time.Time) {
	if t.IsZero() {
		vm.deadline = 0
		return
	}
	vm.deadline = t.UnixNano()
}

// Halted reports whether the program has finished.
func (vm *VM) Halted() bool { return vm.halted }

// ExitValue returns main's return value once halted.
func (vm *VM) ExitValue() int64 { return vm.retVal.I }

// Output returns everything printed so far.
func (vm *VM) Output() string { return vm.out.String() }

// Top returns the current (innermost) frame, or nil when halted.
func (vm *VM) Top() *Frame {
	if len(vm.stack) == 0 {
		return nil
	}
	return vm.stack[len(vm.stack)-1]
}

// Position returns the current execution position.
func (vm *VM) Position() Pos {
	fr := vm.Top()
	if fr == nil {
		return Pos{}
	}
	return Pos{Fn: fr.Fn, Block: fr.block, Idx: fr.idx}
}

// CurrentInstr returns the instruction about to execute, or nil.
func (vm *VM) CurrentInstr() *mach.Instr {
	fr := vm.Top()
	if fr == nil || fr.idx >= len(fr.block.Instrs) {
		return nil
	}
	return fr.block.Instrs[fr.idx]
}

// Run executes until the program halts.
func (vm *VM) Run() error {
	for !vm.halted {
		if err := vm.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil executes until stop(pos) returns true (checked before each
// instruction) or the program halts.
func (vm *VM) RunUntil(stop func(Pos) bool) error {
	for !vm.halted {
		if stop(vm.Position()) {
			return nil
		}
		if err := vm.Step(); err != nil {
			return err
		}
	}
	return nil
}

// regVal reads an operand in frame fr.
func (vm *VM) regVal(fr *Frame, o mach.Opd) Val {
	switch o.Kind {
	case mach.Imm:
		return Val{I: o.Imm}
	case mach.FImm:
		return Val{F: o.F, IsF: true}
	case mach.Reg:
		if o.Class == mach.FloatClass {
			return Val{F: fr.FReg[o.R], IsF: true}
		}
		return Val{I: fr.IReg[o.R]}
	}
	return Val{}
}

func (vm *VM) setReg(fr *Frame, o mach.Opd, v Val) {
	if o.Kind != mach.Reg {
		return
	}
	if o.Class == mach.FloatClass {
		x := v.F
		if !v.IsF {
			x = float64(v.I)
		}
		fr.FReg[o.R] = x
		return
	}
	x := v.I
	if v.IsF {
		x = int64(v.F)
	}
	fr.IReg[o.R] = int64(int32(x))
}

// ReadMemInt reads the int word at byte address addr.
func (vm *VM) ReadMemInt(addr int64) (int64, error) {
	if addr < 0 || addr/4 >= int64(len(vm.mem)) {
		return 0, fmt.Errorf("vm: read out of bounds at %d", addr)
	}
	return vm.mem[addr/4].i, nil
}

// ReadMemFloat reads the float word at byte address addr.
func (vm *VM) ReadMemFloat(addr int64) (float64, error) {
	if addr < 0 || addr/4 >= int64(len(vm.mem)) {
		return 0, fmt.Errorf("vm: read out of bounds at %d", addr)
	}
	return vm.mem[addr/4].f, nil
}

// AddrOf returns the runtime byte address of obj in frame fr (or the global
// segment).
func (vm *VM) AddrOf(fr *Frame, obj *ast.Object) (int64, bool) {
	if off, ok := fr.Fn.FrameOff[obj]; ok {
		return fr.Base + off, true
	}
	if off, ok := vm.Prog.GlobalOff[obj]; ok {
		return off, true
	}
	return 0, false
}

// Step executes one instruction.
func (vm *VM) Step() error {
	fr := vm.Top()
	if fr == nil {
		vm.halted = true
		return nil
	}
	vm.Steps++
	if vm.Steps > vm.MaxSteps {
		return fmt.Errorf("%w in %s", ErrStepLimit, fr.Fn.Name)
	}
	if vm.deadline != 0 && vm.Steps&1023 == 0 && time.Now().UnixNano() > vm.deadline {
		return fmt.Errorf("%w in %s", ErrDeadline, fr.Fn.Name)
	}
	if fr.idx >= len(fr.block.Instrs) {
		// Fell off an unterminated block: treat as void return.
		return vm.doReturn(Val{})
	}
	in := fr.block.Instrs[fr.idx]
	vm.accountCycles(fr, in)
	fr.idx++

	switch in.Op {
	case mach.NOP, mach.MARKDEAD, mach.MARKAVAIL:
		// no effect

	case mach.MOV:
		vm.setReg(fr, in.Dst, vm.regVal(fr, in.A))

	case mach.GETP:
		if in.ParamIdx < len(fr.Args) {
			vm.setReg(fr, in.Dst, fr.Args[in.ParamIdx])
		}

	case mach.LA:
		addr, ok := vm.AddrOf(fr, in.Sym)
		if !ok {
			return fmt.Errorf("vm: la of unknown symbol %s", in.Sym.Name)
		}
		vm.setReg(fr, in.Dst, Val{I: addr})

	case mach.LW, mach.FLW:
		base := vm.regVal(fr, in.A).I
		addr := base + in.Off
		if addr < 0 || addr/4 >= int64(len(vm.mem)) {
			return fmt.Errorf("vm: %s out of bounds at %d (stmt %d in %s)", in.Op, addr, in.Stmt, fr.Fn.Name)
		}
		if in.Op == mach.FLW {
			vm.setReg(fr, in.Dst, Val{F: vm.mem[addr/4].f, IsF: true})
		} else {
			vm.setReg(fr, in.Dst, Val{I: vm.mem[addr/4].i})
		}

	case mach.SW, mach.FSW:
		base := vm.regVal(fr, in.A).I
		addr := base + in.Off
		if addr < 0 || addr/4 >= int64(len(vm.mem)) {
			return fmt.Errorf("vm: %s out of bounds at %d (stmt %d in %s)", in.Op, addr, in.Stmt, fr.Fn.Name)
		}
		v := vm.regVal(fr, in.B)
		if in.Op == mach.FSW {
			x := v.F
			if !v.IsF {
				x = float64(v.I)
			}
			vm.mem[addr/4] = slot{f: x}
		} else {
			vm.mem[addr/4] = slot{i: int64(int32(v.I))}
		}

	case mach.LWFP:
		vm.setReg(fr, in.Dst, Val{I: vm.mem[(fr.Base+in.Off)/4].i})
	case mach.FLWFP:
		vm.setReg(fr, in.Dst, Val{F: vm.mem[(fr.Base+in.Off)/4].f, IsF: true})
	case mach.SWFP:
		vm.mem[(fr.Base+in.Off)/4] = slot{i: vm.regVal(fr, in.B).I}
	case mach.FSWFP:
		x := vm.regVal(fr, in.B)
		f := x.F
		if !x.IsF {
			f = float64(x.I)
		}
		vm.mem[(fr.Base+in.Off)/4] = slot{f: f}

	case mach.CALL:
		callee := vm.Prog.LookupFunc(in.Callee)
		if callee == nil {
			return fmt.Errorf("vm: call of unknown function %q", in.Callee)
		}
		args := make([]Val, len(in.Args))
		for i, a := range in.Args {
			args[i] = vm.regVal(fr, a)
		}
		vm.push(callee, args, in.Dst)

	case mach.RET:
		var v Val
		if in.A.Kind != mach.None {
			v = vm.regVal(fr, in.A)
		}
		return vm.doReturn(v)

	case mach.J:
		fr.block = fr.block.Succs[0]
		fr.idx = 0

	case mach.BNEZ:
		c := vm.regVal(fr, in.A)
		taken := c.I != 0 || (c.IsF && c.F != 0)
		if taken {
			fr.block = fr.block.Succs[0]
		} else {
			fr.block = fr.block.Succs[1]
		}
		fr.idx = 0

	case mach.PRINT:
		for _, a := range in.PrintFmt {
			if a.IsStr {
				vm.out.WriteString(a.Str)
			} else {
				v := vm.regVal(fr, a.Val)
				if v.IsF {
					fmt.Fprintf(&vm.out, "%g", v.F)
				} else {
					fmt.Fprintf(&vm.out, "%d", v.I)
				}
			}
		}

	default:
		v, err := vm.alu(fr, in)
		if err != nil {
			return fmt.Errorf("vm: %w (stmt %d in %s)", err, in.Stmt, fr.Fn.Name)
		}
		vm.setReg(fr, in.Dst, v)
	}
	return nil
}

// accountCycles advances the clock: one issue slot per instruction plus
// stalls until register operands are ready; the destination becomes ready
// after the opcode's latency.
func (vm *VM) accountCycles(fr *Frame, in *mach.Instr) {
	if in.Op == mach.NOP || in.IsMarker() {
		return
	}
	var buf [8]mach.Opd
	issue := vm.Cycles
	for _, u := range in.Uses(buf[:0]) {
		var r int64
		if u.Class == mach.FloatClass {
			r = fr.readyFv[u.R]
		} else {
			r = fr.readyI[u.R]
		}
		if r > issue {
			issue = r
		}
	}
	vm.Cycles = issue + 1
	if d := in.Def(); d.IsReg() {
		done := issue + int64(in.Op.Latency())
		if d.Class == mach.FloatClass {
			fr.readyFv[d.R] = done
		} else {
			fr.readyI[d.R] = done
		}
	}
}

func (vm *VM) doReturn(v Val) error {
	fr := vm.stack[len(vm.stack)-1]
	vm.sp = fr.Base
	vm.stack = vm.stack[:len(vm.stack)-1]
	if len(vm.stack) == 0 {
		vm.halted = true
		vm.retVal = v
		return nil
	}
	caller := vm.Top()
	if fr.retDst.Kind == mach.Reg {
		vm.setReg(caller, fr.retDst, v)
	}
	return nil
}

func (vm *VM) alu(fr *Frame, in *mach.Instr) (Val, error) {
	a := vm.regVal(fr, in.A)
	b := vm.regVal(fr, in.B)
	ai, bi := a.I, b.I
	af, bf := a.F, b.F
	if !a.IsF {
		af = float64(a.I)
	}
	if !b.IsF {
		bf = float64(b.I)
	}
	w := func(x int64) Val { return Val{I: int64(int32(x))} }
	bl := func(c bool) Val {
		if c {
			return Val{I: 1}
		}
		return Val{I: 0}
	}
	switch in.Op {
	case mach.ADD:
		return w(ai + bi), nil
	case mach.SUB:
		return w(ai - bi), nil
	case mach.MUL:
		return w(ai * bi), nil
	case mach.DIV:
		if bi == 0 {
			return Val{}, fmt.Errorf("integer division by zero")
		}
		return w(ai / bi), nil
	case mach.REM:
		if bi == 0 {
			return Val{}, fmt.Errorf("integer remainder by zero")
		}
		return w(ai % bi), nil
	case mach.SHL:
		return w(ai << (uint(bi) & 31)), nil
	case mach.SHR:
		return w(ai >> (uint(bi) & 31)), nil
	case mach.OR:
		return w(ai | bi), nil
	case mach.XOR:
		return w(ai ^ bi), nil
	case mach.SEQ:
		return bl(ai == bi), nil
	case mach.SNE:
		return bl(ai != bi), nil
	case mach.SLT:
		return bl(ai < bi), nil
	case mach.SLE:
		return bl(ai <= bi), nil
	case mach.SGT:
		return bl(ai > bi), nil
	case mach.SGE:
		return bl(ai >= bi), nil
	case mach.NEG:
		return w(-ai), nil
	case mach.NOT:
		return bl(ai == 0 && !a.IsF), nil
	case mach.FADD:
		return Val{F: af + bf, IsF: true}, nil
	case mach.FSUB:
		return Val{F: af - bf, IsF: true}, nil
	case mach.FMUL:
		return Val{F: af * bf, IsF: true}, nil
	case mach.FDIV:
		if bf == 0 {
			return Val{}, fmt.Errorf("float division by zero")
		}
		return Val{F: af / bf, IsF: true}, nil
	case mach.FNEG:
		return Val{F: -af, IsF: true}, nil
	case mach.FSEQ:
		return bl(af == bf), nil
	case mach.FSNE:
		return bl(af != bf), nil
	case mach.FSLT:
		return bl(af < bf), nil
	case mach.FSLE:
		return bl(af <= bf), nil
	case mach.FSGT:
		return bl(af > bf), nil
	case mach.FSGE:
		return bl(af >= bf), nil
	case mach.CVTIF:
		return Val{F: float64(ai), IsF: true}, nil
	case mach.CVTFI:
		return w(int64(af)), nil
	}
	return Val{}, fmt.Errorf("unimplemented opcode %s", in.Op)
}
