// Predecoded dispatch: every mach.Func is flattened once into a dense,
// pc-indexed instruction array so the execution hot loop is an array walk
// instead of block-pointer/index chasing. The flattening also precomputes
// everything the per-instruction work used to rediscover on every step:
// the register uses/def for cycle accounting (mach.Instr.Uses allocates a
// buffer walk per instruction), the resolved callee of every CALL
// (LookupFunc is a linear scan), and branch targets as pc values.
//
// The predecoded form is computed once per mach.Program — cached on the
// program itself via Program.Predecoded — and shared by every VM that
// executes it, so a server holding one artifact open across thousands of
// sessions pays the flattening once.
package vm

import (
	"sync/atomic"

	"repro/internal/mach"
)

// dinstr is one predecoded instruction slot.
type dinstr struct {
	// in is the original machine instruction, nil for the implicit-return
	// sentinel appended after a block that falls off its end without a
	// terminator (the VM treats that as a void return).
	in *mach.Instr
	op mach.Opcode

	// t0/t1 are branch-target pcs: J goes to t0, BNEZ to t0 when taken and
	// t1 when not.
	t0, t1 int32

	// callee is the predecoded target of a CALL, nil when the callee does
	// not exist (the error is reported at execution time, like before).
	callee *funcCode

	// Cycle accounting, precomputed from Uses/Def/Latency. acct is false
	// for NOP and the marker pseudo-instructions (they cost nothing).
	acct    bool
	lat     int32
	useOff  int32
	useN    int32
	defsReg bool
	defFl   bool
	defR    int32
}

// useRef is one register read for cycle accounting.
type useRef struct {
	fl bool
	r  int32
}

// funcCode is the predecoded form of one function.
type funcCode struct {
	fn    *mach.Func
	code  []dinstr
	uses  []useRef // shared backing for dinstr.useOff/useN
	entry int32

	// blocks/idxs map a pc back to the debugger-visible position (the
	// block and index within it). The sentinel pc of a fall-off block maps
	// to idx == len(block.Instrs), exactly where the legacy interpreter's
	// cursor sat when it noticed the fall-off.
	blocks []*mach.Block
	idxs   []int32

	// startOf maps each block to the pc of its first slot, so a
	// debuginfo.Loc{Block, Idx} becomes pc = startOf[Block] + Idx.
	startOf map[*mach.Block]int32

	// stmtMask has one bit per pc, set where the instruction carries a
	// source-statement tag (Stmt >= 0): the stopping points of
	// source-level single-stepping.
	stmtMask []uint64
}

// progCode is the predecoded form of one program.
type progCode struct {
	prog  *mach.Program
	funcs map[*mach.Func]*funcCode
}

// predecode builds (or fetches) the shared predecoded form of prog.
func predecode(prog *mach.Program) *progCode {
	return prog.Predecoded(func() any {
		pc := &progCode{prog: prog, funcs: make(map[*mach.Func]*funcCode, len(prog.Funcs))}
		for _, f := range prog.Funcs {
			pc.funcs[f] = flatten(f)
		}
		// Resolve CALL targets in a second pass so mutual recursion works.
		for _, fc := range pc.funcs {
			for i := range fc.code {
				d := &fc.code[i]
				if d.in != nil && d.op == mach.CALL {
					if callee := prog.LookupFunc(d.in.Callee); callee != nil {
						d.callee = pc.funcs[callee]
					}
				}
			}
		}
		return pc
	}).(*progCode)
}

// flatten lays f's blocks out in order, appending an implicit-return
// sentinel after every block that does not end in a terminator.
func flatten(f *mach.Func) *funcCode {
	fc := &funcCode{fn: f, startOf: make(map[*mach.Block]int32, len(f.Blocks))}
	for _, b := range f.Blocks {
		fc.startOf[b] = int32(len(fc.code))
		for idx, in := range b.Instrs {
			d := decodeOne(fc, in)
			fc.code = append(fc.code, d)
			fc.blocks = append(fc.blocks, b)
			fc.idxs = append(fc.idxs, int32(idx))
		}
		if b.Term() == nil {
			// Fall-off: executing this slot performs a void return.
			fc.code = append(fc.code, dinstr{op: mach.RET})
			fc.blocks = append(fc.blocks, b)
			fc.idxs = append(fc.idxs, int32(len(b.Instrs)))
		}
	}
	// Branch targets need every block's start pc, so resolve them after
	// the layout pass.
	for i := range fc.code {
		d := &fc.code[i]
		if d.in == nil {
			continue
		}
		switch d.op {
		case mach.J:
			d.t0 = fc.startOf[fc.blocks[i].Succs[0]]
		case mach.BNEZ:
			d.t0 = fc.startOf[fc.blocks[i].Succs[0]]
			d.t1 = fc.startOf[fc.blocks[i].Succs[1]]
		}
	}
	fc.stmtMask = make([]uint64, (len(fc.code)+63)/64)
	for i, d := range fc.code {
		if d.in != nil && d.in.Stmt >= 0 {
			fc.stmtMask[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	fc.entry = fc.startOf[f.Entry]
	return fc
}

// decodeOne precomputes the per-instruction cycle-accounting inputs.
func decodeOne(fc *funcCode, in *mach.Instr) dinstr {
	d := dinstr{in: in, op: in.Op}
	if in.Op == mach.NOP || in.IsMarker() {
		return d
	}
	d.acct = true
	d.lat = int32(in.Op.Latency())
	var buf [8]mach.Opd
	d.useOff = int32(len(fc.uses))
	for _, u := range in.Uses(buf[:0]) {
		fc.uses = append(fc.uses, useRef{fl: u.Class == mach.FloatClass, r: int32(u.R)})
	}
	d.useN = int32(len(fc.uses)) - d.useOff
	if def := in.Def(); def.IsReg() {
		d.defsReg = true
		d.defFl = def.Class == mach.FloatClass
		d.defR = int32(def.R)
	}
	return d
}

// pcOf maps a (block, idx) position to its pc. idx may equal
// len(block.Instrs) only for fall-off blocks (the sentinel slot).
func (fc *funcCode) pcOf(b *mach.Block, idx int) (int32, bool) {
	start, ok := fc.startOf[b]
	if !ok {
		return 0, false
	}
	pc := start + int32(idx)
	if pc < 0 || int(pc) >= len(fc.code) || fc.blocks[pc] != b {
		return 0, false
	}
	return pc, true
}

// BreakSet is a compiled set of stop positions over one program: one bit
// per predecoded pc. The execution fast path tests a single bit before
// each instruction instead of building a Pos and calling a predicate
// closure. A BreakSet is only valid for VMs over the program it was
// compiled for.
type BreakSet struct {
	pc    *progCode
	masks map[*mach.Func][]uint64

	// stepMode: functions without an explicit mask stop at every
	// statement-boundary instruction (the source-level step rule) instead
	// of never stopping.
	stepMode bool
}

// NewBreakSet returns an empty stop set for the VM's program. Add stop
// positions with Add; pass the set to RunBreaks.
func (vm *VM) NewBreakSet() *BreakSet {
	return &BreakSet{pc: vm.pcode, masks: map[*mach.Func][]uint64{}}
}

// Add arms a stop at instruction idx of block b in fn. It reports whether
// the position exists in the predecoded layout.
func (bs *BreakSet) Add(fn *mach.Func, b *mach.Block, idx int) bool {
	fc, ok := bs.pc.funcs[fn]
	if !ok {
		return false
	}
	pc, ok := fc.pcOf(b, idx)
	if !ok {
		return false
	}
	m := bs.masks[fn]
	if m == nil {
		m = make([]uint64, len(fc.stmtMask))
		bs.masks[fn] = m
	}
	m[pc>>6] |= 1 << (uint(pc) & 63)
	return true
}

// maskOf returns fn's stop bitmap, or nil when execution never stops in
// fn.
func (bs *BreakSet) maskOf(fn *mach.Func) []uint64 {
	if m, ok := bs.masks[fn]; ok {
		return m
	}
	if bs.stepMode {
		if fc, ok := bs.pc.funcs[fn]; ok {
			return fc.stmtMask
		}
	}
	return nil
}

// StepBreakSet compiles the source-level single-step stop rule into a
// BreakSet: execution stops at any statement-tagged instruction of a
// function other than fn, and at any statement-tagged instruction of fn
// whose statement differs from stmt. This is exactly the predicate
// debugger.Step used to evaluate per instruction through RunUntil.
func (vm *VM) StepBreakSet(fn *mach.Func, stmt int) *BreakSet {
	bs := &BreakSet{pc: vm.pcode, masks: map[*mach.Func][]uint64{}, stepMode: true}
	fc, ok := vm.pcode.funcs[fn]
	if !ok {
		return bs
	}
	m := make([]uint64, len(fc.stmtMask))
	copy(m, fc.stmtMask)
	for i, d := range fc.code {
		if d.in != nil && d.in.Stmt >= 0 && d.in.Stmt == stmt {
			m[i>>6] &^= 1 << (uint(i) & 63)
		}
	}
	bs.masks[fn] = m
	return bs
}

// fastRuns/slowRuns count run-loop invocations by path, process-wide: the
// predecoded bitmap loop (RunBreaks) vs the closure-predicate reference
// loop (RunUntilFunc). The CI bench smoke asserts serving load stays on
// the fast path by checking the slow counter does not move.
var fastRuns, slowRuns atomic.Int64

// PathStats reports how many run-loop invocations took the predecoded
// bitmap fast path vs the closure-predicate slow path since process
// start.
func PathStats() (fast, slow int64) {
	return fastRuns.Load(), slowRuns.Load()
}
