package vm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/mach"
	"repro/internal/opt"
)

const loopProg = `
int helper(int v) {
	return v * 2;
}
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 100; i++) {
		s = s + helper(i);
		print(s);
	}
	return s;
}
`

// TestPredecodeShared verifies the predecoded form is built once per
// program and shared across VMs.
func TestPredecodeShared(t *testing.T) {
	_, v1 := compile(t, loopProg, opt.O2())
	v2, err := New(v1.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if v1.pcode != v2.pcode {
		t.Error("two VMs over one program should share the predecoded form")
	}
	if len(v1.pcode.funcs) != len(v1.Prog.Funcs) {
		t.Errorf("predecoded %d funcs, program has %d", len(v1.pcode.funcs), len(v1.Prog.Funcs))
	}
}

// TestPredecodeLayout checks every (block, idx) position round-trips
// through the flat layout, including the implicit-return sentinel slot
// of fall-off blocks.
func TestPredecodeLayout(t *testing.T) {
	_, v := compile(t, loopProg, opt.O2())
	for fn, fc := range v.pcode.funcs {
		seen := 0
		for _, b := range fn.Blocks {
			n := len(b.Instrs)
			for idx := 0; idx < n; idx++ {
				pc, ok := fc.pcOf(b, idx)
				if !ok {
					t.Fatalf("%s: pcOf(%v, %d) failed", fn.Name, b, idx)
				}
				if fc.blocks[pc] != b || int(fc.idxs[pc]) != idx {
					t.Fatalf("%s: pc %d maps back to wrong position", fn.Name, pc)
				}
				if fc.code[pc].in != b.Instrs[idx] {
					t.Fatalf("%s: pc %d holds wrong instruction", fn.Name, pc)
				}
				seen++
			}
			if b.Term() == nil {
				pc, ok := fc.pcOf(b, n)
				if !ok {
					t.Fatalf("%s: fall-off block has no sentinel slot", fn.Name)
				}
				d := fc.code[pc]
				if d.in != nil || d.op != mach.RET {
					t.Fatalf("%s: sentinel slot is %+v, want implicit RET", fn.Name, d)
				}
				seen++
			}
		}
		if seen != len(fc.code) {
			t.Errorf("%s: layout has %d slots, walked %d", fn.Name, len(fc.code), seen)
		}
	}
}

// TestBreakSetAdd exercises Add's validation: real positions arm, alien
// blocks and out-of-range indices are rejected.
func TestBreakSetAdd(t *testing.T) {
	_, v := compile(t, loopProg, opt.O2())
	main := v.Prog.LookupFunc("main")
	helper := v.Prog.LookupFunc("helper")
	bs := v.NewBreakSet()
	if !bs.Add(main, main.Entry, 0) {
		t.Error("Add at main entry should succeed")
	}
	if bs.Add(main, helper.Entry, 0) {
		t.Error("Add with a block from another function should fail")
	}
	if bs.Add(main, main.Entry, 10_000) {
		t.Error("Add past the end of a block should fail")
	}
	if bs.maskOf(main) == nil {
		t.Error("armed function should have a mask")
	}
	if bs.maskOf(helper) != nil {
		t.Error("unarmed function should have a nil mask outside step mode")
	}
}

// TestRunBreaksWrongProgram: a BreakSet compiled for one program must be
// rejected by a VM over another.
func TestRunBreaksWrongProgram(t *testing.T) {
	_, v1 := compile(t, loopProg, opt.O2())
	_, v2 := compile(t, loopProg, opt.O0())
	bs := v1.NewBreakSet()
	if err := v2.RunBreaks(bs, false); err == nil {
		t.Fatal("RunBreaks accepted a BreakSet for a different program")
	}
}

// TestRunBreaksStepBudget: the fused counter must reproduce the exact
// legacy budget semantics — same error, same final Steps value as the
// reference path.
func TestRunBreaksStepBudget(t *testing.T) {
	_, vFull := compile(t, loopProg, opt.O2())
	if err := vFull.Run(); err != nil {
		t.Fatal(err)
	}
	total := vFull.Steps
	for _, budget := range []int64{1, 7, 100, 1023, 1024, 1025, total - 1} {
		_, vFast := compile(t, loopProg, opt.O2())
		vFast.MaxSteps = budget
		errFast := vFast.RunBreaks(vFast.NewBreakSet(), false)

		_, vRef := compile(t, loopProg, opt.O2())
		vRef.MaxSteps = budget
		errRef := vRef.RunUntilFunc(func(Pos) bool { return false })

		if !errors.Is(errFast, ErrStepLimit) || !errors.Is(errRef, ErrStepLimit) {
			t.Fatalf("budget %d: fast=%v ref=%v, want ErrStepLimit from both", budget, errFast, errRef)
		}
		if vFast.Steps != vRef.Steps {
			t.Errorf("budget %d: Steps fast=%d ref=%d", budget, vFast.Steps, vRef.Steps)
		}
		if vFast.Cycles != vRef.Cycles {
			t.Errorf("budget %d: Cycles fast=%d ref=%d", budget, vFast.Cycles, vRef.Cycles)
		}
	}
}

// TestRunBreaksDeadline: an already-expired deadline must stop the fast
// path with ErrDeadline (checked at the quantum boundary).
func TestRunBreaksDeadline(t *testing.T) {
	_, v := compile(t, loopProg, opt.O2())
	v.SetDeadline(time.Now().Add(-time.Second))
	err := v.RunBreaks(v.NewBreakSet(), false)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("RunBreaks with expired deadline = %v, want ErrDeadline", err)
	}
}

// TestDeadlineTinyProgram: a program far shorter than checkQuantum steps
// must still honor an already-expired deadline, on both engines, without
// executing a single instruction. Before the entry-point check landed,
// the deadline was only consulted at checkQuantum-aligned step counts,
// so a request admitted after its deadline (queueing delay under soak
// load) ran tiny workloads to completion instead of failing fast —
// exactly the stall the oracle soak's short randprog corpus provokes.
func TestDeadlineTinyProgram(t *testing.T) {
	const tinyProg = `int main() { int a = 3; return a + 4; }`

	_, vFast := compile(t, tinyProg, opt.O2())
	vFast.SetDeadline(time.Now().Add(-time.Second))
	errFast := vFast.RunBreaks(vFast.NewBreakSet(), false)
	if !errors.Is(errFast, ErrDeadline) {
		t.Fatalf("fast path: %v, want ErrDeadline", errFast)
	}
	if vFast.Steps != 0 {
		t.Errorf("fast path executed %d steps past an expired deadline", vFast.Steps)
	}

	_, vRef := compile(t, tinyProg, opt.O2())
	vRef.SetDeadline(time.Now().Add(-time.Second))
	errRef := vRef.RunUntilFunc(func(Pos) bool { return false })
	if !errors.Is(errRef, ErrDeadline) {
		t.Fatalf("ref path: %v, want ErrDeadline", errRef)
	}
	if vRef.Steps != vFast.Steps {
		t.Errorf("Steps at expired deadline: fast %d ref %d", vFast.Steps, vRef.Steps)
	}

	// Clearing the deadline lets the same VM resume and finish: the cutoff
	// must leave it consistent at the instruction boundary.
	vFast.SetDeadline(time.Time{})
	if err := vFast.RunBreaks(vFast.NewBreakSet(), false); err != nil {
		t.Fatalf("resume after cleared deadline: %v", err)
	}
	if !vFast.Halted() {
		t.Error("program should have finished after the deadline was cleared")
	}
}

// TestOutputLimit: printing past MaxOutput fails with ErrOutputLimit,
// deterministically, retaining everything printed before the limit; the
// reference path trips identically.
func TestOutputLimit(t *testing.T) {
	_, vFast := compile(t, loopProg, opt.O2())
	vFast.MaxOutput = 64
	errFast := vFast.RunBreaks(vFast.NewBreakSet(), false)
	if !errors.Is(errFast, ErrOutputLimit) {
		t.Fatalf("fast path: %v, want ErrOutputLimit", errFast)
	}
	if len(vFast.Output()) > 64 {
		t.Errorf("retained output %d bytes, cap is 64", len(vFast.Output()))
	}

	_, vRef := compile(t, loopProg, opt.O2())
	vRef.MaxOutput = 64
	errRef := vRef.RunUntilFunc(func(Pos) bool { return false })
	if !errors.Is(errRef, ErrOutputLimit) {
		t.Fatalf("ref path: %v, want ErrOutputLimit", errRef)
	}
	if vFast.Output() != vRef.Output() {
		t.Errorf("retained output differs: fast %q ref %q", vFast.Output(), vRef.Output())
	}
	if vFast.Steps != vRef.Steps {
		t.Errorf("Steps at limit: fast %d ref %d", vFast.Steps, vRef.Steps)
	}
	if !strings.Contains(errFast.Error(), "stmt") {
		t.Errorf("error should name the statement: %v", errFast)
	}
}

// TestOutputUnlimited: a negative MaxOutput disables the cap.
func TestOutputUnlimited(t *testing.T) {
	_, v := compile(t, loopProg, opt.O2())
	v.MaxOutput = -1
	if err := v.Run(); err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	if len(v.Output()) == 0 {
		t.Fatal("program should have printed")
	}
}

// TestPathStats: RunBreaks increments the fast counter, RunUntilFunc the
// slow one.
func TestPathStats(t *testing.T) {
	f0, s0 := PathStats()
	_, v := compile(t, loopProg, opt.O2())
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	f1, s1 := PathStats()
	if f1 <= f0 {
		t.Errorf("fast counter did not move: %d -> %d", f0, f1)
	}
	if s1 != s0 {
		t.Errorf("slow counter moved on a fast run: %d -> %d", s0, s1)
	}
	_, v2 := compile(t, loopProg, opt.O2())
	if err := v2.RunUntilFunc(func(Pos) bool { return false }); err != nil {
		t.Fatal(err)
	}
	_, s2 := PathStats()
	if s2 != s1+1 {
		t.Errorf("slow counter after RunUntilFunc: %d, want %d", s2, s1+1)
	}
}

// TestStepBreakSetRule: the compiled step rule stops at statement
// boundaries of other statements/functions but never at instructions of
// the starting statement in the starting function.
func TestStepBreakSetRule(t *testing.T) {
	_, v := compile(t, loopProg, opt.O2())
	main := v.Prog.LookupFunc("main")
	helper := v.Prog.LookupFunc("helper")
	bs := v.StepBreakSet(main, 1)
	mMain := bs.maskOf(main)
	if mMain == nil {
		t.Fatal("step set should carry a mask for the starting function")
	}
	fc := v.pcode.funcs[main]
	for pc, d := range fc.code {
		set := mMain[pc>>6]&(1<<(uint(pc)&63)) != 0
		if d.in == nil {
			if set {
				t.Errorf("sentinel pc %d should not be a stop", pc)
			}
			continue
		}
		wantSet := d.in.Stmt >= 0 && d.in.Stmt != 1
		if set != wantSet {
			t.Errorf("pc %d (stmt %d): stop bit %v, want %v", pc, d.in.Stmt, set, wantSet)
		}
	}
	// Step mode: other functions stop at every statement boundary.
	mh := bs.maskOf(helper)
	if mh == nil {
		t.Fatal("step mode should give other functions their stmt mask")
	}
	hc := v.pcode.funcs[helper]
	for pc, d := range hc.code {
		set := mh[pc>>6]&(1<<(uint(pc)&63)) != 0
		wantSet := d.in != nil && d.in.Stmt >= 0
		if set != wantSet {
			t.Errorf("helper pc %d: stop bit %v, want %v", pc, set, wantSet)
		}
	}
}
