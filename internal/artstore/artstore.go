// Package artstore binds the generic storage layer to the compiler: it
// caches compiled artifacts *together with* their lazily built debugger
// analyses as one memory-accounted unit. The server and the public API
// both retain artifacts through this package, so every retention path in
// the system — compile results, analysis sets, protocol artifact handles,
// the disk spill tier — goes through one store with one budget.
package artstore

import (
	"hash/maphash"
	"time"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/store"
)

// Artifact is one compiled program plus its shared analysis set. The
// analyses build lazily (or via Precompute) and report their byte cost
// back to the store through a cost hook, so an artifact's accounted size
// grows as its analyses are built and the whole unit is evicted together.
type Artifact struct {
	Res      *compile.Result
	Analyses *core.AnalysisSet

	// Metrics describes the compile that produced this artifact: function
	// count, how many back ends actually ran vs. were stitched from the
	// per-function cache, and wall time. Zero for artifacts rehydrated from
	// the disk tier (no compile ran).
	Metrics compile.Metrics

	id   string
	name string
	src  string
	cfg  compile.Config
}

// ID is the artifact's stable content-addressed handle (see compile.Key.ID).
func (a *Artifact) ID() string { return a.id }

// Name returns the source file name the artifact was compiled from.
func (a *Artifact) Name() string { return a.name }

// Config returns the pipeline configuration the artifact was compiled under.
func (a *Artifact) Config() compile.Config { return a.cfg }

// Config tunes a Store. The zero value is a single-shard, unbounded,
// memory-only store with default classifier options.
type Config struct {
	// Shards is the shard count of the in-memory tier (rounded up to a
	// power of two); <= 1 means a single lock.
	Shards int
	// MaxArtifacts bounds resident artifacts; <= 0 means unbounded.
	MaxArtifacts int
	// MemoryBudget bounds the accounted bytes of resident artifacts plus
	// their built analyses; <= 0 means unbounded.
	MemoryBudget int64
	// SpillDir enables the disk tier: evicted and flushed artifacts are
	// serialized there and reloaded on miss, so restarts keep the warm set.
	SpillDir string
	// AnalysisOpts configures the classifier analyses of artifacts created
	// by this store.
	AnalysisOpts core.Options
	// CompileWorkers bounds the per-function back-end concurrency of the
	// store's compile pipeline; <= 0 means GOMAXPROCS. The bound is shared
	// across concurrent Gets, so a burst of compiles still runs at most
	// CompileWorkers function back ends at once.
	CompileWorkers int
	// FuncCacheBudget bounds the accounted bytes of the per-function
	// incremental tier (encoded machine-code images keyed by content hash
	// of each function's checked IR + config). 0 means a default of
	// MemoryBudget/4 (or unbounded when MemoryBudget is unbounded);
	// negative disables incremental reuse entirely.
	FuncCacheBudget int64
	// SpillDegradeAfter and SpillProbeInterval tune the disk tier's
	// circuit breaker (see store.Config); <= 0 means the store defaults.
	SpillDegradeAfter  int
	SpillProbeInterval time.Duration
}

// ident is the request identity: exact equality on (name, source, config).
type ident struct {
	Name string
	Src  string
	Cfg  compile.Config
}

var seed = maphash.MakeSeed()

func identHash(m ident) uint64 {
	var h maphash.Hash
	h.SetSeed(seed)
	h.WriteString(m.Name)
	h.WriteByte(0)
	h.WriteString(m.Src)
	return h.Sum64()
}

// Store retains artifacts. All methods are safe for concurrent use.
type Store struct {
	s    *store.Store[ident, *Artifact]
	opts core.Options
	pipe *compile.Pipeline
}

// codec serializes artifacts for the disk tier. Only the compile result
// is persisted; analyses rebuild lazily after rehydration (they derive
// deterministically from the machine code).
type codec struct {
	st *Store
}

func (c codec) Encode(id string, m ident, a *Artifact) ([]byte, error) {
	return compile.EncodeSpill(m.Cfg, a.Res)
}

func (c codec) Decode(id string, data []byte) (ident, *Artifact, int64, error) {
	res, name, src, cfg, err := compile.DecodeSpill(data)
	if err != nil {
		return ident{}, nil, 0, err
	}
	if got := compile.KeyOf(name, src, cfg).ID(); got != id {
		return ident{}, nil, 0, &IdentityError{Want: id, Got: got}
	}
	m := ident{Name: name, Src: src, Cfg: cfg}
	return m, c.st.newArtifact(m, res), res.SizeBytes(), nil
}

// IdentityError reports a spilled artifact whose content does not match
// its content-addressed filename.
type IdentityError struct{ Want, Got string }

func (e *IdentityError) Error() string {
	return "artstore: spilled artifact identity " + e.Got + " does not match handle " + e.Want
}

// New creates an artifact store from cfg.
func New(cfg Config) *Store {
	st := &Store{opts: cfg.AnalysisOpts}
	var funcs *compile.FuncCache
	if cfg.FuncCacheBudget >= 0 {
		budget := cfg.FuncCacheBudget
		if budget == 0 && cfg.MemoryBudget > 0 {
			budget = cfg.MemoryBudget / 4
		}
		funcs = compile.NewFuncCache(compile.FuncCacheConfig{
			Shards:       cfg.Shards,
			MemoryBudget: budget,
		})
	}
	st.pipe = compile.NewPipeline(compile.PipelineConfig{
		Workers: cfg.CompileWorkers,
		Funcs:   funcs,
	})
	sc := store.Config[ident, *Artifact]{
		Shards:        cfg.Shards,
		MaxEntries:    cfg.MaxArtifacts,
		MemoryBudget:  cfg.MemoryBudget,
		Dir:           cfg.SpillDir,
		Hash:          identHash,
		DegradeAfter:  cfg.SpillDegradeAfter,
		ProbeInterval: cfg.SpillProbeInterval,
	}
	if cfg.SpillDir != "" {
		sc.Codec = codec{st: st}
	}
	st.s = store.New(sc)
	return st
}

// newArtifact builds an Artifact for identity m around a compile result,
// wiring its analysis set's cost hook back into the store so analyses
// charge the artifact's budget as they are built.
func (st *Store) newArtifact(m ident, res *compile.Result) *Artifact {
	a := &Artifact{
		Res:      res,
		Analyses: core.NewAnalysisSetWith(st.opts),
		id:       compile.KeyOf(m.Name, m.Src, m.Cfg).ID(),
		name:     m.Name,
		src:      m.Src,
		cfg:      m.Cfg,
	}
	a.Analyses.SetCostHook(func(delta int64) { st.s.AddCost(m, delta) })
	return a
}

// Get returns the artifact for (name, src, cfg), compiling at most once
// across concurrent callers. hit reports that the pipeline was skipped —
// the artifact came from memory, a coalesced in-flight compile, or the
// disk tier. Failed compiles are not cached.
func (st *Store) Get(name, src string, cfg compile.Config) (a *Artifact, hit bool, err error) {
	m := ident{Name: name, Src: src, Cfg: cfg}
	return st.s.Get(m,
		func() string { return compile.KeyOf(name, src, cfg).ID() },
		func() (*Artifact, int64, error) {
			res, metrics, err := st.pipe.Compile(name, src, cfg)
			if err != nil {
				return nil, 0, err
			}
			a := st.newArtifact(m, res)
			a.Metrics = metrics
			return a, res.SizeBytes(), nil
		})
}

// PipelineStats returns the store's cumulative compile-pipeline counters.
func (st *Store) PipelineStats() compile.PipelineStats { return st.pipe.Stats() }

// FuncCacheStats returns the incremental tier's store counters; ok is
// false when incremental reuse is disabled.
func (st *Store) FuncCacheStats() (store.Stats, bool) {
	fc := st.pipe.FuncCache()
	if fc == nil {
		return store.Stats{}, false
	}
	return fc.Stats(), true
}

// CompileWorkers returns the pipeline's worker bound.
func (st *Store) CompileWorkers() int { return st.pipe.Workers() }

// Lookup returns the artifact with the given handle, consulting memory
// and then the disk tier. It never compiles.
func (st *Store) Lookup(id string) (*Artifact, bool) { return st.s.LookupID(id) }

// Stats returns a consistent per-shard snapshot of the store's counters.
func (st *Store) Stats() store.Stats { return st.s.Stats() }

// Range calls fn with every resident artifact and its handle.
func (st *Store) Range(fn func(id string, a *Artifact)) { st.s.Range(fn) }

// Flush persists the resident artifact set to the disk tier (no-op
// without one), so a graceful shutdown keeps its warm set. While the
// breaker has the disk tier degraded, Flush is skipped and reports why.
func (st *Store) Flush() error { return st.s.Flush() }

// Close stops the store's background work (the breaker's recovery
// prober). It does not flush; call Flush first for a warm restart.
func (st *Store) Close() { st.s.Close() }

// Len returns the number of resident artifacts (including in-flight).
func (st *Store) Len() int { return st.s.Len() }
