package artstore

import (
	"fmt"
	"testing"

	"repro/internal/compile"
)

func srcFor(i int) (string, string) {
	name := fmt.Sprintf("p%d.mc", i)
	src := fmt.Sprintf(`
int main() {
	int s = %d;
	int i;
	for (i = 0; i < %d; i++) { s += i; }
	print(s);
	return s;
}
`, i, 5+i)
	return name, src
}

func TestGetCompilesOnceAndCoalescesAnalyses(t *testing.T) {
	st := New(Config{})
	name, src := srcFor(1)
	a1, hit, err := st.Get(name, src, compile.O2())
	if err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v", hit, err)
	}
	a2, hit, err := st.Get(name, src, compile.O2())
	if err != nil || !hit {
		t.Fatalf("second get: hit=%v err=%v", hit, err)
	}
	if a1 != a2 {
		t.Fatal("hit returned a different artifact")
	}
	if a1.ID() == "" || a1.ID() != compile.KeyOf(name, src, compile.O2()).ID() {
		t.Fatalf("artifact id %q", a1.ID())
	}
}

func TestAnalysesChargeTheArtifactBudget(t *testing.T) {
	st := New(Config{MemoryBudget: 1 << 30})
	name, src := srcFor(1)
	a, _, err := st.Get(name, src, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	before := st.Stats().MemoryBytes
	a.Analyses.Of(a.Res.Mach.LookupFunc("main"))
	after := st.Stats().MemoryBytes
	if after <= before {
		t.Fatalf("analysis build did not charge the store: %d -> %d", before, after)
	}
	if got := a.Analyses.Bytes(); after-before != got {
		t.Fatalf("charged %d, analysis set reports %d", after-before, got)
	}
}

func TestMemoryBudgetEnforcedOverArtifactsAndAnalyses(t *testing.T) {
	// A budget far below the combined cost of the artifacts forces
	// evictions; the accounted bytes must never exceed the budget, even
	// as lazily built analyses add charges after admission.
	const budget = 64 << 10
	st := New(Config{MemoryBudget: budget})
	for i := 0; i < 12; i++ {
		name, src := srcFor(i)
		a, _, err := st.Get(name, src, compile.O2())
		if err != nil {
			t.Fatal(err)
		}
		a.Analyses.Of(a.Res.Mach.LookupFunc("main"))
		if got := st.Stats().MemoryBytes; got > budget {
			t.Fatalf("accounted bytes %d exceed budget %d", got, budget)
		}
	}
	if st.Stats().Evictions == 0 {
		t.Fatal("no evictions under budget pressure")
	}
}

func TestSpillReloadIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	st := New(Config{SpillDir: dir})
	name, src := srcFor(3)
	orig, _, err := st.Get(name, src, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	want := orig.Res.Mach.String()
	st.Flush()

	restarted := New(Config{SpillDir: dir})
	got, hit, err := restarted.Get(name, src, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("restart did not keep the warm set")
	}
	if s := restarted.Stats(); s.SpillHits != 1 {
		t.Fatalf("stats after restart = %+v", s)
	}
	if got.Res.Mach.String() != want {
		t.Fatal("rehydrated machine code differs from original")
	}
	// Rehydrated analyses rebuild and charge the restarted store.
	got.Analyses.Of(got.Res.Mach.LookupFunc("main"))
	if restarted.Stats().MemoryBytes <= got.Res.SizeBytes() {
		t.Fatal("rebuilt analyses not charged after rehydration")
	}
}

func TestLookupFindsSpilledArtifacts(t *testing.T) {
	dir := t.TempDir()
	st := New(Config{SpillDir: dir})
	name, src := srcFor(4)
	a, _, err := st.Get(name, src, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	id := a.ID()
	if got, ok := st.Lookup(id); !ok || got != a {
		t.Fatal("memory Lookup failed")
	}
	st.Flush()

	restarted := New(Config{SpillDir: dir})
	got, ok := restarted.Lookup(id)
	if !ok {
		t.Fatal("disk Lookup failed after restart")
	}
	if got.Res.Mach.String() != a.Res.Mach.String() {
		t.Fatal("disk Lookup returned different machine code")
	}
	if _, ok := restarted.Lookup("ffffffffffff"); ok {
		t.Fatal("Lookup of unknown handle succeeded")
	}
}

func TestEvictedArtifactAnalysisChargeIsDropped(t *testing.T) {
	st := New(Config{MaxArtifacts: 1})
	nameA, srcA := srcFor(1)
	a, _, err := st.Get(nameA, srcA, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	nameB, srcB := srcFor(2)
	b, _, err := st.Get(nameB, srcB, compile.O2()) // evicts a
	if err != nil {
		t.Fatal(err)
	}
	accounted := st.Stats().MemoryBytes
	// Building the evicted artifact's analyses must not charge the store:
	// its memory left the accounted set with the eviction. The artifact
	// itself keeps working (sessions holding it are unaffected).
	an := a.Analyses.Of(a.Res.Mach.LookupFunc("main"))
	if an == nil {
		t.Fatal("evicted artifact's analysis unusable")
	}
	if got := st.Stats().MemoryBytes; got != accounted {
		t.Fatalf("orphan analysis charged the store: %d -> %d", accounted, got)
	}
	// The resident artifact still charges normally.
	b.Analyses.Of(b.Res.Mach.LookupFunc("main"))
	if got := st.Stats().MemoryBytes; got <= accounted {
		t.Fatal("resident artifact's analysis not charged")
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	st := New(Config{})
	for i := 0; i < 2; i++ {
		_, _, err := st.Get("bad.mc", "int main() { return undeclared; }", compile.O2())
		if err == nil {
			t.Fatal("want compile error")
		}
	}
	s := st.Stats()
	if s.Misses != 2 || s.Entries != 0 {
		t.Fatalf("stats = %+v", s)
	}
}
