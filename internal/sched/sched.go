// Package sched implements mcc's local (basic-block) list instruction
// scheduler. It reorders instructions within dependence constraints to hide
// operand latencies (the simulator models result latency: an instruction
// stalls until its operands are ready).
//
// Scheduling endangers variables in the sense of the companion paper
// [Adl-Tabatabai & Gross, PLDI '93]: an assignment moved above a breakpoint
// boundary updates its variable prematurely; one moved below leaves it
// stale. The scheduler preserves each instruction's OrigIdx so the debugger
// can detect such reorderings; marker pseudo-instructions act as
// scheduling barriers, pinning the bookkeeping points in place.
package sched

import (
	"sort"

	"repro/internal/mach"
)

// Schedule reorders every block of every function.
func Schedule(p *mach.Program) {
	for _, f := range p.Funcs {
		ScheduleFunc(f)
	}
}

// ScheduleFunc schedules one function. Before a block is reordered, every
// instruction records its pre-scheduling position (Instr.PreSched): the
// debugger compares those positions against a breakpoint's to detect
// assignments and stores moved across a stop.
func ScheduleFunc(f *mach.Func) {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			in.PreSched = i
		}
		scheduleBlock(b)
	}
	f.Scheduled = true
}

// barrier reports whether in must not move (region boundary).
func barrier(in *mach.Instr) bool {
	switch in.Op {
	case mach.CALL, mach.PRINT, mach.MARKDEAD, mach.MARKAVAIL, mach.RET,
		mach.BNEZ, mach.J, mach.NOP:
		return true
	}
	return false
}

// isStore reports whether in writes memory.
func isStore(in *mach.Instr) bool {
	switch in.Op {
	case mach.SW, mach.FSW, mach.SWFP, mach.FSWFP:
		return true
	}
	return false
}

// isLoad reports whether in reads memory.
func isLoad(in *mach.Instr) bool {
	switch in.Op {
	case mach.LW, mach.FLW, mach.LWFP, mach.FLWFP:
		return true
	}
	return false
}

// scheduleBlock splits the block into regions at barriers and list-schedules
// each region.
func scheduleBlock(b *mach.Block) {
	var out []*mach.Instr
	region := func(ins []*mach.Instr) {
		out = append(out, listSchedule(ins)...)
	}
	start := 0
	for i, in := range b.Instrs {
		if barrier(in) {
			region(b.Instrs[start:i])
			out = append(out, in)
			start = i + 1
		}
	}
	region(b.Instrs[start:])
	b.Instrs = out
}

// listSchedule performs latency-weighted list scheduling of a straight-line
// region with no barriers.
func listSchedule(ins []*mach.Instr) []*mach.Instr {
	n := len(ins)
	if n <= 1 {
		return append([]*mach.Instr(nil), ins...)
	}

	// Dependence edges: succs[i] lists j > i depending on i.
	succs := make([][]int, n)
	npreds := make([]int, n)
	addDep := func(i, j int) {
		succs[i] = append(succs[i], j)
		npreds[j]++
	}

	type regKey struct {
		class mach.RegClass
		r     int
	}
	lastDef := map[regKey]int{}
	lastUses := map[regKey][]int{}
	lastStore := -1

	var buf []mach.Opd
	for j, in := range ins {
		// Register dependences.
		buf = in.Uses(buf[:0])
		for _, u := range buf {
			k := regKey{u.Class, u.R}
			if i, ok := lastDef[k]; ok {
				addDep(i, j) // RAW
			}
			lastUses[k] = append(lastUses[k], j)
		}
		if d := in.Def(); d.IsReg() {
			k := regKey{d.Class, d.R}
			if i, ok := lastDef[k]; ok {
				addDep(i, j) // WAW
			}
			for _, i := range lastUses[k] {
				if i != j {
					addDep(i, j) // WAR
				}
			}
			lastDef[k] = j
			lastUses[k] = nil
		}
		// Memory dependences: stores order against all memory ops; loads
		// only against stores.
		if isStore(in) {
			for i := 0; i < j; i++ {
				if isStore(ins[i]) || isLoad(ins[i]) {
					addDep(i, j)
				}
			}
			lastStore = j
		} else if isLoad(in) && lastStore >= 0 {
			addDep(lastStore, j)
		}
	}

	// Critical-path heights.
	height := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		h := ins[i].Op.Latency()
		for _, j := range succs[i] {
			if height[j]+ins[i].Op.Latency() > h {
				h = height[j] + ins[i].Op.Latency()
			}
		}
		height[i] = h
	}

	// Cycle-aware list scheduling: among the ready instructions prefer
	// those whose operands are available this cycle (no stall), then the
	// longest critical path, then original order (deterministic).
	type regKey2 struct {
		class mach.RegClass
		r     int
	}
	regReady := map[regKey2]int{}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if npreds[i] == 0 {
			ready = append(ready, i)
		}
	}
	earliest := func(i int) int {
		e := 0
		var ubuf []mach.Opd
		for _, u := range ins[i].Uses(ubuf) {
			if t := regReady[regKey2{u.Class, u.R}]; t > e {
				e = t
			}
		}
		return e
	}
	clock := 0
	var sched []*mach.Instr
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool {
			ia, ib := ready[a], ready[b]
			sa, sb := earliest(ia) <= clock, earliest(ib) <= clock
			if sa != sb {
				return sa // stall-free first
			}
			if height[ia] != height[ib] {
				return height[ia] > height[ib]
			}
			return ia < ib
		})
		i := ready[0]
		ready = ready[1:]
		issue := earliest(i)
		if issue < clock {
			issue = clock
		}
		clock = issue + 1
		if d := ins[i].Def(); d.IsReg() {
			regReady[regKey2{d.Class, d.R}] = issue + ins[i].Op.Latency()
		}
		sched = append(sched, ins[i])
		for _, j := range succs[i] {
			npreds[j]--
			if npreds[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	return sched
}
