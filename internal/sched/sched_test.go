package sched

import (
	"testing"

	"repro/internal/mach"
)

func block(instrs ...*mach.Instr) *mach.Block {
	return &mach.Block{Instrs: instrs}
}

// collect returns the scheduled order of the given instructions.
func indexOf(b *mach.Block, in *mach.Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

func TestRAWDependencePreserved(t *testing.T) {
	def := &mach.Instr{Op: mach.MUL, Dst: mach.R_(1), A: mach.R_(0), B: mach.I_(3)}
	use := &mach.Instr{Op: mach.ADD, Dst: mach.R_(2), A: mach.R_(1), B: mach.I_(1)}
	indep := &mach.Instr{Op: mach.MOV, Dst: mach.R_(3), A: mach.I_(9)}
	b := block(def, use, indep)
	scheduleBlock(b)
	if indexOf(b, def) > indexOf(b, use) {
		t.Errorf("RAW violated: %v", b.Instrs)
	}
}

func TestWARAndWAWPreserved(t *testing.T) {
	use := &mach.Instr{Op: mach.ADD, Dst: mach.R_(2), A: mach.R_(1), B: mach.I_(1)}
	redef := &mach.Instr{Op: mach.MOV, Dst: mach.R_(1), A: mach.I_(5)}  // WAR with use
	redef2 := &mach.Instr{Op: mach.MOV, Dst: mach.R_(1), A: mach.I_(6)} // WAW with redef
	b := block(use, redef, redef2)
	scheduleBlock(b)
	if indexOf(b, use) > indexOf(b, redef) {
		t.Errorf("WAR violated: %v", b.Instrs)
	}
	if indexOf(b, redef) > indexOf(b, redef2) {
		t.Errorf("WAW violated: %v", b.Instrs)
	}
}

func TestStoreLoadOrderPreserved(t *testing.T) {
	st := &mach.Instr{Op: mach.SW, A: mach.R_(0), B: mach.R_(1)}
	ld := &mach.Instr{Op: mach.LW, Dst: mach.R_(2), A: mach.R_(0)}
	st2 := &mach.Instr{Op: mach.SW, A: mach.R_(0), B: mach.R_(2), Off: 4}
	b := block(st, ld, st2)
	scheduleBlock(b)
	if indexOf(b, st) > indexOf(b, ld) {
		t.Error("load moved above store")
	}
	if indexOf(b, ld) > indexOf(b, st2) {
		t.Error("store moved above load")
	}
}

func TestMarkersPinAsBarriers(t *testing.T) {
	before := &mach.Instr{Op: mach.MOV, Dst: mach.R_(1), A: mach.I_(1)}
	marker := &mach.Instr{Op: mach.MARKDEAD}
	after := &mach.Instr{Op: mach.MOV, Dst: mach.R_(2), A: mach.I_(2)}
	b := block(before, marker, after)
	scheduleBlock(b)
	if indexOf(b, before) > indexOf(b, marker) || indexOf(b, marker) > indexOf(b, after) {
		t.Errorf("marker did not pin: %v", b.Instrs)
	}
}

func TestTerminatorStaysLast(t *testing.T) {
	a := &mach.Instr{Op: mach.MOV, Dst: mach.R_(1), A: mach.I_(1)}
	c := &mach.Instr{Op: mach.SLT, Dst: mach.R_(2), A: mach.R_(1), B: mach.I_(5)}
	br := &mach.Instr{Op: mach.BNEZ, A: mach.R_(2)}
	b := block(a, c, br)
	scheduleBlock(b)
	if b.Instrs[len(b.Instrs)-1] != br {
		t.Errorf("terminator moved: %v", b.Instrs)
	}
}

func TestLatencyHiding(t *testing.T) {
	// load (latency 2) followed by its use, then two independent movs:
	// the scheduler should hoist independent work between load and use.
	ld := &mach.Instr{Op: mach.LW, Dst: mach.R_(1), A: mach.R_(0)}
	use := &mach.Instr{Op: mach.ADD, Dst: mach.R_(2), A: mach.R_(1), B: mach.I_(1)}
	m1 := &mach.Instr{Op: mach.MOV, Dst: mach.R_(3), A: mach.I_(7)}
	m2 := &mach.Instr{Op: mach.MOV, Dst: mach.R_(4), A: mach.I_(8)}
	b := block(ld, use, m1, m2)
	scheduleBlock(b)
	// The load has the longest critical path; it must come first, and the
	// dependent use must not be scheduled directly after it if independent
	// work exists.
	if b.Instrs[0] != ld {
		t.Errorf("load should lead: %v", b.Instrs)
	}
	if indexOf(b, use) == 1 {
		t.Errorf("use scheduled in the load shadow: %v", b.Instrs)
	}
}

func TestOrigIdxPreservedOnInstr(t *testing.T) {
	a := &mach.Instr{Op: mach.MOV, Dst: mach.R_(1), A: mach.I_(1), OrigIdx: 10}
	c := &mach.Instr{Op: mach.MOV, Dst: mach.R_(2), A: mach.I_(2), OrigIdx: 20}
	b := block(c, a)
	scheduleBlock(b)
	if a.OrigIdx != 10 || c.OrigIdx != 20 {
		t.Error("scheduling must not rewrite OrigIdx (the debugger needs it)")
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() *mach.Block {
		return block(
			&mach.Instr{Op: mach.MOV, Dst: mach.R_(1), A: mach.I_(1)},
			&mach.Instr{Op: mach.MOV, Dst: mach.R_(2), A: mach.I_(2)},
			&mach.Instr{Op: mach.MOV, Dst: mach.R_(3), A: mach.I_(3)},
			&mach.Instr{Op: mach.ADD, Dst: mach.R_(4), A: mach.R_(1), B: mach.R_(2)},
		)
	}
	b1, b2 := mk(), mk()
	scheduleBlock(b1)
	scheduleBlock(b2)
	for i := range b1.Instrs {
		if b1.Instrs[i].String() != b2.Instrs[i].String() {
			t.Fatalf("nondeterministic schedule:\n%v\n%v", b1.Instrs, b2.Instrs)
		}
	}
}
