package lower

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/mach"
	"repro/internal/opt"
	"repro/internal/sem"
)

func lowerSrc(t *testing.T, src string, o opt.Options) *mach.Program {
	t.Helper()
	p, err := sem.CheckSource("test.mc", src)
	if err != nil {
		t.Fatalf("frontend: %v", err)
	}
	prog := ir.Build(p)
	opt.Run(prog, o)
	return Lower(prog)
}

func TestAnnotationTransfer(t *testing.T) {
	// PDCE+DCE produce sunk annotations and dead markers at the IR level;
	// lowering must carry them onto machine instructions (§3).
	src := `
int g(int c, int a, int b) {
	int x = a * b;
	int r = 0;
	if (c) { r = x; }
	return r + a;
}
int main() { return g(1, 2, 3); }
`
	mp := lowerSrc(t, src, opt.Options{PDCE: true, DCE: true})
	f := mp.LookupFunc("g")
	sunk, markers := 0, 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Ann.Sunk {
				sunk++
			}
			if in.Op == mach.MARKDEAD {
				markers++
				if in.MarkObj == nil {
					t.Error("marker lost its variable")
				}
			}
		}
	}
	if sunk == 0 {
		t.Error("sunk annotation lost in lowering")
	}
	if markers == 0 {
		t.Error("dead marker lost in lowering")
	}
}

func TestVarTagging(t *testing.T) {
	src := `
int main() {
	int x = 1;
	int y = x + 2;
	print(y);
	return y;
}
`
	mp := lowerSrc(t, src, opt.O0())
	f := mp.LookupFunc("main")
	defTagged := map[string]bool{}
	useTagged := map[string]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.DefObj != nil {
				defTagged[in.DefObj.Name] = true
			}
			for _, u := range in.UseObjs {
				useTagged[u.Name] = true
			}
		}
	}
	for _, v := range []string{"x", "y"} {
		if !defTagged[v] {
			t.Errorf("%s has no DefObj tag", v)
		}
	}
	if !useTagged["x"] {
		t.Error("use of x not tagged")
	}
	if !useTagged["y"] {
		t.Error("use of y (print/return) not tagged")
	}
}

func TestStmtAndOrigPreserved(t *testing.T) {
	src := `int main() { int a = 1; int b = a + 2; return b; }`
	mp := lowerSrc(t, src, opt.O0())
	f := mp.LookupFunc("main")
	stmts := map[int]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Stmt >= 0 {
				stmts[in.Stmt] = true
			}
		}
	}
	for s := 0; s < 3; s++ {
		if !stmts[s] {
			t.Errorf("statement %d lost in lowering", s)
		}
	}
}

func TestFrameLayout(t *testing.T) {
	src := `
int main() {
	int a[10];
	float f[5];
	int x = 3;
	int *p = &x;
	a[0] = *p;
	f[0] = 1.0;
	return a[0];
}
`
	mp := lowerSrc(t, src, opt.O0())
	f := mp.LookupFunc("main")
	if len(f.FrameObjects) != 3 { // a, f, x (addressed)
		t.Fatalf("frame objects: %v", f.FrameObjects)
	}
	want := int64(10*4 + 5*4 + 4)
	if f.FrameSize != want {
		t.Errorf("frame size = %d, want %d", f.FrameSize, want)
	}
	// offsets must be distinct and within the frame
	seen := map[int64]bool{}
	for _, o := range f.FrameObjects {
		off := f.FrameOff[o]
		if off < 0 || off >= f.FrameSize {
			t.Errorf("%s at offset %d outside frame", o.Name, off)
		}
		if seen[off] {
			t.Errorf("duplicate offset %d", off)
		}
		seen[off] = true
	}
}

func TestGlobalLayout(t *testing.T) {
	src := `
int a = 1;
float b = 2.0;
int c[8];
int main() { return a + c[0]; }
`
	mp := lowerSrc(t, src, opt.O0())
	if mp.GlobalSize != 4+4+32 {
		t.Errorf("global size = %d", mp.GlobalSize)
	}
	if len(mp.GlobalOff) != 3 {
		t.Errorf("global offsets: %v", mp.GlobalOff)
	}
}

func TestFloatOpcodeSelection(t *testing.T) {
	src := `
int main() {
	float x = 1.5;
	float y = x * 2.0;
	int i = int(y);
	float z = float(i);
	print(z > y);
	return 0;
}
`
	mp := lowerSrc(t, src, opt.O0())
	f := mp.LookupFunc("main")
	ops := map[mach.Opcode]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			ops[in.Op] = true
		}
	}
	for _, want := range []mach.Opcode{mach.FMUL, mach.CVTFI, mach.CVTIF, mach.FSGT} {
		if !ops[want] {
			t.Errorf("missing opcode %s\n%s", want, f)
		}
	}
}

func TestVregSpaceMatchesIR(t *testing.T) {
	src := `int main() { int x = 1; int y = 2; return x + y; }`
	mp := lowerSrc(t, src, opt.O0())
	f := mp.LookupFunc("main")
	if f.NumVars != 2 {
		t.Errorf("NumVars = %d", f.NumVars)
	}
	// Variable vregs must be below NumVars.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.DefObj != nil {
				if d := in.Def(); d.IsReg() && d.R >= f.NumVars {
					t.Errorf("var %s assigned vreg %d >= NumVars", in.DefObj.Name, d.R)
				}
			}
		}
	}
}
