// Package lower performs code selection from the mid-level IR to the
// machine-level representation. Per §3 of the paper, "during code
// selection, annotations are transferred from nodes in the
// machine-independent IR to the selected instructions" and "IR marker nodes
// are lowered to special marker instructions" — Lower copies Ann, Stmt and
// OrigIdx onto every selected instruction and keeps the IR's dense value
// numbering as the virtual register space, so the debugger can relate
// machine registers back to source variables.
package lower

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/dataflow"
	"repro/internal/ir"
	"repro/internal/mach"
)

// Lower translates the whole program.
func Lower(p *ir.Program) *mach.Program {
	mp := NewProgram(p)
	for _, f := range p.Funcs {
		mp.Funcs = append(mp.Funcs, LowerFunc(f))
	}
	return mp
}

// NewProgram builds the machine program shell for p: the global data
// layout (offsets, total size, initializers) with no functions. Callers
// lowering functions individually — concurrently or stitched from a cache —
// append to Funcs in IR order to obtain the same program Lower produces.
func NewProgram(p *ir.Program) *mach.Program {
	mp := &mach.Program{
		Globals:    p.Globals,
		GlobalOff:  map[*ast.Object]int64{},
		GlobalInit: p.GlobalInit,
	}
	var off int64
	for _, g := range p.Globals {
		mp.GlobalOff[g] = off
		sz := int64(g.Type.Size())
		if sz == 0 {
			sz = 4
		}
		off += sz
	}
	mp.GlobalSize = off
	return mp
}

// LowerFunc performs code selection for one function. It touches only f,
// so distinct functions may be lowered concurrently.
func LowerFunc(f *ir.Func) *mach.Func {
	numVars := len(f.Decl.Locals)
	mf := &mach.Func{
		Name:     f.Name,
		Decl:     f.Decl,
		NumVars:  numVars,
		NumVregs: numVars + f.NumTemps,
		FrameOff: map[*ast.Object]int64{},
		VarLoc:   map[*ast.Object]mach.Loc{},
	}

	// Frame layout.
	var off int64
	for _, o := range f.FrameObjects {
		mf.FrameObjects = append(mf.FrameObjects, o)
		mf.FrameOff[o] = off
		sz := int64(o.Type.Size())
		if sz == 0 {
			sz = 4
		}
		off += sz
	}
	mf.FrameSize = off

	// Blocks map 1:1.
	blockOf := map[*ir.Block]*mach.Block{}
	for _, b := range f.Blocks {
		blockOf[b] = mf.NewBlock()
	}
	mf.Entry = blockOf[f.Entry]

	for _, b := range f.Blocks {
		mb := blockOf[b]
		for _, in := range b.Instrs {
			m := selectInstr(mf, numVars, in)
			tagVars(mf, m)
			mb.Instrs = append(mb.Instrs, m)
		}
		for _, s := range b.Succs {
			mb.Succs = append(mb.Succs, blockOf[s])
		}
	}
	mf.RecomputePreds()

	// Loop depths for spill heuristics.
	g := graphOf(mf)
	_, depth := dataflow.FindLoops(g, 0)
	for i, b := range mf.Blocks {
		b.LoopDepth = depth[i]
	}
	return mf
}

func graphOf(f *mach.Func) dataflow.Graph {
	idx := map[*mach.Block]int{}
	for i, b := range f.Blocks {
		idx[b] = i
	}
	g := dataflow.Graph{N: len(f.Blocks), Succs: make([][]int, len(f.Blocks)), Preds: make([][]int, len(f.Blocks))}
	for i, b := range f.Blocks {
		for _, s := range b.Succs {
			g.Succs[i] = append(g.Succs[i], idx[s])
			g.Preds[idx[s]] = append(g.Preds[idx[s]], i)
		}
	}
	return g
}

// tagVars records which source variables the instruction defines and reads
// while the register numbering still identifies them (vregs below NumVars
// are the promoted variables).
func tagVars(mf *mach.Func, m *mach.Instr) {
	varOf := func(o mach.Opd) *ast.Object {
		if o.Kind == mach.Reg && o.R < mf.NumVars {
			return mf.Decl.Locals[o.R]
		}
		return nil
	}
	if d := m.Def(); d.Kind == mach.Reg {
		m.DefObj = varOf(d)
	}
	var buf []mach.Opd
	buf = m.Uses(buf)
	for _, u := range buf {
		if v := varOf(u); v != nil {
			m.UseObjs = append(m.UseObjs, v)
		}
	}
}

// opd converts an IR operand to a machine operand under the shared value
// numbering (vars first, temps after).
func opd(numVars int, o ir.Operand) mach.Opd {
	switch o.Kind {
	case ir.Var:
		cls := mach.IntClass
		if o.Ty == ir.F {
			cls = mach.FloatClass
		}
		return mach.Opd{Kind: mach.Reg, Class: cls, R: o.Obj.ID}
	case ir.Temp:
		cls := mach.IntClass
		if o.Ty == ir.F {
			cls = mach.FloatClass
		}
		return mach.Opd{Kind: mach.Reg, Class: cls, R: numVars + o.TID}
	case ir.ConstI:
		return mach.I_(o.Int)
	case ir.ConstF:
		return mach.F_(o.Fl)
	}
	return mach.Opd{}
}

var intBin = map[ir.Op]mach.Opcode{
	ir.Add: mach.ADD, ir.Sub: mach.SUB, ir.Mul: mach.MUL, ir.Div: mach.DIV,
	ir.Rem: mach.REM, ir.Shl: mach.SHL, ir.Shr: mach.SHR, ir.BOr: mach.OR,
	ir.BXor: mach.XOR, ir.Eq: mach.SEQ, ir.Ne: mach.SNE, ir.Lt: mach.SLT,
	ir.Le: mach.SLE, ir.Gt: mach.SGT, ir.Ge: mach.SGE,
}

var floatBin = map[ir.Op]mach.Opcode{
	ir.Add: mach.FADD, ir.Sub: mach.FSUB, ir.Mul: mach.FMUL, ir.Div: mach.FDIV,
	ir.Eq: mach.FSEQ, ir.Ne: mach.FSNE, ir.Lt: mach.FSLT,
	ir.Le: mach.FSLE, ir.Gt: mach.FSGT, ir.Ge: mach.FSGE,
}

func selectInstr(mf *mach.Func, numVars int, in *ir.Instr) *mach.Instr {
	m := &mach.Instr{Stmt: in.Stmt, OrigIdx: in.OrigIdx, Ann: in.Ann}
	switch in.Kind {
	case ir.BinOp:
		isFloat := in.A.Ty == ir.F || in.B.Ty == ir.F
		if isFloat {
			m.Op = floatBin[in.Op]
		} else {
			m.Op = intBin[in.Op]
		}
		if m.Op == mach.NOP {
			panic(fmt.Sprintf("lower: no opcode for %s (float=%v)", in.Op, isFloat))
		}
		m.Dst = opd(numVars, in.Dst)
		m.A = opd(numVars, in.A)
		m.B = opd(numVars, in.B)

	case ir.UnOp:
		switch in.Op {
		case ir.Neg:
			if in.Dst.Ty == ir.F {
				m.Op = mach.FNEG
			} else {
				m.Op = mach.NEG
			}
		case ir.Not:
			m.Op = mach.NOT
		case ir.CvIF:
			m.Op = mach.CVTIF
		case ir.CvFI:
			m.Op = mach.CVTFI
		}
		m.Dst = opd(numVars, in.Dst)
		m.A = opd(numVars, in.A)

	case ir.Copy:
		m.Op = mach.MOV
		m.Dst = opd(numVars, in.Dst)
		m.A = opd(numVars, in.A)

	case ir.Load:
		if in.Dst.Ty == ir.F {
			m.Op = mach.FLW
		} else {
			m.Op = mach.LW
		}
		m.Dst = opd(numVars, in.Dst)
		m.A = opd(numVars, in.A)
		m.Off = in.Off

	case ir.Store:
		if in.B.Ty == ir.F {
			m.Op = mach.FSW
		} else {
			m.Op = mach.SW
		}
		m.A = opd(numVars, in.A)
		m.B = opd(numVars, in.B)
		m.Off = in.Off

	case ir.Addr:
		m.Op = mach.LA
		m.Dst = opd(numVars, in.Dst)
		m.Sym = in.AddrObj

	case ir.Call:
		m.Op = mach.CALL
		m.Callee = in.Callee
		for _, a := range in.Args {
			m.Args = append(m.Args, opd(numVars, a))
		}
		if in.Dst.Valid() {
			m.Dst = opd(numVars, in.Dst)
		}

	case ir.Print:
		m.Op = mach.PRINT
		for _, a := range in.PrintFmt {
			if a.IsStr {
				m.PrintFmt = append(m.PrintFmt, mach.PrintArg{Str: a.Str, IsStr: true})
			} else {
				m.PrintFmt = append(m.PrintFmt, mach.PrintArg{Val: opd(numVars, a.Val)})
			}
		}

	case ir.Ret:
		m.Op = mach.RET
		if in.A.Valid() {
			m.A = opd(numVars, in.A)
		}

	case ir.Jmp:
		m.Op = mach.J

	case ir.Br:
		m.Op = mach.BNEZ
		m.A = opd(numVars, in.A)

	case ir.GetParam:
		m.Op = mach.GETP
		m.Dst = opd(numVars, in.Dst)
		m.ParamIdx = in.ParamIdx

	case ir.MarkDead:
		m.Op = mach.MARKDEAD
		m.MarkObj = in.MarkObj
		if in.A.Valid() {
			m.MarkAlias = opd(numVars, in.A)
		}

	case ir.MarkAvail:
		m.Op = mach.MARKAVAIL
		m.MarkObj = in.MarkObj

	default:
		panic(fmt.Sprintf("lower: unknown IR instruction kind %d", in.Kind))
	}
	return m
}
