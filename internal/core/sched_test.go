package core

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/mach"
)

// TestSchedulingEndangerment exercises the companion analysis of
// [Adl-Tabatabai & Gross, PLDI '93]: the list scheduler moves a
// long-latency assignment above an earlier statement's breakpoint, making
// the later variable prematurely current at that breakpoint.
func TestSchedulingEndangerment(t *testing.T) {
	// y's multiply has a longer critical path than x's add, so the
	// scheduler lifts it; at x's breakpoint y has then already executed.
	src := `
int f(int a, int b, int c, int d) {
	int x = a + b;
	int y = c * d;
	return x + y;
}
int main() { return f(1, 2, 3, 4); }
`
	// Compile without the scalar optimizer (which would eliminate x and y
	// entirely) but with allocation and scheduling, isolating the
	// reordering effect.
	cfg := compile.Config{RegAlloc: true, Sched: true}
	res, err := compile.Compile("sched.mc", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Mach.LookupFunc("f")
	if !f.Scheduled {
		t.Fatal("function not scheduled")
	}

	// Verify the reorder actually happened (y's def before x's def).
	var xi, yi = -1, -1
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.DefObj != nil && in.DefObj.Name == "x" {
				xi = i
			}
			if in.DefObj != nil && in.DefObj.Name == "y" {
				yi = i
			}
		}
	}
	if xi < 0 || yi < 0 {
		t.Skipf("variables optimized away entirely; scheduling check not applicable\n%s", f)
	}
	if yi > xi {
		t.Skipf("scheduler kept source order (y at %d, x at %d); nothing to detect", yi, xi)
	}

	a := Analyze(f)
	var y *mach.Instr
	_ = y
	var yObj = f.Decl.Locals[5] // a,b,c,d,x,y
	if yObj.Name != "y" {
		for _, v := range f.Decl.Locals {
			if v.Name == "y" {
				yObj = v
			}
		}
	}
	c, ok := a.ClassifyAt(0, yObj) // breakpoint at "x = a + b"
	if !ok {
		t.Fatal("stmt 0 has no location")
	}
	if c.State != Noncurrent || c.Cause != ByScheduling {
		t.Errorf("y at x's breakpoint should be noncurrent by scheduling, got %s/%s (%s)\n%s",
			c.State, c.Cause, c.Why, f)
	}
}

// TestNoSchedulingFalsePositives: without the scheduler, the check must
// never fire.
func TestNoSchedulingFalsePositives(t *testing.T) {
	src := `
int f(int a, int b, int c, int d) {
	int x = a + b;
	int y = c * d;
	return x + y;
}
int main() { return f(1, 2, 3, 4); }
`
	cfg := compile.O2()
	cfg.Sched = false
	res, err := compile.Compile("sched.mc", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Mach.LookupFunc("f")
	a := Analyze(f)
	for s := 0; s < f.Decl.NumStmts; s++ {
		cs, ok := a.ClassifyAllAt(s)
		if !ok {
			continue
		}
		for _, c := range cs {
			if c.Cause == ByScheduling {
				t.Errorf("scheduling endangerment reported without scheduling: %s at stmt %d", c.Var.Name, s)
			}
		}
	}
}
