package core

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/compile"
	"repro/internal/mach"
	"repro/internal/opt"
)

// analyze compiles src with cfg and returns the analysis for fn.
func analyze(t *testing.T, src string, cfg compile.Config, fn string) *Analysis {
	t.Helper()
	res, err := compile.Compile("test.mc", src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := res.Mach.LookupFunc(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	return Analyze(f)
}

// classOf returns the classification of variable name at stmt.
func classOf(t *testing.T, a *Analysis, stmt int, name string) Classification {
	t.Helper()
	var obj *ast.Object
	for _, v := range a.Fn.Decl.Locals {
		if v.Name == name {
			obj = v
		}
	}
	if obj == nil {
		t.Fatalf("no variable %s", name)
	}
	c, ok := a.ClassifyAt(stmt, obj)
	if !ok {
		t.Fatalf("statement %d has no location", stmt)
	}
	return c
}

// ---------------------------------------------------------------- figure 2

// TestFigure2Hoisting reproduces the paper's Figure 2: partial redundancy
// elimination hoists x = y+z into the else arm; the join occurrence is
// deleted (redundant copy). x must be suspect at the join statement
// (noncurrent if execution arrived via the hoisted arm, current via the
// other) and current after it.
func TestFigure2Hoisting(t *testing.T) {
	src := `
int f(int c, int y, int z) {
	int x = 0;
	if (c) {
		x = y + z;
	} else {
		x = 1;
	}
	x = y + z;
	return x;
}
int main() { return f(1, 2, 3); }
`
	// Statements: 0:decl x, 1:if, 2:x=y+z(then), 3:x=1(else), 4:x=y+z, 5:return.
	cfg := compile.Config{Opt: opt.Options{PRE: true}}
	a := analyze(t, src, cfg, "f")

	// Sanity: the PRE transformation actually fired.
	hoisted, avail := 0, 0
	for _, b := range a.Fn.Blocks {
		for _, in := range b.Instrs {
			if in.Ann.Hoisted && in.DefObj != nil {
				hoisted++
			}
			if in.Op == mach.MARKAVAIL {
				avail++
			}
		}
	}
	if hoisted == 0 || avail == 0 {
		t.Fatalf("PRE did not transform the program (hoisted=%d avail=%d)\n%s", hoisted, avail, a.Fn)
	}

	if c := classOf(t, a, 4, "x"); c.State != Suspect || c.Cause != ByHoisting {
		t.Errorf("at the redundant assignment x should be suspect by hoisting, got %s/%s (%s)",
			c.State, c.Cause, c.Why)
	}
	if c := classOf(t, a, 5, "x"); c.State != Current {
		t.Errorf("after the redundant copy x should be current, got %s (%s)", c.State, c.Why)
	}
	if c := classOf(t, a, 2, "x"); c.State != Current {
		t.Errorf("in the then arm before assignment x should be current, got %s (%s)", c.State, c.Why)
	}
}

// TestFigure2NoncurrentArm forces the Figure 2 "Bkpt1" case: a breakpoint
// inside the arm that received the hoisted assignment, where x is
// definitely noncurrent.
func TestFigure2NoncurrentArm(t *testing.T) {
	src := `
int f(int c, int y, int z) {
	int x = 0;
	int w = 0;
	if (c) {
		x = y + z;
	} else {
		w = 1;
		x = y + z;
	}
	return x + w;
}
int main() { return f(1, 2, 3); }
`
	// Statements: 0:x=0, 1:w=0, 2:if, 3:x=y+z(then), 4:w=1(else),
	// 5:x=y+z(else), 6:return.
	//
	// PRE inserts x=y+z at the top of the else arm? No: availability only
	// becomes partial at the join; within the arms nothing is redundant.
	// This variant instead exercises a *fully* redundant second assignment
	// along one arm once the program is rewritten so that the else arm
	// computes the expression before the breakpoint statement:
	cfg := compile.Config{Opt: opt.Options{PRE: true}}
	a := analyze(t, src, cfg, "f")
	// The else-arm statement w=1 (stmt 4) comes before x=y+z (stmt 5);
	// no hoisting reaches it, so x=0 value is current there.
	if c := classOf(t, a, 4, "w"); c.State != Current {
		t.Errorf("w before its assignment in the arm: got %s (%s)", c.State, c.Why)
	}
}

// ---------------------------------------------------------------- figure 3

// TestFigure3Sinking reproduces the paper's Figure 3: partial dead code
// elimination sinks x's assignment into the branch where it is used. At
// breakpoints between the deleted assignment and the sunk copy x is
// noncurrent (stale); after the sunk copy it is current; at the join it is
// suspect.
func TestFigure3Sinking(t *testing.T) {
	src := `
int g(int c, int a, int b) {
	int x = a * b;
	int r = 0;
	if (c) {
		r = x;
	}
	return r + a;
}
int main() { return g(1, 3, 4); }
`
	// Statements: 0:x=a*b, 1:r=0, 2:if, 3:r=x, 4:return.
	cfg := compile.Config{Opt: opt.Options{PDCE: true, DCE: true}}
	a := analyze(t, src, cfg, "g")

	sunk, dead := 0, 0
	for _, b := range a.Fn.Blocks {
		for _, in := range b.Instrs {
			if in.Ann.Sunk {
				sunk++
			}
			if in.Op == mach.MARKDEAD {
				dead++
			}
		}
	}
	if sunk == 0 || dead == 0 {
		t.Fatalf("PDCE did not transform the program (sunk=%d dead=%d)\n%s", sunk, dead, a.Fn)
	}

	if c := classOf(t, a, 1, "x"); c.State != Noncurrent || c.Cause != ByDeadCodeElim {
		t.Errorf("between deletion and sunk copy x should be noncurrent by DCE, got %s/%s (%s)",
			c.State, c.Cause, c.Why)
	}
	if c := classOf(t, a, 3, "x"); c.State != Current {
		t.Errorf("after (at) the sunk copy's statement x should be current, got %s (%s)", c.State, c.Why)
	}
	if c := classOf(t, a, 4, "x"); c.State != Suspect || c.Cause != ByDeadCodeElim {
		t.Errorf("at the join x should be suspect, got %s/%s (%s)", c.State, c.Cause, c.Why)
	}
}

// ---------------------------------------------------------------- figure 4

// TestFigure4Recovery reproduces the paper's Figure 4: assignment
// propagation replaces the uses of x with re-computations of y+z, CSE
// routes them through a temporary, dead code elimination deletes x's
// assignment — and the debugger recovers x's value from the temporary.
func TestFigure4Recovery(t *testing.T) {
	src := `
int h(int y, int z) {
	int x = y + z;
	int a = x + 1;
	int b = x * 2;
	return a + b;
}
int main() { return h(2, 3); }
`
	// Statements: 0:x=y+z, 1:a=x+1, 2:b=x*2, 3:return.
	cfg := compile.Config{Opt: opt.Options{
		AssignProp: true, PRE: true, CopyProp: true, DCE: true,
	}}
	a := analyze(t, src, cfg, "h")

	dead := 0
	for _, b := range a.Fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == mach.MARKDEAD && in.MarkObj.Name == "x" {
				dead++
			}
		}
	}
	if dead == 0 {
		t.Fatalf("x's assignment was not eliminated\n%s", a.Fn)
	}

	c := classOf(t, a, 2, "x")
	if c.Recovered == nil {
		t.Fatalf("x should be recoverable at stmt 2, got %s (%s)\n%s", c.State, c.Why, a.Fn)
	}
	// The location's classification is still endangered/nonresident (the
	// assignment is gone); the recovery rides along so the debugger can
	// display the reconstructed expected value.
	if c.State == Current || c.State == Uninitialized {
		t.Errorf("recovered x should keep its underlying classification, got %s", c.State)
	}
}

// TestConstantRecovery checks the "special constant residence" of §2.5: a
// dead assignment of a constant is recoverable as that constant.
func TestConstantRecovery(t *testing.T) {
	src := `
int main() {
	int x = 5;
	int y = 1;
	x = y + 6;
	return x;
}
`
	// Statements: 0:x=5, 1:y=1, 2:x=y+6, 3:return.
	cfg := compile.Config{Opt: opt.Options{DCE: true}}
	a := analyze(t, src, cfg, "main")
	c := classOf(t, a, 1, "x")
	if c.Recovered == nil || c.Recovered.Kind != RecoverConst || c.Recovered.C != 5 {
		t.Fatalf("x should recover as constant 5, got %s (%+v) (%s)\n%s",
			c.State, c.Recovered, c.Why, a.Fn)
	}
}

// ---------------------------------------------------------------- figure 1

// TestSourceAttribution checks that endangered classifications name the
// responsible source assignment (the paper's "additional information about
// V ... the source assignment expression(s)").
func TestSourceAttribution(t *testing.T) {
	src := `
int g(int c, int a, int b) {
	int x = a * b;
	int r = 0;
	if (c) {
		r = x;
	}
	return r + a;
}
int main() { return g(1, 3, 4); }
`
	cfg := compile.Config{Opt: opt.Options{PDCE: true, DCE: true}}
	a := analyze(t, src, cfg, "g")
	c := classOf(t, a, 1, "x")
	if c.State != Noncurrent {
		t.Fatalf("setup: x should be noncurrent, got %s", c.State)
	}
	if len(c.SrcStmts) != 1 || c.SrcStmts[0] != 0 {
		t.Errorf("SrcStmts = %v, want [0] (the eliminated x = a*b)", c.SrcStmts)
	}
}

// TestSourceAttributionSupersede: a newer elimination supersedes an older
// one in the attribution.
func TestSourceAttributionSupersede(t *testing.T) {
	src := `
int main() {
	int x = 5;
	int y = 1;
	x = y + 2;
	int z = y * 3;
	print(z);
	return 0;
}
`
	// Both assignments to x are dead (x never used): two markers. At the
	// print statement only the LATER one should be blamed.
	cfg := compile.Config{Opt: opt.Options{DCE: true}}
	a := analyze(t, src, cfg, "main")
	c := classOf(t, a, 4, "x") // print statement
	if c.State != Noncurrent && c.Recovered == nil {
		t.Fatalf("x should be endangered (possibly recovered), got %s", c.State)
	}
	for _, s := range c.SrcStmts {
		if s == 0 {
			t.Errorf("stale attribution: statement 0 superseded by statement 2 (got %v)", c.SrcStmts)
		}
	}
}

// TestUninitialized checks the first diamond of Figure 1.
func TestUninitialized(t *testing.T) {
	src := `
int main() {
	int x;
	int y = 2;
	x = y * 2;
	return x;
}
`
	// Statements: 0:decl x (no code), 1:y=2, 2:x=y*2, 3:return.
	a := analyze(t, src, compile.O0(), "main")
	if c := classOf(t, a, 1, "x"); c.State != Uninitialized {
		t.Errorf("x before any assignment should be uninitialized, got %s", c.State)
	}
	if c := classOf(t, a, 3, "x"); c.State != Current {
		t.Errorf("x after assignment should be current, got %s (%s)", c.State, c.Why)
	}
}

// TestNonresident checks that register reuse after a variable's last use
// makes it nonresident under the conservative live-range model.
func TestNonresident(t *testing.T) {
	src := `
int m(int a, int b) {
	int x = a * b;
	int y = x + 1;
	int z = y * y;
	return z;
}
int main() { return m(2, 3); }
`
	// Statements: 0:x=a*b, 1:y=x+1, 2:z=y*y, 3:return.
	cfg := compile.Config{RegAlloc: true} // no optimization, just allocation
	a := analyze(t, src, cfg, "m")
	if !a.Fn.Allocated {
		t.Fatal("function not allocated")
	}
	c := classOf(t, a, 3, "x")
	if c.State != Nonresident {
		t.Errorf("x after its last use should be nonresident (register reused), got %s (%s)\n%s",
			c.State, c.Why, a.Fn)
	}
	// And before its last use it is resident and current.
	if c := classOf(t, a, 1, "x"); c.State != Current {
		t.Errorf("x at its use should be current, got %s (%s)", c.State, c.Why)
	}
}

// TestNoRegallocNoNonresident mirrors the paper's Figure 5(a) setup:
// without register allocation, nonresident variables cannot occur.
func TestNoRegallocNoNonresident(t *testing.T) {
	src := `
int m(int a, int b) {
	int x = a * b;
	int y = x + 1;
	int z = y * y;
	return z;
}
int main() { return m(2, 3); }
`
	a := analyze(t, src, compile.O2NoRegAlloc(), "m")
	for s := 0; s < a.Fn.Decl.NumStmts; s++ {
		if _, ok := a.Table.LocOf(s); !ok {
			continue
		}
		for _, v := range a.Table.VarsInScope(s) {
			c, _ := a.ClassifyAt(s, v)
			if c.State == Nonresident {
				t.Errorf("stmt %d: %s nonresident without register allocation", s, v.Name)
			}
		}
	}
}

// TestMarkersMatter is the ablation: without markers the classifier loses
// the dead-reach information and wrongly reports a stale variable current.
func TestMarkersMatter(t *testing.T) {
	src := `
int g(int c, int a, int b) {
	int x = a * b;
	int r = 0;
	if (c) {
		r = x;
	}
	return r + a;
}
int main() { return g(1, 3, 4); }
`
	with := analyze(t, src, compile.Config{Opt: opt.Options{PDCE: true, DCE: true}}, "g")
	without := analyze(t, src, compile.Config{Opt: opt.Options{PDCE: true, DCE: true, NoMarkers: true}}, "g")

	cw := classOf(t, with, 1, "x")
	co := classOf(t, without, 1, "x")
	if cw.State != Noncurrent {
		t.Errorf("with markers x should be noncurrent, got %s", cw.State)
	}
	if co.State == Noncurrent || co.State == Suspect {
		t.Errorf("ablation: without markers the debugger cannot know x is endangered, got %s", co.State)
	}
}

// TestClassifyAllCounts smoke-tests whole-function classification.
func TestClassifyAllCounts(t *testing.T) {
	src := `
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 10; i++) {
		s = s + i;
	}
	print(s);
	return s;
}
`
	a := analyze(t, src, compile.O2(), "main")
	total := 0
	for s := 0; s < a.Fn.Decl.NumStmts; s++ {
		cs, ok := a.ClassifyAllAt(s)
		if !ok {
			continue
		}
		total += len(cs)
	}
	if total == 0 {
		t.Error("no classifications produced")
	}
}
