package core

// Memory accounting for the unified artifact store: an Analysis reports an
// estimate of its resident size so the store can charge a compiled
// artifact and its lazily built analyses against one byte budget and evict
// them in lockstep.

import (
	"unsafe"

	"repro/internal/dataflow"
)

// SizeBytes estimates the resident memory cost of the analysis: its
// data-flow solution sets, cached transfer functions, precomputed
// per-breakpoint tables, and rendered texts. Like the artifact estimator
// it is deliberately generous, so a configured budget is a real ceiling.
func (a *Analysis) SizeBytes() int64 {
	n := int64(unsafe.Sizeof(*a))
	if a.Table != nil {
		n += a.Table.SizeBytes()
	}
	for i := range a.ents {
		n += int64(unsafe.Sizeof(a.ents[i])) + int64(len(a.ents[i].gens))*16
	}
	n += int64(len(a.entOf)) * 48
	n += int64(len(a.srcEnts)) * int64(unsafe.Sizeof(srcEntity{}))
	n += int64(len(a.srcEntOf)) * 48
	for _, vs := range a.varsByLoc {
		n += 48 + int64(len(vs))*8
	}
	n += bitSetSlice(a.mayIn) + bitSetSlice(a.mustIn)
	n += int64(len(a.blockIdx)) * 48
	for _, effs := range a.eff {
		n += 24
		for i := range effs {
			n += int64(unsafe.Sizeof(effs[i])) + int64(len(effs[i].gen)+len(effs[i].kill))*4
		}
	}
	// bpSets values alias the stmtMay/stmtMust sets, so charge the pairs
	// once (through the slices below) and only the map rows here.
	n += int64(len(a.bpSets)) * 64
	n += bitSetSlice(a.stmtMay) + bitSetSlice(a.stmtMust)
	for _, es := range a.entsOfVar {
		n += 24 + int64(len(es))*4
	}
	n += stringSlice(a.uninitWhy) + stringSlice(a.nonresWhy) + stringSlice(a.consWhy) + stringSlice(a.recWhy)
	n += int64(len(a.recovered)) * int64(unsafe.Sizeof(Recovery{}))
	return n
}

// bitSetSlice sums a slice of (possibly shared, possibly nil) bit sets.
// Shared sets are charged once per appearance; overcounting aliased sets
// keeps the estimate conservative.
func bitSetSlice(sets []*dataflow.BitSet) int64 {
	n := int64(len(sets)) * 8
	for _, s := range sets {
		if s != nil {
			n += s.SizeBytes()
		}
	}
	return n
}

func stringSlice(ss []string) int64 {
	n := int64(len(ss)) * 16
	for _, s := range ss {
		n += int64(len(s))
	}
	return n
}
