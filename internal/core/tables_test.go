package core

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/debuginfo"
)

// tablesProg has a loop, a branch and an eliminated assignment, so its
// breakpoint tables contain nontrivial may/must pairs.
const tablesProg = `int f(int c, int a, int b) {
	int x = a * b;
	int s = 0;
	int i = 0;
	while (i < 10) {
		s = s + a;
		i = i + 1;
	}
	if (c) {
		s = x;
	}
	return s + a;
}
int main() { return f(1, 3, 4); }`

// TestSetsAtIdxPastEndOfBlock pins the guard for locations beyond the
// last instruction of a block: the old prefix walk clamped silently via
// its loop condition; the precomputed tables must clamp the same way, so
// an index past the end behaves exactly like the block's end and never
// reads out of bounds.
func TestSetsAtIdxPastEndOfBlock(t *testing.T) {
	for _, cfg := range []compile.Config{compile.O2NoRegAlloc(), compile.O2()} {
		a := analyzeCfg(t, tablesProg, cfg, "f")
		for s := 0; s < a.Table.NumStmts; s++ {
			loc, ok := a.Table.LocOf(s)
			if !ok {
				continue
			}
			end := debuginfo.Loc{Block: loc.Block, Idx: len(loc.Block.Instrs)}
			past := debuginfo.Loc{Block: loc.Block, Idx: len(loc.Block.Instrs) + 7}
			mayEnd, mustEnd := a.setsAt(end)
			mayPast, mustPast := a.setsAt(past)
			if !mayEnd.Equal(mayPast) || !mustEnd.Equal(mustPast) {
				t.Fatalf("stmt %d: sets at idx=len and idx=len+7 differ", s)
			}
			for _, v := range a.Table.VarsInScope(s) {
				ce := a.classify(end, v, mayEnd, mustEnd)
				cp := a.classify(past, v, mayPast, mustPast)
				// Scheduling detection legitimately reads the instruction
				// at the location, so compare the data-flow verdict only.
				if ce.State != cp.State || ce.Why != cp.Why {
					t.Fatalf("stmt %d %s: classification differs past end: %v/%q vs %v/%q",
						s, v.Name, ce.State, ce.Why, cp.State, cp.Why)
				}
			}
		}
	}
}

// TestBreakpointTablesMatchReplay checks that every precomputed
// per-breakpoint set pair equals the block-prefix replay it replaced:
// starting from the block's in-sets and applying the cached instruction
// effects up to the location.
func TestBreakpointTablesMatchReplay(t *testing.T) {
	for _, cfg := range []compile.Config{compile.O2NoRegAlloc(), compile.O2()} {
		a := analyzeCfg(t, tablesProg, cfg, "f")
		if len(a.bpSets) == 0 {
			t.Fatal("no precomputed breakpoint tables")
		}
		for k, p := range a.bpSets {
			bi := a.blockIdx[k.block]
			may := a.mayIn[bi].Copy()
			must := a.mustIn[bi].Copy()
			for i := 0; i < k.idx; i++ {
				applyEffect(&a.eff[bi][i], may, must)
			}
			if !may.Equal(p.may) || !must.Equal(p.must) {
				t.Fatalf("block %v idx %d: precomputed pair differs from replay", k.block, k.idx)
			}
		}
	}
}

// analyzeCfg compiles src with cfg and analyzes function fn.
func analyzeCfg(t *testing.T, src string, cfg compile.Config, fn string) *Analysis {
	t.Helper()
	res, err := compile.Compile("tables.mc", src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := res.Mach.LookupFunc(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	return Analyze(f)
}
