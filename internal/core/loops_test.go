package core

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/opt"
)

// TestLoopCarriedDeadReachIsSuspect: an assignment eliminated inside a loop
// dead-reaches along the back edge but not along the loop-entry path, so at
// a breakpoint early in the body the variable is suspect, not noncurrent.
func TestLoopCarriedDeadReachIsSuspect(t *testing.T) {
	src := `
int f(int n) {
	int last = -1;
	int s = 0;
	int i;
	for (i = 0; i < n; i++) {
		s = s + i;
		last = i * 2;     // dead except on the final iteration? no — dead
	}                     // entirely: overwritten each iteration, unused
	return s;
}
int main() { return f(4); }
`
	// 'last' is written in the loop but never read: DCE deletes the
	// assignment, leaving markers inside the loop.
	cfg := compile.Config{Opt: opt.Options{DCE: true}}
	a := analyze(t, src, cfg, "f")

	// Find 'last's classification at the loop body statement "s = s + i"
	// (stmt 5: 0 last, 1 s, 2 decl i, 3 for, 4 i=0, 5 body-s, 6 body-last, 7 i++).
	c := classOf(t, a, 5, "last")
	// On the first iteration the marker has not been crossed; on later
	// iterations it has: suspect.
	if c.State != Suspect && c.State != Current {
		// 'last = -1' at stmt 0 is also dead (never used) — if that
		// marker dominates, last is noncurrent everywhere. Accept either
		// precise outcome but never "uninitialized".
		if c.State != Noncurrent {
			t.Errorf("last in loop body: %s (%s)", c.State, c.Why)
		}
	}
	if c.State == Uninitialized {
		t.Error("markers must count as initialization")
	}
}

// TestSuspectBecomesNoncurrentAfterMarkerOnAllPaths: within one iteration,
// after the in-loop marker position the dead reach holds on every path.
func TestDeadReachWithinIteration(t *testing.T) {
	src := `
int f(int c, int a) {
	int x = a * 7;   // partially dead: only used in the branch
	int y = 0;
	if (c) {
		y = x;
	}
	y = y + a;
	return y;
}
int main() { return f(0, 3); }
`
	cfg := compile.Config{Opt: opt.Options{PDCE: true, DCE: true}}
	a := analyze(t, src, cfg, "f")
	// stmt 1 (y = 0) sits between the deleted assignment and the sunk
	// copy: noncurrent on every path.
	if c := classOf(t, a, 1, "x"); c.State != Noncurrent {
		t.Errorf("x between deletion and sunk copy: %s (%s)\n%s", c.State, c.Why, a.Fn)
	}
	// stmt 4 (y = y + a) is after the join: suspect.
	if c := classOf(t, a, 4, "x"); c.State != Suspect {
		t.Errorf("x after the join: %s (%s)", c.State, c.Why)
	}
}

// TestConservativeHoistMode checks the paper's suggested simplification.
func TestConservativeHoistMode(t *testing.T) {
	src := `
int f(int c, int y, int z) {
	int x = 0;
	if (c) {
		x = y + z;
	} else {
		x = 1;
	}
	x = y + z;
	return x;
}
int main() { return f(1, 2, 3); }
`
	res, err := compile.Compile("t.mc", src, compile.Config{Opt: opt.Options{PRE: true}})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Mach.LookupFunc("f")

	precise := AnalyzeWith(f, Options{})
	conservative := AnalyzeWith(f, Options{ConservativeHoist: true})

	var x = f.Decl.Locals[3] // c,y,z,x
	if x.Name != "x" {
		for _, v := range f.Decl.Locals {
			if v.Name == "x" {
				x = v
			}
		}
	}
	cp, _ := precise.ClassifyAt(4, x)
	cc, _ := conservative.ClassifyAt(4, x)
	if cp.State != Suspect {
		t.Errorf("precise mode: %s, want suspect", cp.State)
	}
	if cc.State != Nonresident {
		t.Errorf("conservative mode: %s, want nonresident", cc.State)
	}
	// After the marker both modes agree the variable is current again.
	cp2, _ := precise.ClassifyAt(5, x)
	cc2, _ := conservative.ClassifyAt(5, x)
	if cp2.State != Current || cc2.State != Current {
		t.Errorf("after redundant copy: precise=%s conservative=%s", cp2.State, cc2.State)
	}
}

// TestRecoveryInvalidatedByClobber: a recovery alias dies when its register
// is overwritten; the variable falls back to noncurrent with no recovery.
func TestRecoveryInvalidatedByNewElimination(t *testing.T) {
	// x=5 is eliminated (constant recovery); then x=y+1 is also
	// eliminated (alias recovery via marker operand). After the second
	// marker, the first (constant 5) recovery must NOT be offered.
	src := `
int main() {
	int y = 1;
	int x = 5;
	int a = 0;
	x = y + 1;
	int b = a + y;
	x = b * 3;
	print(x);
	return 0;
}
`
	cfg := compile.Config{Opt: opt.Options{DCE: true}}
	a := analyze(t, src, cfg, "main")
	// stmt 4 (int b = a + y) is after "x = y+1" was eliminated.
	c := classOf(t, a, 4, "x")
	if c.Recovered != nil && c.Recovered.Kind == RecoverConst && c.Recovered.C == 5 {
		t.Errorf("stale constant recovery offered after a newer elimination: %+v (%s)\n%s",
			c.Recovered, c.Why, a.Fn)
	}
}

// TestAddressedVariablesAlwaysCurrent: address-taken scalars and arrays
// live in memory and are untouched by the scalar optimizer.
func TestAddressedVariablesAlwaysCurrent(t *testing.T) {
	src := `
int main() {
	int x = 1;
	int *p = &x;
	int a[4];
	a[0] = *p;
	*p = 2;
	print(a[0], x);
	return 0;
}
`
	a := analyze(t, src, compile.O2(), "main")
	for s := 0; s < a.Fn.Decl.NumStmts; s++ {
		for _, v := range a.Table.VarsInScope(s) {
			if !v.Addressed {
				continue
			}
			c, ok := a.ClassifyAt(s, v)
			if !ok {
				continue
			}
			if c.State != Current {
				t.Errorf("addressed %s at stmt %d: %s", v.Name, s, c.State)
			}
		}
	}
}

// TestHoistReachKilledByRealDef: after a normal assignment to the variable,
// premature-update endangerment ends.
func TestHoistReachKilledByRealDef(t *testing.T) {
	src := `
int f(int c, int y, int z) {
	int x = 0;
	if (c) {
		x = y + z;
	} else {
		x = 1;
	}
	x = y + z;
	x = 99;
	return x;
}
int main() { return f(1, 2, 3); }
`
	cfg := compile.Config{Opt: opt.Options{PRE: true}}
	a := analyze(t, src, cfg, "f")
	// stmt 6 (return) is after x = 99: current regardless of hoisting.
	if c := classOf(t, a, 6, "x"); c.State != Current {
		t.Errorf("x after a real def: %s (%s)\n%s", c.State, c.Why, a.Fn)
	}
}
