package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/mach"
)

// AnalysisSet holds the per-function analyses of one compiled program so
// that any number of debug sessions sharing a compile.Result reuse one
// Analysis per function instead of re-solving the data-flow problems.
// All methods are safe for concurrent use; an Analysis is immutable once
// built, so the returned pointers may be shared freely.
type AnalysisSet struct {
	mu    sync.Mutex
	m     map[*mach.Func]*analysisCell
	opts  Options
	built atomic.Int64
	bytes atomic.Int64

	// costHook, when set, is told the byte cost of each newly built
	// analysis. The artifact store registers itself here so analyses are
	// charged against — and evicted in lockstep with — their artifact.
	hookMu   sync.Mutex
	costHook func(int64)
}

type analysisCell struct {
	once sync.Once
	a    *Analysis
}

// NewAnalysisSet returns an empty set using default classifier options.
func NewAnalysisSet() *AnalysisSet { return NewAnalysisSetWith(Options{}) }

// NewAnalysisSetWith returns an empty set whose analyses run with opts.
func NewAnalysisSetWith(opts Options) *AnalysisSet {
	return &AnalysisSet{m: map[*mach.Func]*analysisCell{}, opts: opts}
}

// Of returns the analysis for f, building it on first use. Concurrent
// callers for the same function block on a single build.
func (s *AnalysisSet) Of(f *mach.Func) *Analysis {
	s.mu.Lock()
	c, ok := s.m[f]
	if !ok {
		c = &analysisCell{}
		s.m[f] = c
	}
	s.mu.Unlock()
	c.once.Do(func() {
		c.a = AnalyzeWith(f, s.opts)
		s.built.Add(1)
		cost := c.a.SizeBytes()
		s.bytes.Add(cost)
		s.hookMu.Lock()
		hook := s.costHook
		s.hookMu.Unlock()
		if hook != nil {
			hook(cost)
		}
	})
	return c.a
}

// SetCostHook registers fn to be called with the byte cost of every
// analysis built after this point (at most one hook is active). The
// artifact store uses it to charge analyses against the same memory
// budget as their artifact.
func (s *AnalysisSet) SetCostHook(fn func(int64)) {
	s.hookMu.Lock()
	s.costHook = fn
	s.hookMu.Unlock()
}

// Precompute builds the analyses for every function of p with a bounded
// worker pool, so sessions opened afterwards never pay the analysis cost
// on their first breakpoint. workers <= 0 selects GOMAXPROCS.
func (s *AnalysisSet) Precompute(p *mach.Program, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n := len(p.Funcs); workers > n {
		workers = n
	}
	if workers == 0 {
		return
	}
	work := make(chan *mach.Func)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range work {
				s.Of(f)
			}
		}()
	}
	for _, f := range p.Funcs {
		work <- f
	}
	close(work)
	wg.Wait()
}

// Built returns how many analyses this set has constructed (each function
// counts once, however many sessions share it).
func (s *AnalysisSet) Built() int64 { return s.built.Load() }

// Bytes returns the estimated resident size of every analysis built so
// far (see Analysis.SizeBytes).
func (s *AnalysisSet) Bytes() int64 { return s.bytes.Load() }
