package core

import (
	"sync"
	"testing"

	"repro/internal/compile"
)

const setProg = `
int f(int a) { int x = a + 1; return x * 2; }
int g(int a) { int y = a * 3; return y - 1; }
int main() { return f(2) + g(3); }
`

func TestAnalysisSetSharesBuilds(t *testing.T) {
	res, err := compile.Compile("t.mc", setProg, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	s := NewAnalysisSet()
	const goroutines = 16
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, f := range res.Mach.Funcs {
				a := s.Of(f)
				if a == nil || a.Fn != f {
					t.Errorf("bad analysis for %s", f.Name)
				}
			}
		}()
	}
	wg.Wait()
	if got, want := s.Built(), int64(len(res.Mach.Funcs)); got != want {
		t.Fatalf("built %d analyses for %d functions across %d goroutines", got, want, goroutines)
	}
	// Every caller must observe the same immutable Analysis.
	f := res.Mach.Funcs[0]
	if s.Of(f) != s.Of(f) {
		t.Fatal("Of returned distinct analyses for one function")
	}
}

func TestAnalysisSetPrecompute(t *testing.T) {
	res, err := compile.Compile("t.mc", setProg, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	s := NewAnalysisSet()
	s.Precompute(res.Mach, 2)
	if got, want := s.Built(), int64(len(res.Mach.Funcs)); got != want {
		t.Fatalf("precompute built %d, want %d", got, want)
	}
	// Precompute again and lazy Of afterwards must not rebuild.
	s.Precompute(res.Mach, 0)
	for _, f := range res.Mach.Funcs {
		s.Of(f)
	}
	if got, want := s.Built(), int64(len(res.Mach.Funcs)); got != want {
		t.Fatalf("rebuilt analyses: built %d, want %d", got, want)
	}
}
