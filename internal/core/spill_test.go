package core

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/mach"
	"repro/internal/vm"
)

// TestSpilledVariableResidence: a spilled variable owns its stack slot, so
// once initialized it stays resident (and current) even far from its uses,
// unlike register-allocated variables whose registers get reused.
func TestSpilledVariableResidence(t *testing.T) {
	// More than 18 simultaneously-live ints force spills.
	src := `
int f(int a0) {
	int v0 = a0 + 0; int v1 = a0 + 1; int v2 = a0 + 2; int v3 = a0 + 3;
	int v4 = a0 + 4; int v5 = a0 + 5; int v6 = a0 + 6; int v7 = a0 + 7;
	int v8 = a0 + 8; int v9 = a0 + 9; int v10 = a0 + 10; int v11 = a0 + 11;
	int v12 = a0 + 12; int v13 = a0 + 13; int v14 = a0 + 14; int v15 = a0 + 15;
	int v16 = a0 + 16; int v17 = a0 + 17; int v18 = a0 + 18; int v19 = a0 + 19;
	int v20 = a0 + 20; int v21 = a0 + 21;
	int mid = v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + v9 + v10;
	int rest = v11 + v12 + v13 + v14 + v15 + v16 + v17 + v18 + v19 + v20 + v21;
	return mid + rest;
}
int main() { return f(1); }
`
	cfg := compile.Config{RegAlloc: true} // no optimizer: keep all vars
	res, err := compile.Compile("spill.mc", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Mach.LookupFunc("f")
	var spilled []string
	for v, loc := range f.VarLoc {
		if loc.Kind == mach.LocSpill {
			spilled = append(spilled, v.Name)
		}
	}
	if len(spilled) == 0 {
		t.Skip("allocator found a coloring without spills; nothing to test")
	}
	a := Analyze(f)
	// At the last statement every spilled variable that was initialized
	// must be resident (its home slot holds the value), hence not
	// Nonresident.
	last := f.Decl.NumStmts - 1
	for v, loc := range f.VarLoc {
		if loc.Kind != mach.LocSpill {
			continue
		}
		c, ok := a.ClassifyAt(last, v)
		if !ok {
			continue
		}
		if c.State == Nonresident {
			t.Errorf("spilled %s reported nonresident; its stack slot is private", v.Name)
		}
	}
	t.Logf("spilled variables: %v", spilled)
}

// TestSpilledProgramStillDebuggable runs the spilled function under the
// debugger and reads a spilled variable's value from its frame slot.
func TestSpilledProgramStillDebuggable(t *testing.T) {
	src := `
int f(int a0) {
	int v0 = a0 + 0; int v1 = a0 + 1; int v2 = a0 + 2; int v3 = a0 + 3;
	int v4 = a0 + 4; int v5 = a0 + 5; int v6 = a0 + 6; int v7 = a0 + 7;
	int v8 = a0 + 8; int v9 = a0 + 9; int v10 = a0 + 10; int v11 = a0 + 11;
	int v12 = a0 + 12; int v13 = a0 + 13; int v14 = a0 + 14; int v15 = a0 + 15;
	int v16 = a0 + 16; int v17 = a0 + 17; int v18 = a0 + 18; int v19 = a0 + 19;
	int v20 = a0 + 20; int v21 = a0 + 21;
	int mid = v0 + v1 + v2 + v3 + v4 + v5 + v6 + v7 + v8 + v9 + v10;
	int rest = v11 + v12 + v13 + v14 + v15 + v16 + v17 + v18 + v19 + v20 + v21;
	return mid + rest;
}
int main() { return f(1); }
`
	cfg := compile.Config{RegAlloc: true}
	res, err := compile.Compile("spill.mc", src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Mach.LookupFunc("f")
	var spilledVar string
	for v, loc := range f.VarLoc {
		if loc.Kind == mach.LocSpill {
			spilledVar = v.Name
			break
		}
	}
	if spilledVar == "" {
		t.Skip("no spills")
	}
	// Exercise execution correctness end-to-end (values flow through
	// frame slots): f(1) = sum of (1+i) for i in 0..21 = 22 + 231 = 253.
	m, err := runVM(res)
	if err != nil {
		t.Fatal(err)
	}
	if m.ExitValue() != 253 {
		t.Errorf("f(1) = %d, want 253", m.ExitValue())
	}
}

// runVM executes a compiled program on the simulator.
func runVM(res *compile.Result) (*vm.VM, error) {
	m, err := vm.New(res.Mach)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	return m, nil
}
