package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/coverage"
)

const covSrc = `int helper(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		acc = acc + i * i;
	}
	return acc;
}
int main() {
	int a = 3;
	int b = helper(a);
	int dead = a + 5;
	a = b - a;
	print(a);
	return a;
}`

// TestCoverageCommandGolden is the golden mcd transcript for the
// coverage command: a scripted wire connection compiles a program and
// sweeps it twice, and the test requires (1) the two coverage response
// lines byte-identical (the sweep is deterministic), (2) the payload
// byte-identical to the library-side sweep of the same source and
// configuration routed through encoding/json, and (3) the stats
// counters accounting for exactly the two sweeps.
func TestCoverageCommandGolden(t *testing.T) {
	s := New(Options{})
	defer s.Close()

	// The library-side reference: same source, same default config the
	// server resolves for a request without a ConfigSpec.
	cfg, err := configOf(nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compile.Compile("cov.mc", covSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := coverage.Sweep(res, core.NewAnalysisSet())
	wantJSON, err := json.Marshal(coverageInfoOf(rep))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Pairs == 0 || len(rep.Funcs) != 2 {
		t.Fatalf("reference sweep is degenerate: %+v", rep.Total)
	}

	// Compile over the wire to learn the artifact id.
	srcJSON, _ := json.Marshal(covSrc)
	var out bytes.Buffer
	script := fmt.Sprintf(`{"id":1,"cmd":"compile","name":"cov.mc","src":%s}`+"\n", srcJSON)
	if err := s.Serve(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	var compResp Response
	if err := json.Unmarshal(out.Bytes(), &compResp); err != nil || !compResp.OK {
		t.Fatalf("compile failed: %v %+v", err, compResp.Error)
	}

	// Two coverage sweeps plus a stats read, on a fresh connection.
	out.Reset()
	script = fmt.Sprintf(
		`{"id":2,"cmd":"coverage","artifact":%q}`+"\n"+
			`{"id":3,"cmd":"coverage","artifact":%q}`+"\n"+
			`{"id":4,"cmd":"coverage","artifact":"nope"}`+"\n"+
			`{"id":5,"cmd":"batch","reqs":[{"id":6,"cmd":"coverage","artifact":%q}]}`+"\n"+
			`{"id":7,"cmd":"stats"}`+"\n",
		compResp.Artifact, compResp.Artifact, compResp.Artifact)
	if err := s.Serve(strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 response lines, got %d:\n%s", len(lines), out.String())
	}

	// (1) Determinism: byte-identical sweeps modulo the echoed id.
	l2 := strings.Replace(lines[0], `"id":2`, `"id":3`, 1)
	if l2 != lines[1] {
		t.Errorf("repeated coverage sweeps differ:\n%s\n%s", lines[0], lines[1])
	}

	// (2) The wire payload is the library-side sweep, byte for byte. The
	// append encoder is held json-identical by its own golden tests, so
	// substring equality over the json.Marshal form pins the whole chain.
	wantField := `"coverage":` + string(wantJSON)
	if !strings.Contains(lines[0], wantField) {
		t.Errorf("coverage payload differs from library-side sweep\n line: %s\n want: %s", lines[0], wantField)
	}
	if !strings.Contains(lines[3], wantField) {
		t.Errorf("batched coverage payload differs from library-side sweep\n line: %s", lines[3])
	}

	// Unknown artifacts answer no-such-artifact without counting a sweep.
	var errRespLine Response
	if err := json.Unmarshal([]byte(lines[2]), &errRespLine); err != nil {
		t.Fatal(err)
	}
	if errRespLine.OK || errRespLine.Error == nil || errRespLine.Error.Code != CodeNoSuchArtifact {
		t.Errorf("coverage of unknown artifact: got %s", lines[2])
	}

	// (3) Stats: three successful sweeps (two direct + one batched), each
	// accounting the artifact's pair total.
	var statsResp Response
	if err := json.Unmarshal([]byte(lines[4]), &statsResp); err != nil {
		t.Fatal(err)
	}
	if statsResp.Stats == nil {
		t.Fatal("stats response carries no stats")
	}
	if got := statsResp.Stats.CoverageSweeps; got != 3 {
		t.Errorf("coverage_sweeps = %d, want 3", got)
	}
	if got, want := statsResp.Stats.CoveragePairs, int64(3*rep.Total.Pairs); got != want {
		t.Errorf("coverage_pairs = %d, want %d", got, want)
	}
}
