// Package server implements the long-lived debug-session service: a
// line-delimited JSON protocol over stdin/stdout or a TCP/unix listener,
// multiplexing any number of concurrent debug sessions over a shared
// compiled-artifact cache. One request per line, one response per line,
// answered in order per connection; separate connections are served
// concurrently and see the same artifact table, but every session is
// owned by the connection that opened (or attached) it.
//
// Commands:
//
//	auth         {token}                            -> {}
//	compile      {name, src | workload, config?}    -> {artifact, cached, funcs}
//	open-session {artifact}                         -> {session, handle}
//	attach       {session, handle}                  -> {session, stop | exited}
//	detach       {session}                          -> {}
//	break        {session, line | func+stmt}        -> {stop}
//	continue     {session}                          -> {stop | exited, output}
//	step         {session}                          -> {stop | exited, output}
//	print        {session, var}                     -> {vars: [1]}
//	info         {session}                          -> {vars}
//	where        {session}                          -> {stop}
//	close        {session}                          -> {}
//	coverage     {artifact}                         -> {coverage}
//	stats        {}                                 -> {stats}
//	batch        {reqs: [...]}                      -> {results: [...]}
//
// Authentication: when the server is started with an auth token,
// unauthenticated connections may issue only auth and stats; everything
// else answers auth-required. A connection authenticates once with the
// auth command, or per request by carrying the token in the request.
//
// Session ownership: open-session returns an unguessable session id plus
// a secret handle. The session belongs to the connection that opened it;
// commands on it from any other connection answer not-owner unless they
// present the handle, which — capability-style — transfers ownership to
// the presenting connection (that is also what the explicit attach
// command does, answering with the current stop so a reconnecting client
// can verify it resumed in place). When a connection drops, its sessions
// are detached, not destroyed: they keep their state and can be attached
// by a later connection with the handle until the idle-session reaper
// collects them.
//
// batch carries up to MaxBatch sub-commands (any of the above except a
// nested batch) over any number of sessions and answers them in order in
// one response line, so harness-style clients issuing thousands of
// breakpoint/classification queries amortize round-trips. Sub-command
// errors are isolated: each result carries its own ok/error, and the
// batch itself still succeeds.
package server

// Request is one protocol command (one JSON object per line).
type Request struct {
	ID  int64  `json:"id,omitempty"`
	Cmd string `json:"cmd"`

	// auth (or any request, for per-request authentication)
	Token string `json:"token,omitempty"`

	// compile
	Name     string      `json:"name,omitempty"`
	Src      string      `json:"src,omitempty"`
	Workload string      `json:"workload,omitempty"` // built-in bench workload by name
	Config   *ConfigSpec `json:"config,omitempty"`

	// open-session
	Artifact string `json:"artifact,omitempty"`

	// session commands
	Session string `json:"session,omitempty"`
	// Handle is the session's secret capability, required by attach and
	// accepted on any session command to (re)claim a session this
	// connection does not own.
	Handle string `json:"handle,omitempty"`
	Func   string `json:"func,omitempty"`
	Stmt   *int   `json:"stmt,omitempty"`
	Line   int    `json:"line,omitempty"`
	Var    string `json:"var,omitempty"`

	// batch
	Reqs []Request `json:"reqs,omitempty"`
}

// MaxBatch caps the number of sub-commands one batch request may carry.
const MaxBatch = 1024

// MaxLine caps one request line on the wire. A longer line answers
// bad-request and closes that connection (other connections are
// unaffected).
const MaxLine = 16 * 1024 * 1024

// ConfigSpec selects the pipeline configuration over the wire. The zero
// value (or a nil *ConfigSpec) means full optimization: O2 with register
// allocation and scheduling.
type ConfigSpec struct {
	Opt      string `json:"opt,omitempty"`      // "O0", "O1" or "O2" (default "O2")
	RegAlloc *bool  `json:"regalloc,omitempty"` // default true
	Sched    *bool  `json:"sched,omitempty"`    // default true
}

// Response answers one Request, echoing its ID.
type Response struct {
	ID    int64       `json:"id,omitempty"`
	OK    bool        `json:"ok"`
	Error *ProtoError `json:"error,omitempty"`

	// compile
	Artifact string `json:"artifact,omitempty"`
	Cached   bool   `json:"cached,omitempty"`
	Funcs    int    `json:"funcs,omitempty"`
	// FuncsCompiled/FuncsReused break Funcs down by whether the
	// per-function back end ran or the function was stitched from the
	// incremental cache; CompileMS is the pipeline wall time. On a cached
	// (whole-artifact) hit FuncsReused equals Funcs and CompileMS is 0.
	FuncsCompiled int   `json:"funcs_compiled,omitempty"`
	FuncsReused   int   `json:"funcs_reused,omitempty"`
	CompileMS     int64 `json:"compile_ms,omitempty"`

	// open-session / attach
	Session string `json:"session,omitempty"`
	// Handle is the session's secret capability, returned once by
	// open-session. Anyone presenting it may attach the session, so
	// clients should treat it like a password.
	Handle string `json:"handle,omitempty"`

	// break / continue / step / where / attach
	Stop   *StopInfo `json:"stop,omitempty"`
	Exited bool      `json:"exited,omitempty"`
	Output string    `json:"output,omitempty"`

	// print / info
	Vars []VarInfo `json:"vars,omitempty"`

	// stats
	Stats *Stats `json:"stats,omitempty"`

	// coverage
	Coverage *CoverageInfo `json:"coverage,omitempty"`

	// batch: one result per sub-command, in request order, each with its
	// own ok/error.
	Results []Response `json:"results,omitempty"`
}

// CoverageCounts is one row of the coverage command's report: the
// absolute pair buckets plus the fixed two-decimal percentage strings.
// The percentages are rendered server-side through coverage.Counts.Pcts
// — the single formatting path — so a live daemon and an in-process
// sweep of the same artifact agree byte for byte, which is what the
// oracle's remote-equality check asserts.
type CoverageCounts struct {
	// Pairs is the total number of statement×variable(×field) pairs
	// swept, including uninitialized ones.
	Pairs int `json:"pairs"`
	// Current / Recovered / Noncurrent partition Pairs - Uninit.
	Current    int `json:"current"`
	Recovered  int `json:"recovered"`
	Noncurrent int `json:"noncurrent"`
	// Suspect and Nonresident detail the noncurrent bucket.
	Suspect     int `json:"suspect"`
	Nonresident int `json:"nonresident"`
	// Uninit counts pairs no source assignment reaches yet; they are
	// excluded from the percentage base.
	Uninit int `json:"uninit"`
	// Percentages of Pairs - Uninit, fixed two-decimal strings.
	CurrentPct    string `json:"current_pct"`
	RecoveredPct  string `json:"recovered_pct"`
	NoncurrentPct string `json:"noncurrent_pct"`
}

// CoverageInfo answers the coverage command: whole-artifact totals plus
// one row per function in program order. The sweep is deterministic, so
// repeated coverage commands on one artifact answer byte-identically.
type CoverageInfo struct {
	CoverageCounts
	Funcs []FuncCoverageInfo `json:"funcs,omitempty"`
}

// FuncCoverageInfo is one function's slice of the sweep.
type FuncCoverageInfo struct {
	Func string `json:"func"`
	CoverageCounts
}

// StopInfo describes where a session is stopped.
type StopInfo struct {
	Func string `json:"func"`
	Stmt int    `json:"stmt"`
	Line int    `json:"line"`
}

// VarInfo is one classified variable at a stop. Display is the exact
// warning-annotated rendering the command-line debugger prints. For a
// struct aggregate, Fields nests one VarInfo per field in declaration
// order, each carrying its own state and warning-annotated display; the
// aggregate's own State summarizes them (worst field).
type VarInfo struct {
	Name    string    `json:"name"`
	State   string    `json:"state"`
	Display string    `json:"display"`
	Fields  []VarInfo `json:"fields,omitempty"`
}

// ProtoError carries a stable machine-readable code plus the human text.
type ProtoError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Protocol error codes.
const (
	CodeBadRequest     = "bad-request"
	CodeAuthRequired   = "auth-required"
	CodeAuthFailed     = "auth-failed"
	CodeCompileError   = "compile-error"
	CodeNoSuchArtifact = "no-such-artifact"
	CodeNoSuchSession  = "no-such-session"
	CodeNotOwner       = "not-owner"
	CodeSessionLimit   = "session-limit"
	CodeNoSuchLine     = "no-such-line"
	CodeNoSuchFunc     = "no-such-func"
	CodeNoStmtLoc      = "no-such-stmt"
	CodeNotStopped     = "not-stopped"
	CodeNoSuchVar      = "no-such-var"
	CodeBudget         = "budget-exceeded"
	CodeTimeout        = "timeout"
	CodeOutputLimit    = "output-limit"
	CodeShuttingDown   = "shutting-down"
	CodeInternal       = "internal"
)

// Stats is the metrics snapshot reported by the stats command. The cache
// and spill counters are one consistent per-shard snapshot of the unified
// artifact store; cache_memory_bytes includes the accounted cost of built
// analyses (analysis_bytes is the analyses' share).
type Stats struct {
	SessionsActive   int64 `json:"sessions_active"`
	SessionsDetached int64 `json:"sessions_detached"`
	SessionsOpened   int64 `json:"sessions_opened"`
	SessionsReaped   int64 `json:"sessions_reaped"`

	ConnsActive  int64 `json:"conns_active"`
	ConnsTotal   int64 `json:"conns_total"`
	AuthFailures int64 `json:"auth_failures"`

	CacheHits         int64 `json:"cache_hits"`
	CacheMisses       int64 `json:"cache_misses"`
	CacheEvictions    int64 `json:"cache_evictions"`
	CacheEntries      int   `json:"cache_entries"`
	CacheMemoryBytes  int64 `json:"cache_memory_bytes"`
	CacheMemoryBudget int64 `json:"cache_memory_budget"`
	CacheShards       int   `json:"cache_shards"`
	AnalysisBytes     int64 `json:"analysis_bytes"`

	SpillHits   int64 `json:"spill_hits"`
	SpillMisses int64 `json:"spill_misses"`
	SpillWrites int64 `json:"spill_writes"`
	SpillErrors int64 `json:"spill_errors"`

	// Spill-tier health: whether the circuit breaker currently has the
	// disk tier degraded to memory-only, how many times it has tripped,
	// how many recovery probes have run, and how many Flush calls failed
	// or were skipped while degraded.
	SpillDegraded     bool  `json:"spill_degraded"`
	SpillDegradations int64 `json:"spill_degradations"`
	SpillProbes       int64 `json:"spill_probes"`
	FlushErrors       int64 `json:"flush_errors"`

	AnalysesBuilt  int64 `json:"analyses_built"`
	CyclesExecuted int64 `json:"cycles_executed"`
	Requests       int64 `json:"requests"`
	Panics         int64 `json:"panics"`
	// Timeouts counts continue/step commands cut off by the per-request
	// deadline (-request-timeout); their cycle progress is still credited
	// to cycles_executed.
	Timeouts int64 `json:"timeouts"`
	// OutputLimits counts continue/step commands cut off because the
	// program printed past the output cap (-output-limit).
	OutputLimits int64 `json:"output_limits"`

	// SROASplits counts struct aggregates decomposed into per-field
	// scalars by the optimizer; FieldsClassified counts per-field
	// debug-info verdicts issued for struct members. Both are
	// process-wide lifetime counters.
	SROASplits       int64 `json:"sroa_splits"`
	FieldsClassified int64 `json:"fields_classified"`

	// VMFastRuns/VMSlowRuns count VM run-loop invocations by path since
	// process start (process-wide, not per-server): the predecoded bitmap
	// fast path vs the closure-predicate reference path. Steady serving
	// load must keep VMSlowRuns flat — the CI bench smoke asserts exactly
	// that.
	VMFastRuns int64 `json:"vm_fast_runs"`
	VMSlowRuns int64 `json:"vm_slow_runs"`

	// Per-function compile pipeline: lifetime totals of back ends run vs.
	// functions stitched from the incremental tier, cumulative pipeline
	// wall time, and the incremental tier's resident footprint.
	CompileWorkers     int   `json:"compile_workers"`
	FuncsCompiled      int64 `json:"funcs_compiled"`
	FuncsReused        int64 `json:"funcs_reused"`
	CompileMSTotal     int64 `json:"compile_ms_total"`
	FuncCacheEntries   int   `json:"func_cache_entries"`
	FuncCacheBytes     int64 `json:"func_cache_bytes"`
	FuncCacheEvictions int64 `json:"func_cache_evictions"`

	// CoverageSweeps counts coverage commands served; CoveragePairs is
	// the total number of statement×variable(×field) pairs those sweeps
	// classified. Both are per-server lifetime counters.
	CoverageSweeps int64 `json:"coverage_sweeps"`
	CoveragePairs  int64 `json:"coverage_pairs"`
}
