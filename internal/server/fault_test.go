package server

import (
	"testing"
	"time"

	"repro/internal/fault"
)

// spinProg never terminates on its own: the only way a continue over it
// returns is the per-request deadline.
const spinProg = `
int main() {
	int i = 0;
	while (0 < 1) {
		i = i + 1;
	}
	return i;
}
`

func TestRequestTimeoutInterruptsRunaway(t *testing.T) {
	s := New(Options{RequestTimeout: 50 * time.Millisecond})
	defer s.Close()
	_, sess := compileAndOpen(t, s, "spin.mc", spinProg)

	before := s.Snapshot().CyclesExecuted
	start := time.Now()
	resp := s.Handle(&Request{Cmd: "continue", Session: sess})
	if resp.OK || resp.Error == nil || resp.Error.Code != CodeTimeout {
		t.Fatalf("runaway continue = %+v, want %s", resp.Error, CodeTimeout)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline enforced only after %v", elapsed)
	}
	snap := s.Snapshot()
	if snap.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", snap.Timeouts)
	}
	// The cycles the request did execute before the deadline are credited,
	// not dropped with the error.
	if snap.CyclesExecuted <= before {
		t.Fatalf("timed-out continue credited no cycles (%d -> %d)", before, snap.CyclesExecuted)
	}
	// The session survives the timeout and still answers: not exited, not
	// destroyed — interrupted mid-run (no breakpoint stop to report).
	w := mustOK(t, s, &Request{Cmd: "where", Session: sess})
	if w.Exited {
		t.Fatalf("where after timeout = %+v, session reported exited", w)
	}
}

func TestNoTimeoutByDefault(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	_, sess := compileAndOpen(t, s, "t.mc", testProg)
	c := mustOK(t, s, &Request{Cmd: "continue", Session: sess})
	if !c.Exited {
		t.Fatalf("continue = %+v, want clean exit", c)
	}
	if snap := s.Snapshot(); snap.Timeouts != 0 {
		t.Fatalf("timeouts = %d without a deadline", snap.Timeouts)
	}
}

// TestConnWriteFaultDropsConnection pins the server.conn.write point's
// contract: a failed response write kills the connection exactly like a
// real broken pipe — Serve returns, the connection's sessions detach but
// survive, and the handle reattaches them from a fresh connection.
func TestConnWriteFaultDropsConnection(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	s := New(Options{})
	defer s.Close()

	a := dialServe(t, s)
	c := a.mustOK(&Request{ID: 1, Cmd: "compile", Name: "t.mc", Src: testProg})
	o := a.mustOK(&Request{ID: 2, Cmd: "open-session", Artifact: c.Artifact})

	fault.Set("server.conn.write", fault.Rule{Times: 1})
	if err := a.enc.Encode(&Request{ID: 3, Cmd: "where", Session: o.Session}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if a.sc.Scan() {
		t.Fatalf("response delivered through a failed write: %q", a.sc.Text())
	}
	if err := <-a.done; err == nil {
		t.Fatal("Serve returned nil after an injected write failure")
	}
	a.w.Close()

	snap := s.Snapshot()
	if snap.SessionsActive != 1 || snap.SessionsDetached != 1 {
		t.Fatalf("after drop: active=%d detached=%d, want 1 detached survivor",
			snap.SessionsActive, snap.SessionsDetached)
	}

	b := dialServe(t, s)
	at := b.mustOK(&Request{ID: 1, Cmd: "attach", Session: o.Session, Handle: o.Handle})
	if at.Session != o.Session {
		t.Fatalf("attach = %+v", at)
	}
	br := b.mustOK(&Request{ID: 2, Cmd: "break", Session: o.Session, Func: "main", Stmt: intp(1)})
	if br.Stop == nil || br.Stop.Func != "main" {
		t.Fatalf("break after reattach = %+v", br)
	}
	b.drop()
}

// TestDegradedFlushOnCloseIsCountedNotFatal drives the spill tier into
// degraded mode, then closes the server: the final flush must fail soft
// (logged + counted), never abort the shutdown.
func TestDegradedFlushOnCloseIsCountedNotFatal(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	s := New(Options{
		SpillDir:           t.TempDir(),
		SpillDegradeAfter:  1,
		SpillProbeInterval: time.Hour,
	})
	fault.Set("store.spill.read", fault.Rule{})
	mustOK(t, s, &Request{Cmd: "compile", Name: "t.mc", Src: testProg})
	if snap := s.Snapshot(); !snap.SpillDegraded {
		t.Fatalf("spill tier not degraded: %+v", snap)
	}
	s.Close()
	if snap := s.Snapshot(); snap.FlushErrors != 1 {
		t.Fatalf("flush_errors = %d after degraded close, want 1", snap.FlushErrors)
	}
}
