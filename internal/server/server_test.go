package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

const testProg = `
int main() {
	int x = 10;
	int y = x * 3;
	print(y);
	return y;
}
`

func intp(n int) *int { return &n }

func mustOK(t *testing.T, s *Server, req *Request) *Response {
	t.Helper()
	resp := s.Handle(req)
	if !resp.OK {
		t.Fatalf("%s failed: %+v", req.Cmd, resp.Error)
	}
	return resp
}

func compileAndOpen(t *testing.T, s *Server, name, src string) (artifact, session string) {
	t.Helper()
	c := mustOK(t, s, &Request{Cmd: "compile", Name: name, Src: src})
	o := mustOK(t, s, &Request{Cmd: "open-session", Artifact: c.Artifact})
	return c.Artifact, o.Session
}

func TestSessionLifecycle(t *testing.T) {
	s := New(Options{})
	art, sess := compileAndOpen(t, s, "t.mc", testProg)
	if art == "" || sess == "" {
		t.Fatal("missing artifact/session ids")
	}

	b := mustOK(t, s, &Request{Cmd: "break", Session: sess, Func: "main", Stmt: intp(1)})
	if b.Stop == nil || b.Stop.Func != "main" || b.Stop.Stmt != 1 {
		t.Fatalf("break stop = %+v", b.Stop)
	}
	c := mustOK(t, s, &Request{Cmd: "continue", Session: sess})
	if c.Stop == nil || c.Exited {
		t.Fatalf("continue = %+v", c)
	}
	p := mustOK(t, s, &Request{Cmd: "print", Session: sess, Var: "x"})
	if len(p.Vars) != 1 || p.Vars[0].Name != "x" || p.Vars[0].State == "" {
		t.Fatalf("print x = %+v", p.Vars)
	}
	// At O2 the assignment is optimized away but recovery still reports
	// the expected value; either way the display leads with it.
	if !strings.HasPrefix(p.Vars[0].Display, "x = 10") {
		t.Fatalf("display = %q", p.Vars[0].Display)
	}
	in := mustOK(t, s, &Request{Cmd: "info", Session: sess})
	if len(in.Vars) < 2 {
		t.Fatalf("info returned %d vars", len(in.Vars))
	}
	st := mustOK(t, s, &Request{Cmd: "step", Session: sess})
	if st.Stop == nil && !st.Exited {
		t.Fatalf("step = %+v", st)
	}
	fin := mustOK(t, s, &Request{Cmd: "continue", Session: sess})
	if !fin.Exited || !strings.Contains(fin.Output, "30") {
		t.Fatalf("final continue = %+v", fin)
	}
	mustOK(t, s, &Request{Cmd: "close", Session: sess})
	if got := s.Snapshot().SessionsActive; got != 0 {
		t.Fatalf("sessions_active = %d after close", got)
	}
}

func TestErrorCodes(t *testing.T) {
	s := New(Options{MaxSessions: 1, StepBudget: 25})
	_, sess := compileAndOpen(t, s, "t.mc", testProg)

	cases := []struct {
		req  *Request
		code string
	}{
		{&Request{Cmd: "nope"}, CodeBadRequest},
		{&Request{Cmd: "compile"}, CodeBadRequest},
		{&Request{Cmd: "compile", Src: "int main( {", Name: "x.mc"}, CodeCompileError},
		{&Request{Cmd: "compile", Workload: "nosuchworkload"}, CodeBadRequest},
		{&Request{Cmd: "open-session", Artifact: "bogus"}, CodeNoSuchArtifact},
		{&Request{Cmd: "continue", Session: "bogus"}, CodeNoSuchSession},
		{&Request{Cmd: "break", Session: sess}, CodeBadRequest},
		{&Request{Cmd: "break", Session: sess, Line: 999}, CodeNoSuchLine},
		{&Request{Cmd: "break", Session: sess, Func: "nope", Stmt: intp(0)}, CodeNoSuchFunc},
		{&Request{Cmd: "break", Session: sess, Func: "main", Stmt: intp(999)}, CodeNoStmtLoc},
		{&Request{Cmd: "print", Session: sess, Var: "x"}, CodeNotStopped},
		{&Request{Cmd: "info", Session: sess}, CodeNotStopped},
	}
	for _, tc := range cases {
		resp := s.Handle(tc.req)
		if resp.OK || resp.Error == nil || resp.Error.Code != tc.code {
			t.Errorf("%+v -> %+v, want code %s", tc.req, resp.Error, tc.code)
		}
	}

	// Session limit: the one open session occupies the only slot.
	c := mustOK(t, s, &Request{Cmd: "compile", Name: "t.mc", Src: testProg})
	if resp := s.Handle(&Request{Cmd: "open-session", Artifact: c.Artifact}); resp.OK || resp.Error.Code != CodeSessionLimit {
		t.Fatalf("open beyond limit = %+v", resp.Error)
	}
}

func TestStepBudgetCode(t *testing.T) {
	s := New(Options{StepBudget: 50})
	_, sess := compileAndOpen(t, s, "loop.mc", `
int main() {
	int i;
	int acc = 0;
	for (i = 0; i < 100000; i++) { acc += i; }
	return acc;
}
`)
	resp := s.Handle(&Request{Cmd: "continue", Session: sess})
	if resp.OK || resp.Error == nil || resp.Error.Code != CodeBudget {
		t.Fatalf("continue under 50-step budget = %+v, want %s", resp.Error, CodeBudget)
	}
}

func TestPanicRecovery(t *testing.T) {
	s := New(Options{})
	_, sess := compileAndOpen(t, s, "t.mc", testProg)
	// Corrupt the session so the next command panics inside the handler;
	// the server must answer with an internal error, not crash.
	s.mu.Lock()
	s.sessions[sess].dbg = nil
	s.mu.Unlock()
	resp := s.Handle(&Request{Cmd: "continue", Session: sess})
	if resp.OK || resp.Error == nil || resp.Error.Code != CodeInternal {
		t.Fatalf("panic not mapped to internal error: %+v", resp.Error)
	}
	if got := s.Snapshot().Panics; got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}
	// The server keeps serving.
	if resp := s.Handle(&Request{Cmd: "stats"}); !resp.OK {
		t.Fatal("server dead after panic")
	}
}

func TestCompileCacheSharedAcrossSessions(t *testing.T) {
	s := New(Options{})
	c1 := mustOK(t, s, &Request{Cmd: "compile", Name: "t.mc", Src: testProg})
	if c1.Cached {
		t.Fatal("first compile claims cached")
	}
	c2 := mustOK(t, s, &Request{Cmd: "compile", Name: "t.mc", Src: testProg})
	if !c2.Cached || c2.Artifact != c1.Artifact {
		t.Fatalf("second compile = %+v, want cache hit on %s", c2, c1.Artifact)
	}
	st := s.Snapshot()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache counters = %+v", st)
	}
	// Same source, different config: a distinct artifact.
	off := false
	c3 := mustOK(t, s, &Request{Cmd: "compile", Name: "t.mc", Src: testProg,
		Config: &ConfigSpec{Opt: "O2", RegAlloc: &off}})
	if c3.Cached || c3.Artifact == c1.Artifact {
		t.Fatalf("config change did not produce a new artifact: %+v", c3)
	}
}

// TestConcurrentSessionStress drives >= 8 concurrent sessions over bench
// workloads: every session compiles (coalescing through the artifact
// cache), opens, sets breakpoints, and alternates continue/info/print for
// a bounded number of stops. Run under -race this exercises the shared
// cache, the shared AnalysisSet, and the session table.
func TestConcurrentSessionStress(t *testing.T) {
	const perWorkload = 4
	workloads := []string{"compress", "ear"}
	s := New(Options{MaxSessions: 2 * perWorkload * len(workloads)})

	var wg sync.WaitGroup
	errs := make(chan error, perWorkload*len(workloads))
	for _, w := range workloads {
		for i := 0; i < perWorkload; i++ {
			wg.Add(1)
			go func(w string, i int) {
				defer wg.Done()
				errs <- driveSession(s, w, i)
			}(w, i)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := s.Snapshot()
	if st.CacheMisses != int64(len(workloads)) {
		t.Errorf("cache misses = %d, want %d (one compile per workload)", st.CacheMisses, len(workloads))
	}
	if want := int64(perWorkload*len(workloads) - len(workloads)); st.CacheHits != want {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, want)
	}
	if st.SessionsOpened != int64(perWorkload*len(workloads)) {
		t.Errorf("sessions_opened = %d, want %d", st.SessionsOpened, perWorkload*len(workloads))
	}
	if st.SessionsActive != 0 {
		t.Errorf("sessions_active = %d after all closed", st.SessionsActive)
	}
	if st.CyclesExecuted <= 0 {
		t.Error("cycles_executed not accounted")
	}
	// Analyses are shared per artifact: the total built must not scale
	// with the number of sessions.
	var funcs int64
	s.store.Range(func(id string, a *Artifact) {
		funcs += int64(len(a.Res.Mach.Funcs))
	})
	if st.AnalysesBuilt != funcs {
		t.Errorf("analyses_built = %d, want %d (one per function per artifact)", st.AnalysesBuilt, funcs)
	}
}

// driveSession runs one scripted session over workload w via the public
// Handle surface, returning the first protocol failure.
func driveSession(s *Server, w string, seed int) error {
	c := s.Handle(&Request{Cmd: "compile", Workload: w})
	if !c.OK {
		return fmt.Errorf("%s: compile: %+v", w, c.Error)
	}
	o := s.Handle(&Request{Cmd: "open-session", Artifact: c.Artifact})
	if !o.OK {
		return fmt.Errorf("%s: open: %+v", w, o.Error)
	}
	sess := o.Session
	// Find a breakable statement in main (IDs differ per workload).
	var armed bool
	for stmt := seed % 3; stmt < 20 && !armed; stmt++ {
		b := s.Handle(&Request{Cmd: "break", Session: sess, Func: "main", Stmt: intp(stmt)})
		if b.OK {
			armed = true
		}
	}
	if !armed {
		return fmt.Errorf("%s: no breakable statement in main", w)
	}
	for hit := 0; hit < 3; hit++ {
		r := s.Handle(&Request{Cmd: "continue", Session: sess})
		if !r.OK {
			return fmt.Errorf("%s: continue: %+v", w, r.Error)
		}
		if r.Exited {
			break
		}
		in := s.Handle(&Request{Cmd: "info", Session: sess})
		if !in.OK {
			return fmt.Errorf("%s: info: %+v", w, in.Error)
		}
		if len(in.Vars) > 0 {
			p := s.Handle(&Request{Cmd: "print", Session: sess, Var: in.Vars[0].Name})
			if !p.OK {
				return fmt.Errorf("%s: print %s: %+v", w, in.Vars[0].Name, p.Error)
			}
		}
		if st := s.Handle(&Request{Cmd: "step", Session: sess}); !st.OK {
			return fmt.Errorf("%s: step: %+v", w, st.Error)
		}
		if s.Handle(&Request{Cmd: "where", Session: sess}).OK == false {
			return fmt.Errorf("%s: where failed", w)
		}
	}
	if cl := s.Handle(&Request{Cmd: "close", Session: sess}); !cl.OK {
		return fmt.Errorf("%s: close: %+v", w, cl.Error)
	}
	return nil
}

func TestIdleSessionReaping(t *testing.T) {
	s := New(Options{SessionTTL: 40 * time.Millisecond, ReapInterval: 10 * time.Millisecond})
	defer s.Close()
	_, sess := compileAndOpen(t, s, "t.mc", testProg)

	// An active session survives: keep touching it past several TTLs.
	for i := 0; i < 5; i++ {
		time.Sleep(15 * time.Millisecond)
		if r := s.Handle(&Request{Cmd: "where", Session: sess}); !r.OK {
			t.Fatalf("active session reaped at touch %d: %+v", i, r.Error)
		}
	}

	// An idle session is closed and its slot freed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Snapshot()
		if st.SessionsActive == 0 && st.SessionsReaped >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle session not reaped: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if r := s.Handle(&Request{Cmd: "where", Session: sess}); r.OK || r.Error.Code != CodeNoSuchSession {
		t.Fatalf("reaped session still answers: %+v", r)
	}
	// The freed slot is reusable.
	if _, sess2 := compileAndOpen(t, s, "t.mc", testProg); sess2 == "" {
		t.Fatal("could not open a session after reaping")
	}
}

func TestReapingDisabledByDefault(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	if n := s.ReapIdleSessions(); n != 0 {
		t.Fatalf("reaped %d sessions with reaping disabled", n)
	}
}

func TestRestartWithSpillKeepsWarmSet(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{SpillDir: dir})
	c1 := mustOK(t, s, &Request{Cmd: "compile", Name: "t.mc", Src: testProg})
	if c1.Cached {
		t.Fatal("first compile claims cached")
	}
	s.Close() // flushes the warm set

	restarted := New(Options{SpillDir: dir})
	defer restarted.Close()
	c2 := mustOK(t, restarted, &Request{Cmd: "compile", Name: "t.mc", Src: testProg})
	if !c2.Cached || c2.Artifact != c1.Artifact {
		t.Fatalf("restart lost the warm set: %+v (want cached %s)", c2, c1.Artifact)
	}
	st := restarted.Snapshot()
	if st.SpillHits != 1 || st.CacheMisses != 0 {
		t.Fatalf("restart stats = %+v", st)
	}
	// Sessions on the rehydrated artifact behave identically.
	o := mustOK(t, restarted, &Request{Cmd: "open-session", Artifact: c2.Artifact})
	mustOK(t, restarted, &Request{Cmd: "break", Session: o.Session, Func: "main", Stmt: intp(1)})
	cont := mustOK(t, restarted, &Request{Cmd: "continue", Session: o.Session})
	if cont.Stop == nil {
		t.Fatalf("continue on rehydrated artifact = %+v", cont)
	}
	p := mustOK(t, restarted, &Request{Cmd: "print", Session: o.Session, Var: "x"})
	if len(p.Vars) != 1 || !strings.HasPrefix(p.Vars[0].Display, "x = 10") {
		t.Fatalf("print on rehydrated artifact = %+v", p.Vars)
	}
}

func TestStatsConsistentViewIncludesMemoryAndSpill(t *testing.T) {
	s := New(Options{MemoryBudget: 1 << 30, Shards: 4})
	defer s.Close()
	_, sess := compileAndOpen(t, s, "t.mc", testProg)
	mustOK(t, s, &Request{Cmd: "break", Session: sess, Func: "main", Stmt: intp(1)})
	mustOK(t, s, &Request{Cmd: "continue", Session: sess})
	st := s.Snapshot()
	if st.CacheMemoryBytes <= 0 {
		t.Fatalf("cache_memory_bytes = %d", st.CacheMemoryBytes)
	}
	if st.AnalysisBytes <= 0 || st.AnalysisBytes >= st.CacheMemoryBytes {
		t.Fatalf("analysis_bytes = %d of %d", st.AnalysisBytes, st.CacheMemoryBytes)
	}
	if st.CacheShards != 4 {
		t.Fatalf("cache_shards = %d", st.CacheShards)
	}
	if st.CacheMemoryBudget != 1<<30 {
		t.Fatalf("cache_memory_budget = %d", st.CacheMemoryBudget)
	}
	if st.SessionsActive != 1 {
		t.Fatalf("sessions_active = %d", st.SessionsActive)
	}
}
