package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// wireClient drives one real protocol connection (its own Serve call,
// hence its own connection state) over in-memory pipes.
type wireClient struct {
	t    *testing.T
	enc  *json.Encoder
	sc   *bufio.Scanner
	w    *io.PipeWriter
	done chan error
}

func dialServe(t *testing.T, s *Server) *wireClient {
	t.Helper()
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- s.Serve(reqR, respW)
		respW.Close()
	}()
	sc := bufio.NewScanner(respR)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLine)
	return &wireClient{t: t, enc: json.NewEncoder(reqW), sc: sc, w: reqW, done: done}
}

// do sends one request and reads its response.
func (c *wireClient) do(req *Request) *Response {
	c.t.Helper()
	if err := c.enc.Encode(req); err != nil {
		c.t.Fatalf("encode: %v", err)
	}
	if !c.sc.Scan() {
		c.t.Fatalf("connection closed mid-request: %v", c.sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		c.t.Fatalf("bad response %q: %v", c.sc.Text(), err)
	}
	return &resp
}

func (c *wireClient) mustOK(req *Request) *Response {
	c.t.Helper()
	resp := c.do(req)
	if !resp.OK {
		c.t.Fatalf("%s failed: %+v", req.Cmd, resp.Error)
	}
	return resp
}

func (c *wireClient) mustFail(req *Request, code string) *Response {
	c.t.Helper()
	resp := c.do(req)
	if resp.OK || resp.Error == nil || resp.Error.Code != code {
		c.t.Fatalf("%s = %+v, want error code %s", req.Cmd, resp.Error, code)
	}
	return resp
}

// drop simulates the client's connection dying: Serve sees EOF, returns,
// and detaches the sessions this connection owned.
func (c *wireClient) drop() {
	c.t.Helper()
	c.w.Close()
	if err := <-c.done; err != nil {
		c.t.Fatalf("serve: %v", err)
	}
}

// TestSessionIDsUnguessable locks in the bug this PR exists for: session
// ids must no longer be the guessable s1, s2, ... sequence, and every
// session must carry a distinct secret handle.
func TestSessionIDsUnguessable(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	c := mustOK(t, s, &Request{Cmd: "compile", Name: "t.mc", Src: testProg})
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		o := mustOK(t, s, &Request{Cmd: "open-session", Artifact: c.Artifact})
		if o.Session == "s1" || o.Session == "s2" || o.Session == "s3" || o.Session == "s4" {
			t.Fatalf("sequential guessable session id %q", o.Session)
		}
		if len(o.Handle) != 2*handleBytes {
			t.Fatalf("handle %q, want %d hex chars", o.Handle, 2*handleBytes)
		}
		if seen[o.Session] || seen[o.Handle] {
			t.Fatalf("duplicate id/handle: %+v", o)
		}
		seen[o.Session], seen[o.Handle] = true, true
	}
}

// TestCrossConnectionOwnershipDenied is the ownership regression test:
// connection B, knowing only the session id, can neither drive nor close
// connection A's session; with the handle it can.
func TestCrossConnectionOwnershipDenied(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	a := dialServe(t, s)
	b := dialServe(t, s)

	art := a.mustOK(&Request{ID: 1, Cmd: "compile", Name: "t.mc", Src: testProg})
	o := a.mustOK(&Request{ID: 2, Cmd: "open-session", Artifact: art.Artifact})
	stmt := 1
	a.mustOK(&Request{ID: 3, Cmd: "break", Session: o.Session, Func: "main", Stmt: &stmt})

	// B has the id (it leaked via logs, say) but not the handle.
	for _, cmd := range []string{"step", "continue", "where", "close", "detach"} {
		b.mustFail(&Request{ID: 4, Cmd: cmd, Session: o.Session}, CodeNotOwner)
	}
	b.mustFail(&Request{ID: 5, Cmd: "attach", Session: o.Session, Handle: "0badc0de"}, CodeNotOwner)
	b.mustFail(&Request{ID: 6, Cmd: "step", Session: o.Session, Handle: "0badc0de"}, CodeNotOwner)

	// A is unaffected and still owns the session.
	cont := a.mustOK(&Request{ID: 7, Cmd: "continue", Session: o.Session})
	if cont.Stop == nil {
		t.Fatalf("continue = %+v", cont)
	}

	// The handle is the capability: with it, B may take the session over.
	at := b.mustOK(&Request{ID: 8, Cmd: "attach", Session: o.Session, Handle: o.Handle})
	if at.Stop == nil || *at.Stop != *cont.Stop {
		t.Fatalf("attach stop = %+v, want %+v", at.Stop, cont.Stop)
	}
	// ...after which A is the outsider.
	a.mustFail(&Request{ID: 9, Cmd: "step", Session: o.Session}, CodeNotOwner)

	a.drop()
	b.drop()
}

// TestDetachAttachReconnect drives the reconnect flow: a dropped
// connection leaves its session alive but detached, a new connection
// presenting the handle resumes it, and where answers with the identical
// stop (byte-identical JSON) across the reconnect.
func TestDetachAttachReconnect(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	a := dialServe(t, s)

	art := a.mustOK(&Request{ID: 1, Cmd: "compile", Name: "t.mc", Src: testProg})
	o := a.mustOK(&Request{ID: 2, Cmd: "open-session", Artifact: art.Artifact})
	stmt := 1
	a.mustOK(&Request{ID: 3, Cmd: "break", Session: o.Session, Func: "main", Stmt: &stmt})
	a.mustOK(&Request{ID: 4, Cmd: "continue", Session: o.Session})
	whereCold := a.mustOK(&Request{ID: 5, Cmd: "where", Session: o.Session})

	a.drop()
	st := s.Snapshot()
	if st.SessionsActive != 1 || st.SessionsDetached != 1 {
		t.Fatalf("after drop: %d active, %d detached", st.SessionsActive, st.SessionsDetached)
	}

	b := dialServe(t, s)
	defer b.drop()
	// Without the handle the detached session is still off limits.
	b.mustFail(&Request{ID: 5, Cmd: "where", Session: o.Session}, CodeNotOwner)
	at := b.mustOK(&Request{ID: 6, Cmd: "attach", Session: o.Session, Handle: o.Handle})
	if at.Session != o.Session || at.Stop == nil {
		t.Fatalf("attach = %+v", at)
	}
	whereWarm := b.mustOK(&Request{ID: 5, Cmd: "where", Session: o.Session})

	cold, err := json.Marshal(whereCold)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := json.Marshal(whereWarm)
	if err != nil {
		t.Fatal(err)
	}
	if string(cold) != string(warm) {
		t.Fatalf("where across reconnect differs:\nbefore: %s\nafter:  %s", cold, warm)
	}
	// The resumed session keeps working: print sees the stopped frame.
	if p := b.mustOK(&Request{ID: 7, Cmd: "print", Session: o.Session, Var: "x"}); len(p.Vars) != 1 {
		t.Fatalf("print after reconnect = %+v", p)
	}
}

// TestExplicitDetach lets one client move a session between its own
// connections without dropping any.
func TestExplicitDetach(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	a := dialServe(t, s)
	defer a.drop()
	b := dialServe(t, s)
	defer b.drop()

	art := a.mustOK(&Request{ID: 1, Cmd: "compile", Name: "t.mc", Src: testProg})
	o := a.mustOK(&Request{ID: 2, Cmd: "open-session", Artifact: art.Artifact})
	a.mustOK(&Request{ID: 3, Cmd: "detach", Session: o.Session})
	if st := s.Snapshot(); st.SessionsDetached != 1 {
		t.Fatalf("sessions_detached = %d after detach", st.SessionsDetached)
	}
	// Post-detach the original connection is an outsider too.
	a.mustFail(&Request{ID: 4, Cmd: "where", Session: o.Session}, CodeNotOwner)
	b.mustOK(&Request{ID: 5, Cmd: "attach", Session: o.Session, Handle: o.Handle})
	b.mustOK(&Request{ID: 6, Cmd: "where", Session: o.Session})
}

// TestAuthGate covers the shared-secret layer: unauthenticated
// connections get only auth and stats, wrong tokens are counted, and
// both the auth command and per-request tokens unlock a connection.
func TestAuthGate(t *testing.T) {
	s := New(Options{AuthToken: "hunter2"})
	defer s.Close()

	c := dialServe(t, s)
	c.mustOK(&Request{ID: 1, Cmd: "stats"})
	c.mustFail(&Request{ID: 2, Cmd: "compile", Name: "t.mc", Src: testProg}, CodeAuthRequired)
	c.mustFail(&Request{ID: 3, Cmd: "auth", Token: "wrong"}, CodeAuthFailed)
	c.mustFail(&Request{ID: 4, Cmd: "compile", Name: "t.mc", Src: testProg, Token: "wrong"}, CodeAuthFailed)
	c.mustOK(&Request{ID: 5, Cmd: "auth", Token: "hunter2"})
	c.mustOK(&Request{ID: 6, Cmd: "compile", Name: "t.mc", Src: testProg})
	c.drop()

	// Per-request token authenticates without a prior auth command.
	p := dialServe(t, s)
	p.mustOK(&Request{ID: 1, Cmd: "compile", Name: "t.mc", Src: testProg, Token: "hunter2"})
	p.mustOK(&Request{ID: 2, Cmd: "compile", Name: "t.mc", Src: testProg}) // conn now authed
	p.drop()

	if st := s.Snapshot(); st.AuthFailures != 2 {
		t.Fatalf("auth_failures = %d, want 2", st.AuthFailures)
	}

	// The in-process Handle surface is trusted and bypasses the gate.
	if r := s.Handle(&Request{Cmd: "compile", Name: "t.mc", Src: testProg}); !r.OK {
		t.Fatalf("trusted Handle gated: %+v", r.Error)
	}

	// A server without a token accepts auth as a no-op, so clients can
	// always send it.
	open := New(Options{})
	defer open.Close()
	oc := dialServe(t, open)
	oc.mustOK(&Request{ID: 1, Cmd: "auth"})
	oc.mustOK(&Request{ID: 2, Cmd: "compile", Name: "t.mc", Src: testProg})
	oc.drop()
}

// reapLongProg runs long enough that a continue spans many short TTLs
// (~175ms plain, seconds under -race).
const reapLongProg = `
int main() {
	int i;
	int acc = 0;
	for (i = 0; i < 1000000; i++) { acc += i; }
	return acc;
}
`

// reapTTL is short against the reapLongProg continue (so the reaper is
// genuinely tempted mid-command) but long against scheduler noise (so
// the freshly re-touched session is not legitimately idle by the time
// the test's last reap sweep computes its cutoff).
const reapTTL = 50 * time.Millisecond

// TestReapDuringContinue is the reaper TOCTOU regression test: a session
// whose continue is still executing is pinned, so hammering the reaper
// with an expired TTL must not lose it mid-command, and the cycle
// accounting must match a reap-free reference run exactly.
func TestReapDuringContinue(t *testing.T) {
	reference := New(Options{})
	_, refSess := compileAndOpen(t, reference, "loop.mc", reapLongProg)
	if r := reference.Handle(&Request{Cmd: "continue", Session: refSess}); !r.OK || !r.Exited {
		t.Fatalf("reference continue = %+v", r)
	}
	want := reference.Snapshot().CyclesExecuted
	if want <= 0 {
		t.Fatalf("reference cycles = %d", want)
	}

	s := New(Options{SessionTTL: reapTTL, ReapInterval: time.Hour})
	defer s.Close()
	_, sess := compileAndOpen(t, s, "loop.mc", reapLongProg)

	// Wait for the continue to be in flight (the pin is what we test).
	done := make(chan *Response, 1)
	go func() { done <- s.Handle(&Request{Cmd: "continue", Session: sess}) }()
	for {
		s.mu.Lock()
		inflight := s.sessions[sess] != nil && s.sessions[sess].inflight > 0
		s.mu.Unlock()
		if inflight {
			break
		}
		select {
		case r := <-done:
			t.Fatalf("continue finished before it was observed in flight: %+v", r)
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Sweep the reaper for the rest of the run: lastActive goes stale
	// past the TTL while the command executes, so only the in-flight pin
	// protects the session.
	var resp *Response
	for resp == nil {
		select {
		case resp = <-done:
		default:
			s.ReapIdleSessions()
			time.Sleep(2 * time.Millisecond)
		}
	}
	if !resp.OK || !resp.Exited {
		t.Fatalf("continue under reap pressure = %+v", resp)
	}
	// The session survived to answer.
	if r := s.Handle(&Request{Cmd: "where", Session: sess}); !r.OK {
		t.Fatalf("session lost mid-continue: %+v", r.Error)
	}
	if n := s.Snapshot().SessionsReaped; n != 0 {
		t.Fatalf("sessions_reaped = %d, pinned session was reaped", n)
	}
	if got := s.Snapshot().CyclesExecuted; got != want {
		t.Fatalf("cycles_executed = %d, reference = %d", got, want)
	}
}

// TestReapedSessionCyclesAccounted reaps a half-run session and checks
// cycles_executed still equals the single-connection reference.
func TestReapedSessionCyclesAccounted(t *testing.T) {
	drive := func(s *Server) string {
		t.Helper()
		_, sess := compileAndOpen(t, s, "t.mc", testProg)
		stmt := 1
		mustOK(t, s, &Request{Cmd: "break", Session: sess, Func: "main", Stmt: &stmt})
		mustOK(t, s, &Request{Cmd: "continue", Session: sess})
		return sess
	}

	reference := New(Options{})
	drive(reference)
	want := reference.Snapshot().CyclesExecuted

	s := New(Options{SessionTTL: time.Millisecond, ReapInterval: time.Hour})
	defer s.Close()
	drive(s)
	deadline := time.Now().Add(5 * time.Second)
	for s.ReapIdleSessions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never became reapable")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Snapshot().CyclesExecuted; got != want {
		t.Fatalf("cycles_executed after reap = %d, reference = %d", got, want)
	}
	// Closing a session likewise settles its cycles.
	sClose := New(Options{})
	defer sClose.Close()
	sess := drive(sClose)
	mustOK(t, sClose, &Request{Cmd: "close", Session: sess})
	if got := sClose.Snapshot().CyclesExecuted; got != want {
		t.Fatalf("cycles_executed after close = %d, reference = %d", got, want)
	}
}

// TestOversizedLineAnswersThenCloses feeds a line over MaxLine: earlier
// requests on the connection are answered, the oversized line gets a
// bad-request response, and Serve returns nil (a clean per-connection
// close — on the stdio transport this must not kill the daemon).
func TestOversizedLineAnswersThenCloses(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	input := `{"id":1,"cmd":"stats"}` + "\n" + strings.Repeat("x", MaxLine+1) + "\n"
	var out strings.Builder
	if err := s.Serve(strings.NewReader(input), &out); err != nil {
		t.Fatalf("Serve = %v, oversized line must close cleanly", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d response lines: %q", len(lines), out.String())
	}
	var first, second Response
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil || !first.OK || first.Stats == nil {
		t.Fatalf("first response = %q (err %v)", lines[0], err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatalf("second response = %q: %v", lines[1], err)
	}
	if second.OK || second.Error == nil || second.Error.Code != CodeBadRequest ||
		!strings.Contains(second.Error.Message, "exceeds") {
		t.Fatalf("oversized line answered %+v, want %s", second.Error, CodeBadRequest)
	}
	// The server is unaffected.
	if r := s.Handle(&Request{Cmd: "stats"}); !r.OK {
		t.Fatal("server dead after oversized line")
	}
}

// TestOversizedLineDoesNotAffectOtherConnections runs the same scenario
// over a real listener with a second healthy connection.
func TestOversizedLineDoesNotAffectOtherConnections(t *testing.T) {
	s := New(Options{})
	defer s.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	go s.ListenAndServe(l)

	good, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	bad, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()

	// The oversized writer may block (the server stops reading once the
	// line is over budget) and errors out when the server closes the
	// connection; both are fine.
	go func() {
		chunk := strings.Repeat("y", 1<<20)
		for i := 0; i <= MaxLine/len(chunk)+1; i++ {
			if _, err := bad.Write([]byte(chunk)); err != nil {
				return
			}
		}
	}()
	// The bad connection ends (possibly after delivering the error
	// response).
	bad.SetReadDeadline(time.Now().Add(10 * time.Second))
	io.Copy(io.Discard, bad)

	// The good connection still answers.
	gc := json.NewEncoder(good)
	if err := gc.Encode(&Request{ID: 1, Cmd: "stats"}); err != nil {
		t.Fatal(err)
	}
	good.SetReadDeadline(time.Now().Add(10 * time.Second))
	sc := bufio.NewScanner(good)
	if !sc.Scan() {
		t.Fatalf("healthy connection got no answer: %v", sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil || !resp.OK {
		t.Fatalf("healthy connection response %q (err %v)", sc.Text(), err)
	}
}

// TestCloseDrainsInflightCompile is the shutdown-race regression test:
// Close during an in-flight compile must wait for it (the spill-tier
// flush cannot race the store write), and late requests are refused with
// shutting-down instead of hitting a half-closed server. Run under -race
// this is the regression test for Close racing live connections.
func TestCloseDrainsInflightCompile(t *testing.T) {
	dir := t.TempDir()
	s := New(Options{SpillDir: dir})

	done := make(chan *Response, 1)
	go func() { done <- s.Handle(&Request{Cmd: "compile", Workload: "gcc"}) }()
	// Wait until the compile is admitted (in flight), then close.
	for {
		s.stateMu.Lock()
		n := s.inflight
		s.stateMu.Unlock()
		if n > 0 {
			break
		}
		select {
		case r := <-done:
			t.Fatalf("compile finished before close raced it: ok=%v", r.OK)
		default:
		}
	}
	s.Close()
	r := <-done
	if !r.OK {
		t.Fatalf("in-flight compile dropped by Close: %+v", r.Error)
	}
	// Close drained the compile before flushing, so the flushed warm set
	// includes it: a restarted server serves it from disk.
	if s2 := New(Options{SpillDir: dir}); true {
		defer s2.Close()
		warm := s2.Handle(&Request{Cmd: "compile", Workload: "gcc"})
		if !warm.OK || !warm.Cached || warm.Artifact != r.Artifact {
			t.Fatalf("restart after drained close = %+v, want warm hit on %s", warm, r.Artifact)
		}
	}
	// Requests after Close are refused, not half-served.
	if late := s.Handle(&Request{Cmd: "stats"}); late.OK || late.Error.Code != CodeShuttingDown {
		t.Fatalf("post-close request = %+v, want %s", late.Error, CodeShuttingDown)
	}
}

// TestCloseStopsListenersAndConnections: Close closes tracked listeners
// (ListenAndServe returns nil) and force-closes idle connections.
func TestCloseStopsListenersAndConnections(t *testing.T) {
	s := New(Options{DrainTimeout: 2 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	served := make(chan error, 1)
	go func() { served <- s.ListenAndServe(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	if err := enc.Encode(&Request{ID: 1, Cmd: "stats"}); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no stats answer: %v", sc.Err())
	}

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ListenAndServe = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndServe did not return after Close")
	}
	// The tracked connection was force-closed.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if sc.Scan() {
		t.Fatalf("connection still delivering after Close: %q", sc.Text())
	}
	// New dials are refused.
	if c2, err := net.Dial("tcp", l.Addr().String()); err == nil {
		c2.Close()
		t.Fatal("listener still accepting after Close")
	}
}
