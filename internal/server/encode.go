// Zero-allocation response encoding. The wire loop used to run every
// response through encoding/json, which reflects over the struct and
// allocates on every call — measurable at hot continue/stop serving
// rates. appendResponse is a hand-rolled append-based encoder producing
// byte-identical output to encoding/json (same field order, omitempty
// semantics, and string escaping, including the HTML-safe escapes, the
// \ufffd replacement for invalid UTF-8, and  / ), over
// buffers recycled through a sync.Pool. The encode_test golden and
// randomized tests hold it byte-identical to encoding/json; flipping
// LegacyJSONEncoding routes the wire loop back through encoding/json as
// the live differential oracle.
package server

import (
	"strconv"
	"sync"
	"sync/atomic"
	"unicode/utf8"
)

// LegacyJSONEncoding, when set, routes wire responses through
// encoding/json instead of the append encoder. It exists for the
// byte-equivalence tests and the before/after serving benchmarks; leave
// it off in production.
var LegacyJSONEncoding atomic.Bool

// encBufs recycles response encode buffers across requests and
// connections. Stored as *[]byte so Put does not allocate.
var encBufs = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// appendResponse appends r encoded exactly as encoding/json would
// (without the trailing newline json.Encoder adds; the caller appends
// it).
func appendResponse(b []byte, r *Response) []byte {
	b = append(b, '{')
	if r.ID != 0 {
		b = append(b, `"id":`...)
		b = strconv.AppendInt(b, r.ID, 10)
		b = append(b, ',')
	}
	b = append(b, `"ok":`...)
	b = appendBool(b, r.OK)
	if r.Error != nil {
		b = append(b, `,"error":{"code":`...)
		b = appendString(b, r.Error.Code)
		b = append(b, `,"message":`...)
		b = appendString(b, r.Error.Message)
		b = append(b, '}')
	}
	if r.Artifact != "" {
		b = append(b, `,"artifact":`...)
		b = appendString(b, r.Artifact)
	}
	if r.Cached {
		b = append(b, `,"cached":true`...)
	}
	if r.Funcs != 0 {
		b = append(b, `,"funcs":`...)
		b = strconv.AppendInt(b, int64(r.Funcs), 10)
	}
	if r.FuncsCompiled != 0 {
		b = append(b, `,"funcs_compiled":`...)
		b = strconv.AppendInt(b, int64(r.FuncsCompiled), 10)
	}
	if r.FuncsReused != 0 {
		b = append(b, `,"funcs_reused":`...)
		b = strconv.AppendInt(b, int64(r.FuncsReused), 10)
	}
	if r.CompileMS != 0 {
		b = append(b, `,"compile_ms":`...)
		b = strconv.AppendInt(b, r.CompileMS, 10)
	}
	if r.Session != "" {
		b = append(b, `,"session":`...)
		b = appendString(b, r.Session)
	}
	if r.Handle != "" {
		b = append(b, `,"handle":`...)
		b = appendString(b, r.Handle)
	}
	if r.Stop != nil {
		b = append(b, `,"stop":{"func":`...)
		b = appendString(b, r.Stop.Func)
		b = append(b, `,"stmt":`...)
		b = strconv.AppendInt(b, int64(r.Stop.Stmt), 10)
		b = append(b, `,"line":`...)
		b = strconv.AppendInt(b, int64(r.Stop.Line), 10)
		b = append(b, '}')
	}
	if r.Exited {
		b = append(b, `,"exited":true`...)
	}
	if r.Output != "" {
		b = append(b, `,"output":`...)
		b = appendString(b, r.Output)
	}
	if len(r.Vars) > 0 {
		b = append(b, `,"vars":[`...)
		for i := range r.Vars {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendVarInfo(b, &r.Vars[i])
		}
		b = append(b, ']')
	}
	if r.Stats != nil {
		b = append(b, `,"stats":`...)
		b = appendStats(b, r.Stats)
	}
	if r.Coverage != nil {
		b = append(b, `,"coverage":`...)
		b = appendCoverage(b, r.Coverage)
	}
	if len(r.Results) > 0 {
		b = append(b, `,"results":[`...)
		for i := range r.Results {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendResponse(b, &r.Results[i])
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendVarInfo appends one classified variable, recursing into the
// per-field sub-reports of struct aggregates.
func appendVarInfo(b []byte, v *VarInfo) []byte {
	b = append(b, `{"name":`...)
	b = appendString(b, v.Name)
	b = append(b, `,"state":`...)
	b = appendString(b, v.State)
	b = append(b, `,"display":`...)
	b = appendString(b, v.Display)
	if len(v.Fields) > 0 {
		b = append(b, `,"fields":[`...)
		for i := range v.Fields {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendVarInfo(b, &v.Fields[i])
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendCoverage appends one coverage report: the embedded totals row
// inlined first (matching encoding/json's embedding order), then the
// per-function rows.
func appendCoverage(b []byte, ci *CoverageInfo) []byte {
	b = append(b, '{')
	b = appendCoverageCounts(b, &ci.CoverageCounts)
	if len(ci.Funcs) > 0 {
		b = append(b, `,"funcs":[`...)
		for i := range ci.Funcs {
			if i > 0 {
				b = append(b, ',')
			}
			f := &ci.Funcs[i]
			b = append(b, `{"func":`...)
			b = appendString(b, f.Func)
			b = append(b, ',')
			b = appendCoverageCounts(b, &f.CoverageCounts)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendCoverageCounts appends the fields of one counts row without the
// surrounding braces (the caller composes it into its object).
func appendCoverageCounts(b []byte, c *CoverageCounts) []byte {
	b = append(b, `"pairs":`...)
	b = strconv.AppendInt(b, int64(c.Pairs), 10)
	b = append(b, `,"current":`...)
	b = strconv.AppendInt(b, int64(c.Current), 10)
	b = append(b, `,"recovered":`...)
	b = strconv.AppendInt(b, int64(c.Recovered), 10)
	b = append(b, `,"noncurrent":`...)
	b = strconv.AppendInt(b, int64(c.Noncurrent), 10)
	b = append(b, `,"suspect":`...)
	b = strconv.AppendInt(b, int64(c.Suspect), 10)
	b = append(b, `,"nonresident":`...)
	b = strconv.AppendInt(b, int64(c.Nonresident), 10)
	b = append(b, `,"uninit":`...)
	b = strconv.AppendInt(b, int64(c.Uninit), 10)
	b = append(b, `,"current_pct":`...)
	b = appendString(b, c.CurrentPct)
	b = append(b, `,"recovered_pct":`...)
	b = appendString(b, c.RecoveredPct)
	b = append(b, `,"noncurrent_pct":`...)
	b = appendString(b, c.NoncurrentPct)
	return b
}

// appendStats mirrors the Stats struct field for field; none of its
// fields carry omitempty, so every field is emitted.
func appendStats(b []byte, st *Stats) []byte {
	field := func(name string, v int64) {
		b = append(b, ',', '"')
		b = append(b, name...)
		b = append(b, '"', ':')
		b = strconv.AppendInt(b, v, 10)
	}
	b = append(b, `{"sessions_active":`...)
	b = strconv.AppendInt(b, st.SessionsActive, 10)
	field("sessions_detached", st.SessionsDetached)
	field("sessions_opened", st.SessionsOpened)
	field("sessions_reaped", st.SessionsReaped)
	field("conns_active", st.ConnsActive)
	field("conns_total", st.ConnsTotal)
	field("auth_failures", st.AuthFailures)
	field("cache_hits", st.CacheHits)
	field("cache_misses", st.CacheMisses)
	field("cache_evictions", st.CacheEvictions)
	field("cache_entries", int64(st.CacheEntries))
	field("cache_memory_bytes", st.CacheMemoryBytes)
	field("cache_memory_budget", st.CacheMemoryBudget)
	field("cache_shards", int64(st.CacheShards))
	field("analysis_bytes", st.AnalysisBytes)
	field("spill_hits", st.SpillHits)
	field("spill_misses", st.SpillMisses)
	field("spill_writes", st.SpillWrites)
	field("spill_errors", st.SpillErrors)
	b = append(b, `,"spill_degraded":`...)
	b = appendBool(b, st.SpillDegraded)
	field("spill_degradations", st.SpillDegradations)
	field("spill_probes", st.SpillProbes)
	field("flush_errors", st.FlushErrors)
	field("analyses_built", st.AnalysesBuilt)
	field("cycles_executed", st.CyclesExecuted)
	field("requests", st.Requests)
	field("panics", st.Panics)
	field("timeouts", st.Timeouts)
	field("output_limits", st.OutputLimits)
	field("sroa_splits", st.SROASplits)
	field("fields_classified", st.FieldsClassified)
	field("vm_fast_runs", st.VMFastRuns)
	field("vm_slow_runs", st.VMSlowRuns)
	field("compile_workers", int64(st.CompileWorkers))
	field("funcs_compiled", st.FuncsCompiled)
	field("funcs_reused", st.FuncsReused)
	field("compile_ms_total", st.CompileMSTotal)
	field("func_cache_entries", int64(st.FuncCacheEntries))
	field("func_cache_bytes", st.FuncCacheBytes)
	field("func_cache_evictions", st.FuncCacheEvictions)
	field("coverage_sweeps", st.CoverageSweeps)
	field("coverage_pairs", st.CoveragePairs)
	return append(b, '}')
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, "true"...)
	}
	return append(b, "false"...)
}

const hexDigits = "0123456789abcdef"

// appendString appends s as a JSON string exactly as encoding/json's
// default (HTML-escaping) encoder renders it: '"', '\\', '\n', '\r',
// '\t', '\b', '\f' get short escapes; other control bytes and '<', '>', '&' become
// \u00xx; invalid UTF-8 becomes the six-byte escape \ufffd; U+2028 and
// U+2029 are escaped for JavaScript embedding. Everything else is
// copied verbatim.
func appendString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '"', '\\':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			default:
				// Control bytes without short escapes, plus <, >, &.
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
