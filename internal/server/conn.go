package server

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
)

// handleBytes is the entropy of a session handle (hex-encoded on the
// wire); 16 bytes makes handles unguessable capabilities.
const handleBytes = 16

// sessionIDBytes sizes the random part of a session id. Ids are
// addressable (they appear in requests and logs) but carry no authority:
// only the handle does.
const sessionIDBytes = 4

// connState is the per-connection state Serve threads through every
// request: its identity (the ownership anchor for sessions), its
// authentication status, and the sessions it currently owns. A connState
// is only ever touched by its own connection goroutine, except for the
// owned map, which is also written under Server.mu by the ownership
// helpers below.
type connState struct {
	id      int64
	trusted bool // in-process Handle surface: pre-authed, no ownership checks
	authed  bool
	owned   map[string]*session
}

func (s *Server) newConn() *connState {
	return &connState{
		id:     s.nextConn.Add(1),
		authed: s.opts.AuthToken == "",
		owned:  map[string]*session{},
	}
}

// handleAuth authenticates the connection with the shared secret. On a
// server with no token configured it is an allowed no-op, so clients can
// auth unconditionally.
func (s *Server) handleAuth(c *connState, req *Request) *Response {
	if s.opts.AuthToken == "" {
		c.authed = true
		return &Response{ID: req.ID, OK: true}
	}
	if !subtleEqual(req.Token, s.opts.AuthToken) {
		s.authFailures.Add(1)
		return errResp(req.ID, CodeAuthFailed, "invalid auth token")
	}
	c.authed = true
	return &Response{ID: req.ID, OK: true}
}

// tokenOK checks a per-request token in constant time.
func (s *Server) tokenOK(token string) bool {
	return s.opts.AuthToken != "" && subtleEqual(token, s.opts.AuthToken)
}

func subtleEqual(a, b string) bool {
	return subtle.ConstantTimeCompare([]byte(a), []byte(b)) == 1
}

// handleOK checks a presented session handle in constant time.
func handleOK(sess *session, handle string) bool {
	return handle != "" && subtleEqual(handle, sess.handle)
}

// adoptLocked binds sess to connection c. Called with Server.mu held.
func (s *Server) adoptLocked(c *connState, sess *session) {
	sess.owner = c.id
	c.owned[sess.id] = sess
}

// detachAll releases every session this connection still owns when it
// ends. The sessions stay alive — a reconnecting client attaches with
// the handle — and their idle clock restarts at the disconnect, so the
// reaper grants a full TTL of grace before collecting them.
func (s *Server) detachAll(c *connState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, sess := range c.owned {
		if cur, ok := s.sessions[id]; ok && cur == sess && sess.owner == c.id {
			sess.owner = 0
			sess.touch()
		}
		delete(c.owned, id)
	}
}

// randHex returns n cryptographically random bytes, hex-encoded.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing means the platform is broken; a debug
		// service cannot mint capabilities without it.
		panic(fmt.Sprintf("server: crypto/rand: %v", err))
	}
	return hex.EncodeToString(b)
}

// newSessionIDLocked mints a fresh random session id. Called with
// Server.mu held (uniqueness is checked against the live table).
func (s *Server) newSessionIDLocked() string {
	for {
		id := "s-" + randHex(sessionIDBytes)
		if _, taken := s.sessions[id]; !taken {
			return id
		}
	}
}
