package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artstore"
	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/debugger"
	"repro/internal/fault"
	"repro/internal/opt"
	"repro/internal/vm"
)

// Options tunes the service's robustness rails. The zero value selects
// the defaults below.
type Options struct {
	// AuthToken is the shared secret clients must present (auth command or
	// per-request token field) before issuing anything but auth/stats.
	// Empty disables authentication: every connection is trusted.
	AuthToken string
	// CacheSize bounds the compiled-artifact store (artifacts); <= 0 means
	// DefaultCacheSize.
	CacheSize int
	// Shards is the artifact store's shard count (rounded up to a power of
	// two); <= 0 means DefaultShards.
	Shards int
	// MemoryBudget bounds the accounted bytes of resident artifacts plus
	// their built analyses; <= 0 means unbounded.
	MemoryBudget int64
	// SpillDir enables the artifact store's disk tier: evicted and flushed
	// artifacts are serialized there and reloaded on miss, so a restarted
	// server keeps its warm set. Empty means memory-only.
	SpillDir string
	// MaxSessions caps concurrently open sessions; <= 0 means
	// DefaultMaxSessions.
	MaxSessions int
	// StepBudget is the per-session execution budget: the total number of
	// instructions a session may execute across all continue/step
	// commands before it is cut off with a budget-exceeded error. <= 0
	// means DefaultStepBudget.
	StepBudget int64
	// AnalysisWorkers bounds the worker pool that precomputes the
	// per-function core analyses after a compile; <= 0 means GOMAXPROCS.
	AnalysisWorkers int
	// CompileWorkers bounds the per-function back-end concurrency of the
	// compile pipeline (functions of one or many programs compile in
	// parallel under one shared bound); <= 0 means GOMAXPROCS.
	CompileWorkers int
	// SessionTTL reaps sessions idle for longer than this (their slot is
	// freed and later commands get no-such-session); <= 0 disables
	// reaping. Detached sessions — whose connection dropped — are
	// otherwise never garbage-collected.
	SessionTTL time.Duration
	// ReapInterval is how often the reaper scans; <= 0 means
	// min(SessionTTL/4, DefaultReapInterval).
	ReapInterval time.Duration
	// DrainTimeout bounds how long Close waits for in-flight requests to
	// finish before force-closing the remaining connections; <= 0 means
	// DefaultDrainTimeout.
	DrainTimeout time.Duration
	// RequestTimeout bounds the wall-clock time one continue/step command
	// may execute before it is cut off with a timeout error. The session
	// survives (stopped at the instruction boundary where the deadline was
	// noticed, cycles credited); only the one command fails. <= 0 disables
	// the deadline.
	RequestTimeout time.Duration
	// SpillDegradeAfter is the spill-tier circuit breaker's threshold:
	// after this many consecutive disk I/O failures the store degrades to
	// memory-only until a background probe sees the disk recover. <= 0
	// means the store's default.
	SpillDegradeAfter int
	// SpillProbeInterval is how often the degraded store probes the disk;
	// <= 0 means the store's default.
	SpillProbeInterval time.Duration
	// OutputLimit caps how many bytes of program output one session may
	// accumulate before continue/step is cut off with an output-limit
	// error. 0 means the VM's default cap; negative means unlimited.
	OutputLimit int64
}

// Defaults for Options.
const (
	DefaultCacheSize    = 32
	DefaultShards       = 8
	DefaultMaxSessions  = 64
	DefaultStepBudget   = int64(500_000_000)
	DefaultReapInterval = time.Minute
	DefaultDrainTimeout = 5 * time.Second
)

// Artifact is one compiled program plus its shared analysis set. Every
// session opened on it reuses both.
type Artifact = artstore.Artifact

type session struct {
	id     string
	handle string // secret attach capability (crypto/rand hex)
	art    *Artifact

	// owner is the id of the connection the session is bound to, or 0
	// when detached (its connection dropped, or it was opened through the
	// trusted in-process Handle surface). Guarded by Server.mu.
	owner int64
	// inflight counts requests currently executing against this session;
	// the reaper never deletes a pinned session. Guarded by Server.mu.
	inflight int

	lastActive atomic.Int64 // unix nanos of the latest command

	mu     sync.Mutex // serializes commands racing on one session
	dbg    *debugger.Debugger
	cycles int64 // VM cycles already credited to the metrics
}

func (sess *session) touch() { sess.lastActive.Store(time.Now().UnixNano()) }

// Server is the long-lived debug-session service. It is safe for
// concurrent use: Serve may be called from any number of connection
// goroutines against one Server.
type Server struct {
	opts  Options
	store *artstore.Store

	mu       sync.Mutex
	sessions map[string]*session

	// local is the trusted pseudo-connection behind the in-process Handle
	// surface: pre-authenticated, exempt from ownership checks, and never
	// an owner itself.
	local    *connState
	nextConn atomic.Int64

	// Shutdown and drain state. stateMu guards everything below it.
	stateMu       sync.Mutex
	draining      bool
	inflight      int
	drained       chan struct{} // closed when draining && inflight == 0
	drainedClosed bool
	listeners     map[net.Listener]struct{}
	conns         map[net.Conn]struct{}
	connWG        sync.WaitGroup

	sessionsOpened atomic.Int64
	sessionsReaped atomic.Int64
	cyclesExecuted atomic.Int64
	requests       atomic.Int64
	panics         atomic.Int64
	timeouts       atomic.Int64
	outputLimits   atomic.Int64
	connsActive    atomic.Int64
	connsTotal     atomic.Int64
	authFailures   atomic.Int64
	coverageSweeps atomic.Int64
	coveragePairs  atomic.Int64

	closeOnce sync.Once
	reapStop  chan struct{}
	reapDone  chan struct{}
}

// New creates a service with the given options. Call Close to stop
// accepting connections, drain in-flight requests, stop the idle-session
// reaper, and flush the artifact store's disk tier.
func New(opts Options) *Server {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.StepBudget <= 0 {
		opts.StepBudget = DefaultStepBudget
	}
	if opts.ReapInterval <= 0 {
		opts.ReapInterval = DefaultReapInterval
		if opts.SessionTTL > 0 && opts.SessionTTL/4 < opts.ReapInterval {
			opts.ReapInterval = opts.SessionTTL / 4
		}
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = DefaultDrainTimeout
	}
	s := &Server{
		opts: opts,
		store: artstore.New(artstore.Config{
			Shards:             opts.Shards,
			MaxArtifacts:       opts.CacheSize,
			MemoryBudget:       opts.MemoryBudget,
			SpillDir:           opts.SpillDir,
			CompileWorkers:     opts.CompileWorkers,
			SpillDegradeAfter:  opts.SpillDegradeAfter,
			SpillProbeInterval: opts.SpillProbeInterval,
		}),
		sessions:  map[string]*session{},
		local:     &connState{trusted: true, authed: true},
		drained:   make(chan struct{}),
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
		reapStop:  make(chan struct{}),
		reapDone:  make(chan struct{}),
	}
	if opts.SessionTTL > 0 {
		go s.reapLoop()
	} else {
		close(s.reapDone)
	}
	return s
}

// beginRequest admits one request into the drain-tracked in-flight set.
// It fails once Close has started draining.
func (s *Server) beginRequest() bool {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	return true
}

func (s *Server) endRequest() {
	s.stateMu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 && !s.drainedClosed {
		s.drainedClosed = true
		close(s.drained)
	}
	s.stateMu.Unlock()
}

// Close shuts the service down: it stops accepting new connections and
// requests, drains in-flight requests (bounded by DrainTimeout), force-
// closes the remaining tracked connections, stops the idle-session
// reaper, and flushes the resident artifact set to the disk tier (if
// configured) so a restart keeps the warm set. Requests arriving during
// or after Close answer shutting-down.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.stateMu.Lock()
		s.draining = true
		for l := range s.listeners {
			l.Close()
		}
		if s.inflight == 0 && !s.drainedClosed {
			s.drainedClosed = true
			close(s.drained)
		}
		s.stateMu.Unlock()

		select {
		case <-s.drained:
		case <-time.After(s.opts.DrainTimeout):
		}

		// Unblock connection readers so their goroutines exit.
		s.stateMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.stateMu.Unlock()
		done := make(chan struct{})
		go func() {
			s.connWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(s.opts.DrainTimeout):
		}

		close(s.reapStop)
		<-s.reapDone
		if err := s.store.Flush(); err != nil {
			// The warm set just won't survive the restart; the counter is
			// already in flush_errors for anyone watching stats.
			log.Printf("server: spill-tier flush on close: %v", err)
		}
		s.store.Close()
	})
}

// reapLoop scans for idle sessions every ReapInterval.
func (s *Server) reapLoop() {
	defer close(s.reapDone)
	t := time.NewTicker(s.opts.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case <-t.C:
			s.ReapIdleSessions()
		}
	}
}

// ReapIdleSessions closes every session idle for longer than SessionTTL
// and returns how many were reaped. Sessions with a request in flight
// are pinned: a long-running continue under a short TTL keeps its
// session (every request re-arms lastActive when it completes). Reaped
// sessions have their outstanding VM cycles credited to the
// cycles_executed metric. It is a no-op when reaping is disabled.
func (s *Server) ReapIdleSessions() int {
	if s.opts.SessionTTL <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-s.opts.SessionTTL).UnixNano()
	s.mu.Lock()
	var victims []*session
	for id, sess := range s.sessions {
		if sess.inflight == 0 && sess.lastActive.Load() < cutoff {
			victims = append(victims, sess)
			delete(s.sessions, id)
		}
	}
	s.mu.Unlock()
	for _, sess := range victims {
		sess.mu.Lock()
		s.creditCycles(sess)
		sess.mu.Unlock()
	}
	if n := len(victims); n > 0 {
		s.sessionsReaped.Add(int64(n))
		return n
	}
	return 0
}

// Serve answers requests from r on w, one JSON object per line, until r
// is exhausted. Responses are written in request order. Each Serve call
// is one connection: it authenticates independently and owns the
// sessions it opens; when it returns, those sessions are detached (kept
// alive for a later attach, until the reaper collects them).
func (s *Server) Serve(r io.Reader, w io.Writer) error {
	c := s.newConn()
	s.connsActive.Add(1)
	s.connsTotal.Add(1)
	defer s.connsActive.Add(-1)
	defer s.detachAll(c)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLine)
	bw := bufio.NewWriter(w)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp *Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = errResp(0, CodeBadRequest, fmt.Sprintf("malformed request: %v", err))
		} else {
			resp = s.handleAs(c, &req)
		}
		// "server.conn.write" models the response write failing (peer gone,
		// send buffer wedged) or stalling (slow reader): an error here drops
		// the connection exactly like a real write failure would, after
		// which the client's sessions are detached, not destroyed.
		if err := fault.Check("server.conn.write"); err != nil {
			return err
		}
		if err := writeResponse(bw, resp); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		// An oversized line kills only this connection, and tells it why
		// first. Other connections (and the stdio daemon) are unaffected.
		if errors.Is(err, bufio.ErrTooLong) {
			resp := errResp(0, CodeBadRequest,
				fmt.Sprintf("request line exceeds %d bytes; closing connection", MaxLine))
			if eerr := writeResponse(bw, resp); eerr == nil {
				bw.Flush()
			}
			return nil
		}
		return err
	}
	return nil
}

// writeResponse puts one response line on the wire: the pooled append
// encoder by default, or encoding/json (byte-identical, slower) when
// LegacyJSONEncoding is set. Both end the line with '\n', matching
// json.Encoder.Encode.
func writeResponse(w io.Writer, resp *Response) error {
	if LegacyJSONEncoding.Load() {
		return json.NewEncoder(w).Encode(resp)
	}
	bp := encBufs.Get().(*[]byte)
	b := appendResponse((*bp)[:0], resp)
	b = append(b, '\n')
	_, err := w.Write(b)
	*bp = b
	encBufs.Put(bp)
	return err
}

// ListenAndServe accepts connections on l and serves each concurrently
// against the shared artifact store and session table. It returns when
// the listener is closed (Close closes every tracked listener).
func (s *Server) ListenAndServe(l net.Listener) error {
	s.stateMu.Lock()
	if s.draining {
		s.stateMu.Unlock()
		l.Close()
		return nil
	}
	s.listeners[l] = struct{}{}
	s.stateMu.Unlock()
	defer func() {
		s.stateMu.Lock()
		delete(s.listeners, l)
		s.stateMu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.stateMu.Lock()
		if s.draining {
			s.stateMu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.stateMu.Unlock()
		go func(conn net.Conn) {
			defer s.connWG.Done()
			defer func() {
				s.stateMu.Lock()
				delete(s.conns, conn)
				s.stateMu.Unlock()
			}()
			defer conn.Close()
			_ = s.Serve(conn, conn)
		}(conn)
	}
}

// Handle answers one request on the trusted in-process connection: it is
// pre-authenticated and exempt from session-ownership checks, which is
// what embedding Go programs (and the tests) want. Wire connections go
// through Serve instead.
func (s *Server) Handle(req *Request) *Response {
	return s.handleAs(s.local, req)
}

// handleAs admits, authenticates, and answers one request for connection
// c. Panics in command handlers are recovered and reported as internal
// protocol errors, so one bad request cannot take down the service.
func (s *Server) handleAs(c *connState, req *Request) (resp *Response) {
	if !s.beginRequest() {
		return errResp(req.ID, CodeShuttingDown, "server is shutting down")
	}
	defer s.endRequest()
	return s.answer(c, req)
}

// answer dispatches one (admitted) request. Batch sub-commands re-enter
// here so each gets its own panic recovery, auth check, and error
// mapping without re-entering the drain gate.
func (s *Server) answer(c *connState, req *Request) (resp *Response) {
	s.requests.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp = errResp(req.ID, CodeInternal,
				fmt.Sprintf("panic in %q: %v\n%s", req.Cmd, r, debug.Stack()))
		}
	}()
	// auth and stats are the only commands an unauthenticated connection
	// may issue; any other command may authenticate in-line by carrying
	// the token.
	switch req.Cmd {
	case "auth":
		return s.handleAuth(c, req)
	case "stats":
		st := s.Snapshot()
		return &Response{ID: req.ID, OK: true, Stats: &st}
	}
	if !c.authed {
		if req.Token == "" {
			return errResp(req.ID, CodeAuthRequired,
				"authentication required (use the auth command or a per-request token)")
		}
		if !s.tokenOK(req.Token) {
			s.authFailures.Add(1)
			return errResp(req.ID, CodeAuthFailed, "invalid auth token")
		}
		c.authed = true
	}
	switch req.Cmd {
	case "compile":
		return s.handleCompile(req)
	case "open-session":
		return s.handleOpen(c, req)
	case "attach":
		return s.handleAttach(c, req)
	case "detach":
		return s.handleDetach(c, req)
	case "coverage":
		return s.handleCoverage(req)
	case "break", "continue", "step", "print", "info", "where", "close":
		return s.handleSession(c, req)
	case "batch":
		return s.handleBatch(c, req)
	default:
		return errResp(req.ID, CodeBadRequest, fmt.Sprintf("unknown command %q", req.Cmd))
	}
}

// handleBatch answers every sub-command in order and returns the results
// in one response. Each sub-command goes through answer, so it gets its
// own panic recovery and error mapping: one failing sub-command yields an
// error result in its slot without failing the batch. Nested batches are
// rejected per slot.
func (s *Server) handleBatch(c *connState, req *Request) *Response {
	if len(req.Reqs) == 0 {
		return errResp(req.ID, CodeBadRequest, "batch needs a non-empty reqs array")
	}
	if len(req.Reqs) > MaxBatch {
		return errResp(req.ID, CodeBadRequest,
			fmt.Sprintf("batch of %d sub-commands exceeds the limit of %d", len(req.Reqs), MaxBatch))
	}
	results := make([]Response, 0, len(req.Reqs))
	for i := range req.Reqs {
		sub := &req.Reqs[i]
		if sub.Cmd == "batch" {
			results = append(results, *errResp(sub.ID, CodeBadRequest, "batch cannot be nested"))
			continue
		}
		results = append(results, *s.answer(c, sub))
	}
	return &Response{ID: req.ID, OK: true, Results: results}
}

// configOf resolves a wire ConfigSpec to a pipeline Config.
func configOf(spec *ConfigSpec) (compile.Config, error) {
	cfg := compile.Config{Opt: opt.O2(), RegAlloc: true, Sched: true}
	if spec == nil {
		return cfg, nil
	}
	switch spec.Opt {
	case "", "O2":
	case "O1":
		cfg.Opt = opt.O1()
	case "O0":
		cfg.Opt = opt.O0()
		cfg.RegAlloc = false
		cfg.Sched = false
	default:
		return cfg, fmt.Errorf("unknown opt level %q (want O0, O1 or O2)", spec.Opt)
	}
	if spec.RegAlloc != nil {
		cfg.RegAlloc = *spec.RegAlloc
	}
	if spec.Sched != nil {
		cfg.Sched = *spec.Sched
	}
	return cfg, nil
}

func (s *Server) handleCompile(req *Request) *Response {
	name, src := req.Name, req.Src
	if req.Workload != "" {
		if src != "" {
			return errResp(req.ID, CodeBadRequest, "give src or workload, not both")
		}
		ws, err := bench.Source(req.Workload)
		if err != nil {
			return errResp(req.ID, CodeBadRequest, err.Error())
		}
		name, src = req.Workload+".mc", ws
	}
	if src == "" {
		return errResp(req.ID, CodeBadRequest, "compile needs src or workload")
	}
	if name == "" {
		name = "input.mc"
	}
	cfg, err := configOf(req.Config)
	if err != nil {
		return errResp(req.ID, CodeBadRequest, err.Error())
	}
	art, hit, err := s.store.Get(name, src, cfg)
	if err != nil {
		return errResp(req.ID, CodeCompileError, err.Error())
	}
	if !hit {
		// Precompute every function's analyses once with a bounded pool,
		// so sessions never pay the data-flow cost at their first stop.
		// (Artifacts rehydrated from the disk tier rebuild lazily.)
		art.Analyses.Precompute(art.Res.Mach, s.opts.AnalysisWorkers)
	}
	resp := &Response{ID: req.ID, OK: true, Artifact: art.ID(), Cached: hit, Funcs: len(art.Res.Mach.Funcs)}
	if !hit {
		// A miss ran the per-function pipeline: report how much of it was
		// fresh compilation vs. stitched from the incremental tier. A hit
		// skipped the pipeline entirely (the whole artifact was reused).
		resp.FuncsCompiled = art.Metrics.FuncsCompiled
		resp.FuncsReused = art.Metrics.FuncsReused
		resp.CompileMS = art.Metrics.Duration.Milliseconds()
	} else {
		resp.FuncsReused = len(art.Res.Mach.Funcs)
	}
	return resp
}

// handleCoverage runs the deterministic coverage sweep over a compiled
// artifact: every statement×variable(×field) pair bucketed by what the
// classifier lets the debugger show there. The sweep reads the same
// precomputed analyses sessions use and mutates nothing, so the command
// is idempotent and safe under concurrent sessions; repeated sweeps of
// one artifact answer byte-identically, and the percentage strings are
// rendered by the same coverage.Counts.Pcts the in-process sweep uses.
func (s *Server) handleCoverage(req *Request) *Response {
	art, ok := s.store.Lookup(req.Artifact)
	if !ok {
		return errResp(req.ID, CodeNoSuchArtifact, fmt.Sprintf("no artifact %q (compile first)", req.Artifact))
	}
	rep := coverage.Sweep(art.Res, art.Analyses)
	s.coverageSweeps.Add(1)
	s.coveragePairs.Add(int64(rep.Total.Pairs))
	return &Response{ID: req.ID, OK: true, Artifact: art.ID(), Coverage: coverageInfoOf(rep)}
}

// coverageCountsOf converts one library-side counts row to its wire
// shape, percentages included.
func coverageCountsOf(c coverage.Counts) CoverageCounts {
	cur, rec, non := c.Pcts()
	return CoverageCounts{
		Pairs:      c.Pairs,
		Current:    c.Current,
		Recovered:  c.Recovered,
		Noncurrent: c.Noncurrent,
		Suspect:    c.Suspect, Nonresident: c.Nonresident,
		Uninit:        c.Uninit,
		CurrentPct:    cur,
		RecoveredPct:  rec,
		NoncurrentPct: non,
	}
}

func coverageInfoOf(rep *coverage.Report) *CoverageInfo {
	ci := &CoverageInfo{CoverageCounts: coverageCountsOf(rep.Total)}
	for _, f := range rep.Funcs {
		ci.Funcs = append(ci.Funcs, FuncCoverageInfo{Func: f.Func, CoverageCounts: coverageCountsOf(f.Counts)})
	}
	return ci
}

func (s *Server) handleOpen(c *connState, req *Request) *Response {
	art, ok := s.store.Lookup(req.Artifact)
	if !ok {
		return errResp(req.ID, CodeNoSuchArtifact, fmt.Sprintf("no artifact %q (compile first)", req.Artifact))
	}
	dbg, err := debugger.NewShared(art.Res, art.Analyses)
	if err != nil {
		return errResp(req.ID, CodeCompileError, err.Error())
	}
	dbg.VM.MaxSteps = s.opts.StepBudget
	dbg.VM.MaxOutput = s.opts.OutputLimit

	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		return errResp(req.ID, CodeSessionLimit,
			fmt.Sprintf("session limit reached (%d open)", s.opts.MaxSessions))
	}
	sess := &session{id: s.newSessionIDLocked(), handle: randHex(handleBytes), art: art, dbg: dbg}
	sess.touch()
	s.sessions[sess.id] = sess
	if !c.trusted {
		s.adoptLocked(c, sess)
	}
	s.mu.Unlock()
	s.sessionsOpened.Add(1)
	return &Response{ID: req.ID, OK: true, Session: sess.id, Handle: sess.handle, Artifact: art.ID()}
}

// handleAttach binds an existing session to this connection. The handle
// is the capability: presenting it proves the right to the session, so
// attach succeeds whether the session is detached (its connection
// dropped) or still bound elsewhere — that is how a client whose TCP
// connection half-died reclaims its session instantly. The response
// reports the current position, exactly like where, so a reconnecting
// client can verify it resumed in place.
func (s *Server) handleAttach(c *connState, req *Request) *Response {
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	if !ok {
		s.mu.Unlock()
		return errResp(req.ID, CodeNoSuchSession, fmt.Sprintf("no session %q", req.Session))
	}
	if !handleOK(sess, req.Handle) {
		s.mu.Unlock()
		return errResp(req.ID, CodeNotOwner, fmt.Sprintf("wrong handle for session %q", req.Session))
	}
	if !c.trusted {
		s.adoptLocked(c, sess)
	}
	sess.inflight++
	s.mu.Unlock()
	defer s.unpin(sess)

	sess.touch()
	sess.mu.Lock()
	defer sess.mu.Unlock()
	resp := &Response{ID: req.ID, OK: true, Session: sess.id, Artifact: sess.art.ID()}
	if bp := sess.dbg.Stopped(); bp != nil {
		resp.Stop = stopOf(bp)
	} else {
		resp.Exited = sess.dbg.Halted()
	}
	return resp
}

// handleDetach voluntarily releases this connection's ownership, leaving
// the session alive for a later attach (until the reaper collects it).
func (s *Server) handleDetach(c *connState, req *Request) *Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[req.Session]
	if !ok {
		return errResp(req.ID, CodeNoSuchSession, fmt.Sprintf("no session %q", req.Session))
	}
	if !c.trusted && sess.owner != c.id && !handleOK(sess, req.Handle) {
		return errResp(req.ID, CodeNotOwner, s.denialMsg(sess))
	}
	sess.owner = 0
	delete(c.owned, sess.id)
	sess.touch()
	return &Response{ID: req.ID, OK: true, Session: sess.id}
}

func (s *Server) handleSession(c *connState, req *Request) *Response {
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	if !ok {
		s.mu.Unlock()
		return errResp(req.ID, CodeNoSuchSession, fmt.Sprintf("no session %q", req.Session))
	}
	if !c.trusted && sess.owner != c.id {
		// Not ours. The handle is the capability: presenting it attaches
		// the session to this connection; without it the command is
		// denied, whoever may own the session now.
		if !handleOK(sess, req.Handle) {
			s.mu.Unlock()
			return errResp(req.ID, CodeNotOwner, s.denialMsg(sess))
		}
		s.adoptLocked(c, sess)
	}
	// Pin the session for the duration of the command so the reaper
	// cannot delete it mid-execution; touch again on the way out so the
	// idle clock starts when a long continue ends, not when it began.
	sess.inflight++
	s.mu.Unlock()
	defer func() {
		sess.touch()
		s.unpin(sess)
	}()
	sess.touch()
	sess.mu.Lock()
	defer sess.mu.Unlock()

	switch req.Cmd {
	case "break":
		var bp *debugger.Breakpoint
		var err error
		switch {
		case req.Func != "" && req.Stmt != nil:
			bp, err = sess.dbg.BreakAtStmt(req.Func, *req.Stmt)
		case req.Line > 0:
			bp, err = sess.dbg.BreakAtLine(req.Line)
		default:
			return errResp(req.ID, CodeBadRequest, "break needs line or func+stmt")
		}
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		return &Response{ID: req.ID, OK: true, Stop: stopOf(bp)}

	case "continue", "step":
		run := sess.dbg.Continue
		if req.Cmd == "step" {
			run = sess.dbg.Step
		}
		if s.opts.RequestTimeout > 0 {
			sess.dbg.VM.SetDeadline(time.Now().Add(s.opts.RequestTimeout))
			defer sess.dbg.VM.SetDeadline(time.Time{})
		}
		bp, err := run()
		s.creditCycles(sess)
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		if bp == nil {
			return &Response{ID: req.ID, OK: true, Exited: true, Output: sess.dbg.Output()}
		}
		return &Response{ID: req.ID, OK: true, Stop: stopOf(bp)}

	case "print":
		if req.Var == "" {
			return errResp(req.ID, CodeBadRequest, "print needs var")
		}
		r, err := sess.dbg.Print(req.Var)
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		return &Response{ID: req.ID, OK: true, Vars: []VarInfo{varOf(r)}}

	case "info":
		rs, err := sess.dbg.Info()
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		vars := make([]VarInfo, 0, len(rs))
		for _, r := range rs {
			vars = append(vars, varOf(r))
		}
		return &Response{ID: req.ID, OK: true, Vars: vars}

	case "where":
		if bp := sess.dbg.Stopped(); bp != nil {
			return &Response{ID: req.ID, OK: true, Stop: stopOf(bp)}
		}
		return &Response{ID: req.ID, OK: true, Exited: sess.dbg.Halted()}

	case "close":
		s.creditCycles(sess)
		s.mu.Lock()
		delete(s.sessions, sess.id)
		delete(c.owned, sess.id)
		s.mu.Unlock()
		return &Response{ID: req.ID, OK: true, Output: sess.dbg.Output()}
	}
	return errResp(req.ID, CodeBadRequest, fmt.Sprintf("unknown command %q", req.Cmd))
}

// unpin releases a session's in-flight pin.
func (s *Server) unpin(sess *session) {
	s.mu.Lock()
	sess.inflight--
	s.mu.Unlock()
}

// denialMsg distinguishes the two not-owner cases for humans; the code
// is the same either way. Called with s.mu held.
func (s *Server) denialMsg(sess *session) string {
	if sess.owner == 0 {
		return fmt.Sprintf("session %q is detached; present its handle to attach", sess.id)
	}
	return fmt.Sprintf("session %q is owned by another connection; present its handle to attach", sess.id)
}

// creditCycles folds the session VM's cycle progress into the service
// metric. Called with sess.mu held.
func (s *Server) creditCycles(sess *session) {
	if sess.dbg == nil {
		return
	}
	now := sess.dbg.VM.Cycles
	s.cyclesExecuted.Add(now - sess.cycles)
	sess.cycles = now
}

func stopOf(bp *debugger.Breakpoint) *StopInfo {
	return &StopInfo{Func: bp.Fn.Name, Stmt: bp.Stmt, Line: bp.Line}
}

func varOf(r *debugger.VarReport) VarInfo {
	v := VarInfo{Name: r.Name, State: r.Class.State.String(), Display: r.Display()}
	for _, f := range r.Fields {
		v.Fields = append(v.Fields, varOf(f))
	}
	return v
}

// errorOf maps a session error to its stable protocol code.
func (s *Server) errorOf(id int64, err error) *Response {
	code := CodeInternal
	switch {
	case errors.Is(err, debugger.ErrNoSuchLine):
		code = CodeNoSuchLine
	case errors.Is(err, debugger.ErrNoSuchFunc):
		code = CodeNoSuchFunc
	case errors.Is(err, debugger.ErrNoStmtLoc):
		code = CodeNoStmtLoc
	case errors.Is(err, debugger.ErrNotStopped):
		code = CodeNotStopped
	case errors.Is(err, debugger.ErrNoSuchVar):
		code = CodeNoSuchVar
	case errors.Is(err, vm.ErrStepLimit):
		code = CodeBudget
	case errors.Is(err, vm.ErrDeadline):
		code = CodeTimeout
		s.timeouts.Add(1)
	case errors.Is(err, vm.ErrOutputLimit):
		code = CodeOutputLimit
		s.outputLimits.Add(1)
	}
	return errResp(id, code, err.Error())
}

func errResp(id int64, code, msg string) *Response {
	return &Response{ID: id, OK: false, Error: &ProtoError{Code: code, Message: msg}}
}

// Snapshot returns the current metrics. The store counters come from one
// consistent per-shard snapshot (each shard is read under its lock);
// analysis totals are summed over the resident artifacts.
func (s *Server) Snapshot() Stats {
	cs := s.store.Stats()
	var built, analysisBytes int64
	s.store.Range(func(id string, a *Artifact) {
		built += a.Analyses.Built()
		analysisBytes += a.Analyses.Bytes()
	})
	s.mu.Lock()
	active := int64(len(s.sessions))
	var detached int64
	for _, sess := range s.sessions {
		if sess.owner == 0 {
			detached++
		}
	}
	s.mu.Unlock()
	st := Stats{
		SessionsActive:    active,
		SessionsDetached:  detached,
		SessionsOpened:    s.sessionsOpened.Load(),
		SessionsReaped:    s.sessionsReaped.Load(),
		ConnsActive:       s.connsActive.Load(),
		ConnsTotal:        s.connsTotal.Load(),
		AuthFailures:      s.authFailures.Load(),
		CacheHits:         cs.Hits,
		CacheMisses:       cs.Misses,
		CacheEvictions:    cs.Evictions,
		CacheEntries:      cs.Entries,
		CacheMemoryBytes:  cs.MemoryBytes,
		CacheMemoryBudget: cs.MemoryBudget,
		CacheShards:       cs.Shards,
		AnalysisBytes:     analysisBytes,
		SpillHits:         cs.SpillHits,
		SpillMisses:       cs.SpillMisses,
		SpillWrites:       cs.SpillWrites,
		SpillErrors:       cs.SpillErrors,
		SpillDegraded:     cs.SpillDegraded,
		SpillDegradations: cs.SpillDegradations,
		SpillProbes:       cs.SpillProbes,
		FlushErrors:       cs.FlushErrors,
		AnalysesBuilt:     built,
		CyclesExecuted:    s.cyclesExecuted.Load(),
		Requests:          s.requests.Load(),
		Panics:            s.panics.Load(),
		Timeouts:          s.timeouts.Load(),
		OutputLimits:      s.outputLimits.Load(),
	}
	st.SROASplits = opt.SROASplitCount()
	st.FieldsClassified = core.FieldsClassifiedCount()
	st.VMFastRuns, st.VMSlowRuns = vm.PathStats()
	ps := s.store.PipelineStats()
	st.CompileWorkers = s.store.CompileWorkers()
	st.FuncsCompiled = ps.FuncsCompiled
	st.FuncsReused = ps.FuncsReused
	st.CompileMSTotal = ps.CompileNanos / 1e6
	if fs, ok := s.store.FuncCacheStats(); ok {
		st.FuncCacheEntries = fs.Entries
		st.FuncCacheBytes = fs.MemoryBytes
		st.FuncCacheEvictions = fs.Evictions
	}
	st.CoverageSweeps = s.coverageSweeps.Load()
	st.CoveragePairs = s.coveragePairs.Load()
	return st
}
