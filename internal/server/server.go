package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artstore"
	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/debugger"
	"repro/internal/opt"
	"repro/internal/vm"
)

// Options tunes the service's robustness rails. The zero value selects
// the defaults below.
type Options struct {
	// CacheSize bounds the compiled-artifact store (artifacts); <= 0 means
	// DefaultCacheSize.
	CacheSize int
	// Shards is the artifact store's shard count (rounded up to a power of
	// two); <= 0 means DefaultShards.
	Shards int
	// MemoryBudget bounds the accounted bytes of resident artifacts plus
	// their built analyses; <= 0 means unbounded.
	MemoryBudget int64
	// SpillDir enables the artifact store's disk tier: evicted and flushed
	// artifacts are serialized there and reloaded on miss, so a restarted
	// server keeps its warm set. Empty means memory-only.
	SpillDir string
	// MaxSessions caps concurrently open sessions; <= 0 means
	// DefaultMaxSessions.
	MaxSessions int
	// StepBudget is the per-session execution budget: the total number of
	// instructions a session may execute across all continue/step
	// commands before it is cut off with a budget-exceeded error. <= 0
	// means DefaultStepBudget.
	StepBudget int64
	// AnalysisWorkers bounds the worker pool that precomputes the
	// per-function core analyses after a compile; <= 0 means GOMAXPROCS.
	AnalysisWorkers int
	// SessionTTL reaps sessions idle for longer than this (their slot is
	// freed and later commands get no-such-session); <= 0 disables
	// reaping. Sessions that outlive a dropped connection are otherwise
	// never garbage-collected.
	SessionTTL time.Duration
	// ReapInterval is how often the reaper scans; <= 0 means
	// min(SessionTTL/4, DefaultReapInterval).
	ReapInterval time.Duration
}

// Defaults for Options.
const (
	DefaultCacheSize    = 32
	DefaultShards       = 8
	DefaultMaxSessions  = 64
	DefaultStepBudget   = int64(500_000_000)
	DefaultReapInterval = time.Minute
)

// Artifact is one compiled program plus its shared analysis set. Every
// session opened on it reuses both.
type Artifact = artstore.Artifact

type session struct {
	id  string
	art *Artifact

	lastActive atomic.Int64 // unix nanos of the latest command

	mu     sync.Mutex // serializes commands racing on one session
	dbg    *debugger.Debugger
	cycles int64 // VM cycles already credited to the metrics
}

func (sess *session) touch() { sess.lastActive.Store(time.Now().UnixNano()) }

// Server is the long-lived debug-session service. It is safe for
// concurrent use: Serve may be called from any number of connection
// goroutines against one Server.
type Server struct {
	opts  Options
	store *artstore.Store

	mu       sync.Mutex
	sessions map[string]*session
	nextSess int64

	sessionsOpened atomic.Int64
	sessionsReaped atomic.Int64
	cyclesExecuted atomic.Int64
	requests       atomic.Int64
	panics         atomic.Int64

	closeOnce sync.Once
	reapStop  chan struct{}
	reapDone  chan struct{}
}

// New creates a service with the given options. Call Close to stop the
// idle-session reaper and flush the artifact store's disk tier.
func New(opts Options) *Server {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.StepBudget <= 0 {
		opts.StepBudget = DefaultStepBudget
	}
	if opts.ReapInterval <= 0 {
		opts.ReapInterval = DefaultReapInterval
		if opts.SessionTTL > 0 && opts.SessionTTL/4 < opts.ReapInterval {
			opts.ReapInterval = opts.SessionTTL / 4
		}
	}
	s := &Server{
		opts: opts,
		store: artstore.New(artstore.Config{
			Shards:       opts.Shards,
			MaxArtifacts: opts.CacheSize,
			MemoryBudget: opts.MemoryBudget,
			SpillDir:     opts.SpillDir,
		}),
		sessions: map[string]*session{},
		reapStop: make(chan struct{}),
		reapDone: make(chan struct{}),
	}
	if opts.SessionTTL > 0 {
		go s.reapLoop()
	} else {
		close(s.reapDone)
	}
	return s
}

// Close stops the idle-session reaper and flushes the resident artifact
// set to the disk tier (if configured), so a restart keeps the warm set.
// The server still answers requests after Close; only the background
// machinery stops.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.reapStop)
		<-s.reapDone
		s.store.Flush()
	})
}

// reapLoop scans for idle sessions every ReapInterval.
func (s *Server) reapLoop() {
	defer close(s.reapDone)
	t := time.NewTicker(s.opts.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.reapStop:
			return
		case <-t.C:
			s.ReapIdleSessions()
		}
	}
}

// ReapIdleSessions closes every session idle for longer than SessionTTL
// and returns how many were reaped. It is a no-op when reaping is
// disabled.
func (s *Server) ReapIdleSessions() int {
	if s.opts.SessionTTL <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-s.opts.SessionTTL).UnixNano()
	s.mu.Lock()
	var victims []string
	for id, sess := range s.sessions {
		if sess.lastActive.Load() < cutoff {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if n := len(victims); n > 0 {
		s.sessionsReaped.Add(int64(n))
		return n
	}
	return 0
}

// Serve answers requests from r on w, one JSON object per line, until r
// is exhausted. Responses are written in request order.
func (s *Server) Serve(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp *Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = errResp(0, CodeBadRequest, fmt.Sprintf("malformed request: %v", err))
		} else {
			resp = s.Handle(&req)
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ListenAndServe accepts connections on l and serves each concurrently
// against the shared artifact store and session table. It returns when
// the listener is closed.
func (s *Server) ListenAndServe(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.Serve(conn, conn)
		}()
	}
}

// Handle answers one request. Panics in command handlers are recovered
// and reported as internal protocol errors, so one bad request cannot
// take down the service.
func (s *Server) Handle(req *Request) (resp *Response) {
	s.requests.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp = errResp(req.ID, CodeInternal,
				fmt.Sprintf("panic in %q: %v\n%s", req.Cmd, r, debug.Stack()))
		}
	}()
	switch req.Cmd {
	case "compile":
		return s.handleCompile(req)
	case "open-session":
		return s.handleOpen(req)
	case "break", "continue", "step", "print", "info", "where", "close":
		return s.handleSession(req)
	case "stats":
		st := s.Snapshot()
		return &Response{ID: req.ID, OK: true, Stats: &st}
	case "batch":
		return s.handleBatch(req)
	default:
		return errResp(req.ID, CodeBadRequest, fmt.Sprintf("unknown command %q", req.Cmd))
	}
}

// handleBatch answers every sub-command in order and returns the results
// in one response. Each sub-command goes through Handle, so it gets its
// own panic recovery and error mapping: one failing sub-command yields an
// error result in its slot without failing the batch. Nested batches are
// rejected per slot.
func (s *Server) handleBatch(req *Request) *Response {
	if len(req.Reqs) == 0 {
		return errResp(req.ID, CodeBadRequest, "batch needs a non-empty reqs array")
	}
	if len(req.Reqs) > MaxBatch {
		return errResp(req.ID, CodeBadRequest,
			fmt.Sprintf("batch of %d sub-commands exceeds the limit of %d", len(req.Reqs), MaxBatch))
	}
	results := make([]Response, 0, len(req.Reqs))
	for i := range req.Reqs {
		sub := &req.Reqs[i]
		if sub.Cmd == "batch" {
			results = append(results, *errResp(sub.ID, CodeBadRequest, "batch cannot be nested"))
			continue
		}
		results = append(results, *s.Handle(sub))
	}
	return &Response{ID: req.ID, OK: true, Results: results}
}

// configOf resolves a wire ConfigSpec to a pipeline Config.
func configOf(spec *ConfigSpec) (compile.Config, error) {
	cfg := compile.Config{Opt: opt.O2(), RegAlloc: true, Sched: true}
	if spec == nil {
		return cfg, nil
	}
	switch spec.Opt {
	case "", "O2":
	case "O1":
		cfg.Opt = opt.O1()
	case "O0":
		cfg.Opt = opt.O0()
		cfg.RegAlloc = false
		cfg.Sched = false
	default:
		return cfg, fmt.Errorf("unknown opt level %q (want O0, O1 or O2)", spec.Opt)
	}
	if spec.RegAlloc != nil {
		cfg.RegAlloc = *spec.RegAlloc
	}
	if spec.Sched != nil {
		cfg.Sched = *spec.Sched
	}
	return cfg, nil
}

func (s *Server) handleCompile(req *Request) *Response {
	name, src := req.Name, req.Src
	if req.Workload != "" {
		if src != "" {
			return errResp(req.ID, CodeBadRequest, "give src or workload, not both")
		}
		ws, err := bench.Source(req.Workload)
		if err != nil {
			return errResp(req.ID, CodeBadRequest, err.Error())
		}
		name, src = req.Workload+".mc", ws
	}
	if src == "" {
		return errResp(req.ID, CodeBadRequest, "compile needs src or workload")
	}
	if name == "" {
		name = "input.mc"
	}
	cfg, err := configOf(req.Config)
	if err != nil {
		return errResp(req.ID, CodeBadRequest, err.Error())
	}
	art, hit, err := s.store.Get(name, src, cfg)
	if err != nil {
		return errResp(req.ID, CodeCompileError, err.Error())
	}
	if !hit {
		// Precompute every function's analyses once with a bounded pool,
		// so sessions never pay the data-flow cost at their first stop.
		// (Artifacts rehydrated from the disk tier rebuild lazily.)
		art.Analyses.Precompute(art.Res.Mach, s.opts.AnalysisWorkers)
	}
	return &Response{ID: req.ID, OK: true, Artifact: art.ID(), Cached: hit, Funcs: len(art.Res.Mach.Funcs)}
}

func (s *Server) handleOpen(req *Request) *Response {
	art, ok := s.store.Lookup(req.Artifact)
	if !ok {
		return errResp(req.ID, CodeNoSuchArtifact, fmt.Sprintf("no artifact %q (compile first)", req.Artifact))
	}
	dbg, err := debugger.NewShared(art.Res, art.Analyses)
	if err != nil {
		return errResp(req.ID, CodeCompileError, err.Error())
	}
	dbg.VM.MaxSteps = s.opts.StepBudget

	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		return errResp(req.ID, CodeSessionLimit,
			fmt.Sprintf("session limit reached (%d open)", s.opts.MaxSessions))
	}
	s.nextSess++
	sess := &session{id: fmt.Sprintf("s%d", s.nextSess), art: art, dbg: dbg}
	sess.touch()
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.sessionsOpened.Add(1)
	return &Response{ID: req.ID, OK: true, Session: sess.id, Artifact: art.ID()}
}

func (s *Server) handleSession(req *Request) *Response {
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	s.mu.Unlock()
	if !ok {
		return errResp(req.ID, CodeNoSuchSession, fmt.Sprintf("no session %q", req.Session))
	}
	sess.touch()
	sess.mu.Lock()
	defer sess.mu.Unlock()

	switch req.Cmd {
	case "break":
		var bp *debugger.Breakpoint
		var err error
		switch {
		case req.Func != "" && req.Stmt != nil:
			bp, err = sess.dbg.BreakAtStmt(req.Func, *req.Stmt)
		case req.Line > 0:
			bp, err = sess.dbg.BreakAtLine(req.Line)
		default:
			return errResp(req.ID, CodeBadRequest, "break needs line or func+stmt")
		}
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		return &Response{ID: req.ID, OK: true, Stop: stopOf(bp)}

	case "continue", "step":
		run := sess.dbg.Continue
		if req.Cmd == "step" {
			run = sess.dbg.Step
		}
		bp, err := run()
		s.creditCycles(sess)
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		if bp == nil {
			return &Response{ID: req.ID, OK: true, Exited: true, Output: sess.dbg.Output()}
		}
		return &Response{ID: req.ID, OK: true, Stop: stopOf(bp)}

	case "print":
		if req.Var == "" {
			return errResp(req.ID, CodeBadRequest, "print needs var")
		}
		r, err := sess.dbg.Print(req.Var)
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		return &Response{ID: req.ID, OK: true, Vars: []VarInfo{varOf(r)}}

	case "info":
		rs, err := sess.dbg.Info()
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		vars := make([]VarInfo, 0, len(rs))
		for _, r := range rs {
			vars = append(vars, varOf(r))
		}
		return &Response{ID: req.ID, OK: true, Vars: vars}

	case "where":
		if bp := sess.dbg.Stopped(); bp != nil {
			return &Response{ID: req.ID, OK: true, Stop: stopOf(bp)}
		}
		return &Response{ID: req.ID, OK: true, Exited: sess.dbg.Halted()}

	case "close":
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
		return &Response{ID: req.ID, OK: true, Output: sess.dbg.Output()}
	}
	return errResp(req.ID, CodeBadRequest, fmt.Sprintf("unknown command %q", req.Cmd))
}

// creditCycles folds the session VM's cycle progress into the service
// metric. Called with sess.mu held.
func (s *Server) creditCycles(sess *session) {
	now := sess.dbg.VM.Cycles
	s.cyclesExecuted.Add(now - sess.cycles)
	sess.cycles = now
}

func stopOf(bp *debugger.Breakpoint) *StopInfo {
	return &StopInfo{Func: bp.Fn.Name, Stmt: bp.Stmt, Line: bp.Line}
}

func varOf(r *debugger.VarReport) VarInfo {
	return VarInfo{Name: r.Name, State: r.Class.State.String(), Display: r.Display()}
}

// errorOf maps a session error to its stable protocol code.
func (s *Server) errorOf(id int64, err error) *Response {
	code := CodeInternal
	switch {
	case errors.Is(err, debugger.ErrNoSuchLine):
		code = CodeNoSuchLine
	case errors.Is(err, debugger.ErrNoSuchFunc):
		code = CodeNoSuchFunc
	case errors.Is(err, debugger.ErrNoStmtLoc):
		code = CodeNoStmtLoc
	case errors.Is(err, debugger.ErrNotStopped):
		code = CodeNotStopped
	case errors.Is(err, debugger.ErrNoSuchVar):
		code = CodeNoSuchVar
	case errors.Is(err, vm.ErrStepLimit):
		code = CodeBudget
	}
	return errResp(id, code, err.Error())
}

func errResp(id int64, code, msg string) *Response {
	return &Response{ID: id, OK: false, Error: &ProtoError{Code: code, Message: msg}}
}

// Snapshot returns the current metrics. The store counters come from one
// consistent per-shard snapshot (each shard is read under its lock);
// analysis totals are summed over the resident artifacts.
func (s *Server) Snapshot() Stats {
	cs := s.store.Stats()
	var built, analysisBytes int64
	s.store.Range(func(id string, a *Artifact) {
		built += a.Analyses.Built()
		analysisBytes += a.Analyses.Bytes()
	})
	s.mu.Lock()
	active := int64(len(s.sessions))
	s.mu.Unlock()
	return Stats{
		SessionsActive:    active,
		SessionsOpened:    s.sessionsOpened.Load(),
		SessionsReaped:    s.sessionsReaped.Load(),
		CacheHits:         cs.Hits,
		CacheMisses:       cs.Misses,
		CacheEvictions:    cs.Evictions,
		CacheEntries:      cs.Entries,
		CacheMemoryBytes:  cs.MemoryBytes,
		CacheMemoryBudget: cs.MemoryBudget,
		CacheShards:       cs.Shards,
		AnalysisBytes:     analysisBytes,
		SpillHits:         cs.SpillHits,
		SpillMisses:       cs.SpillMisses,
		SpillWrites:       cs.SpillWrites,
		SpillErrors:       cs.SpillErrors,
		AnalysesBuilt:     built,
		CyclesExecuted:    s.cyclesExecuted.Load(),
		Requests:          s.requests.Load(),
		Panics:            s.panics.Load(),
	}
}
