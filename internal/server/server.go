package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/debugger"
	"repro/internal/opt"
	"repro/internal/vm"
)

// Options tunes the service's robustness rails. The zero value selects
// the defaults below.
type Options struct {
	// CacheSize bounds the compiled-artifact cache (entries); <= 0 means
	// DefaultCacheSize.
	CacheSize int
	// MaxSessions caps concurrently open sessions; <= 0 means
	// DefaultMaxSessions.
	MaxSessions int
	// StepBudget is the per-session execution budget: the total number of
	// instructions a session may execute across all continue/step
	// commands before it is cut off with a budget-exceeded error. <= 0
	// means DefaultStepBudget.
	StepBudget int64
	// AnalysisWorkers bounds the worker pool that precomputes the
	// per-function core analyses after a compile; <= 0 means GOMAXPROCS.
	AnalysisWorkers int
}

// Defaults for Options.
const (
	DefaultCacheSize   = 32
	DefaultMaxSessions = 64
	DefaultStepBudget  = int64(500_000_000)
)

// Artifact is one compiled program plus its shared analysis set. Every
// session opened on it reuses both.
type Artifact struct {
	ID       string
	Res      *compile.Result
	Analyses *core.AnalysisSet
}

type session struct {
	id  string
	art *Artifact

	mu     sync.Mutex // serializes commands racing on one session
	dbg    *debugger.Debugger
	cycles int64 // VM cycles already credited to the metrics
}

// Server is the long-lived debug-session service. It is safe for
// concurrent use: Serve may be called from any number of connection
// goroutines against one Server.
type Server struct {
	opts  Options
	cache *compile.Cache

	mu        sync.Mutex
	artifacts map[string]*Artifact
	sessions  map[string]*session
	nextSess  int64

	sessionsOpened atomic.Int64
	cyclesExecuted atomic.Int64
	requests       atomic.Int64
	panics         atomic.Int64
}

// New creates a service with the given options.
func New(opts Options) *Server {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.MaxSessions <= 0 {
		opts.MaxSessions = DefaultMaxSessions
	}
	if opts.StepBudget <= 0 {
		opts.StepBudget = DefaultStepBudget
	}
	return &Server{
		opts:      opts,
		cache:     compile.NewCache(opts.CacheSize),
		artifacts: map[string]*Artifact{},
		sessions:  map[string]*session{},
	}
}

// Serve answers requests from r on w, one JSON object per line, until r
// is exhausted. Responses are written in request order.
func (s *Server) Serve(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp *Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = errResp(0, CodeBadRequest, fmt.Sprintf("malformed request: %v", err))
		} else {
			resp = s.Handle(&req)
		}
		if err := enc.Encode(resp); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ListenAndServe accepts connections on l and serves each concurrently
// against the shared artifact cache and session table. It returns when
// the listener is closed.
func (s *Server) ListenAndServe(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer conn.Close()
			_ = s.Serve(conn, conn)
		}()
	}
}

// Handle answers one request. Panics in command handlers are recovered
// and reported as internal protocol errors, so one bad request cannot
// take down the service.
func (s *Server) Handle(req *Request) (resp *Response) {
	s.requests.Add(1)
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp = errResp(req.ID, CodeInternal,
				fmt.Sprintf("panic in %q: %v\n%s", req.Cmd, r, debug.Stack()))
		}
	}()
	switch req.Cmd {
	case "compile":
		return s.handleCompile(req)
	case "open-session":
		return s.handleOpen(req)
	case "break", "continue", "step", "print", "info", "where", "close":
		return s.handleSession(req)
	case "stats":
		st := s.Snapshot()
		return &Response{ID: req.ID, OK: true, Stats: &st}
	case "batch":
		return s.handleBatch(req)
	default:
		return errResp(req.ID, CodeBadRequest, fmt.Sprintf("unknown command %q", req.Cmd))
	}
}

// handleBatch answers every sub-command in order and returns the results
// in one response. Each sub-command goes through Handle, so it gets its
// own panic recovery and error mapping: one failing sub-command yields an
// error result in its slot without failing the batch. Nested batches are
// rejected per slot.
func (s *Server) handleBatch(req *Request) *Response {
	if len(req.Reqs) == 0 {
		return errResp(req.ID, CodeBadRequest, "batch needs a non-empty reqs array")
	}
	if len(req.Reqs) > MaxBatch {
		return errResp(req.ID, CodeBadRequest,
			fmt.Sprintf("batch of %d sub-commands exceeds the limit of %d", len(req.Reqs), MaxBatch))
	}
	results := make([]Response, 0, len(req.Reqs))
	for i := range req.Reqs {
		sub := &req.Reqs[i]
		if sub.Cmd == "batch" {
			results = append(results, *errResp(sub.ID, CodeBadRequest, "batch cannot be nested"))
			continue
		}
		results = append(results, *s.Handle(sub))
	}
	return &Response{ID: req.ID, OK: true, Results: results}
}

// configOf resolves a wire ConfigSpec to a pipeline Config.
func configOf(spec *ConfigSpec) (compile.Config, error) {
	cfg := compile.Config{Opt: opt.O2(), RegAlloc: true, Sched: true}
	if spec == nil {
		return cfg, nil
	}
	switch spec.Opt {
	case "", "O2":
	case "O1":
		cfg.Opt = opt.O1()
	case "O0":
		cfg.Opt = opt.O0()
		cfg.RegAlloc = false
		cfg.Sched = false
	default:
		return cfg, fmt.Errorf("unknown opt level %q (want O0, O1 or O2)", spec.Opt)
	}
	if spec.RegAlloc != nil {
		cfg.RegAlloc = *spec.RegAlloc
	}
	if spec.Sched != nil {
		cfg.Sched = *spec.Sched
	}
	return cfg, nil
}

func (s *Server) handleCompile(req *Request) *Response {
	name, src := req.Name, req.Src
	if req.Workload != "" {
		if src != "" {
			return errResp(req.ID, CodeBadRequest, "give src or workload, not both")
		}
		ws, err := bench.Source(req.Workload)
		if err != nil {
			return errResp(req.ID, CodeBadRequest, err.Error())
		}
		name, src = req.Workload+".mc", ws
	}
	if src == "" {
		return errResp(req.ID, CodeBadRequest, "compile needs src or workload")
	}
	if name == "" {
		name = "input.mc"
	}
	cfg, err := configOf(req.Config)
	if err != nil {
		return errResp(req.ID, CodeBadRequest, err.Error())
	}
	res, hit, err := s.cache.Compile(name, src, cfg)
	if err != nil {
		return errResp(req.ID, CodeCompileError, err.Error())
	}
	id := compile.KeyOf(name, src, cfg).ID()

	s.mu.Lock()
	art, ok := s.artifacts[id]
	if !ok {
		art = &Artifact{ID: id, Res: res, Analyses: core.NewAnalysisSet()}
		s.artifacts[id] = art
	}
	s.mu.Unlock()
	if !ok {
		// Precompute every function's analyses once with a bounded pool,
		// so sessions never pay the data-flow cost at their first stop.
		art.Analyses.Precompute(art.Res.Mach, s.opts.AnalysisWorkers)
	}
	return &Response{ID: req.ID, OK: true, Artifact: id, Cached: hit, Funcs: len(art.Res.Mach.Funcs)}
}

func (s *Server) handleOpen(req *Request) *Response {
	s.mu.Lock()
	art, ok := s.artifacts[req.Artifact]
	s.mu.Unlock()
	if !ok {
		return errResp(req.ID, CodeNoSuchArtifact, fmt.Sprintf("no artifact %q (compile first)", req.Artifact))
	}
	dbg, err := debugger.NewShared(art.Res, art.Analyses)
	if err != nil {
		return errResp(req.ID, CodeCompileError, err.Error())
	}
	dbg.VM.MaxSteps = s.opts.StepBudget

	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		return errResp(req.ID, CodeSessionLimit,
			fmt.Sprintf("session limit reached (%d open)", s.opts.MaxSessions))
	}
	s.nextSess++
	sess := &session{id: fmt.Sprintf("s%d", s.nextSess), art: art, dbg: dbg}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.sessionsOpened.Add(1)
	return &Response{ID: req.ID, OK: true, Session: sess.id, Artifact: art.ID}
}

func (s *Server) handleSession(req *Request) *Response {
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	s.mu.Unlock()
	if !ok {
		return errResp(req.ID, CodeNoSuchSession, fmt.Sprintf("no session %q", req.Session))
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()

	switch req.Cmd {
	case "break":
		var bp *debugger.Breakpoint
		var err error
		switch {
		case req.Func != "" && req.Stmt != nil:
			bp, err = sess.dbg.BreakAtStmt(req.Func, *req.Stmt)
		case req.Line > 0:
			bp, err = sess.dbg.BreakAtLine(req.Line)
		default:
			return errResp(req.ID, CodeBadRequest, "break needs line or func+stmt")
		}
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		return &Response{ID: req.ID, OK: true, Stop: stopOf(bp)}

	case "continue", "step":
		run := sess.dbg.Continue
		if req.Cmd == "step" {
			run = sess.dbg.Step
		}
		bp, err := run()
		s.creditCycles(sess)
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		if bp == nil {
			return &Response{ID: req.ID, OK: true, Exited: true, Output: sess.dbg.Output()}
		}
		return &Response{ID: req.ID, OK: true, Stop: stopOf(bp)}

	case "print":
		if req.Var == "" {
			return errResp(req.ID, CodeBadRequest, "print needs var")
		}
		r, err := sess.dbg.Print(req.Var)
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		return &Response{ID: req.ID, OK: true, Vars: []VarInfo{varOf(r)}}

	case "info":
		rs, err := sess.dbg.Info()
		if err != nil {
			return s.errorOf(req.ID, err)
		}
		vars := make([]VarInfo, 0, len(rs))
		for _, r := range rs {
			vars = append(vars, varOf(r))
		}
		return &Response{ID: req.ID, OK: true, Vars: vars}

	case "where":
		if bp := sess.dbg.Stopped(); bp != nil {
			return &Response{ID: req.ID, OK: true, Stop: stopOf(bp)}
		}
		return &Response{ID: req.ID, OK: true, Exited: sess.dbg.Halted()}

	case "close":
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
		return &Response{ID: req.ID, OK: true, Output: sess.dbg.Output()}
	}
	return errResp(req.ID, CodeBadRequest, fmt.Sprintf("unknown command %q", req.Cmd))
}

// creditCycles folds the session VM's cycle progress into the service
// metric. Called with sess.mu held.
func (s *Server) creditCycles(sess *session) {
	now := sess.dbg.VM.Cycles
	s.cyclesExecuted.Add(now - sess.cycles)
	sess.cycles = now
}

func stopOf(bp *debugger.Breakpoint) *StopInfo {
	return &StopInfo{Func: bp.Fn.Name, Stmt: bp.Stmt, Line: bp.Line}
}

func varOf(r *debugger.VarReport) VarInfo {
	return VarInfo{Name: r.Name, State: r.Class.State.String(), Display: r.Display()}
}

// errorOf maps a session error to its stable protocol code.
func (s *Server) errorOf(id int64, err error) *Response {
	code := CodeInternal
	switch {
	case errors.Is(err, debugger.ErrNoSuchLine):
		code = CodeNoSuchLine
	case errors.Is(err, debugger.ErrNoSuchFunc):
		code = CodeNoSuchFunc
	case errors.Is(err, debugger.ErrNoStmtLoc):
		code = CodeNoStmtLoc
	case errors.Is(err, debugger.ErrNotStopped):
		code = CodeNotStopped
	case errors.Is(err, debugger.ErrNoSuchVar):
		code = CodeNoSuchVar
	case errors.Is(err, vm.ErrStepLimit):
		code = CodeBudget
	}
	return errResp(id, code, err.Error())
}

func errResp(id int64, code, msg string) *Response {
	return &Response{ID: id, OK: false, Error: &ProtoError{Code: code, Message: msg}}
}

// Snapshot returns the current metrics.
func (s *Server) Snapshot() Stats {
	cs := s.cache.Stats()
	s.mu.Lock()
	active := int64(len(s.sessions))
	var built int64
	for _, a := range s.artifacts {
		built += a.Analyses.Built()
	}
	s.mu.Unlock()
	return Stats{
		SessionsActive: active,
		SessionsOpened: s.sessionsOpened.Load(),
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,
		CacheEvictions: cs.Evictions,
		CacheEntries:   cs.Entries,
		AnalysesBuilt:  built,
		CyclesExecuted: s.cyclesExecuted.Load(),
		Requests:       s.requests.Load(),
		Panics:         s.panics.Load(),
	}
}
