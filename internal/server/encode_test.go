package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// fullStats populates every Stats field with a distinct value so a
// swapped or missing field in appendStats cannot cancel out.
func fullStats() *Stats {
	return &Stats{
		SessionsActive: 1, SessionsDetached: 2, SessionsOpened: 3, SessionsReaped: 4,
		ConnsActive: 5, ConnsTotal: 6, AuthFailures: 7,
		CacheHits: 8, CacheMisses: 9, CacheEvictions: 10, CacheEntries: 11,
		CacheMemoryBytes: 12, CacheMemoryBudget: 13, CacheShards: 14, AnalysisBytes: 15,
		SpillHits: 16, SpillMisses: 17, SpillWrites: 18, SpillErrors: 19,
		SpillDegraded: true, SpillDegradations: 20, SpillProbes: 21, FlushErrors: 22,
		AnalysesBuilt: 23, CyclesExecuted: -24, Requests: 25, Panics: 26, Timeouts: 27,
		OutputLimits: 28, SROASplits: 41, FieldsClassified: 42,
		VMFastRuns: 29, VMSlowRuns: 30,
		CompileWorkers: 31, FuncsCompiled: 32, FuncsReused: 33, CompileMSTotal: 34,
		FuncCacheEntries: 35, FuncCacheBytes: 36, FuncCacheEvictions: 37,
		CoverageSweeps: 38, CoveragePairs: 39,
	}
}

func encodeCorpus() []*Response {
	return []*Response{
		{},
		{OK: true},
		{ID: 1, OK: true},
		{ID: -7, OK: false, Error: &ProtoError{Code: CodeBadRequest, Message: "bad \"thing\""}},
		{ID: 2, OK: true, Artifact: "sha:abc", Cached: true, Funcs: 12,
			FuncsCompiled: 7, FuncsReused: 5, CompileMS: 31},
		{OK: true, Session: "s-01", Handle: "h\u00e9llo"},
		{OK: true, Stop: &StopInfo{Func: "main", Stmt: 0, Line: -1}},
		{OK: true, Exited: true, Output: "1\n2\n3\n"},
		{OK: true, Vars: []VarInfo{
			{Name: "i", State: "current", Display: "i = 4"},
			{Name: "", State: "", Display: ""},
		}},
		{OK: true, Vars: []VarInfo{}}, // empty non-nil slice: omitempty drops it
		// Struct aggregate with nested per-field reports (one level, plus a
		// deeper nesting to exercise the recursion).
		{OK: true, Vars: []VarInfo{
			{Name: "p", State: "noncurrent", Display: `p = {x = 1, y = 2}`, Fields: []VarInfo{
				{Name: "p.x", State: "current", Display: "p.x = 1"},
				{Name: "p.y", State: "noncurrent", Display: "p.y = 2 (WARNING)",
					Fields: []VarInfo{{Name: "deep", State: "current", Display: "deep = 0"}}},
			}},
		}},
		{OK: true, Stats: &Stats{}},
		{OK: true, Stats: fullStats()},
		{OK: true, Coverage: &CoverageInfo{}},
		{OK: true, Artifact: "sha:cov", Coverage: &CoverageInfo{
			CoverageCounts: CoverageCounts{Pairs: 120, Current: 40, Recovered: 50,
				Noncurrent: 20, Suspect: 5, Nonresident: 15, Uninit: 10,
				CurrentPct: "36.36", RecoveredPct: "45.45", NoncurrentPct: "18.18"},
			Funcs: []FuncCoverageInfo{
				{Func: "main", CoverageCounts: CoverageCounts{Pairs: 100, Current: 40,
					CurrentPct: "40.00", RecoveredPct: "0.00", NoncurrentPct: "0.00"}},
				{Func: "h\"0", CoverageCounts: CoverageCounts{Pairs: 20, Uninit: 20,
					CurrentPct: "0.00", RecoveredPct: "0.00", NoncurrentPct: "0.00"}},
			},
		}},
		{ID: 9, OK: true, Results: []Response{
			{ID: 10, OK: true, Stop: &StopInfo{Func: "f", Stmt: 3, Line: 14}},
			{ID: 11, OK: false, Error: &ProtoError{Code: CodeNoSuchVar, Message: "no var <x> & \"y\""}},
			{ID: 12, OK: true, Results: nil},
		}},
		// String escaping: HTML-escaped runes, control bytes, quotes and
		// backslashes, multibyte UTF-8, invalid UTF-8, U+2028/U+2029, DEL
		// (which encoding/json does NOT escape).
		{OK: true, Output: "<script>&amp;</script>"},
		{OK: true, Output: "tab\there\nnl\rcr\x00nul\x1fus\x7fdel"},
		{OK: true, Output: `back\slash "quote"`},
		{OK: true, Output: "\u00fc\u4e16\u754c\U0001f600"},
		{OK: true, Output: "bad\xff\xfebytes\xc3truncated"},
		{OK: true, Output: "line\u2028sep\u2029para"},
		{OK: true, Output: strings.Repeat("x", 3000)},
	}
}

// TestAppendResponseGolden holds the append encoder byte-identical to
// encoding/json over a corpus exercising every Response field and the
// escaping edge cases.
func TestAppendResponseGolden(t *testing.T) {
	for i, r := range encodeCorpus() {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("case %d: json.Marshal: %v", i, err)
		}
		got := appendResponse(nil, r)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: encoding mismatch\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestAppendStringRandom fuzzes appendString against encoding/json with
// random byte strings (often invalid UTF-8) and random rune strings.
func TestAppendStringRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		var s string
		if i%2 == 0 {
			b := make([]byte, rng.Intn(64))
			rng.Read(b)
			s = string(b)
		} else {
			runes := make([]rune, rng.Intn(32))
			for j := range runes {
				switch rng.Intn(4) {
				case 0:
					runes[j] = rune(rng.Intn(0x80)) // ASCII incl. controls
				case 1:
					runes[j] = rune(0x2020 + rng.Intn(16)) // around U+2028/29
				case 2:
					runes[j] = rune(rng.Intn(0x3000))
				default:
					runes[j] = rune(0x10000 + rng.Intn(0x1000))
				}
			}
			s = string(runes)
		}
		want, err := json.Marshal(&Response{OK: true, Output: s})
		if err != nil {
			t.Fatalf("json.Marshal(%q): %v", s, err)
		}
		got := appendResponse(nil, &Response{OK: true, Output: s})
		if !bytes.Equal(got, want) {
			t.Fatalf("string %q:\n got: %s\nwant: %s", s, got, want)
		}
	}
}

// TestServeEncodingModes runs the same scripted connection under the
// append encoder and under LegacyJSONEncoding and requires the wire
// bytes to be identical.
func TestServeEncodingModes(t *testing.T) {
	script := strings.Join([]string{
		`{"id":1,"cmd":"compile","name":"p","src":"int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } print s; return s; }"}`,
		`{"id":2,"cmd":"stats"}`,
		`{"id":3,"cmd":"nope"}`,
		`{"id":4,"cmd":"batch","reqs":[{"id":5,"cmd":"stats"},{"id":6,"cmd":"nope"}]}`,
	}, "\n") + "\n"

	run := func(legacy bool) string {
		s := New(Options{})
		defer s.Close()
		LegacyJSONEncoding.Store(legacy)
		defer LegacyJSONEncoding.Store(false)
		var out bytes.Buffer
		if err := s.Serve(strings.NewReader(script), &out); err != nil {
			t.Fatalf("Serve(legacy=%v): %v", legacy, err)
		}
		return out.String()
	}

	fast := run(false)
	legacy := run(true)
	// Stats lines carry live counters (requests, vm runs...) that differ
	// between the two runs; compare structure line by line, and bytes on
	// the stats-free lines.
	fl, ll := strings.Split(fast, "\n"), strings.Split(legacy, "\n")
	if len(fl) != len(ll) {
		t.Fatalf("line count differs: %d vs %d\nfast: %q\nlegacy: %q", len(fl), len(ll), fast, legacy)
	}
	for i := range fl {
		if strings.Contains(fl[i], `"stats"`) {
			continue
		}
		if fl[i] != ll[i] {
			t.Errorf("line %d differs\n  fast: %s\nlegacy: %s", i, fl[i], ll[i])
		}
	}
	// And every fast-path line must itself re-marshal identically: decode
	// then json.Marshal must reproduce the exact wire bytes.
	for i, line := range fl {
		if line == "" {
			continue
		}
		var r Response
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i, err, line)
		}
	}
}

func BenchmarkEncodeResponse(b *testing.B) {
	resp := &Response{ID: 42, OK: true,
		Stop:   &StopInfo{Func: "inner_loop", Stmt: 7, Line: 123},
		Output: "checkpoint 100000\n"}
	b.Run("stdlib", func(b *testing.B) {
		b.ReportAllocs()
		var sink bytes.Buffer
		for i := 0; i < b.N; i++ {
			sink.Reset()
			if err := json.NewEncoder(&sink).Encode(resp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		var sink bytes.Buffer
		for i := 0; i < b.N; i++ {
			sink.Reset()
			if err := writeResponse(&sink, resp); err != nil {
				b.Fatal(err)
			}
		}
	})
}
