package bench

import (
	"testing"
)

// TestTable2Stats checks the program statistics are in sane ranges.
func TestTable2Stats(t *testing.T) {
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Lines < 50 {
			t.Errorf("%s: only %d lines", r.Program, r.Lines)
		}
		if r.Breakpoints < 30 {
			t.Errorf("%s: only %d breakpoints", r.Program, r.Breakpoints)
		}
		if r.PerFunction < 2 {
			t.Errorf("%s: %f breakpoints per function", r.Program, r.PerFunction)
		}
		if r.VarsPerBreak < 1 {
			t.Errorf("%s: %f vars per breakpoint", r.Program, r.VarsPerBreak)
		}
	}
	t.Logf("\n%s", RenderTable2(rows))
}

// TestTable3OptimizerWins checks every workload speeds up under O2 —
// the analog of the paper's "cmcc produces code of competitive quality".
func TestTable3OptimizerWins(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup < 1.05 {
			t.Errorf("%s: optimizer speedup only %.2fx (O0=%d O2=%d)",
				r.Program, r.Speedup, r.CyclesO0, r.CyclesO2)
		}
	}
	t.Logf("\n%s", RenderTable3(rows))
}

// TestFigure5aShape checks the paper's headline result for Figure 5(a):
// without register allocation there are NO nonresident variables, and a
// visible fraction (the paper reports roughly 10–30%) of in-scope locals
// is endangered at the average breakpoint.
func TestFigure5aShape(t *testing.T) {
	rows, err := Figure5a()
	if err != nil {
		t.Fatal(err)
	}
	anyEndangered := 0
	for _, r := range rows {
		if r.Nonresident != 0 {
			t.Errorf("%s: nonresident=%.2f without register allocation", r.Program, r.Nonresident)
		}
		total := r.Uninitialized + r.Current + r.Endangered
		if total == 0 {
			t.Errorf("%s: no variables classified", r.Program)
			continue
		}
		frac := r.Endangered / total
		if frac > 0 {
			anyEndangered++
		}
		if frac > 0.6 {
			t.Errorf("%s: %.0f%% endangered seems too high", r.Program, 100*frac)
		}
		t.Logf("%-10s endangered fraction %.1f%% (uninit=%.2f cur=%.2f end=%.2f rec=%.2f)",
			r.Program, 100*frac, r.Uninitialized, r.Current, r.Endangered, r.Recovered)
	}
	if anyEndangered < 6 {
		t.Errorf("only %d/8 programs show endangered variables; optimizer bookkeeping looks broken", anyEndangered)
	}
}

// TestFigure5bShape checks the paper's headline result for Figure 5(b):
// with register allocation the dominant problem becomes nonresidence,
// endangered counts collapse relative to nonresident ones, and
// current+uninitialized remains a large fraction.
func TestFigure5bShape(t *testing.T) {
	rows, err := Figure5b()
	if err != nil {
		t.Fatal(err)
	}
	progsNonresDominates := 0
	for _, r := range rows {
		if r.Nonresident > r.Endangered {
			progsNonresDominates++
		}
		t.Logf("%-10s uninit=%.2f cur=%.2f end=%.2f nonres=%.2f rec=%.2f",
			r.Program, r.Uninitialized, r.Current, r.Endangered, r.Nonresident, r.Recovered)
	}
	if progsNonresDominates < 6 {
		t.Errorf("nonresident should dominate endangered on most programs with regalloc; got %d/8",
			progsNonresDominates)
	}
}

// TestTable4Shape checks that the majority of endangered variables are
// noncurrent rather than suspect, as the paper's Table 4 reports.
func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports suspects as the minority of endangered variables;
	// individual programs vary (loop-dominated programs skew suspect), so
	// require the majority-noncurrent property for most of the suite.
	majNoncurrent := 0
	for _, r := range rows {
		if r.PctSuspect < 60 {
			majNoncurrent++
		}
	}
	if majNoncurrent < 6 {
		t.Errorf("only %d/8 programs have majority-noncurrent endangered variables", majNoncurrent)
	}
	t.Logf("\n%s", RenderTable4(rows))
}
