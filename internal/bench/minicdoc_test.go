package bench

// Verifies the example program in docs/MINIC.md actually compiles and runs.
import (
	"strings"
	"testing"

	"repro/internal/compile"
)

const minicDocExample = `
int count;

float dot(float a[], float b[], int n) {
	float s = 0.0;
	for (int i = 0; i < n; i++) {
		float term = a[i] * b[i];
		s = s + term;
		if (term > 10.0) { count++; }
	}
	return s;
}

int main() {
	float x[8];
	float y[8];
	for (int i = 0; i < 8; i++) {
		x[i] = float(i) * 0.5;
		y[i] = float(8 - i);
	}
	print("dot=", dot(x, y, 8), " big_terms=", count, "\n");
	return count;
}
`

func TestMinicDocExample(t *testing.T) {
	for _, cfg := range []compile.Config{compile.O0(), compile.O2()} {
		res, err := compile.Compile("doc.mc", minicDocExample, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := RunWorkload(res)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(m.Output(), "dot=") {
			t.Errorf("output: %q", m.Output())
		}
	}
}
