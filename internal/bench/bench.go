// Package bench holds the evaluation harness: the eight MiniC workloads
// standing in for the SPEC92 C programs of the paper, and the collectors
// that regenerate every table and figure of the paper's evaluation section
// (Tables 2–4, Figures 5(a) and 5(b)).
package bench

import (
	"embed"
	"fmt"
	"sort"
	"strings"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/vm"
)

//go:embed testdata/*.mc
var workloadFS embed.FS

// Names lists the workloads in the paper's Table 2 order.
var Names = []string{"li", "eqntott", "espresso", "gcc", "alvinn", "compress", "ear", "sc"}

// Source returns the MiniC source of a workload.
func Source(name string) (string, error) {
	b, err := workloadFS.ReadFile("testdata/" + name + ".mc")
	if err != nil {
		return "", fmt.Errorf("bench: unknown workload %q: %w", name, err)
	}
	return string(b), nil
}

// MustSource is Source for callers that know the name is valid.
func MustSource(name string) string {
	s, err := Source(name)
	if err != nil {
		panic(err)
	}
	return s
}

// CompileWorkload compiles one workload under the given configuration.
func CompileWorkload(name string, cfg compile.Config) (*compile.Result, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	res, err := compile.Compile(name+".mc", src, cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: compiling %s: %w", name, err)
	}
	return res, nil
}

// RunWorkload executes a compiled workload on the simulator and returns
// the VM for inspection (output, cycles).
func RunWorkload(res *compile.Result) (*vm.VM, error) {
	m, err := vm.New(res.Mach)
	if err != nil {
		return nil, err
	}
	if err := m.Run(); err != nil {
		return nil, err
	}
	return m, nil
}

// ---------------------------------------------------------------- table 2

// Table2Row mirrors the paper's Table 2: program sizes and statistics
// relevant to source-level debugging.
type Table2Row struct {
	Program      string
	Lines        int
	Breakpoints  int     // total source breakpoints (statements)
	PerFunction  float64 // average breakpoints per function
	VarsPerBreak float64 // average locals in scope per breakpoint
	Functions    int
}

// Table2 computes program statistics (independent of optimization level —
// they are source properties, computed on an O0 compile).
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, name := range Names {
		res, err := CompileWorkload(name, compile.O0())
		if err != nil {
			return nil, err
		}
		row := Table2Row{Program: name}
		row.Lines = res.File.NumLines()
		totalVars := 0
		totalBPs := 0
		for _, f := range res.Mach.Funcs {
			row.Functions++
			a := core.Analyze(f)
			for s := 0; s < f.Decl.NumStmts; s++ {
				if _, ok := a.Table.LocOf(s); !ok {
					continue
				}
				totalBPs++
				totalVars += len(a.Table.VarsInScope(s))
			}
		}
		row.Breakpoints = totalBPs
		if row.Functions > 0 {
			row.PerFunction = float64(totalBPs) / float64(row.Functions)
		}
		if totalBPs > 0 {
			row.VarsPerBreak = float64(totalVars) / float64(totalBPs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------- table 3

// Table3Row is the performance analog of the paper's Table 3. The paper
// compared cmcc's optimized code against gcc and the MIPS cc; without
// those compilers we report the quality of the optimizer itself: simulator
// cycles for unoptimized vs. fully optimized code.
type Table3Row struct {
	Program  string
	CyclesO0 int64
	CyclesO2 int64
	Speedup  float64 // O0 / O2; > 1 means the optimizer helps
}

// Table3 measures optimized against unoptimized cycle counts.
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range Names {
		row := Table3Row{Program: name}

		res0, err := CompileWorkload(name, compile.O0())
		if err != nil {
			return nil, err
		}
		m0, err := RunWorkload(res0)
		if err != nil {
			return nil, fmt.Errorf("%s at O0: %w", name, err)
		}
		row.CyclesO0 = m0.Cycles

		res2, err := CompileWorkload(name, compile.O2())
		if err != nil {
			return nil, err
		}
		m2, err := RunWorkload(res2)
		if err != nil {
			return nil, fmt.Errorf("%s at O2: %w", name, err)
		}
		row.CyclesO2 = m2.Cycles

		if out0, out2 := m0.Output(), m2.Output(); out0 != out2 {
			return nil, fmt.Errorf("%s: optimized output differs:\nO0: %s\nO2: %s", name, out0, out2)
		}
		if row.CyclesO2 > 0 {
			row.Speedup = float64(row.CyclesO0) / float64(row.CyclesO2)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------- ablation

// PassAblationRow reports the cycle cost of disabling one optimization
// from the full O2 pipeline, summed over all workloads.
type PassAblationRow struct {
	Pass        string
	TotalCycles int64
	// SlowdownPct is the percentage increase over full O2.
	SlowdownPct float64
}

// PassAblation measures each pass's contribution to the optimizer by
// disabling it from the O2 pipeline and re-running every workload.
func PassAblation() ([]PassAblationRow, error) {
	type variant struct {
		name string
		mod  func(*opt.Options)
	}
	variants := []variant{
		{"full O2", func(o *opt.Options) {}},
		{"-constfold/prop", func(o *opt.Options) { o.ConstFold = false; o.ConstProp = false }},
		{"-copy/assignprop", func(o *opt.Options) { o.CopyProp = false; o.AssignProp = false }},
		{"-pre", func(o *opt.Options) { o.PRE = false }},
		{"-licm", func(o *opt.Options) { o.LICM = false }},
		{"-pdce", func(o *opt.Options) { o.PDCE = false }},
		{"-dce", func(o *opt.Options) { o.DCE = false }},
		{"-strength", func(o *opt.Options) { o.Strength = false }},
		{"-unroll", func(o *opt.Options) { o.Unroll = false }},
		{"-loopinvert", func(o *opt.Options) { o.LoopInvert = false }},
		{"-branchopt", func(o *opt.Options) { o.BranchOpt = false }},
	}
	// Reference outputs for correctness checking.
	want := map[string]string{}
	for _, name := range Names {
		res, err := CompileWorkload(name, compile.O0())
		if err != nil {
			return nil, err
		}
		m, err := RunWorkload(res)
		if err != nil {
			return nil, err
		}
		want[name] = m.Output()
	}

	var rows []PassAblationRow
	var baseline int64
	for vi, v := range variants {
		o := opt.O2()
		v.mod(&o)
		cfg := compile.Config{Opt: o, RegAlloc: true, Sched: true}
		var total int64
		for _, name := range Names {
			res, err := CompileWorkload(name, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s with %s: %w", name, v.name, err)
			}
			m, err := RunWorkload(res)
			if err != nil {
				return nil, fmt.Errorf("%s with %s: %w", name, v.name, err)
			}
			if m.Output() != want[name] {
				return nil, fmt.Errorf("%s with %s: output differs from O0", name, v.name)
			}
			total += m.Cycles
		}
		row := PassAblationRow{Pass: v.name, TotalCycles: total}
		if vi == 0 {
			baseline = total
		} else if baseline > 0 {
			row.SlowdownPct = 100 * (float64(total)/float64(baseline) - 1)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderPassAblation formats the per-pass ablation.
func RenderPassAblation(rows []PassAblationRow) string {
	var b strings.Builder
	b.WriteString("Pass ablation: total workload cycles with one optimization disabled.\n")
	fmt.Fprintf(&b, "%-18s %16s %10s\n", "Variant", "total cycles", "slowdown")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %16d %+9.1f%%\n", r.Pass, r.TotalCycles, r.SlowdownPct)
	}
	return b.String()
}

// ---------------------------------------------------------------- fig 5 / table 4

// Fig5Row holds the average number of local variables per breakpoint in
// each classification category — one bar group of Figure 5.
type Fig5Row struct {
	Program       string
	Uninitialized float64
	Current       float64
	Endangered    float64
	Nonresident   float64
	// Breakdown of the endangered bar (Table 4 needs the suspect share).
	Noncurrent float64
	Suspect    float64
	// Recovered counts variables whose expected value the debugger
	// reconstructs (displayed with the recovered value), broken down by
	// recovery mechanism (§2.5: alias in a temporary, recorded constant,
	// linear reconstruction of a strength-reduced induction variable).
	Recovered   float64
	RecAlias    float64
	RecConst    float64
	RecLinear   float64
	Breakpoints int
}

// ClassifyProgram computes the Figure 5 statistics for one workload under
// cfg: for every possible source breakpoint, every in-scope local is
// classified and the counts are averaged over breakpoints, exactly as the
// paper's instrumentation does.
func ClassifyProgram(name string, cfg compile.Config) (Fig5Row, error) {
	res, err := CompileWorkload(name, cfg)
	if err != nil {
		return Fig5Row{}, err
	}
	row := Fig5Row{Program: name}
	var uninit, cur, noncur, susp, nonres, recov, bps int
	var recAlias, recConst, recLinear int
	for _, f := range res.Mach.Funcs {
		a := core.Analyze(f)
		for s := 0; s < f.Decl.NumStmts; s++ {
			cs, ok := a.ClassifyAllAt(s)
			if !ok {
				continue
			}
			bps++
			for _, c := range cs {
				if c.Recovered != nil {
					recov++
					switch c.Recovered.Kind {
					case core.RecoverAlias:
						recAlias++
					case core.RecoverConst:
						recConst++
					case core.RecoverLinear:
						recLinear++
					}
				}
				switch c.State {
				case core.Uninitialized:
					uninit++
				case core.Current:
					cur++
				case core.Noncurrent:
					noncur++
				case core.Suspect:
					susp++
				case core.Nonresident:
					nonres++
				}
			}
		}
	}
	row.Breakpoints = bps
	if bps > 0 {
		n := float64(bps)
		row.Uninitialized = float64(uninit) / n
		row.Current = float64(cur) / n
		row.Noncurrent = float64(noncur) / n
		row.Suspect = float64(susp) / n
		row.Endangered = float64(noncur+susp) / n
		row.Nonresident = float64(nonres) / n
		row.Recovered = float64(recov) / n
		row.RecAlias = float64(recAlias) / n
		row.RecConst = float64(recConst) / n
		row.RecLinear = float64(recLinear) / n
	}
	return row, nil
}

// RenderRecovery formats the recovery-mechanism breakdown (extension).
func RenderRecovery(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Recovery breakdown (§2.5, avg recovered variables per breakpoint by mechanism):\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %8s\n", "Program", "total", "alias", "const", "linear")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.2f %8.2f %8.2f %8.2f\n",
			r.Program, r.Recovered, r.RecAlias, r.RecConst, r.RecLinear)
	}
	return b.String()
}

// Figure5a runs the paper's Figure 5(a) configuration: global
// optimizations only, no register allocation.
func Figure5a() ([]Fig5Row, error) { return figure5(compile.O2NoRegAlloc()) }

// Figure5b runs the paper's Figure 5(b) configuration: global
// optimizations plus graph-coloring register allocation.
func Figure5b() ([]Fig5Row, error) {
	cfg := compile.O2NoRegAlloc()
	cfg.RegAlloc = true
	return figure5(cfg)
}

func figure5(cfg compile.Config) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, name := range Names {
		row, err := ClassifyProgram(name, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CauseRow breaks endangered variables down by optimization cause — the
// paper reports that "code hoisting did not affect source-level debugging
// for these programs" and that elimination/sinking dominates; scheduling
// endangerment is the companion paper's contribution.
type CauseRow struct {
	Program    string
	ByHoist    float64 // endangered by code hoisting, per breakpoint
	ByDCE      float64 // endangered by dead code elimination / sinking
	BySched    float64 // endangered by instruction scheduling
	Breakpoint int
}

// CauseBreakdown classifies all workloads under full optimization
// (including scheduling) and attributes every endangered verdict to its
// cause.
func CauseBreakdown() ([]CauseRow, error) {
	cfg := compile.O2()
	var rows []CauseRow
	for _, name := range Names {
		res, err := CompileWorkload(name, cfg)
		if err != nil {
			return nil, err
		}
		row := CauseRow{Program: name}
		var hoist, dce, sched, bps int
		for _, f := range res.Mach.Funcs {
			a := core.Analyze(f)
			for s := 0; s < f.Decl.NumStmts; s++ {
				cs, ok := a.ClassifyAllAt(s)
				if !ok {
					continue
				}
				bps++
				for _, c := range cs {
					if c.State != core.Noncurrent && c.State != core.Suspect {
						continue
					}
					switch c.Cause {
					case core.ByHoisting:
						hoist++
					case core.ByDeadCodeElim:
						dce++
					case core.ByScheduling:
						sched++
					}
				}
			}
		}
		row.Breakpoint = bps
		if bps > 0 {
			n := float64(bps)
			row.ByHoist = float64(hoist) / n
			row.ByDCE = float64(dce) / n
			row.BySched = float64(sched) / n
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCauses formats the cause breakdown.
func RenderCauses(rows []CauseRow) string {
	var b strings.Builder
	b.WriteString("Endangerment causes under full optimization (avg per breakpoint):\n")
	fmt.Fprintf(&b, "%-10s %10s %12s %12s\n", "Program", "hoisting", "dce/sinking", "scheduling")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.3f %12.3f %12.3f\n", r.Program, r.ByHoist, r.ByDCE, r.BySched)
	}
	return b.String()
}

// Table4Row is the paper's Table 4: the percentage of endangered variables
// that are suspect (in the Figure 5(a) configuration).
type Table4Row struct {
	Program    string
	PctSuspect float64
}

// Table4 derives the suspect percentages from the Figure 5(a) data.
func Table4() ([]Table4Row, error) {
	rows5, err := Figure5a()
	if err != nil {
		return nil, err
	}
	var out []Table4Row
	for _, r := range rows5 {
		pct := 0.0
		if r.Endangered > 0 {
			pct = 100 * r.Suspect / r.Endangered
		}
		out = append(out, Table4Row{Program: r.Program, PctSuspect: pct})
	}
	return out, nil
}

// ---------------------------------------------------------------- render

// RenderTable2 formats Table 2 like the paper.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: Programs used in this study.\n")
	fmt.Fprintf(&b, "%-10s %8s %12s %14s %14s\n",
		"Program", "Lines", "Breakpoints", "Bkpts/func", "Vars/bkpt")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8d %12d %14.1f %14.1f\n",
			r.Program, r.Lines, r.Breakpoints, r.PerFunction, r.VarsPerBreak)
	}
	return b.String()
}

// RenderTable3 formats the Table 3 analog.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3 (analog): cycles of unoptimized vs optimized code on the simulator.\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %9s\n", "Program", "O0 cycles", "O2 cycles", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14d %14d %8.2fx\n", r.Program, r.CyclesO0, r.CyclesO2, r.Speedup)
	}
	return b.String()
}

// RenderTable4 formats Table 4 like the paper.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: Percentage of endangered variables that are suspect (global opts, no regalloc).\n")
	fmt.Fprintf(&b, "%-10s %10s\n", "Program", "% Suspect")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9.1f%%\n", r.Program, r.PctSuspect)
	}
	return b.String()
}

// RenderFigure5 formats one Figure 5 chart as text bars.
func RenderFigure5(title string, rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %11s %12s %10s  (%s)\n",
		"Program", "uninit", "current", "endangered", "nonresident", "recovered", "avg per breakpoint")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.2f %8.2f %11.2f %12.2f %10.2f\n",
			r.Program, r.Uninitialized, r.Current, r.Endangered, r.Nonresident, r.Recovered)
	}
	b.WriteString("\nbars (one █ per 0.5 variables):\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s U%s C%s E%s N%s\n", r.Program,
			bar(r.Uninitialized), bar(r.Current), bar(r.Endangered), bar(r.Nonresident))
	}
	return b.String()
}

func bar(v float64) string {
	n := int(v*2 + 0.5)
	if n > 40 {
		n = 40
	}
	return "[" + strings.Repeat("█", n) + strings.Repeat(" ", 0) + "]"
}

// SortedCopy returns rows sorted by program name (stable rendering for
// golden tests).
func SortedCopy[T any](rows []T, name func(T) string) []T {
	out := append([]T(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return name(out[i]) < name(out[j]) })
	return out
}
