package bench

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
)

// classifyDump renders every classification of every variable at every
// breakpoint of every function to a canonical string, so classifier output
// can be compared across independently compiled (and differently
// object-identified) results.
func classifyDump(res *compile.Result) string {
	var sb strings.Builder
	for _, f := range res.Mach.Funcs {
		a := core.Analyze(f)
		fmt.Fprintf(&sb, "func %s\n", f.Name)
		for s := 0; s < f.Decl.NumStmts; s++ {
			cs, ok := a.ClassifyAllAt(s)
			if !ok {
				continue
			}
			for _, c := range cs {
				fmt.Fprintf(&sb, "  s%d %s state=%d cause=%d why=%q src=%v",
					s, c.Var.Name, c.State, c.Cause, c.Why, c.SrcStmts)
				if r := c.Recovered; r != nil {
					fmt.Fprintf(&sb, " rec={k=%d reg=%v c=%d cf=%g isf=%t a=%d b=%d}",
						r.Kind, r.Reg, r.C, r.CF, r.IsF, r.A, r.B)
				}
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}

// TestParallelIncrementalClassifierEquivalence is the full differential:
// across all 8 workloads × 3 configurations, the parallel pipeline and the
// incremental (warm cache, fully stitched) pipeline must produce machine
// programs byte-identical to the serial driver AND identical ClassifyAll
// verdicts for every variable at every breakpoint.
func TestParallelIncrementalClassifierEquivalence(t *testing.T) {
	configs := map[string]compile.Config{
		"O2":           compile.O2(),
		"O2NoRegAlloc": compile.O2NoRegAlloc(),
		"O0":           compile.O0(),
	}
	for cfgName, cfg := range configs {
		par := compile.NewPipeline(compile.PipelineConfig{Workers: 8})
		inc := compile.NewPipeline(compile.PipelineConfig{
			Workers: 8,
			Funcs:   compile.NewFuncCache(compile.FuncCacheConfig{Shards: 4}),
		})
		for _, name := range Names {
			src := MustSource(name)
			serial, err := compile.Compile(name, src, cfg)
			if err != nil {
				t.Fatalf("%s/%s: serial: %v", name, cfgName, err)
			}
			wantMach := sha256.Sum256([]byte(serial.Mach.String()))
			wantClassify := classifyDump(serial)

			check := func(kind string, res *compile.Result) {
				if sha256.Sum256([]byte(res.Mach.String())) != wantMach {
					t.Errorf("%s/%s: %s machine code differs from serial", name, cfgName, kind)
					return
				}
				if got := classifyDump(res); got != wantClassify {
					t.Errorf("%s/%s: %s ClassifyAll output differs from serial", name, cfgName, kind)
				}
			}

			pres, _, err := par.Compile(name, src, cfg)
			if err != nil {
				t.Fatalf("%s/%s: parallel: %v", name, cfgName, err)
			}
			check("parallel", pres)

			if _, _, err := inc.Compile(name, src, cfg); err != nil {
				t.Fatalf("%s/%s: incremental cold: %v", name, cfgName, err)
			}
			ires, m, err := inc.Compile(name, src, cfg)
			if err != nil {
				t.Fatalf("%s/%s: incremental warm: %v", name, cfgName, err)
			}
			if m.FuncsReused != m.Funcs {
				t.Errorf("%s/%s: warm incremental reused %d/%d funcs", name, cfgName, m.FuncsReused, m.Funcs)
			}
			check("incremental", ires)
		}
	}
}
