package bench

import (
	"strings"
	"testing"

	"repro/internal/compile"
)

// TestWorkloadsCompile ensures every workload passes the frontend at O0.
func TestWorkloadsCompile(t *testing.T) {
	for _, name := range Names {
		if _, err := CompileWorkload(name, compile.O0()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestWorkloadsRunO0 executes each workload unoptimized and sanity-checks
// its self-reported output.
func TestWorkloadsRunO0(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := CompileWorkload(name, compile.O0())
			if err != nil {
				t.Fatal(err)
			}
			m, err := RunWorkload(res)
			if err != nil {
				t.Fatal(err)
			}
			out := m.Output()
			if !strings.HasPrefix(out, name+":") {
				t.Errorf("output should start with %q: %q", name+":", out)
			}
			t.Logf("%s (%d cycles)", strings.TrimSpace(out), m.Cycles)
		})
	}
}

// TestWorkloadsDifferential is the compiler's torture test: every workload
// must produce identical output at O0, O2-without-regalloc, O2+regalloc,
// and O2+regalloc+scheduling.
func TestWorkloadsDifferential(t *testing.T) {
	cfgs := map[string]compile.Config{
		"O2noRA":    compile.O2NoRegAlloc(),
		"O2RA":      {Opt: compile.O2NoRegAlloc().Opt, RegAlloc: true},
		"O2RAsched": compile.O2(),
	}
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) {
			res0, err := CompileWorkload(name, compile.O0())
			if err != nil {
				t.Fatal(err)
			}
			m0, err := RunWorkload(res0)
			if err != nil {
				t.Fatal(err)
			}
			want := m0.Output()
			for cname, cfg := range cfgs {
				res, err := CompileWorkload(name, cfg)
				if err != nil {
					t.Fatalf("%s: %v", cname, err)
				}
				m, err := RunWorkload(res)
				if err != nil {
					t.Fatalf("%s: %v", cname, err)
				}
				if m.Output() != want {
					t.Errorf("%s output differs:\nO0: %s\n%s: %s", cname, want, cname, m.Output())
				}
			}
		})
	}
}

// TestWorkloadsVerifyThemselves checks the self-verifying workloads report
// success (compress round-trips, gcc does not miscompile).
func TestWorkloadsVerifyThemselves(t *testing.T) {
	res, err := CompileWorkload("compress", compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunWorkload(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m.Output(), "ok=1") {
		t.Errorf("compress round trip failed: %s", m.Output())
	}
	res, err = CompileWorkload("gcc", compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	m, err = RunWorkload(res)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(m.Output(), "MISCOMPILE") {
		t.Errorf("gcc workload self-check failed: %s", m.Output())
	}
}
