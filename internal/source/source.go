// Package source provides source files, positions, spans and diagnostics
// for the MiniC front end. Every later stage of the compiler (IR, machine
// code, debug info) refers back to source positions through this package,
// so that the debugger can present information in source terms.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a byte offset into a File, 0-based. NoPos marks a missing position.
type Pos int

// NoPos is the zero Pos, used for synthesized entities with no source origin.
const NoPos Pos = -1

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p >= 0 }

// File holds the contents of one MiniC source file and the line index
// needed to convert byte offsets to line/column pairs.
type File struct {
	Name    string
	Content string
	lines   []int // byte offset of the start of each line
}

// NewFile builds a File and its line index from raw content.
func NewFile(name, content string) *File {
	f := &File{Name: name, Content: content}
	f.lines = append(f.lines, 0)
	for i := 0; i < len(content); i++ {
		if content[i] == '\n' {
			f.lines = append(f.lines, i+1)
		}
	}
	return f
}

// NumLines returns the number of lines in the file.
func (f *File) NumLines() int { return len(f.lines) }

// Position converts a Pos to a human-readable line/column location.
func (f *File) Position(p Pos) Position {
	if !p.IsValid() || f == nil {
		return Position{Filename: "?", Line: 0, Col: 0}
	}
	i := sort.Search(len(f.lines), func(i int) bool { return f.lines[i] > int(p) }) - 1
	if i < 0 {
		i = 0
	}
	return Position{Filename: f.Name, Line: i + 1, Col: int(p) - f.lines[i] + 1}
}

// Line returns the 1-based line number of p.
func (f *File) Line(p Pos) int { return f.Position(p).Line }

// Snippet returns the source text of the given span, for diagnostics.
func (f *File) Snippet(s Span) string {
	if !s.Start.IsValid() || !s.End.IsValid() {
		return ""
	}
	a, b := int(s.Start), int(s.End)
	if a < 0 {
		a = 0
	}
	if b > len(f.Content) {
		b = len(f.Content)
	}
	if a >= b {
		return ""
	}
	return f.Content[a:b]
}

// Position is a resolved file/line/column location.
type Position struct {
	Filename string
	Line     int // 1-based
	Col      int // 1-based
}

func (p Position) String() string {
	if p.Line == 0 {
		return p.Filename + ":?"
	}
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Col)
}

// Span is a half-open [Start, End) range of source bytes.
type Span struct {
	Start, End Pos
}

// NoSpan is the span used for synthesized entities.
var NoSpan = Span{NoPos, NoPos}

// IsValid reports whether the span refers to actual source text.
func (s Span) IsValid() bool { return s.Start.IsValid() && s.End.IsValid() }

// Union returns the smallest span covering both s and t.
func (s Span) Union(t Span) Span {
	if !s.IsValid() {
		return t
	}
	if !t.IsValid() {
		return s
	}
	u := s
	if t.Start < u.Start {
		u.Start = t.Start
	}
	if t.End > u.End {
		u.End = t.End
	}
	return u
}

// Diagnostic is a single compiler error or warning tied to a position.
type Diagnostic struct {
	Pos  Pos
	Msg  string
	File *File
}

func (d Diagnostic) Error() string {
	if d.File != nil {
		return d.File.Position(d.Pos).String() + ": " + d.Msg
	}
	return d.Msg
}

// ErrorList accumulates diagnostics; it implements error.
type ErrorList struct {
	Diags []Diagnostic
}

// Add appends a formatted diagnostic.
func (l *ErrorList) Add(f *File, pos Pos, format string, args ...any) {
	l.Diags = append(l.Diags, Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...), File: f})
}

// Len returns the number of accumulated diagnostics.
func (l *ErrorList) Len() int { return len(l.Diags) }

// Err returns the list as an error, or nil if empty.
func (l *ErrorList) Err() error {
	if l == nil || len(l.Diags) == 0 {
		return nil
	}
	return l
}

func (l *ErrorList) Error() string {
	var b strings.Builder
	for i, d := range l.Diags {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.Error())
	}
	return b.String()
}
