package source

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPositionLineCol(t *testing.T) {
	f := NewFile("a.mc", "abc\ndef\n\nx")
	cases := []struct {
		pos  Pos
		line int
		col  int
	}{
		{0, 1, 1}, {2, 1, 3}, {4, 2, 1}, {6, 2, 3}, {8, 3, 1}, {9, 4, 1},
	}
	for _, c := range cases {
		p := f.Position(c.pos)
		if p.Line != c.line || p.Col != c.col {
			t.Errorf("pos %d -> %d:%d, want %d:%d", c.pos, p.Line, p.Col, c.line, c.col)
		}
	}
	if f.NumLines() != 4 {
		t.Errorf("NumLines = %d", f.NumLines())
	}
}

func TestInvalidPosition(t *testing.T) {
	f := NewFile("a.mc", "x")
	p := f.Position(NoPos)
	if p.Line != 0 || !strings.Contains(p.String(), "?") {
		t.Errorf("invalid position rendered %q", p)
	}
}

// Property: Position round-trips monotonically — later offsets never map
// to earlier lines.
func TestQuickPositionMonotonic(t *testing.T) {
	content := "line one\nline two is longer\n\nline four\nfinal"
	f := NewFile("t.mc", content)
	check := func(a, b uint8) bool {
		pa, pb := int(a)%len(content), int(b)%len(content)
		if pa > pb {
			pa, pb = pb, pa
		}
		la := f.Position(Pos(pa)).Line
		lb := f.Position(Pos(pb)).Line
		return la <= lb
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSpanUnionAndSnippet(t *testing.T) {
	f := NewFile("a.mc", "hello world")
	s1 := Span{0, 5}
	s2 := Span{6, 11}
	u := s1.Union(s2)
	if u.Start != 0 || u.End != 11 {
		t.Errorf("union = %+v", u)
	}
	if got := f.Snippet(u); got != "hello world" {
		t.Errorf("snippet = %q", got)
	}
	if got := f.Snippet(Span{6, 11}); got != "world" {
		t.Errorf("snippet = %q", got)
	}
	if NoSpan.Union(s1) != s1 {
		t.Error("union with NoSpan should return the valid span")
	}
	if f.Snippet(NoSpan) != "" {
		t.Error("snippet of NoSpan should be empty")
	}
}

func TestErrorList(t *testing.T) {
	f := NewFile("a.mc", "ab\ncd")
	var errs ErrorList
	if errs.Err() != nil {
		t.Error("empty list should be nil error")
	}
	errs.Add(f, 3, "bad %s", "thing")
	errs.Add(f, 0, "worse")
	err := errs.Err()
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "a.mc:2:1: bad thing") {
		t.Errorf("message %q missing located diagnostic", msg)
	}
	if !strings.Contains(msg, "worse") {
		t.Errorf("message %q missing second diagnostic", msg)
	}
	if errs.Len() != 2 {
		t.Errorf("len = %d", errs.Len())
	}
}
