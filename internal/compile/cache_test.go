package compile

import (
	"fmt"
	"sync"
	"testing"
)

func srcN(n int) string {
	return fmt.Sprintf(`
int main() {
	int x = %d;
	print(x);
	return x;
}
`, n)
}

func TestCacheHitReturnsSameResult(t *testing.T) {
	c := NewCache(4)
	r1, hit, err := c.Compile("t.mc", srcN(1), O2())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first compile reported as hit")
	}
	r2, hit, err := c.Compile("t.mc", srcN(1), O2())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second compile of identical (source, Config) missed the cache")
	}
	// Pointer identity proves the pipeline (and its optimization passes)
	// did not run again.
	if r1 != r2 {
		t.Fatal("cache hit returned a different Result")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheKeyIncludesConfig(t *testing.T) {
	c := NewCache(4)
	if _, _, err := c.Compile("t.mc", srcN(1), O2()); err != nil {
		t.Fatal(err)
	}
	_, hit, err := c.Compile("t.mc", srcN(1), O0())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("different Config must compile separately")
	}
	if KeyOf("t.mc", srcN(1), O2()).ID() == KeyOf("t.mc", srcN(1), O0()).ID() {
		t.Fatal("artifact IDs of different configs collide")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for i := 1; i <= 2; i++ {
		if _, _, err := c.Compile("t.mc", srcN(i), O0()); err != nil {
			t.Fatal(err)
		}
	}
	// Touch 1 so 2 becomes least recently used.
	if _, hit, _ := c.Compile("t.mc", srcN(1), O0()); !hit {
		t.Fatal("expected hit on entry 1")
	}
	if _, _, err := c.Compile("t.mc", srcN(3), O0()); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and 2 entries", st)
	}
	if _, hit, _ := c.Compile("t.mc", srcN(1), O0()); !hit {
		t.Fatal("recently used entry 1 was evicted")
	}
	if _, hit, _ := c.Compile("t.mc", srcN(2), O0()); hit {
		t.Fatal("LRU entry 2 should have been evicted")
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := NewCache(4)
	bad := "int main() { return undeclared; }"
	for i := 0; i < 2; i++ {
		if _, _, err := c.Compile("bad.mc", bad, O0()); err == nil {
			t.Fatal("compile of invalid program succeeded")
		}
	}
	st := c.Stats()
	if st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 2 misses and no resident entries", st)
	}
}

func TestCacheCoalescesConcurrentCompiles(t *testing.T) {
	c := NewCache(4)
	const n = 16
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, _, err := c.Compile("t.mc", srcN(7), O2())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d concurrent requests ran the pipeline %d times, want 1", n, st.Misses)
	}
	if st.Hits != n-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, n-1)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("coalesced requests received different Results")
		}
	}
}
