package compile_test

import (
	"container/list"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
)

// legacyCache is a faithful copy of the pre-store single-mutex cache: one
// global mutex around a map + LRU list, with the full source sha256-hashed
// on every request (twice, counting Key.ID for handles). It exists only as
// the benchmark baseline for BENCH_store.json.
type legacyCache struct {
	mu      sync.Mutex
	max     int
	entries map[compile.Key]*legacyEntry
	order   *list.List
}

type legacyEntry struct {
	key  compile.Key
	elem *list.Element
	done chan struct{}
	res  *compile.Result
	err  error
}

func newLegacyCache(max int) *legacyCache {
	return &legacyCache{max: max, entries: map[compile.Key]*legacyEntry{}, order: list.New()}
}

func (c *legacyCache) compile(name, src string, cfg compile.Config) (*compile.Result, bool, error) {
	key := compile.KeyOf(name, src, cfg)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.done
		return e.res, true, e.err
	}
	e := &legacyEntry{key: key, done: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()

	e.res, e.err = compile.Compile(name, src, cfg)
	close(e.done)

	c.mu.Lock()
	if e.err != nil {
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.order.Remove(e.elem)
		}
	} else if c.max > 0 {
		for el := c.order.Back(); el != nil && len(c.entries) > c.max; {
			ev := el.Value.(*legacyEntry)
			prev := el.Prev()
			select {
			case <-ev.done:
				delete(c.entries, ev.key)
				c.order.Remove(el)
			default:
			}
			el = prev
		}
	}
	c.mu.Unlock()
	return e.res, false, e.err
}

type workload struct {
	name, src string
}

func benchWorkloads() []workload {
	ws := make([]workload, 0, len(bench.Names))
	for _, n := range bench.Names {
		ws = append(ws, workload{n + ".mc", bench.MustSource(n)})
	}
	return ws
}

// BenchmarkCacheHotLegacy measures hot-hit throughput of the old design:
// every request pays a sha256 over the full source under a single global
// mutex. Run with -cpu or SetParallelism to model concurrent sessions.
func BenchmarkCacheHotLegacy(b *testing.B) {
	ws := benchWorkloads()
	c := newLegacyCache(0)
	for _, w := range ws {
		if _, _, err := c.compile(w.name, w.src, compile.O2()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			w := ws[i%len(ws)]
			i++
			if _, hit, err := c.compile(w.name, w.src, compile.O2()); err != nil || !hit {
				b.Errorf("hit=%v err=%v", hit, err)
				return
			}
		}
	})
}

// BenchmarkCacheHotStore is the same hot-hit workload against the sharded
// store adapter: requests hash with maphash and resolve under a per-shard
// lock; sha256 runs only on miss.
func BenchmarkCacheHotStore(b *testing.B) {
	ws := benchWorkloads()
	c := compile.NewCacheWith(compile.CacheConfig{Shards: 8})
	for _, w := range ws {
		if _, _, err := c.Compile(w.name, w.src, compile.O2()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			w := ws[i%len(ws)]
			i++
			if _, hit, err := c.Compile(w.name, w.src, compile.O2()); err != nil || !hit {
				b.Errorf("hit=%v err=%v", hit, err)
				return
			}
		}
	})
}

// BenchmarkColdRestartNoSpill measures serving the full workload set from
// a fresh process with no disk tier: every artifact recompiles.
func BenchmarkColdRestartNoSpill(b *testing.B) {
	ws := benchWorkloads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := compile.NewCacheWith(compile.CacheConfig{Shards: 8})
		for _, w := range ws {
			if _, _, err := c.Compile(w.name, w.src, compile.O2()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkColdRestartSpill measures the same restart against a warm spill
// directory: artifacts decode from disk (front-end replay + integrity
// check) instead of running the optimizer pipeline.
func BenchmarkColdRestartSpill(b *testing.B) {
	ws := benchWorkloads()
	dir := b.TempDir()
	warm := compile.NewCacheWith(compile.CacheConfig{Shards: 8, SpillDir: dir})
	for _, w := range ws {
		if _, _, err := warm.Compile(w.name, w.src, compile.O2()); err != nil {
			b.Fatal(err)
		}
	}
	warm.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := compile.NewCacheWith(compile.CacheConfig{Shards: 8, SpillDir: dir})
		for _, w := range ws {
			res, _, err := c.Compile(w.name, w.src, compile.O2())
			if err != nil {
				b.Fatal(err)
			}
			if res.Mach == nil {
				b.Fatal("empty artifact from spill")
			}
		}
		st := c.Stats()
		if st.SpillHits != int64(len(ws)) {
			b.Fatalf("restart compiled instead of reloading: %+v", st)
		}
	}
}
