package compile_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
	"repro/internal/fault"
)

// The compile.func fault point sits inside the per-function back end; a
// firing rule must surface as an ordinary compile error naming the
// pipeline (serial and parallel alike), and an injected worker panic
// must be contained to the same error shape — never escape to the
// process.

func TestInjectedBackEndErrorSurfaces(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	src := bench.MustSource("li")
	for _, workers := range []int{1, 8} {
		fault.Set("compile.func", fault.Rule{Times: 1})
		p := compile.NewPipeline(compile.PipelineConfig{Workers: workers})
		_, _, err := p.Compile("li", src, compile.O2())
		if err == nil {
			t.Fatalf("workers=%d: injected back-end error did not surface", workers)
		}
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("workers=%d: err = %v, want ErrInjected wrap", workers, err)
		}
		if !strings.Contains(err.Error(), "compile:") {
			t.Fatalf("workers=%d: err = %v, want compile-prefixed", workers, err)
		}
	}

	// Disarmed, the same pipeline compiles cleanly.
	fault.Disable()
	p := compile.NewPipeline(compile.PipelineConfig{Workers: 8})
	if _, _, err := p.Compile("li", src, compile.O2()); err != nil {
		t.Fatalf("compile after disarm: %v", err)
	}
}

func TestInjectedBackEndPanicIsContained(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	src := bench.MustSource("li")
	for _, workers := range []int{1, 8} {
		fault.Set("compile.func", fault.Rule{Times: 1, Panic: true})
		p := compile.NewPipeline(compile.PipelineConfig{Workers: workers})
		_, _, err := p.Compile("li", src, compile.O2())
		if err == nil || !strings.Contains(err.Error(), "panic compiling") {
			t.Fatalf("workers=%d: err = %v, want contained panic", workers, err)
		}
	}
}
