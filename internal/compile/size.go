package compile

import (
	"unsafe"

	"repro/internal/mach"
)

// SizeBytes estimates the resident memory cost of a compiled artifact for
// the store's byte-budget accounting: the retained source text, a
// front-end factor for the AST/semantic objects the machine code keeps
// alive, and a structural walk of the machine program. It is an estimate
// (Go has no cheap deep-size primitive), deliberately on the generous
// side so a budget is a real ceiling rather than a suggestion.
func (r *Result) SizeBytes() int64 {
	var n int64
	if r.File != nil {
		// Source text plus the per-line index and the parsed AST +
		// object graph, which empirically run a small multiple of the
		// text size for MiniC programs.
		n += int64(len(r.File.Content)) * 8
	}
	if r.Mach != nil {
		n += sizeOfProgram(r.Mach)
	}
	return n
}

const (
	instrBase = int64(unsafe.Sizeof(mach.Instr{})) + 16 // struct + pointer/header slack
	blockBase = int64(unsafe.Sizeof(mach.Block{})) + 16
	funcBase  = int64(unsafe.Sizeof(mach.Func{})) + 16
	opdSize   = int64(unsafe.Sizeof(mach.Opd{}))
	mapRow    = int64(48) // bucket share + key pointer + value word(s)
)

func sizeOfProgram(p *mach.Program) int64 {
	n := int64(unsafe.Sizeof(*p))
	n += int64(len(p.Globals)) * 8
	n += int64(len(p.GlobalOff)) * mapRow
	n += int64(len(p.GlobalInit)) * (mapRow + 32)
	for _, f := range p.Funcs {
		n += sizeOfFunc(f)
	}
	return n
}

func sizeOfFunc(f *mach.Func) int64 {
	n := funcBase + int64(len(f.Name))
	n += int64(len(f.FrameObjects)) * 8
	n += int64(len(f.FrameOff)) * mapRow
	n += int64(len(f.VarLoc)) * mapRow
	for _, b := range f.Blocks {
		n += blockBase
		n += int64(len(b.Succs)+len(b.Preds)) * 8
		n += int64(len(b.Instrs)) * 8
		for _, in := range b.Instrs {
			n += sizeOfInstr(in)
		}
	}
	return n
}

func sizeOfInstr(in *mach.Instr) int64 {
	n := instrBase
	n += int64(len(in.Callee))
	n += int64(len(in.Args)) * opdSize
	n += int64(len(in.UseObjs)) * 8
	for _, pa := range in.PrintFmt {
		n += int64(unsafe.Sizeof(pa)) + int64(len(pa.Str))
	}
	if in.Ann.InsertedBy != "" {
		n += int64(len(in.Ann.InsertedBy))
	}
	if in.Ann.Recover != nil {
		n += 32
	}
	return n
}
