package compile

// Artifact serialization for the store's disk tier.
//
// A spilled artifact is a gob-encoded wire image of the *back end* of the
// pipeline: the final machine code with all of its debugging annotations
// (statement tags, hoist/sunk/inserted marks, markers, recovery links,
// DefObj/UseObjs variable tags, frame and register-allocation tables) plus
// the global data layout — everything the debugger's tables and classifier
// consume. AST and semantic objects are not serialized; instructions refer
// to them by their dense per-function (local) or per-program (global)
// object IDs. Decoding replays only the deterministic front end
// (sem.CheckSource: parse + check) to re-establish object and statement
// identity, then reconstructs the machine program from the wire image —
// skipping optimization, lowering, register allocation and scheduling,
// which is where compile time goes. A sha256 of the canonical machine-code
// rendering is stored and re-verified on load, so a decoded artifact is
// byte-identical to what was spilled or it is rejected (and the caller
// falls back to a full compile).
//
// The rehydrated Result carries File, Sem and Mach; its IR field is nil
// (the optimized IR is not part of the debuggable artifact).

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/ir"
	"repro/internal/mach"
	"repro/internal/sem"
)

// spillVersion guards the wire format; bump on any wire-struct change.
const spillVersion = 2

type wireArtifact struct {
	Version int
	Name    string
	Src     string
	Cfg     Config

	Funcs      []wireFunc
	Globals    []int32 // mach.Program.Globals, by object ID
	GlobalOff  []wireOff
	GlobalSize int64
	GlobalInit []wireInit

	MachSum [sha256.Size]byte // sha256 of Mach.String(), re-verified on load
}

type wireFunc struct {
	Name      string
	Blocks    []wireBlock
	Entry     int32 // index into Blocks
	NumVregs  int
	NumVars   int
	FrameObjs []int32 // object refs, in order
	FrameOff  []wireOff
	FrameSize int64
	Allocated bool
	VarLoc    []wireVarLoc
	Scheduled bool
}

type wireBlock struct {
	ID        int
	LoopDepth int
	Succs     []int32 // indexes into wireFunc.Blocks
	Instrs    []wireInstr
}

type wireInstr struct {
	Op       mach.Opcode
	Dst      mach.Opd
	A, B     mach.Opd
	Off      int64
	Sym      int32 // object ref
	Callee   string
	Args     []mach.Opd
	PrintFmt []mach.PrintArg
	ParamIdx int

	MarkObj   int32 // object ref
	MarkAlias mach.Opd

	Stmt     int
	OrigIdx  int
	PreSched int

	// ir.Ann, flattened (its object pointers become refs).
	Hoisted     bool
	Sunk        bool
	InsertedBy  string
	ReplacedVar int32 // object ref
	HasRecover  bool
	RecoverVar  int32 // object ref
	RecoverA    int64
	RecoverB    int64

	DefObj  int32   // object ref
	UseObjs []int32 // object refs
}

// wireOff is one (object, frame/global offset) table row.
type wireOff struct {
	Obj int32
	Off int64
}

// wireVarLoc is one register-allocation table row.
type wireVarLoc struct {
	Obj int32
	Loc mach.Loc
}

// wireInit is one global initializer; the ir.Operand is flattened with its
// object pointer as a ref.
type wireInit struct {
	Obj  int32
	Kind ir.OpdKind
	Ty   ir.Ty
	TID  int
	Ref  int32 // Operand.Obj as an object ref
	Int  int64
	Fl   float64
}

// Object references: nil = -1, local (or param) = 2*ID, global = 2*ID+1.
// Locals resolve through FuncDecl.Locals and globals through
// sem.Program.Globals, both of which index by the IDs the checker assigns
// deterministically — so a front-end replay of the same source rebuilds
// the same reference space.

func encObj(o *ast.Object) int32 {
	if o == nil {
		return -1
	}
	if o.Kind == ast.ObjGlobal {
		return int32(o.ID)*2 + 1
	}
	return int32(o.ID) * 2
}

type objResolver struct {
	globals []*ast.Object // by ID
	locals  []*ast.Object // by ID, current function
}

func (r *objResolver) obj(ref int32) (*ast.Object, error) {
	if ref < 0 {
		return nil, nil
	}
	id := int(ref / 2)
	if ref%2 == 1 {
		if id >= len(r.globals) {
			return nil, fmt.Errorf("spill: global object #%d out of range", id)
		}
		return r.globals[id], nil
	}
	if id >= len(r.locals) {
		return nil, fmt.Errorf("spill: local object #%d out of range", id)
	}
	return r.locals[id], nil
}

// EncodeSpill serializes a compiled artifact for the disk tier. The
// source text and configuration ride along (they are the artifact's
// identity and drive the front-end replay on load).
func EncodeSpill(cfg Config, res *Result) ([]byte, error) {
	w := wireArtifact{
		Version:    spillVersion,
		Name:       res.File.Name,
		Src:        res.File.Content,
		Cfg:        cfg,
		GlobalSize: res.Mach.GlobalSize,
		MachSum:    sha256.Sum256([]byte(res.Mach.String())),
	}
	for _, g := range res.Mach.Globals {
		w.Globals = append(w.Globals, encObj(g))
	}
	w.GlobalOff = encOffs(res.Mach.GlobalOff)
	for _, o := range sortedObjs(res.Mach.GlobalInit) {
		op := res.Mach.GlobalInit[o]
		w.GlobalInit = append(w.GlobalInit, wireInit{
			Obj: encObj(o), Kind: op.Kind, Ty: op.Ty, TID: op.TID,
			Ref: encObj(op.Obj), Int: op.Int, Fl: op.Fl,
		})
	}
	for _, f := range res.Mach.Funcs {
		wf, err := encFunc(f)
		if err != nil {
			return nil, err
		}
		w.Funcs = append(w.Funcs, wf)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encFunc(f *mach.Func) (wireFunc, error) {
	wf := wireFunc{
		Name:      f.Name,
		NumVregs:  f.NumVregs,
		NumVars:   f.NumVars,
		FrameSize: f.FrameSize,
		Allocated: f.Allocated,
		Scheduled: f.Scheduled,
		Entry:     -1,
	}
	blockIdx := make(map[*mach.Block]int32, len(f.Blocks))
	for i, b := range f.Blocks {
		blockIdx[b] = int32(i)
	}
	if f.Entry != nil {
		idx, ok := blockIdx[f.Entry]
		if !ok {
			return wf, fmt.Errorf("spill: entry block of %s not in Blocks", f.Name)
		}
		wf.Entry = idx
	}
	for _, o := range f.FrameObjects {
		wf.FrameObjs = append(wf.FrameObjs, encObj(o))
	}
	wf.FrameOff = encOffs(f.FrameOff)
	for _, o := range sortedObjs(f.VarLoc) {
		wf.VarLoc = append(wf.VarLoc, wireVarLoc{Obj: encObj(o), Loc: f.VarLoc[o]})
	}
	for _, b := range f.Blocks {
		wb := wireBlock{ID: b.ID, LoopDepth: b.LoopDepth}
		for _, s := range b.Succs {
			idx, ok := blockIdx[s]
			if !ok {
				return wf, fmt.Errorf("spill: successor of L%d not in Blocks of %s", b.ID, f.Name)
			}
			wb.Succs = append(wb.Succs, idx)
		}
		for _, in := range b.Instrs {
			wb.Instrs = append(wb.Instrs, encInstr(in))
		}
		wf.Blocks = append(wf.Blocks, wb)
	}
	return wf, nil
}

func encInstr(in *mach.Instr) wireInstr {
	wi := wireInstr{
		Op: in.Op, Dst: in.Dst, A: in.A, B: in.B, Off: in.Off,
		Sym: encObj(in.Sym), Callee: in.Callee, ParamIdx: in.ParamIdx,
		MarkObj: encObj(in.MarkObj), MarkAlias: in.MarkAlias,
		Stmt: in.Stmt, OrigIdx: in.OrigIdx, PreSched: in.PreSched,
		Hoisted: in.Ann.Hoisted, Sunk: in.Ann.Sunk, InsertedBy: in.Ann.InsertedBy,
		ReplacedVar: encObj(in.Ann.ReplacedVar),
		DefObj:      encObj(in.DefObj),
	}
	if len(in.Args) > 0 {
		wi.Args = append([]mach.Opd(nil), in.Args...)
	}
	if len(in.PrintFmt) > 0 {
		wi.PrintFmt = append([]mach.PrintArg(nil), in.PrintFmt...)
	}
	if r := in.Ann.Recover; r != nil {
		wi.HasRecover = true
		wi.RecoverVar = encObj(r.Var)
		wi.RecoverA, wi.RecoverB = r.A, r.B
	}
	for _, u := range in.UseObjs {
		wi.UseObjs = append(wi.UseObjs, encObj(u))
	}
	return wi
}

// DecodeSpill reconstructs a compiled artifact from its serialized form,
// replaying the front end over the embedded source to re-establish AST and
// object identity, and verifies the machine-code rendering byte-for-byte
// against the recorded digest. It returns the Result, the configuration it
// was compiled under, and the name/source identity.
func DecodeSpill(data []byte) (res *Result, name, src string, cfg Config, err error) {
	var w wireArtifact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, "", "", Config{}, err
	}
	if w.Version != spillVersion {
		return nil, "", "", Config{}, fmt.Errorf("spill: version %d, want %d", w.Version, spillVersion)
	}
	p, err := sem.CheckSource(w.Name, w.Src)
	if err != nil {
		return nil, "", "", Config{}, fmt.Errorf("spill: front-end replay: %w", err)
	}
	r := &objResolver{globals: p.Globals}
	mp := &mach.Program{
		GlobalOff:  map[*ast.Object]int64{},
		GlobalSize: w.GlobalSize,
		GlobalInit: map[*ast.Object]ir.Operand{},
	}
	for _, ref := range w.Globals {
		o, err := r.obj(ref)
		if err != nil {
			return nil, "", "", Config{}, err
		}
		mp.Globals = append(mp.Globals, o)
	}
	for _, row := range w.GlobalOff {
		o, err := r.obj(row.Obj)
		if err != nil {
			return nil, "", "", Config{}, err
		}
		mp.GlobalOff[o] = row.Off
	}
	for _, wi := range w.GlobalInit {
		o, err := r.obj(wi.Obj)
		if err != nil {
			return nil, "", "", Config{}, err
		}
		ref, err := r.obj(wi.Ref)
		if err != nil {
			return nil, "", "", Config{}, err
		}
		mp.GlobalInit[o] = ir.Operand{Kind: wi.Kind, Ty: wi.Ty, TID: wi.TID, Obj: ref, Int: wi.Int, Fl: wi.Fl}
	}
	for i := range w.Funcs {
		f, err := decFunc(&w.Funcs[i], p, r)
		if err != nil {
			return nil, "", "", Config{}, err
		}
		mp.Funcs = append(mp.Funcs, f)
	}
	if sum := sha256.Sum256([]byte(mp.String())); sum != w.MachSum {
		return nil, "", "", Config{}, fmt.Errorf("spill: machine-code digest mismatch (stale or corrupt artifact)")
	}
	return &Result{File: p.File.Source, Sem: p, Mach: mp}, w.Name, w.Src, w.Cfg, nil
}

func decFunc(wf *wireFunc, p *sem.Program, r *objResolver) (*mach.Func, error) {
	decl := p.File.LookupFunc(wf.Name)
	if decl == nil {
		return nil, fmt.Errorf("spill: function %q not in replayed front end", wf.Name)
	}
	r.locals = decl.Locals
	f := &mach.Func{
		Name: wf.Name, Decl: decl,
		NumVregs: wf.NumVregs, NumVars: wf.NumVars,
		FrameOff: map[*ast.Object]int64{}, FrameSize: wf.FrameSize,
		Allocated: wf.Allocated, Scheduled: wf.Scheduled,
	}
	for _, ref := range wf.FrameObjs {
		o, err := r.obj(ref)
		if err != nil {
			return nil, err
		}
		f.FrameObjects = append(f.FrameObjects, o)
	}
	for _, row := range wf.FrameOff {
		o, err := r.obj(row.Obj)
		if err != nil {
			return nil, err
		}
		f.FrameOff[o] = row.Off
	}
	if len(wf.VarLoc) > 0 {
		f.VarLoc = map[*ast.Object]mach.Loc{}
		for _, row := range wf.VarLoc {
			o, err := r.obj(row.Obj)
			if err != nil {
				return nil, err
			}
			f.VarLoc[o] = row.Loc
		}
	}
	blocks := make([]*mach.Block, len(wf.Blocks))
	for i := range wf.Blocks {
		blocks[i] = &mach.Block{ID: wf.Blocks[i].ID, LoopDepth: wf.Blocks[i].LoopDepth}
	}
	for i := range wf.Blocks {
		wb := &wf.Blocks[i]
		b := blocks[i]
		for _, sidx := range wb.Succs {
			if int(sidx) >= len(blocks) || sidx < 0 {
				return nil, fmt.Errorf("spill: successor index %d out of range in %s", sidx, wf.Name)
			}
			b.Succs = append(b.Succs, blocks[sidx])
		}
		for j := range wb.Instrs {
			in, err := decInstr(&wb.Instrs[j], r)
			if err != nil {
				return nil, err
			}
			b.Instrs = append(b.Instrs, in)
		}
	}
	f.Blocks = blocks
	if wf.Entry >= 0 {
		if int(wf.Entry) >= len(blocks) {
			return nil, fmt.Errorf("spill: entry index %d out of range in %s", wf.Entry, wf.Name)
		}
		f.Entry = blocks[wf.Entry]
	}
	f.RecomputePreds()
	return f, nil
}

func decInstr(wi *wireInstr, r *objResolver) (*mach.Instr, error) {
	sym, err := r.obj(wi.Sym)
	if err != nil {
		return nil, err
	}
	markObj, err := r.obj(wi.MarkObj)
	if err != nil {
		return nil, err
	}
	replaced, err := r.obj(wi.ReplacedVar)
	if err != nil {
		return nil, err
	}
	defObj, err := r.obj(wi.DefObj)
	if err != nil {
		return nil, err
	}
	in := &mach.Instr{
		Op: wi.Op, Dst: wi.Dst, A: wi.A, B: wi.B, Off: wi.Off,
		Sym: sym, Callee: wi.Callee, ParamIdx: wi.ParamIdx,
		MarkObj: markObj, MarkAlias: wi.MarkAlias,
		Stmt: wi.Stmt, OrigIdx: wi.OrigIdx, PreSched: wi.PreSched,
		Ann:    ir.Ann{Hoisted: wi.Hoisted, Sunk: wi.Sunk, InsertedBy: wi.InsertedBy, ReplacedVar: replaced},
		DefObj: defObj,
	}
	if len(wi.Args) > 0 {
		in.Args = append([]mach.Opd(nil), wi.Args...)
	}
	if len(wi.PrintFmt) > 0 {
		in.PrintFmt = append([]mach.PrintArg(nil), wi.PrintFmt...)
	}
	if wi.HasRecover {
		rv, err := r.obj(wi.RecoverVar)
		if err != nil {
			return nil, err
		}
		in.Ann.Recover = &ir.LinRecovery{Var: rv, A: wi.RecoverA, B: wi.RecoverB}
	}
	for _, ref := range wi.UseObjs {
		o, err := r.obj(ref)
		if err != nil {
			return nil, err
		}
		in.UseObjs = append(in.UseObjs, o)
	}
	return in, nil
}

// encOffs flattens an offset table deterministically (sorted by object ID,
// globals after locals).
func encOffs(m map[*ast.Object]int64) []wireOff {
	out := make([]wireOff, 0, len(m))
	for _, o := range sortedObjs(m) {
		out = append(out, wireOff{Obj: encObj(o), Off: m[o]})
	}
	return out
}

// sortedObjs returns a map's object keys ordered by their encoded ref, so
// encoding is deterministic across runs.
func sortedObjs[T any](m map[*ast.Object]T) []*ast.Object {
	objs := make([]*ast.Object, 0, len(m))
	for o := range m {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return encObj(objs[i]) < encObj(objs[j]) })
	return objs
}
