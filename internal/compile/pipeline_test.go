package compile_test

import (
	"crypto/sha256"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
)

// testConfigs are the three measured pipeline configurations: full
// optimization, the Figure 5(a) no-regalloc configuration, and O0.
func testConfigs() map[string]compile.Config {
	return map[string]compile.Config{
		"O2":           compile.O2(),
		"O2NoRegAlloc": compile.O2NoRegAlloc(),
		"O0":           compile.O0(),
	}
}

func machDigest(t *testing.T, res *compile.Result) [sha256.Size]byte {
	t.Helper()
	if res == nil || res.Mach == nil {
		t.Fatal("nil result")
	}
	return sha256.Sum256([]byte(res.Mach.String()))
}

// TestPipelineMatchesSerial asserts that the parallel pipeline and the
// incremental (cache-stitched) pipeline both produce machine programs whose
// canonical rendering is byte-identical to the serial driver, across all
// bench workloads and all three configurations.
func TestPipelineMatchesSerial(t *testing.T) {
	for cfgName, cfg := range testConfigs() {
		par := compile.NewPipeline(compile.PipelineConfig{Workers: 8})
		inc := compile.NewPipeline(compile.PipelineConfig{
			Workers: 8,
			Funcs:   compile.NewFuncCache(compile.FuncCacheConfig{Shards: 4}),
		})
		for _, name := range bench.Names {
			src := bench.MustSource(name)
			want, err := compile.Compile(name, src, cfg)
			if err != nil {
				t.Fatalf("%s/%s: serial: %v", name, cfgName, err)
			}
			wantSum := machDigest(t, want)

			got, m, err := par.Compile(name, src, cfg)
			if err != nil {
				t.Fatalf("%s/%s: parallel: %v", name, cfgName, err)
			}
			if machDigest(t, got) != wantSum {
				t.Errorf("%s/%s: parallel digest differs from serial", name, cfgName)
			}
			if m.FuncsCompiled != m.Funcs || m.FuncsReused != 0 {
				t.Errorf("%s/%s: parallel metrics = %+v, want all compiled", name, cfgName, m)
			}

			// Incremental, cold: populates the cache; must still match.
			cold, m, err := inc.Compile(name, src, cfg)
			if err != nil {
				t.Fatalf("%s/%s: incremental cold: %v", name, cfgName, err)
			}
			if machDigest(t, cold) != wantSum {
				t.Errorf("%s/%s: incremental cold digest differs from serial", name, cfgName)
			}
			if m.FuncsReused != 0 {
				t.Errorf("%s/%s: cold incremental reused %d funcs", name, cfgName, m.FuncsReused)
			}

			// Incremental, warm: everything stitched from the cache.
			warm, m, err := inc.Compile(name, src, cfg)
			if err != nil {
				t.Fatalf("%s/%s: incremental warm: %v", name, cfgName, err)
			}
			if machDigest(t, warm) != wantSum {
				t.Errorf("%s/%s: incremental warm digest differs from serial", name, cfgName)
			}
			if m.FuncsReused != m.Funcs || m.FuncsCompiled != 0 {
				t.Errorf("%s/%s: warm metrics = %+v, want all reused", name, cfgName, m)
			}
			if warm.IR != nil {
				t.Errorf("%s/%s: stitched result carries optimized IR", name, cfgName)
			}
		}
	}
}

// TestOneFunctionEdit asserts the incremental contract: editing one
// function of a workload recompiles exactly that one function, and the
// result matches a from-scratch serial compile of the edited source.
func TestOneFunctionEdit(t *testing.T) {
	cfg := compile.O2()
	pipe := compile.NewPipeline(compile.PipelineConfig{
		Workers: 4,
		Funcs:   compile.NewFuncCache(compile.FuncCacheConfig{Shards: 4}),
	})
	src := bench.MustSource("li")
	if _, m, err := pipe.Compile("li", src, cfg); err != nil {
		t.Fatal(err)
	} else if m.FuncsReused != 0 {
		t.Fatalf("cold compile reused %d funcs", m.FuncsReused)
	}

	// Append a new function and call no one: every existing function's IR
	// and the global environment are unchanged, so only the new function
	// compiles.
	edited := src + "\nint pipeline_probe(int x) { int y; y = x * 3 + 1; return y; }\n"
	res, m, err := pipe.Compile("li", edited, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.FuncsCompiled != 1 {
		t.Errorf("one-function edit compiled %d funcs, want 1 (reused %d of %d)",
			m.FuncsCompiled, m.FuncsReused, m.Funcs)
	}
	if m.FuncsReused != m.Funcs-1 {
		t.Errorf("one-function edit reused %d funcs, want %d", m.FuncsReused, m.Funcs-1)
	}
	want, err := compile.Compile("li", edited, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if machDigest(t, res) != machDigest(t, want) {
		t.Error("stitched program differs from serial compile of edited source")
	}
}

// TestPipelineConcurrentStress drives one shared pipeline+cache from many
// goroutines over multiple workloads and configs, checking every result
// against the serial digest. Run under -race this is the worker-pool
// regression test; -count=2 exercises both cold and warm cache states
// within each run (the second round of each goroutine is warm).
func TestPipelineConcurrentStress(t *testing.T) {
	pipe := compile.NewPipeline(compile.PipelineConfig{
		Workers: 8,
		Funcs:   compile.NewFuncCache(compile.FuncCacheConfig{Shards: 8}),
	})
	workloads := []string{"li", "compress", "ear", "eqntott"}
	want := map[string][sha256.Size]byte{}
	for cfgName, cfg := range testConfigs() {
		for _, name := range workloads {
			res, err := compile.Compile(name, bench.MustSource(name), cfg)
			if err != nil {
				t.Fatal(err)
			}
			want[name+"/"+cfgName] = machDigest(t, res)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for cfgName, cfg := range testConfigs() {
		for _, name := range workloads {
			for round := 0; round < 2; round++ {
				wg.Add(1)
				go func(name, cfgName string, cfg compile.Config) {
					defer wg.Done()
					res, _, err := pipe.Compile(name, bench.MustSource(name), cfg)
					if err != nil {
						errc <- fmt.Errorf("%s/%s: %v", name, cfgName, err)
						return
					}
					if sha256.Sum256([]byte(res.Mach.String())) != want[name+"/"+cfgName] {
						errc <- fmt.Errorf("%s/%s: digest mismatch", name, cfgName)
					}
				}(name, cfgName, cfg)
			}
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestParallelSpeedup checks the ≥2x acceptance bar for 8 workers over the
// bench corpus. Wall-clock parallel speedup needs real CPUs; on boxes
// without them the bound is unverifiable and the test skips.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to measure parallel speedup, have %d", runtime.NumCPU())
	}
	cfg := compile.O2()
	serial := compile.NewPipeline(compile.PipelineConfig{Workers: 1})
	par := compile.NewPipeline(compile.PipelineConfig{Workers: 8})
	corpus := func(p *compile.Pipeline) {
		for _, name := range bench.Names {
			if _, _, err := p.Compile(name, bench.MustSource(name), cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm up once (page in sources, JIT-ish effects), then measure best of 3.
	corpus(serial)
	corpus(par)
	best := func(p *compile.Pipeline) (d int64) {
		for i := 0; i < 3; i++ {
			s0 := p.Stats().CompileNanos
			corpus(p)
			if n := p.Stats().CompileNanos - s0; d == 0 || n < d {
				d = n
			}
		}
		return d
	}
	ds, dp := best(serial), best(par)
	t.Logf("serial %dms, parallel-8 %dms (%.2fx) on %d CPUs",
		ds/1e6, dp/1e6, float64(ds)/float64(dp), runtime.NumCPU())
	if float64(ds) < 2*float64(dp) {
		t.Errorf("parallel speedup %.2fx < 2x (serial %dms, parallel %dms)",
			float64(ds)/float64(dp), ds/1e6, dp/1e6)
	}
}
