package compile

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Key identifies one compiled artifact: the hash of the source text plus
// the exact pipeline configuration. Two compiles with the same Key produce
// identical machine programs, so their Results are interchangeable.
type Key struct {
	SrcHash [sha256.Size]byte
	Cfg     Config
}

// KeyOf computes the cache key for a compilation request. The file name
// participates in the hash because it appears in diagnostics and debug
// positions.
func KeyOf(name, src string, cfg Config) Key {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src))
	var k Key
	h.Sum(k.SrcHash[:0])
	k.Cfg = cfg
	return k
}

// ID renders the key as a short stable identifier (for logs and protocol
// artifact handles).
func (k Key) ID() string {
	// Fold the config into the printable id so the same source compiled
	// under two configurations yields two distinct handles.
	h := sha256.New()
	h.Write(k.SrcHash[:])
	fmt.Fprintf(h, "%+v", k.Cfg)
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits      int64 // requests served from a completed or in-flight compile
	Misses    int64 // requests that ran the pipeline
	Evictions int64 // completed entries dropped by the LRU bound
	Entries   int   // resident entries (including in-flight)
}

// Cache is a concurrency-safe compiled-artifact cache with size-bounded
// LRU eviction. Concurrent requests for the same Key are coalesced: the
// first caller runs the pipeline while the others block and share its
// Result, so N debug sessions on the same workload compile once.
type Cache struct {
	mu        sync.Mutex
	max       int
	entries   map[Key]*cacheEntry
	order     *list.List // front = most recently used, values are *cacheEntry
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key  Key
	elem *list.Element
	done chan struct{} // closed once res/err are filled
	res  *Result
	err  error
}

// NewCache returns a cache bounded to max completed entries; max <= 0
// means unbounded.
func NewCache(max int) *Cache {
	return &Cache{
		max:     max,
		entries: map[Key]*cacheEntry{},
		order:   list.New(),
	}
}

// Compile returns the Result for (name, src, cfg), compiling at most once
// per key. hit reports whether the pipeline was skipped (the result came
// from a completed or in-flight compile). Failed compiles are not cached:
// every waiter receives the error and the key is forgotten.
func (c *Cache) Compile(name, src string, cfg Config) (res *Result, hit bool, err error) {
	key := KeyOf(name, src, cfg)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.done
		return e.res, true, e.err
	}
	e := &cacheEntry{key: key, done: make(chan struct{})}
	e.elem = c.order.PushFront(e)
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.res, e.err = Compile(name, src, cfg)
	close(e.done)

	c.mu.Lock()
	if e.err != nil {
		// Entry may already have been evicted; delete is idempotent.
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.order.Remove(e.elem)
		}
	} else {
		c.evict()
	}
	c.mu.Unlock()
	return e.res, false, e.err
}

// evict drops least-recently-used completed entries until the bound holds.
// Called with c.mu held.
func (c *Cache) evict() {
	if c.max <= 0 {
		return
	}
	for el := c.order.Back(); el != nil && len(c.entries) > c.max; {
		e := el.Value.(*cacheEntry)
		prev := el.Prev()
		select {
		case <-e.done:
			delete(c.entries, e.key)
			c.order.Remove(el)
			c.evictions++
		default:
			// Never evict an in-flight compile: waiters hold its entry.
		}
		el = prev
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: len(c.entries)}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
