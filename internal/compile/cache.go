package compile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/maphash"

	"repro/internal/store"
)

// Key identifies one compiled artifact: the hash of the source text plus
// the exact pipeline configuration. Two compiles with the same Key produce
// identical machine programs, so their Results are interchangeable.
type Key struct {
	SrcHash [sha256.Size]byte
	Cfg     Config
}

// KeyOf computes the cache key for a compilation request. The file name
// participates in the hash because it appears in diagnostics and debug
// positions.
func KeyOf(name, src string, cfg Config) Key {
	h := sha256.New()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(src))
	var k Key
	h.Sum(k.SrcHash[:0])
	k.Cfg = cfg
	return k
}

// ID renders the key as a short stable identifier (for logs, protocol
// artifact handles, and disk-tier filenames).
func (k Key) ID() string {
	// Fold the config into the printable id so the same source compiled
	// under two configurations yields two distinct handles.
	h := sha256.New()
	h.Write(k.SrcHash[:])
	fmt.Fprintf(h, "%+v", k.Cfg)
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
// The first four fields keep their historical meaning; the rest report the
// unified store's memory accounting and disk tier.
type CacheStats struct {
	Hits      int64 // requests served from a completed or in-flight compile
	Misses    int64 // requests that ran the pipeline
	Evictions int64 // completed entries dropped by the entry or byte bound
	Entries   int   // resident entries (including in-flight)

	MemoryBytes  int64 // accounted bytes of resident artifacts (+ analyses)
	MemoryBudget int64 // configured byte budget (0 = unbounded)
	Shards       int   // shard count of the backing store
	SpillHits    int64 // misses served from the disk tier
	SpillMisses  int64 // disk tier consulted, nothing usable found
	SpillWrites  int64 // artifacts serialized to the disk tier
	SpillErrors  int64 // disk tier I/O or codec failures (non-fatal)
}

// cacheIdent is the store identity of one compilation request. Comparing
// the full source text sounds expensive, but Go string equality short-cuts
// on length and pointer, and the shard hash has already routed the lookup;
// the hot hit path does no cryptographic hashing at all (the legacy cache
// sha256-hashed the source on every request).
type cacheIdent struct {
	Name string
	Src  string
	Cfg  Config
}

var cacheSeed = maphash.MakeSeed()

// cacheHash routes an identity to a shard. It covers name and source only:
// the store matches entries by full equality on cacheIdent, so config need
// not participate (same-source-different-config identities merely share a
// shard).
func cacheHash(m cacheIdent) uint64 {
	var h maphash.Hash
	h.SetSeed(cacheSeed)
	h.WriteString(m.Name)
	h.WriteByte(0)
	h.WriteString(m.Src)
	return h.Sum64()
}

// resultCodec serializes cache entries for the disk tier via the artifact
// spill format.
type resultCodec struct{}

func (resultCodec) Encode(id string, m cacheIdent, v *Result) ([]byte, error) {
	return EncodeSpill(m.Cfg, v)
}

func (resultCodec) Decode(id string, data []byte) (cacheIdent, *Result, int64, error) {
	res, name, src, cfg, err := DecodeSpill(data)
	if err != nil {
		return cacheIdent{}, nil, 0, err
	}
	if got := KeyOf(name, src, cfg).ID(); got != id {
		return cacheIdent{}, nil, 0, fmt.Errorf("spill: artifact identity %s does not match filename %s", got, id)
	}
	return cacheIdent{Name: name, Src: src, Cfg: cfg}, res, res.SizeBytes(), nil
}

// Cache is a concurrency-safe compiled-artifact cache: a thin adapter over
// the unified store (sharded LRU + byte accounting + optional disk tier).
// Concurrent requests for the same key are coalesced: the first caller
// runs the pipeline while the others block and share its Result, so N
// debug sessions on the same workload compile once.
type Cache struct {
	s *store.Store[cacheIdent, *Result]
}

// CacheConfig tunes a Cache beyond the legacy entry bound. The zero value
// is a single-shard, unbounded, memory-only cache.
type CacheConfig struct {
	// Shards is the store shard count (rounded up to a power of two);
	// <= 1 keeps the legacy single-lock, strict-LRU behavior.
	Shards int
	// MaxEntries bounds resident entries (exact with one shard, per-shard
	// with more); <= 0 means unbounded.
	MaxEntries int
	// MemoryBudget bounds the accounted bytes of resident artifacts and
	// their analyses; <= 0 means unbounded.
	MemoryBudget int64
	// SpillDir enables the disk tier: evicted and flushed artifacts are
	// serialized there and reloaded on miss across restarts.
	SpillDir string
}

// NewCache returns a cache bounded to max completed entries; max <= 0
// means unbounded. The result has the legacy single-shard strict-LRU
// semantics; use NewCacheWith for sharding, byte budgets and disk spill.
func NewCache(max int) *Cache {
	return NewCacheWith(CacheConfig{MaxEntries: max})
}

// NewCacheWith returns a cache backed by a store configured per cfg.
func NewCacheWith(cfg CacheConfig) *Cache {
	sc := store.Config[cacheIdent, *Result]{
		Shards:       cfg.Shards,
		MaxEntries:   cfg.MaxEntries,
		MemoryBudget: cfg.MemoryBudget,
		Dir:          cfg.SpillDir,
		Hash:         cacheHash,
	}
	if cfg.SpillDir != "" {
		sc.Codec = resultCodec{}
	}
	return &Cache{s: store.New(sc)}
}

// Compile returns the Result for (name, src, cfg), compiling at most once
// per key. hit reports whether the pipeline was skipped (the result came
// from a completed or in-flight compile, or was rehydrated from the disk
// tier). Failed compiles are not cached: every waiter receives the error
// and the key is forgotten.
func (c *Cache) Compile(name, src string, cfg Config) (res *Result, hit bool, err error) {
	m := cacheIdent{Name: name, Src: src, Cfg: cfg}
	return c.s.Get(m,
		func() string { return KeyOf(name, src, cfg).ID() },
		func() (*Result, int64, error) {
			r, err := Compile(name, src, cfg)
			if err != nil {
				return nil, 0, err
			}
			return r, r.SizeBytes(), nil
		})
}

// Lookup returns the cached Result with the given artifact id (see
// Key.ID), consulting memory and then the disk tier. It never compiles.
func (c *Cache) Lookup(id string) (*Result, bool) { return c.s.LookupID(id) }

// AddCost charges delta additional accounted bytes to the artifact with
// the given identity (e.g. its lazily built analyses); charges to evicted
// identities are dropped.
func (c *Cache) AddCost(name, src string, cfg Config, delta int64) {
	c.s.AddCost(cacheIdent{Name: name, Src: src, Cfg: cfg}, delta)
}

// Flush serializes the resident artifact set to the disk tier (a no-op
// without one), so a graceful shutdown keeps its warm set.
func (c *Cache) Flush() error { return c.s.Flush() }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	st := c.s.Stats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Entries: st.Entries,
		MemoryBytes: st.MemoryBytes, MemoryBudget: st.MemoryBudget, Shards: st.Shards,
		SpillHits: st.SpillHits, SpillMisses: st.SpillMisses,
		SpillWrites: st.SpillWrites, SpillErrors: st.SpillErrors,
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int { return c.s.Len() }
