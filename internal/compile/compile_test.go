package compile

import (
	"strings"
	"testing"
)

const prog = `
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 5; i++) { s += i; }
	print(s);
	return s;
}
`

func TestConfigs(t *testing.T) {
	for name, cfg := range map[string]Config{
		"O0": O0(), "O2": O2(), "O2NoRegAlloc": O2NoRegAlloc(),
	} {
		res, err := Compile("t.mc", prog, cfg)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Mach.LookupFunc("main") == nil {
			t.Errorf("%s: no main in output", name)
		}
		f := res.Mach.LookupFunc("main")
		if cfg.RegAlloc != f.Allocated {
			t.Errorf("%s: Allocated=%v, want %v", name, f.Allocated, cfg.RegAlloc)
		}
		if cfg.Sched != f.Scheduled {
			t.Errorf("%s: Scheduled=%v, want %v", name, f.Scheduled, cfg.Sched)
		}
	}
}

func TestCompileErrorPropagates(t *testing.T) {
	_, err := Compile("bad.mc", `int main() { return undeclared; }`, O0())
	if err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("err = %v", err)
	}
	_, err = Compile("bad.mc", `int x = ;`, O0())
	if err == nil {
		t.Error("parse error not propagated")
	}
}

func TestResultCarriesAllLevels(t *testing.T) {
	res, err := Compile("t.mc", prog, O2())
	if err != nil {
		t.Fatal(err)
	}
	if res.File == nil || res.Sem == nil || res.IR == nil || res.Mach == nil {
		t.Error("result missing a representation level")
	}
	if res.IR.LookupFunc("main") == nil {
		t.Error("IR lost")
	}
}
