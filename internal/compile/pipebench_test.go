package compile_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
)

// Pipeline benchmarks: cold serial vs cold parallel vs incremental
// one-function edit, over the 8-workload bench corpus at O2. These are the
// source of BENCH_compile.json.

func compileCorpus(b *testing.B, p *compile.Pipeline) {
	b.Helper()
	cfg := compile.O2()
	for _, name := range bench.Names {
		if _, _, err := p.Compile(name, bench.MustSource(name), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileColdSerial compiles the whole corpus through the
// pipeline with one worker and no function cache — the serial baseline.
func BenchmarkCompileColdSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		compileCorpus(b, compile.NewPipeline(compile.PipelineConfig{Workers: 1}))
	}
}

// BenchmarkCompileColdParallel8 compiles the whole corpus with the
// per-function back ends fanned out over 8 workers.
func BenchmarkCompileColdParallel8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		compileCorpus(b, compile.NewPipeline(compile.PipelineConfig{Workers: 8}))
	}
}

// BenchmarkCompileIncrementalEdit measures the one-function-edit loop: the
// corpus is warm in the function cache and each iteration recompiles "li"
// with one new function appended. The benchmark fails unless exactly one
// back end runs per edit — it enforces the incremental contract, not just
// its speed.
func BenchmarkCompileIncrementalEdit(b *testing.B) {
	cfg := compile.O2()
	pipe := compile.NewPipeline(compile.PipelineConfig{
		Workers: 8,
		Funcs:   compile.NewFuncCache(compile.FuncCacheConfig{Shards: 8}),
	})
	compileCorpus(b, pipe)
	src := bench.MustSource("li")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edited := src + fmt.Sprintf("\nint probe(int x) { return x + %d; }\n", i)
		_, m, err := pipe.Compile("li", edited, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if m.FuncsCompiled != 1 {
			b.Fatalf("one-function edit compiled %d funcs, want 1 (reused %d of %d)",
				m.FuncsCompiled, m.FuncsReused, m.Funcs)
		}
	}
}

// BenchmarkCompileWarmStitch measures a fully warm recompile (no edit):
// every function of every workload stitched from the cache.
func BenchmarkCompileWarmStitch(b *testing.B) {
	pipe := compile.NewPipeline(compile.PipelineConfig{
		Workers: 8,
		Funcs:   compile.NewFuncCache(compile.FuncCacheConfig{Shards: 8}),
	})
	compileCorpus(b, pipe)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compileCorpus(b, pipe)
	}
}
