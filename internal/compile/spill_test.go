package compile_test

// Round-trip tests for the disk-tier artifact codec: every evaluation
// workload, under each measured configuration, must decode to machine
// code whose canonical rendering is byte-identical to the original.

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/compile"
)

var spillConfigs = map[string]compile.Config{
	"O0":           compile.O0(),
	"O2":           compile.O2(),
	"O2NoRegAlloc": compile.O2NoRegAlloc(),
}

func TestSpillRoundTripWorkloads(t *testing.T) {
	for _, name := range bench.Names {
		src := bench.MustSource(name)
		for cfgName, cfg := range spillConfigs {
			t.Run(name+"/"+cfgName, func(t *testing.T) {
				roundTrip(t, name+".mc", src, cfg)
			})
		}
	}
}

func TestSpillRoundTripFeatures(t *testing.T) {
	// Small programs exercising wire-format corners: global arrays and
	// scalars with initializers, float formatting, recovery annotations
	// from strength reduction, multi-function programs.
	progs := map[string]string{
		"globals": `
int g = 7;
int a[8];
float pi = 3.5;
int main() {
	int i;
	for (i = 0; i < 8; i++) { a[i] = g + i; }
	print(a[3]);
	print(pi);
	return a[7];
}
`,
		"strength": `
int a[32];
int main() {
	int i;
	for (i = 0; i < 32; i++) { a[i] = i * 3; }
	return a[31];
}
`,
		"calls": `
int add(int x, int y) { return x + y; }
int twice(int x) { return add(x, x); }
int main() {
	print(twice(21));
	return twice(21);
}
`,
	}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			roundTrip(t, name+".mc", src, compile.O2())
		})
	}
}

func roundTrip(t *testing.T, name, src string, cfg compile.Config) {
	t.Helper()
	res, err := compile.Compile(name, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := compile.EncodeSpill(cfg, res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, gotName, gotSrc, gotCfg, err := compile.DecodeSpill(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotName != name || gotSrc != src || gotCfg != cfg {
		t.Fatalf("identity mismatch: (%q, %d source bytes, %+v)", gotName, len(gotSrc), gotCfg)
	}
	want, gotStr := res.Mach.String(), got.Mach.String()
	if want != gotStr {
		t.Fatalf("machine code not byte-identical after round trip:\n--- original ---\n%s\n--- decoded ---\n%s", want, gotStr)
	}
	if got.File == nil || got.Sem == nil {
		t.Fatal("decoded result missing front-end levels")
	}
	if got.IR != nil {
		t.Fatal("decoded result should not carry optimized IR")
	}
	// Identity invariants the debugger relies on: instruction object tags
	// must point into the replayed front end's object graph.
	for _, f := range got.Mach.Funcs {
		decl := got.Sem.File.LookupFunc(f.Name)
		if f.Decl != decl {
			t.Fatalf("%s: Decl not resolved into replayed AST", f.Name)
		}
	}
}

func TestSpillRejectsCorruptData(t *testing.T) {
	res, err := compile.Compile("t.mc", "int main() { return 4; }", compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	data, err := compile.EncodeSpill(compile.O2(), res)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := compile.DecodeSpill(data[:len(data)/2]); err == nil {
		t.Error("truncated record decoded")
	}
	if _, _, _, _, err := compile.DecodeSpill([]byte("not a gob stream")); err == nil {
		t.Error("garbage decoded")
	}
}

func TestSpillDigestGuardsMachineCode(t *testing.T) {
	// A record whose embedded digest does not match its machine code must
	// be rejected, not served: flipping bytes in the encoded stream either
	// fails gob decoding or trips the digest / replay checks.
	res, err := compile.Compile("t.mc", "int main() { int x = 3; return x + 1; }", compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	data, err := compile.EncodeSpill(compile.O2(), res)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for i := 0; i < len(data); i += 7 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		if _, _, _, _, err := compile.DecodeSpill(mut); err != nil {
			rejected++
		}
	}
	// Most single-byte flips must be caught; a flip inside the source
	// text changes the identity (and is legitimately decodable), so we
	// only require that structural corruption is detected at all.
	if rejected == 0 {
		t.Error("no corruption detected across byte flips")
	}
}

func TestResultSizeBytes(t *testing.T) {
	res, err := compile.Compile("t.mc", bench.MustSource("compress"), compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	n := res.SizeBytes()
	if n <= 0 {
		t.Fatalf("SizeBytes = %d", n)
	}
	// The estimate must at least cover the retained source text and grow
	// with program size.
	if n < int64(len(res.File.Content)) {
		t.Fatalf("SizeBytes %d smaller than source text %d", n, len(res.File.Content))
	}
	small, err := compile.Compile("s.mc", "int main() { return 0; }", compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	if small.SizeBytes() >= n {
		t.Fatalf("small program (%d) not smaller than compress (%d)", small.SizeBytes(), n)
	}
	if !strings.Contains(res.Mach.String(), "compress") {
		t.Fatal("sanity: compress not in rendering")
	}
}
