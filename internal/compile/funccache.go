package compile

// FuncCache: the incremental-compilation tier. Values are serialized
// per-function machine-code images (the spill codec's wireFunc plus a
// canonical-rendering digest), keyed by FuncKey, held in a sharded,
// memory-accounted store.Store. Entries are stored encoded — never as live
// *mach.Func — because a machine function is bound to one front end's
// *ast.Object identities; stitching a cached function into a new compilation
// decodes the image against that compilation's own sem.Program, which
// rebinds objects, declarations and source positions (see decFunc). The
// digest is re-verified on every decode, so a stitched function is
// byte-identical in canonical rendering to what was cached or the cache
// entry is ignored.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"

	"repro/internal/mach"
	"repro/internal/sem"
	"repro/internal/store"
)

// FuncCacheConfig tunes a FuncCache. The zero value is a single-shard,
// unbounded cache.
type FuncCacheConfig struct {
	// Shards is the store shard count (rounded up to a power of two).
	Shards int
	// MemoryBudget bounds the accounted bytes of encoded function entries;
	// <= 0 means unbounded.
	MemoryBudget int64
}

// FuncCache caches compiled functions by content hash for incremental
// recompilation. It is safe for concurrent use and may be shared by any
// number of Pipelines (the keys are self-describing: program environment,
// function IR and Config are all part of the hash).
type FuncCache struct {
	s *store.Store[FuncKey, []byte]
}

// NewFuncCache creates a function cache.
func NewFuncCache(cfg FuncCacheConfig) *FuncCache {
	return &FuncCache{s: store.New(store.Config[FuncKey, []byte]{
		Shards:       cfg.Shards,
		MemoryBudget: cfg.MemoryBudget,
		// The key is already a cryptographic hash; its prefix routes.
		Hash: func(k FuncKey) uint64 { return binary.LittleEndian.Uint64(k[:8]) },
	})}
}

// get returns the encoded entry for k, computing (and caching) it at most
// once across concurrent callers. hit reports that compute was skipped.
func (c *FuncCache) get(k FuncKey, compute func() ([]byte, int64, error)) ([]byte, bool, error) {
	return c.s.Get(k, k.String, compute)
}

// Stats returns the underlying store counters (hits/misses are per-function
// lookups, MemoryBytes the encoded-entry budget usage).
func (c *FuncCache) Stats() store.Stats { return c.s.Stats() }

// Len returns the number of resident function entries.
func (c *FuncCache) Len() int { return c.s.Len() }

// wireFuncEntry is the serialized form of one cached function.
type wireFuncEntry struct {
	Version int
	Func    wireFunc
	Sum     [sha256.Size]byte // sha256 of mach.Func.String(), re-verified on decode
}

// encodeFuncEntry serializes one compiled function for the cache.
func encodeFuncEntry(f *mach.Func) ([]byte, error) {
	wf, err := encFunc(f)
	if err != nil {
		return nil, err
	}
	w := wireFuncEntry{
		Version: spillVersion,
		Func:    wf,
		Sum:     sha256.Sum256([]byte(f.String())),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeFuncEntry reconstructs a cached function against the current front
// end, rebinding declarations, objects and source positions, and verifies
// the machine-code rendering byte-for-byte against the recorded digest.
func decodeFuncEntry(data []byte, p *sem.Program) (*mach.Func, error) {
	var w wireFuncEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, err
	}
	if w.Version != spillVersion {
		return nil, fmt.Errorf("funccache: version %d, want %d", w.Version, spillVersion)
	}
	r := &objResolver{globals: p.Globals}
	f, err := decFunc(&w.Func, p, r)
	if err != nil {
		return nil, err
	}
	if sum := sha256.Sum256([]byte(f.String())); sum != w.Sum {
		return nil, fmt.Errorf("funccache: machine-code digest mismatch for %s", f.Name)
	}
	return f, nil
}
