// Package compile is the driver tying the pipeline together:
// parse → check → build IR → global optimization → lowering →
// register allocation → instruction scheduling.
package compile

import (
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/mach"
	"repro/internal/opt"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/sem"
	"repro/internal/source"
)

// Config selects the pipeline configuration. The paper's two measured
// configurations are:
//
//	Figure 5(a): Opt=opt.O2(), RegAlloc=false, Sched=false
//	Figure 5(b): Opt=opt.O2(), RegAlloc=true,  Sched=false
//
// (cmcc's scheduling endangerment is handled by the companion analysis and
// can be enabled with Sched=true.)
//
// Constructing a Config by hand is the internal/legacy surface; external
// callers should use pkg/minic's functional options and, where a raw
// Config is unavoidable (benchmark harnesses), derive it via
// minic.ResolveConfig so option semantics stay in one place.
type Config struct {
	Opt      opt.Options
	RegAlloc bool
	Sched    bool
}

// O0 compiles without any optimization.
func O0() Config { return Config{Opt: opt.O0()} }

// O2 compiles with full global optimization, register allocation and
// scheduling.
func O2() Config { return Config{Opt: opt.O2(), RegAlloc: true, Sched: true} }

// O2NoRegAlloc is the Figure 5(a) configuration.
func O2NoRegAlloc() Config { return Config{Opt: opt.O2()} }

// Result bundles the program at every level.
type Result struct {
	File *source.File
	Sem  *sem.Program
	IR   *ir.Program
	Mach *mach.Program
}

// Compile runs the full pipeline over MiniC source text.
func Compile(name, src string, cfg Config) (*Result, error) {
	p, err := sem.CheckSource(name, src)
	if err != nil {
		return nil, err
	}
	prog := ir.Build(p)
	opt.Run(prog, cfg.Opt)
	mp := lower.Lower(prog)
	if cfg.RegAlloc {
		if err := regalloc.Allocate(mp); err != nil {
			return nil, err
		}
	}
	if cfg.Sched {
		sched.Schedule(mp)
	}
	return &Result{File: p.File.Source, Sem: p, IR: prog, Mach: mp}, nil
}
