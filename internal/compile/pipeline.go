package compile

// Per-function pipeline driver: the scalable counterpart to Compile.
//
// The front end (parse + check + IR build) is whole-program and runs
// serially; everything after it — opt.RunFunc → lower.LowerFunc →
// regalloc.AllocateFunc → sched.ScheduleFunc — consumes and produces one
// function at a time with no shared mutable state, so Pipeline fans
// functions out across a bounded worker pool and reassembles the machine
// program in IR order. Reassembly is deterministic: the canonical rendering
// of the result is byte-identical to what the serial Compile produces,
// whatever the worker interleaving, because each function's machine code
// depends only on its own IR and the immutable global environment, and the
// program is stitched in function-declaration order.
//
// With a FuncCache attached the same driver is incremental: each function's
// back end is keyed by FuncKeyOf (a content hash of the function's checked,
// freshly built IR plus the global environment and Config), compiled on a
// miss and stitched from the cache on a hit — so a one-function edit to an
// N-function program runs the back end exactly once.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/ir"
	"repro/internal/lower"
	"repro/internal/mach"
	"repro/internal/opt"
	"repro/internal/regalloc"
	"repro/internal/sched"
	"repro/internal/sem"
)

// funcEntryOverhead is the accounted per-entry bookkeeping cost beyond the
// encoded bytes (key, store entry, list element).
const funcEntryOverhead = 128

// CompileFunc runs the per-function back end on one freshly built IR
// function: optimization, code selection, then (per cfg) register
// allocation and scheduling. It mutates f in place (optimization rewrites
// the IR) and touches no other function, so distinct functions may be
// compiled concurrently.
func CompileFunc(f *ir.Func, cfg Config) (*mach.Func, error) {
	opt.RunFunc(f, cfg.Opt)
	mf := lower.LowerFunc(f)
	if cfg.RegAlloc {
		if err := regalloc.AllocateFunc(mf); err != nil {
			return nil, err
		}
	}
	if cfg.Sched {
		sched.ScheduleFunc(mf)
	}
	return mf, nil
}

// PipelineConfig tunes a Pipeline.
type PipelineConfig struct {
	// Workers bounds back-end concurrency; <= 0 means runtime.GOMAXPROCS(0).
	// The bound is shared across concurrent Compile calls on one Pipeline,
	// so a server compiling many programs at once still runs at most Workers
	// function back ends simultaneously.
	Workers int
	// Funcs, when non-nil, enables incremental recompilation through the
	// given per-function cache. A cache may be shared across Pipelines.
	Funcs *FuncCache
}

// Metrics describes one Compile call.
type Metrics struct {
	Funcs         int           // functions in the program
	FuncsCompiled int           // back ends actually run
	FuncsReused   int           // functions stitched from the cache
	Duration      time.Duration // wall time of the whole Compile
}

// Pipeline compiles programs function-by-function over a bounded worker
// pool, optionally reusing per-function artifacts from a FuncCache. It is
// safe for concurrent use.
type Pipeline struct {
	workers int
	slots   chan struct{}
	funcs   *FuncCache

	compiles      atomic.Int64
	funcsCompiled atomic.Int64
	funcsReused   atomic.Int64
	compileNanos  atomic.Int64
}

// NewPipeline creates a pipeline.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Pipeline{workers: w, slots: make(chan struct{}, w), funcs: cfg.Funcs}
}

// Workers returns the pool bound.
func (p *Pipeline) Workers() int { return p.workers }

// FuncCache returns the attached per-function cache, or nil.
func (p *Pipeline) FuncCache() *FuncCache { return p.funcs }

// PipelineStats are cumulative over the pipeline's lifetime.
type PipelineStats struct {
	Compiles      int64
	FuncsCompiled int64
	FuncsReused   int64
	CompileNanos  int64
}

// Stats returns the lifetime counters.
func (p *Pipeline) Stats() PipelineStats {
	return PipelineStats{
		Compiles:      p.compiles.Load(),
		FuncsCompiled: p.funcsCompiled.Load(),
		FuncsReused:   p.funcsReused.Load(),
		CompileNanos:  p.compileNanos.Load(),
	}
}

// Compile runs the full pipeline over MiniC source text. The Result's
// canonical machine-code rendering is byte-identical to Compile's for the
// same input. Result.IR is populated only when every function's back end
// actually ran (FuncsReused == 0); a stitched program carries no optimized
// IR, matching DecodeSpill.
func (p *Pipeline) Compile(name, src string, cfg Config) (*Result, Metrics, error) {
	start := time.Now()
	sp, err := sem.CheckSource(name, src)
	if err != nil {
		return nil, Metrics{}, err
	}
	prog := ir.Build(sp)
	n := len(prog.Funcs)
	m := Metrics{Funcs: n}

	var sig GlobalsSig
	if p.funcs != nil {
		sig = GlobalsSigOf(prog, cfg)
	}

	mfs := make([]*mach.Func, n)
	reused := make([]bool, n)
	errs := make([]error, n)
	if p.workers == 1 || n <= 1 {
		for i, f := range prog.Funcs {
			mfs[i], reused[i], errs[i] = p.compileOneSafe(sp, f, sig, cfg)
		}
	} else {
		var wg sync.WaitGroup
		for i, f := range prog.Funcs {
			wg.Add(1)
			go func(i int, f *ir.Func) {
				defer wg.Done()
				p.slots <- struct{}{}
				defer func() { <-p.slots }()
				mfs[i], reused[i], errs[i] = p.compileOneSafe(sp, f, sig, cfg)
			}(i, f)
		}
		wg.Wait()
	}

	// First error in function order, matching the serial driver.
	for _, err := range errs {
		if err != nil {
			return nil, m, err
		}
	}

	mp := lower.NewProgram(prog)
	mp.Funcs = mfs
	for _, r := range reused {
		if r {
			m.FuncsReused++
		} else {
			m.FuncsCompiled++
		}
	}
	m.Duration = time.Since(start)
	p.compiles.Add(1)
	p.funcsCompiled.Add(int64(m.FuncsCompiled))
	p.funcsReused.Add(int64(m.FuncsReused))
	p.compileNanos.Add(int64(m.Duration))

	res := &Result{File: sp.File.Source, Sem: sp, Mach: mp}
	if m.FuncsReused == 0 {
		res.IR = prog
	}
	return res, m, nil
}

// compileOneSafe runs compileOne with panic containment: a panic in one
// function's back end — a compiler bug, or the "compile.func" fault
// point's injected panic — surfaces as that function's compile error
// instead of killing the worker goroutine (and with it the whole
// process). The pipeline then fails the one Compile call; the service
// maps it to a compile-error response and stays up.
func (p *Pipeline) compileOneSafe(sp *sem.Program, f *ir.Func, sig GlobalsSig, cfg Config) (mf *mach.Func, reused bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			mf, reused = nil, false
			err = fmt.Errorf("compile: panic compiling %s: %v", f.Name, r)
		}
	}()
	if err := fault.Check("compile.func"); err != nil {
		return nil, false, fmt.Errorf("compile: %s: %w", f.Name, err)
	}
	return p.compileOne(sp, f, sig, cfg)
}

// compileOne compiles or reuses one function. f must be freshly built
// (pre-optimization) IR: the cache key is computed before the back end
// mutates it, and on a cache hit f is left untouched.
func (p *Pipeline) compileOne(sp *sem.Program, f *ir.Func, sig GlobalsSig, cfg Config) (*mach.Func, bool, error) {
	if p.funcs == nil {
		mf, err := CompileFunc(f, cfg)
		return mf, false, err
	}
	key := FuncKeyOf(f, sig)
	// On a miss the computing caller keeps the live *mach.Func it just
	// built (side channel), skipping an encode→decode round trip; only
	// other compilations pay the decode.
	var fresh *mach.Func
	data, hit, err := p.funcs.get(key, func() ([]byte, int64, error) {
		mf, err := CompileFunc(f, cfg)
		if err != nil {
			return nil, 0, err
		}
		enc, err := encodeFuncEntry(mf)
		if err != nil {
			return nil, 0, err
		}
		fresh = mf
		return enc, int64(len(enc)) + funcEntryOverhead, nil
	})
	if err != nil {
		return nil, false, err
	}
	if !hit {
		return fresh, false, nil
	}
	mf, err := decodeFuncEntry(data, sp)
	if err != nil {
		// A cache entry that fails to decode or verify against this front
		// end is unusable here; compile instead. f is still pristine.
		mf, err := CompileFunc(f, cfg)
		return mf, false, err
	}
	return mf, true, nil
}
