package compile

// Per-function cache keys for incremental compilation.
//
// A FuncKey is a content hash of everything the per-function back end
// (opt.RunFunc → lower.LowerFunc → regalloc.AllocateFunc →
// sched.ScheduleFunc) consumes for one function: the freshly built,
// unoptimized IR of the function (including every debugging annotation the
// builder emits), the function's declaration environment (locals table,
// scope extents, statement count), the global data environment (object IDs,
// types, layout, initializers — call lowering and address selection read
// these), and the pipeline Config. Two functions with equal keys compile to
// machine code with identical canonical renderings, so a cached per-function
// artifact keyed this way can be stitched into any program whose front end
// reproduces the key — even if the function moved to different source lines,
// because source positions are rebound from the current front end on decode
// (see decFunc) and are deliberately not part of the key.
//
// The hash covers object references via the same encoding the spill codec
// uses (encObj: dense per-function local IDs, per-program global IDs), which
// the checker assigns deterministically per function — so the key is stable
// across unrelated edits elsewhere in the file, which is exactly what makes
// one-function edits recompile one function.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"

	"repro/internal/ast"
	"repro/internal/ir"
)

// funcKeyVersion guards the canonical hash layout; bump on any change to
// what or how hashFunc/GlobalsSigOf write.
const funcKeyVersion = 2

// FuncKey identifies one function's compiled artifact by content.
type FuncKey [sha256.Size]byte

func (k FuncKey) String() string { return fmt.Sprintf("%x", k[:8]) }

// GlobalsSig digests the per-program environment shared by every function:
// the global objects (order, IDs, names, types, addressedness), their
// initializers, and the Config. It is computed once per compilation and
// folded into each function's key.
type GlobalsSig [sha256.Size]byte

// GlobalsSigOf hashes the global environment of p under cfg.
func GlobalsSigOf(p *ir.Program, cfg Config) GlobalsSig {
	h := sha256.New()
	w := keyWriter{h: h}
	w.int(funcKeyVersion)
	w.int(spillVersion)
	// Config is a flat struct of value fields; %+v is a canonical rendering.
	w.str(fmt.Sprintf("%+v", cfg))
	w.int(len(p.Globals))
	for _, g := range p.Globals {
		w.obj(g)
	}
	w.int(len(p.GlobalInit))
	for _, g := range sortedObjs(p.GlobalInit) {
		w.i32(encObj(g))
		w.opd(p.GlobalInit[g])
	}
	var sig GlobalsSig
	h.Sum(sig[:0])
	return sig
}

// FuncKeyOf hashes one function's back-end input: its declaration
// environment plus its pre-optimization IR, scoped by the program-wide
// signature. Call it on the freshly built IR, before opt.RunFunc mutates it.
func FuncKeyOf(f *ir.Func, sig GlobalsSig) FuncKey {
	h := sha256.New()
	w := keyWriter{h: h}
	w.bytes(sig[:])

	// Declaration environment: the analyses and the lowering read the
	// locals table, scope extents and statement count. The function name is
	// hashed because decFunc rebinds the artifact to the current Decl by
	// name.
	w.str(f.Name)
	w.int(len(f.Decl.Params))
	w.str(f.Decl.Ret.String())
	w.int(f.Decl.NumStmts)
	w.int(len(f.Decl.Locals))
	for _, o := range f.Decl.Locals {
		w.obj(o)
	}

	// IR shape.
	w.int(f.NumTemps)
	w.int(len(f.FrameObjects))
	for _, o := range f.FrameObjects {
		w.i32(encObj(o))
	}
	blockIdx := make(map[*ir.Block]int32, len(f.Blocks))
	for i, b := range f.Blocks {
		blockIdx[b] = int32(i)
	}
	w.int(len(f.Blocks))
	if f.Entry != nil {
		w.i32(blockIdx[f.Entry])
	} else {
		w.i32(-1)
	}
	for _, b := range f.Blocks {
		w.int(b.ID)
		w.int(len(b.Succs))
		for _, s := range b.Succs {
			w.i32(blockIdx[s])
		}
		w.int(len(b.Instrs))
		for _, in := range b.Instrs {
			w.instr(in)
		}
	}

	var k FuncKey
	h.Sum(k[:0])
	return k
}

// keyWriter streams canonical, self-delimiting values into a hash.
type keyWriter struct {
	h   hash.Hash
	buf [8]byte
}

func (w *keyWriter) bytes(b []byte) { w.h.Write(b) }

func (w *keyWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.h.Write(w.buf[:])
}

func (w *keyWriter) int(v int)     { w.u64(uint64(int64(v))) }
func (w *keyWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *keyWriter) i32(v int32)   { w.u64(uint64(int64(v))) }
func (w *keyWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *keyWriter) bool(v bool) {
	if v {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *keyWriter) str(s string) {
	w.int(len(s))
	w.h.Write([]byte(s))
}

// obj hashes an object declaration (identity, type, storage class and scope
// extent). References from instruction operands use the compact encObj ref
// instead; full declarations are hashed once per table.
func (w *keyWriter) obj(o *ast.Object) {
	w.i32(encObj(o))
	if o == nil {
		return
	}
	w.str(o.Name)
	w.int(int(o.Kind))
	w.str(o.Type.String())
	// StructType.String() is just "struct <name>": the layout (ordered field
	// names and types) determines member offsets and the SROA decomposition,
	// so it must be part of the key — reordering fields must miss the cache.
	if st, ok := o.Type.(*ast.StructType); ok {
		w.int(len(st.Fields))
		for _, fld := range st.Fields {
			w.str(fld.Name)
			w.str(fld.Type.String())
		}
	}
	w.bool(o.Addressed)
	w.int(o.ScopeStart)
	w.int(o.ScopeEnd)
	// Member objects carry their aggregate linkage: which base they belong
	// to and at which field slot (drives unsplit memory access offsets).
	w.i32(encObj(o.Base))
	w.int(o.FieldIdx)
}

func (w *keyWriter) opd(o ir.Operand) {
	w.int(int(o.Kind))
	w.int(int(o.Ty))
	w.int(o.TID)
	w.i32(encObj(o.Obj))
	w.i64(o.Int)
	w.f64(o.Fl)
}

func (w *keyWriter) instr(in *ir.Instr) {
	w.int(int(in.Kind))
	w.int(int(in.Op))
	w.opd(in.Dst)
	w.opd(in.A)
	w.opd(in.B)
	w.i64(in.Off)
	w.i32(encObj(in.AddrObj))
	w.str(in.Callee)
	w.int(len(in.Args))
	for _, a := range in.Args {
		w.opd(a)
	}
	w.int(len(in.PrintFmt))
	for _, a := range in.PrintFmt {
		w.bool(a.IsStr)
		w.str(a.Str)
		w.opd(a.Val)
	}
	w.int(in.ParamIdx)
	w.i32(encObj(in.MarkObj))
	w.int(in.Stmt)
	w.int(in.OrigIdx)
	w.bool(in.Ann.Hoisted)
	w.bool(in.Ann.Sunk)
	w.str(in.Ann.InsertedBy)
	w.i32(encObj(in.Ann.ReplacedVar))
	if r := in.Ann.Recover; r != nil {
		w.bool(true)
		w.i32(encObj(r.Var))
		w.i64(r.A)
		w.i64(r.B)
	} else {
		w.bool(false)
	}
}
