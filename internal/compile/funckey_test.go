package compile_test

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/debugger"
)

// structSrc builds a workload whose struct layout can be permuted without
// changing anything else: reordering the fields of S changes member offsets
// (and the SROA decomposition) but leaves every token of the function
// bodies identical.
func structSrc(fields string) string {
	return `
struct S { ` + fields + ` };
int untouched(int x) { int y; y = x * 7 + 2; return y; }
int use() {
  struct S s;
  s.a = 3;
  s.b = 5;
  return s.a * 10 + s.b;
}
int main() {
  int r;
  r = use() + untouched(4);
  print(r);
  return r;
}
`
}

// TestFuncKeyStructLayout asserts the per-function cache contract for
// aggregates: a struct field reorder changes the layout every struct-using
// function compiles against, so those functions must MISS the FuncCache,
// while functions that never touch the struct still hit.
func TestFuncKeyStructLayout(t *testing.T) {
	for cfgName, cfg := range testConfigs() {
		pipe := compile.NewPipeline(compile.PipelineConfig{
			Workers: 8,
			Funcs:   compile.NewFuncCache(compile.FuncCacheConfig{Shards: 4}),
		})
		a := structSrc("int a; int b;")
		b := structSrc("int b; int a;")

		if _, m, err := pipe.Compile("p", a, cfg); err != nil {
			t.Fatalf("%s: cold: %v", cfgName, err)
		} else if m.FuncsReused != 0 {
			t.Fatalf("%s: cold compile reused %d funcs", cfgName, m.FuncsReused)
		}

		// Same source again: everything must be stitched from the cache.
		if _, m, err := pipe.Compile("p", a, cfg); err != nil {
			t.Fatalf("%s: warm: %v", cfgName, err)
		} else if m.FuncsReused != m.Funcs {
			t.Errorf("%s: warm compile reused %d of %d funcs", cfgName, m.FuncsReused, m.Funcs)
		}

		// Field reorder: use() and main() see a different layout and must
		// recompile; untouched() has no struct in its environment and hits.
		res, m, err := pipe.Compile("p", b, cfg)
		if err != nil {
			t.Fatalf("%s: reordered: %v", cfgName, err)
		}
		if m.FuncsCompiled < 1 {
			t.Errorf("%s: struct field reorder reused every func (%d of %d); layout is not in the key",
				cfgName, m.FuncsReused, m.Funcs)
		}
		if m.FuncsReused < 1 {
			t.Errorf("%s: reorder recompiled all %d funcs; untouched() should still hit", cfgName, m.Funcs)
		}

		// And the stitched result must match a from-scratch serial compile
		// of the reordered source.
		want, err := compile.Compile("p", b, cfg)
		if err != nil {
			t.Fatalf("%s: serial reordered: %v", cfgName, err)
		}
		if machDigest(t, res) != machDigest(t, want) {
			t.Errorf("%s: stitched reordered program differs from serial compile", cfgName)
		}

		// Beyond the machine code, the debug-info story must be identical:
		// classify every variable (including the per-field sub-reports of
		// the SROA'd struct) at a stop inside use() on both results.
		if got, want := classifyAll(t, res), classifyAll(t, want); !slicesEqual(got, want) {
			t.Errorf("%s: parallel-8 classification differs from serial:\n got: %q\nwant: %q",
				cfgName, got, want)
		}
	}
}

// classifyAll stops at use()'s return and renders every in-scope report,
// fields included.
func classifyAll(t *testing.T, res *compile.Result) []string {
	t.Helper()
	d, err := debugger.New(res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BreakAtLine(8); err != nil {
		t.Fatal(err)
	}
	if bp, err := d.Continue(); err != nil || bp == nil {
		t.Fatalf("continue: %v %v", bp, err)
	}
	rs, err := d.Info()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, r := range rs {
		out = append(out, r.Display())
		for _, fr := range r.Fields {
			out = append(out, fr.Display())
		}
	}
	return out
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
