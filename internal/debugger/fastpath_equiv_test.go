package debugger

import (
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/debuginfo"
	"repro/internal/randprog"
	"repro/internal/vm"
)

// The predecoded bitmap execution path (Continue/Step over RunBreaks)
// must be observationally identical to the closure-predicate reference
// path (ContinueRef/StepRef over RunUntilFunc): same stop sequence, same
// instruction and cycle counts at every stop, same program output and
// exit value. These tests drive both paths over a corpus of generated
// programs under every optimization configuration.

type stopTrace struct {
	stops  []string // "fn:stmt:line" per stop, or "exit"
	steps  []int64
	cycles []int64
	output string
	exit   int64
}

func (tr *stopTrace) record(bp *Breakpoint, v *vm.VM) {
	if bp == nil {
		tr.stops = append(tr.stops, "exit")
	} else {
		tr.stops = append(tr.stops, fmt.Sprintf("%s:%d:%d", bp.Fn.Name, bp.Stmt, bp.Line))
	}
	tr.steps = append(tr.steps, v.Steps)
	tr.cycles = append(tr.cycles, v.Cycles)
}

// traceRun drives one debugger to completion, recording every stop.
// mode selects the engine: "fast" uses the bitmap path, "ref" the
// closure-predicate path. Breakpoints are set at the given (func, stmt)
// pairs; every 3rd resume is a single step instead of a continue so the
// step rule is exercised mid-run too.
func traceRun(t *testing.T, d *Debugger, mode string, brk [][2]any, maxStops int) *stopTrace {
	t.Helper()
	for _, b := range brk {
		// Breakpoints that don't resolve (e.g. a function optimized into
		// nothing) must fail identically on both paths; BreakAtStmt is
		// shared, so an error here is fine as long as both runs see it.
		d.BreakAtStmt(b[0].(string), b[1].(int))
	}
	tr := &stopTrace{}
	for i := 0; i < maxStops; i++ {
		var bp *Breakpoint
		var err error
		useStep := i%3 == 2 && d.Stopped() != nil
		switch {
		case useStep && mode == "fast":
			bp, err = d.Step()
		case useStep:
			bp, err = d.StepRef()
		case mode == "fast":
			bp, err = d.Continue()
		default:
			bp, err = d.ContinueRef()
		}
		if err != nil {
			tr.stops = append(tr.stops, "err:"+err.Error())
			break
		}
		tr.record(bp, d.VM)
		if bp == nil {
			break
		}
	}
	tr.output = d.VM.Output()
	if d.VM.Halted() {
		tr.exit = d.VM.ExitValue()
	}
	return tr
}

func equivConfigs() map[string]compile.Config {
	return map[string]compile.Config{
		"O0":        compile.O0(),
		"O2-noregs": compile.O2NoRegAlloc(),
		"O2-full":   compile.O2(),
	}
}

// TestFastPathEquivRandprog runs 50 generated programs under all three
// configurations, comparing the fast and reference engines stop for
// stop.
func TestFastPathEquivRandprog(t *testing.T) {
	const seeds = 50
	for seed := int64(0); seed < seeds; seed++ {
		src := randprog.Gen(seed)
		for name, cfg := range equivConfigs() {
			res, err := compile.Compile(fmt.Sprintf("rand%d.mc", seed), src, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: compile: %v", seed, name, err)
			}
			// Break in main and at a spread of statements: some resolve,
			// some don't, and resolution must agree between runs anyway
			// since BreakAtStmt is shared.
			brk := [][2]any{{"main", 0}, {"main", 3}, {"f0", 1}, {"f1", 2}}

			dFast, err := New(res)
			if err != nil {
				t.Fatalf("seed %d %s: New: %v", seed, name, err)
			}
			resRef, err := compile.Compile(fmt.Sprintf("rand%d.mc", seed), src, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: compile(ref): %v", seed, name, err)
			}
			dRef, err := New(resRef)
			if err != nil {
				t.Fatalf("seed %d %s: New(ref): %v", seed, name, err)
			}

			fast := traceRun(t, dFast, "fast", brk, 200)
			ref := traceRun(t, dRef, "ref", brk, 200)

			if len(fast.stops) != len(ref.stops) {
				t.Fatalf("seed %d %s: stop count %d vs %d\nfast: %v\nref:  %v",
					seed, name, len(fast.stops), len(ref.stops), fast.stops, ref.stops)
			}
			for i := range fast.stops {
				if fast.stops[i] != ref.stops[i] {
					t.Fatalf("seed %d %s: stop %d: fast %q vs ref %q",
						seed, name, i, fast.stops[i], ref.stops[i])
				}
				if fast.steps[i] != ref.steps[i] {
					t.Errorf("seed %d %s: stop %d (%s): Steps %d vs %d",
						seed, name, i, fast.stops[i], fast.steps[i], ref.steps[i])
				}
				if fast.cycles[i] != ref.cycles[i] {
					t.Errorf("seed %d %s: stop %d (%s): Cycles %d vs %d",
						seed, name, i, fast.stops[i], fast.cycles[i], ref.cycles[i])
				}
			}
			if fast.output != ref.output {
				t.Errorf("seed %d %s: output differs\nfast: %q\nref:  %q",
					seed, name, fast.output, ref.output)
			}
			if fast.exit != ref.exit {
				t.Errorf("seed %d %s: exit %d vs %d", seed, name, fast.exit, ref.exit)
			}
		}
	}
}

// stopRec is one stop of a continue-only run: which breakpoint fired,
// whether it resolved to the statement's own code (no fallback), and the
// per-field reports of every struct aggregate in scope.
type stopRec struct {
	key   string // "fn:stmt" of the breakpoint that fired
	exact bool   // breakpoint location is the statement's own code
	snap  map[string]*VarReport
}

// continueTrace drives a debugger with plain Continues (no stepping, so
// the stop schedule is comparable across *configurations*, not just
// engines), recording every stop.
func continueTrace(t *testing.T, d *Debugger, brk [][2]any, maxStops int) []stopRec {
	t.Helper()
	for _, b := range brk {
		d.BreakAtStmt(b[0].(string), b[1].(int))
	}
	var out []stopRec
	for i := 0; i < maxStops; i++ {
		bp, err := d.Continue()
		if err != nil || bp == nil {
			return out
		}
		r := stopRec{
			key:   fmt.Sprintf("%s:%d", bp.Fn.Name, bp.Stmt),
			exact: debuginfo.StmtOfLoc(bp.Loc) == bp.Stmt,
			snap:  map[string]*VarReport{},
		}
		if reports, err := d.Info(); err == nil {
			for _, rep := range reports {
				for _, fr := range rep.Fields {
					r.snap[fr.Name] = fr
				}
			}
		}
		out = append(out, r)
	}
	return out
}

// TestSROAPerFieldCurrentVsO0 is the end-to-end honesty check for
// per-field classification: over a ≥50-seed corpus of struct-bearing
// generated programs, every struct field the optimized-build debugger
// reports as *current* (and every recovered value it reconstructs) must
// equal the value the unoptimized build shows at the same dynamic point.
//
// Alignment: both builds run the same breakpoint schedule under plain
// Continue, and values are compared at the *first* arrival at each
// breakpoint. Execution is deterministic and stops don't perturb it, so
// the first time control reaches a statement's own code is the same
// source-level event in both builds — even when unrolling or loop
// inversion changes how often the breakpoint fires afterwards (clones
// get fresh emission indices, so the breakpoint location stays on the
// original copy, which executes first). Breakpoints that resolved by
// falling back to a later statement are skipped: the two builds may
// then be stopped at genuinely different source points.
func TestSROAPerFieldCurrentVsO0(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 10
	}
	// Break where struct aggregates are in scope: helpers take struct
	// params (in scope from entry) and main declares its struct locals a
	// few statements in. Unresolvable breakpoints (a seed without h2, a
	// main shorter than 20 statements) simply don't arm — in both builds.
	brk := [][2]any{
		{"main", 8}, {"main", 10}, {"main", 12}, {"main", 14}, {"main", 16},
		{"main", 18}, {"main", 20}, {"main", 24}, {"main", 28},
		{"h0", 2}, {"h0", 5}, {"h0", 8}, {"h1", 2}, {"h1", 5}, {"h2", 2},
	}
	optCfgs := map[string]compile.Config{
		"O2-noregs": compile.O2NoRegAlloc(),
		"O2-full":   compile.O2(),
	}
	checkedCurrent, checkedRecovered := 0, 0
	for seed := int64(0); seed < seeds; seed++ {
		src := randprog.Gen(seed)
		resO0, err := compile.Compile(fmt.Sprintf("rand%d.mc", seed), src, compile.O0())
		if err != nil {
			t.Fatalf("seed %d O0: compile: %v", seed, err)
		}
		dO0, err := New(resO0)
		if err != nil {
			t.Fatalf("seed %d O0: New: %v", seed, err)
		}
		o0trace := continueTrace(t, dO0, brk, 120)
		firstO0 := map[string]int{}
		for i, r := range o0trace {
			if _, ok := firstO0[r.key]; !ok {
				firstO0[r.key] = i
			}
		}

		for name, cfg := range optCfgs {
			res, err := compile.Compile(fmt.Sprintf("rand%d.mc", seed), src, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: compile: %v", seed, name, err)
			}
			d, err := New(res)
			if err != nil {
				t.Fatalf("seed %d %s: New: %v", seed, name, err)
			}
			seen := map[string]bool{}
			for _, rec := range continueTrace(t, d, brk, 120) {
				if seen[rec.key] {
					continue // later arrivals are not dynamically aligned
				}
				seen[rec.key] = true
				j, ok := firstO0[rec.key]
				if !ok || !rec.exact || !o0trace[j].exact {
					continue
				}
				for fname, fr := range rec.snap {
					o0 := o0trace[j].snap[fname]
					if o0 == nil || !o0.HasVal {
						continue
					}
					if fr.Class.State == core.Current && fr.HasVal {
						if fr.Val != o0.Val {
							t.Errorf("seed %d %s stop %s: field %s current with %v but O0 shows %v",
								seed, name, rec.key, fname, fr.Val, o0.Val)
						}
						checkedCurrent++
					}
					if fr.HasRecovered {
						if fr.RecoveredVal != o0.Val {
							t.Errorf("seed %d %s stop %s: field %s recovered as %v but O0 shows %v",
								seed, name, rec.key, fname, fr.RecoveredVal, o0.Val)
						}
						checkedRecovered++
					}
				}
			}
		}
	}
	// The corpus must actually exercise the property: a generator change
	// that stops emitting structs would otherwise pass vacuously.
	floor := 200
	if testing.Short() {
		floor = 20
	}
	if checkedCurrent < floor {
		t.Fatalf("cross-checked only %d current per-field verdicts (want >= %d): corpus too thin",
			checkedCurrent, floor)
	}
	t.Logf("cross-checked %d current and %d recovered per-field values", checkedCurrent, checkedRecovered)
}

// TestFastPathStepEquiv single-steps a small program from entry to exit
// on both engines and requires identical stop sequences — the pure
// step-rule path, no breakpoints at all.
func TestFastPathStepEquiv(t *testing.T) {
	src := `
int g;

int twice(int v) {
	return v + v;
}

int main() {
	int i;
	int s = 0;
	for (i = 0; i < 6; i = i + 1) {
		s = s + twice(i);
		if (s > 12) {
			g = g + 1;
		}
	}
	print(s);
	return s;
}
`
	for name, cfg := range equivConfigs() {
		dFast := session(t, src, cfg)
		dRef := session(t, src, cfg)
		var fast, ref stopTrace
		for i := 0; i < 400; i++ {
			bp, err := dFast.Step()
			if err != nil {
				t.Fatalf("%s: fast Step: %v", name, err)
			}
			fast.record(bp, dFast.VM)
			if bp == nil {
				break
			}
		}
		for i := 0; i < 400; i++ {
			bp, err := dRef.StepRef()
			if err != nil {
				t.Fatalf("%s: ref StepRef: %v", name, err)
			}
			ref.record(bp, dRef.VM)
			if bp == nil {
				break
			}
		}
		if fmt.Sprint(fast.stops) != fmt.Sprint(ref.stops) {
			t.Fatalf("%s: step sequences differ\nfast: %v\nref:  %v", name, fast.stops, ref.stops)
		}
		for i := range fast.steps {
			if fast.steps[i] != ref.steps[i] || fast.cycles[i] != ref.cycles[i] {
				t.Fatalf("%s: counters diverge at stop %d: steps %d/%d cycles %d/%d",
					name, i, fast.steps[i], ref.steps[i], fast.cycles[i], ref.cycles[i])
			}
		}
		if dFast.VM.Output() != dRef.VM.Output() {
			t.Fatalf("%s: output %q vs %q", name, dFast.VM.Output(), dRef.VM.Output())
		}
	}
}
