package debugger

import (
	"fmt"
	"testing"

	"repro/internal/compile"
	"repro/internal/randprog"
	"repro/internal/vm"
)

// The predecoded bitmap execution path (Continue/Step over RunBreaks)
// must be observationally identical to the closure-predicate reference
// path (ContinueRef/StepRef over RunUntilFunc): same stop sequence, same
// instruction and cycle counts at every stop, same program output and
// exit value. These tests drive both paths over a corpus of generated
// programs under every optimization configuration.

type stopTrace struct {
	stops  []string // "fn:stmt:line" per stop, or "exit"
	steps  []int64
	cycles []int64
	output string
	exit   int64
}

func (tr *stopTrace) record(bp *Breakpoint, v *vm.VM) {
	if bp == nil {
		tr.stops = append(tr.stops, "exit")
	} else {
		tr.stops = append(tr.stops, fmt.Sprintf("%s:%d:%d", bp.Fn.Name, bp.Stmt, bp.Line))
	}
	tr.steps = append(tr.steps, v.Steps)
	tr.cycles = append(tr.cycles, v.Cycles)
}

// traceRun drives one debugger to completion, recording every stop.
// mode selects the engine: "fast" uses the bitmap path, "ref" the
// closure-predicate path. Breakpoints are set at the given (func, stmt)
// pairs; every 3rd resume is a single step instead of a continue so the
// step rule is exercised mid-run too.
func traceRun(t *testing.T, d *Debugger, mode string, brk [][2]any, maxStops int) *stopTrace {
	t.Helper()
	for _, b := range brk {
		// Breakpoints that don't resolve (e.g. a function optimized into
		// nothing) must fail identically on both paths; BreakAtStmt is
		// shared, so an error here is fine as long as both runs see it.
		d.BreakAtStmt(b[0].(string), b[1].(int))
	}
	tr := &stopTrace{}
	for i := 0; i < maxStops; i++ {
		var bp *Breakpoint
		var err error
		useStep := i%3 == 2 && d.Stopped() != nil
		switch {
		case useStep && mode == "fast":
			bp, err = d.Step()
		case useStep:
			bp, err = d.StepRef()
		case mode == "fast":
			bp, err = d.Continue()
		default:
			bp, err = d.ContinueRef()
		}
		if err != nil {
			tr.stops = append(tr.stops, "err:"+err.Error())
			break
		}
		tr.record(bp, d.VM)
		if bp == nil {
			break
		}
	}
	tr.output = d.VM.Output()
	if d.VM.Halted() {
		tr.exit = d.VM.ExitValue()
	}
	return tr
}

func equivConfigs() map[string]compile.Config {
	return map[string]compile.Config{
		"O0":        compile.O0(),
		"O2-noregs": compile.O2NoRegAlloc(),
		"O2-full":   compile.O2(),
	}
}

// TestFastPathEquivRandprog runs 50 generated programs under all three
// configurations, comparing the fast and reference engines stop for
// stop.
func TestFastPathEquivRandprog(t *testing.T) {
	const seeds = 50
	for seed := int64(0); seed < seeds; seed++ {
		src := randprog.Gen(seed)
		for name, cfg := range equivConfigs() {
			res, err := compile.Compile(fmt.Sprintf("rand%d.mc", seed), src, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: compile: %v", seed, name, err)
			}
			// Break in main and at a spread of statements: some resolve,
			// some don't, and resolution must agree between runs anyway
			// since BreakAtStmt is shared.
			brk := [][2]any{{"main", 0}, {"main", 3}, {"f0", 1}, {"f1", 2}}

			dFast, err := New(res)
			if err != nil {
				t.Fatalf("seed %d %s: New: %v", seed, name, err)
			}
			resRef, err := compile.Compile(fmt.Sprintf("rand%d.mc", seed), src, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: compile(ref): %v", seed, name, err)
			}
			dRef, err := New(resRef)
			if err != nil {
				t.Fatalf("seed %d %s: New(ref): %v", seed, name, err)
			}

			fast := traceRun(t, dFast, "fast", brk, 200)
			ref := traceRun(t, dRef, "ref", brk, 200)

			if len(fast.stops) != len(ref.stops) {
				t.Fatalf("seed %d %s: stop count %d vs %d\nfast: %v\nref:  %v",
					seed, name, len(fast.stops), len(ref.stops), fast.stops, ref.stops)
			}
			for i := range fast.stops {
				if fast.stops[i] != ref.stops[i] {
					t.Fatalf("seed %d %s: stop %d: fast %q vs ref %q",
						seed, name, i, fast.stops[i], ref.stops[i])
				}
				if fast.steps[i] != ref.steps[i] {
					t.Errorf("seed %d %s: stop %d (%s): Steps %d vs %d",
						seed, name, i, fast.stops[i], fast.steps[i], ref.steps[i])
				}
				if fast.cycles[i] != ref.cycles[i] {
					t.Errorf("seed %d %s: stop %d (%s): Cycles %d vs %d",
						seed, name, i, fast.stops[i], fast.cycles[i], ref.cycles[i])
				}
			}
			if fast.output != ref.output {
				t.Errorf("seed %d %s: output differs\nfast: %q\nref:  %q",
					seed, name, fast.output, ref.output)
			}
			if fast.exit != ref.exit {
				t.Errorf("seed %d %s: exit %d vs %d", seed, name, fast.exit, ref.exit)
			}
		}
	}
}

// TestFastPathStepEquiv single-steps a small program from entry to exit
// on both engines and requires identical stop sequences — the pure
// step-rule path, no breakpoints at all.
func TestFastPathStepEquiv(t *testing.T) {
	src := `
int g;

int twice(int v) {
	return v + v;
}

int main() {
	int i;
	int s = 0;
	for (i = 0; i < 6; i = i + 1) {
		s = s + twice(i);
		if (s > 12) {
			g = g + 1;
		}
	}
	print(s);
	return s;
}
`
	for name, cfg := range equivConfigs() {
		dFast := session(t, src, cfg)
		dRef := session(t, src, cfg)
		var fast, ref stopTrace
		for i := 0; i < 400; i++ {
			bp, err := dFast.Step()
			if err != nil {
				t.Fatalf("%s: fast Step: %v", name, err)
			}
			fast.record(bp, dFast.VM)
			if bp == nil {
				break
			}
		}
		for i := 0; i < 400; i++ {
			bp, err := dRef.StepRef()
			if err != nil {
				t.Fatalf("%s: ref StepRef: %v", name, err)
			}
			ref.record(bp, dRef.VM)
			if bp == nil {
				break
			}
		}
		if fmt.Sprint(fast.stops) != fmt.Sprint(ref.stops) {
			t.Fatalf("%s: step sequences differ\nfast: %v\nref:  %v", name, fast.stops, ref.stops)
		}
		for i := range fast.steps {
			if fast.steps[i] != ref.steps[i] || fast.cycles[i] != ref.cycles[i] {
				t.Fatalf("%s: counters diverge at stop %d: steps %d/%d cycles %d/%d",
					name, i, fast.steps[i], ref.steps[i], fast.cycles[i], ref.cycles[i])
			}
		}
		if dFast.VM.Output() != dRef.VM.Output() {
			t.Fatalf("%s: output %q vs %q", name, dFast.VM.Output(), dRef.VM.Output())
		}
	}
}
