// Package debugger implements the source-level debugger of the paper's
// model: non-invasive (it debugs exactly the code the optimizing compiler
// produced, with no extra instructions), running the program on the
// simulator, mapping source statements to breakpoint locations through the
// debug tables, and classifying every queried variable with the core
// analyses before displaying it — so the user is never misled: an
// endangered value is always accompanied by a warning.
package debugger

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/debuginfo"
	"repro/internal/mach"
	"repro/internal/vm"
)

// Breakpoint is one armed source breakpoint. A statement may have several
// code instances (loop unrolling and peeling clone its code into new
// blocks); the breakpoint is armed at all of them, because the source-
// level contract is "stop whenever this statement is about to execute".
type Breakpoint struct {
	Fn   *mach.Func
	Stmt int
	Line int
	// Loc is the canonical instance while the breakpoint is merely armed.
	// On the *hit* breakpoint returned by Continue/Step (and held by
	// Stopped), Loc is the instance actually reached — classification and
	// value reads are taken there, where the machine state lives.
	Loc debuginfo.Loc
	// Locs is every armed instance (it always contains Loc). Empty means
	// single-instance (hand-built breakpoints); only Loc is armed then.
	Locs []debuginfo.Loc
}

// Debugger drives one debug session. Multiple sessions may share one
// compile.Result (and one core.AnalysisSet, via NewShared): the compiled
// program and its analyses are immutable, while all mutable run state
// lives in the per-session VM.
type Debugger struct {
	Res *compile.Result
	VM  *vm.VM

	analyses *core.AnalysisSet
	breaks   []*Breakpoint
	stopped  *Breakpoint

	// bset is the breakpoint bitmap compiled from breaks, consumed by the
	// VM's predecoded fast path; it is invalidated whenever breaks change
	// and rebuilt on the next Continue.
	bset *vm.BreakSet
}

// New prepares a session for a compiled program with its own analysis set.
func New(res *compile.Result) (*Debugger, error) {
	return NewShared(res, core.NewAnalysisSet())
}

// NewShared prepares a session that draws per-function analyses from set,
// so concurrent sessions over the same compiled program solve each
// function's data-flow problems once.
func NewShared(res *compile.Result, set *core.AnalysisSet) (*Debugger, error) {
	m, err := vm.New(res.Mach)
	if err != nil {
		return nil, err
	}
	return &Debugger{
		Res:      res,
		VM:       m,
		analyses: set,
	}, nil
}

// analysisOf returns the core analyses for one function, building them on
// first use.
func (d *Debugger) analysisOf(f *mach.Func) *core.Analysis {
	return d.analyses.Of(f)
}

// stmtLine returns the source line of statement s in fn.
func (d *Debugger) stmtLine(fn *mach.Func, s int) int {
	stmts := ast.StmtsByID(fn.Decl)
	if s < 0 || s >= len(stmts) || stmts[s] == nil {
		return 0
	}
	return d.Res.File.Position(stmts[s].Span().Start).Line
}

// BreakAtLine sets a breakpoint at the first statement on the given source
// line.
func (d *Debugger) BreakAtLine(line int) (*Breakpoint, error) {
	for _, f := range d.Res.Mach.Funcs {
		stmts := ast.StmtsByID(f.Decl)
		for s, st := range stmts {
			if st == nil {
				continue
			}
			if d.Res.File.Position(st.Span().Start).Line == line {
				return d.BreakAtStmt(f.Name, s)
			}
		}
	}
	return nil, fmt.Errorf("debugger: %w %d", ErrNoSuchLine, line)
}

// BreakAtStmt sets a breakpoint at statement stmt of the named function.
func (d *Debugger) BreakAtStmt(funcName string, stmt int) (*Breakpoint, error) {
	f := d.Res.Mach.LookupFunc(funcName)
	if f == nil {
		return nil, fmt.Errorf("debugger: %w: %q", ErrNoSuchFunc, funcName)
	}
	a := d.analysisOf(f)
	loc, ok := a.Table.LocOf(stmt)
	if !ok {
		return nil, fmt.Errorf("debugger: %w: statement %d of %s", ErrNoStmtLoc, stmt, funcName)
	}
	locs, _ := a.Table.LocsOf(stmt)
	bp := &Breakpoint{Fn: f, Stmt: stmt, Line: d.stmtLine(f, stmt), Loc: loc, Locs: locs}
	d.breaks = append(d.breaks, bp)
	d.bset = nil // recompile the bitmap on the next Continue
	return bp, nil
}

// compileBreaks builds the breakpoint bitmap from the armed breakpoints.
// It reports false if any breakpoint location does not map into the
// predecoded layout, in which case the caller must use the predicate
// path (the bitmap would silently skip that breakpoint).
func (d *Debugger) compileBreaks() bool {
	bs := d.VM.NewBreakSet()
	for _, bp := range d.breaks {
		locs := bp.Locs
		if len(locs) == 0 {
			locs = []debuginfo.Loc{bp.Loc}
		}
		for _, l := range locs {
			if !bs.Add(bp.Fn, l.Block, l.Idx) {
				return false
			}
		}
	}
	d.bset = bs
	return true
}

// Continue resumes execution until a breakpoint or program exit. It
// returns the breakpoint hit, or nil when the program halted. Execution
// takes the VM's predecoded bitmap fast path; ContinueRef is the
// reference predicate implementation it is differentially tested against.
func (d *Debugger) Continue() (*Breakpoint, error) {
	if d.bset == nil && !d.compileBreaks() {
		return d.ContinueRef()
	}
	// Don't immediately re-trigger the breakpoint we stopped at: resuming
	// from a breakpoint executes its first instruction unconditionally.
	skip := d.stopped != nil && d.matches(d.VM.Position()) != nil
	if err := d.VM.RunBreaks(d.bset, skip); err != nil {
		return nil, err
	}
	return d.afterRun()
}

// ContinueRef is the reference implementation of Continue over the
// closure-predicate RunUntilFunc path: it builds a Pos and evaluates
// every armed breakpoint before each instruction. It is the differential
// oracle the fast path is held byte-identical against (and the baseline
// of the BENCH_vm.json comparison).
func (d *Debugger) ContinueRef() (*Breakpoint, error) {
	first := true
	err := d.VM.RunUntilFunc(func(p vm.Pos) bool {
		if first {
			// Don't immediately re-trigger the breakpoint we stopped at.
			first = false
			if d.stopped != nil && d.matches(p) != nil {
				return false
			}
		}
		return d.matches(p) != nil
	})
	if err != nil {
		return nil, err
	}
	return d.afterRun()
}

// afterRun records the stop (or exit) after a run-to-breakpoint. The
// recorded stop is a copy of the armed breakpoint with Loc set to the
// instance actually reached, so reporting classifies and reads values at
// the true machine position rather than the canonical table location.
func (d *Debugger) afterRun() (*Breakpoint, error) {
	if d.VM.Halted() {
		d.stopped = nil
		return nil, nil
	}
	pos := d.VM.Position()
	if bp := d.matches(pos); bp != nil {
		hit := *bp
		hit.Loc = debuginfo.Loc{Block: pos.Block, Idx: pos.Idx}
		d.stopped = &hit
	} else {
		d.stopped = nil
	}
	return d.stopped, nil
}

func (d *Debugger) matches(p vm.Pos) *Breakpoint {
	for _, bp := range d.breaks {
		if p.Fn != bp.Fn {
			continue
		}
		if len(bp.Locs) == 0 {
			if p.Block == bp.Loc.Block && p.Idx == bp.Loc.Idx {
				return bp
			}
			continue
		}
		for _, l := range bp.Locs {
			if p.Block == l.Block && p.Idx == l.Idx {
				return bp
			}
		}
	}
	return nil
}

// Stopped returns the breakpoint the session is currently stopped at.
func (d *Debugger) Stopped() *Breakpoint { return d.stopped }

// Step advances execution to the beginning of the next source statement
// (stepping into calls), returning a synthetic breakpoint describing where
// execution stopped, or nil when the program halted. The paper's debugger
// model treats any statement boundary as a potential stopping point, so
// the variable classifications at a step stop are computed exactly like
// breakpoint classifications. The statement-boundary stop rule is
// compiled into a bitmap (vm.StepBreakSet) and run on the predecoded
// fast path; StepRef is the reference predicate implementation.
func (d *Debugger) Step() (*Breakpoint, error) {
	if d.VM.Halted() {
		return nil, nil
	}
	startFn := d.VM.Position().Fn
	startStmt := d.currentStmt()
	// Execute at least one instruction, then run until we sit at the
	// first instruction of a different statement (or another function).
	if err := d.VM.Step(); err != nil {
		return nil, err
	}
	if err := d.VM.RunBreaks(d.VM.StepBreakSet(startFn, startStmt), false); err != nil {
		return nil, err
	}
	return d.afterStep()
}

// StepRef is the reference implementation of Step over the
// closure-predicate RunUntilFunc path — the differential oracle for the
// bitmap-compiled step rule.
func (d *Debugger) StepRef() (*Breakpoint, error) {
	if d.VM.Halted() {
		return nil, nil
	}
	startFn := d.VM.Position().Fn
	startStmt := d.currentStmt()
	if err := d.VM.Step(); err != nil {
		return nil, err
	}
	err := d.VM.RunUntilFunc(func(p vm.Pos) bool {
		in := d.VM.CurrentInstr()
		if in == nil || in.Stmt < 0 {
			return false
		}
		return p.Fn != startFn || in.Stmt != startStmt
	})
	if err != nil {
		return nil, err
	}
	return d.afterStep()
}

// afterStep records the synthetic statement-boundary stop (or exit).
func (d *Debugger) afterStep() (*Breakpoint, error) {
	if d.VM.Halted() {
		d.stopped = nil
		return nil, nil
	}
	pos := d.VM.Position()
	stmt := d.currentStmt()
	bp := &Breakpoint{
		Fn:   pos.Fn,
		Stmt: stmt,
		Line: d.stmtLine(pos.Fn, stmt),
		Loc:  debuginfo.Loc{Block: pos.Block, Idx: pos.Idx},
	}
	d.stopped = bp
	return bp, nil
}

// currentStmt returns the statement of the instruction about to execute.
func (d *Debugger) currentStmt() int {
	in := d.VM.CurrentInstr()
	if in == nil {
		return -1
	}
	if in.Stmt >= 0 {
		return in.Stmt
	}
	pos := d.VM.Position()
	return debuginfo.StmtOfLoc(debuginfo.Loc{Block: pos.Block, Idx: pos.Idx})
}

// VarReport is the debugger's answer to "print v".
type VarReport struct {
	Name   string
	Class  core.Classification
	HasVal bool
	Val    vm.Val
	// RecoveredVal is filled when the expected value was reconstructed
	// from a recovery source.
	HasRecovered bool
	RecoveredVal vm.Val
	// SrcLines are the source lines of the assignments responsible for
	// the endangerment (resolved from Class.SrcStmts).
	SrcLines []int
	// Fields holds per-field sub-reports when the variable is a struct
	// aggregate (one per field, in declaration order). The aggregate's
	// own Class summarizes the fields.
	Fields []*VarReport
}

// Display renders the report the way the paper's debugger model prescribes:
// the value (or recovered value), always accompanied by a warning when the
// variable is endangered.
func (r *VarReport) Display() string {
	return fmt.Sprintf("%s = %s", r.Name, r.valueText())
}

// valueText renders the value part of the report (everything after
// "name = "), including any endangerment warning.
func (r *VarReport) valueText() string {
	if len(r.Fields) > 0 {
		// Aggregate: render each field's own report inside braces, with the
		// short field name; the per-field warnings carry the detail, so the
		// aggregate-level text only flags the summary state.
		var b strings.Builder
		b.WriteString("{")
		for i, fr := range r.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			name := fr.Name
			if dot := strings.LastIndex(name, "."); dot >= 0 {
				name = name[dot+1:]
			}
			fmt.Fprintf(&b, "%s = %s", name, fr.valueText())
		}
		b.WriteString("}")
		if r.Class.State != core.Current {
			fmt.Fprintf(&b, " (WARNING: %s — %s)", r.Class.State, r.Class.Why)
		}
		return b.String()
	}
	var b strings.Builder
	switch {
	case r.HasRecovered:
		b.WriteString(fmtVal(r.RecoveredVal))
		fmt.Fprintf(&b, " (recovered; %s)", r.Class.Why)
	case r.Class.State == core.Uninitialized:
		b.WriteString("<uninitialized>")
	case r.Class.State == core.Nonresident:
		b.WriteString("<unavailable>")
		fmt.Fprintf(&b, " (nonresident: %s)", r.Class.Why)
	case !r.HasVal:
		b.WriteString("<unavailable>")
	default:
		b.WriteString(fmtVal(r.Val))
		switch r.Class.State {
		case core.Noncurrent:
			fmt.Fprintf(&b, " (WARNING: noncurrent due to %s — %s%s)",
				r.Class.Cause, r.Class.Why, lineList(r.SrcLines))
		case core.Suspect:
			fmt.Fprintf(&b, " (WARNING: suspect due to %s — %s%s)",
				r.Class.Cause, r.Class.Why, lineList(r.SrcLines))
		}
	}
	return b.String()
}

func lineList(lines []int) string {
	if len(lines) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("; see line")
	if len(lines) > 1 {
		b.WriteString("s")
	}
	for i, l := range lines {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, " %d", l)
	}
	return b.String()
}

func fmtVal(v vm.Val) string {
	if v.IsF {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", v.I)
}

// Print reports on one variable at the current stop.
func (d *Debugger) Print(name string) (*VarReport, error) {
	if d.stopped == nil {
		return nil, fmt.Errorf("debugger: %w", ErrNotStopped)
	}
	bp := d.stopped
	a := d.analysisOf(bp.Fn)
	var obj *ast.Object
	for _, v := range a.Table.VarsInScope(bp.Stmt) {
		if v.Name == name {
			obj = v
			break
		}
	}
	if obj == nil {
		// Globals live in memory, untouched by the scalar optimizer: they
		// are always current (the paper's measurements found endangered
		// globals negligible and reported locals only).
		for _, g := range d.Res.Mach.Globals {
			if g.Name == name {
				return d.reportGlobal(g)
			}
		}
		// Global struct fields have no member objects; "g.f" is resolved
		// against the global's layout and read straight from the data
		// segment.
		if base, field, ok := strings.Cut(name, "."); ok {
			for _, g := range d.Res.Mach.Globals {
				if g.Name != base {
					continue
				}
				st, isSt := g.Type.(*ast.StructType)
				if !isSt {
					break
				}
				idx := st.FieldIndex(field)
				if idx < 0 {
					return nil, fmt.Errorf("debugger: %w: %q has no field %q", ErrNoSuchVar, base, field)
				}
				return d.reportGlobalField(g, st, idx)
			}
		}
		return nil, fmt.Errorf("debugger: %w: %q at this breakpoint", ErrNoSuchVar, name)
	}
	return d.report(bp, obj)
}

// reportGlobalField reads one field of a global struct from the data
// segment. Global aggregates are never split (they are address-taken by
// construction), so their fields are always memory-resident and current.
func (d *Debugger) reportGlobalField(g *ast.Object, st *ast.StructType, idx int) (*VarReport, error) {
	name := g.Name + "." + st.Fields[idx].Name
	r := &VarReport{Name: name, Class: core.Classification{Var: g, State: core.Current}}
	off, ok := d.Res.Mach.GlobalOff[g]
	if !ok {
		return r, nil
	}
	addr := off + int64(st.FieldOffset(idx))
	if ast.IsFloat(st.Fields[idx].Type) {
		x, err := d.VM.ReadMemFloat(addr)
		if err != nil {
			return nil, err
		}
		r.HasVal = true
		r.Val = vm.Val{F: x, IsF: true}
		return r, nil
	}
	x, err := d.VM.ReadMemInt(addr)
	if err != nil {
		return nil, err
	}
	r.HasVal = true
	r.Val = vm.Val{I: x}
	return r, nil
}

// reportGlobal reads a global scalar from the data segment.
func (d *Debugger) reportGlobal(g *ast.Object) (*VarReport, error) {
	r := &VarReport{Name: g.Name, Class: core.Classification{Var: g, State: core.Current}}
	if st, ok := g.Type.(*ast.StructType); ok {
		for i := range st.Fields {
			fr, err := d.reportGlobalField(g, st, i)
			if err != nil {
				return nil, err
			}
			r.Fields = append(r.Fields, fr)
		}
		return r, nil
	}
	off, ok := d.Res.Mach.GlobalOff[g]
	if !ok {
		return r, nil
	}
	if ast.IsFloat(g.Type) {
		x, err := d.VM.ReadMemFloat(off)
		if err != nil {
			return nil, err
		}
		r.HasVal = true
		r.Val = vm.Val{F: x, IsF: true}
		return r, nil
	}
	x, err := d.VM.ReadMemInt(off)
	if err != nil {
		return nil, err
	}
	r.HasVal = true
	r.Val = vm.Val{I: x}
	return r, nil
}

// Info reports on every variable in scope at the current stop.
func (d *Debugger) Info() ([]*VarReport, error) {
	if d.stopped == nil {
		return nil, fmt.Errorf("debugger: %w", ErrNotStopped)
	}
	bp := d.stopped
	a := d.analysisOf(bp.Fn)
	var out []*VarReport
	for _, v := range a.Table.VarsInScope(bp.Stmt) {
		// Struct members are grouped under their base aggregate's report
		// (as Fields) rather than listed as free-standing locals.
		if v.Base != nil {
			continue
		}
		r, err := d.report(bp, v)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// classifyStop classifies obj at the stop described by bp. The stop's Loc
// is the instruction actually about to execute (a breakpoint may be armed
// at several instances of its statement, and a step stop can sit at any
// statement boundary), and the machine state the user inspects is the
// state at that instruction — so the dataflow must be read there too, not
// at the statement's canonical table location.
func (d *Debugger) classifyStop(bp *Breakpoint, obj *ast.Object) (core.Classification, bool) {
	a := d.analysisOf(bp.Fn)
	if bp.Loc.Block != nil {
		return a.ClassifyLoc(bp.Loc, obj), true
	}
	return a.ClassifyAt(bp.Stmt, obj)
}

func (d *Debugger) report(bp *Breakpoint, obj *ast.Object) (*VarReport, error) {
	cls, ok := d.classifyStop(bp, obj)
	if !ok {
		return nil, fmt.Errorf("debugger: %w: statement %d", ErrNoStmtLoc, bp.Stmt)
	}
	r := &VarReport{Name: obj.Name, Class: cls}
	for _, s := range cls.SrcStmts {
		if l := d.stmtLine(bp.Fn, s); l > 0 {
			r.SrcLines = append(r.SrcLines, l)
		}
	}
	fr := d.VM.Top()

	// Struct aggregate: report field by field. Each member carries its own
	// classification (from cls.Fields when split, Current-in-memory when
	// the aggregate kept its frame slot), its own value, and its own
	// recovery.
	if len(obj.Members) > 0 {
		for i, m := range obj.Members {
			var sub *VarReport
			if i < len(cls.Fields) {
				sub = &VarReport{Name: m.Name, Class: cls.Fields[i]}
			} else {
				mc, ok := d.classifyStop(bp, m)
				if !ok {
					mc = core.Classification{Var: m, State: core.Current}
				}
				sub = &VarReport{Name: m.Name, Class: mc}
			}
			for _, s := range sub.Class.SrcStmts {
				if l := d.stmtLine(bp.Fn, s); l > 0 {
					sub.SrcLines = append(sub.SrcLines, l)
				}
			}
			if fr != nil && fr.Fn == bp.Fn {
				d.fillVals(fr, m, sub)
			}
			r.Fields = append(r.Fields, sub)
		}
		return r, nil
	}

	if fr == nil || fr.Fn != bp.Fn {
		return r, nil
	}
	d.fillVals(fr, obj, r)
	return r, nil
}

// fillVals populates the report's value channels. A Current verdict with
// a recovery attached is current *through the recovery source* (§2.5):
// the variable's own location is stale (its assignment was replaced by
// an inlined expression), so the recovered value IS the value — exposing
// the stale home location as a trustworthy current value would mislead
// any consumer of the structured report. When such a recovery cannot be
// read, no value is reported at all rather than the stale one.
func (d *Debugger) fillVals(fr *vm.Frame, obj *ast.Object, r *VarReport) {
	if v, ok := d.readActual(fr, obj); ok {
		r.HasVal = true
		r.Val = v
	}
	if r.Class.Recovered == nil {
		return
	}
	if v, ok := d.readRecovered(fr, r.Class.Recovered); ok {
		r.HasRecovered = true
		r.RecoveredVal = v
		if r.Class.State == core.Current {
			r.Val, r.HasVal = v, true
		}
	} else if r.Class.State == core.Current {
		r.HasVal = false
	}
}

// readActual reads the runtime value in the variable's location.
func (d *Debugger) readActual(fr *vm.Frame, obj *ast.Object) (vm.Val, bool) {
	f := fr.Fn
	isFloat := ast.IsFloat(obj.Type)
	// A struct member whose base aggregate still owns its frame slot has no
	// location of its own: the field lives in the aggregate's memory at a
	// constant offset. (After SROA the base is gone from the frame and the
	// member reads like any scalar below.)
	if obj.Base != nil {
		if _, inFrame := f.FrameOff[obj.Base]; inFrame {
			addr, ok := d.VM.AddrOf(fr, obj.Base)
			if !ok {
				return vm.Val{}, false
			}
			addr += 4 * int64(obj.FieldIdx)
			if isFloat {
				x, err := d.VM.ReadMemFloat(addr)
				if err != nil {
					return vm.Val{}, false
				}
				return vm.Val{F: x, IsF: true}, true
			}
			x, err := d.VM.ReadMemInt(addr)
			if err != nil {
				return vm.Val{}, false
			}
			return vm.Val{I: x}, true
		}
	}
	if obj.Addressed {
		addr, ok := d.VM.AddrOf(fr, obj)
		if !ok {
			return vm.Val{}, false
		}
		if _, isArr := obj.Type.(*ast.ArrayType); isArr {
			// Arrays display their first element.
			_ = isArr
		}
		if isFloat {
			x, err := d.VM.ReadMemFloat(addr)
			if err != nil {
				return vm.Val{}, false
			}
			return vm.Val{F: x, IsF: true}, true
		}
		x, err := d.VM.ReadMemInt(addr)
		if err != nil {
			return vm.Val{}, false
		}
		return vm.Val{I: x}, true
	}
	if !f.Allocated {
		// Virtual registers: the variable's vreg is its Object ID.
		if isFloat {
			return vm.Val{F: fr.FReg[obj.ID], IsF: true}, true
		}
		return vm.Val{I: fr.IReg[obj.ID]}, true
	}
	loc, ok := f.VarLoc[obj]
	if !ok {
		return vm.Val{}, false
	}
	switch loc.Kind {
	case mach.LocReg:
		if loc.Class == mach.FloatClass {
			return vm.Val{F: fr.FReg[loc.R], IsF: true}, true
		}
		return vm.Val{I: fr.IReg[loc.R]}, true
	case mach.LocSpill:
		if isFloat {
			x, err := d.VM.ReadMemFloat(fr.Base + loc.Off)
			if err != nil {
				return vm.Val{}, false
			}
			return vm.Val{F: x, IsF: true}, true
		}
		x, err := d.VM.ReadMemInt(fr.Base + loc.Off)
		if err != nil {
			return vm.Val{}, false
		}
		return vm.Val{I: x}, true
	}
	return vm.Val{}, false
}

// readRecovered reconstructs the expected value from a recovery source.
func (d *Debugger) readRecovered(fr *vm.Frame, rec *core.Recovery) (vm.Val, bool) {
	switch rec.Kind {
	case core.RecoverConst:
		if rec.IsF {
			return vm.Val{F: rec.CF, IsF: true}, true
		}
		return vm.Val{I: rec.C}, true
	case core.RecoverAlias:
		if !rec.Reg.IsReg() {
			return vm.Val{}, false
		}
		if rec.Reg.Class == mach.FloatClass {
			return vm.Val{F: fr.FReg[rec.Reg.R], IsF: true}, true
		}
		return vm.Val{I: fr.IReg[rec.Reg.R]}, true
	case core.RecoverLinear:
		if !rec.Reg.IsReg() || rec.A == 0 {
			return vm.Val{}, false
		}
		x := fr.IReg[rec.Reg.R]
		return vm.Val{I: (x - rec.B) / rec.A}, true
	}
	return vm.Val{}, false
}

// Halted reports whether the program has exited.
func (d *Debugger) Halted() bool { return d.VM.Halted() }

// Output returns the program's output so far.
func (d *Debugger) Output() string { return d.VM.Output() }
