package debugger

import (
	"strings"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/opt"
)

func session(t *testing.T, src string, cfg compile.Config) *Debugger {
	t.Helper()
	res, err := compile.Compile("test.mc", src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	d, err := New(res)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBreakAndPrint(t *testing.T) {
	src := `
int main() {
	int x = 10;
	int y = x * 3;
	print(y);
	return y;
}
`
	d := session(t, src, compile.O0())
	if _, err := d.BreakAtStmt("main", 1); err != nil { // y = x*3
		t.Fatal(err)
	}
	bp, err := d.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if bp == nil {
		t.Fatal("program halted without hitting breakpoint")
	}
	r, err := d.Print("x")
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasVal || r.Val.I != 10 {
		t.Errorf("x = %+v, want 10", r.Val)
	}
	if r.Class.State != core.Current {
		t.Errorf("x should be current, got %s", r.Class.State)
	}
	// y not yet assigned.
	ry, err := d.Print("y")
	if err != nil {
		t.Fatal(err)
	}
	if ry.Class.State != core.Uninitialized {
		t.Errorf("y should be uninitialized, got %s", ry.Class.State)
	}
	// Finish the program.
	bp, err = d.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if bp != nil {
		t.Fatal("expected program to halt")
	}
	if d.Output() != "30" {
		t.Errorf("output = %q", d.Output())
	}
}

func TestBreakpointInLoopHitsRepeatedly(t *testing.T) {
	src := `
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 3; i++) {
		s = s + i;
	}
	return s;
}
`
	d := session(t, src, compile.O0())
	// Statement IDs: 0:s=0, 1:decl i, 2:for, 3:i=0 (init), 4:body, 5:i++.
	if _, err := d.BreakAtStmt("main", 4); err != nil {
		t.Fatal(err)
	}
	hits := 0
	var got []int64
	for {
		bp, err := d.Continue()
		if err != nil {
			t.Fatal(err)
		}
		if bp == nil {
			break
		}
		hits++
		r, err := d.Print("i")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r.Val.I)
		if hits > 10 {
			t.Fatal("runaway")
		}
	}
	if hits != 3 {
		t.Errorf("breakpoint hit %d times, want 3 (i values %v)", hits, got)
	}
}

func TestDebugOptimizedStaleValue(t *testing.T) {
	// Figure 3 end-to-end: at runtime the debugger shows the stale actual
	// value with a warning.
	src := `
int g(int c, int a, int b) {
	int x = a * b;
	int r = 0;
	if (c) {
		r = x;
	}
	return r + a;
}
int main() { return g(1, 5, 4); }
`
	cfg := compile.Config{Opt: opt.Options{PDCE: true, DCE: true}}
	d := session(t, src, cfg)
	if _, err := d.BreakAtStmt("g", 1); err != nil { // r = 0
		t.Fatal(err)
	}
	bp, err := d.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if bp == nil {
		t.Fatal("did not stop")
	}
	r, err := d.Print("x")
	if err != nil {
		t.Fatal(err)
	}
	if r.Class.State != core.Noncurrent {
		t.Errorf("x should be noncurrent, got %s (%s)", r.Class.State, r.Class.Why)
	}
	// The actual (stale) value must NOT be 20 = 5*4, since the assignment
	// was sunk past this point.
	if r.HasVal && r.Val.I == 20 {
		t.Errorf("x's runtime value is already 20; the assignment was not actually sunk")
	}
	disp := r.Display()
	if !strings.Contains(disp, "WARNING") {
		t.Errorf("display must carry a warning: %q", disp)
	}
}

func TestDebugRecoveredValue(t *testing.T) {
	// Figure 4 end-to-end: the eliminated x is recovered from the CSE temp
	// and the recovered value matches what the source would have computed.
	src := `
int h(int y, int z) {
	int x = y + z;
	int a = x + 1;
	int b = x * 2;
	return a + b;
}
int main() { return h(2, 3); }
`
	cfg := compile.Config{Opt: opt.Options{AssignProp: true, PRE: true, CopyProp: true, DCE: true}}
	d := session(t, src, cfg)
	if _, err := d.BreakAtStmt("h", 2); err != nil { // b = x*2
		t.Fatal(err)
	}
	bp, err := d.Continue()
	if err != nil {
		t.Fatal(err)
	}
	if bp == nil {
		t.Fatal("did not stop")
	}
	r, err := d.Print("x")
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasRecovered {
		t.Fatalf("x should be recovered; classification %s (%s)", r.Class.State, r.Class.Why)
	}
	if r.RecoveredVal.I != 5 {
		t.Errorf("recovered x = %d, want 5", r.RecoveredVal.I)
	}
	if !strings.Contains(r.Display(), "recovered") {
		t.Errorf("display should mention recovery: %q", r.Display())
	}
}

func TestDebugConstantRecovery(t *testing.T) {
	src := `
int main() {
	int x = 5;
	int y = 1;
	x = y + 6;
	return x;
}
`
	d := session(t, src, compile.Config{Opt: opt.Options{DCE: true}})
	if _, err := d.BreakAtStmt("main", 1); err != nil {
		t.Fatal(err)
	}
	if bp, err := d.Continue(); err != nil || bp == nil {
		t.Fatalf("stop failed: %v", err)
	}
	r, err := d.Print("x")
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasRecovered || r.RecoveredVal.I != 5 {
		t.Errorf("x should recover as 5, got %+v (%s)", r, r.Class.Why)
	}
}

func TestBreakAtLine(t *testing.T) {
	src := `int main() {
	int a = 1;
	int b = 2;
	return a + b;
}
`
	d := session(t, src, compile.O0())
	bp, err := d.BreakAtLine(3) // int b = 2;
	if err != nil {
		t.Fatal(err)
	}
	if bp.Line != 3 {
		t.Errorf("breakpoint line = %d, want 3", bp.Line)
	}
	hit, err := d.Continue()
	if err != nil || hit == nil {
		t.Fatalf("continue: %v", err)
	}
	r, _ := d.Print("a")
	if r.Val.I != 1 {
		t.Errorf("a = %d", r.Val.I)
	}
}

func TestInfoListsAllInScope(t *testing.T) {
	src := `
int main() {
	int a = 1;
	int b = 2;
	int c = a + b;
	return c;
}
`
	d := session(t, src, compile.O0())
	if _, err := d.BreakAtStmt("main", 2); err != nil {
		t.Fatal(err)
	}
	if bp, err := d.Continue(); err != nil || bp == nil {
		t.Fatalf("stop failed: %v", err)
	}
	reports, err := d.Info()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Errorf("info listed %d vars, want 3 (a, b, c)", len(reports))
	}
}

func TestDebugWithFullO2AndRegalloc(t *testing.T) {
	// The debugger must never crash or mislead on fully optimized code:
	// every in-scope variable at every breakpoint gets a classification.
	src := `
int work(int n) {
	int acc = 0;
	int i;
	int t = n * 2;
	for (i = 0; i < n; i++) {
		acc = acc + i * t;
	}
	int unused = acc * 3;
	return acc;
}
int main() { return work(6); }
`
	d := session(t, src, compile.O2())
	f := d.Res.Mach.LookupFunc("work")
	a := d.analysisOf(f)
	for s := 0; s < f.Decl.NumStmts; s++ {
		cs, ok := a.ClassifyAllAt(s)
		if !ok {
			continue
		}
		for _, c := range cs {
			if c.State == core.Noncurrent || c.State == core.Suspect {
				if c.Why == "" {
					t.Errorf("endangered %s at stmt %d lacks a warning", c.Var.Name, s)
				}
			}
		}
	}
}
