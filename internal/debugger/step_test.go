package debugger

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
)

func TestStepWalksStatements(t *testing.T) {
	src := `
int main() {
	int a = 1;
	int b = 2;
	int c = a + b;
	print(c);
	return c;
}
`
	d := session(t, src, compile.O0())
	var stmts []int
	for i := 0; i < 20; i++ {
		bp, err := d.Step()
		if err != nil {
			t.Fatal(err)
		}
		if bp == nil {
			break
		}
		stmts = append(stmts, bp.Stmt)
	}
	if len(stmts) < 3 {
		t.Fatalf("stepped through only %v", stmts)
	}
	// Statements must be visited in increasing order in straight-line code.
	for i := 1; i < len(stmts); i++ {
		if stmts[i] < stmts[i-1] {
			t.Errorf("step went backwards: %v", stmts)
			break
		}
	}
	if !d.Halted() {
		t.Error("program should have halted")
	}
	if d.Output() != "3" {
		t.Errorf("output = %q", d.Output())
	}
}

func TestStepIntoCall(t *testing.T) {
	src := `
int twice(int v) {
	int r = v * 2;
	return r;
}
int main() {
	int x = twice(21);
	return x;
}
`
	d := session(t, src, compile.O0())
	enteredCallee := false
	for i := 0; i < 30; i++ {
		bp, err := d.Step()
		if err != nil {
			t.Fatal(err)
		}
		if bp == nil {
			break
		}
		if bp.Fn.Name == "twice" {
			enteredCallee = true
			// Inside the callee the debugger can inspect its locals.
			if r, err := d.Print("v"); err != nil || !r.HasVal || r.Val.I != 21 {
				t.Errorf("print v in callee: %+v, %v", r, err)
			}
		}
	}
	if !enteredCallee {
		t.Error("step never entered the callee")
	}
}

func TestStepOnOptimizedCode(t *testing.T) {
	src := `
int main() {
	int s = 0;
	int i;
	for (i = 0; i < 4; i++) {
		s = s + i;
	}
	print(s);
	return s;
}
`
	d := session(t, src, compile.O2())
	steps := 0
	for i := 0; i < 200 && !d.Halted(); i++ {
		bp, err := d.Step()
		if err != nil {
			t.Fatal(err)
		}
		if bp == nil {
			break
		}
		steps++
		// Every stop must be classifiable.
		if _, err := d.Info(); err != nil {
			t.Fatalf("info at step %d: %v", steps, err)
		}
	}
	if steps == 0 {
		t.Fatal("no steps on optimized code")
	}
	if d.Output() != "6" {
		t.Errorf("output = %q", d.Output())
	}
}

func TestPrintGlobal(t *testing.T) {
	src := `
int counter = 41;
int main() {
	int x = 1;
	counter = counter + x;
	return counter;
}
`
	d := session(t, src, compile.O0())
	if _, err := d.BreakAtStmt("main", 1); err != nil {
		t.Fatal(err)
	}
	if bp, err := d.Continue(); err != nil || bp == nil {
		t.Fatalf("stop: %v", err)
	}
	r, err := d.Print("counter")
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasVal || r.Val.I != 41 {
		t.Errorf("counter = %+v, want 41", r.Val)
	}
	if r.Class.State != core.Current {
		t.Errorf("global should be current, got %s", r.Class.State)
	}
}
