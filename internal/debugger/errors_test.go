package debugger

import (
	"errors"
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/vm"
)

const errProg = `
int main() {
	int x = 10;
	print(x);
	return x;
}
`

func TestTypedErrors(t *testing.T) {
	d := session(t, errProg, compile.O2())

	if _, err := d.BreakAtLine(999); !errors.Is(err, ErrNoSuchLine) {
		t.Errorf("BreakAtLine(999) = %v, want ErrNoSuchLine", err)
	}
	if _, err := d.BreakAtStmt("nope", 0); !errors.Is(err, ErrNoSuchFunc) {
		t.Errorf("BreakAtStmt(nope) = %v, want ErrNoSuchFunc", err)
	}
	if _, err := d.BreakAtStmt("main", 9999); !errors.Is(err, ErrNoStmtLoc) {
		t.Errorf("BreakAtStmt(main, 9999) = %v, want ErrNoStmtLoc", err)
	}
	if _, err := d.Print("x"); !errors.Is(err, ErrNotStopped) {
		t.Errorf("Print before stop = %v, want ErrNotStopped", err)
	}
	if _, err := d.Info(); !errors.Is(err, ErrNotStopped) {
		t.Errorf("Info before stop = %v, want ErrNotStopped", err)
	}
	if _, err := d.BreakAtStmt("main", 0); err != nil {
		t.Fatal(err)
	}
	if bp, err := d.Continue(); err != nil || bp == nil {
		t.Fatalf("Continue = %v, %v", bp, err)
	}
	if _, err := d.Print("nosuchvar"); !errors.Is(err, ErrNoSuchVar) {
		t.Errorf("Print(nosuchvar) = %v, want ErrNoSuchVar", err)
	}
}

func TestStepBudgetError(t *testing.T) {
	d := session(t, `
int main() {
	int i;
	int s = 0;
	for (i = 0; i < 100000; i++) { s += i; }
	return s;
}
`, compile.O0())
	d.VM.MaxSteps = 50
	_, err := d.Continue()
	if !errors.Is(err, vm.ErrStepLimit) {
		t.Fatalf("Continue under tiny budget = %v, want vm.ErrStepLimit", err)
	}
}

// TestSharedResultAcrossSessions runs several sessions over one
// compile.Result and one AnalysisSet concurrently — the data race the
// unguarded analysisOf map used to have (caught by -race).
func TestSharedResultAcrossSessions(t *testing.T) {
	res, err := compile.Compile("t.mc", errProg, compile.O2())
	if err != nil {
		t.Fatal(err)
	}
	set := core.NewAnalysisSet()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			d, err := NewShared(res, set)
			if err != nil {
				done <- err
				return
			}
			if _, err := d.BreakAtStmt("main", 1); err != nil {
				done <- err
				return
			}
			if bp, err := d.Continue(); err != nil || bp == nil {
				done <- err
				return
			}
			_, err = d.Print("x")
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got, want := set.Built(), int64(1); got != want {
		t.Fatalf("8 sessions built %d analyses of main, want %d", got, want)
	}
}
