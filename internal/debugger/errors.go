package debugger

import "errors"

// Sentinel errors returned (wrapped, with context) by session commands so
// callers — in particular the debug-session server — can map failures to
// stable error codes with errors.Is instead of matching message strings.
var (
	// ErrNoSuchLine: no statement starts on the requested source line.
	ErrNoSuchLine = errors.New("no statement on line")
	// ErrNoSuchFunc: the named function does not exist in the program.
	ErrNoSuchFunc = errors.New("no such function")
	// ErrNoStmtLoc: the statement exists but optimization left it without
	// any code location to break on.
	ErrNoStmtLoc = errors.New("statement has no code location")
	// ErrNotStopped: the command needs the session to be stopped at a
	// breakpoint, and it is not.
	ErrNotStopped = errors.New("not stopped at a breakpoint")
	// ErrNoSuchVar: no variable with that name is in scope at the stop.
	ErrNoSuchVar = errors.New("no variable in scope")
)
