// Package lexer implements a hand-written scanner for MiniC.
package lexer

import (
	"repro/internal/source"
	"repro/internal/token"
)

// Lexer turns MiniC source text into a token stream.
type Lexer struct {
	file *source.File
	src  string
	pos  int
	errs *source.ErrorList
}

// New creates a Lexer over f, reporting errors into errs.
func New(f *source.File, errs *source.ErrorList) *Lexer {
	return &Lexer{file: f, src: f.Content, errs: errs}
}

// ScanAll scans the whole file, returning all tokens ending with EOF.
func (l *Lexer) ScanAll() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func (l *Lexer) peek2() byte {
	if l.pos+1 < len(l.src) {
		return l.src[l.pos+1]
	}
	return 0
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.pos++
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos
			l.pos += 2
			closed := false
			for l.pos+1 < len(l.src) {
				if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
					l.pos += 2
					closed = true
					break
				}
				l.pos++
			}
			if !closed {
				l.pos = len(l.src)
				l.errs.Add(l.file, source.Pos(start), "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next scans and returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	start := l.pos
	if l.pos >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: start, End: start}
	}
	c := l.src[l.pos]

	switch {
	case isLetter(c):
		for l.pos < len(l.src) && (isLetter(l.src[l.pos]) || isDigit(l.src[l.pos])) {
			l.pos++
		}
		lit := l.src[start:l.pos]
		if k, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: k, Lit: lit, Pos: start, End: l.pos}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Pos: start, End: l.pos}

	case isDigit(c):
		isFloat := false
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.peek() == '.' && isDigit(l.peek2()) {
			isFloat = true
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			save := l.pos
			l.pos++
			if l.peek() == '+' || l.peek() == '-' {
				l.pos++
			}
			if isDigit(l.peek()) {
				isFloat = true
				for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
					l.pos++
				}
			} else {
				l.pos = save
			}
		}
		kind := token.INTLIT
		if isFloat {
			kind = token.FLOATLIT
		}
		return token.Token{Kind: kind, Lit: l.src[start:l.pos], Pos: start, End: l.pos}

	case c == '\'':
		l.pos++
		lit := ""
		if l.peek() == '\\' {
			l.pos++
			switch l.peek() {
			case 'n':
				lit = "\n"
			case 't':
				lit = "\t"
			case '0':
				lit = "\x00"
			case '\\':
				lit = "\\"
			case '\'':
				lit = "'"
			default:
				l.errs.Add(l.file, source.Pos(l.pos), "unknown escape '\\%c'", l.peek())
				lit = string(l.peek())
			}
			l.pos++
		} else if l.pos < len(l.src) && l.src[l.pos] != '\'' {
			lit = string(l.src[l.pos])
			l.pos++
		}
		if l.peek() != '\'' {
			l.errs.Add(l.file, source.Pos(start), "unterminated char literal")
		} else {
			l.pos++
		}
		return token.Token{Kind: token.CHARLIT, Lit: lit, Pos: start, End: l.pos}

	case c == '"':
		l.pos++
		var lit []byte
		for l.pos < len(l.src) && l.src[l.pos] != '"' && l.src[l.pos] != '\n' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					lit = append(lit, '\n')
				case 't':
					lit = append(lit, '\t')
				case '"':
					lit = append(lit, '"')
				case '\\':
					lit = append(lit, '\\')
				default:
					lit = append(lit, l.src[l.pos])
				}
				l.pos++
				continue
			}
			lit = append(lit, l.src[l.pos])
			l.pos++
		}
		if l.peek() != '"' {
			l.errs.Add(l.file, source.Pos(start), "unterminated string literal")
		} else {
			l.pos++
		}
		return token.Token{Kind: token.STRLIT, Lit: string(lit), Pos: start, End: l.pos}
	}

	// Operators and punctuation.
	two := func(kind token.Kind) token.Token {
		l.pos += 2
		return token.Token{Kind: kind, Pos: start, End: l.pos}
	}
	one := func(kind token.Kind) token.Token {
		l.pos++
		return token.Token{Kind: kind, Pos: start, End: l.pos}
	}
	switch c {
	case '+':
		switch l.peek2() {
		case '+':
			return two(token.INC)
		case '=':
			return two(token.PLUSASSIGN)
		}
		return one(token.PLUS)
	case '-':
		switch l.peek2() {
		case '-':
			return two(token.DEC)
		case '=':
			return two(token.MINUSASSIGN)
		}
		return one(token.MINUS)
	case '*':
		if l.peek2() == '=' {
			return two(token.STARASSIGN)
		}
		return one(token.STAR)
	case '/':
		if l.peek2() == '=' {
			return two(token.SLASHASSIGN)
		}
		return one(token.SLASH)
	case '%':
		return one(token.PERCENT)
	case '&':
		if l.peek2() == '&' {
			return two(token.ANDAND)
		}
		return one(token.AMP)
	case '|':
		if l.peek2() == '|' {
			return two(token.OROR)
		}
		return one(token.OR)
	case '^':
		return one(token.XOR)
	case '=':
		if l.peek2() == '=' {
			return two(token.EQ)
		}
		return one(token.ASSIGN)
	case '!':
		if l.peek2() == '=' {
			return two(token.NEQ)
		}
		return one(token.NOT)
	case '<':
		switch l.peek2() {
		case '=':
			return two(token.LEQ)
		case '<':
			return two(token.SHL)
		}
		return one(token.LT)
	case '>':
		switch l.peek2() {
		case '=':
			return two(token.GEQ)
		case '>':
			return two(token.SHR)
		}
		return one(token.GT)
	case '(':
		return one(token.LPAREN)
	case ')':
		return one(token.RPAREN)
	case '{':
		return one(token.LBRACE)
	case '}':
		return one(token.RBRACE)
	case '[':
		return one(token.LBRACKET)
	case ']':
		return one(token.RBRACKET)
	case ',':
		return one(token.COMMA)
	case ';':
		return one(token.SEMI)
	case '.':
		return one(token.DOT)
	}
	l.errs.Add(l.file, source.Pos(start), "illegal character %q", string(c))
	l.pos++
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: start, End: l.pos}
}
