package lexer

import (
	"testing"

	"repro/internal/source"
	"repro/internal/token"
)

func scan(t *testing.T, src string) []token.Token {
	t.Helper()
	var errs source.ErrorList
	toks := New(source.NewFile("test.mc", src), &errs).ScanAll()
	if errs.Len() > 0 {
		t.Fatalf("scan errors: %v", errs.Err())
	}
	return toks
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanBasics(t *testing.T) {
	toks := scan(t, "int x = 41 + 1;")
	want := []token.Kind{token.KwInt, token.IDENT, token.ASSIGN, token.INTLIT,
		token.PLUS, token.INTLIT, token.SEMI, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanOperators(t *testing.T) {
	cases := map[string]token.Kind{
		"+": token.PLUS, "-": token.MINUS, "*": token.STAR, "/": token.SLASH,
		"%": token.PERCENT, "==": token.EQ, "!=": token.NEQ, "<": token.LT,
		"<=": token.LEQ, ">": token.GT, ">=": token.GEQ, "&&": token.ANDAND,
		"||": token.OROR, "!": token.NOT, "<<": token.SHL, ">>": token.SHR,
		"++": token.INC, "--": token.DEC, "+=": token.PLUSASSIGN,
		"-=": token.MINUSASSIGN, "*=": token.STARASSIGN, "/=": token.SLASHASSIGN,
		"&": token.AMP, "|": token.OR, "^": token.XOR, "=": token.ASSIGN,
	}
	for src, want := range cases {
		toks := scan(t, src)
		if toks[0].Kind != want {
			t.Errorf("%q: got %s, want %s", src, toks[0].Kind, want)
		}
		if toks[1].Kind != token.EOF {
			t.Errorf("%q: expected single token", src)
		}
	}
}

func TestScanNumbers(t *testing.T) {
	toks := scan(t, "1 23 1.5 0.25 1e3 2.5e-2 7")
	wantKinds := []token.Kind{token.INTLIT, token.INTLIT, token.FLOATLIT,
		token.FLOATLIT, token.FLOATLIT, token.FLOATLIT, token.INTLIT, token.EOF}
	got := kinds(toks)
	for i := range wantKinds {
		if got[i] != wantKinds[i] {
			t.Errorf("token %d (%s): got %s, want %s", i, toks[i].Lit, got[i], wantKinds[i])
		}
	}
}

func TestScanComments(t *testing.T) {
	toks := scan(t, "a // line comment\nb /* block\ncomment */ c")
	got := kinds(toks)
	want := []token.Kind{token.IDENT, token.IDENT, token.IDENT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanKeywords(t *testing.T) {
	toks := scan(t, "if else while for do return break continue int float void print")
	want := []token.Kind{token.KwIf, token.KwElse, token.KwWhile, token.KwFor,
		token.KwDo, token.KwReturn, token.KwBreak, token.KwContinue,
		token.KwInt, token.KwFloat, token.KwVoid, token.KwPrint, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanCharAndString(t *testing.T) {
	toks := scan(t, `'a' '\n' "hello\n"`)
	if toks[0].Kind != token.CHARLIT || toks[0].Lit != "a" {
		t.Errorf("char: got %v", toks[0])
	}
	if toks[1].Kind != token.CHARLIT || toks[1].Lit != "\n" {
		t.Errorf("escape char: got %v", toks[1])
	}
	if toks[2].Kind != token.STRLIT || toks[2].Lit != "hello\n" {
		t.Errorf("string: got %v", toks[2])
	}
}

func TestScanPositions(t *testing.T) {
	f := source.NewFile("t.mc", "ab\ncd")
	var errs source.ErrorList
	toks := New(f, &errs).ScanAll()
	if p := f.Position(source.Pos(toks[1].Pos)); p.Line != 2 || p.Col != 1 {
		t.Errorf("second token at %v, want line 2 col 1", p)
	}
}

func TestScanErrors(t *testing.T) {
	var errs source.ErrorList
	New(source.NewFile("t.mc", "@"), &errs).ScanAll()
	if errs.Len() == 0 {
		t.Error("expected error for illegal character")
	}
	errs = source.ErrorList{}
	New(source.NewFile("t.mc", "/* unterminated"), &errs).ScanAll()
	if errs.Len() == 0 {
		t.Error("expected error for unterminated comment")
	}
}
