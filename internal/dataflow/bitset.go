// Package dataflow provides the bit-vector data-flow machinery used by both
// the optimizer and the debugger analyses: dense bit sets, an iterative
// worklist solver for forward/backward may/must problems, dominator and
// postdominator trees, and natural-loop detection.
//
// The solver visits blocks in reverse postorder of the direction the facts
// propagate — RPO of the CFG for forward problems, RPO of the reversed CFG
// (postorder) for backward problems — so that on reducible control flow
// each fact crosses every acyclic path in one sweep and only loops force
// re-visits. The worklist is an in-worklist bitmap over that fixed order:
// a block re-enters the list only when a block feeding its meet changed.
// Termination is the standard monotone-framework argument: gen/kill
// transfer functions and union/intersection meets are monotone on the
// finite powerset lattice of Problem.Bits bits, every in/out set moves in
// one direction only (up from ⊥ for may problems, down from ⊤ for must
// problems), and a block is re-queued only after an actual change — so at
// most Bits changes per set, giving O(Bits · N · E) bit-operations in the
// worst case and, in practice, loop-nesting-depth + 2 sweeps. Solve and
// the dense reference schedule SolveReference compute the same unique
// fixed point (chaotic iteration of a monotone system converges to the
// same limit regardless of a fair visit order), which the differential
// tests in dataflow_test.go and internal/randprog exercise.
//
// The debugger-side analyses of the paper (hoist reach, dead reach) are
// instances of the same framework — that is one of the paper's central
// arguments: "the data-flow analysis required to support the debugger is
// similar to the data-flow analysis performed for global optimization and
// in our compiler uses the same modules."
package dataflow

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitSet is a fixed-capacity dense bit set.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet makes an empty set with capacity for n bits.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, wordsFor(n)), n: n}
}

// wordsFor returns the number of 64-bit words backing an n-bit set.
func wordsFor(n int) int { return (n + 63) / 64 }

// SizeBytes reports the resident size of the set (header + backing words),
// for memory-budget accounting.
func (b *BitSet) SizeBytes() int64 { return 32 + int64(len(b.words))*8 }

// bitSetOver wraps an existing word slice as an n-bit set, so callers
// that build many same-sized sets (the solver, the classifier's
// per-breakpoint tables) can carve them out of one allocation. The slice
// must hold wordsFor(n) words; its current contents become the set.
func bitSetOver(words []uint64, n int) *BitSet { return &BitSet{words: words, n: n} }

// Len returns the set's capacity in bits.
func (s *BitSet) Len() int { return s.n }

// Set sets bit i.
func (s *BitSet) Set(i int) { s.words[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (s *BitSet) Clear(i int) { s.words[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (s *BitSet) Has(i int) bool { return s.words[i/64]&(1<<(uint(i)%64)) != 0 }

// SetAll sets every bit in [0, Len).
func (s *BitSet) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// ClearAll clears every bit.
func (s *BitSet) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes bits beyond n so that Equal and Count stay exact.
func (s *BitSet) trim() {
	if s.n%64 != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % 64)) - 1
	}
}

// Copy returns an independent copy of s.
func (s *BitSet) Copy() *BitSet {
	c := &BitSet{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with t (capacities must match).
func (s *BitSet) CopyFrom(t *BitSet) { copy(s.words, t.words) }

// Union adds all bits of t to s; reports whether s changed.
func (s *BitSet) Union(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		nw := s.words[i] | w
		if nw != s.words[i] {
			changed = true
			s.words[i] = nw
		}
	}
	return changed
}

// Intersect keeps only bits present in both; reports whether s changed.
func (s *BitSet) Intersect(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		nw := s.words[i] & w
		if nw != s.words[i] {
			changed = true
			s.words[i] = nw
		}
	}
	return changed
}

// Subtract removes bits of t from s; reports whether s changed.
func (s *BitSet) Subtract(t *BitSet) bool {
	changed := false
	for i, w := range t.words {
		nw := s.words[i] &^ w
		if nw != s.words[i] {
			changed = true
			s.words[i] = nw
		}
	}
	return changed
}

// Equal reports set equality.
func (s *BitSet) Equal(t *BitSet) bool {
	for i := range s.words {
		if s.words[i] != t.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s *BitSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bits are set.
func (s *BitSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// ForEach calls f for every set bit, in increasing order.
func (s *BitSet) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*64 + b)
			w &= w - 1
		}
	}
}

func (s *BitSet) String() string {
	var parts []string
	s.ForEach(func(i int) { parts = append(parts, fmt.Sprint(i)) })
	return "{" + strings.Join(parts, ",") + "}"
}
