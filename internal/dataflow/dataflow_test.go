package dataflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ---------------------------------------------------------------- bitsets

// randomSet builds a bitset of n bits from a seed (deterministic).
func randomSet(n int, seed int64) *BitSet {
	r := rand.New(rand.NewSource(seed))
	s := NewBitSet(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s.Set(i)
		}
	}
	return s
}

func TestBitSetBasics(t *testing.T) {
	s := NewBitSet(130) // spans three words
	if !s.Empty() {
		t.Error("new set not empty")
	}
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if s.Count() != 3 {
		t.Errorf("count = %d", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Has(i) {
			t.Errorf("missing bit %d", i)
		}
	}
	s.Clear(64)
	if s.Has(64) || s.Count() != 2 {
		t.Error("clear failed")
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("ForEach = %v", got)
	}
}

func TestBitSetSetAllTrim(t *testing.T) {
	s := NewBitSet(70)
	s.SetAll()
	if s.Count() != 70 {
		t.Errorf("SetAll count = %d, want 70", s.Count())
	}
}

// Property: union is commutative on membership.
func TestQuickUnionCommutative(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		const n = 200
		a1, b1 := randomSet(n, seedA), randomSet(n, seedB)
		a2, b2 := randomSet(n, seedA), randomSet(n, seedB)
		a1.Union(b1)
		b2.Union(a2)
		return a1.Equal(b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: A ∖ B, A ∩ B, and A ∪ B have the expected per-bit semantics.
func TestQuickSetOpsSemantics(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		const n = 150
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)
		u := a.Copy()
		u.Union(b)
		i := a.Copy()
		i.Intersect(b)
		d := a.Copy()
		d.Subtract(b)
		for k := 0; k < n; k++ {
			if u.Has(k) != (a.Has(k) || b.Has(k)) {
				return false
			}
			if i.Has(k) != (a.Has(k) && b.Has(k)) {
				return false
			}
			if d.Has(k) != (a.Has(k) && !b.Has(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the "changed" return value is accurate.
func TestQuickUnionChanged(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		const n = 100
		a := randomSet(n, seedA)
		b := randomSet(n, seedB)
		before := a.Copy()
		changed := a.Union(b)
		return changed == !a.Equal(before)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------- graphs

// randomGraph builds a connected digraph with n nodes rooted at 0.
func randomGraph(n int, seed int64) Graph {
	r := rand.New(rand.NewSource(seed))
	g := Graph{N: n, Succs: make([][]int, n), Preds: make([][]int, n)}
	addEdge := func(a, b int) {
		g.Succs[a] = append(g.Succs[a], b)
		g.Preds[b] = append(g.Preds[b], a)
	}
	// spanning structure: every node i>0 reachable from some j<i
	for i := 1; i < n; i++ {
		addEdge(r.Intn(i), i)
	}
	// extra random edges (including back edges)
	for k := 0; k < n; k++ {
		addEdge(r.Intn(n), r.Intn(n))
	}
	return g
}

// Property: the entry dominates every reachable node, and the idom of a
// node dominates it.
func TestQuickDominatorProperties(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(12, seed)
		dom := Dominators(g, 0)
		// reachability
		reach := make([]bool, g.N)
		var walk func(int)
		walk = func(b int) {
			if reach[b] {
				return
			}
			reach[b] = true
			for _, s := range g.Succs[b] {
				walk(s)
			}
		}
		walk(0)
		for b := 0; b < g.N; b++ {
			if !reach[b] {
				continue
			}
			if !dom.Dominates(0, b) {
				return false
			}
			if b != 0 {
				id := dom.IDom[b]
				if id < 0 || !dom.Dominates(id, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Brute-force dominance for cross-checking: a dominates b iff removing a
// makes b unreachable.
func bruteDominates(g Graph, a, b int) bool {
	if a == b {
		return true
	}
	seen := make([]bool, g.N)
	var walk func(int)
	walk = func(x int) {
		if x == a || seen[x] {
			return
		}
		seen[x] = true
		for _, s := range g.Succs[x] {
			walk(s)
		}
	}
	walk(0)
	return !seen[b]
}

// Property: Dominates agrees with the brute-force definition on reachable
// node pairs.
func TestQuickDominatorsVsBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(9, seed)
		dom := Dominators(g, 0)
		reach := make([]bool, g.N)
		var walk func(int)
		walk = func(x int) {
			if reach[x] {
				return
			}
			reach[x] = true
			for _, s := range g.Succs[x] {
				walk(s)
			}
		}
		walk(0)
		for a := 0; a < g.N; a++ {
			for b := 0; b < g.N; b++ {
				if !reach[a] || !reach[b] {
					continue
				}
				if dom.Dominates(a, b) != bruteDominates(g, a, b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
	g := Graph{N: 4,
		Succs: [][]int{{1, 2}, {3}, {3}, {}},
		Preds: [][]int{{}, {0}, {0}, {1, 2}},
	}
	pd := PostDominators(g)
	if pd.IDom[0] != 3 {
		t.Errorf("idom-post of 0 = %d, want 3 (the join)", pd.IDom[0])
	}
	if pd.IDom[1] != 3 || pd.IDom[2] != 3 {
		t.Errorf("arms should be post-dominated by the join")
	}
	if pd.IDom[3] != -1 {
		t.Errorf("exit's post-idom should be virtual (-1), got %d", pd.IDom[3])
	}
}

func TestFindLoopsSimple(t *testing.T) {
	// 0 -> 1; 1 -> 2; 2 -> 1 (back edge); 1 -> 3
	g := Graph{N: 4,
		Succs: [][]int{{1}, {2, 3}, {1}, {}},
		Preds: [][]int{{}, {0, 2}, {1}, {1}},
	}
	loops, depth := FindLoops(g, 0)
	if len(loops) != 1 {
		t.Fatalf("found %d loops", len(loops))
	}
	l := loops[0]
	if l.Header != 1 || !l.Blocks[2] || l.Blocks[3] || l.Blocks[0] {
		t.Errorf("loop = header %d blocks %v", l.Header, l.Blocks)
	}
	if depth[1] != 1 || depth[2] != 1 || depth[0] != 0 || depth[3] != 0 {
		t.Errorf("depth = %v", depth)
	}
}

func TestFindLoopsNested(t *testing.T) {
	// outer: 1..4, inner: 2..3
	// 0->1; 1->2; 2->3; 3->2 (inner back); 3->4; 4->1 (outer back); 1->5
	g := Graph{N: 6,
		Succs: [][]int{{1}, {2, 5}, {3}, {2, 4}, {1}, {}},
		Preds: [][]int{{}, {0, 4}, {1, 3}, {2}, {3}, {1}},
	}
	loops, depth := FindLoops(g, 0)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	if depth[2] != 2 || depth[3] != 2 {
		t.Errorf("inner blocks should have depth 2: %v", depth)
	}
	if depth[1] != 1 || depth[4] != 1 {
		t.Errorf("outer-only blocks should have depth 1: %v", depth)
	}
}

// ---------------------------------------------------------------- solver

// TestSolverReachingDefs solves a tiny forward-union problem by hand.
func TestSolverReachingDefs(t *testing.T) {
	// Blocks: 0 -> 1 -> 2; 1 -> 1 (self loop)
	g := Graph{N: 3,
		Succs: [][]int{{1}, {2, 1}, {}},
		Preds: [][]int{{}, {0, 1}, {1}},
	}
	// defs: bit0 gen'd in block0; bit1 gen'd in block1, kills bit0.
	gen := []*BitSet{NewBitSet(2), NewBitSet(2), NewBitSet(2)}
	kill := []*BitSet{NewBitSet(2), NewBitSet(2), NewBitSet(2)}
	gen[0].Set(0)
	gen[1].Set(1)
	kill[1].Set(0)
	res := (&Problem{Graph: g, Dir: Forward, Meet: Union, Bits: 2, Gen: gen, Kill: kill}).Solve()
	if !res.In[1].Has(0) {
		t.Error("def0 should reach block1 entry (first iteration)")
	}
	if !res.In[1].Has(1) {
		t.Error("def1 should reach block1 entry (around the loop)")
	}
	if res.Out[1].Has(0) {
		t.Error("def0 must be killed through block1")
	}
	if !res.In[2].Has(1) || res.In[2].Has(0) {
		t.Errorf("block2 in = %v", res.In[2])
	}
}

// TestSolverMustVsMay checks the meet operators differ on a diamond where
// only one arm generates a bit.
func TestSolverMustVsMay(t *testing.T) {
	g := Graph{N: 4,
		Succs: [][]int{{1, 2}, {3}, {3}, {}},
		Preds: [][]int{{}, {0}, {0}, {1, 2}},
	}
	gen := []*BitSet{NewBitSet(1), NewBitSet(1), NewBitSet(1), NewBitSet(1)}
	gen[1].Set(0) // only the left arm
	may := (&Problem{Graph: g, Dir: Forward, Meet: Union, Bits: 1, Gen: gen}).Solve()
	must := (&Problem{Graph: g, Dir: Forward, Meet: Intersect, Bits: 1, Gen: gen}).Solve()
	if !may.In[3].Has(0) {
		t.Error("may-analysis should see the bit at the join")
	}
	if must.In[3].Has(0) {
		t.Error("must-analysis must not see the bit at the join")
	}
}

// Property: for identical gen/kill, the must solution is always a subset
// of the may solution.
func TestQuickMustSubsetOfMay(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(8, seed)
		const bits = 6
		gen := make([]*BitSet, g.N)
		kill := make([]*BitSet, g.N)
		for i := 0; i < g.N; i++ {
			gen[i] = randomSet(bits, r.Int63())
			kill[i] = randomSet(bits, r.Int63())
			kill[i].Subtract(gen[i]) // disjoint gen/kill, as in practice
		}
		may := (&Problem{Graph: g, Dir: Forward, Meet: Union, Bits: bits, Gen: gen, Kill: kill}).Solve()
		must := (&Problem{Graph: g, Dir: Forward, Meet: Intersect, Bits: bits, Gen: gen, Kill: kill}).Solve()
		for b := 0; b < g.N; b++ {
			m := must.In[b].Copy()
			m.Subtract(may.In[b])
			// Unreachable blocks keep the full "top" set under Intersect;
			// exclude them by checking reachability.
			if !m.Empty() && reachable(g, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func reachable(g Graph, target int) bool {
	seen := make([]bool, g.N)
	var walk func(int)
	walk = func(x int) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, s := range g.Succs[x] {
			walk(s)
		}
	}
	walk(0)
	return seen[target]
}

// resultsEqual compares two solver results block by block.
func resultsEqual(a, b *Result) bool {
	if len(a.In) != len(b.In) {
		return false
	}
	for i := range a.In {
		if !a.In[i].Equal(b.In[i]) || !a.Out[i].Equal(b.Out[i]) {
			return false
		}
	}
	return true
}

// Property: the RPO worklist solver computes exactly the fixed point of
// the dense reference schedule, for every direction × meet combination,
// with and without a boundary value, on random (possibly irreducible,
// possibly partially unreachable) graphs.
func TestQuickSolverMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(10, seed)
		const bits = 130 // spans three words
		gen := make([]*BitSet, g.N)
		kill := make([]*BitSet, g.N)
		for i := 0; i < g.N; i++ {
			gen[i] = randomSet(bits, r.Int63())
			kill[i] = randomSet(bits, r.Int63())
			kill[i].Subtract(gen[i])
		}
		var boundaries []*BitSet
		boundaries = append(boundaries, nil, randomSet(bits, r.Int63()))
		for _, dir := range []Direction{Forward, Backward} {
			for _, meet := range []Meet{Union, Intersect} {
				for _, bd := range boundaries {
					p := &Problem{Graph: g, Dir: dir, Meet: meet, Bits: bits,
						Gen: gen, Kill: kill, Boundary: bd}
					if !resultsEqual(p.Solve(), p.SolveReference()) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSolverUnreachableBlocks pins the contract for blocks no entry
// reaches: they still get their local (boundary-independent) solution,
// identically under both schedules.
func TestSolverUnreachableBlocks(t *testing.T) {
	// 0 -> 1; island 2 -> 3 unreachable from the entry.
	g := Graph{N: 4,
		Succs: [][]int{{1}, {}, {3}, {}},
		Preds: [][]int{{}, {0}, {}, {2}},
	}
	gen := []*BitSet{NewBitSet(2), NewBitSet(2), NewBitSet(2), NewBitSet(2)}
	gen[2].Set(1)
	p := &Problem{Graph: g, Dir: Forward, Meet: Union, Bits: 2, Gen: gen, Entries: []int{0}}
	got, want := p.Solve(), p.SolveReference()
	if !resultsEqual(got, want) {
		t.Fatalf("worklist and reference disagree on unreachable blocks")
	}
	if !got.In[3].Has(1) {
		t.Errorf("fact should flow within the unreachable island: in[3] = %v", got.In[3])
	}
}

// TestSolverBackwardLiveness solves a tiny backward problem.
func TestSolverBackwardLiveness(t *testing.T) {
	// 0 -> 1 -> 2. use of x (bit0) in block2; def (kill) in block1.
	g := Graph{N: 3,
		Succs: [][]int{{1}, {2}, {}},
		Preds: [][]int{{}, {0}, {1}},
	}
	use := []*BitSet{NewBitSet(1), NewBitSet(1), NewBitSet(1)}
	def := []*BitSet{NewBitSet(1), NewBitSet(1), NewBitSet(1)}
	use[2].Set(0)
	def[1].Set(0)
	res := (&Problem{Graph: g, Dir: Backward, Meet: Union, Bits: 1, Gen: use, Kill: def}).Solve()
	if !res.In[2].Has(0) {
		t.Error("x live into its use")
	}
	if !res.In[1].Has(0) == false && res.In[1].Has(0) {
		t.Error("x should not be live into block1 (defined there before any use)")
	}
	if res.In[0].Has(0) {
		t.Error("x dead above the def")
	}
}
