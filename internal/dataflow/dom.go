package dataflow

// DomTree holds immediate dominators (or postdominators) for a Graph.
type DomTree struct {
	// IDom[b] is the immediate dominator of b, or -1 for the root and for
	// unreachable blocks.
	IDom []int
	root int
}

// Dominators computes the dominator tree of g rooted at entry using the
// iterative algorithm of Cooper, Harvey & Kennedy over a reverse-postorder
// numbering.
func Dominators(g Graph, entry int) *DomTree {
	return domsOf(g.N, g.Succs, g.Preds, entry)
}

// PostDominators computes the postdominator tree of g. Because a function
// may have several exit blocks, a virtual exit is synthesized internally;
// blocks whose immediate postdominator is the virtual exit get IDom -1.
func PostDominators(g Graph) *DomTree {
	n := g.N
	// Build the reverse graph with a virtual exit node n.
	succs := make([][]int, n+1)
	preds := make([][]int, n+1)
	for b := 0; b < n; b++ {
		// reversed edges
		for _, s := range g.Succs[b] {
			succs[s] = append(succs[s], b)
			preds[b] = append(preds[b], s)
		}
		if len(g.Succs[b]) == 0 {
			succs[n] = append(succs[n], b)
			preds[b] = append(preds[b], n)
		}
	}
	t := domsOf(n+1, succs, preds, n)
	out := &DomTree{IDom: make([]int, n), root: -1}
	for b := 0; b < n; b++ {
		if t.IDom[b] == n {
			out.IDom[b] = -1
		} else {
			out.IDom[b] = t.IDom[b]
		}
	}
	return out
}

func domsOf(n int, succs, preds [][]int, entry int) *DomTree {
	// Reverse postorder from entry.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	var walk func(int)
	walk = func(b int) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range succs[b] {
			walk(s)
		}
		order = append(order, b)
	}
	walk(entry)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = i
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[entry] = entry

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		for _, b := range order {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if rpoNum[p] < 0 || idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = -1
	return &DomTree{IDom: idom, root: entry}
}

// Dominates reports whether a dominates b (reflexive).
func (t *DomTree) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = t.IDom[b]
	}
	return false
}

// Loop is one natural loop.
type Loop struct {
	Header int
	// Blocks contains every block in the loop body (including the header).
	Blocks map[int]bool
	// Latches are the blocks with back edges to the header.
	Latches []int
	// Preheader is filled by the optimizer when it inserts one (-1 if
	// absent).
	Preheader int
	// Parent loop index in the Loops slice, or -1 for top-level loops.
	Parent int
	Depth  int
}

// FindLoops detects natural loops (back edges whose target dominates the
// source) and computes per-block loop depth. Loops sharing a header are
// merged.
func FindLoops(g Graph, entry int) (loops []*Loop, depth []int) {
	dom := Dominators(g, entry)
	byHeader := map[int]*Loop{}
	for b := 0; b < g.N; b++ {
		for _, s := range g.Succs[b] {
			if dom.Dominates(s, b) {
				// back edge b -> s
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[int]bool{s: true}, Preheader: -1, Parent: -1}
					byHeader[s] = l
					loops = append(loops, l)
				}
				l.Latches = append(l.Latches, b)
				// Collect the loop body: all blocks that reach the latch
				// backwards without passing the header.
				var stack []int
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range g.Preds[x] {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	// Nesting: loop A is nested in B if A's header is in B's blocks and A != B.
	for i, a := range loops {
		best := -1
		bestSize := 1 << 30
		for j, b := range loops {
			if i == j {
				continue
			}
			if b.Blocks[a.Header] && len(b.Blocks) < bestSize && len(b.Blocks) > len(a.Blocks) {
				best, bestSize = j, len(b.Blocks)
			}
		}
		a.Parent = best
	}
	for _, l := range loops {
		d := 1
		p := l.Parent
		for p != -1 {
			d++
			p = loops[p].Parent
		}
		l.Depth = d
	}
	depth = make([]int, g.N)
	for _, l := range loops {
		for b := range l.Blocks {
			if l.Depth > depth[b] {
				depth[b] = l.Depth
			}
		}
	}
	return loops, depth
}
