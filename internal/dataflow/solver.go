package dataflow

// Graph is the abstract CFG view the solver works on: blocks are numbered
// 0..N-1 with block 0 conventionally the entry (callers may pass any entry
// set). Both the IR CFG and the machine-code CFG implement it by exporting
// successor/predecessor index slices.
type Graph struct {
	N     int
	Succs [][]int
	Preds [][]int
}

// Direction of a data-flow problem.
type Direction int

// Problem directions.
const (
	Forward Direction = iota
	Backward
)

// Meet operator of a data-flow problem.
type Meet int

// Meet operators: Union computes a "may" (some-path) solution, Intersect a
// "must" (all-paths) solution.
const (
	Union Meet = iota
	Intersect
)

// Problem is a gen/kill bit-vector data-flow problem:
//
//	out[b] = gen[b] ∪ (in[b] − kill[b])       (forward)
//	in[b]  = meet over preds' out (forward)
//
// Boundary is the value at the entry (forward) or exits (backward).
type Problem struct {
	Graph     Graph
	Dir       Direction
	Meet      Meet
	Bits      int
	Gen, Kill []*BitSet // per block
	// Boundary is the in-set of the entry block (forward) or the out-set
	// of exit blocks (backward). nil means empty.
	Boundary *BitSet
	// Entries lists boundary blocks; for Forward it defaults to {0}, for
	// Backward it defaults to all blocks with no successors.
	Entries []int
}

// Result holds the fixed-point solution.
type Result struct {
	In, Out []*BitSet
}

// Solve runs the iterative worklist algorithm to a fixed point.
func (p *Problem) Solve() *Result {
	n := p.Graph.N
	res := &Result{In: make([]*BitSet, n), Out: make([]*BitSet, n)}

	boundary := p.Boundary
	if boundary == nil {
		boundary = NewBitSet(p.Bits)
	}
	entries := p.Entries
	if entries == nil {
		if p.Dir == Forward {
			entries = []int{0}
		} else {
			for b := 0; b < n; b++ {
				if len(p.Graph.Succs[b]) == 0 {
					entries = append(entries, b)
				}
			}
		}
	}
	isEntry := make([]bool, n)
	for _, e := range entries {
		isEntry[e] = true
	}

	// Initial values: for Intersect problems, interior sets start full
	// (top); for Union they start empty (bottom).
	for b := 0; b < n; b++ {
		res.In[b] = NewBitSet(p.Bits)
		res.Out[b] = NewBitSet(p.Bits)
		if p.Meet == Intersect {
			res.In[b].SetAll()
			res.Out[b].SetAll()
		}
	}

	// flowIn is the set flowing into the transfer function; flowOut the
	// set it produces. For Backward, roles of In/Out swap.
	var flowIn, flowOut []*BitSet
	var edgesIn [][]int
	if p.Dir == Forward {
		flowIn, flowOut = res.In, res.Out
		edgesIn = p.Graph.Preds
	} else {
		flowIn, flowOut = res.Out, res.In
		edgesIn = p.Graph.Succs
	}

	// Seed boundary blocks.
	for _, e := range entries {
		flowIn[e].CopyFrom(boundary)
	}

	changed := true
	tmp := NewBitSet(p.Bits)
	for changed {
		changed = false
		for b := 0; b < n; b++ {
			// Meet over incoming edges.
			if !isEntry[b] || len(edgesIn[b]) > 0 {
				if len(edgesIn[b]) > 0 {
					first := true
					for _, pb := range edgesIn[b] {
						if first {
							tmp.CopyFrom(flowOut[pb])
							first = false
						} else if p.Meet == Union {
							tmp.Union(flowOut[pb])
						} else {
							tmp.Intersect(flowOut[pb])
						}
					}
					if isEntry[b] {
						// A boundary block with incoming edges (e.g. a loop
						// header that is also the entry) still receives the
						// boundary value.
						if p.Meet == Union {
							tmp.Union(boundary)
						} else {
							tmp.Intersect(boundary)
						}
					}
					if !tmp.Equal(flowIn[b]) {
						flowIn[b].CopyFrom(tmp)
						changed = true
					}
				}
			}
			// Transfer: out = gen ∪ (in − kill).
			tmp.CopyFrom(flowIn[b])
			if p.Kill != nil && p.Kill[b] != nil {
				tmp.Subtract(p.Kill[b])
			}
			if p.Gen != nil && p.Gen[b] != nil {
				tmp.Union(p.Gen[b])
			}
			if !tmp.Equal(flowOut[b]) {
				flowOut[b].CopyFrom(tmp)
				changed = true
			}
		}
	}
	return res
}
