package dataflow

// Graph is the abstract CFG view the solver works on: blocks are numbered
// 0..N-1 with block 0 conventionally the entry (callers may pass any entry
// set). Both the IR CFG and the machine-code CFG implement it by exporting
// successor/predecessor index slices.
type Graph struct {
	N     int
	Succs [][]int
	Preds [][]int
}

// Direction of a data-flow problem.
type Direction int

// Problem directions.
const (
	Forward Direction = iota
	Backward
)

// Meet operator of a data-flow problem.
type Meet int

// Meet operators: Union computes a "may" (some-path) solution, Intersect a
// "must" (all-paths) solution.
const (
	Union Meet = iota
	Intersect
)

// Problem is a gen/kill bit-vector data-flow problem:
//
//	out[b] = gen[b] ∪ (in[b] − kill[b])       (forward)
//	in[b]  = meet over preds' out (forward)
//
// Boundary is the value at the entry (forward) or exits (backward).
type Problem struct {
	Graph     Graph
	Dir       Direction
	Meet      Meet
	Bits      int
	Gen, Kill []*BitSet // per block
	// Boundary is the in-set of the entry block (forward) or the out-set
	// of exit blocks (backward). nil means empty.
	Boundary *BitSet
	// Entries lists boundary blocks; for Forward it defaults to {0}, for
	// Backward it defaults to all blocks with no successors.
	Entries []int
}

// Result holds the fixed-point solution.
type Result struct {
	In, Out []*BitSet
}

// solverState is the shared setup of Solve and SolveReference: initial
// values, boundary seeding, and the direction-resolved views of the
// solution (flowIn is the set entering each block's transfer function,
// edgesIn the edges the meet reads — preds for Forward, succs for
// Backward).
type solverState struct {
	res             *Result
	boundary        *BitSet
	entries         []int
	isEntry         []bool
	flowIn, flowOut []*BitSet
	edgesIn         [][]int
	edgesOut        [][]int
}

func (p *Problem) setup() *solverState {
	n := p.Graph.N
	st := &solverState{res: &Result{In: make([]*BitSet, n), Out: make([]*BitSet, n)}}

	st.boundary = p.Boundary
	if st.boundary == nil {
		st.boundary = NewBitSet(p.Bits)
	}
	st.entries = p.Entries
	if st.entries == nil {
		if p.Dir == Forward {
			st.entries = []int{0}
		} else {
			for b := 0; b < n; b++ {
				if len(p.Graph.Succs[b]) == 0 {
					st.entries = append(st.entries, b)
				}
			}
		}
	}
	st.isEntry = make([]bool, n)
	for _, e := range st.entries {
		st.isEntry[e] = true
	}

	// Initial values: for Intersect problems, interior sets start full
	// (top); for Union they start empty (bottom). All 2n sets share one
	// backing array, allocated in a single shot.
	words := wordsFor(p.Bits)
	backing := make([]uint64, 2*n*words)
	for b := 0; b < n; b++ {
		st.res.In[b] = bitSetOver(backing[(2*b)*words:(2*b+1)*words], p.Bits)
		st.res.Out[b] = bitSetOver(backing[(2*b+1)*words:(2*b+2)*words], p.Bits)
		if p.Meet == Intersect {
			st.res.In[b].SetAll()
			st.res.Out[b].SetAll()
		}
	}

	if p.Dir == Forward {
		st.flowIn, st.flowOut = st.res.In, st.res.Out
		st.edgesIn, st.edgesOut = p.Graph.Preds, p.Graph.Succs
	} else {
		st.flowIn, st.flowOut = st.res.Out, st.res.In
		st.edgesIn, st.edgesOut = p.Graph.Succs, p.Graph.Preds
	}

	// Seed boundary blocks.
	for _, e := range st.entries {
		st.flowIn[e].CopyFrom(st.boundary)
	}
	return st
}

// step applies block b's data-flow equations once, using tmp as scratch.
// It reports whether flowOut[b] changed (i.e. whether b's dependents need
// to be revisited).
func (p *Problem) step(st *solverState, b int, tmp *BitSet) bool {
	// Meet over incoming edges. Blocks without incoming edges keep their
	// seeded (entry) or initial (unreachable) value.
	if len(st.edgesIn[b]) > 0 {
		first := true
		for _, pb := range st.edgesIn[b] {
			if first {
				tmp.CopyFrom(st.flowOut[pb])
				first = false
			} else if p.Meet == Union {
				tmp.Union(st.flowOut[pb])
			} else {
				tmp.Intersect(st.flowOut[pb])
			}
		}
		if st.isEntry[b] {
			// A boundary block with incoming edges (e.g. a loop header
			// that is also the entry) still receives the boundary value.
			if p.Meet == Union {
				tmp.Union(st.boundary)
			} else {
				tmp.Intersect(st.boundary)
			}
		}
		if !tmp.Equal(st.flowIn[b]) {
			st.flowIn[b].CopyFrom(tmp)
		}
	}
	// Transfer: out = gen ∪ (in − kill).
	tmp.CopyFrom(st.flowIn[b])
	if p.Kill != nil && p.Kill[b] != nil {
		tmp.Subtract(p.Kill[b])
	}
	if p.Gen != nil && p.Gen[b] != nil {
		tmp.Union(p.Gen[b])
	}
	if !tmp.Equal(st.flowOut[b]) {
		st.flowOut[b].CopyFrom(tmp)
		return true
	}
	return false
}

// visitOrder returns the blocks in reverse postorder of the traversal
// graph the solver propagates along: successors for Forward problems
// (classic RPO), predecessors for Backward problems (postorder of the
// original CFG). Blocks unreachable from the entries are appended in
// index order so they still receive their (boundary-independent) local
// solution, exactly as the reference solver computes it.
func (p *Problem) visitOrder(st *solverState) []int {
	n := p.Graph.N
	order := make([]int, 0, n)
	seen := make([]bool, n)
	// Iterative DFS; frame = (block, next successor index).
	type frame struct{ b, i int }
	stack := make([]frame, 0, 16)
	for _, root := range st.entries {
		if seen[root] {
			continue
		}
		seen[root] = true
		stack = append(stack, frame{root, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(st.edgesOut[f.b]) {
				s := st.edgesOut[f.b][f.i]
				f.i++
				if !seen[s] {
					seen[s] = true
					stack = append(stack, frame{s, 0})
				}
				continue
			}
			order = append(order, f.b)
			stack = stack[:len(stack)-1]
		}
	}
	// order is postorder; reverse to get RPO.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	for b := 0; b < n; b++ {
		if !seen[b] {
			order = append(order, b)
		}
	}
	return order
}

// Solve runs a worklist iteration to the fixed point, visiting blocks in
// reverse postorder of the propagation direction (RPO of the CFG for
// forward problems, RPO of the reversed CFG — i.e. postorder — for
// backward problems), so on a reducible CFG most facts propagate in a
// single sweep and the loop converges in O(loop-nesting depth) sweeps.
//
// The worklist is an in-worklist bitmap swept in that fixed order: a
// block is re-processed only if one of the blocks feeding its meet
// changed since the block was last visited. Termination: the transfer
// functions out = gen ∪ (in − kill) and the meets are monotone on the
// finite lattice of bit vectors, every set moves monotonically (upward
// for Union from ⊥, downward for Intersect from ⊤), and a block is
// re-queued only after an actual change, so the number of re-visits is
// bounded by Bits·N and the iteration reaches the same unique fixed
// point as the dense reference schedule (SolveReference).
func (p *Problem) Solve() *Result {
	st := p.setup()
	n := p.Graph.N
	order := p.visitOrder(st)

	inWork := make([]bool, n)
	for b := range inWork {
		inWork[b] = true
	}
	remaining := n
	tmp := NewBitSet(p.Bits)
	for remaining > 0 {
		for _, b := range order {
			if !inWork[b] {
				continue
			}
			inWork[b] = false
			remaining--
			if p.step(st, b, tmp) {
				for _, s := range st.edgesOut[b] {
					if !inWork[s] {
						inWork[s] = true
						remaining++
					}
				}
			}
		}
	}
	return st.res
}

// SolveReference is the dense round-robin schedule the solver used before
// the worklist rewrite: sweep all blocks in index order until a full pass
// changes nothing. It computes the identical fixed point and is retained
// as the oracle for differential tests (and as the simplest statement of
// the algorithm); use Solve everywhere else.
func (p *Problem) SolveReference() *Result {
	st := p.setup()
	n := p.Graph.N
	changed := true
	tmp := NewBitSet(p.Bits)
	for changed {
		changed = false
		for b := 0; b < n; b++ {
			if p.step(st, b, tmp) {
				changed = true
			}
		}
	}
	return st.res
}
