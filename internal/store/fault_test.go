package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// Disk-tier degradation tests: every way the spill tier can lie or fail
// must end in a fresh compute with the correct value, never a cached
// error or a served corruption; sustained I/O failure must trip the
// breaker into memory-only mode, and a healthy disk must bring it back.

func TestTruncatedSpillFallsBackToCompute(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, Config[ident, string]{MaxEntries: 1, Dir: dir})
	get(t, s, "a", 5)
	get(t, s, "b", 5) // evicts and spills a
	path := filepath.Join(dir, "id-a.art")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	v, hit := get(t, s, "a", 5)
	if hit || v != "value-of-a" {
		t.Fatalf("truncated spill served: (%q, hit=%v)", v, hit)
	}
	st := s.Stats()
	if st.SpillErrors == 0 {
		t.Fatalf("truncated spill not counted: %+v", st)
	}
	if st.SpillDegraded || st.SpillDegradations != 0 {
		t.Fatalf("data error tripped the breaker: %+v", st)
	}
	// The bad file is gone, so the id cannot wedge future lookups.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt spill file not removed: %v", err)
	}
	// The recompute is cached normally — not the error.
	if v, hit := get(t, s, "a", 5); !hit || v != "value-of-a" {
		t.Fatalf("recompute not cached: (%q, hit=%v)", v, hit)
	}
}

func TestMismatchedIdentitySpillFallsBack(t *testing.T) {
	dir := t.TempDir()
	// A well-formed record whose embedded identity is not the one the id
	// names: a stale or colliding file. Decode succeeds; the identity
	// check must reject it.
	bogus := fmt.Sprintf("%s\x00%s\x00%s", "other", "body-of-other", "value-of-other")
	if err := os.WriteFile(filepath.Join(dir, "id-a.art"), []byte(bogus), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestStore(t, Config[ident, string]{Dir: dir})
	v, hit := get(t, s, "a", 5)
	if hit || v != "value-of-a" {
		t.Fatalf("mismatched spill served: (%q, hit=%v)", v, hit)
	}
	if st := s.Stats(); st.SpillErrors == 0 || st.SpillDegraded {
		t.Fatalf("stats after identity mismatch = %+v", st)
	}
}

func TestUnreadableSpillDirFallsBackAndCountsIOErrors(t *testing.T) {
	// Point the disk tier at a path that is a regular file: every read
	// under it fails with ENOTDIR — an I/O error (the disk answered
	// garbage), not a missing file — so the breaker counts it.
	parent := t.TempDir()
	notADir := filepath.Join(parent, "spill")
	if err := os.WriteFile(notADir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestStore(t, Config[ident, string]{Dir: notADir, DegradeAfter: 100})
	defer s.Close()
	for _, k := range []string{"a", "b", "c"} {
		if v, hit := get(t, s, k, 5); hit || v != "value-of-"+k {
			t.Fatalf("unreadable dir: %s = (%q, hit=%v)", k, v, hit)
		}
	}
	if st := s.Stats(); st.SpillErrors == 0 {
		t.Fatalf("unreadable dir I/O errors not counted: %+v", st)
	}
}

func TestBreakerDegradesAndProbeRecovers(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	dir := t.TempDir()
	s := newTestStore(t, Config[ident, string]{
		Dir:           dir,
		DegradeAfter:  2,
		ProbeInterval: 10 * time.Millisecond,
	})
	defer s.Close()

	fault.Set("store.spill.read", fault.Rule{})
	get(t, s, "a", 5) // read attempt 1 fails
	get(t, s, "b", 5) // read attempt 2 fails -> breaker trips
	st := s.Stats()
	if !st.SpillDegraded || st.SpillDegradations != 1 {
		t.Fatalf("breaker did not trip: %+v", st)
	}
	// Degraded: the disk is not touched at all, so a poisoned read point
	// cannot even fire.
	before := fault.Fired("store.spill.read")
	get(t, s, "c", 5)
	if fired := fault.Fired("store.spill.read"); fired != before {
		t.Fatalf("degraded store still touched the disk (%d -> %d)", before, fired)
	}

	// Heal the disk; the probe must re-enable the tier.
	fault.Clear("store.spill.read")
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().SpillDegraded {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered: %+v", s.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st = s.Stats()
	if st.SpillProbes == 0 {
		t.Fatalf("recovery without probes: %+v", st)
	}
	// The tier works again end to end: flush, then reload from disk.
	if err := s.Flush(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	restarted := newTestStore(t, Config[ident, string]{Dir: dir})
	if v, hit := get(t, restarted, "c", 5); !hit || v != "value-of-c" {
		t.Fatalf("reload after recovery = (%q, hit=%v)", v, hit)
	}
}

func TestNotExistReadsDoNotTrip(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, Config[ident, string]{Dir: dir, DegradeAfter: 2})
	defer s.Close()
	// Cold misses read the disk and find nothing; an empty tier is a
	// healthy tier.
	for _, k := range []string{"a", "b", "c", "d"} {
		get(t, s, k, 5)
	}
	if st := s.Stats(); st.SpillDegraded || st.SpillDegradations != 0 {
		t.Fatalf("NotExist reads tripped the breaker: %+v", st)
	}
}

func TestFlushSkippedWhileDegraded(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	s := newTestStore(t, Config[ident, string]{
		Dir:           t.TempDir(),
		DegradeAfter:  1,
		ProbeInterval: time.Hour, // keep it degraded for the test's span
	})
	defer s.Close()
	fault.Set("store.spill.read", fault.Rule{})
	get(t, s, "a", 5) // trips immediately (DegradeAfter 1)
	if st := s.Stats(); !st.SpillDegraded {
		t.Fatalf("breaker did not trip: %+v", st)
	}
	err := s.Flush()
	if err == nil {
		t.Fatal("degraded Flush reported success")
	}
	if st := s.Stats(); st.FlushErrors != 1 {
		t.Fatalf("degraded Flush not counted: %+v", st)
	}
}

func TestInjectedWriteAndRenameFailuresCount(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	dir := t.TempDir()
	s := newTestStore(t, Config[ident, string]{MaxEntries: 1, Dir: dir, DegradeAfter: 100})
	defer s.Close()

	fault.Set("store.spill.write", fault.Rule{Times: 1})
	get(t, s, "a", 5)
	get(t, s, "b", 5) // eviction of a: spill write fails
	st := s.Stats()
	if st.SpillErrors != 1 || st.SpillWrites != 0 {
		t.Fatalf("write failure stats = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "id-a.art")); !os.IsNotExist(err) {
		t.Fatal("failed spill left a file behind")
	}

	fault.Set("store.spill.rename", fault.Rule{Times: 1})
	get(t, s, "c", 5) // eviction of b: rename fails after the temp write
	st = s.Stats()
	if st.SpillErrors != 2 {
		t.Fatalf("rename failure stats = %+v", st)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp") || strings.Contains(e.Name(), ".art.tmp") {
			t.Fatalf("rename failure leaked temp file %s", e.Name())
		}
	}
}

func TestInjectedPartialWriteIsRejectedOnRead(t *testing.T) {
	fault.Enable(1)
	defer fault.Disable()
	dir := t.TempDir()
	s := newTestStore(t, Config[ident, string]{MaxEntries: 1, Dir: dir, DegradeAfter: 100})
	defer s.Close()

	fault.Set("store.spill.partial", fault.Rule{Times: 1, CutTo: 0.4})
	get(t, s, "a", 5)
	get(t, s, "b", 5) // spills a truncated record for a
	if fault.Fired("store.spill.partial") != 1 {
		t.Fatal("partial-write point never fired")
	}
	v, hit := get(t, s, "a", 5) // must reject the short record and recompute
	if hit || v != "value-of-a" {
		t.Fatalf("partial spill served: (%q, hit=%v)", v, hit)
	}
}

// TestComputePanicDoesNotStrandWaiters pins the panic-safety contract of
// Get: a panicking compute must resolve the in-flight entry with an
// error so coalesced waiters unblock, and the identity must stay
// uncached so the next Get recomputes.
func TestComputePanicDoesNotStrandWaiters(t *testing.T) {
	s := newTestStore(t, Config[ident, string]{})
	m := ident{Name: "p", Body: "body-of-p"}
	id := func() string { return "id-p" }

	computeStarted := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // the panic reaches the computing caller
		s.Get(m, id, func() (string, int64, error) {
			close(computeStarted)
			<-release
			panic("compiler bug")
		})
	}()

	<-computeStarted
	waiterErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := s.Get(m, id, func() (string, int64, error) {
			return "", 0, errors.New("waiter should have coalesced, not computed")
		})
		waiterErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter coalesce
	close(release)

	select {
	case err := <-waiterErr:
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("coalesced waiter got %v, want compute-panicked error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coalesced waiter deadlocked on a panicking compute")
	}
	wg.Wait()

	// Not cached: a later Get runs a fresh compute.
	v, hit, err := s.Get(m, id, func() (string, int64, error) { return "recovered", 1, nil })
	if err != nil || hit || v != "recovered" {
		t.Fatalf("Get after panic = (%q, hit=%v, %v)", v, hit, err)
	}
}
