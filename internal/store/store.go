// Package store is the unified storage layer behind every compiled-artifact
// and analysis retention path: a sharded, memory-accounted, coalescing LRU
// cache over an optional disk tier.
//
// The store is generic over the request identity M (a comparable struct,
// e.g. {name, source, config}) and the cached value V. Lookups are a cheap
// caller-supplied 64-bit hash (shard selector) plus exact equality on M, so
// the hot hit path never touches a cryptographic hash; the expensive
// content-addressed ID (also the spill filename) is computed only on a
// miss, via the id callback.
//
// Tiers and invariants:
//
//   - In-memory tier: key-hash sharding with per-shard locks, per-shard LRU
//     ordering, and byte-cost accounting. Every entry is charged its value
//     cost at completion; later AddCost calls (e.g. lazily built analyses)
//     charge the same entry, so the artifact and its analyses are accounted
//     — and evicted — as one unit. The per-shard budget is total/shards;
//     whenever a shard's lock is free, its accounted bytes are within its
//     budget (eviction runs in the same critical section as any charge).
//   - Disk tier (optional): evicted completed entries are serialized by the
//     injected Codec and written to Dir keyed by their content-addressed
//     ID, and misses consult the disk before computing, so a process
//     restart keeps its spilled warm set. Flush persists the resident
//     completed set (for graceful shutdown). Disk errors are counted and
//     fall back to compute; they are never fatal.
//   - Spill circuit breaker: after DegradeAfter consecutive disk I/O
//     failures the disk tier is taken out of the request path entirely —
//     the store degrades to memory-only (correct, just colder) — and a
//     background probe re-enables it once the disk answers again. Data
//     errors (corrupt or mismatched spill files) fall back to compute but
//     do not trip the breaker: they indicate bad bytes, not a bad disk.
//   - Coalescing: concurrent Gets of one identity share a single compute;
//     an in-flight entry is never evicted.
package store

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Codec serializes values for the disk tier. Decode returns the identity
// and value reconstructed from data plus the value's accounted byte cost.
type Codec[M comparable, V any] interface {
	Encode(id string, m M, v V) ([]byte, error)
	Decode(id string, data []byte) (M, V, int64, error)
}

// Config tunes a Store. The zero value is a single-shard, unbounded,
// memory-only store.
type Config[M comparable, V any] struct {
	// Shards is the shard count, rounded up to a power of two; <= 1 means
	// one shard (a single-lock store, the legacy cache behavior).
	Shards int
	// MaxEntries bounds resident entries. With one shard the bound is
	// exact (strict global LRU); with many it is enforced per shard at
	// ceil(MaxEntries/Shards), so the global count never exceeds
	// MaxEntries + Shards - 1. <= 0 means unbounded.
	MaxEntries int
	// MemoryBudget bounds accounted bytes across all shards; each shard
	// enforces MemoryBudget/Shards. <= 0 means unbounded.
	MemoryBudget int64
	// Dir enables the disk tier: evicted (and Flushed) entries are
	// serialized there by Codec. Empty means memory-only.
	Dir string
	// Codec is required when Dir is set.
	Codec Codec[M, V]
	// Hash is the cheap 64-bit identity hash used for shard selection and
	// index lookup (e.g. hash/maphash over the request fields). Required.
	// It deliberately need not be collision-free: entries are matched by
	// exact equality on M, the hash only routes.
	Hash func(M) uint64
	// DegradeAfter is the spill circuit breaker's threshold: after this
	// many consecutive disk I/O failures the disk tier is disabled (the
	// store runs memory-only) until the background probe succeeds.
	// <= 0 means DefaultDegradeAfter. Only meaningful with Dir.
	DegradeAfter int
	// ProbeInterval is how often the background probe retries a degraded
	// disk tier; <= 0 means DefaultProbeInterval.
	ProbeInterval time.Duration
}

// Defaults for the spill circuit breaker.
const (
	DefaultDegradeAfter  = 5
	DefaultProbeInterval = 2 * time.Second
)

// Stats is a point-in-time snapshot of the store's counters, taken with
// every shard's lock in turn so per-shard views are internally consistent.
type Stats struct {
	Hits        int64 // served from a completed or in-flight entry (memory or disk)
	Misses      int64 // ran the compute callback
	Evictions   int64 // completed entries dropped by the entry or byte bound
	Entries     int   // resident entries (including in-flight)
	MemoryBytes int64 // accounted bytes of resident completed entries

	SpillHits   int64 // misses served by deserializing the disk tier
	SpillMisses int64 // disk tier consulted and had no (usable) file
	SpillWrites int64 // entries serialized to the disk tier
	SpillErrors int64 // disk tier I/O or codec failures (all non-fatal)

	SpillDegraded     bool  // disk tier currently degraded (memory-only)
	SpillDegradations int64 // times the circuit breaker tripped
	SpillProbes       int64 // background probe attempts while degraded
	FlushErrors       int64 // entries Flush failed (or declined) to persist

	Shards       int
	MemoryBudget int64
}

type entry[M comparable, V any] struct {
	m    M
	id   string // content-addressed id; set before done is closed on the miss path
	elem *list.Element
	done chan struct{} // closed once val/err are filled
	val  V
	err  error
	cost int64 // accounted bytes; guarded by the owning shard's lock
}

type shard[M comparable, V any] struct {
	mu      sync.Mutex
	index   map[M]*entry[M, V]      // request identity -> entry (incl. in-flight)
	byID    map[string]*entry[M, V] // content id -> completed entry
	order   *list.List              // front = most recently used
	bytes   int64
	budget  int64
	maxEnts int

	hits, misses, evictions                          int64
	spillHits, spillMisses, spillWrites, spillErrors int64
}

// Store is a sharded, memory-accounted, coalescing cache. All methods are
// safe for concurrent use.
type Store[M comparable, V any] struct {
	shards []*shard[M, V]
	mask   uint64
	dir    string
	codec  Codec[M, V]
	hash   func(M) uint64

	brk         *breaker // nil without a disk tier
	flushErrors atomic.Int64
}

// breaker is the spill tier's circuit breaker. Consecutive disk I/O
// failures (reads, writes, renames — not decode/data errors) trip it;
// while tripped the store skips the disk entirely and a background probe
// goroutine retries until the disk answers, then re-enables the tier and
// exits. One probe goroutine exists at a time; close stops it for good.
type breaker struct {
	threshold int
	interval  time.Duration
	probe     func() error

	degraded    atomic.Bool
	degradation atomic.Int64
	probes      atomic.Int64

	mu      sync.Mutex
	consec  int
	probing bool
	closed  bool
	stop    chan struct{}
}

// failure records one disk I/O failure, tripping the breaker (and
// launching the probe) at the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if b.consec < b.threshold || b.degraded.Load() {
		return
	}
	b.degraded.Store(true)
	b.degradation.Add(1)
	if !b.probing && !b.closed {
		b.probing = true
		go b.probeLoop()
	}
}

// success records one healthy disk response (a clean read, write, or
// not-found), resetting the consecutive-failure count.
func (b *breaker) success() {
	b.mu.Lock()
	b.consec = 0
	b.mu.Unlock()
}

func (b *breaker) probeLoop() {
	t := time.NewTicker(b.interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			b.mu.Lock()
			b.probing = false
			b.mu.Unlock()
			return
		case <-t.C:
			b.probes.Add(1)
			if b.probe() == nil {
				b.mu.Lock()
				b.consec = 0
				b.degraded.Store(false)
				b.probing = false
				b.mu.Unlock()
				return
			}
		}
	}
}

func (b *breaker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.stop)
	}
}

// diskUp reports whether the disk tier is configured and not degraded.
func (s *Store[M, V]) diskUp() bool {
	return s.dir != "" && s.codec != nil && !s.brk.degraded.Load()
}

// New creates a store from cfg.
func New[M comparable, V any](cfg Config[M, V]) *Store[M, V] {
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	perBudget := int64(0)
	if cfg.MemoryBudget > 0 {
		perBudget = cfg.MemoryBudget / int64(n)
		if perBudget == 0 {
			perBudget = 1 // tiny budget: keep enforcing, however thrashy
		}
	}
	perEnts := 0
	if cfg.MaxEntries > 0 {
		perEnts = (cfg.MaxEntries + n - 1) / n
	}
	if cfg.Hash == nil {
		panic("store: Config.Hash is required")
	}
	s := &Store[M, V]{shards: make([]*shard[M, V], n), mask: uint64(n - 1), dir: cfg.Dir, codec: cfg.Codec, hash: cfg.Hash}
	if cfg.Dir != "" {
		threshold := cfg.DegradeAfter
		if threshold <= 0 {
			threshold = DefaultDegradeAfter
		}
		interval := cfg.ProbeInterval
		if interval <= 0 {
			interval = DefaultProbeInterval
		}
		s.brk = &breaker{
			threshold: threshold,
			interval:  interval,
			probe:     s.probeDisk,
			stop:      make(chan struct{}),
		}
	}
	for i := range s.shards {
		s.shards[i] = &shard[M, V]{
			index:   map[M]*entry[M, V]{},
			byID:    map[string]*entry[M, V]{},
			order:   list.New(),
			budget:  perBudget,
			maxEnts: perEnts,
		}
	}
	return s
}

// Get returns the value for identity m, computing it at most once across
// concurrent callers. id produces the content-addressed identifier and is
// invoked only on a miss; compute builds the value and reports its byte
// cost. hit reports that compute was skipped (the value came from a
// completed or in-flight entry, or was rehydrated from the disk tier).
// Failed computes are not cached: every coalesced waiter receives the
// error and the identity is forgotten.
func (s *Store[M, V]) Get(m M, id func() string, compute func() (V, int64, error)) (V, bool, error) {
	sh := s.shards[s.hash(m)&s.mask]
	sh.mu.Lock()
	if e, ok := sh.index[m]; ok {
		sh.hits++
		sh.order.MoveToFront(e.elem)
		sh.mu.Unlock()
		<-e.done
		return e.val, true, e.err
	}
	e := &entry[M, V]{m: m, done: make(chan struct{})}
	e.elem = sh.order.PushFront(e)
	sh.index[m] = e
	sh.mu.Unlock()

	// A panicking id or compute callback must not strand the in-flight
	// entry: coalesced waiters block on e.done forever if it never
	// resolves. Resolve with an error (waiters fail, identity forgotten),
	// then let the panic continue to the caller's recovery.
	defer func() {
		if r := recover(); r != nil {
			if !completed(e) {
				var zero V
				s.resolve(sh, e, zero, 0, fmt.Errorf("store: compute panicked: %v", r), resolveCompute)
			}
			panic(r)
		}
	}()

	e.id = id()
	if v, cost, ok := s.loadSpilled(sh, e); ok {
		s.resolve(sh, e, v, cost, nil, resolveDiskGet)
		return e.val, true, nil
	}
	v, cost, err := compute()
	s.resolve(sh, e, v, cost, err, resolveCompute)
	return e.val, false, e.err
}

// LookupID returns the completed entry with the given content-addressed
// id, consulting memory first and then the disk tier (rehydrating into
// memory on a disk hit). It never runs a compute; ok is false when the id
// is nowhere resident.
func (s *Store[M, V]) LookupID(id string) (V, bool) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if e, ok := sh.byID[id]; ok {
			// Handle lookups refresh recency but do not count as cache
			// hits: Hits/Misses mean compile (Get) traffic.
			sh.order.MoveToFront(e.elem)
			sh.mu.Unlock()
			<-e.done
			if e.err == nil {
				return e.val, true
			}
			var zero V
			return zero, false
		}
		sh.mu.Unlock()
	}
	var zero V
	if !s.diskUp() {
		return zero, false
	}
	data, err := s.readSpill(id)
	if err != nil {
		if !os.IsNotExist(err) {
			sh0 := s.shards[0]
			sh0.mu.Lock()
			sh0.spillErrors++
			sh0.mu.Unlock()
			s.brk.failure()
		} else {
			s.brk.success()
		}
		return zero, false
	}
	s.brk.success()
	m, v, cost, err := s.codec.Decode(id, data)
	if err != nil {
		// Bad bytes, not a bad disk: fall back without tripping the
		// breaker, and drop the corrupt file so it cannot wedge every
		// future lookup of this id (a later eviction re-spills it whole).
		sh0 := s.shards[0]
		sh0.mu.Lock()
		sh0.spillErrors++
		sh0.mu.Unlock()
		os.Remove(s.spillPath(id))
		return zero, false
	}
	// Re-admit into the identity's home shard so later Gets hit in memory.
	sh := s.shards[s.hash(m)&s.mask]
	sh.mu.Lock()
	if e, ok := sh.index[m]; ok {
		// Raced with a concurrent Get for the same identity: defer to it.
		sh.order.MoveToFront(e.elem)
		sh.mu.Unlock()
		<-e.done
		if e.err == nil {
			return e.val, true
		}
		return zero, false
	}
	e := &entry[M, V]{m: m, id: id, done: make(chan struct{})}
	e.elem = sh.order.PushFront(e)
	sh.index[m] = e
	sh.mu.Unlock()
	s.resolve(sh, e, v, cost, nil, resolveLookup)
	return v, true
}

// AddCost charges delta additional bytes to the completed entry with the
// given identity. Charges to evicted or unknown identities are dropped:
// the memory they describe leaves the accounted set with the entry.
// Eviction runs immediately if the charge pushes the shard over budget, so
// later-built analyses evict in lockstep with their artifact.
func (s *Store[M, V]) AddCost(m M, delta int64) {
	sh := s.shards[s.hash(m)&s.mask]
	sh.mu.Lock()
	e, ok := sh.index[m]
	if !ok || !completed(e) {
		sh.mu.Unlock()
		return
	}
	e.cost += delta
	sh.bytes += delta
	victims := sh.evictLocked()
	sh.mu.Unlock()
	s.spill(sh, victims)
}

// Flush serializes every resident completed entry to the disk tier, so a
// graceful shutdown persists the warm set (not only what eviction already
// spilled). It is a no-op without a disk tier. Entries that fail to
// persist — or the whole set, when the spill tier is degraded — are
// counted in FlushErrors and reported in the returned error; the store
// itself remains fully usable either way.
func (s *Store[M, V]) Flush() error {
	if s.dir == "" || s.codec == nil {
		return nil
	}
	if !s.diskUp() {
		s.flushErrors.Add(1)
		return fmt.Errorf("store: flush skipped: spill tier degraded (running memory-only)")
	}
	var failed int64
	var firstErr error
	for _, sh := range s.shards {
		sh.mu.Lock()
		victims := make([]*entry[M, V], 0, len(sh.byID))
		for _, e := range sh.byID {
			victims = append(victims, e)
		}
		sh.mu.Unlock()
		_, errs, err := s.spill(sh, victims)
		failed += errs
		if firstErr == nil {
			firstErr = err
		}
	}
	if failed > 0 {
		s.flushErrors.Add(failed)
		return fmt.Errorf("store: flush failed to persist %d entries: %w", failed, firstErr)
	}
	return nil
}

// Close stops the spill tier's background probe goroutine, if one is
// running. The store remains usable after Close (the disk tier simply
// stays degraded if it was); Close exists so owners shut down cleanly.
func (s *Store[M, V]) Close() {
	if s.brk != nil {
		s.brk.close()
	}
}

// Range calls fn with every resident completed entry's id and value. The
// snapshot is per shard: entries are collected under each shard lock and
// fn runs outside it.
func (s *Store[M, V]) Range(fn func(id string, v V)) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		ids := make([]string, 0, len(sh.byID))
		vals := make([]V, 0, len(sh.byID))
		for id, e := range sh.byID {
			ids = append(ids, id)
			vals = append(vals, e.val)
		}
		sh.mu.Unlock()
		for i := range ids {
			fn(ids[i], vals[i])
		}
	}
}

// Stats sums the per-shard counters, taking each shard's lock in turn so
// every shard's view (entries, bytes, hit/miss/eviction counts) is
// internally consistent.
func (s *Store[M, V]) Stats() Stats {
	st := Stats{Shards: len(s.shards)}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Hits += sh.hits
		st.Misses += sh.misses
		st.Evictions += sh.evictions
		st.Entries += len(sh.index)
		st.MemoryBytes += sh.bytes
		st.SpillHits += sh.spillHits
		st.SpillMisses += sh.spillMisses
		st.SpillWrites += sh.spillWrites
		st.SpillErrors += sh.spillErrors
		st.MemoryBudget += sh.budget
		sh.mu.Unlock()
	}
	if s.brk != nil {
		st.SpillDegraded = s.brk.degraded.Load()
		st.SpillDegradations = s.brk.degradation.Load()
		st.SpillProbes = s.brk.probes.Load()
	}
	st.FlushErrors = s.flushErrors.Load()
	return st
}

// Len returns the number of resident entries (including in-flight).
func (s *Store[M, V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// resolveKind says how a completed entry affects the counters: a computed
// miss, a Get served by the disk tier (a hit plus a spill hit), or a
// LookupID rehydration (spill activity only — handle lookups are not
// compile traffic).
type resolveKind int

const (
	resolveCompute resolveKind = iota
	resolveDiskGet
	resolveLookup
)

// resolve completes an in-flight entry with its value or error, charges
// its cost, updates the hit/miss counters, and runs eviction.
func (s *Store[M, V]) resolve(sh *shard[M, V], e *entry[M, V], v V, cost int64, err error, kind resolveKind) {
	e.val, e.err = v, err
	close(e.done)
	sh.mu.Lock()
	if err != nil {
		sh.misses++
		if cur, ok := sh.index[e.m]; ok && cur == e {
			delete(sh.index, e.m)
			sh.order.Remove(e.elem)
		}
		sh.mu.Unlock()
		return
	}
	switch kind {
	case resolveCompute:
		sh.misses++
	case resolveDiskGet:
		sh.hits++
		sh.spillHits++
	case resolveLookup:
		sh.spillHits++
	}
	e.cost = cost
	sh.bytes += cost
	sh.byID[e.id] = e
	victims := sh.evictLocked()
	sh.mu.Unlock()
	s.spill(sh, victims)
}

func completed[M comparable, V any](e *entry[M, V]) bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// evictLocked drops least-recently-used completed entries until both the
// entry bound and the byte budget hold, returning the victims for the
// caller to spill outside the lock. In-flight entries are never evicted:
// coalesced waiters hold them.
func (sh *shard[M, V]) evictLocked() []*entry[M, V] {
	var victims []*entry[M, V]
	over := func() bool {
		return (sh.maxEnts > 0 && len(sh.index) > sh.maxEnts) ||
			(sh.budget > 0 && sh.bytes > sh.budget)
	}
	for el := sh.order.Back(); el != nil && over(); {
		e := el.Value.(*entry[M, V])
		prev := el.Prev()
		if completed(e) {
			delete(sh.index, e.m)
			delete(sh.byID, e.id)
			sh.order.Remove(el)
			sh.bytes -= e.cost
			sh.evictions++
			victims = append(victims, e)
		}
		el = prev
	}
	return victims
}

// loadSpilled tries to serve an in-flight miss from the disk tier.
func (s *Store[M, V]) loadSpilled(sh *shard[M, V], e *entry[M, V]) (v V, cost int64, ok bool) {
	var zero V
	if !s.diskUp() {
		return zero, 0, false
	}
	data, err := s.readSpill(e.id)
	if err != nil {
		sh.mu.Lock()
		if os.IsNotExist(err) {
			sh.spillMisses++
		} else {
			sh.spillErrors++
		}
		sh.mu.Unlock()
		if os.IsNotExist(err) {
			s.brk.success()
		} else {
			s.brk.failure()
		}
		return zero, 0, false
	}
	s.brk.success()
	m, v, cost, err := s.codec.Decode(e.id, data)
	if err != nil || m != e.m {
		// Corrupt, stale, or colliding file: fall back to compute and drop
		// the bad file (the recompute's eviction re-spills it whole). Data
		// errors do not trip the breaker — the disk answered, the bytes
		// were bad.
		os.Remove(s.spillPath(e.id))
		sh.mu.Lock()
		sh.spillErrors++
		sh.mu.Unlock()
		return zero, 0, false
	}
	return v, cost, true
}

// readSpill reads one spill file ("store.spill.read" fault point).
func (s *Store[M, V]) readSpill(id string) ([]byte, error) {
	if err := fault.Check("store.spill.read"); err != nil {
		return nil, err
	}
	return os.ReadFile(s.spillPath(id))
}

// spill serializes evicted entries to the disk tier (outside any lock),
// reporting how many wrote and how many failed. It stops early if the
// circuit breaker trips mid-batch — no point hammering a dead disk.
func (s *Store[M, V]) spill(sh *shard[M, V], victims []*entry[M, V]) (writes, errs int64, firstErr error) {
	if len(victims) == 0 || !s.diskUp() {
		return 0, 0, nil
	}
	for _, e := range victims {
		if e.err != nil {
			continue
		}
		ioErr, err := s.writeSpill(e)
		if err != nil {
			errs++
			if firstErr == nil {
				firstErr = err
			}
			if ioErr {
				s.brk.failure()
			}
		} else {
			writes++
			s.brk.success()
		}
		if !s.diskUp() {
			break
		}
	}
	if writes != 0 || errs != 0 {
		sh.mu.Lock()
		sh.spillWrites += writes
		sh.spillErrors += errs
		sh.mu.Unlock()
	}
	return writes, errs, firstErr
}

// writeSpill atomically writes one entry's serialized form. ioErr
// distinguishes disk I/O failures (which feed the circuit breaker) from
// codec failures (which do not). Fault points: "store.spill.partial"
// truncates the payload (the write "succeeds", leaving a corrupt file for
// the read path's digest check to reject), "store.spill.write" and
// "store.spill.rename" fail the corresponding syscalls.
func (s *Store[M, V]) writeSpill(e *entry[M, V]) (ioErr bool, err error) {
	data, err := s.codec.Encode(e.id, e.m, e.val)
	if err != nil {
		return false, err
	}
	data = fault.Cut("store.spill.partial", data)
	if err := fault.Check("store.spill.write"); err != nil {
		return true, err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return true, err
	}
	tmp, err := os.CreateTemp(s.dir, ".spill-*")
	if err != nil {
		return true, err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return true, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return true, err
	}
	if err := fault.Check("store.spill.rename"); err != nil {
		os.Remove(tmp.Name())
		return true, err
	}
	if err := os.Rename(tmp.Name(), s.spillPath(e.id)); err != nil {
		os.Remove(tmp.Name())
		return true, err
	}
	return false, nil
}

// probeDisk is the circuit breaker's health check: write, read back, and
// remove a probe file. It shares the read/write fault points, so an
// injected outage keeps the tier degraded until the schedule clears.
func (s *Store[M, V]) probeDisk() error {
	if err := fault.Check("store.spill.write"); err != nil {
		return err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(s.dir, ".probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	defer os.Remove(name)
	_, werr := f.Write([]byte("probe"))
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	if err := fault.Check("store.spill.read"); err != nil {
		return err
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return err
	}
	if string(data) != "probe" {
		return fmt.Errorf("store: probe readback mismatch")
	}
	return nil
}

func (s *Store[M, V]) spillPath(id string) string {
	return filepath.Join(s.dir, safeName(id)+".art")
}

// safeName keeps spill filenames filesystem-safe whatever the id alphabet.
func safeName(id string) string {
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' || c == '-' || c == '_') {
			return "x" + hex.EncodeToString([]byte(id))
		}
	}
	return id
}
