package store

import (
	"fmt"
	"hash/maphash"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// The tests cache strings keyed by a {name, body} identity; the codec is a
// trivial length-prefixed text format.

type ident struct {
	Name, Body string
}

var testSeed = maphash.MakeSeed()

func identHash(m ident) uint64 {
	var h maphash.Hash
	h.SetSeed(testSeed)
	h.WriteString(m.Name)
	h.WriteByte(0)
	h.WriteString(m.Body)
	return h.Sum64()
}

type textCodec struct{}

func (textCodec) Encode(id string, m ident, v string) ([]byte, error) {
	return []byte(fmt.Sprintf("%s\x00%s\x00%s", m.Name, m.Body, v)), nil
}

func (textCodec) Decode(id string, data []byte) (ident, string, int64, error) {
	parts := strings.SplitN(string(data), "\x00", 3)
	if len(parts) != 3 {
		return ident{}, "", 0, fmt.Errorf("corrupt spill record")
	}
	return ident{Name: parts[0], Body: parts[1]}, parts[2], int64(len(parts[2])), nil
}

func newTestStore(t *testing.T, cfg Config[ident, string]) *Store[ident, string] {
	t.Helper()
	cfg.Hash = identHash
	if cfg.Dir != "" && cfg.Codec == nil {
		cfg.Codec = textCodec{}
	}
	return New(cfg)
}

func get(t *testing.T, s *Store[ident, string], name string, cost int64) (string, bool) {
	t.Helper()
	m := ident{Name: name, Body: "body-of-" + name}
	v, hit, err := s.Get(m, func() string { return "id-" + name }, func() (string, int64, error) {
		return "value-of-" + name, cost, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return v, hit
}

func TestGetComputesOnceAndHits(t *testing.T) {
	s := newTestStore(t, Config[ident, string]{})
	if v, hit := get(t, s, "a", 10); hit || v != "value-of-a" {
		t.Fatalf("first get = (%q, hit=%v)", v, hit)
	}
	if v, hit := get(t, s, "a", 10); !hit || v != "value-of-a" {
		t.Fatalf("second get = (%q, hit=%v)", v, hit)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.MemoryBytes != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	s := newTestStore(t, Config[ident, string]{})
	m := ident{Name: "bad", Body: "x"}
	for i := 0; i < 2; i++ {
		_, _, err := s.Get(m, func() string { return "id-bad" }, func() (string, int64, error) {
			return "", 0, fmt.Errorf("boom")
		})
		if err == nil {
			t.Fatal("want error")
		}
	}
	st := s.Stats()
	if st.Misses != 2 || st.Entries != 0 || st.MemoryBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEntryBoundLRU(t *testing.T) {
	s := newTestStore(t, Config[ident, string]{MaxEntries: 2})
	get(t, s, "a", 1)
	get(t, s, "b", 1)
	get(t, s, "a", 1) // touch a; b becomes LRU
	get(t, s, "c", 1)
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if _, hit := get(t, s, "a", 1); !hit {
		t.Fatal("recently used entry evicted")
	}
	if _, hit := get(t, s, "b", 1); hit {
		t.Fatal("LRU entry survived")
	}
}

func TestMemoryBudgetNeverExceeded(t *testing.T) {
	const budget = 100
	s := newTestStore(t, Config[ident, string]{MemoryBudget: budget})
	for i := 0; i < 20; i++ {
		get(t, s, fmt.Sprintf("k%d", i), 30)
		if st := s.Stats(); st.MemoryBytes > budget {
			t.Fatalf("accounted bytes %d exceed budget %d", st.MemoryBytes, budget)
		}
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("expected evictions under budget pressure, stats = %+v", st)
	}
}

func TestAddCostEvictsInLockstep(t *testing.T) {
	const budget = 100
	s := newTestStore(t, Config[ident, string]{MemoryBudget: budget})
	get(t, s, "a", 40)
	get(t, s, "b", 40)
	// Charging a's late-built analyses pushes the shard over budget: the
	// LRU entry (a itself or b, whichever is colder) must go, and the
	// accounted total must stay within budget.
	s.AddCost(ident{Name: "a", Body: "body-of-a"}, 50)
	st := s.Stats()
	if st.MemoryBytes > budget {
		t.Fatalf("accounted bytes %d exceed budget %d after AddCost", st.MemoryBytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("AddCost over budget did not evict")
	}
}

func TestAddCostToEvictedIdentityIsDropped(t *testing.T) {
	s := newTestStore(t, Config[ident, string]{MaxEntries: 1})
	get(t, s, "a", 10)
	get(t, s, "b", 10) // evicts a
	s.AddCost(ident{Name: "a", Body: "body-of-a"}, 1000)
	if st := s.Stats(); st.MemoryBytes != 10 {
		t.Fatalf("orphan AddCost was charged: %+v", st)
	}
}

func TestCoalescing(t *testing.T) {
	s := newTestStore(t, Config[ident, string]{})
	const n = 16
	var computes int
	var mu sync.Mutex
	start := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, _, err := s.Get(ident{Name: "x", Body: "b"}, func() string { return "id-x" },
				func() (string, int64, error) {
					mu.Lock()
					computes++
					mu.Unlock()
					return "vx", 2, nil
				})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times", computes)
	}
	for _, v := range vals {
		if v != "vx" {
			t.Fatalf("coalesced caller got %q", v)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSpillOnEvictionAndReload(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, Config[ident, string]{MaxEntries: 1, Dir: dir})
	get(t, s, "a", 5)
	get(t, s, "b", 5) // evicts and spills a
	if st := s.Stats(); st.SpillWrites != 1 {
		t.Fatalf("stats after eviction = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "id-a.art")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	v, hit := get(t, s, "a", 5) // must come from disk, not compute
	if !hit || v != "value-of-a" {
		t.Fatalf("reload = (%q, hit=%v)", v, hit)
	}
	st := s.Stats()
	if st.SpillHits != 1 {
		t.Fatalf("stats after reload = %+v", st)
	}
}

func TestRestartKeepsWarmSetViaFlush(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, Config[ident, string]{Dir: dir})
	get(t, s, "a", 5)
	get(t, s, "b", 5)
	s.Flush()

	restarted := newTestStore(t, Config[ident, string]{Dir: dir})
	for _, k := range []string{"a", "b"} {
		if v, hit := get(t, restarted, k, 5); !hit || v != "value-of-"+k {
			t.Fatalf("after restart, %s = (%q, hit=%v)", k, v, hit)
		}
	}
	st := restarted.Stats()
	if st.SpillHits != 2 || st.Misses != 0 {
		t.Fatalf("restart stats = %+v", st)
	}
}

func TestLookupIDMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, Config[ident, string]{Dir: dir})
	get(t, s, "a", 5)
	if v, ok := s.LookupID("id-a"); !ok || v != "value-of-a" {
		t.Fatalf("memory LookupID = (%q, %v)", v, ok)
	}
	s.Flush()

	restarted := newTestStore(t, Config[ident, string]{Dir: dir})
	if v, ok := restarted.LookupID("id-a"); !ok || v != "value-of-a" {
		t.Fatalf("disk LookupID = (%q, %v)", v, ok)
	}
	// Rehydrated entry is resident now.
	if st := restarted.Stats(); st.Entries != 1 || st.SpillHits != 1 {
		t.Fatalf("stats after disk LookupID = %+v", st)
	}
	if _, ok := restarted.LookupID("id-missing"); ok {
		t.Fatal("LookupID of unknown id succeeded")
	}
}

func TestCorruptSpillFallsBackToCompute(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "id-a.art"), []byte("garbage-without-separators"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestStore(t, Config[ident, string]{Dir: dir})
	v, hit := get(t, s, "a", 5)
	if hit || v != "value-of-a" {
		t.Fatalf("corrupt spill served: (%q, hit=%v)", v, hit)
	}
	if st := s.Stats(); st.SpillErrors == 0 {
		t.Fatalf("corrupt spill not counted: %+v", st)
	}
}

func TestShardedStoreConcurrentBudgetInvariant(t *testing.T) {
	const budget = 4096
	s := newTestStore(t, Config[ident, string]{Shards: 8, MemoryBudget: budget})
	var wg, pollWG sync.WaitGroup
	stopPoll := make(chan struct{})
	var violation error
	var vmu sync.Mutex
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			if st := s.Stats(); st.MemoryBytes > budget {
				vmu.Lock()
				violation = fmt.Errorf("accounted bytes %d exceed budget %d", st.MemoryBytes, budget)
				vmu.Unlock()
				return
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i%40)
				get(t, s, k, 300)
				if i%10 == 0 {
					s.AddCost(ident{Name: k, Body: "body-of-" + k}, 100)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopPoll)
	pollWG.Wait()
	vmu.Lock()
	defer vmu.Unlock()
	if violation != nil {
		t.Fatal(violation)
	}
	if st := s.Stats(); st.MemoryBytes > budget {
		t.Fatalf("final accounted bytes %d exceed budget %d", st.MemoryBytes, budget)
	}
}
