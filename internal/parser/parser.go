// Package parser implements a recursive-descent parser for MiniC.
package parser

import (
	"strconv"

	"repro/internal/ast"
	"repro/internal/lexer"
	"repro/internal/source"
	"repro/internal/token"
)

// Parser holds parse state for one file.
type Parser struct {
	file    *source.File
	toks    []token.Token
	pos     int
	errs    *source.ErrorList
	structs map[string]*ast.StructType // file-scope struct types, by name
}

// Parse parses the given MiniC source text into an AST file. Errors are
// accumulated into errs; a partial AST is returned even on error.
func Parse(f *source.File, errs *source.ErrorList) *ast.File {
	p := &Parser{file: f, errs: errs, structs: make(map[string]*ast.StructType)}
	p.toks = lexer.New(f, errs).ScanAll()
	return p.parseFile()
}

// ParseSource is a convenience wrapper that parses source text and returns
// an error if there were any diagnostics.
func ParseSource(name, text string) (*ast.File, error) {
	f := source.NewFile(name, text)
	var errs source.ErrorList
	af := Parse(f, &errs)
	return af, errs.Err()
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k token.Kind) (token.Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return token.Token{}, false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos, End: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errs.Add(p.file, source.Pos(p.cur().Pos), format, args...)
}

func spanOf(a, b token.Token) source.Span {
	return source.Span{Start: source.Pos(a.Pos), End: source.Pos(b.End)}
}

func (p *Parser) spanFrom(start token.Token) source.Span {
	end := p.toks[p.pos-1]
	return spanOf(start, end)
}

// sync skips tokens until a likely statement boundary, for error recovery.
func (p *Parser) sync() {
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.SEMI:
			p.next()
			return
		case token.RBRACE, token.KwInt, token.KwFloat, token.KwVoid, token.KwStruct,
			token.KwIf, token.KwWhile, token.KwFor, token.KwReturn:
			return
		}
		p.next()
	}
}

// ---------------------------------------------------------------- file

func (p *Parser) parseFile() *ast.File {
	af := &ast.File{Source: p.file}
	for !p.at(token.EOF) {
		start := p.pos
		if p.atStructDecl() {
			if d := p.parseStructDecl(); d != nil {
				af.Structs = append(af.Structs, d)
			}
			if p.pos == start {
				p.next()
			}
			continue
		}
		if !p.atType() {
			p.errorf("expected declaration, found %s", p.cur())
			p.sync()
			if p.pos == start {
				p.next()
			}
			continue
		}
		typ := p.parseType()
		name := p.expect(token.IDENT)
		if p.at(token.LPAREN) {
			af.Funcs = append(af.Funcs, p.parseFuncRest(typ, name))
		} else {
			af.Globals = append(af.Globals, p.parseGlobalRest(typ, name))
		}
		if p.pos == start { // no progress; avoid infinite loop
			p.next()
		}
	}
	return af
}

func (p *Parser) atType() bool {
	switch p.cur().Kind {
	case token.KwInt, token.KwFloat, token.KwVoid, token.KwStruct:
		return true
	}
	return false
}

// atStructDecl reports whether the parser is at a file-scope struct type
// declaration ("struct Name {"), as opposed to a struct-typed variable or
// function ("struct Name x;").
func (p *Parser) atStructDecl() bool {
	if !p.at(token.KwStruct) || p.peek().Kind != token.IDENT {
		return false
	}
	if p.pos+2 < len(p.toks) {
		return p.toks[p.pos+2].Kind == token.LBRACE
	}
	return false
}

// parseStructDecl parses "struct Name { type field; ... };". Fields must be
// scalar; that (and duplicate names) is validated by the checker.
func (p *Parser) parseStructDecl() *ast.StructDecl {
	start := p.next() // struct
	name := p.expect(token.IDENT)
	st := &ast.StructType{Name: name.Lit}
	if _, dup := p.structs[name.Lit]; dup {
		p.errorf("struct %q redeclared", name.Lit)
	} else {
		p.structs[name.Lit] = st
	}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		fieldStart := p.pos
		ft := p.parseType()
		fn := p.expect(token.IDENT)
		p.expect(token.SEMI)
		st.Fields = append(st.Fields, ast.StructField{Name: fn.Lit, Type: ft})
		if p.pos == fieldStart {
			p.next()
		}
	}
	p.expect(token.RBRACE)
	p.expect(token.SEMI)
	return &ast.StructDecl{Name: name.Lit, Typ: st, Spn: p.spanFrom(start)}
}

func (p *Parser) parseType() ast.Type {
	var t ast.Type
	switch p.cur().Kind {
	case token.KwInt:
		t = ast.IntType
	case token.KwFloat:
		t = ast.FloatType
	case token.KwVoid:
		t = ast.VoidType
	case token.KwStruct:
		p.next() // struct
		name := p.expect(token.IDENT)
		if st, ok := p.structs[name.Lit]; ok {
			return st // no pointer-to-struct: stop before the STAR loop
		}
		p.errorf("undefined struct %q", name.Lit)
		return ast.IntType
	default:
		p.errorf("expected type, found %s", p.cur())
		t = ast.IntType
	}
	p.next()
	for p.at(token.STAR) {
		p.next()
		t = &ast.PointerType{Elem: t}
	}
	return t
}

func (p *Parser) parseGlobalRest(typ ast.Type, name token.Token) *ast.VarDecl {
	d := &ast.VarDecl{Name: name.Lit, Typ: typ, Spn: spanOf(name, name)}
	if _, ok := p.accept(token.LBRACKET); ok {
		n := p.expect(token.INTLIT)
		ln, _ := strconv.Atoi(n.Lit)
		if ln <= 0 {
			p.errorf("array length must be positive")
			ln = 1
		}
		p.expect(token.RBRACKET)
		d.Typ = &ast.ArrayType{Elem: typ, Len: ln}
	}
	if _, ok := p.accept(token.ASSIGN); ok {
		d.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	return d
}

func (p *Parser) parseFuncRest(ret ast.Type, name token.Token) *ast.FuncDecl {
	fd := &ast.FuncDecl{Name: name.Lit, Ret: ret, Spn: spanOf(name, name)}
	p.expect(token.LPAREN)
	if !p.at(token.RPAREN) {
		for {
			pt := p.parseType()
			pn := p.expect(token.IDENT)
			if _, ok := p.accept(token.LBRACKET); ok {
				// Array parameters decay to pointers, as in C.
				p.expect(token.RBRACKET)
				pt = &ast.PointerType{Elem: pt}
			}
			fd.Params = append(fd.Params, &ast.VarDecl{
				Name: pn.Lit, Typ: pt, Spn: spanOf(pn, pn), Param: true,
			})
			if _, ok := p.accept(token.COMMA); !ok {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	fd.Body = p.parseBlock()
	return fd
}

// ---------------------------------------------------------------- stmts

func (p *Parser) parseBlock() *ast.Block {
	lb := p.expect(token.LBRACE)
	var stmts []ast.Stmt
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		start := p.pos
		stmts = append(stmts, p.parseStmt())
		if p.pos == start {
			p.next()
		}
	}
	rb := p.expect(token.RBRACE)
	return ast.NewBlock(stmts, spanOf(lb, rb))
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.KwInt, token.KwFloat, token.KwStruct:
		return p.parseDeclStmt()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		start := p.next()
		s := &ast.ReturnStmt{}
		if !p.at(token.SEMI) {
			s.X = p.parseExpr()
		}
		p.expect(token.SEMI)
		setSpan(s, p.spanFrom(start))
		return s
	case token.KwBreak:
		start := p.next()
		p.expect(token.SEMI)
		s := &ast.BreakStmt{}
		setSpan(s, p.spanFrom(start))
		return s
	case token.KwContinue:
		start := p.next()
		p.expect(token.SEMI)
		s := &ast.ContinueStmt{}
		setSpan(s, p.spanFrom(start))
		return s
	case token.KwPrint:
		return p.parsePrint()
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMI:
		start := p.next()
		b := ast.NewBlock(nil, spanOf(start, start))
		return b
	default:
		return p.parseSimpleStmtSemi()
	}
}

func (p *Parser) parseDeclStmt() ast.Stmt {
	start := p.cur()
	typ := p.parseType()
	name := p.expect(token.IDENT)
	d := &ast.VarDecl{Name: name.Lit, Typ: typ, Spn: spanOf(name, name)}
	if _, ok := p.accept(token.LBRACKET); ok {
		n := p.expect(token.INTLIT)
		ln, _ := strconv.Atoi(n.Lit)
		if ln <= 0 {
			p.errorf("array length must be positive")
			ln = 1
		}
		p.expect(token.RBRACKET)
		d.Typ = &ast.ArrayType{Elem: typ, Len: ln}
	}
	if _, ok := p.accept(token.ASSIGN); ok {
		d.Init = p.parseExpr()
	}
	p.expect(token.SEMI)
	s := &ast.DeclStmt{Decl: d}
	setSpan(s, p.spanFrom(start))
	return s
}

func (p *Parser) parseIf() ast.Stmt {
	start := p.next() // if
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	thenB := p.parseBodyBlock()
	s := &ast.IfStmt{Cond: cond, Then: thenB}
	if _, ok := p.accept(token.KwElse); ok {
		if p.at(token.KwIf) {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBodyBlock()
		}
	}
	setSpan(s, p.spanFrom(start))
	return s
}

// parseBodyBlock parses either a braced block or a single statement wrapped
// in a block, so that control-structure bodies are always blocks.
func (p *Parser) parseBodyBlock() *ast.Block {
	if p.at(token.LBRACE) {
		return p.parseBlock()
	}
	start := p.cur()
	st := p.parseStmt()
	return ast.NewBlock([]ast.Stmt{st}, spanOf(start, p.toks[p.pos-1]))
}

func (p *Parser) parseWhile() ast.Stmt {
	start := p.next()
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseBodyBlock()
	s := &ast.WhileStmt{Cond: cond, Body: body}
	setSpan(s, p.spanFrom(start))
	return s
}

func (p *Parser) parseDoWhile() ast.Stmt {
	start := p.next()
	body := p.parseBodyBlock()
	p.expect(token.KwWhile)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.SEMI)
	s := &ast.DoWhileStmt{Body: body, Cond: cond}
	setSpan(s, p.spanFrom(start))
	return s
}

func (p *Parser) parseFor() ast.Stmt {
	start := p.next()
	p.expect(token.LPAREN)
	s := &ast.ForStmt{}
	if !p.at(token.SEMI) {
		if p.atType() {
			s.Init = p.parseDeclStmt() // consumes the semicolon
		} else {
			s.Init = p.parseSimpleStmt()
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	if !p.at(token.SEMI) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if !p.at(token.RPAREN) {
		s.Post = p.parseSimpleStmt()
	}
	p.expect(token.RPAREN)
	s.Body = p.parseBodyBlock()
	setSpan(s, p.spanFrom(start))
	return s
}

func (p *Parser) parsePrint() ast.Stmt {
	start := p.next()
	p.expect(token.LPAREN)
	s := &ast.PrintStmt{}
	if !p.at(token.RPAREN) {
		for {
			if p.at(token.STRLIT) {
				t := p.next()
				s.Args = append(s.Args, ast.PrintArg{Str: t.Lit, IsStr: true})
			} else {
				s.Args = append(s.Args, ast.PrintArg{X: p.parseExpr()})
			}
			if _, ok := p.accept(token.COMMA); !ok {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	p.expect(token.SEMI)
	setSpan(s, p.spanFrom(start))
	return s
}

// parseSimpleStmt parses an assignment, inc/dec or expression statement
// without the trailing semicolon.
func (p *Parser) parseSimpleStmt() ast.Stmt {
	start := p.cur()
	lhs := p.parseExpr()
	switch {
	case p.cur().Kind.IsAssignOp():
		op := p.next().Kind
		rhs := p.parseExpr()
		s := &ast.AssignStmt{Op: op, LHS: lhs, RHS: rhs}
		setSpan(s, p.spanFrom(start))
		return s
	case p.at(token.INC) || p.at(token.DEC):
		op := p.next().Kind
		s := &ast.IncDecStmt{Op: op, X: lhs}
		setSpan(s, p.spanFrom(start))
		return s
	default:
		s := &ast.ExprStmt{X: lhs}
		setSpan(s, p.spanFrom(start))
		return s
	}
}

func (p *Parser) parseSimpleStmtSemi() ast.Stmt {
	s := p.parseSimpleStmt()
	p.expect(token.SEMI)
	return s
}

func setSpan(s ast.Stmt, sp source.Span) {
	if d, ok := s.(*ast.DeclStmt); ok {
		d.Decl.Spn = d.Decl.Spn.Union(sp)
	}
	s.SetSpan(sp)
}

// ---------------------------------------------------------------- exprs

// Binary operator precedence, from lowest (1) upward. 0 = not binary.
func precOf(k token.Kind) int {
	switch k {
	case token.OROR:
		return 1
	case token.ANDAND:
		return 2
	case token.OR:
		return 3
	case token.XOR:
		return 4
	case token.EQ, token.NEQ:
		return 5
	case token.LT, token.GT, token.LEQ, token.GEQ:
		return 6
	case token.SHL, token.SHR:
		return 7
	case token.PLUS, token.MINUS:
		return 8
	case token.STAR, token.SLASH, token.PERCENT:
		return 9
	}
	return 0
}

func (p *Parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec := precOf(p.cur().Kind)
		if prec < minPrec {
			return x
		}
		op := p.next().Kind
		y := p.parseBinary(prec + 1)
		x = ast.NewBinary(op, x, y, x.Span().Union(y.Span()))
	}
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.MINUS, token.NOT, token.STAR, token.AMP:
		op := p.next()
		x := p.parseUnary()
		return ast.NewUnary(op.Kind, x, spanOf(op, op).Union(x.Span()))
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.LBRACKET:
			p.next()
			idx := p.parseExpr()
			rb := p.expect(token.RBRACKET)
			e := &ast.IndexExpr{X: x, Index: idx}
			setExprSpan(e, x.Span().Union(spanOf(rb, rb)))
			x = e
		case token.DOT:
			p.next()
			fn := p.expect(token.IDENT)
			e := &ast.FieldExpr{X: x, Name: fn.Lit, Idx: -1}
			setExprSpan(e, x.Span().Union(spanOf(fn, fn)))
			x = e
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		id := ast.NewIdent(t.Lit, spanOf(t, t))
		if p.at(token.LPAREN) {
			p.next()
			call := &ast.CallExpr{Fun: id}
			if !p.at(token.RPAREN) {
				for {
					call.Args = append(call.Args, p.parseExpr())
					if _, ok := p.accept(token.COMMA); !ok {
						break
					}
				}
			}
			rp := p.expect(token.RPAREN)
			setExprSpan(call, spanOf(t, rp))
			return call
		}
		return id
	case token.INTLIT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf("bad integer literal %q", t.Lit)
		}
		return ast.NewIntLit(v, spanOf(t, t))
	case token.FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf("bad float literal %q", t.Lit)
		}
		return ast.NewFloatLit(v, spanOf(t, t))
	case token.CHARLIT:
		p.next()
		var v int64
		if len(t.Lit) > 0 {
			v = int64(t.Lit[0])
		}
		return ast.NewIntLit(v, spanOf(t, t))
	case token.KwInt, token.KwFloat:
		// Cast syntax: int(x) / float(x).
		p.next()
		to := ast.IntType
		if t.Kind == token.KwFloat {
			to = ast.FloatType
		}
		p.expect(token.LPAREN)
		x := p.parseExpr()
		rp := p.expect(token.RPAREN)
		return ast.NewCast(to, x, spanOf(t, rp))
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	}
	p.errorf("expected expression, found %s", t)
	p.next()
	return ast.NewIntLit(0, spanOf(t, t))
}

func setExprSpan(e ast.Expr, sp source.Span) { e.SetSpan(sp) }
