package parser

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/token"
)

func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := ParseSource("test.mc", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

func TestParseFunction(t *testing.T) {
	f := parseOK(t, `
int add(int a, int b) {
	return a + b;
}
`)
	if len(f.Funcs) != 1 {
		t.Fatalf("got %d funcs", len(f.Funcs))
	}
	fn := f.Funcs[0]
	if fn.Name != "add" || len(fn.Params) != 2 {
		t.Errorf("bad func: %s with %d params", fn.Name, len(fn.Params))
	}
	if len(fn.Body.Stmts) != 1 {
		t.Fatalf("got %d stmts", len(fn.Body.Stmts))
	}
	ret, ok := fn.Body.Stmts[0].(*ast.ReturnStmt)
	if !ok {
		t.Fatalf("stmt is %T", fn.Body.Stmts[0])
	}
	bin, ok := ret.X.(*ast.BinaryExpr)
	if !ok || bin.Op != token.PLUS {
		t.Errorf("return expr is %T", ret.X)
	}
}

func TestParseGlobals(t *testing.T) {
	f := parseOK(t, `
int g = 5;
float table[100];
int main() { return g; }
`)
	if len(f.Globals) != 2 {
		t.Fatalf("got %d globals", len(f.Globals))
	}
	if f.Globals[0].Init == nil {
		t.Error("g should have initializer")
	}
	arr, ok := f.Globals[1].Typ.(*ast.ArrayType)
	if !ok || arr.Len != 100 {
		t.Errorf("table type = %v", f.Globals[1].Typ)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := parseOK(t, `int main() { int x = 1 + 2 * 3; return x; }`)
	decl := f.Funcs[0].Body.Stmts[0].(*ast.DeclStmt)
	add, ok := decl.Decl.Init.(*ast.BinaryExpr)
	if !ok || add.Op != token.PLUS {
		t.Fatalf("top op: %v", decl.Decl.Init)
	}
	mul, ok := add.Y.(*ast.BinaryExpr)
	if !ok || mul.Op != token.STAR {
		t.Fatalf("rhs should be multiplication, got %T", add.Y)
	}
}

func TestParseControlFlow(t *testing.T) {
	f := parseOK(t, `
int main() {
	int i;
	for (i = 0; i < 10; i++) {
		if (i == 5) { break; } else { continue; }
	}
	while (i > 0) { i--; }
	do { i++; } while (i < 3);
	return i;
}
`)
	stmts := f.Funcs[0].Body.Stmts
	if _, ok := stmts[1].(*ast.ForStmt); !ok {
		t.Errorf("stmt 1 is %T, want ForStmt", stmts[1])
	}
	if _, ok := stmts[2].(*ast.WhileStmt); !ok {
		t.Errorf("stmt 2 is %T, want WhileStmt", stmts[2])
	}
	if _, ok := stmts[3].(*ast.DoWhileStmt); !ok {
		t.Errorf("stmt 3 is %T, want DoWhileStmt", stmts[3])
	}
}

func TestParsePointerAndArray(t *testing.T) {
	f := parseOK(t, `
int sum(int a[], int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) { s += a[i]; }
	return s;
}
int main() {
	int buf[8];
	int *p = &buf[0];
	*p = 3;
	return sum(buf, 8);
}
`)
	sum := f.Funcs[0]
	if _, ok := sum.Params[0].Typ.(*ast.PointerType); !ok {
		t.Errorf("array param should decay to pointer, got %v", sum.Params[0].Typ)
	}
}

func TestParseElseIfChain(t *testing.T) {
	f := parseOK(t, `
int classify(int x) {
	if (x < 0) { return -1; }
	else if (x == 0) { return 0; }
	else { return 1; }
}
int main() { return classify(3); }
`)
	ifS := f.Funcs[0].Body.Stmts[0].(*ast.IfStmt)
	if _, ok := ifS.Else.(*ast.IfStmt); !ok {
		t.Errorf("else-if should parse as nested IfStmt, got %T", ifS.Else)
	}
}

func TestParsePrint(t *testing.T) {
	f := parseOK(t, `int main() { print("x=", 1+2, "\n"); return 0; }`)
	ps := f.Funcs[0].Body.Stmts[0].(*ast.PrintStmt)
	if len(ps.Args) != 3 || !ps.Args[0].IsStr || ps.Args[1].IsStr || !ps.Args[2].IsStr {
		t.Errorf("print args: %+v", ps.Args)
	}
}

func TestParseCasts(t *testing.T) {
	f := parseOK(t, `int main() { float x = float(3); int y = int(x); return y; }`)
	d := f.Funcs[0].Body.Stmts[0].(*ast.DeclStmt)
	if _, ok := d.Decl.Init.(*ast.CastExpr); !ok {
		t.Errorf("init is %T, want CastExpr", d.Decl.Init)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int main( { return 0; }",
		"int main() { return 0 }",
		"int main() { x = ; }",
		"int 5x() {}",
		"int main() { int a[0]; return 0; }",
	}
	for _, src := range bad {
		if _, err := ParseSource("bad.mc", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseLogicalOps(t *testing.T) {
	f := parseOK(t, `int main() { int x = 1 && 0 || 2; return x; }`)
	d := f.Funcs[0].Body.Stmts[0].(*ast.DeclStmt)
	or, ok := d.Decl.Init.(*ast.BinaryExpr)
	if !ok || or.Op != token.OROR {
		t.Fatalf("top should be ||, got %v", d.Decl.Init)
	}
	and, ok := or.X.(*ast.BinaryExpr)
	if !ok || and.Op != token.ANDAND {
		t.Fatalf("lhs should be &&")
	}
}
