package randprog

import (
	"math/rand"
	"testing"

	"repro/internal/compile"
	"repro/internal/dataflow"
	"repro/internal/mach"
)

// graphOf exports a machine function's CFG as a solver graph.
func graphOf(f *mach.Func) dataflow.Graph {
	idx := map[*mach.Block]int{}
	for i, b := range f.Blocks {
		idx[b] = i
	}
	n := len(f.Blocks)
	g := dataflow.Graph{N: n, Succs: make([][]int, n), Preds: make([][]int, n)}
	for i, b := range f.Blocks {
		for _, s := range b.Succs {
			si := idx[s]
			g.Succs[i] = append(g.Succs[i], si)
			g.Preds[si] = append(g.Preds[si], i)
		}
	}
	return g
}

// TestSolverDifferentialOnRandomCFGs extends the fuzz harness to the
// data-flow solver: on the control-flow graphs of randomly generated,
// fully optimized programs — the exact graph shapes the classifier and
// the optimizer feed the solver — the RPO worklist schedule (Solve) must
// compute the identical fixed point as the dense reference schedule
// (SolveReference), for every direction × meet combination.
func TestSolverDifferentialOnRandomCFGs(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 6
	}
	cfgs := []compile.Config{compile.O2NoRegAlloc(), compile.O2()}
	for seed := int64(900); seed < int64(900+seeds); seed++ {
		src := Gen(seed)
		for ci, cfg := range cfgs {
			res, err := compile.Compile("rand.mc", src, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %d: %v", seed, ci, err)
			}
			r := rand.New(rand.NewSource(seed))
			for _, f := range res.Mach.Funcs {
				g := graphOf(f)
				const bits = 96
				gen := make([]*dataflow.BitSet, g.N)
				kill := make([]*dataflow.BitSet, g.N)
				for i := 0; i < g.N; i++ {
					gen[i] = dataflow.NewBitSet(bits)
					kill[i] = dataflow.NewBitSet(bits)
					for j := 0; j < bits; j++ {
						switch r.Intn(4) {
						case 0:
							gen[i].Set(j)
						case 1:
							kill[i].Set(j)
						}
					}
				}
				for _, dir := range []dataflow.Direction{dataflow.Forward, dataflow.Backward} {
					for _, meet := range []dataflow.Meet{dataflow.Union, dataflow.Intersect} {
						p := &dataflow.Problem{Graph: g, Dir: dir, Meet: meet,
							Bits: bits, Gen: gen, Kill: kill}
						got, want := p.Solve(), p.SolveReference()
						for b := 0; b < g.N; b++ {
							if !got.In[b].Equal(want.In[b]) || !got.Out[b].Equal(want.Out[b]) {
								t.Fatalf("seed %d cfg %d fn %s dir %d meet %d block %d: worklist %v/%v, reference %v/%v",
									seed, ci, f.Name, dir, meet, b,
									got.In[b], got.Out[b], want.In[b], want.Out[b])
							}
						}
					}
				}
			}
		}
	}
}
