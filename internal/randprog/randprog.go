// Package randprog generates random but well-formed, terminating MiniC
// programs for differential testing of the compiler: a generated program
// must print exactly the same output at every optimization level, so any
// divergence pinpoints a miscompilation. Generation is deterministic in
// the seed.
//
// Guarantees by construction: all loops have constant trip counts, array
// indices are loop variables or reduced modulo the array length against
// nonnegative values, divisions and remainders have strictly positive
// divisors, and all variables are initialized before use.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Gen produces one random program.
func Gen(seed int64) string {
	g := &gen{r: rand.New(rand.NewSource(seed))}
	return g.program()
}

type gen struct {
	r   *rand.Rand
	buf strings.Builder
	ind int

	// in-scope integer variable names (initialized)
	ivars []string
	// enclosing loop index variables (always 0..bound-1)
	loopVars []string
	names    int

	funcs []funcSig
}

type funcSig struct {
	name   string
	params int
}

func (g *gen) w(format string, args ...any) {
	g.buf.WriteString(strings.Repeat("\t", g.ind))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func (g *gen) fresh(prefix string) string {
	g.names++
	return fmt.Sprintf("%s%d", prefix, g.names)
}

func (g *gen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

// assignable returns the variables statements may write: everything in
// scope except enclosing loop indices (writing those could make a loop
// run forever, breaking the termination guarantee).
func (g *gen) assignable() []string {
	isLoop := map[string]bool{}
	for _, v := range g.loopVars {
		isLoop[v] = true
	}
	var out []string
	for _, v := range g.ivars {
		if !isLoop[v] {
			out = append(out, v)
		}
	}
	return out
}

// intExpr produces an int-valued expression of bounded depth over the
// initialized variables.
func (g *gen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(200)-100)
		default:
			if len(g.ivars) == 0 {
				return fmt.Sprintf("%d", g.r.Intn(50))
			}
			return g.pick(g.ivars)
		}
	}
	a := g.intExpr(depth - 1)
	b := g.intExpr(depth - 1)
	switch g.r.Intn(8) {
	case 0, 1:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 2, 3:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 4:
		// keep products small to avoid 32-bit surprises dominating
		return fmt.Sprintf("(%s * %s %% 8191)", a, b)
	case 5:
		// guarded division: divisor in [1, 9]
		return fmt.Sprintf("(%s / ((%s %% 9 + 9) %% 9 + 1))", a, b)
	case 6:
		return fmt.Sprintf("(%s %% ((%s %% 7 + 7) %% 7 + 1))", a, b)
	default:
		if len(g.funcs) > 0 && depth >= 2 && g.r.Intn(2) == 0 {
			return g.call(depth - 1)
		}
		return fmt.Sprintf("(%s + %s)", a, b)
	}
}

func (g *gen) call(depth int) string {
	f := g.funcs[g.r.Intn(len(g.funcs))]
	args := make([]string, f.params)
	for i := range args {
		args[i] = g.intExpr(depth - 1)
	}
	return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
}

// cond produces a boolean-ish condition.
func (g *gen) cond(depth int) string {
	ops := []string{"<", ">", "<=", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", g.intExpr(depth), ops[g.r.Intn(len(ops))], g.intExpr(depth))
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s && %s", c,
			fmt.Sprintf("%s %s %s", g.intExpr(1), ops[g.r.Intn(len(ops))], g.intExpr(1)))
	case 1:
		return fmt.Sprintf("%s || %s", c,
			fmt.Sprintf("%s %s %s", g.intExpr(1), ops[g.r.Intn(len(ops))], g.intExpr(1)))
	}
	return c
}

// stmt emits one random statement. arr names a local array (or "").
func (g *gen) stmt(depth int, arr string, arrLen int) {
	n := g.r.Intn(10)
	switch {
	case n < 3: // new variable
		v := g.fresh("v")
		g.w("int %s = %s;", v, g.intExpr(2))
		g.ivars = append(g.ivars, v)

	case n < 6 && len(g.assignable()) > 0: // assignment (plain or compound)
		v := g.pick(g.assignable())
		switch g.r.Intn(4) {
		case 0:
			g.w("%s += %s;", v, g.intExpr(2))
		case 1:
			g.w("%s -= %s;", v, g.intExpr(1))
		case 2:
			g.w("%s++;", v)
		default:
			g.w("%s = %s;", v, g.intExpr(2))
		}

	case n < 7 && depth > 0: // if/else
		g.w("if (%s) {", g.cond(1))
		g.block(depth-1, 1+g.r.Intn(2), arr, arrLen)
		if g.r.Intn(2) == 0 {
			g.w("} else {")
			g.block(depth-1, 1+g.r.Intn(2), arr, arrLen)
		}
		g.w("}")

	case n < 8 && depth > 0 && len(g.loopVars) < 2: // bounded for loop
		i := g.fresh("i")
		bound := 2 + g.r.Intn(6)
		g.w("for (int %s = 0; %s < %d; %s++) {", i, i, bound, i)
		g.ivars = append(g.ivars, i)
		g.loopVars = append(g.loopVars, i)
		g.block(depth-1, 1+g.r.Intn(2), arr, arrLen)
		g.loopVars = g.loopVars[:len(g.loopVars)-1]
		g.ivars = g.ivars[:len(g.ivars)-1]
		g.w("}")

	case n < 9 && arr != "" && len(g.loopVars) > 0: // array access via loop var
		i := g.pick(g.loopVars)
		if g.r.Intn(2) == 0 || len(g.assignable()) == 0 {
			g.w("%s[%s %% %d] = %s;", arr, i, arrLen, g.intExpr(1))
		} else {
			g.w("%s = %s + %s[%s %% %d];", g.pick(g.assignable()), g.pick(g.ivars), arr, i, arrLen)
		}

	default: // fold something into the checksum
		if len(g.ivars) > 0 {
			g.w("chk = (chk * 31 + %s) %% 65521;", g.pick(g.ivars))
		} else {
			g.w("chk = (chk + 1) %% 65521;")
		}
	}
}

func (g *gen) block(depth, stmts int, arr string, arrLen int) {
	g.ind++
	mark := len(g.ivars)
	for i := 0; i < stmts; i++ {
		g.stmt(depth, arr, arrLen)
	}
	g.ivars = g.ivars[:mark]
	g.ind--
}

// helper emits one helper function with p int parameters; its body is
// branchy straight-line arithmetic plus at most one bounded loop.
func (g *gen) helper(name string, p int) {
	params := make([]string, p)
	saved := g.ivars
	g.ivars = nil
	for i := range params {
		pn := fmt.Sprintf("p%d", i)
		params[i] = "int " + pn
		g.ivars = append(g.ivars, pn)
	}
	g.w("int %s(%s) {", name, strings.Join(params, ", "))
	g.ind++
	g.w("int chk = 1;")
	g.ivars = append(g.ivars, "chk")
	nst := 2 + g.r.Intn(4)
	for i := 0; i < nst; i++ {
		g.stmt(1, "", 0)
	}
	g.w("return chk %% 4099;")
	g.ind--
	g.w("}")
	g.w("")
	g.ivars = saved
}

func (g *gen) program() string {
	g.w("/* randomly generated MiniC program (differential-test input) */")
	// A couple of globals folded into the checksum.
	ng := 1 + g.r.Intn(3)
	globals := make([]string, ng)
	for i := range globals {
		globals[i] = g.fresh("G")
		g.w("int %s = %d;", globals[i], g.r.Intn(100))
	}
	g.w("")

	// Helpers are generated before main and callable from everywhere
	// (MiniC resolves functions in a pre-pass); calls may not recurse.
	nh := 1 + g.r.Intn(3)
	for i := 0; i < nh; i++ {
		name := fmt.Sprintf("h%d", i)
		p := 1 + g.r.Intn(3)
		g.helper(name, p)
		g.funcs = append(g.funcs, funcSig{name: name, params: p})
	}

	g.w("int main() {")
	g.ind++
	g.w("int chk = 7;")
	g.ivars = []string{"chk"}
	g.ivars = append(g.ivars, globals...)

	arrLen := 4 + g.r.Intn(12)
	g.w("int buf[%d];", arrLen)
	g.w("for (int z = 0; z < %d; z++) { buf[z] = z * 3; }", arrLen)

	nst := 4 + g.r.Intn(6)
	for i := 0; i < nst; i++ {
		g.stmt(2, "buf", arrLen)
	}

	// fold the array and globals into the checksum and print it
	g.w("for (int z = 0; z < %d; z++) { chk = (chk * 17 + buf[z]) %% 65521; }", arrLen)
	for _, gv := range globals {
		g.w("chk = (chk * 13 + %s) %% 65521;", gv)
	}
	g.w(`print("chk=", chk, "\n");`)
	g.w("return chk %% 256;")
	g.ind--
	g.w("}")
	return g.buf.String()
}
