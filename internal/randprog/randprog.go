// Package randprog generates random but well-formed, terminating MiniC
// programs for differential testing of the compiler: a generated program
// must print exactly the same output at every optimization level, so any
// divergence pinpoints a miscompilation. Generation is deterministic in
// the seed.
//
// Guarantees by construction: all loops have constant trip counts, array
// indices are loop variables or reduced modulo the array length against
// nonnegative values, divisions and remainders have strictly positive
// divisors, and all variables are initialized before use. Struct locals
// have every field assigned immediately after declaration, so per-field
// scalar replacement (SROA) and the per-field classifications it enables
// are exercised on every generated program without violating the
// init-before-use guarantee.
package randprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Gen produces one random program.
func Gen(seed int64) string {
	g := &gen{r: rand.New(rand.NewSource(seed))}
	return g.program()
}

type gen struct {
	r   *rand.Rand
	buf strings.Builder
	ind int

	// in-scope integer variable names (initialized)
	ivars []string
	// enclosing loop index variables (always 0..bound-1)
	loopVars []string
	names    int

	funcs []funcSig

	// structs are the declared struct types; svars the in-scope struct
	// variables (every field initialized).
	structs []structTy
	svars   []structVar
}

type funcSig struct {
	name   string
	params int
	// structParam is the index into structs of a trailing struct-typed
	// parameter, or -1 when the function takes only ints.
	structParam int
}

type structTy struct {
	name   string
	fields []string
}

type structVar struct {
	name string
	ty   int // index into structs
}

func (g *gen) w(format string, args ...any) {
	g.buf.WriteString(strings.Repeat("\t", g.ind))
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

func (g *gen) fresh(prefix string) string {
	g.names++
	return fmt.Sprintf("%s%d", prefix, g.names)
}

func (g *gen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

// fieldRef returns a random in-scope struct field access ("s3.f1"), or ""
// when no struct variable is in scope.
func (g *gen) fieldRef() string {
	if len(g.svars) == 0 {
		return ""
	}
	sv := g.svars[g.r.Intn(len(g.svars))]
	st := g.structs[sv.ty]
	return sv.name + "." + st.fields[g.r.Intn(len(st.fields))]
}

// declStruct declares a struct variable and initializes every field,
// registering it in scope. It returns the new variable's name.
func (g *gen) declStruct(depth int) string {
	ty := g.r.Intn(len(g.structs))
	st := g.structs[ty]
	v := g.fresh("s")
	g.w("struct %s %s;", st.name, v)
	for _, f := range st.fields {
		g.w("%s.%s = %s;", v, f, g.intExpr(depth))
	}
	g.svars = append(g.svars, structVar{name: v, ty: ty})
	return v
}

// assignable returns the variables statements may write: everything in
// scope except enclosing loop indices (writing those could make a loop
// run forever, breaking the termination guarantee).
func (g *gen) assignable() []string {
	isLoop := map[string]bool{}
	for _, v := range g.loopVars {
		isLoop[v] = true
	}
	var out []string
	for _, v := range g.ivars {
		if !isLoop[v] {
			out = append(out, v)
		}
	}
	return out
}

// intExpr produces an int-valued expression of bounded depth over the
// initialized variables.
func (g *gen) intExpr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(200)-100)
		case 1:
			if f := g.fieldRef(); f != "" {
				return f
			}
			fallthrough
		default:
			if len(g.ivars) == 0 {
				return fmt.Sprintf("%d", g.r.Intn(50))
			}
			return g.pick(g.ivars)
		}
	}
	a := g.intExpr(depth - 1)
	b := g.intExpr(depth - 1)
	switch g.r.Intn(8) {
	case 0, 1:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 2, 3:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 4:
		// keep products small to avoid 32-bit surprises dominating
		return fmt.Sprintf("(%s * %s %% 8191)", a, b)
	case 5:
		// guarded division: divisor in [1, 9]
		return fmt.Sprintf("(%s / ((%s %% 9 + 9) %% 9 + 1))", a, b)
	case 6:
		return fmt.Sprintf("(%s %% ((%s %% 7 + 7) %% 7 + 1))", a, b)
	default:
		if len(g.funcs) > 0 && depth >= 2 && g.r.Intn(2) == 0 {
			return g.call(depth - 1)
		}
		return fmt.Sprintf("(%s + %s)", a, b)
	}
}

func (g *gen) call(depth int) string {
	f := g.funcs[g.r.Intn(len(g.funcs))]
	if f.structParam >= 0 {
		// A struct-taking helper needs a compatible struct variable in
		// scope to pass by value (flattened per-field at the call site).
		var compat []string
		for _, sv := range g.svars {
			if sv.ty == f.structParam {
				compat = append(compat, sv.name)
			}
		}
		if len(compat) == 0 {
			return fmt.Sprintf("(%s + %s)", g.intExpr(depth-1), g.intExpr(depth-1))
		}
		args := make([]string, f.params+1)
		for i := 0; i < f.params; i++ {
			args[i] = g.intExpr(depth - 1)
		}
		args[f.params] = g.pick(compat)
		return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
	}
	args := make([]string, f.params)
	for i := range args {
		args[i] = g.intExpr(depth - 1)
	}
	return fmt.Sprintf("%s(%s)", f.name, strings.Join(args, ", "))
}

// cond produces a boolean-ish condition.
func (g *gen) cond(depth int) string {
	ops := []string{"<", ">", "<=", ">=", "==", "!="}
	c := fmt.Sprintf("%s %s %s", g.intExpr(depth), ops[g.r.Intn(len(ops))], g.intExpr(depth))
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s && %s", c,
			fmt.Sprintf("%s %s %s", g.intExpr(1), ops[g.r.Intn(len(ops))], g.intExpr(1)))
	case 1:
		return fmt.Sprintf("%s || %s", c,
			fmt.Sprintf("%s %s %s", g.intExpr(1), ops[g.r.Intn(len(ops))], g.intExpr(1)))
	}
	return c
}

// stmt emits one random statement. arr names a local array (or "").
func (g *gen) stmt(depth int, arr string, arrLen int) {
	n := g.r.Intn(13)
	switch {
	case n < 3: // new variable
		v := g.fresh("v")
		g.w("int %s = %s;", v, g.intExpr(2))
		g.ivars = append(g.ivars, v)

	case n < 6 && len(g.assignable()) > 0: // assignment (plain or compound)
		v := g.pick(g.assignable())
		switch g.r.Intn(4) {
		case 0:
			g.w("%s += %s;", v, g.intExpr(2))
		case 1:
			g.w("%s -= %s;", v, g.intExpr(1))
		case 2:
			g.w("%s++;", v)
		default:
			g.w("%s = %s;", v, g.intExpr(2))
		}

	case n < 7 && depth > 0: // if/else
		g.w("if (%s) {", g.cond(1))
		g.block(depth-1, 1+g.r.Intn(2), arr, arrLen)
		if g.r.Intn(2) == 0 {
			g.w("} else {")
			g.block(depth-1, 1+g.r.Intn(2), arr, arrLen)
		}
		g.w("}")

	case n < 8 && depth > 0 && len(g.loopVars) < 2: // bounded for loop
		i := g.fresh("i")
		bound := 2 + g.r.Intn(6)
		g.w("for (int %s = 0; %s < %d; %s++) {", i, i, bound, i)
		g.ivars = append(g.ivars, i)
		g.loopVars = append(g.loopVars, i)
		g.block(depth-1, 1+g.r.Intn(2), arr, arrLen)
		g.loopVars = g.loopVars[:len(g.loopVars)-1]
		g.ivars = g.ivars[:len(g.ivars)-1]
		g.w("}")

	case n < 9 && arr != "" && len(g.loopVars) > 0: // array access via loop var
		i := g.pick(g.loopVars)
		if g.r.Intn(2) == 0 || len(g.assignable()) == 0 {
			g.w("%s[%s %% %d] = %s;", arr, i, arrLen, g.intExpr(1))
		} else {
			g.w("%s = %s + %s[%s %% %d];", g.pick(g.assignable()), g.pick(g.ivars), arr, i, arrLen)
		}

	case n < 10 && len(g.structs) > 0: // new struct variable, fields initialized
		g.declStruct(1 + g.r.Intn(2))

	case n < 11 && len(g.svars) > 0: // field assignment or loop-carried accumulation
		f := g.fieldRef()
		if g.r.Intn(2) == 0 && depth > 0 && len(g.loopVars) < 2 {
			// The field reads itself, so no propagation can forward the
			// update and the split scalar stays live — the per-field
			// classifier sees a *current* field at stops in and after
			// the loop.
			i := g.fresh("i")
			g.w("for (int %s = 0; %s < %d; %s++) { %s = (%s * 3 + %s) %% 9973; }",
				i, i, 3+g.r.Intn(5), i, f, f, i)
		} else {
			g.w("%s = %s;", f, g.intExpr(2))
		}

	case n < 12 && len(g.svars) > 1: // whole-struct assignment (same type)
		dst := g.svars[g.r.Intn(len(g.svars))]
		var compat []string
		for _, sv := range g.svars {
			if sv.ty == dst.ty && sv.name != dst.name {
				compat = append(compat, sv.name)
			}
		}
		if len(compat) > 0 {
			g.w("%s = %s;", dst.name, g.pick(compat))
		} else if f := g.fieldRef(); f != "" {
			g.w("%s = %s;", f, g.intExpr(1))
		}

	default: // fold something into the checksum
		if len(g.svars) > 0 && g.r.Intn(2) == 0 {
			g.w("chk = (chk * 31 + %s) %% 65521;", g.fieldRef())
		} else if len(g.ivars) > 0 {
			g.w("chk = (chk * 31 + %s) %% 65521;", g.pick(g.ivars))
		} else {
			g.w("chk = (chk + 1) %% 65521;")
		}
	}
}

func (g *gen) block(depth, stmts int, arr string, arrLen int) {
	g.ind++
	mark := len(g.ivars)
	smark := len(g.svars)
	for i := 0; i < stmts; i++ {
		g.stmt(depth, arr, arrLen)
	}
	g.ivars = g.ivars[:mark]
	g.svars = g.svars[:smark]
	g.ind--
}

// helper emits one helper function with p int parameters (plus an
// optional trailing struct parameter, passed by value and flattened
// per-field by the compiler); its body is branchy straight-line
// arithmetic plus at most one bounded loop.
func (g *gen) helper(name string, p, structParam int) {
	params := make([]string, p)
	saved, savedS := g.ivars, g.svars
	g.ivars, g.svars = nil, nil
	for i := range params {
		pn := fmt.Sprintf("p%d", i)
		params[i] = "int " + pn
		g.ivars = append(g.ivars, pn)
	}
	if structParam >= 0 {
		params = append(params, fmt.Sprintf("struct %s sp", g.structs[structParam].name))
		g.svars = append(g.svars, structVar{name: "sp", ty: structParam})
	}
	g.w("int %s(%s) {", name, strings.Join(params, ", "))
	g.ind++
	g.w("int chk = 1;")
	g.ivars = append(g.ivars, "chk")
	nst := 2 + g.r.Intn(4)
	for i := 0; i < nst; i++ {
		g.stmt(1, "", 0)
	}
	if structParam >= 0 {
		// Fold the struct parameter into the result so its (flattened)
		// fields are live and any miscompile of the call ABI shows up.
		// Folding the same field twice gives it two uses, which defeats
		// assignment forwarding: the field's entry value stays in its own
		// register and classifies *current* between the folds.
		st := g.structs[structParam]
		fld := st.fields[g.r.Intn(len(st.fields))]
		g.w("chk = (chk * 29 + sp.%s) %% 65521;", fld)
		g.w("chk = (chk * 37 + sp.%s) %% 65521;", fld)
	}
	g.w("return chk %% 4099;")
	g.ind--
	g.w("}")
	g.w("")
	g.ivars, g.svars = saved, savedS
}

func (g *gen) program() string {
	g.w("/* randomly generated MiniC program (differential-test input) */")

	// Struct types: one or two, with 2-4 int fields each.
	nty := 1 + g.r.Intn(2)
	for i := 0; i < nty; i++ {
		nf := 2 + g.r.Intn(3)
		st := structTy{name: fmt.Sprintf("S%d", i)}
		for f := 0; f < nf; f++ {
			st.fields = append(st.fields, fmt.Sprintf("f%d", f))
		}
		g.structs = append(g.structs, st)
		var decl strings.Builder
		fmt.Fprintf(&decl, "struct %s {", st.name)
		for _, f := range st.fields {
			fmt.Fprintf(&decl, " int %s;", f)
		}
		decl.WriteString(" };")
		g.w("%s", decl.String())
	}

	// A couple of globals folded into the checksum.
	ng := 1 + g.r.Intn(3)
	globals := make([]string, ng)
	for i := range globals {
		globals[i] = g.fresh("G")
		g.w("int %s = %d;", globals[i], g.r.Intn(100))
	}
	// A global struct: lives in memory (never split), its fields accessed
	// through the aggregate's address at every optimization level.
	gsTy := g.r.Intn(len(g.structs))
	g.w("struct %s GS;", g.structs[gsTy].name)
	g.w("")

	// Helpers are generated before main and callable from everywhere
	// (MiniC resolves functions in a pre-pass); calls may not recurse.
	nh := 1 + g.r.Intn(3)
	for i := 0; i < nh; i++ {
		name := fmt.Sprintf("h%d", i)
		p := 1 + g.r.Intn(3)
		sp := -1
		if g.r.Intn(2) == 0 {
			sp = g.r.Intn(len(g.structs))
		}
		g.helper(name, p, sp)
		g.funcs = append(g.funcs, funcSig{name: name, params: p, structParam: sp})
	}

	g.w("int main() {")
	g.ind++
	g.w("int chk = 7;")
	g.ivars = []string{"chk"}
	g.ivars = append(g.ivars, globals...)

	// Initialize the global struct's fields before anything reads them.
	for _, f := range g.structs[gsTy].fields {
		g.w("GS.%s = %s;", f, g.intExpr(1))
	}
	g.svars = append(g.svars, structVar{name: "GS", ty: gsTy})

	arrLen := 4 + g.r.Intn(12)
	g.w("int buf[%d];", arrLen)
	g.w("for (int z = 0; z < %d; z++) { buf[z] = z * 3; }", arrLen)

	// One or two struct locals up front, so struct traffic (field loads
	// and stores, whole-struct copies, struct call arguments) is present
	// on every seed.
	nsv := 1 + g.r.Intn(2)
	for i := 0; i < nsv; i++ {
		g.declStruct(2)
	}
	topSvars := len(g.svars)

	// Accumulate into one field of a top-level struct local through a
	// loop: the self-referencing update defeats forwarding and constant
	// propagation, and the final folds keep the field live, so every seed
	// carries at least one field the classifier must call *current*.
	acc := g.svars[topSvars-1]
	accF := g.structs[acc.ty].fields[g.r.Intn(len(g.structs[acc.ty].fields))]
	g.w("for (int q = 0; q < %d; q++) { %s.%s = (%s.%s * 3 + q) %% 9973; }",
		3+g.r.Intn(5), acc.name, accF, acc.name, accF)

	nst := 4 + g.r.Intn(6)
	for i := 0; i < nst; i++ {
		g.stmt(2, "buf", arrLen)
	}

	// fold the array, globals and struct fields into the checksum and
	// print it
	g.w("for (int z = 0; z < %d; z++) { chk = (chk * 17 + buf[z]) %% 65521; }", arrLen)
	for _, gv := range globals {
		g.w("chk = (chk * 13 + %s) %% 65521;", gv)
	}
	for _, sv := range g.svars[:topSvars] {
		for _, f := range g.structs[sv.ty].fields {
			g.w("chk = (chk * 19 + %s.%s) %% 65521;", sv.name, f)
		}
	}
	g.w(`print("chk=", chk, "\n");`)
	g.w("return chk %% 256;")
	g.ind--
	g.w("}")
	return g.buf.String()
}
