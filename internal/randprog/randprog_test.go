package randprog

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/vm"
)

// TestGeneratedProgramsDifferential is the compiler fuzzer: many random
// programs, each compiled at four optimization levels, must all print the
// same checksum. Any divergence is a miscompilation with a seed to
// reproduce it.
func TestGeneratedProgramsDifferential(t *testing.T) {
	seeds := 80
	if testing.Short() {
		seeds = 15
	}
	cfgs := []struct {
		name string
		cfg  compile.Config
	}{
		{"O0", compile.O0()},
		{"O2noRA", compile.O2NoRegAlloc()},
		{"O2RA", func() compile.Config { c := compile.O2NoRegAlloc(); c.RegAlloc = true; return c }()},
		{"O2full", compile.O2()},
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		src := Gen(seed)
		var want string
		for i, c := range cfgs {
			res, err := compile.Compile("rand.mc", src, c.cfg)
			if err != nil {
				t.Fatalf("seed %d (%s): compile: %v\n%s", seed, c.name, err, src)
			}
			m, err := vm.New(res.Mach)
			if err != nil {
				t.Fatalf("seed %d (%s): %v", seed, c.name, err)
			}
			if err := m.Run(); err != nil {
				t.Fatalf("seed %d (%s): run: %v\n%s", seed, c.name, err, src)
			}
			if i == 0 {
				want = m.Output()
				continue
			}
			if m.Output() != want {
				t.Errorf("seed %d: %s output %q differs from O0 %q\n%s",
					seed, c.name, m.Output(), want, src)
			}
		}
	}
}

// TestGenDeterministic checks generation is reproducible.
func TestGenDeterministic(t *testing.T) {
	if Gen(42) != Gen(42) {
		t.Error("generation not deterministic")
	}
	if Gen(1) == Gen(2) {
		t.Error("different seeds should give different programs")
	}
}

// TestGeneratedProgramsAlwaysCompile checks a wider seed range for
// frontend robustness (no execution).
func TestGeneratedProgramsAlwaysCompile(t *testing.T) {
	for seed := int64(100); seed < 200; seed++ {
		src := Gen(seed)
		if _, err := compile.Compile("rand.mc", src, compile.O0()); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}
