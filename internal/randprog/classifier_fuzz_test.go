package randprog

import (
	"testing"

	"repro/internal/compile"
	"repro/internal/core"
)

// TestClassifierRobustness fuzzes the debugger analyses: for many random
// programs, at every configuration, every in-scope variable at every
// breakpoint must classify without panicking, and the results must respect
// the classifier's own invariants.
func TestClassifierRobustness(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	cfgs := []compile.Config{
		compile.O0(),
		compile.O2NoRegAlloc(),
		compile.O2(),
	}
	for seed := int64(300); seed < int64(300+seeds); seed++ {
		src := Gen(seed)
		for ci, cfg := range cfgs {
			res, err := compile.Compile("rand.mc", src, cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %d: %v", seed, ci, err)
			}
			for _, f := range res.Mach.Funcs {
				a := core.Analyze(f)
				for s := 0; s < f.Decl.NumStmts; s++ {
					cs, ok := a.ClassifyAllAt(s)
					if !ok {
						continue
					}
					for _, c := range cs {
						// Invariant: endangered or nonresident verdicts
						// always carry a user-facing warning.
						if (c.State == core.Noncurrent || c.State == core.Suspect ||
							c.State == core.Nonresident) && c.Why == "" {
							t.Errorf("seed %d cfg %d %s stmt %d: %s without warning text",
								seed, ci, c.Var.Name, s, c.State)
						}
						// Invariant: without regalloc, nonresident is
						// impossible (Figure 5a).
						if !f.Allocated && c.State == core.Nonresident {
							t.Errorf("seed %d cfg %d: nonresident %s without allocation",
								seed, ci, c.Var.Name)
						}
						// Invariant: endangerment needs a cause.
						if (c.State == core.Noncurrent || c.State == core.Suspect) &&
							c.Cause == core.NoCause {
							t.Errorf("seed %d cfg %d: %s endangered without cause",
								seed, ci, c.Var.Name)
						}
						// Invariant: linear recoveries never divide by 0.
						if r := c.Recovered; r != nil && r.Kind == core.RecoverLinear && r.A == 0 {
							t.Errorf("seed %d cfg %d: zero-coefficient linear recovery", seed, ci)
						}
					}
				}
			}
		}
	}
}

// TestClassifierMustImpliesMay: on random programs, a variable never
// classifies noncurrent at a point where the may-analysis would not also
// flag it — this is implied by construction, but the conservative-mode
// comparison below approximates an end-to-end check: conservative mode
// never reports *fewer* problematic variables than precise mode.
func TestConservativeNeverMoreOptimistic(t *testing.T) {
	for seed := int64(500); seed < 515; seed++ {
		src := Gen(seed)
		res, err := compile.Compile("rand.mc", src, compile.O2NoRegAlloc())
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range res.Mach.Funcs {
			precise := core.AnalyzeWith(f, core.Options{})
			conserv := core.AnalyzeWith(f, core.Options{ConservativeHoist: true})
			for s := 0; s < f.Decl.NumStmts; s++ {
				pc, ok1 := precise.ClassifyAllAt(s)
				cc, ok2 := conserv.ClassifyAllAt(s)
				if !ok1 || !ok2 || len(pc) != len(cc) {
					continue
				}
				for i := range pc {
					pBad := pc[i].State != core.Current && pc[i].State != core.Uninitialized
					cBad := cc[i].State != core.Current && cc[i].State != core.Uninitialized
					if pBad && !cBad {
						t.Errorf("seed %d %s stmt %d: precise=%s but conservative=%s",
							seed, pc[i].Var.Name, s, pc[i].State, cc[i].State)
					}
				}
			}
		}
	}
}
