package ast

// WalkStmts calls fn for every statement in the function body, in
// statement-ID order (the checker assigns IDs in traversal order). Blocks
// themselves are not visited (they carry no ID).
func WalkStmts(f *FuncDecl, fn func(Stmt)) {
	var walk func(s Stmt)
	walkBlock := func(b *Block) {
		for _, s := range b.Stmts {
			walk(s)
		}
	}
	walk = func(s Stmt) {
		if b, ok := s.(*Block); ok {
			walkBlock(b)
			return
		}
		fn(s)
		switch s := s.(type) {
		case *IfStmt:
			walkBlock(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *WhileStmt:
			walkBlock(s.Body)
		case *DoWhileStmt:
			walkBlock(s.Body)
		case *ForStmt:
			if s.Init != nil {
				walk(s.Init)
			}
			walkBlock(s.Body)
			if s.Post != nil {
				walk(s.Post)
			}
		}
	}
	walkBlock(f.Body)
}

// StmtsByID returns the function's statements indexed by their IDs.
func StmtsByID(f *FuncDecl) []Stmt {
	out := make([]Stmt, f.NumStmts)
	WalkStmts(f, func(s Stmt) {
		if id := s.ID(); id >= 0 && id < len(out) {
			out[id] = s
		}
	})
	return out
}
