package ast

import (
	"testing"

	"repro/internal/source"
	"repro/internal/token"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   Type
		size int
		str  string
	}{
		{IntType, 4, "int"},
		{FloatType, 4, "float"},
		{VoidType, 0, "void"},
		{&PointerType{Elem: IntType}, 4, "int*"},
		{&ArrayType{Elem: IntType, Len: 10}, 40, "int[10]"},
		{&ArrayType{Elem: FloatType, Len: 3}, 12, "float[3]"},
		{&PointerType{Elem: &PointerType{Elem: FloatType}}, 4, "float**"},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size {
			t.Errorf("%s size = %d, want %d", c.str, c.ty.Size(), c.size)
		}
		if c.ty.String() != c.str {
			t.Errorf("type string = %q, want %q", c.ty.String(), c.str)
		}
	}
}

func TestSameType(t *testing.T) {
	if !SameType(IntType, &BasicType{Int}) {
		t.Error("structural equality for basics")
	}
	if SameType(IntType, FloatType) {
		t.Error("int != float")
	}
	if !SameType(&PointerType{Elem: IntType}, &PointerType{Elem: IntType}) {
		t.Error("pointer equality")
	}
	if SameType(&ArrayType{Elem: IntType, Len: 3}, &ArrayType{Elem: IntType, Len: 4}) {
		t.Error("array lengths matter")
	}
}

func TestTypePredicates(t *testing.T) {
	if !IsArith(IntType) || !IsArith(FloatType) || IsArith(VoidType) {
		t.Error("IsArith")
	}
	if !IsInt(IntType) || IsInt(FloatType) {
		t.Error("IsInt")
	}
	if !IsFloat(FloatType) || IsFloat(IntType) {
		t.Error("IsFloat")
	}
	if IsArith(&PointerType{Elem: IntType}) {
		t.Error("pointers are not arithmetic")
	}
}

// buildTestFunc constructs a tiny function AST by hand:
//
//	func f() { s0: x=1; s1: if c { s2: y=2 } else { s3: z=3 }; s4: for(init s5; ...) { s6 } }
func buildTestFunc() *FuncDecl {
	mk := func(id int) Stmt {
		s := &AssignStmt{Op: token.ASSIGN,
			LHS: NewIdent("x", source.NoSpan), RHS: NewIntLit(1, source.NoSpan)}
		s.SetID(id)
		return s
	}
	ifStmt := &IfStmt{
		Cond: NewIntLit(1, source.NoSpan),
		Then: NewBlock([]Stmt{mk(2)}, source.NoSpan),
		Else: NewBlock([]Stmt{mk(3)}, source.NoSpan),
	}
	ifStmt.SetID(1)
	forStmt := &ForStmt{
		Init: mk(5),
		Body: NewBlock([]Stmt{mk(6)}, source.NoSpan),
	}
	forStmt.SetID(4)
	body := NewBlock([]Stmt{mk(0), ifStmt, forStmt}, source.NoSpan)
	return &FuncDecl{Name: "f", Ret: IntType, Body: body, NumStmts: 7}
}

func TestWalkStmtsVisitsAll(t *testing.T) {
	f := buildTestFunc()
	var ids []int
	WalkStmts(f, func(s Stmt) { ids = append(ids, s.ID()) })
	want := []int{0, 1, 2, 3, 4, 5, 6}
	if len(ids) != len(want) {
		t.Fatalf("visited %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("visit order %v, want %v", ids, want)
			break
		}
	}
}

func TestStmtsByID(t *testing.T) {
	f := buildTestFunc()
	byID := StmtsByID(f)
	if len(byID) != 7 {
		t.Fatalf("len = %d", len(byID))
	}
	for id, s := range byID {
		if s == nil {
			t.Errorf("missing statement %d", id)
			continue
		}
		if s.ID() != id {
			t.Errorf("slot %d holds statement %d", id, s.ID())
		}
	}
}

func TestObjectHelpers(t *testing.T) {
	v := &Object{Name: "x", Kind: ObjLocal, Type: IntType}
	fn := &Object{Name: "f", Kind: ObjFunc, Type: IntType}
	if !v.IsVar() || fn.IsVar() {
		t.Error("IsVar")
	}
	if v.String() != "x" {
		t.Error("String")
	}
}
