// Package ast defines the abstract syntax tree for MiniC and its types.
//
// Every statement node carries a statement ID (assigned by the semantic
// checker) which is the unit of source-level breakpoints: the debugger model
// of the paper maps each source statement to a breakpoint location in the
// optimized object code.
package ast

import (
	"fmt"
	"repro/internal/source"
	"repro/internal/token"
)

// ---------------------------------------------------------------- types

// Type is the interface of all MiniC types.
type Type interface {
	String() string
	// Size returns the size of the type in bytes on the virtual target.
	Size() int
}

// BasicKind enumerates the scalar base types.
type BasicKind int

// Basic type kinds.
const (
	Int BasicKind = iota
	Float
	Void
)

// BasicType is int, float or void.
type BasicType struct{ Kind BasicKind }

// Predefined singleton types.
var (
	IntType   = &BasicType{Int}
	FloatType = &BasicType{Float}
	VoidType  = &BasicType{Void}
)

func (t *BasicType) String() string {
	switch t.Kind {
	case Int:
		return "int"
	case Float:
		return "float"
	default:
		return "void"
	}
}

// Size returns the byte size of the basic type (the target word is 4 bytes).
func (t *BasicType) Size() int {
	if t.Kind == Void {
		return 0
	}
	return 4
}

// PointerType is a pointer to a scalar element type.
type PointerType struct{ Elem Type }

func (t *PointerType) String() string { return t.Elem.String() + "*" }

// Size returns the pointer size (one 4-byte word).
func (t *PointerType) Size() int { return 4 }

// ArrayType is a fixed-length array.
type ArrayType struct {
	Elem Type
	Len  int
}

func (t *ArrayType) String() string { return fmt.Sprintf("%s[%d]", t.Elem, t.Len) }

// Size returns the total byte size of the array.
func (t *ArrayType) Size() int { return t.Elem.Size() * t.Len }

// StructField is one named member of a struct type. All fields are scalar
// (int or float), each occupying one 4-byte slot at offset 4*index.
type StructField struct {
	Name string
	Type Type // int or float
}

// StructType is a named aggregate of scalar fields. Struct types are
// declared at file scope and compared nominally (by declaration identity):
// two structs with the same field layout are still distinct types.
type StructType struct {
	Name   string
	Fields []StructField
}

func (t *StructType) String() string { return "struct " + t.Name }

// Size returns the total byte size: one 4-byte slot per field.
func (t *StructType) Size() int { return 4 * len(t.Fields) }

// FieldIndex returns the index of the named field, or -1.
func (t *StructType) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// FieldOffset returns the byte offset of field i.
func (t *StructType) FieldOffset(i int) int { return 4 * i }

// IsStruct reports whether t is a struct type.
func IsStruct(t Type) bool {
	_, ok := t.(*StructType)
	return ok
}

// SameType reports structural type equality (structs compare nominally).
func SameType(a, b Type) bool {
	switch a := a.(type) {
	case *BasicType:
		b, ok := b.(*BasicType)
		return ok && a.Kind == b.Kind
	case *PointerType:
		b, ok := b.(*PointerType)
		return ok && SameType(a.Elem, b.Elem)
	case *ArrayType:
		b, ok := b.(*ArrayType)
		return ok && a.Len == b.Len && SameType(a.Elem, b.Elem)
	case *StructType:
		b, ok := b.(*StructType)
		return ok && a == b
	}
	return false
}

// IsArith reports whether t is int or float.
func IsArith(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && (b.Kind == Int || b.Kind == Float)
}

// IsInt reports whether t is int.
func IsInt(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && b.Kind == Int
}

// IsFloat reports whether t is float.
func IsFloat(t Type) bool {
	b, ok := t.(*BasicType)
	return ok && b.Kind == Float
}

// ---------------------------------------------------------------- objects

// ObjKind distinguishes the kinds of declared objects.
type ObjKind int

// Object kinds.
const (
	ObjGlobal ObjKind = iota
	ObjLocal
	ObjParam
	ObjFunc
)

// Object is a declared entity (variable or function) after name resolution.
// Variables are the entities the debugger classifies; each carries the
// bookkeeping bits the classifier needs (addressed, scope extent).
type Object struct {
	Name string
	Kind ObjKind
	Type Type
	Decl *VarDecl  // for variables
	Func *FuncDecl // for functions

	// ID is the per-function variable number (locals/params) or global
	// number, assigned by the semantic checker; used as the dense index in
	// data-flow bit vectors and in debug info.
	ID int

	// Addressed is set when the program takes &v or the variable is an
	// array; addressed variables live in memory and are never promoted to
	// registers (hence always resident — matching cmcc's model where only
	// register-promoted scalars become nonresident).
	Addressed bool

	// ScopeStart/ScopeEnd delimit (by statement ID) where the variable is
	// in scope inside its function; used for "variables per breakpoint".
	ScopeStart, ScopeEnd int

	// Members lists a struct-typed variable's materialized per-field
	// objects, in field order; nil for non-aggregates.
	Members []*Object

	// Base and FieldIdx link a struct *member* object back to its aggregate.
	// The checker materializes one member object per field of every
	// struct-typed variable (named "base.field", sharing the base's scope)
	// so that SROA can promote individual fields to scalar pseudo-registers
	// while the classifier keeps a dense per-field entry. Base is nil for
	// ordinary variables and for the aggregate object itself.
	Base     *Object
	FieldIdx int
}

func (o *Object) String() string { return o.Name }

// IsVar reports whether the object is a variable (global, local or param).
func (o *Object) IsVar() bool { return o.Kind != ObjFunc }

// ---------------------------------------------------------------- nodes

// Node is the interface of all AST nodes.
type Node interface {
	Span() source.Span
	SetSpan(source.Span)
}

// Expr is the interface of all expression nodes.
type Expr interface {
	Node
	Type() Type
	SetType(Type)
	exprNode()
}

// Stmt is the interface of all statement nodes.
type Stmt interface {
	Node
	// ID returns the statement's breakpoint ID (set by the checker).
	ID() int
	SetID(int)
	stmtNode()
}

type exprBase struct {
	span source.Span
	typ  Type
}

func (e *exprBase) Span() source.Span { return e.span }

// SetSpan records the node's source extent.
func (e *exprBase) SetSpan(sp source.Span) { e.span = sp }

// Type returns the checked type of the expression.
func (e *exprBase) Type() Type { return e.typ }

// SetType records the checked type of the expression.
func (e *exprBase) SetType(t Type) { e.typ = t }
func (e *exprBase) exprNode()      {}

type stmtBase struct {
	span source.Span
	id   int
}

func (s *stmtBase) Span() source.Span { return s.span }

// SetSpan records the node's source extent.
func (s *stmtBase) SetSpan(sp source.Span) { s.span = sp }

// ID returns the statement's breakpoint ID.
func (s *stmtBase) ID() int { return s.id }

// SetID records the statement's breakpoint ID.
func (s *stmtBase) SetID(id int) { s.id = id }
func (s *stmtBase) stmtNode()    {}

// ---------------------------------------------------------------- exprs

// Ident is a use of a declared name.
type Ident struct {
	exprBase
	Name string
	Obj  *Object // resolved by the checker
}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Value float64
}

// BinaryExpr is a binary operation x op y (arithmetic, comparison, logical).
type BinaryExpr struct {
	exprBase
	Op   token.Kind
	X, Y Expr
}

// UnaryExpr is -x, !x, *p (deref) or &x (address-of).
type UnaryExpr struct {
	exprBase
	Op token.Kind
	X  Expr
}

// IndexExpr is a[i].
type IndexExpr struct {
	exprBase
	X     Expr
	Index Expr
}

// FieldExpr is s.f — selection of a struct field. After checking, Idx is
// the field's index in the struct's layout; if X is an identifier naming a
// struct variable, Member is the checker-materialized member object for
// that (variable, field) pair.
type FieldExpr struct {
	exprBase
	X      Expr
	Name   string
	Idx    int
	Member *Object // non-nil when X is a direct struct variable reference
}

// CallExpr is f(args...).
type CallExpr struct {
	exprBase
	Fun  *Ident
	Args []Expr
}

// CastExpr converts between int and float (inserted implicitly by the
// checker, or written as float(x)/int(x)).
type CastExpr struct {
	exprBase
	To Type
	X  Expr
}

// NewExpr helpers used by the parser and checker.

// NewIdent makes an identifier node over the given span.
func NewIdent(name string, sp source.Span) *Ident {
	return &Ident{exprBase: exprBase{span: sp}, Name: name}
}

// NewIntLit makes an integer literal node.
func NewIntLit(v int64, sp source.Span) *IntLit {
	e := &IntLit{Value: v}
	e.span = sp
	e.typ = IntType
	return e
}

// NewFloatLit makes a float literal node.
func NewFloatLit(v float64, sp source.Span) *FloatLit {
	e := &FloatLit{Value: v}
	e.span = sp
	e.typ = FloatType
	return e
}

// NewBinary makes a binary expression node.
func NewBinary(op token.Kind, x, y Expr, sp source.Span) *BinaryExpr {
	e := &BinaryExpr{Op: op, X: x, Y: y}
	e.span = sp
	return e
}

// NewUnary makes a unary expression node.
func NewUnary(op token.Kind, x Expr, sp source.Span) *UnaryExpr {
	e := &UnaryExpr{Op: op, X: x}
	e.span = sp
	return e
}

// NewCast makes an int<->float conversion node.
func NewCast(to Type, x Expr, sp source.Span) *CastExpr {
	e := &CastExpr{To: to, X: x}
	e.span = sp
	e.typ = to
	return e
}

// ---------------------------------------------------------------- stmts

// DeclStmt declares a local variable, optionally with an initializer.
type DeclStmt struct {
	stmtBase
	Decl *VarDecl
}

// AssignStmt is lhs = rhs (or compound op= assignments).
type AssignStmt struct {
	stmtBase
	Op  token.Kind // ASSIGN, PLUSASSIGN, ...
	LHS Expr
	RHS Expr
}

// IncDecStmt is x++ or x--.
type IncDecStmt struct {
	stmtBase
	Op token.Kind // INC or DEC
	X  Expr
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is if (cond) then [else].
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *Block
	Else Stmt // *Block or *IfStmt or nil
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *Block
}

// DoWhileStmt is do body while (cond);.
type DoWhileStmt struct {
	stmtBase
	Body *Block
	Cond Expr
}

// ForStmt is for (init; cond; post) body; any clause may be missing.
type ForStmt struct {
	stmtBase
	Init Stmt // nil, DeclStmt or AssignStmt
	Cond Expr // nil means true
	Post Stmt // nil, AssignStmt or IncDecStmt
	Body *Block
}

// ReturnStmt is return [x];.
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void return
}

// BreakStmt is break;.
type BreakStmt struct{ stmtBase }

// ContinueStmt is continue;.
type ContinueStmt struct{ stmtBase }

// PrintStmt is print(arg, ...); arguments are expressions or string
// literals. It is the workloads' only I/O and lowers to VM print ops.
type PrintStmt struct {
	stmtBase
	Args []PrintArg
}

// PrintArg is one print argument: either a string literal or an expression.
type PrintArg struct {
	Str   string // used if IsStr
	IsStr bool
	X     Expr
}

// Block is { stmts... }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// NewBlock makes a block node.
func NewBlock(stmts []Stmt, sp source.Span) *Block {
	b := &Block{Stmts: stmts}
	b.span = sp
	return b
}

// ---------------------------------------------------------------- decls

// VarDecl declares a variable (global, local or parameter).
type VarDecl struct {
	Name  string
	Typ   Type
	Init  Expr // optional initializer (globals: constant only)
	Spn   source.Span
	Obj   *Object // filled by the checker
	Param bool
}

// Span returns the declaration's source extent.
func (d *VarDecl) Span() source.Span { return d.Spn }

// FuncDecl declares a function with its body.
type FuncDecl struct {
	Name   string
	Params []*VarDecl
	Ret    Type
	Body   *Block
	Spn    source.Span
	Obj    *Object

	// NumStmts is the number of statements (breakpoint IDs) in the body,
	// assigned by the checker; statement IDs are 0..NumStmts-1.
	NumStmts int
	// Locals lists all local variables and parameters in declaration
	// order; index = Object.ID.
	Locals []*Object
}

// Span returns the function's source extent.
func (d *FuncDecl) Span() source.Span { return d.Spn }

// StructDecl declares a file-scope struct type.
type StructDecl struct {
	Name string
	Typ  *StructType // filled by the parser; fields checked by sem
	Spn  source.Span
}

// Span returns the declaration's source extent.
func (d *StructDecl) Span() source.Span { return d.Spn }

// File is a parsed MiniC translation unit.
type File struct {
	Source  *source.File
	Structs []*StructDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// LookupFunc finds a function by name, or nil.
func (f *File) LookupFunc(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}
