package mach

import (
	"strings"
	"testing"
)

func TestOpdConstructorsAndString(t *testing.T) {
	cases := []struct {
		o    Opd
		want string
	}{
		{R_(3), "r3"},
		{FR(2), "f2"},
		{I_(-7), "-7"},
		{F_(2.5), "2.5"},
		{Opd{}, "_"},
	}
	for _, c := range cases {
		if got := c.o.String(); got != c.want {
			t.Errorf("%+v -> %q, want %q", c.o, got, c.want)
		}
	}
}

func TestInstrUsesAndDef(t *testing.T) {
	add := &Instr{Op: ADD, Dst: R_(1), A: R_(2), B: R_(3)}
	uses := add.Uses(nil)
	if len(uses) != 2 || !uses[0].Same(R_(2)) || !uses[1].Same(R_(3)) {
		t.Errorf("add uses = %v", uses)
	}
	if !add.Def().Same(R_(1)) {
		t.Errorf("add def = %v", add.Def())
	}

	sw := &Instr{Op: SW, A: R_(4), B: R_(5)}
	if d := sw.Def(); d.IsReg() {
		t.Errorf("store must not define a register, got %v", d)
	}
	uses = sw.Uses(nil)
	if len(uses) != 2 {
		t.Errorf("store uses = %v", uses)
	}

	swfp := &Instr{Op: SWFP, B: R_(6), Off: 8}
	uses = swfp.Uses(nil)
	if len(uses) != 1 || !uses[0].Same(R_(6)) {
		t.Errorf("swfp uses = %v", uses)
	}

	call := &Instr{Op: CALL, Callee: "f", Dst: R_(0), Args: []Opd{R_(1), I_(5), FR(0)}}
	uses = call.Uses(nil)
	if len(uses) != 2 { // immediates are not register uses
		t.Errorf("call uses = %v", uses)
	}

	// Marker aliases are diagnostic and must not count as uses.
	mark := &Instr{Op: MARKDEAD, MarkAlias: R_(7)}
	if len(mark.Uses(nil)) != 0 {
		t.Error("marker alias counted as a use")
	}
}

func TestInstrReplaceReg(t *testing.T) {
	in := &Instr{Op: ADD, Dst: R_(1), A: R_(1), B: R_(2)}
	n := in.ReplaceReg(R_(1), R_(9), false)
	if n != 1 || !in.A.Same(R_(9)) || !in.Dst.Same(R_(1)) {
		t.Errorf("use-only replace: n=%d %v", n, in)
	}
	n = in.ReplaceReg(R_(1), R_(9), true)
	if n != 1 || !in.Dst.Same(R_(9)) {
		t.Errorf("dst replace: n=%d %v", n, in)
	}
	// Float regs with the same number are distinct.
	fi := &Instr{Op: FADD, Dst: FR(1), A: FR(1), B: FR(2)}
	if fi.ReplaceReg(R_(1), R_(5), true) != 0 {
		t.Error("int replacement must not touch float registers")
	}
}

func TestLatencies(t *testing.T) {
	if MUL.Latency() <= ADD.Latency() {
		t.Error("mul should be slower than add")
	}
	if DIV.Latency() <= MUL.Latency() {
		t.Error("div should be slower than mul")
	}
	if MARKDEAD.Latency() != 0 || MARKAVAIL.Latency() != 0 {
		t.Error("markers must be free")
	}
	if LW.Latency() < 2 {
		t.Error("loads should have latency")
	}
}

func TestBlockEditing(t *testing.T) {
	b := &Block{}
	i1 := &Instr{Op: ADD}
	i2 := &Instr{Op: SUB}
	i3 := &Instr{Op: MUL}
	b.Instrs = []*Instr{i1, i3}
	b.InsertBefore(1, i2)
	if b.Instrs[1] != i2 || len(b.Instrs) != 3 {
		t.Errorf("insert: %v", b.Instrs)
	}
	b.RemoveAt(0)
	if b.Instrs[0] != i2 || len(b.Instrs) != 2 {
		t.Errorf("remove: %v", b.Instrs)
	}
}

func TestFuncNewVreg(t *testing.T) {
	f := &Func{NumVregs: 5}
	v := f.NewVreg(FloatClass)
	if v.R != 5 || v.Class != FloatClass || f.NumVregs != 6 {
		t.Errorf("NewVreg: %v, NumVregs=%d", v, f.NumVregs)
	}
}

func TestInstrStringForms(t *testing.T) {
	cases := []struct {
		in   *Instr
		want string
	}{
		{&Instr{Op: ADD, Dst: R_(1), A: R_(2), B: I_(3), Stmt: -1}, "add r1, r2, 3"},
		{&Instr{Op: MOV, Dst: R_(0), A: I_(7), Stmt: -1}, "mov r0, 7"},
		{&Instr{Op: LW, Dst: R_(1), A: R_(2), Off: 8, Stmt: -1}, "lw r1, 8(r2)"},
		{&Instr{Op: SWFP, B: R_(3), Off: 4, Stmt: -1}, "sw.fp r3, 4(fp)"},
		{&Instr{Op: RET, Stmt: -1}, "ret"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("got %q want %q", got, c.want)
		}
	}
	// Statement suffix present when tagged.
	in := &Instr{Op: RET, Stmt: 4}
	if !strings.Contains(in.String(), "s4") {
		t.Errorf("missing stmt tag: %q", in.String())
	}
}

func TestCloneIndependence(t *testing.T) {
	in := &Instr{Op: CALL, Args: []Opd{R_(1)}, PrintFmt: []PrintArg{{Str: "x", IsStr: true}}}
	c := in.Clone()
	c.Args[0] = R_(9)
	c.PrintFmt[0].Str = "y"
	if in.Args[0].R == 9 || in.PrintFmt[0].Str == "y" {
		t.Error("clone shares slices")
	}
}
