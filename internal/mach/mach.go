// Package mach defines the instruction-level representation of mcc: a
// virtual MIPS-like load/store target. Lowering transfers the debugging
// annotations and marker pseudo-instructions from the mid-level IR onto
// machine instructions (§3 of the paper: "IR marker nodes are lowered to
// special marker instructions that convey essentially the same information").
//
// Registers are numbered virtually during lowering (one vreg per promoted
// source variable or temporary, preserving the IR's dense value space);
// register allocation later rewrites them to physical registers. Integer
// and float registers form separate classes.
package mach

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/ir"
)

// Physical register counts of the virtual target, mirroring a MIPS R3000
// with reserved registers removed (the paper notes 26 integer and 16 FP
// registers available for allocation; we reserve a few for the assembler,
// as cmcc would).
const (
	NumIntRegs   = 18
	NumFloatRegs = 12
)

// Opcode enumerates machine operations.
type Opcode int8

// Opcodes.
const (
	NOP Opcode = iota

	// Integer ALU (Dst, A, B; B may be an immediate).
	ADD
	SUB
	MUL
	DIV
	REM
	SHL
	SHR
	OR
	XOR
	SEQ
	SNE
	SLT
	SLE
	SGT
	SGE
	NEG
	NOT

	// Float ALU.
	FADD
	FSUB
	FMUL
	FDIV
	FNEG
	FSEQ
	FSNE
	FSLT
	FSLE
	FSGT
	FSGE

	// Conversions.
	CVTIF // int -> float
	CVTFI // float -> int

	// Data movement.
	MOV   // Dst = A (register or immediate)
	LA    // Dst = address of Sym (global or frame object)
	LW    // Dst = int mem[A + Off]
	SW    // int mem[A + Off] = B
	FLW   // Dst = float mem[A + Off]
	FSW   // float mem[A + Off] = B
	LWFP  // Dst = int mem[fp + Off] (spill reload)
	SWFP  // int mem[fp + Off] = B (spill store)
	FLWFP // float spill reload
	FSWFP // float spill store
	GETP  // Dst = incoming parameter #ParamIdx

	// Control.
	BNEZ // branch to Succs[0] if A != 0, else Succs[1]
	J    // jump to Succs[0]
	CALL // Dst? = Callee(Args...)
	RET  // return A?

	// Pseudo.
	PRINT
	MARKDEAD  // debugger marker: dead assignment to MarkObj eliminated
	MARKAVAIL // debugger marker: redundant assignment to MarkObj eliminated
)

var opcodeNames = map[Opcode]string{
	NOP: "nop",
	ADD: "add", SUB: "sub", MUL: "mul", DIV: "div", REM: "rem",
	SHL: "shl", SHR: "shr", OR: "or", XOR: "xor",
	SEQ: "seq", SNE: "sne", SLT: "slt", SLE: "sle", SGT: "sgt", SGE: "sge",
	NEG: "neg", NOT: "not",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FNEG: "fneg",
	FSEQ: "fseq", FSNE: "fsne", FSLT: "fslt", FSLE: "fsle", FSGT: "fsgt", FSGE: "fsge",
	CVTIF: "cvt.if", CVTFI: "cvt.fi",
	MOV: "mov", LA: "la", LW: "lw", SW: "sw", FLW: "flw", FSW: "fsw",
	LWFP: "lw.fp", SWFP: "sw.fp", FLWFP: "flw.fp", FSWFP: "fsw.fp",
	GETP: "getp", BNEZ: "bnez", J: "j", CALL: "call", RET: "ret",
	PRINT: "print", MARKDEAD: "markdead", MARKAVAIL: "markavail",
}

func (o Opcode) String() string { return opcodeNames[o] }

// Latency returns the issue-to-result latency in cycles, used by the list
// scheduler and the simulator's cycle accounting.
func (o Opcode) Latency() int {
	switch o {
	case MUL:
		return 4
	case DIV, REM:
		return 20
	case LW, FLW, LWFP, FLWFP:
		return 2
	case FADD, FSUB, FNEG, CVTIF, CVTFI:
		return 2
	case FMUL:
		return 4
	case FDIV:
		return 12
	case FSEQ, FSNE, FSLT, FSLE, FSGT, FSGE:
		return 2
	case CALL:
		return 2
	case MARKDEAD, MARKAVAIL, NOP:
		return 0
	}
	return 1
}

// RegClass distinguishes the two register files.
type RegClass int8

// Register classes.
const (
	IntClass RegClass = iota
	FloatClass
)

// OpdKind discriminates machine operands.
type OpdKind int8

// Operand kinds.
const (
	None OpdKind = iota
	Reg          // register (virtual before allocation, physical after)
	Imm          // integer immediate
	FImm         // float immediate
)

// Opd is a machine operand.
type Opd struct {
	Kind  OpdKind
	Class RegClass
	R     int // register number
	Imm   int64
	F     float64
}

// R_ makes an integer register operand.
func R_(r int) Opd { return Opd{Kind: Reg, Class: IntClass, R: r} }

// FR makes a float register operand.
func FR(r int) Opd { return Opd{Kind: Reg, Class: FloatClass, R: r} }

// I_ makes an integer immediate.
func I_(v int64) Opd { return Opd{Kind: Imm, Imm: v} }

// F_ makes a float immediate.
func F_(v float64) Opd { return Opd{Kind: FImm, F: v} }

// IsReg reports whether o is a register operand.
func (o Opd) IsReg() bool { return o.Kind == Reg }

// Same reports operand identity.
func (o Opd) Same(p Opd) bool { return o == p }

func (o Opd) String() string {
	switch o.Kind {
	case Reg:
		if o.Class == FloatClass {
			return fmt.Sprintf("f%d", o.R)
		}
		return fmt.Sprintf("r%d", o.R)
	case Imm:
		return fmt.Sprintf("%d", o.Imm)
	case FImm:
		return fmt.Sprintf("%g", o.F)
	}
	return "_"
}

// Instr is one machine instruction.
type Instr struct {
	Op   Opcode
	Dst  Opd
	A, B Opd
	Off  int64 // addressing offset for LW/SW/FLW/FSW

	Sym      *ast.Object // LA: global or frame object
	Callee   string
	Args     []Opd
	PrintFmt []PrintArg
	ParamIdx int

	MarkObj   *ast.Object // MARKDEAD / MARKAVAIL
	MarkAlias Opd         // optional: operand holding the eliminated value

	Stmt    int
	OrigIdx int
	Ann     ir.Ann
	// PreSched is the instruction's index within its block immediately
	// before scheduling ran (meaningful only when Func.Scheduled). The
	// pre-scheduling block order is the source-dynamic order of the
	// block's code, so comparing PreSched against a breakpoint
	// instruction's PreSched tells the debugger whether the scheduler
	// moved this instruction across the stop — OrigIdx cannot serve here
	// because passes that rebuild instructions stamp fresh emission
	// indices.
	PreSched int

	// DefObj / UseObjs tag the source variables this instruction defines
	// and reads. They are assigned at lowering time from the virtual
	// register numbering and survive register allocation (which rewrites
	// register numbers) and scheduling (which moves whole instructions),
	// so the debugger analyses can recognize source-variable accesses in
	// the final code.
	DefObj  *ast.Object
	UseObjs []*ast.Object
}

// PrintArg is one element of a PRINT.
type PrintArg struct {
	Str   string
	IsStr bool
	Val   Opd
}

// IsMarker reports whether the instruction is a debugger marker.
func (i *Instr) IsMarker() bool { return i.Op == MARKDEAD || i.Op == MARKAVAIL }

// IsTerm reports whether the instruction ends a block.
func (i *Instr) IsTerm() bool { return i.Op == BNEZ || i.Op == J || i.Op == RET }

// Uses appends the registers read by i to buf.
func (i *Instr) Uses(buf []Opd) []Opd {
	add := func(o Opd) {
		if o.IsReg() {
			buf = append(buf, o)
		}
	}
	switch i.Op {
	case SW, FSW:
		add(i.A)
		add(i.B)
	case SWFP, FSWFP:
		add(i.B)
	case CALL:
		for _, a := range i.Args {
			add(a)
		}
	case PRINT:
		for _, a := range i.PrintFmt {
			if !a.IsStr {
				add(a.Val)
			}
		}
	case MARKDEAD, MARKAVAIL:
		// MarkAlias is diagnostic only: it must not keep values alive.
	default:
		add(i.A)
		add(i.B)
	}
	return buf
}

// Def returns the register written by i, or a None operand.
func (i *Instr) Def() Opd {
	switch i.Op {
	case SW, FSW, SWFP, FSWFP, BNEZ, J, RET, PRINT, MARKDEAD, MARKAVAIL, NOP:
		return Opd{}
	case CALL:
		return i.Dst // may be None for void calls
	}
	return i.Dst
}

// ReplaceReg substitutes register old with new in all positions (including
// the destination) and reports the number of replacements.
func (i *Instr) ReplaceReg(old, new Opd, includeDst bool) int {
	n := 0
	rep := func(o *Opd) {
		if o.Same(old) {
			*o = new
			n++
		}
	}
	rep(&i.A)
	rep(&i.B)
	if includeDst {
		rep(&i.Dst)
	}
	for k := range i.Args {
		rep(&i.Args[k])
	}
	for k := range i.PrintFmt {
		if !i.PrintFmt[k].IsStr {
			rep(&i.PrintFmt[k].Val)
		}
	}
	if i.MarkAlias.Same(old) {
		i.MarkAlias = new
		n++
	}
	return n
}

// Clone returns a deep copy.
func (i *Instr) Clone() *Instr {
	c := *i
	if i.Args != nil {
		c.Args = append([]Opd(nil), i.Args...)
	}
	if i.PrintFmt != nil {
		c.PrintFmt = append([]PrintArg(nil), i.PrintFmt...)
	}
	if i.UseObjs != nil {
		c.UseObjs = append([]*ast.Object(nil), i.UseObjs...)
	}
	return &c
}

func (i *Instr) String() string {
	ann := ""
	if i.Ann.Hoisted {
		ann += " !hoisted"
	}
	if i.Ann.Sunk {
		ann += " !sunk"
	}
	if i.Ann.ReplacedVar != nil {
		ann += " !replaces:" + i.Ann.ReplacedVar.Name
	}
	if i.Ann.Recover != nil {
		ann += fmt.Sprintf(" !recover:%s", i.Ann.Recover.Var.Name)
	}
	stmt := ""
	if i.Stmt >= 0 {
		stmt = fmt.Sprintf("  ; s%d", i.Stmt)
	}
	switch i.Op {
	case MOV, NEG, NOT, FNEG, CVTIF, CVTFI:
		return fmt.Sprintf("%s %s, %s%s%s", i.Op, i.Dst, i.A, stmt, ann)
	case LA:
		return fmt.Sprintf("la %s, %s%s%s", i.Dst, i.Sym.Name, stmt, ann)
	case LW, FLW:
		return fmt.Sprintf("%s %s, %d(%s)%s%s", i.Op, i.Dst, i.Off, i.A, stmt, ann)
	case SW, FSW:
		return fmt.Sprintf("%s %s, %d(%s)%s%s", i.Op, i.B, i.Off, i.A, stmt, ann)
	case LWFP, FLWFP:
		return fmt.Sprintf("%s %s, %d(fp)%s%s", i.Op, i.Dst, i.Off, stmt, ann)
	case SWFP, FSWFP:
		return fmt.Sprintf("%s %s, %d(fp)%s%s", i.Op, i.B, i.Off, stmt, ann)
	case GETP:
		return fmt.Sprintf("getp %s, #%d%s%s", i.Dst, i.ParamIdx, stmt, ann)
	case BNEZ:
		return fmt.Sprintf("bnez %s%s", i.A, stmt)
	case J:
		return "j" + stmt
	case RET:
		if i.A.Kind != None {
			return fmt.Sprintf("ret %s%s", i.A, stmt)
		}
		return "ret" + stmt
	case CALL:
		args := make([]string, len(i.Args))
		for k, a := range i.Args {
			args[k] = a.String()
		}
		if i.Dst.Kind != None {
			return fmt.Sprintf("call %s, %s(%s)%s%s", i.Dst, i.Callee, strings.Join(args, ", "), stmt, ann)
		}
		return fmt.Sprintf("call %s(%s)%s%s", i.Callee, strings.Join(args, ", "), stmt, ann)
	case PRINT:
		var parts []string
		for _, a := range i.PrintFmt {
			if a.IsStr {
				parts = append(parts, fmt.Sprintf("%q", a.Str))
			} else {
				parts = append(parts, a.Val.String())
			}
		}
		return "print " + strings.Join(parts, ", ") + stmt
	case MARKDEAD:
		return fmt.Sprintf("-- markdead %s%s", i.MarkObj.Name, stmt)
	case MARKAVAIL:
		return fmt.Sprintf("-- markavail %s%s", i.MarkObj.Name, stmt)
	case NOP:
		return "nop"
	}
	return fmt.Sprintf("%s %s, %s, %s%s%s", i.Op, i.Dst, i.A, i.B, stmt, ann)
}

// Block is one machine basic block.
type Block struct {
	ID     int
	Instrs []*Instr
	Succs  []*Block
	Preds  []*Block
	// LoopDepth is copied from the IR for spill cost heuristics.
	LoopDepth int
}

func (b *Block) String() string { return fmt.Sprintf("L%d", b.ID) }

// RemoveAt deletes the instruction at idx.
func (b *Block) RemoveAt(idx int) {
	b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
}

// InsertBefore inserts in at position idx.
func (b *Block) InsertBefore(idx int, in *Instr) {
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// Term returns the terminator, or nil.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.IsTerm() {
		return nil
	}
	return t
}

// Func is one machine function.
type Func struct {
	Name   string
	Decl   *ast.FuncDecl
	Blocks []*Block
	Entry  *Block

	// NumVregs counts virtual registers; vregs [0, NumVars) are the
	// promoted source variables (by Object.ID), matching the IR's value
	// space so the debugger can map variables to registers.
	NumVregs int
	NumVars  int

	// FrameObjects lists memory-allocated objects with their frame
	// offsets.
	FrameObjects []*ast.Object
	FrameOff     map[*ast.Object]int64
	FrameSize    int64

	// Allocated is set once register allocation has rewritten vregs to
	// physical registers.
	Allocated bool
	// VarLoc maps each promoted source variable to its allocated
	// location, filled by the register allocator.
	VarLoc map[*ast.Object]Loc
	// Scheduled is set once the list scheduler has run.
	Scheduled bool
}

// LocKind tells where a variable lives after allocation.
type LocKind int8

// Location kinds.
const (
	LocNone  LocKind = iota // never materialized
	LocReg                  // physical register
	LocSpill                // frame slot
)

// Loc is an allocated variable location.
type Loc struct {
	Kind  LocKind
	Class RegClass
	R     int   // physical register (LocReg)
	Off   int64 // frame offset (LocSpill)
}

func (l Loc) String() string {
	switch l.Kind {
	case LocReg:
		if l.Class == FloatClass {
			return fmt.Sprintf("f%d", l.R)
		}
		return fmt.Sprintf("r%d", l.R)
	case LocSpill:
		return fmt.Sprintf("%d(fp)", l.Off)
	}
	return "<none>"
}

// NewBlock creates and registers a fresh block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// RecomputePreds rebuilds predecessor lists.
func (f *Func) RecomputePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// NewVreg allocates a fresh virtual register of the given class.
func (f *Func) NewVreg(class RegClass) Opd {
	r := f.NumVregs
	f.NumVregs++
	return Opd{Kind: Reg, Class: class, R: r}
}

// String renders the function for dumps and golden tests.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s:  ; frame=%d bytes\n", f.Name, f.FrameSize)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "    %s\n", in)
		}
		if t := b.Term(); t != nil {
			switch t.Op {
			case J:
				fmt.Fprintf(&sb, "    -> %s\n", b.Succs[0])
			case BNEZ:
				fmt.Fprintf(&sb, "    -> then %s else %s\n", b.Succs[0], b.Succs[1])
			}
		}
	}
	return sb.String()
}

// Program is a lowered translation unit.
type Program struct {
	Funcs   []*Func
	Globals []*ast.Object
	// GlobalOff assigns each global an offset in the global data segment.
	GlobalOff  map[*ast.Object]int64
	GlobalSize int64
	GlobalInit map[*ast.Object]ir.Operand

	// predecoded caches the simulator's predecoded form of this program
	// (internal/vm flattens every function into a pc-indexed instruction
	// array on first execution; every VM over the program shares it). The
	// slot is opaque so mach stays free of any dependency on the
	// simulator's representation. Programs are immutable once compiled,
	// which is what makes a compute-once cache sound.
	predecodeMu sync.Mutex
	predecoded  any
}

// Predecoded returns the cached predecoded form of the program, invoking
// build exactly once (per program) to produce it. Concurrent callers
// block until the first build completes and then share its result.
func (p *Program) Predecoded(build func() any) any {
	p.predecodeMu.Lock()
	defer p.predecodeMu.Unlock()
	if p.predecoded == nil {
		p.predecoded = build()
	}
	return p.predecoded
}

// LookupFunc finds a function by name, or nil.
func (p *Program) LookupFunc(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// String renders the whole program.
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
